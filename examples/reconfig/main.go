// Reconfig: drive the deadlock-free runtime reconfiguration protocol by
// hand (Section II-C.1). An application keeps injecting traffic while its
// subNoC is switched through all four topologies; no packet is ever lost,
// and the cost of each switch — the notification wave, the drain with
// gated injection, and the Ts=14-cycle table setup — shows up as queuing
// latency in the epochs where it happens.
//
//	go run ./examples/reconfig
package main

import (
	"fmt"
	"log"

	"adaptnoc"
)

func main() {
	region := adaptnoc.Region{W: 4, H: 4}
	sim, err := adaptnoc.NewSim(adaptnoc.Config{
		Design: adaptnoc.DesignAdaptNoRL, // fabric without an RL controller
		Apps: []adaptnoc.AppSpec{{
			Profile: "x264",
			Region:  region,
			MCTiles: adaptnoc.BlockMCs(region),
			Static:  adaptnoc.Mesh,
		}},
		Seed: 3,
		// Park the epoch controller far out so manual switches are not
		// overridden by the static policy.
		EpochCycles: 10_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	phase := func(label string) {
		sim.Run(30000)
		res := sim.Results()
		a := res.Apps[0]
		fmt.Printf("%-22s topology=%-6v delivered=%7d  mean latency=%5.1f cycles\n",
			label, sim.Topology(0), a.DeliveredPackets, a.AvgTotalLatency)
	}

	phase("initial mesh")
	for _, kind := range []adaptnoc.Kind{adaptnoc.CMesh, adaptnoc.Torus, adaptnoc.Tree, adaptnoc.Mesh} {
		done := false
		if err := sim.Reconfigure(0, kind, func() { done = true }); err != nil {
			log.Fatal(err)
		}
		// The switch is asynchronous; traffic keeps flowing while the
		// notification wave propagates and the region drains.
		for !done {
			sim.Run(100)
		}
		phase(fmt.Sprintf("after switch to %v", kind))
	}
	fmt.Println("\nevery packet injected during the switches was delivered;")
	fmt.Println("the drain and Ts setup cost appears only as brief queuing.")
}
