// RLpolicy: watch the deep-Q-network control policy at work. A memory-
// intensive GPU application with alternating heavy/light phases runs in a
// 4x8 subNoC; every epoch the RL controller observes the Table I state,
// earns the reward −power×(Tnetwork+Tqueuing), and picks the topology.
// The example prints the per-epoch trace and the selection breakdown
// (the per-application bars of the paper's Figs. 14-15).
//
//	go run ./examples/rlpolicy
package main

import (
	"fmt"
	"log"

	"adaptnoc"
)

func main() {
	region := adaptnoc.Region{W: 4, H: 8}
	cfg := adaptnoc.Config{
		Design: adaptnoc.DesignAdaptNoC,
		Apps: []adaptnoc.AppSpec{{
			Profile: "bfs",
			Region:  region,
			MCTiles: adaptnoc.BlockMCs(region),
		}},
		Seed:        11,
		EpochCycles: 10000,
	}
	cfg.RL.Pretrained = adaptnoc.DefaultPolicy()
	if cfg.RL.Pretrained == nil {
		// No embedded weights in this build: learn online instead.
		cfg.RL.Train = true
	}

	sim, err := adaptnoc.NewSim(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sim.Run(400000)

	b := sim.Ctl.Bindings()[0]
	fmt.Println("epoch | topology | chosen | net lat | queue lat | power | reward")
	for _, rec := range b.Trace {
		fmt.Printf("%5d | %-8v | %-6v | %7.1f | %9.1f | %4.0fmW | %6.2f\n",
			rec.Epoch, rec.Kind, rec.Chosen, rec.AvgNetLat, rec.AvgQueueLat, rec.PowerMW, rec.Reward)
	}

	res := sim.Results()
	a := res.Apps[0]
	fmt.Printf("\nselection breakdown (cf. Fig. 15): mesh %.0f%%  cmesh %.0f%%  torus %.0f%%  tree %.0f%%\n",
		100*a.Selections[0], 100*a.Selections[1], 100*a.Selections[2], 100*a.Selections[3])
	fmt.Printf("reconfigurations: %d; mean packet latency %.1f cycles\n", a.Reconfigs, a.AvgTotalLatency)
}
