// Multiapp: four concurrently running applications, each on its own
// dynamically allocated subNoC with its own topology — the paper's Fig. 1(b)
// scenario — plus memory-controller sharing: the bandwidth-hungry GPU
// application additionally reaches a neighbour subNoC's MC through a
// boundary crossing (Section II-C.2, Fig. 5).
//
//	go run ./examples/multiapp
package main

import (
	"fmt"
	"log"

	"adaptnoc"
)

func main() {
	regions := []adaptnoc.Region{
		{X: 0, Y: 0, W: 4, H: 4}, // app 0: GPU kmeans
		{X: 4, Y: 0, W: 4, H: 4}, // app 1: CPU canneal
		{X: 0, Y: 4, W: 4, H: 4}, // app 2: CPU ferret
		{X: 4, Y: 4, W: 4, H: 4}, // app 3: GPU hotspot
	}
	apps := []adaptnoc.AppSpec{
		{Profile: "kmeans", Region: regions[0], MCTiles: adaptnoc.BlockMCs(regions[0]),
			Static: adaptnoc.Tree, ShareMCs: 1},
		{Profile: "canneal", Region: regions[1], MCTiles: adaptnoc.BlockMCs(regions[1]),
			Static: adaptnoc.CMesh},
		{Profile: "ferret", Region: regions[2], MCTiles: adaptnoc.BlockMCs(regions[2]),
			Static: adaptnoc.CMesh},
		{Profile: "hotspot", Region: regions[3], MCTiles: adaptnoc.BlockMCs(regions[3]),
			Static: adaptnoc.Torus},
	}

	sim, err := adaptnoc.NewSim(adaptnoc.Config{
		Design:      adaptnoc.DesignAdaptNoRL, // statically pinned topologies
		Apps:        apps,
		Seed:        7,
		EpochCycles: 10000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("four subNoCs, one per application:")
	for i, a := range apps {
		fmt.Printf("  app %d %-8s %v on a %v subNoC\n", i, a.Profile, a.Region, sim.Topology(i))
	}

	sim.Run(200000)
	res := sim.Results()
	fmt.Println()
	fmt.Print(res)
	fmt.Println("\neach application keeps its own topology; the kmeans subNoC also")
	fmt.Println("reaches its neighbour's memory controller over a boundary crossing.")
}
