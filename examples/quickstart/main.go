// Quickstart: simulate the paper's mixed workload (one GPU application and
// two CPU applications on an 8x8 chip) under the full Adapt-NoC design —
// reconfigurable fabric plus the pretrained per-subNoC RL policy — and
// compare it against the plain mesh baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"adaptnoc"
)

func main() {
	const cycles = 300000

	run := func(design adaptnoc.Design) adaptnoc.Results {
		cfg := adaptnoc.Config{
			Design: design,
			// bfs is a memory-hungry Rodinia-like GPU code on a 4x8
			// region; canneal and ferret are Parsec-like CPU codes on 4x4
			// regions. Each region has one memory controller per 2x4
			// block, as the paper provisions.
			Apps:        adaptnoc.DefaultMixed(0),
			Seed:        42,
			EpochCycles: 10000,
		}
		if design == adaptnoc.DesignAdaptNoC {
			cfg.RL.Pretrained = adaptnoc.DefaultPolicy()
		}
		sim, err := adaptnoc.NewSim(cfg)
		if err != nil {
			log.Fatal(err)
		}
		sim.Run(cycles)
		return sim.Results()
	}

	base := run(adaptnoc.DesignBaseline)
	adapt := run(adaptnoc.DesignAdaptNoC)

	fmt.Println("== baseline (8x8 mesh)")
	fmt.Print(base)
	fmt.Println("\n== adapt-noc (reconfigurable subNoCs + RL policy)")
	fmt.Print(adapt)

	fmt.Printf("\nnetwork latency: %.1f -> %.1f cycles (%.0f%% lower)\n",
		netLat(base), netLat(adapt), 100*(1-netLat(adapt)/netLat(base)))
}

func netLat(r adaptnoc.Results) float64 {
	var lat, n float64
	for _, a := range r.Apps {
		lat += a.AvgNetLatency * float64(a.DeliveredPackets)
		n += float64(a.DeliveredPackets)
	}
	return lat / n
}
