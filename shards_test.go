package adaptnoc_test

// Sharded-tick determinism: the shard count is an execution knob, never a
// simulation parameter. Every test here runs the same configuration serial
// and sharded and requires byte-identical artifacts — Results JSON and
// checkpoint blobs — plus a continuous invariant pass on the sharded path.
// `make race` runs this suite under the race detector, which doubles as
// the proof that the parallel phases share no state outside the barrier.

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"adaptnoc"
	"adaptnoc/internal/obs"
)

// shardCounts are the shard settings every determinism test exercises
// against the serial reference: a two-band split, a split deeper than the
// band count on small chips (clamped internally), and whatever the host
// would auto-select.
func shardCounts() []int {
	counts := []int{2, 4}
	if g := runtime.GOMAXPROCS(0); g != 2 && g != 4 && g > 1 {
		counts = append(counts, g)
	}
	return counts
}

// shardConfigs are the design points the suite covers: the plain mesh
// baseline, an Adapt fabric pinned to torus subNoCs (wraparound links are
// the worst case for band partitioning), and the RL-driven design whose
// epochs reconfigure wiring mid-run.
func shardConfigs() []adaptnoc.Config {
	torus := adaptnoc.DefaultMixed(0)
	for i := range torus {
		torus[i].Static = adaptnoc.Torus
	}
	return []adaptnoc.Config{
		{Design: adaptnoc.DesignBaseline, Apps: adaptnoc.DefaultMixed(0), Seed: 7, EpochCycles: 10000},
		{Design: adaptnoc.DesignAdaptNoRL, Apps: torus, Seed: 7, EpochCycles: 10000},
		{Design: adaptnoc.DesignAdaptNoC, Apps: adaptnoc.DefaultMixed(0), Seed: 7, EpochCycles: 10000},
	}
}

// TestShardedResultsByteIdentical runs each design serial and at every
// shard count and requires byte-identical Results JSON and checkpoint
// blobs. The checkpoint comparison is the stronger claim: not only the
// aggregate numbers but every packet, VC ring, credit counter, and RNG
// stream must land in the same state.
func TestShardedResultsByteIdentical(t *testing.T) {
	const cycles = 20000
	for _, cfg := range shardConfigs() {
		t.Run(cfg.Design.String(), func(t *testing.T) {
			ref, err := adaptnoc.NewSim(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref.Run(cycles)
			wantRes := resultsJSON(t, ref.Results())
			wantBlob, err := ref.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range shardCounts() {
				t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
					s, err := adaptnoc.NewSim(cfg)
					if err != nil {
						t.Fatal(err)
					}
					s.SetShards(k)
					defer s.StopWorkers()
					s.Run(cycles)
					if got := resultsJSON(t, s.Results()); !bytes.Equal(got, wantRes) {
						t.Errorf("results differ from serial:\n got %s\nwant %s", got, wantRes)
					}
					blob, err := s.Checkpoint()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(blob, wantBlob) {
						t.Errorf("checkpoint blob differs from serial (%d vs %d bytes)", len(blob), len(wantBlob))
					}
				})
			}
		})
	}
}

// TestShardedRestoreCrossesShardCounts proves checkpoints are portable
// across shard settings in both directions: a serial blob restored into a
// sharded run and a sharded blob restored into a serial run must both
// finish byte-identical to the uninterrupted serial reference.
func TestShardedRestoreCrossesShardCounts(t *testing.T) {
	const mid, total = 9000, 18000
	cfg := shardConfigs()[2] // the RL design: reconfiguration mid-window
	ref, err := adaptnoc.NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(total)
	want := resultsJSON(t, ref.Results())

	serial, err := adaptnoc.NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serial.Run(mid)
	serialBlob, err := serial.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := adaptnoc.NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharded.SetShards(2)
	defer sharded.StopWorkers()
	sharded.Run(mid)
	shardedBlob, err := sharded.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialBlob, shardedBlob) {
		t.Fatalf("mid-run blobs differ by shard count (%d vs %d bytes)", len(serialBlob), len(shardedBlob))
	}

	intoSharded, err := adaptnoc.RestoreSim(serialBlob)
	if err != nil {
		t.Fatal(err)
	}
	intoSharded.SetShards(3)
	defer intoSharded.StopWorkers()
	intoSharded.Run(total - mid)
	if got := resultsJSON(t, intoSharded.Results()); !bytes.Equal(got, want) {
		t.Errorf("serial blob + sharded finish diverged:\n got %s\nwant %s", got, want)
	}

	intoSerial, err := adaptnoc.RestoreSim(shardedBlob)
	if err != nil {
		t.Fatal(err)
	}
	intoSerial.Run(total - mid)
	if got := resultsJSON(t, intoSerial.Results()); !bytes.Equal(got, want) {
		t.Errorf("sharded blob + serial finish diverged:\n got %s\nwant %s", got, want)
	}
}

// TestShardedVerifyInvariants runs the full invariant checker every cycle
// of a sharded run: credit conservation, VC exclusivity, and flit
// accounting must hold at every barrier, not just at the end.
func TestShardedVerifyInvariants(t *testing.T) {
	cfg := shardConfigs()[1] // torus subNoCs: wraparound + dateline state
	s, err := adaptnoc.NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.SetShards(4)
	defer s.StopWorkers()
	s.Net.SetVerifier(1, obs.Verify)
	s.Run(6000)
	if err := obs.Verify(s.Net, s.Kernel.Now()); err != nil {
		t.Fatal(err)
	}
}

// TestShardedBigGridTiledMixed covers the chip sizes sharding exists for:
// a 16×16 tiled mixed workload, serial vs auto-selected shards.
func TestShardedBigGridTiledMixed(t *testing.T) {
	cfg := adaptnoc.Config{
		Design:      adaptnoc.DesignBaseline,
		Apps:        adaptnoc.TiledMixed(16, 16, 0),
		Width:       16,
		Height:      16,
		Seed:        7,
		EpochCycles: 10000,
	}
	const cycles = 6000
	ref, err := adaptnoc.NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(cycles)
	want := resultsJSON(t, ref.Results())
	wantBlob, err := ref.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	s, err := adaptnoc.NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.SetShards(0) // auto: 16×16 reaches the parallel threshold
	defer s.StopWorkers()
	if runtime.GOMAXPROCS(0) > 1 && s.Net.Shards() < 2 {
		t.Errorf("auto-select stayed serial on a %d-way host", runtime.GOMAXPROCS(0))
	}
	s.Run(cycles)
	if got := resultsJSON(t, s.Results()); !bytes.Equal(got, want) {
		t.Errorf("16x16 sharded results differ from serial:\n got %s\nwant %s", got, want)
	}
	blob, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, wantBlob) {
		t.Errorf("16x16 checkpoint blob differs from serial (%d vs %d bytes)", len(blob), len(wantBlob))
	}
}
