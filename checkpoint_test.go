package adaptnoc_test

// The checkpoint keystone: checkpoint a run mid-flight, restore the blob
// as a fresh process would (from the bytes alone), run both to the same
// cycle, and require byte-identical results — for every design point, for
// an RL run checkpointed mid-epoch, and across a file round-trip. The
// decoder is additionally fuzzed: truncated, corrupted, or wrong-version
// blobs must error, never panic.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"adaptnoc"
	"adaptnoc/internal/rl"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/snap"
)

var checkpointBenchJSON = flag.String("checkpoint-benchjson", "",
	"write checkpoint encode size/time measurements to this file (TestCheckpointBenchRecord)")

var checkpointBenchSmoke = flag.Bool("checkpoint-bench-smoke", false,
	"record a reduced single-config measurement (fast CI smoke; timing numbers are not meaningful)")

// chkConfig is the mixed workload at reduced epoch size, so a checkpoint
// mid-run lands several epochs in under the Adapt designs.
func chkConfig(d adaptnoc.Design) adaptnoc.Config {
	return adaptnoc.Config{
		Design:      d,
		Apps:        adaptnoc.DefaultMixed(0),
		Seed:        1234,
		EpochCycles: 10000,
	}
}

func resultsJSON(t testing.TB, r adaptnoc.Results) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// resumeByteIdentical checkpoints cfg at cycle mid, restores the blob in a
// subtest (from the bytes alone, as a fresh process would), runs both the
// original and the restored simulation to cycle total, and requires their
// results to be byte-identical to an uninterrupted run.
func resumeByteIdentical(t *testing.T, cfg adaptnoc.Config, mid, total adaptnoc.Cycle) {
	t.Helper()

	ref, err := adaptnoc.NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(total)
	want := resultsJSON(t, ref.Results())

	s, err := adaptnoc.NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(mid)
	blob, err := s.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint at cycle %d: %v", mid, err)
	}

	// The restore sees only the blob — the process boundary in miniature.
	t.Run("resume", func(t *testing.T) {
		r, err := adaptnoc.RestoreSim(blob)
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
		if now := r.Kernel.Now(); now != mid {
			t.Fatalf("restored clock at cycle %d, checkpointed at %d", now, mid)
		}
		// A restored simulation re-checkpoints to the identical blob: the
		// encoding is canonical, not an artifact of construction history.
		blob2, err := r.Checkpoint()
		if err != nil {
			t.Fatalf("re-checkpoint: %v", err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Errorf("re-checkpoint differs: %d vs %d bytes", len(blob), len(blob2))
		}
		r.Run(total - mid)
		if got := resultsJSON(t, r.Results()); !bytes.Equal(got, want) {
			t.Errorf("resumed results differ from uninterrupted run:\n got %s\nwant %s", got, want)
		}
	})

	// Checkpointing is a pure read: the original continues unperturbed.
	s.Run(total - mid)
	if got := resultsJSON(t, s.Results()); !bytes.Equal(got, want) {
		t.Errorf("checkpointed-then-continued results differ from uninterrupted run:\n got %s\nwant %s", got, want)
	}
}

func TestCheckpointResumeByteIdenticalAllDesigns(t *testing.T) {
	for d := adaptnoc.DesignBaseline; d < adaptnoc.NumDesigns; d++ {
		t.Run(d.String(), func(t *testing.T) {
			// 13000 is mid-epoch (epochs land at 10000, 20000, ...).
			resumeByteIdentical(t, chkConfig(d), 13000, 30000)
		})
	}
}

func TestCheckpointMidEpochRLTraining(t *testing.T) {
	cfg := chkConfig(adaptnoc.DesignAdaptNoC)
	cfg.EpochCycles = 5000
	cfg.RL.Train = true
	// 12500 sits between epoch boundaries, with the DQN agents already
	// holding replay experience and updated weights.
	t.Run("dqn", func(t *testing.T) { resumeByteIdentical(t, cfg, 12500, 30000) })

	qcfg := cfg
	qcfg.UseQTable = true
	t.Run("qtable", func(t *testing.T) { resumeByteIdentical(t, qcfg, 12500, 30000) })
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	cfg := chkConfig(adaptnoc.DesignAdaptNoC)
	ref, err := adaptnoc.NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(25000)
	want := resultsJSON(t, ref.Results())

	s, err := adaptnoc.NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(11000)
	path := filepath.Join(t.TempDir(), "mid.ckpt")
	if err := s.WriteCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file left behind: %v", err)
	}
	r, err := adaptnoc.RestoreSimFromFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r.Run(14000)
	if got := resultsJSON(t, r.Results()); !bytes.Equal(got, want) {
		t.Errorf("file round-trip results differ:\n got %s\nwant %s", got, want)
	}
}

func TestCheckpointRejectsSharedAgent(t *testing.T) {
	cfg := chkConfig(adaptnoc.DesignAdaptNoC)
	cfg.RL.SharedAgent = rl.NewDQN(rl.DefaultDQNConfig(), sim.NewRNG(1))
	cfg.RL.Train = true
	s, err := adaptnoc.NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(1000)
	if _, err := s.Checkpoint(); err == nil {
		t.Fatal("checkpoint of a shared-agent simulation did not error")
	}
}

func TestRestoreRejectsTruncation(t *testing.T) {
	s, err := adaptnoc.NewSim(chkConfig(adaptnoc.DesignBaseline))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2000)
	blob, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must fail cleanly. Step through offsets rather
	// than testing all of them: the blob is tens of kilobytes.
	for cut := 0; cut < len(blob); cut += 1 + cut/3 {
		if _, err := adaptnoc.RestoreSim(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d bytes restored successfully", cut, len(blob))
		}
	}
}

// TestRestoreAcceptsV1Blob proves checkpoints written by pre-compression
// builds still restore: the same sections framed with the uncompressed v1
// header (magic + version word 1 + raw body) must produce the same
// simulation as the current compressed framing.
func TestRestoreAcceptsV1Blob(t *testing.T) {
	s, err := adaptnoc.NewSim(chkConfig(adaptnoc.DesignAdaptNoC))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(5000)
	blob, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	body, err := snap.OpenBody(blob)
	if err != nil {
		t.Fatal(err)
	}
	v1 := []byte(snap.Magic)
	v1 = append(v1, byte(snap.VersionRaw), 0, 0, 0)
	v1 = append(v1, body...)

	a, err := adaptnoc.RestoreSim(blob)
	if err != nil {
		t.Fatal(err)
	}
	b, err := adaptnoc.RestoreSim(v1)
	if err != nil {
		t.Fatalf("v1-framed blob rejected: %v", err)
	}
	a.Run(5000)
	b.Run(5000)
	if av, bv := resultsJSON(t, a.Results()), resultsJSON(t, b.Results()); !bytes.Equal(av, bv) {
		t.Errorf("v1 restore diverged:\n got %s\nwant %s", bv, av)
	}
}

func FuzzRestoreSim(f *testing.F) {
	s, err := adaptnoc.NewSim(chkConfig(adaptnoc.DesignAdaptNoC))
	if err != nil {
		f.Fatal(err)
	}
	s.Run(2000)
	blob, err := s.Checkpoint()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add(blob[:16])
	f.Add([]byte{})
	f.Add([]byte("ADNOCKPTgarbage"))
	wrongVer := append([]byte(nil), blob...)
	wrongVer[8]++ // version word follows the 8-byte magic
	f.Add(wrongVer)
	corrupt := append([]byte(nil), blob...)
	corrupt[len(corrupt)/2] ^= 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic or allocate beyond what the input plausibly
		// describes; errors are the expected outcome for mutated blobs.
		if r, err := adaptnoc.RestoreSim(data); err == nil {
			// A successful restore must at least round-trip.
			if _, err := r.Checkpoint(); err != nil {
				t.Fatalf("restored sim fails to re-checkpoint: %v", err)
			}
		}
	})
}

// checkpointBenchRec is one BENCH_checkpoint.json row. Full-snapshot
// columns (bytes/encode/restore) keep their original meaning; the delta
// columns measure a warm rolling chain at -checkpoint-every granularity:
// run `every` cycles, CheckpointDeltaChained, repeat — the producer
// pattern serve's per-job chain and ChainWriter use. Rows in the "steady"
// regime (a small app region on a mostly-idle grid, the state every
// long-running campaign spends most of its wall-clock in) carry the
// perf gate adaptnoc-benchdiff -checkpoint enforces; "active" rows
// (the saturated 8x8 mixed workload) are recorded ungated — under full
// load most component records change every interval, so per-frame wins
// there are honest but modest.
type checkpointBenchRec struct {
	Design             string  `json:"design"`
	Regime             string  `json:"regime"` // "active" | "steady"
	Grid               string  `json:"grid,omitempty"`
	Cycle              int64   `json:"cycle"`
	Bytes              int     `json:"bytes"`
	EncodeSec          float64 `json:"encode_sec"`
	RestoreSec         float64 `json:"restore_sec"`
	LivePackets        int64   `json:"live_packets"`
	CheckpointEvery    int64   `json:"checkpoint_every"`
	DeltaBytes         int     `json:"delta_bytes"`
	DeltaEncodeSec     float64 `json:"delta_encode_sec"`
	DeltaSizeRatio     float64 `json:"delta_size_ratio"`
	DeltaEncodeSpeedup float64 `json:"delta_encode_speedup"`
}

// measureCheckpoint benches one configuration: mean full encode/restore
// after warmup cycles, then a rolling delta chain (`iters` frames, one
// every `every` cycles), and finally the identity proof — base ⊕ frames
// must reproduce, byte for byte, the full checkpoint at the chain tip's
// cycle.
func measureCheckpoint(t *testing.T, cfg adaptnoc.Config, warmup, every adaptnoc.Cycle, iters int) checkpointBenchRec {
	t.Helper()
	s, err := adaptnoc.NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(warmup)

	var blob []byte
	start := time.Now()
	for i := 0; i < iters; i++ {
		if blob, err = s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	encode := time.Since(start).Seconds() / float64(iters)

	start = time.Now()
	var restored *adaptnoc.Sim
	for i := 0; i < iters; i++ {
		if restored, err = adaptnoc.RestoreSim(blob); err != nil {
			t.Fatal(err)
		}
	}
	restore := time.Since(start).Seconds() / float64(iters)
	live := restored.Net.TotalEnqueued - restored.Net.TotalDelivered

	// Warm rolling chain off the full checkpoint just taken.
	frames := make([][]byte, 0, iters)
	deltaBytes := 0
	var deltaSec float64
	for i := 0; i < iters; i++ {
		s.Run(every)
		start = time.Now()
		frame, err := s.CheckpointDeltaChained()
		if err != nil {
			t.Fatal(err)
		}
		deltaSec += time.Since(start).Seconds()
		deltaBytes += len(frame)
		frames = append(frames, frame)
	}
	deltaSec /= float64(iters)
	deltaBytes /= iters

	// Identity: the chain must reconstruct the exact blob a full
	// checkpoint writes at the same cycle — the bench doubles as the
	// restore-correctness smoke for the measured path.
	rebuilt, err := snap.ApplyChain(blob, frames...)
	if err != nil {
		t.Fatalf("applying measured delta chain: %v", err)
	}
	full, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rebuilt, full) {
		t.Fatalf("base ⊕ %d deltas differs from the full checkpoint at cycle %d", len(frames), s.Kernel.Now())
	}

	return checkpointBenchRec{
		Design: cfg.Design.String(), Cycle: int64(s.Kernel.Now()), Bytes: len(blob),
		EncodeSec: encode, RestoreSec: restore, LivePackets: live,
		CheckpointEvery: int64(every), DeltaBytes: deltaBytes, DeltaEncodeSec: deltaSec,
		DeltaSizeRatio:     float64(len(blob)) / float64(deltaBytes),
		DeltaEncodeSpeedup: encode / deltaSec,
	}
}

// TestCheckpointBenchRecord measures full-checkpoint and delta-chain
// encode size and time per design and writes BENCH_checkpoint.json when
// -checkpoint-benchjson is set (wired to `make bench-checkpoint`, which
// then gates the steady rows through adaptnoc-benchdiff -checkpoint).
func TestCheckpointBenchRecord(t *testing.T) {
	if *checkpointBenchJSON == "" {
		t.Skip("set -checkpoint-benchjson to record")
	}
	const every = 1000
	var recs []checkpointBenchRec

	// Steady regime: one small app region on a mostly-idle grid. The
	// splice-cached snapshot walk and part-aligned diff make these deltas
	// both far smaller and far cheaper than the full encode; larger grids
	// widen the gap because the untouched area grows while the delta stays
	// the size of the active region.
	steady := func(dim int, warmup adaptnoc.Cycle, iters int) {
		cfg := adaptnoc.Config{
			Design: adaptnoc.DesignBaseline, Width: dim, Height: dim,
			Apps: []adaptnoc.AppSpec{{Profile: "blackscholes", Region: adaptnoc.Region{W: 4, H: 4}}},
			Seed: 1234,
		}
		rec := measureCheckpoint(t, cfg, warmup, every, iters)
		rec.Regime = "steady"
		rec.Grid = fmt.Sprintf("%dx%d", dim, dim)
		recs = append(recs, rec)
	}

	if *checkpointBenchSmoke {
		// One reduced steady config: proves the delta chain applies and
		// the row schema parses end-to-end. Timing is not meaningful at
		// this length; benchdiff's smoke invocation gates size only.
		steady(16, 6000, 4)
	} else {
		for d := adaptnoc.DesignBaseline; d < adaptnoc.NumDesigns; d++ {
			rec := measureCheckpoint(t, chkConfig(d), 20000, every, 8)
			rec.Regime = "active"
			recs = append(recs, rec)
		}
		steady(24, 20000, 8)
		steady(32, 20000, 8)
	}

	out, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*checkpointBenchJSON, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s (%d rows)\n", *checkpointBenchJSON, len(recs))
}
