package adaptnoc

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseAppSpecs parses a compact workload description, one application per
// semicolon-separated entry:
//
//	profile:X,Y,W,H[:topology]
//
// e.g. "bfs:0,0,4,8:tree; canneal:4,0,4,4:cmesh; ferret:4,4,4,4".
// The topology (mesh, cmesh, torus, tree, torus+tree) pins the subNoC
// under DesignAdaptNoRL and seeds DesignAdaptNoC; it defaults to mesh.
// Memory controllers are provisioned one per 2x4 block (BlockMCs).
func ParseAppSpecs(s string) ([]AppSpec, error) {
	var out []AppSpec
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("adaptnoc: app entry %q: want profile:X,Y,W,H[:topology]", entry)
		}
		profile := strings.TrimSpace(parts[0])
		if err := CheckProfile(profile); err != nil {
			return nil, err
		}
		dims := strings.Split(parts[1], ",")
		if len(dims) != 4 {
			return nil, fmt.Errorf("adaptnoc: app entry %q: region needs X,Y,W,H", entry)
		}
		var vals [4]int
		for i, d := range dims {
			v, err := strconv.Atoi(strings.TrimSpace(d))
			if err != nil {
				return nil, fmt.Errorf("adaptnoc: app entry %q: bad region coordinate %q", entry, d)
			}
			vals[i] = v
		}
		reg := Region{X: vals[0], Y: vals[1], W: vals[2], H: vals[3]}
		if reg.W <= 0 || reg.H <= 0 {
			return nil, fmt.Errorf("adaptnoc: app entry %q: empty region", entry)
		}
		spec := AppSpec{Profile: profile, Region: reg, MCTiles: BlockMCs(reg)}
		if len(parts) == 3 {
			kind, err := ParseKind(strings.TrimSpace(parts[2]))
			if err != nil {
				return nil, fmt.Errorf("adaptnoc: app entry %q: %w", entry, err)
			}
			spec.Static = kind
		}
		out = append(out, spec)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("adaptnoc: no applications in %q", s)
	}
	return out, nil
}

// ParseKind parses a topology name.
func ParseKind(s string) (Kind, error) {
	for _, k := range []Kind{Mesh, CMesh, Torus, Tree, TorusTree} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("adaptnoc: unknown topology %q", s)
}

// ParseDesign parses a design-point name (baseline, oscar, shortcut, ftby,
// ftby-pg, adapt-norl, adapt-noc).
func ParseDesign(s string) (Design, error) {
	for d := DesignBaseline; d < NumDesigns; d++ {
		if d.String() == s {
			return d, nil
		}
	}
	return 0, fmt.Errorf("adaptnoc: unknown design %q", s)
}
