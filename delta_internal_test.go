package adaptnoc

// White-box guard for the generation counters. A counter that misses a
// mutation site would make CheckpointDelta silently reuse stale bytes for
// a changed layer — the one failure mode the self-validating frame format
// cannot catch, because the encoder computes the result hash over the
// stale bytes it believed. deltaDebugVerify re-walks every skipped
// section and errors on any divergence; running chains under it across
// the designs is the regression net for newly added mutation sites.

import (
	"testing"

	"adaptnoc/internal/fault"
	"adaptnoc/internal/noc"
)

func TestDeltaGenCountersTruthful(t *testing.T) {
	deltaDebugVerify = true
	noc.SnapshotVerify = true
	defer func() { deltaDebugVerify = false; noc.SnapshotVerify = false }()

	run := func(t *testing.T, cfg Config) {
		s, err := NewSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run(10000)
		if _, err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			s.Run(1500)
			if _, err := s.CheckpointDeltaChained(); err != nil {
				t.Fatalf("after %d cycles: %v", s.Kernel.Now(), err)
			}
		}
	}

	base := Config{Apps: DefaultMixed(0), Seed: 1234, EpochCycles: 10000}
	for d := DesignBaseline; d < NumDesigns; d++ {
		cfg := base
		cfg.Design = d
		t.Run(d.String(), func(t *testing.T) { run(t, cfg) })
	}
	t.Run("train", func(t *testing.T) {
		cfg := base
		cfg.Design = DesignAdaptNoC
		cfg.EpochCycles = 5000
		cfg.RL.Train = true
		run(t, cfg)
	})
	t.Run("faults", func(t *testing.T) {
		cfg := base
		cfg.Design = DesignAdaptNoC
		cfg.Faults = []fault.Event{
			{Cycle: 11000, Kind: fault.KindLink, Router: 25, Port: noc.PortEast, Repair: 2500},
		}
		run(t, cfg)
	})
}
