package adaptnoc

import (
	"context"
	"fmt"
	"strings"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/power"
	"adaptnoc/internal/topology"
)

// AppResult summarizes one application's run.
type AppResult struct {
	Profile string `json:"profile"`
	Region  Region `json:"region"`

	// Latencies are lifetime means over delivered packets, in cycles.
	AvgTotalLatency float64 `json:"avgTotalLatency"`
	AvgNetLatency   float64 `json:"avgNetLatency"`
	AvgQueueLatency float64 `json:"avgQueueLatency"`
	AvgHops         float64 `json:"avgHops"`

	DeliveredPackets int64 `json:"deliveredPackets"`
	RetiredInstr     int64 `json:"retiredInstr"`

	// DroppedPackets counts packets a fault made undeliverable. omitempty
	// keeps fault-free Results JSON byte-identical to earlier versions.
	DroppedPackets int64 `json:"droppedPackets,omitempty"`

	// ExecTime is the completion cycle for budgeted apps (-1 otherwise).
	ExecTime Cycle `json:"execTime"`

	// Energy is the region's account (per-epoch for Adapt designs, one
	// final window otherwise).
	Energy EnergyBreakdown `json:"energy"`

	// Adapt-NoC only: per-topology selection fractions (including the
	// TorusTree extension) and reconfiguration statistics.
	Selections [int(topology.NumSelectable)]float64 `json:"selections"`
	Reconfigs  int64                                `json:"reconfigs"`
	FinalKind  Kind                                 `json:"finalKind"`
	MeanReward float64                              `json:"meanReward"`
}

// Results is one simulation's outcome.
type Results struct {
	Design Design      `json:"design"`
	Cycles Cycle       `json:"cycles"`
	Apps   []AppResult `json:"apps"`
	// TotalEnergy covers the whole chip.
	TotalEnergy EnergyBreakdown `json:"totalEnergy"`
}

// Run advances the simulation a fixed number of cycles.
func (s *Sim) Run(cycles Cycle) { s.Kernel.RunFor(cycles) }

// SetShards sets the network-tick shard count: 1 is serial, k > 1 ticks
// the chip's row bands on k goroutines, and k <= 0 selects automatically
// (parallel on multi-core hosts once the chip reaches 16×16). Sharding is
// a runtime execution knob — any value computes byte-identical results —
// so it is not part of Config and may be changed at any cycle boundary.
func (s *Sim) SetShards(k int) { s.Net.SetShards(k) }

// StopWorkers releases the shard worker goroutines of a parked
// simulation; the next run restarts them on demand.
func (s *Sim) StopWorkers() { s.Net.StopWorkers() }

// RunUntilFinished advances until every budgeted application completes or
// maxCycles elapse; it reports whether everything finished.
func (s *Sim) RunUntilFinished(maxCycles Cycle) bool {
	finished, _ := s.RunUntilFinishedContext(context.Background(), maxCycles)
	return finished
}

// runCheckCycles is the cancellation-poll granularity of the context-aware
// run methods: ctx.Err() is consulted every runCheckCycles kernel cycles,
// so cancellation interrupts a simulation well within one control epoch
// (epochs are 10K cycles and up) instead of after the remaining window.
const runCheckCycles = 1024

// RunContext advances the simulation a fixed number of cycles, like Run,
// but polls ctx every runCheckCycles cycles and stops early with ctx's
// error when it is cancelled. A nil return means the full window ran.
// Cancellation never corrupts the simulation: it stops between cycles, and
// the sim can be resumed or inspected (Results) afterwards.
func (s *Sim) RunContext(ctx context.Context, cycles Cycle) error {
	limit := s.Kernel.Now() + cycles
	for s.Kernel.Now() < limit {
		if err := ctx.Err(); err != nil {
			return err
		}
		slice := Cycle(runCheckCycles)
		if rem := limit - s.Kernel.Now(); rem < slice {
			slice = rem
		}
		s.Kernel.RunFor(slice)
	}
	return nil
}

// RunUntilFinishedContext advances until every budgeted application
// completes, maxCycles elapse, or ctx is cancelled, whichever happens
// first. It steps cycle-by-cycle (so the stop cycle — and therefore the
// energy accounting window — is identical to RunUntilFinished) and polls
// ctx every runCheckCycles cycles. It reports whether everything finished
// and the context error, if cancellation cut the run short.
func (s *Sim) RunUntilFinishedContext(ctx context.Context, maxCycles Cycle) (bool, error) {
	limit := s.Kernel.Now() + maxCycles
	for steps := 0; s.Kernel.Now() < limit && !s.Machine.AllFinished(); steps++ {
		if steps%runCheckCycles == 0 {
			if err := ctx.Err(); err != nil {
				return s.Machine.AllFinished(), err
			}
		}
		s.Kernel.Step()
	}
	return s.Machine.AllFinished(), nil
}

// Results flushes the remaining energy windows and assembles the outcome.
// Call once, after running.
func (s *Sim) Results() Results {
	now := s.Kernel.Now()
	res := Results{Design: s.Cfg.Design, Cycles: now}

	// Flush energy windows. Adapt designs collected per epoch already;
	// this picks up the tail. Other designs get their only window here.
	covered := make(map[noc.NodeID]bool)
	perApp := make([]power.Breakdown, len(s.apps))
	for i, app := range s.apps {
		tiles := s.specs[i].Region.Tiles(s.Net.Cfg.Width)
		w := s.Meter.CollectRegionAt(tiles, now)
		perApp[i] = w.Energy
		for _, t := range tiles {
			covered[t] = true
		}
		_ = app
	}
	// Leftover tiles (outside every app region) still leak static power.
	var leftovers []noc.NodeID
	for t := noc.NodeID(0); int(t) < s.Net.Cfg.NumNodes(); t++ {
		if !covered[t] {
			leftovers = append(leftovers, t)
		}
	}
	if len(leftovers) > 0 {
		s.Meter.CollectRegionAt(leftovers, now)
	}
	res.TotalEnergy = s.Meter.Total()

	for i, app := range s.apps {
		tot := app.Totals()
		ar := AppResult{
			// The app's label, not the spec's Profile field: a trace-driven
			// spec has no Profile, but its app carries the recorded name, so
			// replay rows merge into the same results tables.
			Profile:          app.Profile.Name,
			Region:           s.specs[i].Region,
			AvgNetLatency:    tot.AvgNetLatency(),
			AvgQueueLatency:  tot.AvgQueueLatency(),
			AvgHops:          tot.AvgHops(),
			AvgTotalLatency:  tot.AvgNetLatency() + tot.AvgQueueLatency(),
			DeliveredPackets: tot.Delivered,
			RetiredInstr:     tot.Retired,
			DroppedPackets:   s.Machine.DroppedPackets(app.ID),
			ExecTime:         app.FinishedAt(),
			Energy:           perApp[i],
			FinalKind:        Mesh,
		}
		if s.binds != nil {
			b := s.binds[i]
			ar.Selections = b.SelectionFractions()
			ar.Reconfigs = b.SubNoC.Reconfigs
			ar.FinalKind = b.SubNoC.Kind
			ar.MeanReward = b.MeanReward()
			// Fold the per-epoch energy collections into the app account.
			e := b.Energy
			e.Add(perApp[i])
			ar.Energy = e
		}
		res.Apps = append(res.Apps, ar)
	}
	return res
}

// MeanLatency returns the delivery-weighted mean total packet latency
// across apps (the Fig. 7 metric).
func (r Results) MeanLatency() float64 {
	var lat, n float64
	for _, a := range r.Apps {
		lat += a.AvgTotalLatency * float64(a.DeliveredPackets)
		n += float64(a.DeliveredPackets)
	}
	if n == 0 {
		return 0
	}
	return lat / n
}

// MeanHops returns the delivery-weighted mean hop count.
func (r Results) MeanHops() float64 {
	var h, n float64
	for _, a := range r.Apps {
		h += a.AvgHops * float64(a.DeliveredPackets)
		n += float64(a.DeliveredPackets)
	}
	if n == 0 {
		return 0
	}
	return h / n
}

// SurvivalRate returns the fraction of enqueued packets that survived to
// delivery: delivered / (delivered + dropped) across apps. With no traffic
// (or no faults) it is 1.
func (r Results) SurvivalRate() float64 {
	var delivered, dropped float64
	for _, a := range r.Apps {
		delivered += float64(a.DeliveredPackets)
		dropped += float64(a.DroppedPackets)
	}
	if delivered+dropped == 0 {
		return 1
	}
	return delivered / (delivered + dropped)
}

// MeanExecTime returns the mean completion cycle over budgeted apps, or -1
// if any did not finish.
func (r Results) MeanExecTime() float64 {
	var s float64
	n := 0
	for _, a := range r.Apps {
		if a.ExecTime < 0 {
			return -1
		}
		s += float64(a.ExecTime)
		n++
	}
	if n == 0 {
		return -1
	}
	return s / float64(n)
}

// String renders a human-readable summary.
func (r Results) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "design=%s cycles=%d energy=%.2fuJ (dyn %.2f, static %.2f)\n",
		r.Design, r.Cycles, r.TotalEnergy.TotalPJ()/1e6,
		r.TotalEnergy.DynamicPJ()/1e6, r.TotalEnergy.StaticPJ()/1e6)
	for _, a := range r.Apps {
		fmt.Fprintf(&b, "  %-14s %v lat=%.1f (net %.1f + queue %.1f) hops=%.2f pkts=%d",
			a.Profile, a.Region, a.AvgTotalLatency, a.AvgNetLatency, a.AvgQueueLatency,
			a.AvgHops, a.DeliveredPackets)
		if a.DroppedPackets > 0 {
			fmt.Fprintf(&b, " drop=%d", a.DroppedPackets)
		}
		if a.ExecTime >= 0 {
			fmt.Fprintf(&b, " exec=%d", a.ExecTime)
		}
		if a.Reconfigs > 0 || r.Design == DesignAdaptNoC || r.Design == DesignAdaptNoRL {
			fmt.Fprintf(&b, " kind=%v reconf=%d sel=[", a.FinalKind, a.Reconfigs)
			for k := 0; k < int(topology.NumSelectable); k++ {
				if k >= int(topology.NumKinds) && a.Selections[k] == 0 {
					continue // show the extension only when used
				}
				if k > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%s:%.0f%%", Kind(k), 100*a.Selections[k])
			}
			b.WriteString("]")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
