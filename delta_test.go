package adaptnoc_test

// Delta-checkpoint keystone: a base blob plus a chain of delta frames must
// reconstruct the byte-identical full checkpoint at the chain tip — for
// every design, at any shard count, across a process boundary, and through
// the on-disk base + log pair a ChainWriter leaves behind (including the
// torn tails a crash produces).

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"adaptnoc"
	"adaptnoc/internal/fault"
	"adaptnoc/internal/noc"
	"adaptnoc/internal/snap"
)

// deltaChain runs a sim to base cycle, then takes steps delta frames
// spaced `every` cycles apart, returning the base blob and the frames.
func deltaChain(t *testing.T, s *adaptnoc.Sim, base adaptnoc.Cycle, steps int, every adaptnoc.Cycle) ([]byte, [][]byte) {
	t.Helper()
	s.Run(base - s.Kernel.Now())
	blob, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	frames := make([][]byte, 0, steps)
	for i := 0; i < steps; i++ {
		s.Run(every)
		f, err := s.CheckpointDeltaChained()
		if err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		if !snap.IsDelta(f) {
			t.Fatalf("delta %d does not carry the delta magic", i)
		}
		frames = append(frames, f)
	}
	return blob, frames
}

// TestDeltaChainByteIdenticalAllDesigns is the core equivalence: applying
// the chain reproduces, byte for byte, the full checkpoint the sim would
// write at the tip cycle.
func TestDeltaChainByteIdenticalAllDesigns(t *testing.T) {
	for d := adaptnoc.DesignBaseline; d < adaptnoc.NumDesigns; d++ {
		t.Run(d.String(), func(t *testing.T) {
			s, err := adaptnoc.NewSim(chkConfig(d))
			if err != nil {
				t.Fatal(err)
			}
			base, frames := deltaChain(t, s, 10000, 3, 2000)
			applied, err := snap.ApplyChain(base, frames...)
			if err != nil {
				t.Fatal(err)
			}
			full, err := s.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(applied, full) {
				t.Fatalf("base ⊕ %d deltas (%d bytes) differs from full checkpoint (%d bytes)",
					len(frames), len(applied), len(full))
			}
		})
	}
}

// TestDeltaChainWithFaults covers the fault section's generation counter:
// a chain spanning a strike, its drain, and its repair still reconstructs
// the full blob exactly.
func TestDeltaChainWithFaults(t *testing.T) {
	cfg := faultConfig(adaptnoc.DesignAdaptNoC,
		fault.Event{Cycle: 11000, Kind: fault.KindLink, Router: 25, Port: noc.PortEast, Repair: 3000})
	s, err := adaptnoc.NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, frames := deltaChain(t, s, 10000, 4, 2000)
	applied, err := snap.ApplyChain(base, frames...)
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(applied, full) {
		t.Fatal("faulted chain does not reconstruct the full checkpoint")
	}
}

// TestDeltaResumeByteIdentical restores a chain-reconstructed blob in a
// fresh sim and requires the resumed run to match the uninterrupted one.
func TestDeltaResumeByteIdentical(t *testing.T) {
	s, err := adaptnoc.NewSim(chkConfig(adaptnoc.DesignAdaptNoC))
	if err != nil {
		t.Fatal(err)
	}
	base, frames := deltaChain(t, s, 10000, 3, 2000) // tip at 16000
	applied, err := snap.ApplyChain(base, frames...)
	if err != nil {
		t.Fatal(err)
	}
	r, err := adaptnoc.RestoreSim(applied)
	if err != nil {
		t.Fatal(err)
	}
	if now := r.Kernel.Now(); now != 16000 {
		t.Fatalf("restored clock at %d, want 16000", now)
	}
	r.Run(14000)
	s.Run(14000)
	if got, want := resultsJSON(t, r.Results()), resultsJSON(t, s.Results()); !bytes.Equal(got, want) {
		t.Errorf("delta-resumed results differ:\n got %s\nwant %s", got, want)
	}
}

// TestDeltaExplicitBaseWarmAndCold exercises both CheckpointDelta paths:
// warm (the base is the sim's own last checkpoint, part marks and
// generation skips available) and cold (a different process restored the
// base, no encoder cache). The frames may differ — the cold diff is
// coarser — but both must apply to the identical full blob.
func TestDeltaExplicitBaseWarmAndCold(t *testing.T) {
	cfg := chkConfig(adaptnoc.DesignAdaptNoC)
	s, err := adaptnoc.NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(11000)
	base, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	s.Run(3000)
	warm, err := s.CheckpointDelta(base)
	if err != nil {
		t.Fatal(err)
	}

	r, err := adaptnoc.RestoreSim(base) // the process boundary
	if err != nil {
		t.Fatal(err)
	}
	r.Run(3000)
	cold, err := r.CheckpointDelta(base)
	if err != nil {
		t.Fatal(err)
	}

	full, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	for name, frame := range map[string][]byte{"warm": warm, "cold": cold} {
		got, err := snap.ApplyDelta(base, frame)
		if err != nil {
			t.Fatalf("%s frame failed to apply: %v", name, err)
		}
		if !bytes.Equal(got, full) {
			t.Errorf("%s frame reconstructs a different blob", name)
		}
	}
	if len(warm) > len(cold) {
		t.Logf("note: warm frame (%d bytes) larger than cold (%d bytes)", len(warm), len(cold))
	}
}

// TestDeltaFramesShardInvariant: the frame bytes are a pure function of
// simulation content, so chains produced at different shard counts are
// byte-identical — a delta written by a sharded worker applies against a
// base written by an unsharded one.
func TestDeltaFramesShardInvariant(t *testing.T) {
	make := func(shards int) ([]byte, [][]byte) {
		s, err := adaptnoc.NewSim(chkConfig(adaptnoc.DesignAdaptNoC))
		if err != nil {
			t.Fatal(err)
		}
		s.SetShards(shards)
		return deltaChain(t, s, 10000, 2, 2000)
	}
	base1, frames1 := make(1)
	base4, frames4 := make(4)
	if !bytes.Equal(base1, base4) {
		t.Fatal("base blobs differ across shard counts")
	}
	for i := range frames1 {
		if !bytes.Equal(frames1[i], frames4[i]) {
			t.Errorf("delta frame %d differs across shard counts (%d vs %d bytes)",
				i, len(frames1[i]), len(frames4[i]))
		}
	}
}

// TestDeltaQuiescentIsTiny is the "near-free" claim at its limit: with no
// simulated work between two checkpoints, the delta collapses to the
// frame header plus a compressed all-COPY script.
func TestDeltaQuiescentIsTiny(t *testing.T) {
	s, err := adaptnoc.NewSim(chkConfig(adaptnoc.DesignAdaptNoC))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(20000)
	full, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	frame, err := s.CheckpointDeltaChained()
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) > 512 {
		t.Errorf("quiescent delta is %d bytes, want <= 512", len(frame))
	}
	if len(frame)*20 > len(full) {
		t.Errorf("quiescent delta %d bytes not <= 1/20 of full %d bytes", len(frame), len(full))
	}
	applied, err := snap.ApplyDelta(full, frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(applied, full) {
		t.Fatal("quiescent delta does not reproduce its base")
	}
}

// TestChainWriterRoundTrip drives the CLI-facing path end to end: a
// checkpointed run leaves a base + delta log pair, RestoreSimFromFile
// resumes from the chain tip, and the resumed run matches the
// uninterrupted one. Then the log is damaged the ways a crash damages it.
func TestChainWriterRoundTrip(t *testing.T) {
	cfg := chkConfig(adaptnoc.DesignAdaptNoC)
	ref, err := adaptnoc.NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(25000)
	want := resultsJSON(t, ref.Results())

	s, err := adaptnoc.NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "roll.ckpt")
	if err := s.RunContextCheckpointed(context.Background(), 15000, path, 2000); err != nil {
		t.Fatal(err)
	}
	logPath := path + ".delta"
	fi, err := os.Stat(logPath)
	if err != nil {
		t.Fatalf("no delta log beside the base: %v", err)
	}
	baseFi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// 7 frames (saves at 4k..14k and 15k on top of the 2k base) must cost
	// less than 7 more full blobs would. Under saturated traffic the
	// packet population churns completely between saves, so per-frame
	// savings here are modest; the steady-state regime is benched
	// separately (make bench-checkpoint).
	if fi.Size() >= 7*baseFi.Size() {
		t.Errorf("delta log (%d bytes) not smaller than 7 full checkpoints (%d bytes each)", fi.Size(), baseFi.Size())
	}

	resume := func(t *testing.T, wantCycle adaptnoc.Cycle) {
		t.Helper()
		r, err := adaptnoc.RestoreSimFromFile(path)
		if err != nil {
			t.Fatal(err)
		}
		now := r.Kernel.Now()
		if wantCycle >= 0 && now != wantCycle {
			t.Fatalf("restored clock at %d, want %d", now, wantCycle)
		}
		r.Run(25000 - now)
		if got := resultsJSON(t, r.Results()); !bytes.Equal(got, want) {
			t.Errorf("resumed results differ from uninterrupted run:\n got %s\nwant %s", got, want)
		}
	}
	t.Run("intact", func(t *testing.T) { resume(t, 15000) })

	// A crash mid-append leaves a torn record at the tail; recovery uses
	// the intact prefix.
	log, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("torn-tail", func(t *testing.T) {
		if err := os.WriteFile(logPath, append(append([]byte(nil), log...), 0xff, 0x07, 'x'), 0o644); err != nil {
			t.Fatal(err)
		}
		resume(t, 15000)
	})
	t.Run("half-log", func(t *testing.T) {
		if err := os.WriteFile(logPath, log[:len(log)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		resume(t, -1) // lands on whatever boundary the prefix reaches
	})
	t.Run("no-log", func(t *testing.T) {
		if err := os.Remove(logPath); err != nil {
			t.Fatal(err)
		}
		resume(t, 2000) // the base alone
	})
}

// TestChainWriterRebases: the log truncates at the MaxDeltas threshold,
// and a foreign Checkpoint between saves forces a rebase instead of an
// unappliable frame.
func TestChainWriterRebases(t *testing.T) {
	s, err := adaptnoc.NewSim(chkConfig(adaptnoc.DesignAdaptNoC))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "roll.ckpt")
	cw := &adaptnoc.ChainWriter{Path: path, MaxDeltas: 2}
	save := func() {
		t.Helper()
		s.Run(1000)
		if err := cw.Save(s); err != nil {
			t.Fatal(err)
		}
	}
	save() // full @1000
	save() // delta 1
	save() // delta 2
	save() // threshold: rebase @4000
	if _, err := os.Stat(path + ".delta"); !os.IsNotExist(err) {
		t.Fatalf("rebase did not remove the delta log: %v", err)
	}
	r, err := adaptnoc.RestoreSimFromFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if now := r.Kernel.Now(); now != 4000 {
		t.Fatalf("restored clock at %d, want 4000 after rebase", now)
	}

	// A checkpoint taken outside the writer advances the sim's delta
	// lineage past the writer's tip; the next Save must notice and rebase.
	s.Run(500)
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	save() // @5500: lineage broken, expect a fresh full base
	if _, err := os.Stat(path + ".delta"); !os.IsNotExist(err) {
		t.Fatal("broken-lineage save appended a frame instead of rebasing")
	}
	r, err = adaptnoc.RestoreSimFromFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if now := r.Kernel.Now(); now != 5500 {
		t.Fatalf("restored clock at %d, want 5500", now)
	}
}
