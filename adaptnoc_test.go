package adaptnoc

import (
	"testing"

	"adaptnoc/internal/topology"
)

// runDesign executes a design point on the default mixed workload for a
// fixed window and returns results.
func runDesign(t *testing.T, d Design, cycles Cycle) Results {
	t.Helper()
	s, err := NewSim(Config{
		Design:      d,
		Apps:        DefaultMixed(0),
		Seed:        1234,
		EpochCycles: 10000,
	})
	if err != nil {
		t.Fatalf("%v: %v", d, err)
	}
	s.Run(cycles)
	return s.Results()
}

func TestAllDesignsRunTheMixedWorkload(t *testing.T) {
	for d := DesignBaseline; d < NumDesigns; d++ {
		res := runDesign(t, d, 60000)
		for _, a := range res.Apps {
			if a.DeliveredPackets == 0 {
				t.Errorf("%v: app %s delivered no packets", d, a.Profile)
			}
			if a.RetiredInstr == 0 {
				t.Errorf("%v: app %s retired no instructions", d, a.Profile)
			}
		}
		if res.TotalEnergy.TotalPJ() <= 0 {
			t.Errorf("%v: no energy accounted", d)
		}
		if res.TotalEnergy.DynamicPJ() <= 0 || res.TotalEnergy.StaticPJ() <= 0 {
			t.Errorf("%v: energy split empty: %v", d, res.TotalEnergy)
		}
	}
}

func TestAdaptDesignsReduceHopsVsBaseline(t *testing.T) {
	base := runDesign(t, DesignBaseline, 100000)
	norl := runDesign(t, DesignAdaptNoRL, 100000)
	if norl.MeanHops() >= base.MeanHops() {
		t.Fatalf("Adapt-NoC-noRL hops %.2f not below baseline %.2f",
			norl.MeanHops(), base.MeanHops())
	}
}

func TestFTBYHasLowestHopCount(t *testing.T) {
	base := runDesign(t, DesignBaseline, 80000)
	ftby := runDesign(t, DesignFTBY, 80000)
	if ftby.MeanHops() >= base.MeanHops() {
		t.Fatalf("FTBY hops %.2f not below baseline %.2f", ftby.MeanHops(), base.MeanHops())
	}
}

func TestExecutionTimeCompletes(t *testing.T) {
	s, err := NewSim(Config{
		Design: DesignBaseline,
		Apps:   DefaultMixed(2000),
		Seed:   99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.RunUntilFinished(5_000_000) {
		t.Fatal("mixed workload did not finish")
	}
	res := s.Results()
	if res.MeanExecTime() <= 0 {
		t.Fatalf("no execution time: %v", res.MeanExecTime())
	}
}

func TestAdaptNoCSelectsAndReconfigures(t *testing.T) {
	s, err := NewSim(Config{
		Design:      DesignAdaptNoC,
		Apps:        DefaultMixed(0),
		Seed:        7,
		EpochCycles: 5000,
		RL:          RLOptions{Train: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(100000)
	res := s.Results()
	anyReconf := false
	kindsTried := map[int]bool{}
	for _, a := range res.Apps {
		for k, f := range a.Selections {
			if f > 0 {
				kindsTried[k] = true
			}
		}
		if a.Reconfigs > 0 {
			anyReconf = true
		}
	}
	// With epsilon-greedy exploration across three subNoCs and dozens of
	// epochs, at least two topologies must have been selected somewhere.
	if len(kindsTried) < 2 {
		t.Fatalf("policy never explored beyond one topology: %v", kindsTried)
	}
	if !anyReconf {
		t.Fatal("no subNoC ever reconfigured")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	r1 := runDesign(t, DesignAdaptNoRL, 50000)
	r2 := runDesign(t, DesignAdaptNoRL, 50000)
	if r1.MeanLatency() != r2.MeanLatency() || r1.TotalEnergy.TotalPJ() != r2.TotalEnergy.TotalPJ() {
		t.Fatalf("same seed, different results: %v vs %v", r1.MeanLatency(), r2.MeanLatency())
	}
}

func TestNewSimRejectsBadConfigs(t *testing.T) {
	if _, err := NewSim(Config{Design: DesignBaseline}); err == nil {
		t.Fatal("accepted empty app list")
	}
	if _, err := NewSim(Config{Design: DesignBaseline, Apps: []AppSpec{
		{Profile: "no-such-benchmark", Region: Region{W: 4, H: 4}},
	}}); err == nil {
		t.Fatal("accepted unknown profile")
	}
	if _, err := NewSim(Config{Design: DesignBaseline, Apps: []AppSpec{
		{Profile: "bfs", Region: Region{W: 4, H: 4}},
		{Profile: "ferret", Region: Region{X: 2, Y: 2, W: 4, H: 4}},
	}}); err == nil {
		t.Fatal("accepted overlapping regions")
	}
}

func TestShareMCsReachForeignControllers(t *testing.T) {
	apps := DefaultMixed(0)
	apps[0].ShareMCs = 1
	s, err := NewSim(Config{
		Design:      DesignAdaptNoRL,
		Apps:        apps,
		Seed:        3,
		EpochCycles: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The GPU app asked for one shared MC.
	sn := s.Fabric.SubNoCs()[0]
	if got := s.Fabric.SharedMCs(sn); len(got) != 1 {
		t.Fatalf("GPU subNoC shares %d MCs, want 1", len(got))
	}
	s.Run(60000)
	res := s.Results()
	if res.Apps[0].DeliveredPackets == 0 {
		t.Fatal("GPU app silent")
	}
	_ = topology.NumKinds
}

func TestPublicReconfigureAPI(t *testing.T) {
	reg := Region{W: 4, H: 4}
	s, err := NewSim(Config{
		Design: DesignAdaptNoRL,
		Apps: []AppSpec{{
			Profile: "ferret", Region: reg, MCTiles: BlockMCs(reg), Static: Mesh,
		}},
		Seed:        5,
		EpochCycles: 1 << 20, // park the static controller
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Topology(0); got != Mesh {
		t.Fatalf("initial topology %v", got)
	}
	s.Run(5000)
	for _, kind := range []Kind{CMesh, TorusTree, Tree} {
		done := false
		if err := s.Reconfigure(0, kind, func() { done = true }); err != nil {
			t.Fatalf("reconfigure to %v: %v", kind, err)
		}
		for !done {
			s.Run(64)
		}
		if got := s.Topology(0); got != kind {
			t.Fatalf("topology %v, want %v", got, kind)
		}
		if s.Layout(0) == "" {
			t.Fatal("empty layout")
		}
	}
	// Reconfigure on a non-fabric design must error.
	s2, err := NewSim(Config{Design: DesignBaseline, Apps: DefaultMixed(0), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Reconfigure(0, Tree, nil); err == nil {
		t.Fatal("baseline accepted Reconfigure")
	}
	if err := s.Reconfigure(99, Tree, nil); err == nil {
		t.Fatal("out-of-range app accepted")
	}
}

func TestTorusTreeStaticViaPublicAPI(t *testing.T) {
	reg := Region{W: 4, H: 8}
	s, err := NewSim(Config{
		Design: DesignAdaptNoRL,
		Apps: []AppSpec{{
			Profile: "bfs", Region: reg, MCTiles: BlockMCs(reg), Static: TorusTree,
		}},
		Seed:        5,
		EpochCycles: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(60000)
	res := s.Results()
	if res.Apps[0].DeliveredPackets == 0 {
		t.Fatal("no traffic under torus+tree")
	}
	if res.Apps[0].AvgHops <= 0 {
		t.Fatal("no hops recorded")
	}
}

// TestTreeRelievesMCInjectionBottleneck exercises the paper's headline
// mechanism (Section II-B.3): at memory-intensive load the mesh's queuing
// latency is dominated by the one-flit-per-cycle MC injection ports, and
// the tree's root/MC fanout removes it.
func TestTreeRelievesMCInjectionBottleneck(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(kind Kind) (queue float64) {
		reg := Region{W: 4, H: 8}
		s, err := NewSim(Config{
			Design: DesignAdaptNoRL,
			Apps: []AppSpec{{
				Profile: "bfs", Region: reg, MCTiles: BlockMCs(reg), Static: kind,
			}},
			Seed:        17,
			EpochCycles: 1 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Run(150000)
		return s.Results().Apps[0].AvgQueueLatency
	}
	mesh, tree := run(Mesh), run(Tree)
	if mesh < 5 {
		t.Fatalf("mesh not at the congested operating point (queue %.1f)", mesh)
	}
	if tree > mesh/3 {
		t.Fatalf("tree queuing %.1f not well below mesh %.1f", tree, mesh)
	}
}
