package adaptnoc

// Checkpoint/restore: the whole simulation round-trips through a single
// versioned binary blob. The blob embeds the canonical configuration as
// JSON, so a fresh process rebuilds the identical simulation skeleton with
// NewSim and then overlays every layer's dynamic state section by section.
//
// Section order is fixed and mirrors the restore dependencies:
//
//	config   — canonical Config (JSON); drives NewSim
//	fabric   — subNoC topology kinds; replayed first so the network's
//	           wiring and routing tables match the checkpoint
//	fault    — fault engine state + per-app drop tallies (only when the
//	           config schedules faults); re-applies the active damage
//	           against the fabric-replayed base so the net section's
//	           channel validation sees the damaged wiring
//	machine  — cores, apps, MCs, transaction table; restored before the
//	           network so packet payloads can resolve transaction IDs
//	source   — per-app workload-source state (phase positions and RNG
//	           streams, or trace dependency bitmaps)
//	net      — packets, routers, channels, NIs
//	meter    — energy account
//	control  — epoch controller + RL agents (Adapt designs)
//	oscar    — VC partition state (DesignOSCAR)
//	kernel   — clock and future-event list; restored last so events
//	           scheduled during construction and replay are discarded
//
// The sealed blob is framed and gzip-compressed by snap.Seal; restore
// accepts both the current compressed format and the uncompressed v1
// framing older builds wrote (see snap.OpenBody). Beyond that framing
// shim, a checkpoint is only valid for the exact simulator version that
// wrote it.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"

	"adaptnoc/internal/runner"
	"adaptnoc/internal/snap"
)

// deltaCache remembers the sections of the most recent checkpoint so the
// next CheckpointDelta can (a) diff against them with part-level
// alignment and (b) skip re-encoding layers whose generation counters
// have not moved since. It is an encoder-side cache only: dropping it
// never changes what restores, just how much work the next delta costs.
type deltaCache struct {
	bodyHash  [32]byte
	secs      []snap.DeltaSection
	gens      sectionGens
	gensValid bool

	// Reuse pools carried from generation to generation so a steady-state
	// delta allocates (almost) nothing: retired section buffers keyed by
	// section name (dead once the frame diffing them was encoded), the
	// retired joined-body buffer, and the frame encoder with its deflate
	// state. All encoder-side only — dropping them costs speed, never
	// correctness.
	scratch map[string]snap.DeltaSection
	body    []byte
	enc     *snap.DeltaEncoder
}

// sectionGens records the generation counters of the layers whose walks
// are worth skipping. The machine, net, and kernel sections serialize the
// cycle counter and advance every tick, so they are always walked and
// rely on part-level content compare instead (tracking their mutation
// sites would put a counter bump on the hot path).
type sectionGens struct {
	config  []byte // canonical config JSON — immutable for a sim's lifetime
	fabric  uint64
	fault   uint64
	meter   uint64
	control uint64
	oscar   uint64
}

// deltaDebugVerify makes checkpointSections re-walk every gen-skipped
// section and fail loudly if the generation counter lied about
// quiescence. Tests arm it; production leaves it off.
var deltaDebugVerify = false

func (s *Sim) currentGens(cfgJSON []byte) sectionGens {
	g := sectionGens{config: cfgJSON}
	if s.Fabric != nil {
		g.fabric = s.Fabric.Gen()
	}
	if s.faults != nil {
		g.fault = s.faults.Gen() + s.Machine.DropGen()
	}
	g.meter = s.Meter.Gen()
	if s.Ctl != nil {
		g.control = s.Ctl.StateGen()
	}
	if s.OSCAR != nil {
		g.oscar = s.OSCAR.Gen()
	}
	return g
}

// checkpointSections walks the layers and returns the section list a full
// checkpoint body consists of, in blob order. When prev carries valid
// generation counters, sections whose generation has not moved reuse the
// cached bytes without re-walking the layer.
func (s *Sim) checkpointSections(prev *deltaCache) ([]snap.DeltaSection, sectionGens, error) {
	var gens sectionGens
	if s.Cfg.RL.SharedAgent != nil {
		return nil, gens, fmt.Errorf("adaptnoc: a simulation with an in-process shared agent cannot be checkpointed")
	}
	usePrev := prev != nil && prev.gensValid
	var cfgJSON []byte
	if usePrev {
		cfgJSON = prev.gens.config
	}
	if cfgJSON == nil {
		var err error
		if cfgJSON, err = json.Marshal(s.Cfg); err != nil {
			return nil, gens, fmt.Errorf("adaptnoc: encoding config: %w", err)
		}
	}
	gens = s.currentGens(cfgJSON)

	var secs []snap.DeltaSection
	cached := func(name string) *snap.DeltaSection {
		if !usePrev {
			return nil
		}
		for i := range prev.secs {
			if prev.secs[i].Name == name {
				return &prev.secs[i]
			}
		}
		return nil
	}
	// add appends a section, reusing prev's encoding when the layer's
	// generation is unchanged (clean == true).
	add := func(name string, clean bool, build func(w *snap.Writer) error) error {
		if c := cached(name); c != nil && clean {
			if deltaDebugVerify {
				var w snap.Writer
				if err := build(&w); err != nil {
					return err
				}
				if !bytes.Equal(w.Bytes(), c.Body) {
					return fmt.Errorf("adaptnoc: section %q changed but its generation counter did not — missed mutation site", name)
				}
			}
			secs = append(secs, *c)
			return nil
		}
		var w snap.Writer
		if usePrev {
			if sc, ok := prev.scratch[name]; ok {
				delete(prev.scratch, name)
				w.ResetWith(sc.Body, sc.Parts)
			}
		}
		if err := build(&w); err != nil {
			return err
		}
		secs = append(secs, snap.DeltaSection{Name: name, Body: w.Bytes(), Parts: w.Parts()})
		return nil
	}

	// The config section body is the raw JSON, not Writer-framed, and the
	// config is immutable for a sim's lifetime — no walk, no diff.
	secs = append(secs, snap.DeltaSection{Name: "config", Body: cfgJSON})

	if s.Fabric != nil {
		if err := add("fabric", usePrev && gens.fabric == prev.gens.fabric, func(w *snap.Writer) error {
			s.Fabric.Snapshot(w)
			return nil
		}); err != nil {
			return nil, gens, err
		}
	}
	if s.faults != nil {
		if err := add("fault", usePrev && gens.fault == prev.gens.fault, func(w *snap.Writer) error {
			s.faults.Snapshot(w)
			s.Machine.SnapshotDrops(w)
			return nil
		}); err != nil {
			return nil, gens, err
		}
	}
	if err := add("machine", false, func(w *snap.Writer) error {
		s.Machine.Snapshot(w)
		return nil
	}); err != nil {
		return nil, gens, err
	}
	// The workload sources advance every tick alongside the machine, so
	// the section is always walked; part-level diffing keeps deltas small.
	if err := add("source", false, func(w *snap.Writer) error {
		s.Machine.SnapshotSources(w)
		return nil
	}); err != nil {
		return nil, gens, err
	}
	if err := add("net", false, func(w *snap.Writer) error {
		if err := s.Net.Snapshot(w, s.Machine); err != nil {
			return fmt.Errorf("adaptnoc: snapshotting network: %w", err)
		}
		return nil
	}); err != nil {
		return nil, gens, err
	}
	if err := add("meter", usePrev && gens.meter == prev.gens.meter, func(w *snap.Writer) error {
		s.Meter.Snapshot(w)
		return nil
	}); err != nil {
		return nil, gens, err
	}
	switch {
	case s.Ctl != nil:
		if err := add("control", usePrev && gens.control == prev.gens.control, func(w *snap.Writer) error {
			s.Ctl.Snapshot(w)
			return s.Ctl.SnapshotPolicies(w)
		}); err != nil {
			return nil, gens, err
		}
	case s.OSCAR != nil:
		if err := add("oscar", usePrev && gens.oscar == prev.gens.oscar, func(w *snap.Writer) error {
			s.OSCAR.Snapshot(w)
			return nil
		}); err != nil {
			return nil, gens, err
		}
	}
	if err := add("kernel", false, func(w *snap.Writer) error {
		if err := s.Kernel.Snapshot(w); err != nil {
			return fmt.Errorf("adaptnoc: snapshotting kernel: %w", err)
		}
		return nil
	}); err != nil {
		return nil, gens, err
	}
	return secs, gens, nil
}

// Checkpoint serializes the complete simulation state. The simulation can
// keep running afterwards; a checkpoint is a pure read of the simulated
// state (it refreshes the encoder-side delta cache as a side effect).
//
// Configurations carrying an in-process shared RL agent (RL.SharedAgent)
// cannot be checkpointed: the handle has no serialized form inside the
// blob's config, so a restore could not rebuild the sharing.
func (s *Sim) Checkpoint() ([]byte, error) {
	secs, gens, err := s.checkpointSections(nil)
	if err != nil {
		return nil, err
	}
	body := snap.JoinSections(secs)
	d := &deltaCache{bodyHash: snap.BodyHash(body), secs: secs, gens: gens, gensValid: true, body: body}
	if old := s.delta; old != nil {
		d.enc = old.enc
	}
	s.delta = d
	return snap.Seal(body), nil
}

// CheckpointDelta serializes the simulation as a delta frame against the
// given full base blob: only what changed since the base is encoded, and
// quiescent layers are skipped entirely via their generation counters.
// snap.ApplyChain(base, frame) reproduces the byte-identical blob a full
// Checkpoint would have returned.
//
// The fast path requires the base to be this simulation's most recent
// Checkpoint/CheckpointDelta (the usual rolling-chain producer pattern);
// any other valid base still works, at the cost of a coarser, slower
// cold diff.
func (s *Sim) CheckpointDelta(base []byte) ([]byte, error) {
	baseBody, err := snap.OpenBody(base)
	if err != nil {
		return nil, fmt.Errorf("adaptnoc: delta base: %w", err)
	}
	baseHash := snap.BodyHash(baseBody)
	prev := s.delta
	if prev == nil || prev.bodyHash != baseHash {
		baseSecs, err := snap.SplitSections(baseBody)
		if err != nil {
			return nil, fmt.Errorf("adaptnoc: delta base: %w", err)
		}
		// Cold base: no part marks and no trusted generation counters —
		// every layer is walked and diffed at whole-section granularity.
		prev = &deltaCache{bodyHash: baseHash, secs: baseSecs}
	}
	return s.checkpointDeltaAgainst(prev)
}

// CheckpointDeltaChained encodes a delta against the state captured by
// this simulation's most recent Checkpoint or CheckpointDelta* call —
// the producer side of a rolling base + delta chain, where the previous
// sealed blob is not kept around.
func (s *Sim) CheckpointDeltaChained() ([]byte, error) {
	if s.delta == nil {
		return nil, fmt.Errorf("adaptnoc: no checkpoint taken yet to chain a delta onto")
	}
	return s.checkpointDeltaAgainst(s.delta)
}

// CheckpointBodyHash reports the body hash of this simulation's most
// recent Checkpoint/CheckpointDelta* — the chain tip a consumer needs to
// name when negotiating deltas against a remote copy of the base. ok is
// false before the first checkpoint.
func (s *Sim) CheckpointBodyHash() (hash [32]byte, ok bool) {
	if s.delta == nil {
		return hash, false
	}
	return s.delta.bodyHash, true
}

func (s *Sim) checkpointDeltaAgainst(prev *deltaCache) ([]byte, error) {
	secs, gens, err := s.checkpointSections(prev)
	if err != nil {
		return nil, err
	}
	body := snap.JoinSectionsInto(prev.body, secs)
	newHash := snap.BodyHash(body)
	if prev.enc == nil {
		prev.enc = new(snap.DeltaEncoder)
	}
	frame := prev.enc.Encode(prev.secs, secs, prev.bodyHash, newHash)
	d := &deltaCache{bodyHash: newHash, secs: secs, gens: gens, gensValid: true,
		body: body, enc: prev.enc}
	d.scratch = harvestSections(prev, secs)
	s.delta = d
	return frame, nil
}

// harvestSections collects the retired generation's buffers for the next
// walk to reuse: once the frame diffing prev.secs against secs has been
// encoded, any prev section whose storage the new list does not alias is
// dead, and its capacity is exactly what the same section wants next
// interval. Cold caches (gensValid false) wrap memory the caller may still
// own — a split of their base blob — and donate nothing.
func harvestSections(prev *deltaCache, secs []snap.DeltaSection) map[string]snap.DeltaSection {
	if !prev.gensValid {
		return nil
	}
	scratch := prev.scratch // entries the walk consumed were deleted
	put := func(sc snap.DeltaSection) {
		if scratch == nil {
			scratch = make(map[string]snap.DeltaSection, len(prev.secs))
		}
		scratch[sc.Name] = sc
	}
	for i := range prev.secs {
		old := &prev.secs[i]
		// The config body aliases the cached canonical JSON, which every
		// generation shares; empty bodies carry no storage worth keeping.
		if old.Name == "config" || len(old.Body) == 0 {
			continue
		}
		if cur := findSection(secs, old.Name); cur != nil && len(cur.Body) > 0 && &cur.Body[0] == &old.Body[0] {
			continue // clean section: the new generation still reads these bytes
		}
		put(snap.DeltaSection{Name: old.Name, Body: old.Body, Parts: old.Parts})
	}
	return scratch
}

// findSection locates a section by name in a small blob-ordered list.
func findSection(secs []snap.DeltaSection, name string) *snap.DeltaSection {
	for i := range secs {
		if secs[i].Name == name {
			return &secs[i]
		}
	}
	return nil
}

// RestoreSim rebuilds a simulation from a checkpoint blob, in this or any
// other process. The restored simulation continues exactly where the
// checkpointed one stood: running both to the same cycle produces
// byte-identical results.
func RestoreSim(blob []byte) (*Sim, error) {
	r, err := snap.Open(blob)
	if err != nil {
		return nil, fmt.Errorf("adaptnoc: checkpoint header: %w", err)
	}
	cr, err := r.Section("config")
	if err != nil {
		return nil, fmt.Errorf("adaptnoc: checkpoint config: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(cr.Rest(), &cfg); err != nil {
		return nil, fmt.Errorf("adaptnoc: checkpoint config: %w", err)
	}
	// Validate bounds the config (grid fit, agent sizes) before NewSim
	// commits any memory to it — a corrupted blob must fail cleanly.
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("adaptnoc: checkpoint config: %w", err)
	}
	s, err := NewSim(cfg)
	if err != nil {
		return nil, fmt.Errorf("adaptnoc: rebuilding simulation: %w", err)
	}

	restore := func(name string, fn func(*snap.Reader) error) error {
		sr, err := r.Section(name)
		if err != nil {
			return err
		}
		if err := fn(sr); err != nil {
			return fmt.Errorf("adaptnoc: restoring %s: %w", name, err)
		}
		if err := sr.Done(); err != nil {
			return fmt.Errorf("adaptnoc: restoring %s: %w", name, err)
		}
		return nil
	}

	if s.Fabric != nil {
		if err := restore("fabric", s.Fabric.Restore); err != nil {
			return nil, err
		}
	}
	// Pre-fault blobs carry no fault section, and a config without faults
	// builds no engine — both directions stay consistent because the
	// section's presence tracks Cfg.Faults exactly.
	if s.faults != nil {
		if err := restore("fault", func(sr *snap.Reader) error {
			if err := s.faults.Restore(sr); err != nil {
				return err
			}
			return s.Machine.RestoreDrops(sr)
		}); err != nil {
			return nil, err
		}
	}
	if err := restore("machine", s.Machine.Restore); err != nil {
		return nil, err
	}
	if err := restore("source", s.Machine.RestoreSources); err != nil {
		return nil, err
	}
	if err := restore("net", func(sr *snap.Reader) error {
		return s.Net.Restore(sr, s.Machine)
	}); err != nil {
		return nil, err
	}
	if err := restore("meter", s.Meter.Restore); err != nil {
		return nil, err
	}
	switch {
	case s.Ctl != nil:
		if err := restore("control", func(sr *snap.Reader) error {
			if err := s.Ctl.Restore(sr); err != nil {
				return err
			}
			return s.Ctl.RestorePolicies(sr)
		}); err != nil {
			return nil, err
		}
	case s.OSCAR != nil:
		if err := restore("oscar", s.OSCAR.Restore); err != nil {
			return nil, err
		}
	}
	if err := restore("kernel", s.Kernel.Restore); err != nil {
		return nil, err
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return s, nil
}

// WriteCheckpoint serializes the simulation and writes it to path
// atomically (temp file + rename), so a crash mid-write never leaves a
// torn checkpoint behind. Any delta log a ChainWriter left beside an
// earlier checkpoint at this path is removed: it described the old base.
func (s *Sim) WriteCheckpoint(path string) error {
	blob, err := s.Checkpoint()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	// Best-effort: a crash landing between the rename and this remove
	// leaves a log whose first frame no longer matches the new base's
	// hash, which restore detects and ignores.
	os.Remove(deltaLogPath(path))
	return nil
}

// DefaultMaxChain is how many delta frames a ChainWriter appends before
// rebasing onto a fresh full checkpoint. Restore cost grows linearly with
// chain length while the per-save win is already maximal at length one,
// so the default keeps worst-case recovery around a second.
const DefaultMaxChain = 64

// deltaLogPath is where a ChainWriter accumulates delta frames for the
// base checkpoint at path.
func deltaLogPath(path string) string { return path + ".delta" }

// ChainWriter persists a rolling checkpoint as a full base blob at Path
// plus an append-only delta log at Path+".delta". The first Save (and
// every MaxDeltas-th after it) writes a full checkpoint and truncates the
// log; every other Save appends one length-prefixed delta frame, which is
// dozens of bytes to a few kilobytes where a full blob is tens of
// kilobytes. RestoreSimFromFile understands the pair, applying the
// longest valid prefix of the log — a torn final append (the crash the
// log exists to survive) costs at most one save interval.
//
// A ChainWriter assumes it is the only checkpoint producer for its
// simulation between its own saves; if something else takes a checkpoint
// in between, the next Save detects the broken lineage by hash and
// rebases onto a full checkpoint instead of appending a frame that could
// never apply.
type ChainWriter struct {
	Path string
	// MaxDeltas caps the log length before a rebase; <= 0 means
	// DefaultMaxChain.
	MaxDeltas int

	started bool
	deltas  int
	tip     [32]byte // body hash of the chain tip on disk
}

// Save persists the simulation's current state: a full checkpoint on the
// first call and at every rebase threshold, a delta frame otherwise.
func (c *ChainWriter) Save(s *Sim) error {
	max := c.MaxDeltas
	if max <= 0 {
		max = DefaultMaxChain
	}
	if c.started && c.deltas < max {
		frame, err := s.CheckpointDeltaChained()
		if err == nil {
			base, result, herr := snap.DeltaHashes(frame)
			if herr == nil && base == c.tip {
				if err := snap.AppendFrame(deltaLogPath(c.Path), frame); err != nil {
					return err
				}
				c.deltas++
				c.tip = result
				return nil
			}
		}
		// No prior checkpoint in this sim, or someone else advanced the
		// sim's delta cache since our last Save: rebase.
	}
	if err := s.WriteCheckpoint(c.Path); err != nil {
		return err
	}
	c.started, c.deltas, c.tip = true, 0, s.delta.bodyHash
	return nil
}

// RestoreSimFromFile reads a checkpoint written by WriteCheckpoint or a
// ChainWriter. When a delta log sits beside the base, the longest valid
// prefix of its frames is applied first, recovering the newest state the
// chain intactly reaches.
func RestoreSimFromFile(path string) (*Sim, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if frames := snap.ReadFrameLog(deltaLogPath(path)); len(frames) > 0 {
		if tip, _, err := snap.ApplyChainPrefix(blob, frames...); err == nil {
			blob = tip
		}
	}
	return RestoreSim(blob)
}

// RunContextCheckpointed advances the simulation like RunContext but
// persists a rolling base + delta chain at path every `every` cycles and
// at the end of the window (every <= 0 saves only at the end; see
// ChainWriter for the on-disk shape). The run computes exactly what
// RunContext computes — slicing never changes simulation behaviour.
func (s *Sim) RunContextCheckpointed(ctx context.Context, cycles Cycle, path string, every Cycle) error {
	cw := &ChainWriter{Path: path}
	return runner.Checkpointed(ctx, cycles, every,
		func(ctx context.Context, slice Cycle) error { return s.RunContext(ctx, slice) },
		nil,
		func() error { return cw.Save(s) })
}

// RunUntilFinishedCheckpointed advances like RunUntilFinishedContext with
// the same periodic checkpointing as RunContextCheckpointed.
func (s *Sim) RunUntilFinishedCheckpointed(ctx context.Context, maxCycles Cycle, path string, every Cycle) (bool, error) {
	var finished bool
	cw := &ChainWriter{Path: path}
	err := runner.Checkpointed(ctx, maxCycles, every,
		func(ctx context.Context, slice Cycle) error {
			var err error
			finished, err = s.RunUntilFinishedContext(ctx, slice)
			return err
		},
		func() bool { return finished },
		func() error { return cw.Save(s) })
	return finished, err
}
