package adaptnoc

// Checkpoint/restore: the whole simulation round-trips through a single
// versioned binary blob. The blob embeds the canonical configuration as
// JSON, so a fresh process rebuilds the identical simulation skeleton with
// NewSim and then overlays every layer's dynamic state section by section.
//
// Section order is fixed and mirrors the restore dependencies:
//
//	config   — canonical Config (JSON); drives NewSim
//	fabric   — subNoC topology kinds; replayed first so the network's
//	           wiring and routing tables match the checkpoint
//	fault    — fault engine state + per-app drop tallies (only when the
//	           config schedules faults); re-applies the active damage
//	           against the fabric-replayed base so the net section's
//	           channel validation sees the damaged wiring
//	machine  — cores, apps, MCs, transaction table; restored before the
//	           network so packet payloads can resolve transaction IDs
//	net      — packets, routers, channels, NIs
//	meter    — energy account
//	control  — epoch controller + RL agents (Adapt designs)
//	oscar    — VC partition state (DesignOSCAR)
//	kernel   — clock and future-event list; restored last so events
//	           scheduled during construction and replay are discarded
//
// The sealed blob is framed and gzip-compressed by snap.Seal; restore
// accepts both the current compressed format and the uncompressed v1
// framing older builds wrote (see snap.OpenBody). Beyond that framing
// shim, a checkpoint is only valid for the exact simulator version that
// wrote it.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"adaptnoc/internal/runner"
	"adaptnoc/internal/snap"
)

// Checkpoint serializes the complete simulation state. The simulation can
// keep running afterwards; a checkpoint is a pure read.
//
// Configurations carrying an in-process shared RL agent (RL.SharedAgent)
// cannot be checkpointed: the handle has no serialized form inside the
// blob's config, so a restore could not rebuild the sharing.
func (s *Sim) Checkpoint() ([]byte, error) {
	if s.Cfg.RL.SharedAgent != nil {
		return nil, fmt.Errorf("adaptnoc: a simulation with an in-process shared agent cannot be checkpointed")
	}
	cfgJSON, err := json.Marshal(s.Cfg)
	if err != nil {
		return nil, fmt.Errorf("adaptnoc: encoding config: %w", err)
	}

	w := &snap.Writer{}
	w.Section("config", cfgJSON)

	if s.Fabric != nil {
		var fw snap.Writer
		s.Fabric.Snapshot(&fw)
		w.Section("fabric", fw.Bytes())
	}

	if s.faults != nil {
		var qw snap.Writer
		s.faults.Snapshot(&qw)
		s.Machine.SnapshotDrops(&qw)
		w.Section("fault", qw.Bytes())
	}

	var mw snap.Writer
	s.Machine.Snapshot(&mw)
	w.Section("machine", mw.Bytes())

	var nw snap.Writer
	if err := s.Net.Snapshot(&nw, s.Machine); err != nil {
		return nil, fmt.Errorf("adaptnoc: snapshotting network: %w", err)
	}
	w.Section("net", nw.Bytes())

	var pw snap.Writer
	s.Meter.Snapshot(&pw)
	w.Section("meter", pw.Bytes())

	switch {
	case s.Ctl != nil:
		var cw snap.Writer
		s.Ctl.Snapshot(&cw)
		if err := s.Ctl.SnapshotPolicies(&cw); err != nil {
			return nil, err
		}
		w.Section("control", cw.Bytes())
	case s.OSCAR != nil:
		var ow snap.Writer
		s.OSCAR.Snapshot(&ow)
		w.Section("oscar", ow.Bytes())
	}

	var kw snap.Writer
	if err := s.Kernel.Snapshot(&kw); err != nil {
		return nil, fmt.Errorf("adaptnoc: snapshotting kernel: %w", err)
	}
	w.Section("kernel", kw.Bytes())
	return snap.Seal(w.Bytes()), nil
}

// RestoreSim rebuilds a simulation from a checkpoint blob, in this or any
// other process. The restored simulation continues exactly where the
// checkpointed one stood: running both to the same cycle produces
// byte-identical results.
func RestoreSim(blob []byte) (*Sim, error) {
	r, err := snap.Open(blob)
	if err != nil {
		return nil, fmt.Errorf("adaptnoc: checkpoint header: %w", err)
	}
	cr, err := r.Section("config")
	if err != nil {
		return nil, fmt.Errorf("adaptnoc: checkpoint config: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(cr.Rest(), &cfg); err != nil {
		return nil, fmt.Errorf("adaptnoc: checkpoint config: %w", err)
	}
	// Validate bounds the config (grid fit, agent sizes) before NewSim
	// commits any memory to it — a corrupted blob must fail cleanly.
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("adaptnoc: checkpoint config: %w", err)
	}
	s, err := NewSim(cfg)
	if err != nil {
		return nil, fmt.Errorf("adaptnoc: rebuilding simulation: %w", err)
	}

	restore := func(name string, fn func(*snap.Reader) error) error {
		sr, err := r.Section(name)
		if err != nil {
			return err
		}
		if err := fn(sr); err != nil {
			return fmt.Errorf("adaptnoc: restoring %s: %w", name, err)
		}
		if err := sr.Done(); err != nil {
			return fmt.Errorf("adaptnoc: restoring %s: %w", name, err)
		}
		return nil
	}

	if s.Fabric != nil {
		if err := restore("fabric", s.Fabric.Restore); err != nil {
			return nil, err
		}
	}
	// Pre-fault blobs carry no fault section, and a config without faults
	// builds no engine — both directions stay consistent because the
	// section's presence tracks Cfg.Faults exactly.
	if s.faults != nil {
		if err := restore("fault", func(sr *snap.Reader) error {
			if err := s.faults.Restore(sr); err != nil {
				return err
			}
			return s.Machine.RestoreDrops(sr)
		}); err != nil {
			return nil, err
		}
	}
	if err := restore("machine", s.Machine.Restore); err != nil {
		return nil, err
	}
	if err := restore("net", func(sr *snap.Reader) error {
		return s.Net.Restore(sr, s.Machine)
	}); err != nil {
		return nil, err
	}
	if err := restore("meter", s.Meter.Restore); err != nil {
		return nil, err
	}
	switch {
	case s.Ctl != nil:
		if err := restore("control", func(sr *snap.Reader) error {
			if err := s.Ctl.Restore(sr); err != nil {
				return err
			}
			return s.Ctl.RestorePolicies(sr)
		}); err != nil {
			return nil, err
		}
	case s.OSCAR != nil:
		if err := restore("oscar", s.OSCAR.Restore); err != nil {
			return nil, err
		}
	}
	if err := restore("kernel", s.Kernel.Restore); err != nil {
		return nil, err
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return s, nil
}

// WriteCheckpoint serializes the simulation and writes it to path
// atomically (temp file + rename), so a crash mid-write never leaves a
// torn checkpoint behind.
func (s *Sim) WriteCheckpoint(path string) error {
	blob, err := s.Checkpoint()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// RestoreSimFromFile reads a checkpoint written by WriteCheckpoint.
func RestoreSimFromFile(path string) (*Sim, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return RestoreSim(blob)
}

// RunContextCheckpointed advances the simulation like RunContext but
// writes a checkpoint to path every `every` cycles and at the end of the
// window (every <= 0 saves only at the end). The run computes exactly
// what RunContext computes — slicing never changes simulation behaviour.
func (s *Sim) RunContextCheckpointed(ctx context.Context, cycles Cycle, path string, every Cycle) error {
	return runner.Checkpointed(ctx, cycles, every,
		func(ctx context.Context, slice Cycle) error { return s.RunContext(ctx, slice) },
		nil,
		func() error { return s.WriteCheckpoint(path) })
}

// RunUntilFinishedCheckpointed advances like RunUntilFinishedContext with
// the same periodic checkpointing as RunContextCheckpointed.
func (s *Sim) RunUntilFinishedCheckpointed(ctx context.Context, maxCycles Cycle, path string, every Cycle) (bool, error) {
	var finished bool
	err := runner.Checkpointed(ctx, maxCycles, every,
		func(ctx context.Context, slice Cycle) error {
			var err error
			finished, err = s.RunUntilFinishedContext(ctx, slice)
			return err
		},
		func() bool { return finished },
		func() error { return s.WriteCheckpoint(path) })
	return finished, err
}
