package adaptnoc

import (
	"fmt"

	"adaptnoc/internal/noc"
)

// BlockMCs returns one memory-controller tile per 2×4 sub-block of a
// region (the paper's provisioning, Section II-C.2: "we implement one MC
// to each 2×4 subNoC in an 8×8 NoC"). MCs sit at block origins. The grid
// width is the standard 8; larger chips use BlockMCsOn.
func BlockMCs(reg Region) []NodeID { return BlockMCsOn(reg, 8) }

// BlockMCsOn is BlockMCs for a chip of the given grid width: the tile IDs
// are row-major in that grid, so the same region provisions the same MC
// coordinates regardless of chip size.
func BlockMCsOn(reg Region, gridW int) []NodeID {
	var out []NodeID
	stepY := 4
	if reg.H < 4 {
		stepY = reg.H
	}
	stepX := 2
	if reg.W < 2 {
		stepX = reg.W
	}
	for y := reg.Y; y < reg.Y+reg.H; y += stepY {
		for x := reg.X; x < reg.X+reg.W; x += stepX {
			out = append(out, noc.Coord{X: x, Y: y}.ID(gridW))
		}
	}
	return out
}

// MixedWorkload returns the paper's evaluation mapping (Section IV-A):
// three applications on the 8×8 chip — one Rodinia-like GPU application on
// a 4×8 region and two Parsec-like CPU applications on 4×4 regions, each
// region provisioned with one MC per 2×4 block. budget is the per-core
// instruction budget (0 = run for a fixed cycle window).
func MixedWorkload(gpu, cpu1, cpu2 string, budget int64) []AppSpec {
	gpuReg := Region{X: 0, Y: 0, W: 4, H: 8}
	cpu1Reg := Region{X: 4, Y: 0, W: 4, H: 4}
	cpu2Reg := Region{X: 4, Y: 4, W: 4, H: 4}
	return []AppSpec{
		{
			Profile: gpu,
			Region:  gpuReg,
			MCTiles: BlockMCs(gpuReg),
			// Mesh is the safe static default for the bandwidth-hungry GPU
			// app; the oracle probe (Adapt-NoC-noRL) or the RL policy
			// upgrades it per phase (Fig. 15 spreads selections widely).
			Static:      Mesh,
			InstrBudget: budget,
		},
		{
			Profile:     cpu1,
			Region:      cpu1Reg,
			MCTiles:     BlockMCs(cpu1Reg),
			Static:      CMesh, // sparse CPU traffic prefers cmesh (Fig. 14)
			InstrBudget: budget,
		},
		{
			Profile:     cpu2,
			Region:      cpu2Reg,
			MCTiles:     BlockMCs(cpu2Reg),
			Static:      CMesh,
			InstrBudget: budget,
		},
	}
}

// DefaultMixed is the default mixed workload: one memory-hungry GPU code
// and two contrasting CPU codes.
func DefaultMixed(budget int64) []AppSpec {
	return MixedWorkload("bfs", "canneal", "ferret", budget)
}

// TiledMixed replicates the paper's 8×8 three-application mapping across
// a w×h chip: each 8×8 quadrant hosts the GPU + two CPU apps of
// MixedWorkload, with profiles rotated quadrant to quadrant so the load is
// heterogeneous across the chip. This is the workload the 16×16–64×64
// sharded-tick scaling experiments run (EXPERIMENTS.md). w and h must be
// positive multiples of 8.
func TiledMixed(w, h int, budget int64) []AppSpec {
	if w < 8 || h < 8 || w%8 != 0 || h%8 != 0 {
		panic(fmt.Sprintf("adaptnoc: TiledMixed grid %dx%d is not a multiple of 8x8", w, h))
	}
	gpus := []string{"bfs", "gaussian", "hotspot"}
	cpus := []string{"canneal", "ferret", "blackscholes", "fluidanimate"}
	var out []AppSpec
	q := 0
	for ty := 0; ty < h; ty += 8 {
		for tx := 0; tx < w; tx += 8 {
			for _, base := range MixedWorkload(
				gpus[q%len(gpus)], cpus[q%len(cpus)], cpus[(q+1)%len(cpus)], budget) {
				a := base
				a.Region.X += tx
				a.Region.Y += ty
				a.MCTiles = BlockMCsOn(a.Region, w)
				out = append(out, a)
			}
			q++
		}
	}
	return out
}
