package adaptnoc_test

// The fault keystone: a fault schedule is part of the configuration, so a
// faulted run is as deterministic, shardable, and checkpointable as a
// fault-free one. Every test here runs with the full invariant checker
// installed — flits in a failed component must be dropped-and-accounted,
// never silently lost — and the healed topology must stay deadlock-free.

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"adaptnoc"
	"adaptnoc/internal/deadlock"
	"adaptnoc/internal/fault"
	"adaptnoc/internal/noc"
	"adaptnoc/internal/obs"
	"adaptnoc/internal/runner"
)

// faultConfig is the mixed workload with a fault schedule attached.
func faultConfig(d adaptnoc.Design, events ...fault.Event) adaptnoc.Config {
	return adaptnoc.Config{
		Design:      d,
		Apps:        adaptnoc.DefaultMixed(0),
		Seed:        1234,
		EpochCycles: 10000,
		Faults:      events,
	}
}

// verifiedRun builds the sim, installs the per-cycle invariant checker,
// runs it, and returns sim + results.
func verifiedRun(t *testing.T, cfg adaptnoc.Config, cycles adaptnoc.Cycle) (*adaptnoc.Sim, adaptnoc.Results) {
	t.Helper()
	s, err := adaptnoc.NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Net.SetVerifier(1, obs.Verify)
	s.Run(cycles)
	if err := obs.Verify(s.Net, s.Kernel.Now()); err != nil {
		t.Fatal(err)
	}
	return s, s.Results()
}

func totalDropped(r adaptnoc.Results) int64 {
	var n int64
	for _, a := range r.Apps {
		n += a.DroppedPackets
	}
	return n
}

// checkHealedRoutes walks every still-routable (src, dst, vnet) pair
// through the post-fault tables and requires the walks to terminate and
// the resulting channel-dependency graph to be acyclic.
func checkHealedRoutes(t *testing.T, s *adaptnoc.Sim) (routable, severed int) {
	t.Helper()
	c := deadlock.NewChecker(s.Net)
	n := noc.NodeID(s.Net.Cfg.NumNodes())
	for v := noc.VNet(0); v < noc.NumVNets; v++ {
		for src := noc.NodeID(0); src < n; src++ {
			for dst := noc.NodeID(0); dst < n; dst++ {
				if src == dst {
					continue
				}
				sr, dr := s.Net.ServingRouter(src), s.Net.ServingRouter(dst)
				if sr < 0 || dr < 0 {
					severed++
					continue
				}
				tbl := s.Net.Router(sr).Table(v)
				if tbl == nil {
					severed++
					continue
				}
				if _, ok := tbl.Lookup(dst); !ok {
					severed++
					continue
				}
				if _, err := c.WalkRoute(src, dst, v); err != nil {
					t.Fatalf("healed route %d->%d (%s): %v", src, dst, v, err)
				}
				routable++
			}
		}
	}
	if cyc := c.FindCycle(); cyc != "" {
		t.Fatalf("healed topology has a channel-dependency cycle: %s", cyc)
	}
	return routable, severed
}

// TestFaultMeshLinkDropsAreAccounted breaks one mesh link permanently.
// XY routing cannot steer around it, so the static design must drop — and
// account — every packet the pruned tables can no longer deliver.
func TestFaultMeshLinkDropsAreAccounted(t *testing.T) {
	cfg := faultConfig(adaptnoc.DesignBaseline,
		// The east link out of router (1,3) = 25, mid-GPU-region: plenty
		// of traffic crosses it.
		fault.Event{Cycle: 3000, Kind: fault.KindLink, Router: 25, Port: noc.PortEast},
	)
	s, res := verifiedRun(t, cfg, 20000)
	if got := totalDropped(res); got == 0 {
		t.Error("permanent mesh link fault dropped no packets")
	}
	if sr := res.SurvivalRate(); sr >= 1 || sr <= 0 {
		t.Errorf("survival rate %v, want in (0,1)", sr)
	}
	if eng := s.FaultEngine(); eng == nil || eng.Strikes != 1 {
		t.Fatalf("fault engine strikes = %v, want 1", eng)
	}
	checkHealedRoutes(t, s)
	// The table renders the drops; the parser recovers them.
	sum, err := adaptnoc.ParseResultsSummary(res.String())
	if err != nil {
		t.Fatal(err)
	}
	var parsed int64
	for _, a := range sum.Apps {
		parsed += a.Dropped
	}
	if parsed != totalDropped(res) {
		t.Errorf("parsed drop total %d != results %d", parsed, totalDropped(res))
	}
}

// TestFaultAdaptRouterHealsAroundDeadRegion kills a router under the
// Adapt design: the engine re-allocates adaptable links around the dead
// region and rebuilds spanning-forest tables, so every surviving pair
// stays connected and only routes touching the dead router's tiles sever.
func TestFaultAdaptRouterHealsAroundDeadRegion(t *testing.T) {
	cfg := faultConfig(adaptnoc.DesignAdaptNoC,
		fault.Event{Cycle: 3000, Kind: fault.KindRouter, Router: 27},
	)
	s, res := verifiedRun(t, cfg, 20000)
	routable, _ := checkHealedRoutes(t, s)
	if routable == 0 {
		t.Fatal("no routable pairs survived the heal")
	}
	// The dead router's tiles detach; every other tile of every region
	// must stay routable to every same-region peer (Adapt subNoCs are
	// per-region, so cross-region pairs were never routable).
	c := deadlock.NewChecker(s.Net)
	detached := 0
	for _, app := range cfg.Apps {
		var live []noc.NodeID
		for _, tile := range app.Region.Tiles(s.Net.Cfg.Width) {
			if s.Net.ServingRouter(tile) < 0 {
				detached++
				continue
			}
			live = append(live, tile)
		}
		for _, src := range live {
			for _, dst := range live {
				if src == dst || s.Net.ServingRouter(src) == s.Net.ServingRouter(dst) {
					continue
				}
				for v := noc.VNet(0); v < noc.NumVNets; v++ {
					if _, err := c.WalkRoute(src, dst, v); err != nil {
						t.Fatalf("surviving pair %d->%d (%s) severed after heal: %v", src, dst, v, err)
					}
				}
			}
		}
	}
	if detached == 0 {
		t.Error("router fault detached no tiles")
	}
	if cyc := c.FindCycle(); cyc != "" {
		t.Fatalf("healed topology has a dependency cycle: %s", cyc)
	}
	if sr := res.SurvivalRate(); sr <= 0.9 {
		t.Errorf("adapt survival rate %v after healing, want > 0.9", sr)
	}
}

// TestFaultTransientRecovers schedules a transient link fault with a
// repair: after the repair applies, the engine must report no active
// damage and the full mesh must be routable again.
func TestFaultTransientRecovers(t *testing.T) {
	cfg := faultConfig(adaptnoc.DesignBaseline,
		fault.Event{Cycle: 2000, Kind: fault.KindLink, Router: 25, Port: noc.PortEast, Repair: 4000},
	)
	s, res := verifiedRun(t, cfg, 16000)
	eng := s.FaultEngine()
	if eng.Strikes != 1 || eng.Repairs != 1 {
		t.Fatalf("strikes=%d repairs=%d, want 1/1", eng.Strikes, eng.Repairs)
	}
	if n := eng.ActiveCount(); n != 0 {
		t.Fatalf("%d faults still active after repair", n)
	}
	routable, severed := checkHealedRoutes(t, s)
	if severed != 0 {
		t.Errorf("%d severed pairs after full repair (routable %d)", severed, routable)
	}
	// Traffic crossing the 4000-cycle outage window was dropped…
	if totalDropped(res) == 0 {
		t.Error("outage window dropped nothing")
	}
	// …and nothing drops after repair: re-run the tail and compare.
	before := totalDropped(res)
	s.Run(8000)
	if after := totalDropped(s.Results()); after != before {
		t.Errorf("drops kept accruing after repair: %d -> %d", before, after)
	}
}

// TestFaultVCMaskedNotDropped masks one VC of one link. The router keeps
// routing on the surviving VCs, so nothing drops and nothing severs.
func TestFaultVCMaskedNotDropped(t *testing.T) {
	cfg := faultConfig(adaptnoc.DesignBaseline,
		fault.Event{Cycle: 3000, Kind: fault.KindVC, Router: 25, Port: noc.PortEast, VC: 1},
	)
	s, res := verifiedRun(t, cfg, 16000)
	if got := totalDropped(res); got != 0 {
		t.Errorf("single-VC fault dropped %d packets", got)
	}
	if _, severed := checkHealedRoutes(t, s); severed != 0 {
		t.Errorf("%d pairs severed by a VC mask", severed)
	}
	if res.SurvivalRate() != 1 {
		t.Errorf("survival %v under a VC mask, want 1", res.SurvivalRate())
	}
}

// TestFaultOSCAREscalatesVCFault proves the design-specific escalation
// policy: OSCAR's opaque VC admission cannot honour a masked VC, so the
// same VC event that a mesh absorbs becomes a link fault under OSCAR.
func TestFaultOSCAREscalatesVCFault(t *testing.T) {
	ev := fault.Event{Cycle: 3000, Kind: fault.KindVC, Router: 25, Port: noc.PortEast, VC: 1}
	_, res := verifiedRun(t, faultConfig(adaptnoc.DesignOSCAR, ev), 16000)
	if totalDropped(res) == 0 {
		t.Error("OSCAR VC fault escalated to a link cut but dropped nothing")
	}
}

// TestFaultShardedByteIdentical runs a faulted campaign serial and
// sharded: the shard count must not perturb drop accounting, healing, or
// the checkpoint encoding.
func TestFaultShardedByteIdentical(t *testing.T) {
	const cycles = 16000
	events := []fault.Event{
		{Cycle: 3000, Kind: fault.KindLink, Router: 25, Port: noc.PortEast},
		{Cycle: 6000, Kind: fault.KindRouter, Router: 44},
		{Cycle: 9000, Kind: fault.KindVC, Router: 10, Port: noc.PortNorth, VC: 0, Repair: 3000},
	}
	for _, d := range []adaptnoc.Design{adaptnoc.DesignBaseline, adaptnoc.DesignAdaptNoC} {
		t.Run(d.String(), func(t *testing.T) {
			cfg := faultConfig(d, events...)
			ref, err := adaptnoc.NewSim(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref.Run(cycles)
			wantRes := resultsJSON(t, ref.Results())
			wantBlob, err := ref.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{2, 4} {
				t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
					s, err := adaptnoc.NewSim(cfg)
					if err != nil {
						t.Fatal(err)
					}
					s.SetShards(k)
					defer s.StopWorkers()
					s.Run(cycles)
					if got := resultsJSON(t, s.Results()); !bytes.Equal(got, wantRes) {
						t.Errorf("sharded faulted results differ:\n got %s\nwant %s", got, wantRes)
					}
					blob, err := s.Checkpoint()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(blob, wantBlob) {
						t.Errorf("sharded faulted checkpoint differs (%d vs %d bytes)", len(blob), len(wantBlob))
					}
				})
			}
		})
	}
}

// TestFaultCheckpointMidCampaign checkpoints between the strike and the
// repair of a transient fault — damaged wiring, masked VCs, pending
// repair, and drop tallies all mid-flight — and requires restore to be
// byte-identical across the process boundary and across shard counts.
func TestFaultCheckpointMidCampaign(t *testing.T) {
	events := []fault.Event{
		{Cycle: 3000, Kind: fault.KindLink, Router: 25, Port: noc.PortEast, Repair: 9000},
		{Cycle: 5000, Kind: fault.KindRouter, Router: 44},
	}
	for _, d := range []adaptnoc.Design{adaptnoc.DesignBaseline, adaptnoc.DesignAdaptNoC} {
		t.Run(d.String(), func(t *testing.T) {
			// 7000 sits after both strikes, before the repair at ~12000.
			resumeByteIdentical(t, faultConfig(d, events...), 7000, 20000)
		})
	}
}

// TestFaultCheckpointRestoredIntoShardedRun crosses the two axes: a blob
// snapshotted mid-campaign on a serial run finishes identically when the
// restored sim runs sharded.
func TestFaultCheckpointRestoredIntoShardedRun(t *testing.T) {
	cfg := faultConfig(adaptnoc.DesignAdaptNoC,
		fault.Event{Cycle: 3000, Kind: fault.KindRouter, Router: 27},
	)
	const mid, total = 7000, 18000
	ref, err := adaptnoc.NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(total)
	want := resultsJSON(t, ref.Results())

	s, err := adaptnoc.NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(mid)
	blob, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	r, err := adaptnoc.RestoreSim(blob)
	if err != nil {
		t.Fatal(err)
	}
	r.SetShards(2)
	defer r.StopWorkers()
	r.Run(total - mid)
	if got := resultsJSON(t, r.Results()); !bytes.Equal(got, want) {
		t.Errorf("mid-campaign blob + sharded finish diverged:\n got %s\nwant %s", got, want)
	}
}

// TestFaultPreFaultBlobStillDecodes proves backwards compatibility: a
// blob written by a fault-free configuration (the pre-fault layout, with
// no fault section) restores with an empty fault state.
func TestFaultPreFaultBlobStillDecodes(t *testing.T) {
	s, err := adaptnoc.NewSim(chkConfig(adaptnoc.DesignAdaptNoC))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(5000)
	blob, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	r, err := adaptnoc.RestoreSim(blob)
	if err != nil {
		t.Fatal(err)
	}
	if r.FaultEngine() != nil {
		t.Error("fault-free blob restored with a live fault engine")
	}
	if got := totalDropped(r.Results()); got != 0 {
		t.Errorf("fault-free restore reports %d drops", got)
	}
}

// TestFaultCampaignReplay is the campaign workflow end to end: snapshot
// one warmed state, replay it under many generated fault schedules via
// the runner pool, and require each (blob, schedule) outcome to be
// byte-identical between a parallel sharded replay and a serial rerun.
func TestFaultCampaignReplay(t *testing.T) {
	warm, err := adaptnoc.NewSim(chkConfig(adaptnoc.DesignAdaptNoC))
	if err != nil {
		t.Fatal(err)
	}
	warm.Run(5000)
	blob, err := warm.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	w, h := warm.Net.Cfg.Width, warm.Net.Cfg.Height
	var schedules [][]fault.Event
	for _, seed := range runner.Seeds(99, 4) {
		sched := fault.Generate(3, seed, w, h, 20000)
		// Generated strikes land in [horizon/10, horizon/2); shift them
		// past the warmed snapshot's cycle 5000.
		for i := range sched {
			sched[i].Cycle += 6000
		}
		schedules = append(schedules, sched)
	}

	replay := func(sched []fault.Event, shards int) []byte {
		r, err := adaptnoc.RestoreSim(blob)
		if err != nil {
			t.Fatal(err)
		}
		if shards > 1 {
			r.SetShards(shards)
			defer r.StopWorkers()
		}
		if err := r.ApplyFaultSchedule(sched); err != nil {
			t.Fatal(err)
		}
		r.Run(15000)
		return resultsJSON(t, r.Results())
	}

	got, err := runner.Map(context.Background(), 4, schedules,
		func(_ context.Context, sched []fault.Event) ([]byte, error) {
			return replay(sched, 2), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	distinct := make(map[string]bool)
	for i, sched := range schedules {
		want := replay(sched, 1)
		if !bytes.Equal(got[i], want) {
			t.Errorf("campaign %d: pooled sharded replay differs from serial rerun:\n got %s\nwant %s",
				i, got[i], want)
		}
		distinct[string(want)] = true
	}
	if len(distinct) < 2 {
		t.Errorf("all %d schedules produced identical results; campaigns are not exercising distinct faults", len(schedules))
	}
}

// TestFaultScheduleSurvivesCheckpoint proves ApplyFaultSchedule extends
// Cfg.Faults: a checkpoint taken after injection replays the extended
// schedule, striking faults the original config never contained.
func TestFaultScheduleSurvivesCheckpoint(t *testing.T) {
	s, err := adaptnoc.NewSim(chkConfig(adaptnoc.DesignBaseline))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(1000)
	sched := []fault.Event{{Cycle: 4000, Kind: fault.KindLink, Router: 25, Port: noc.PortEast}}
	if err := s.ApplyFaultSchedule(sched); err != nil {
		t.Fatal(err)
	}
	blob, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	s.Run(15000)
	want := resultsJSON(t, s.Results())

	r, err := adaptnoc.RestoreSim(blob)
	if err != nil {
		t.Fatal(err)
	}
	if r.FaultEngine() == nil {
		t.Fatal("restored sim lost the injected schedule")
	}
	r.Run(15000)
	if got := resultsJSON(t, r.Results()); !bytes.Equal(got, want) {
		t.Errorf("restored injected-schedule run diverged:\n got %s\nwant %s", got, want)
	}
	if r.FaultEngine().Strikes != 1 {
		t.Errorf("restored run struck %d faults, want 1", r.FaultEngine().Strikes)
	}
}

// TestFaultApplyScheduleRejectsPastCycles guards the replay API: a
// schedule striking at or before the current cycle is a caller bug.
func TestFaultApplyScheduleRejectsPastCycles(t *testing.T) {
	s, err := adaptnoc.NewSim(chkConfig(adaptnoc.DesignBaseline))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(5000)
	err = s.ApplyFaultSchedule([]fault.Event{{Cycle: 5000, Kind: fault.KindLink, Router: 1, Port: noc.PortEast}})
	if err == nil {
		t.Fatal("schedule striking at the current cycle was accepted")
	}
}

// TestFaultKillRowMeshVsAdapt is the headline claim in miniature: kill a
// full row of routers. The static mesh partitions — XY routes through the
// dead row sever, and cross-partition traffic drops — while Adapt-NoC
// bridges the gap over re-allocated adaptable links and keeps delivering.
func TestFaultKillRowMeshVsAdapt(t *testing.T) {
	var row []fault.Event
	for x := 0; x < 8; x++ {
		row = append(row, fault.Event{Cycle: 3000, Kind: fault.KindRouter, Router: noc.NodeID(3*8 + x)})
	}
	_, mesh := verifiedRun(t, faultConfig(adaptnoc.DesignBaseline, row...), 20000)
	adaptSim, adaptRes := verifiedRun(t, faultConfig(adaptnoc.DesignAdaptNoC, row...), 20000)

	if mesh.SurvivalRate() >= 1 {
		t.Error("static mesh survived a severed row intact")
	}
	if adaptRes.SurvivalRate() <= mesh.SurvivalRate() {
		t.Errorf("adapt survival %v not better than mesh %v", adaptRes.SurvivalRate(), mesh.SurvivalRate())
	}
	// The bridged halves must reconnect: pairs spanning the dead row are
	// routable again under Adapt.
	c := deadlock.NewChecker(adaptSim.Net)
	crossed := 0
	for _, pair := range [][2]noc.NodeID{{0, 63}, {7, 56}, {16, 48}} {
		if _, err := c.WalkRoute(pair[0], pair[1], noc.VNetRequest); err == nil {
			crossed++
		}
	}
	if crossed == 0 {
		t.Error("no cross-row pair is routable after adapt healing")
	}
	if cyc := c.FindCycle(); cyc != "" {
		t.Fatalf("bridged topology has a dependency cycle: %s", cyc)
	}
}
