package adaptnoc_test

// Record & replay keystones: a recorded run replays deterministically
// (locked to a golden results file), the replay is byte-identical across
// shard counts, and a replay checkpoints and resumes byte-identically —
// including across a shard-count change at the restore boundary, the
// same guarantees every synthetic workload already has.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adaptnoc"
)

var updateTraceGolden = flag.Bool("update-trace-golden", false,
	"rewrite testdata/golden_trace_replay.json from the current replay output")

// recordMixedTrace runs the mixed workload on a baseline fabric for a
// short window and captures it into a trace blob.
func recordMixedTrace(t testing.TB, cycles adaptnoc.Cycle) []byte {
	t.Helper()
	s, err := adaptnoc.NewSim(adaptnoc.Config{
		Design:      adaptnoc.DesignBaseline,
		Apps:        adaptnoc.DefaultMixed(0),
		Seed:        2021,
		EpochCycles: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RecordTrace(); err != nil {
		t.Fatal(err)
	}
	s.Run(cycles)
	tr, err := s.FinishTrace()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := adaptnoc.EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// replaySim builds a replay simulation from a trace blob using the
// recorded placements and grid.
func replaySim(t testing.TB, blob []byte) *adaptnoc.Sim {
	t.Helper()
	apps, w, h, err := adaptnoc.TraceWorkload(blob)
	if err != nil {
		t.Fatal(err)
	}
	s, err := adaptnoc.NewSim(adaptnoc.Config{
		Design:      adaptnoc.DesignBaseline,
		Width:       w,
		Height:      h,
		Apps:        apps,
		Seed:        2021,
		EpochCycles: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

const traceTestMaxCycles = 200000

// TestGoldenTraceReplay locks the record→replay pipeline to
// testdata/golden_trace_replay.json: the recorded blob is rebuilt from
// scratch each run (the recorder is deterministic), replayed to
// completion, and the replay's results JSON must match the golden bytes.
// Refresh intentionally with:
//
//	go test -run TestGoldenTraceReplay -update-trace-golden
func TestGoldenTraceReplay(t *testing.T) {
	blob := recordMixedTrace(t, 6000)
	s := replaySim(t, blob)
	if !s.RunUntilFinished(traceTestMaxCycles) {
		t.Fatal("replay did not drain")
	}
	got := resultsJSON(t, s.Results())

	path := filepath.Join("testdata", "golden_trace_replay.json")
	if *updateTraceGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-trace-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace replay drifted from %s.\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}

	// The replay rows carry the recorded profile labels, so they merge
	// into the same results tables as synthetic runs.
	res := s.Results()
	if res.Apps[0].Profile != "bfs" || res.Apps[1].Profile != "canneal" {
		t.Fatalf("replay lost the recorded labels: %q, %q", res.Apps[0].Profile, res.Apps[1].Profile)
	}
}

// TestTraceReplayShardByteIdentical replays the same trace serially and
// with four tick shards; the results must be byte-identical.
func TestTraceReplayShardByteIdentical(t *testing.T) {
	blob := recordMixedTrace(t, 5000)

	run := func(shards int) []byte {
		s := replaySim(t, blob)
		s.SetShards(shards)
		if !s.RunUntilFinished(traceTestMaxCycles) {
			t.Fatal("replay did not drain")
		}
		defer s.StopWorkers()
		return resultsJSON(t, s.Results())
	}
	serial := run(1)
	for _, k := range []int{2, 4} {
		if sharded := run(k); !bytes.Equal(serial, sharded) {
			t.Fatalf("replay with %d shards diverged from serial:\n%s\nvs\n%s", k, sharded, serial)
		}
	}
}

// TestTraceReplayCheckpointResume interrupts a replay mid-flight,
// restores the checkpoint from its bytes alone (as a fresh process
// would), and requires byte-identical results against the uninterrupted
// replay — with the restored half running at a different shard count.
func TestTraceReplayCheckpointResume(t *testing.T) {
	blob := recordMixedTrace(t, 5000)

	ref := replaySim(t, blob)
	if !ref.RunUntilFinished(traceTestMaxCycles) {
		t.Fatal("replay did not drain")
	}
	want := resultsJSON(t, ref.Results())
	end := ref.Kernel.Now()

	s := replaySim(t, blob)
	s.Run(2500)
	ck, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	restored, err := adaptnoc.RestoreSim(ck)
	if err != nil {
		t.Fatal(err)
	}
	restored.SetShards(4)
	defer restored.StopWorkers()
	if !restored.RunUntilFinished(traceTestMaxCycles) {
		t.Fatal("restored replay did not drain")
	}
	if restored.Kernel.Now() != end {
		t.Fatalf("restored replay finished at cycle %d, reference at %d", restored.Kernel.Now(), end)
	}
	if got := resultsJSON(t, restored.Results()); !bytes.Equal(got, want) {
		t.Fatalf("restored replay diverged:\n%s\nvs\n%s", got, want)
	}
}

// TestRecordTraceAPIMisuse covers the recording preconditions.
func TestRecordTraceAPIMisuse(t *testing.T) {
	s, err := adaptnoc.NewSim(adaptnoc.Config{
		Design: adaptnoc.DesignBaseline,
		Apps:   adaptnoc.DefaultMixed(0),
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.FinishTrace(); err == nil {
		t.Fatal("FinishTrace without RecordTrace must fail")
	}
	s.Run(10)
	if err := s.RecordTrace(); err == nil {
		t.Fatal("recording must be rejected after cycle 0")
	}
}

// TestNewSimRejectsBadTraceSpecs covers the replay-spec validation in
// NewSim / resolveTraceSpec.
func TestNewSimRejectsBadTraceSpecs(t *testing.T) {
	blob := recordMixedTrace(t, 2000)
	apps, w, h, err := adaptnoc.TraceWorkload(blob)
	if err != nil {
		t.Fatal(err)
	}
	base := adaptnoc.Config{Design: adaptnoc.DesignBaseline, Width: w, Height: h, Seed: 1}

	cases := []struct {
		name string
		mut  func(s []adaptnoc.AppSpec)
		want string
	}{
		{"profile and trace", func(s []adaptnoc.AppSpec) { s[0].Profile = "bfs" }, "one or the other"},
		{"instr budget", func(s []adaptnoc.AppSpec) { s[0].InstrBudget = 100 }, "no instruction budget"},
		{"trace app out of range", func(s []adaptnoc.AppSpec) { s[0].TraceApp = 99 }, "index 99"},
		{"resized region", func(s []adaptnoc.AppSpec) { s[0].Region.W += 4; s[0].Region.X -= 4 }, "not resize"},
		{"corrupt blob", func(s []adaptnoc.AppSpec) { s[0].TraceData = []byte("ADNOCTRC junk") }, "trace"},
		{"missing file", func(s []adaptnoc.AppSpec) { s[0].TraceData = nil; s[0].Trace = "/nonexistent.trc" }, "reading trace"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			cfg.Apps = append([]adaptnoc.AppSpec(nil), apps...)
			tc.mut(cfg.Apps)
			_, err := adaptnoc.NewSim(cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got error %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestTraceSpecDoesNotShiftNeighbourStreams proves swapping one app's
// synthetic profile for a trace leaves the other apps' RNG streams — and
// therefore their traffic — untouched.
func TestTraceSpecDoesNotShiftNeighbourStreams(t *testing.T) {
	blob := recordMixedTrace(t, 2000)
	apps, w, h, err := adaptnoc.TraceWorkload(blob)
	if err != nil {
		t.Fatal(err)
	}

	// All-synthetic reference: the same placements, profiles from the
	// recording.
	synth := adaptnoc.DefaultMixed(0)
	runOne := func(specs []adaptnoc.AppSpec) adaptnoc.Results {
		s, err := adaptnoc.NewSim(adaptnoc.Config{
			Design: adaptnoc.DesignBaseline, Width: w, Height: h,
			Apps: specs, Seed: 2021, EpochCycles: 4000,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Run(3000)
		return s.Results()
	}
	ref := runOne(synth)

	// Replace app 0 with its recorded trace; apps 1 and 2 stay synthetic.
	mixed := append([]adaptnoc.AppSpec(nil), synth...)
	mixed[0] = apps[0]
	got := runOne(mixed)

	for i := 1; i < len(ref.Apps); i++ {
		if got.Apps[i].RetiredInstr != ref.Apps[i].RetiredInstr {
			t.Fatalf("app %d retired %d instructions with a trace neighbour, %d without",
				i, got.Apps[i].RetiredInstr, ref.Apps[i].RetiredInstr)
		}
	}
}
