package adaptnoc

import (
	"encoding/json"
	"reflect"
	"testing"

	"adaptnoc/internal/fault"
)

// FuzzParseAppSpecs hammers the workload-spec parser: it must reject or
// accept any input without panicking, and anything it accepts must survive
// a re-parse of its own canonical rendering (region and profile intact).
func FuzzParseAppSpecs(f *testing.F) {
	f.Add("bfs:0,0,4,8:tree; canneal:4,0,4,4:cmesh; ferret:4,4,4,4")
	f.Add("bodytrack:0,0,8,8")
	f.Add("bfs:0,0,4,8:torus+tree")
	f.Add("bfs:1,2,3,4:mesh;")
	f.Add(";;;")
	f.Add("bfs:0,0,-1,8")
	f.Add("bfs:0,0,4")
	f.Add("nosuch:0,0,4,8")
	f.Add("bfs:a,b,c,d")
	f.Add("bfs:0,0,4,8:nosuchtopo")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		specs, err := ParseAppSpecs(s)
		if err != nil {
			return
		}
		if len(specs) == 0 {
			t.Fatalf("ParseAppSpecs(%q) accepted but returned no specs", s)
		}
		for _, sp := range specs {
			if sp.Region.W <= 0 || sp.Region.H <= 0 {
				t.Fatalf("ParseAppSpecs(%q) accepted empty region %v", s, sp.Region)
			}
			if sp.Profile == "" {
				t.Fatalf("ParseAppSpecs(%q) accepted empty profile", s)
			}
		}
	})
}

// FuzzParseKind checks the topology-name parser never panics and only
// accepts names that render back to themselves.
func FuzzParseKind(f *testing.F) {
	for _, s := range []string{"mesh", "cmesh", "torus", "tree", "torus+tree", "MESH", "", "x"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		k, err := ParseKind(s)
		if err == nil && k.String() != s {
			t.Fatalf("ParseKind(%q) = %v which renders %q", s, k, k.String())
		}
	})
}

// FuzzParseDesign likewise for design-point names.
func FuzzParseDesign(f *testing.F) {
	for _, s := range []string{"baseline", "oscar", "shortcut", "ftby", "ftby-pg", "adapt-norl", "adapt-noc", "", "ADAPT"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		d, err := ParseDesign(s)
		if err == nil && d.String() != s {
			t.Fatalf("ParseDesign(%q) = %v which renders %q", s, d, d.String())
		}
	})
}

// FuzzParseFaultSchedule hammers the fault-schedule JSON decoder: hostile
// input must error, never panic, and never allocate beyond the decoder's
// input-size cap; any schedule it accepts must hold only Check-valid
// events and survive a marshal -> re-parse round trip unchanged.
func FuzzParseFaultSchedule(f *testing.F) {
	f.Add(`[{"cycle": 100, "kind": "link", "router": 3, "port": 2}]`)
	f.Add(`[{"cycle": 200, "kind": "router", "router": 9}, {"cycle": 300, "kind": "vc", "router": 1, "port": 4, "vc": 2, "repair": 500}]`)
	f.Add(`[]`)
	f.Add(`[{"cycle": 0, "router": 0, "port": 1}]`)
	f.Add(`[{"cycle": 1, "kind": "cosmic", "router": 0}]`)
	f.Add(`[{"cycle": 1, "router": 0, "port": 1, "laser": true}]`)
	f.Add(`[{"cycle": 1e99, "router": 0, "port": 1}]`)
	f.Add(`{"cycle": 1}`)
	f.Add(`[] []`)
	f.Add(`[{`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, s string) {
		events, err := fault.ParseSchedule([]byte(s))
		if err != nil {
			return
		}
		if len(events) > fault.MaxEvents {
			t.Fatalf("accepted %d events past the %d cap", len(events), fault.MaxEvents)
		}
		for i, ev := range events {
			if ce := ev.Check(0); ce != nil {
				t.Fatalf("accepted invalid events[%d] = %v: %v", i, ev, ce)
			}
		}
		b, err := json.Marshal(events)
		if err != nil {
			t.Fatalf("accepted schedule fails to marshal: %v", err)
		}
		again, err := fault.ParseSchedule(b)
		if err != nil {
			t.Fatalf("re-parse of accepted schedule failed: %v", err)
		}
		if len(events) > 0 && !reflect.DeepEqual(again, events) {
			t.Fatalf("round trip changed the schedule:\n got %+v\nwant %+v", again, events)
		}
	})
}

// FuzzParseResultsSummary feeds the results-table parser arbitrary text:
// it must never panic, and inputs it accepts must carry sane shapes.
func FuzzParseResultsSummary(f *testing.F) {
	f.Add("design=baseline cycles=40000 energy=12.34uJ (dyn 10.00, static 2.34)\n" +
		"  bfs            4x8@(0,0) lat=35.2 (net 30.1 + queue 5.1) hops=4.52 pkts=1234\n")
	f.Add("design=adapt-noc cycles=500000 energy=90.00uJ (dyn 60.00, static 30.00)\n" +
		"  canneal        4x4@(4,0) lat=20.0 (net 18.0 + queue 2.0) hops=3.10 pkts=999 exec=48000 kind=cmesh reconf=3 sel=[mesh:25% cmesh:75%]\n")
	f.Add("design=ftby cycles=1 energy=0.00uJ (dyn 0.00, static 0.00)\n")
	f.Add("design=x cycles=y\n")
	f.Add("")
	f.Add("  orphan app line\n")
	f.Fuzz(func(t *testing.T, s string) {
		sum, err := ParseResultsSummary(s)
		if err != nil {
			return
		}
		if sum.Design == "" {
			t.Fatalf("ParseResultsSummary(%q) accepted empty design", s)
		}
		for _, a := range sum.Apps {
			if a.Profile == "" {
				t.Fatalf("ParseResultsSummary(%q) accepted app with no profile", s)
			}
		}
	})
}

// TestParseResultsSummaryRoundTrip locks parser and renderer together: a
// handcrafted Results must survive String -> Parse with every field
// intact, including the Adapt-only suffix.
func TestParseResultsSummaryRoundTrip(t *testing.T) {
	var r Results
	r.Design = DesignAdaptNoC
	r.Cycles = 40000
	r.Apps = []AppResult{
		{
			Profile: "bfs", Region: Region{X: 0, Y: 0, W: 4, H: 8},
			AvgTotalLatency: 35.25, AvgNetLatency: 30.125, AvgQueueLatency: 5.125,
			AvgHops: 4.52, DeliveredPackets: 1234, ExecTime: -1,
			FinalKind: Tree, Reconfigs: 2,
		},
		{
			Profile: "canneal", Region: Region{X: 4, Y: 0, W: 4, H: 4},
			AvgTotalLatency: 20, AvgNetLatency: 18, AvgQueueLatency: 2,
			AvgHops: 3.1, DeliveredPackets: 999, DroppedPackets: 37, ExecTime: 48000,
			FinalKind: CMesh, Reconfigs: 3,
		},
	}
	r.Apps[0].Selections[int(Mesh)] = 0.25
	r.Apps[0].Selections[int(Tree)] = 0.75
	r.Apps[1].Selections[int(CMesh)] = 1

	sum, err := ParseResultsSummary(r.String())
	if err != nil {
		t.Fatalf("round trip failed on:\n%s\nerror: %v", r.String(), err)
	}
	if sum.Design != r.Design.String() || sum.Cycles != int64(r.Cycles) {
		t.Fatalf("header mismatch: %+v", sum)
	}
	if len(sum.Apps) != 2 {
		t.Fatalf("parsed %d apps, want 2", len(sum.Apps))
	}
	a := sum.Apps[0]
	if a.Profile != "bfs" || a.Region != r.Apps[0].Region ||
		a.TotalLat != 35.2 /* %.1f rendering */ || a.Hops != 4.52 ||
		a.Packets != 1234 || a.Dropped != 0 || a.ExecTime != -1 ||
		a.Kind != "tree" || a.Reconfigs != 2 {
		t.Fatalf("app 0 mismatch: %+v", a)
	}
	if a.Selections["mesh"] != 0.25 || a.Selections["tree"] != 0.75 {
		t.Fatalf("app 0 selections mismatch: %v", a.Selections)
	}
	b := sum.Apps[1]
	if b.Dropped != 37 || b.ExecTime != 48000 || b.Kind != "cmesh" || b.Selections["cmesh"] != 1 {
		t.Fatalf("app 1 mismatch: %+v", b)
	}
}

// TestParseResultsSummaryRejects pins down a few malformed shapes.
func TestParseResultsSummaryRejects(t *testing.T) {
	cases := []string{
		"",
		"design=baseline cycles=ten energy=0.00uJ (dyn 0.00, static 0.00)",
		"design=baseline cycles=1 energy=0.00uJ (dyn 0.00, static 0.00)\nno indent",
		"design=baseline cycles=1 energy=0.00uJ (dyn 0.00, static 0.00)\n  bfs 4x8@(0,0) lat=1.0",
		"design=baseline cycles=1 energy=0.00uJ (dyn 0.00, static 0.00)\n" +
			"  bfs 4x8@(0,0) lat=1.0 (net 1.0 + queue 0.0) hops=1.00 pkts=1 sel=[unterminated",
		"design=baseline cycles=1 energy=0.00uJ (dyn 0.00, static 0.00)\n" +
			"  bfs 4x8@(0,0) lat=1.0 (net 1.0 + queue 0.0) hops=1.00 pkts=1 drop=many",
		"design=baseline cycles=1 energy=0.00uJ (dyn 0.00, static 0.00)\n" +
			"  bfs 4x8@(0,0) lat=1.0 (net 1.0 + queue 0.0) hops=1.00 pkts=1 exec=1x",
		"design=baseline cycles=1 energy=0.00uJ (dyn 0.00, static 0.00)\n" +
			"  bfs 4x8@(0,0) lat=1.0 (net 1.0 + queue 0.0) hops=1.00 pkts=1 reconf=??",
		"design=baseline cycles=1 energy=0.00uJ (dyn 0.00, static 0.00)\n" +
			"  bfs 4x8@(0,0) lat=1.0 (net 1.0 + queue 0.0) hops=1.00 pkts=1 surprise=9",
		"design=baseline cycles=1 energy=0.00uJ (dyn 0.00, static 0.00)\n" +
			"  bfs 4x8@(0,0) lat=1.0 (net 1.0 + queue 0.0) hops=1.00 pkts=1 sel=[a:b%]",
		"design=baseline cycles=1 energy=0.00uJ (dyn 0.00, static 0.00)\n" +
			"  bfs 4x8@(0,0) lat=1.0 (net 1.0 + queue 0.0) hops=1.00 pkts=1 sel=[] junk",
		"design=baseline cycles=1 energy=0.00uJ (dyn 0.00, static 0.00)\n" +
			"  bfs 4x8@nowhere lat=1.0 (net 1.0 + queue 0.0) hops=1.00 pkts=1",
		"design=baseline cycles=1 energy=0.00uJ (dyn 0.00, static 0.00)\n" +
			"  bfs 4x8@(0,0) lat=1.0 (wrong 1.0 + queue 0.0) hops=1.00 pkts=1",
	}
	for _, s := range cases {
		if _, err := ParseResultsSummary(s); err == nil {
			t.Errorf("ParseResultsSummary accepted malformed input %q", s)
		}
	}
}
