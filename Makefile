# Convenience targets; everything is plain `go` underneath.

.PHONY: build test race bench quick check fuzzseeds

build:
	go build ./...

test:
	go test ./...

# check is the full pre-merge gate: vet, formatting, the complete test
# suite under the race detector, and every fuzz target replayed over its
# committed seed corpus (no fuzzing engine — plain deterministic replay).
check:
	go vet ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	go test -race ./...
	go test -run 'Fuzz' ./...

# fuzzseeds replays the committed corpora only (fast subset of check).
fuzzseeds:
	go test -run 'Fuzz' ./...

# race runs the concurrency-sensitive packages — the experiment runner,
# the simulation kernel, the network substrate, and the experiment
# drivers' determinism guard — under the race detector. Short mode keeps
# it to a couple of minutes; it must stay clean at any -parallel setting.
race:
	go test -race -short ./internal/runner ./internal/sim ./internal/noc
	go test -race ./internal/exp -run DeterministicAcrossParallelism

bench:
	go test -bench=. -benchtime=1x

quick:
	go run ./cmd/adaptnoc-experiments -quick
