# Convenience targets; everything is plain `go` underneath.

.PHONY: build test race bench bench-serve bench-tick bench-tick-smoke bench-checkpoint quick check cover fuzzseeds serve-smoke

build:
	go build ./...

test:
	go test ./...

# check is the full pre-merge gate: vet, formatting, the complete test
# suite under the race detector, and every fuzz target replayed over its
# committed seed corpus (no fuzzing engine — plain deterministic replay).
check:
	go vet ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	go test -race ./...
	go test -run 'Fuzz' ./...
	go run ./cmd/adaptnoc-serve -smoke
	$(MAKE) bench-tick-smoke
	$(MAKE) cover

# cover runs the suite with cross-package coverage (root-package tests
# exercise internal/noc, internal/system, etc., which per-package numbers
# would miss) and enforces a floor. Browse with `go tool cover -html=cover.out`.
COVER_FLOOR := 75.0
cover:
	go test -coverpkg=./... -coverprofile=cover.out ./...
	@total=$$(go tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || \
		{ echo "coverage below $(COVER_FLOOR)% floor"; exit 1; }

# fuzzseeds replays the committed corpora only (fast subset of check).
fuzzseeds:
	go test -run 'Fuzz' ./...

# race runs the concurrency-sensitive packages — the experiment runner,
# the simulation kernel, the network substrate, and the experiment
# drivers' determinism guard — under the race detector. Short mode keeps
# it to a couple of minutes; it must stay clean at any -parallel setting.
race:
	go test -race -short ./internal/runner ./internal/sim ./internal/noc ./internal/serve
	go test -race ./internal/exp -run DeterministicAcrossParallelism

bench:
	go test -bench=. -benchtime=1x

# bench-tick measures the steady-state Network.Tick benchmark (5 runs) and
# gates it against the committed pre-optimization baseline: fail on >10%
# mean ns/op regression or any allocs/op at all, and record the before/after
# comparison in BENCH_tick.json.
bench-tick:
	go test -run '^$$' -bench 'BenchmarkNetworkTick$$' -benchmem -count 5 \
		./internal/noc | tee /tmp/adaptnoc_bench_tick_after.txt
	go run ./cmd/adaptnoc-benchdiff -bench BenchmarkNetworkTick \
		-before internal/noc/testdata/bench_tick_before.txt \
		-after /tmp/adaptnoc_bench_tick_after.txt \
		-require-zero-allocs -json BENCH_tick.json

# bench-tick-smoke is the fast gate wired into check: one short benchmark
# iteration plus the comparator end-to-end. Timing on a loaded CI box is
# meaningless at this length, so the ns gate is opened wide; the allocs/op
# gate is deterministic and is the real assertion (the tick loop must stay
# allocation-free).
bench-tick-smoke:
	go test -run '^$$' -bench 'BenchmarkNetworkTick$$' -benchmem -benchtime 100x \
		./internal/noc | tee /tmp/adaptnoc_bench_tick_smoke.txt
	go run ./cmd/adaptnoc-benchdiff -bench BenchmarkNetworkTick \
		-before internal/noc/testdata/bench_tick_before.txt \
		-after /tmp/adaptnoc_bench_tick_smoke.txt \
		-require-zero-allocs -max-ns-regress 400 -json /tmp/adaptnoc_bench_tick_smoke.json

# serve-smoke boots the daemon on a loopback port, round-trips one job
# over real HTTP, and verifies the cache-hit path (also part of check).
serve-smoke:
	go run ./cmd/adaptnoc-serve -smoke

# bench-serve measures one uncached simulation against repeated cached
# submissions of the identical request and records BENCH_serve.json.
bench-serve:
	go run ./cmd/adaptnoc-serve -benchjson BENCH_serve.json

# bench-checkpoint measures checkpoint blob size, encode time, and restore
# time per design point and records BENCH_checkpoint.json.
bench-checkpoint:
	go test -run TestCheckpointBenchRecord -checkpoint-benchjson BENCH_checkpoint.json .

quick:
	go run ./cmd/adaptnoc-experiments -quick
