# Convenience targets; everything is plain `go` underneath.

.PHONY: build test race bench bench-serve bench-tick bench-tick-smoke bench-shard bench-shard-smoke bench-checkpoint bench-checkpoint-smoke bench-trace quick check cover fuzzseeds serve-smoke fault-smoke fleet-smoke trace-smoke

NPROC := $(shell nproc)

build:
	go build ./...

test:
	go test ./...

# check is the full pre-merge gate: vet, formatting, the complete test
# suite under the race detector, and every fuzz target replayed over its
# committed seed corpus (no fuzzing engine — plain deterministic replay).
check:
	go vet ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	go test -race -timeout 30m ./...
	go test -run 'Fuzz' ./...
	go run ./cmd/adaptnoc-serve -smoke
	go run ./cmd/adaptnoc-fleet -smoke
	$(MAKE) fault-smoke
	$(MAKE) trace-smoke
	$(MAKE) bench-tick-smoke
	$(MAKE) bench-shard-smoke
	$(MAKE) bench-checkpoint-smoke
	$(MAKE) cover

# cover runs the suite with cross-package coverage (root-package tests
# exercise internal/noc, internal/system, etc., which per-package numbers
# would miss) and enforces a floor. Browse with `go tool cover -html=cover.out`.
COVER_FLOOR := 78.0
cover:
	go test -coverpkg=./... -coverprofile=cover.out ./...
	@total=$$(go tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || \
		{ echo "coverage below $(COVER_FLOOR)% floor"; exit 1; }

# fuzzseeds replays the committed corpora only (fast subset of check).
fuzzseeds:
	go test -run 'Fuzz' ./...

# race runs the concurrency-sensitive packages — the experiment runner,
# the simulation kernel, the network substrate, and the experiment
# drivers' determinism guard — under the race detector, plus the sharded
# tick determinism suite and the fault campaigns (the worker gang's
# byte-identity proof and the fault engine's quiescent apply points both
# need the detector watching the region boundaries). It must stay clean
# at any -parallel or -shards setting.
race:
	go test -race -short ./internal/runner ./internal/sim ./internal/noc ./internal/serve ./internal/fleet
	go test -race ./internal/exp -run DeterministicAcrossParallelism
	go test -race -run 'TestSharded|TestFault' .

bench:
	go test -bench=. -benchtime=1x

# bench-tick measures the steady-state Network.Tick benchmark (5 runs) and
# gates it against the committed pre-optimization baseline: fail on >10%
# mean ns/op regression or any allocs/op at all, and record the before/after
# comparison in BENCH_tick.json.
bench-tick:
	go test -run '^$$' -bench 'BenchmarkNetworkTick$$' -benchmem -count 5 \
		./internal/noc | tee /tmp/adaptnoc_bench_tick_after.txt
	go run ./cmd/adaptnoc-benchdiff -bench BenchmarkNetworkTick \
		-before internal/noc/testdata/bench_tick_before.txt \
		-after /tmp/adaptnoc_bench_tick_after.txt \
		-require-zero-allocs -json BENCH_tick.json

# bench-tick-smoke is the fast gate wired into check: one short benchmark
# iteration plus the comparator end-to-end. Timing on a loaded CI box is
# meaningless at this length, so the ns gate is opened wide; the allocs/op
# gate is deterministic and is the real assertion (the tick loop must stay
# allocation-free).
bench-tick-smoke:
	go test -run '^$$' -bench 'BenchmarkNetworkTick$$' -benchmem -benchtime 100x \
		./internal/noc | tee /tmp/adaptnoc_bench_tick_smoke.txt
	go run ./cmd/adaptnoc-benchdiff -bench BenchmarkNetworkTick \
		-before internal/noc/testdata/bench_tick_before.txt \
		-after /tmp/adaptnoc_bench_tick_smoke.txt \
		-require-zero-allocs -max-ns-regress 400 -json /tmp/adaptnoc_bench_tick_smoke.json

# bench-shard measures the region-parallel tick across chip sizes
# (BenchmarkNetworkTickSharded: 8x8 through 64x64, serial vs one shard per
# core) and records the per-size serial-vs-sharded comparison in
# BENCH_shard.json — the "before" column is the shards=1 row and the
# "after" column the shards=$(NPROC) row of the SAME run. On a 4+ core
# host the 32x32 row is additionally gated: sharding must be at least 2x
# faster than serial or the target fails. On fewer cores the numbers are
# recorded without the speedup gate (a 1-core host only has serial rows).
SHARD_BENCHES := BenchmarkNetworkTickSharded/8x8/shards=1,BenchmarkNetworkTickSharded/16x16/shards=1,BenchmarkNetworkTickSharded/32x32/shards=1,BenchmarkNetworkTickSharded/64x64/shards=1
SHARD_AFTER := BenchmarkNetworkTickSharded/8x8/shards=$(NPROC),BenchmarkNetworkTickSharded/16x16/shards=$(NPROC),BenchmarkNetworkTickSharded/32x32/shards=$(NPROC),BenchmarkNetworkTickSharded/64x64/shards=$(NPROC)
bench-shard:
	go test -run '^$$' -bench BenchmarkNetworkTickSharded -benchmem -count 3 \
		./internal/noc | tee /tmp/adaptnoc_bench_shard.txt
	go run ./cmd/adaptnoc-benchdiff \
		-bench '$(SHARD_BENCHES)' -after-bench '$(SHARD_AFTER)' \
		-before /tmp/adaptnoc_bench_shard.txt -after /tmp/adaptnoc_bench_shard.txt \
		-require-zero-allocs -max-ns-regress 10000 -json BENCH_shard.json
	@if [ $(NPROC) -ge 4 ]; then \
		go run ./cmd/adaptnoc-benchdiff \
			-bench 'BenchmarkNetworkTickSharded/32x32/shards=1' \
			-after-bench 'BenchmarkNetworkTickSharded/32x32/shards=$(NPROC)' \
			-before /tmp/adaptnoc_bench_shard.txt -after /tmp/adaptnoc_bench_shard.txt \
			-max-ns-regress -50; \
	else \
		echo "bench-shard: $(NPROC) core(s) < 4, 2x speedup gate at 32x32 not armed"; \
	fi

# bench-shard-smoke is the fast gate wired into check: the 16x16 rows at a
# short benchtime, asserting the sharded tick path works end-to-end and
# stays allocation-free. Timing is not gated at this length.
bench-shard-smoke:
	go test -run '^$$' -bench 'BenchmarkNetworkTickSharded/16x16' -benchmem -benchtime 100x \
		./internal/noc | tee /tmp/adaptnoc_bench_shard_smoke.txt
	go run ./cmd/adaptnoc-benchdiff \
		-bench 'BenchmarkNetworkTickSharded/16x16/shards=1' \
		-after-bench 'BenchmarkNetworkTickSharded/16x16/shards=$(NPROC)' \
		-before /tmp/adaptnoc_bench_shard_smoke.txt -after /tmp/adaptnoc_bench_shard_smoke.txt \
		-require-zero-allocs -max-ns-regress 10000 -json /tmp/adaptnoc_bench_shard_smoke.json

# serve-smoke boots the daemon on a loopback port, round-trips one job
# over real HTTP, and verifies the cache-hit path (also part of check).
serve-smoke:
	go run ./cmd/adaptnoc-serve -smoke

# fleet-smoke boots a coordinator plus two serve workers on loopback
# ports, drives a small suite through the full fleet HTTP surface, and
# verifies the merged tables byte-for-byte against a local run — then
# resubmits the suite and verifies it completes without a single new
# dispatch (also part of check).
fleet-smoke:
	go run ./cmd/adaptnoc-fleet -smoke

# fault-smoke runs a small generated fault campaign end-to-end on a
# static and an adaptive design with the invariant checker armed every
# cycle: faults strike mid-run, drops are accounted, and nothing is
# silently lost (also part of check).
fault-smoke:
	go run ./cmd/adaptnoc-sim -design baseline -cycles 20000 -epoch 10000 -faults 3 -verify 1 >/dev/null
	go run ./cmd/adaptnoc-sim -design adapt-noc -cycles 20000 -epoch 10000 -faults 3 -verify 1 >/dev/null

# trace-smoke proves the record→replay pipeline end-to-end through the
# CLI (also part of check): capture a baseline run into a dependency
# trace, replay it serially and with four tick shards, and require the
# two replays' results JSON to be byte-identical.
trace-smoke:
	go run ./cmd/adaptnoc-sim -design baseline -cycles 8000 -epoch 4000 \
		-record-trace /tmp/adaptnoc_trace_smoke.trc >/dev/null
	go run ./cmd/adaptnoc-sim -trace /tmp/adaptnoc_trace_smoke.trc -json \
		> /tmp/adaptnoc_trace_replay_serial.json
	go run ./cmd/adaptnoc-sim -trace /tmp/adaptnoc_trace_smoke.trc -shards 4 -json \
		> /tmp/adaptnoc_trace_replay_sharded.json
	cmp /tmp/adaptnoc_trace_replay_serial.json /tmp/adaptnoc_trace_replay_sharded.json
	@echo "trace-smoke: shard-identical replay OK"

# bench-trace records the trace-replay comparison in BENCH_trace.json:
# the "before" column is the live synthetic mixed run the recorder
# captures and the "after" column the same traffic replayed from the
# recorded dependency graph. Replay carries the dependency bookkeeping on
# top of the same network simulation, so it is gated to stay within 2x of
# the live run. Each replay iteration also decodes the trace blob into
# per-node dependency state, so allocs/op is legitimately higher than the
# live run's — the gate allows that setup cost an explicit headroom
# instead of demanding alloc parity.
bench-trace:
	go test -run '^$$' -bench 'BenchmarkTrace(LiveRun|Replay)$$' -benchmem -count 3 \
		. | tee /tmp/adaptnoc_bench_trace.txt
	go run ./cmd/adaptnoc-benchdiff -bench BenchmarkTraceLiveRun \
		-after-bench BenchmarkTraceReplay \
		-before /tmp/adaptnoc_bench_trace.txt -after /tmp/adaptnoc_bench_trace.txt \
		-max-ns-regress 100 -max-allocs-regress 200000 -json BENCH_trace.json

# bench-serve measures one uncached simulation against repeated cached
# submissions of the identical request and records BENCH_serve.json.
bench-serve:
	go run ./cmd/adaptnoc-serve -benchjson BENCH_serve.json

# bench-checkpoint measures full-checkpoint blob size/encode/restore time
# per design point plus a warm rolling delta chain at -checkpoint-every
# 1000 granularity (the producer pattern serve and ChainWriter use),
# records BENCH_checkpoint.json, and gates the steady-regime rows: a delta
# must be at least 5x smaller and 3x faster to encode than the full
# snapshot it chains from. The measurement also proves base + deltas
# reconstructs the full blob byte-for-byte at the chain tip's cycle.
bench-checkpoint:
	go test -run TestCheckpointBenchRecord -checkpoint-benchjson BENCH_checkpoint.json .
	go run ./cmd/adaptnoc-benchdiff -checkpoint BENCH_checkpoint.json

# bench-checkpoint-smoke is the fast gate wired into check: one reduced
# steady-regime measurement (delta encode + the base-plus-deltas restore
# identity assertion inside the bench) plus the benchdiff checkpoint
# parser end-to-end. Timing is meaningless at this length, so the encode
# gate is opened; the size ratio is deterministic enough to keep armed low.
bench-checkpoint-smoke:
	go test -run TestCheckpointBenchRecord -checkpoint-bench-smoke \
		-checkpoint-benchjson /tmp/adaptnoc_bench_checkpoint_smoke.json .
	go run ./cmd/adaptnoc-benchdiff -checkpoint /tmp/adaptnoc_bench_checkpoint_smoke.json \
		-min-delta-size-ratio 2 -min-delta-encode-speedup 0

quick:
	go run ./cmd/adaptnoc-experiments -quick
