# Convenience targets; everything is plain `go` underneath.

.PHONY: build test race bench quick

build:
	go build ./...

test:
	go test ./...

# race runs the concurrency-sensitive packages — the experiment runner,
# the simulation kernel, the network substrate, and the experiment
# drivers' determinism guard — under the race detector. Short mode keeps
# it to a couple of minutes; it must stay clean at any -parallel setting.
race:
	go test -race -short ./internal/runner ./internal/sim ./internal/noc
	go test -race ./internal/exp -run DeterministicAcrossParallelism

bench:
	go test -bench=. -benchtime=1x

quick:
	go run ./cmd/adaptnoc-experiments -quick
