package adaptnoc

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleResults() Results {
	return Results{
		Design: DesignAdaptNoC,
		Cycles: 1000,
		Apps: []AppResult{
			{Profile: "bfs", AvgTotalLatency: 20, AvgNetLatency: 15, AvgQueueLatency: 5,
				AvgHops: 4, DeliveredPackets: 100, ExecTime: 900},
			{Profile: "ferret", AvgTotalLatency: 10, AvgNetLatency: 8, AvgQueueLatency: 2,
				AvgHops: 2, DeliveredPackets: 300, ExecTime: 800},
		},
	}
}

func TestResultsWeightedMeans(t *testing.T) {
	r := sampleResults()
	// Delivery-weighted: (20*100 + 10*300) / 400 = 12.5.
	if got := r.MeanLatency(); got != 12.5 {
		t.Fatalf("MeanLatency = %v, want 12.5", got)
	}
	if got := r.MeanHops(); got != 2.5 {
		t.Fatalf("MeanHops = %v, want 2.5", got)
	}
	if got := r.MeanExecTime(); got != 850 {
		t.Fatalf("MeanExecTime = %v, want 850", got)
	}
	// An unfinished app poisons exec time.
	r.Apps[0].ExecTime = -1
	if got := r.MeanExecTime(); got != -1 {
		t.Fatalf("unfinished MeanExecTime = %v, want -1", got)
	}
	var empty Results
	if empty.MeanLatency() != 0 || empty.MeanHops() != 0 || empty.MeanExecTime() != -1 {
		t.Fatal("empty results not handled")
	}
}

func TestResultsStringAndJSON(t *testing.T) {
	r := sampleResults()
	s := r.String()
	for _, want := range []string{"adapt-noc", "bfs", "ferret", "exec=900"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String missing %q:\n%s", want, s)
		}
	}
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Results
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Apps[1].DeliveredPackets != 300 {
		t.Fatal("JSON round trip lost data")
	}
}
