package adaptnoc

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func sampleConfig() Config {
	return Config{
		Design:      DesignAdaptNoC,
		Apps:        DefaultMixed(0),
		Seed:        2021,
		EpochCycles: 10000,
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := sampleConfig()
	cfg.Apps[0].ShareMCs = 2
	cfg.Apps[1].Static = TorusTree
	cfg.RL.Train = true
	cfg.RL.Gamma = 0.8

	blob, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseConfig(blob)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if !reflect.DeepEqual(cfg, back) {
		t.Fatalf("round trip changed config:\n got %+v\nwant %+v", back, cfg)
	}
	// Topologies and designs travel as names, not ints.
	s := string(blob)
	for _, want := range []string{`"design":"adapt-noc"`, `"static":"torus+tree"`, `"profile":"bfs"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("marshalled config missing %s:\n%s", want, s)
		}
	}
}

func TestResultsJSONRoundTrip(t *testing.T) {
	r := sampleResults()
	r.Apps[0].FinalKind = Torus
	r.Apps[0].Selections[int(Torus)] = 0.75
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseResults(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, back) {
		t.Fatalf("round trip changed results:\n got %+v\nwant %+v", back, r)
	}
}

// TestConfigValidateFieldNames proves every rejection names the offending
// field, so API clients can see what to fix.
func TestConfigValidateFieldNames(t *testing.T) {
	cases := []struct {
		name  string
		mod   func(*Config)
		field string
	}{
		{"bad design", func(c *Config) { c.Design = NumDesigns }, "design"},
		{"no apps", func(c *Config) { c.Apps = nil }, "apps"},
		{"unknown profile", func(c *Config) { c.Apps[0].Profile = "doom" }, "apps[0].profile"},
		{"empty region", func(c *Config) { c.Apps[1].Region.W = 0 }, "apps[1].region"},
		{"off-grid region", func(c *Config) { c.Apps[2].Region.X = 7 }, "apps[2].region"},
		{"MC outside region", func(c *Config) { c.Apps[1].MCTiles = []NodeID{0} }, "apps[1].mcTiles[0]"},
		{"overlap", func(c *Config) {
			c.Apps[2].Region = c.Apps[1].Region
			c.Apps[2].MCTiles = append([]NodeID(nil), c.Apps[1].MCTiles...)
		}, "apps[2].region"},
		{"negative budget", func(c *Config) { c.Apps[0].InstrBudget = -1 }, "apps[0].instrBudget"},
		{"negative epoch", func(c *Config) { c.EpochCycles = -5 }, "epochCycles"},
		{"epsilon range", func(c *Config) { c.RL.Epsilon, c.RL.EpsilonSet = 1.5, true }, "rl.epsilon"},
		{"gamma range", func(c *Config) { c.RL.Gamma = -0.1 }, "rl.gamma"},
	}
	for _, tc := range cases {
		cfg := sampleConfig()
		tc.mod(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Fatalf("%s: Validate accepted invalid config", tc.name)
		}
		fe, ok := err.(*FieldError)
		if !ok {
			t.Fatalf("%s: error %T is not a *FieldError: %v", tc.name, err, err)
		}
		if fe.Field != tc.field {
			t.Fatalf("%s: error names field %q, want %q (%v)", tc.name, fe.Field, tc.field, err)
		}
	}
	if err := sampleConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestParseConfigStrict(t *testing.T) {
	if _, err := ParseConfig([]byte(`{"design":"baseline","apps":[{"profile":"bfs","region":{"x":0,"y":0,"w":4,"h":4}}],"turbo":true}`)); err == nil || !strings.Contains(err.Error(), "turbo") {
		t.Fatalf("unknown field not rejected by name: %v", err)
	}
	if _, err := ParseConfig([]byte(`{"design":"nope","apps":[]}`)); err == nil {
		t.Fatal("unknown design accepted")
	}
	if _, err := ParseConfig([]byte(`{"design":"baseline","apps":[{"profile":"bfs","region":{"x":0,"y":0,"w":4,"h":4}}]} {}`)); err == nil {
		t.Fatal("trailing data accepted")
	}
	cfg, err := ParseConfig([]byte(`{"design":"adapt-norl","seed":7,"apps":[{"profile":"bfs","region":{"x":0,"y":0,"w":4,"h":4},"static":"torus"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Design != DesignAdaptNoRL || cfg.Seed != 7 || cfg.Apps[0].Static != Torus {
		t.Fatalf("parsed config wrong: %+v", cfg)
	}
}

// TestCanonicalEquivalence proves NewSim(cfg) and NewSim(cfg.Canonical())
// simulate identically, and that Canonical is idempotent.
func TestCanonicalEquivalence(t *testing.T) {
	cfg := sampleConfig()
	canon := cfg.Canonical()
	if !reflect.DeepEqual(canon, canon.Canonical()) {
		t.Fatal("Canonical is not idempotent")
	}
	a, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSim(canon)
	if err != nil {
		t.Fatal(err)
	}
	a.Run(20000)
	b.Run(20000)
	ra, rb := a.Results().String(), b.Results().String()
	if ra != rb {
		t.Fatalf("canonical config simulates differently:\n%s\nvs\n%s", ra, rb)
	}
}

// TestRunContext proves the context-aware runners complete identically to
// their plain counterparts and stop early on cancellation.
func TestRunContext(t *testing.T) {
	mk := func() *Sim {
		s, err := NewSim(Config{Design: DesignBaseline, Apps: DefaultMixed(0), Seed: 1, EpochCycles: 10000})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	a.Run(20000)
	if err := b.RunContext(context.Background(), 20000); err != nil {
		t.Fatal(err)
	}
	if ra, rb := a.Results().String(), b.Results().String(); ra != rb {
		t.Fatalf("RunContext diverged from Run:\n%s\nvs\n%s", ra, rb)
	}

	c := mk()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.RunContext(ctx, 1_000_000); err == nil {
		t.Fatal("cancelled RunContext returned nil")
	}
	if now := c.Kernel.Now(); now != 0 {
		t.Fatalf("cancelled RunContext advanced the clock to %d", now)
	}
	d, err := NewSim(Config{Design: DesignBaseline, Apps: DefaultMixed(100000), Seed: 1, EpochCycles: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunUntilFinishedContext(ctx, 1_000_000); err == nil {
		t.Fatal("cancelled RunUntilFinishedContext returned nil")
	}
	if now := d.Kernel.Now(); now != 0 {
		t.Fatalf("cancelled RunUntilFinishedContext advanced the clock to %d", now)
	}
}
