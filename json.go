package adaptnoc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"adaptnoc/internal/fault"
	"adaptnoc/internal/noc"
	"adaptnoc/internal/topology"
	"adaptnoc/internal/traffic"
)

// This file is the package's wire format: Config and Results marshal to
// JSON (Design and Kind as their flag-style names, fields in lowerCamel),
// ParseConfig/ParseResults decode strictly, and Validate reports the first
// invalid field by its JSON path. The serving layer (internal/serve)
// builds its request/response bodies and its content-addressed cache keys
// from exactly this encoding.

// MarshalText implements encoding.TextMarshaler; designs travel as their
// flag-style names ("baseline", "adapt-noc").
func (d Design) MarshalText() ([]byte, error) {
	if d < DesignBaseline || d >= NumDesigns {
		return nil, fmt.Errorf("adaptnoc: cannot marshal invalid design %d", int(d))
	}
	return []byte(d.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler. An empty string
// decodes to DesignBaseline (the zero value), so omitted JSON fields keep
// their Go-zero-value meaning.
func (d *Design) UnmarshalText(text []byte) error {
	if len(text) == 0 {
		*d = DesignBaseline
		return nil
	}
	got, err := ParseDesign(string(text))
	if err != nil {
		return err
	}
	*d = got
	return nil
}

// FieldError reports an invalid configuration field by its JSON path
// (e.g. "apps[1].region" or "rl.gamma"). Hint, when set, is a remediation
// suggestion — what to change, not just what is wrong — so a daemon can
// surface an actionable message to a client that never sees this code.
type FieldError struct {
	Field string
	Msg   string
	Hint  string
}

// Error implements error.
func (e *FieldError) Error() string {
	if e.Hint != "" {
		return fmt.Sprintf("adaptnoc: config field %s: %s (%s)", e.Field, e.Msg, e.Hint)
	}
	return fmt.Sprintf("adaptnoc: config field %s: %s", e.Field, e.Msg)
}

func fieldErrf(field, format string, args ...any) *FieldError {
	return &FieldError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// hint attaches a remediation suggestion and returns the error for
// chaining at the return site.
func (e *FieldError) hint(format string, args ...any) *FieldError {
	e.Hint = fmt.Sprintf(format, args...)
	return e
}

// Validate checks the configuration without building a simulation and
// returns a *FieldError naming the first offending field, or nil. It is
// stricter than NewSim: it also rejects regions that fall off the chip
// grid and out-of-range hyper-parameters, so a daemon can refuse a job
// before committing a worker to it.
func (c Config) Validate() error {
	if c.Design < DesignBaseline || c.Design >= NumDesigns {
		return fieldErrf("design", "unknown design %d", int(c.Design)).
			hint("choose one of baseline, oscar, shortcut, ftby, ftby-pg, adapt-norl, adapt-noc")
	}
	if len(c.Apps) == 0 {
		return fieldErrf("apps", "at least one application required").
			hint("add an app entry with a profile and a region, e.g. {\"profile\": \"blackscholes\", \"region\": {\"w\": 4, \"h\": 4}}")
	}
	if c.Width < 0 || c.Height < 0 || c.Width == 1 || c.Height == 1 ||
		c.Width > maxGridDim || c.Height > maxGridDim {
		return fieldErrf("width", "grid %dx%d unsupported", c.Width, c.Height).
			hint("use 0 for the default 8x8 chip or dimensions in [2,%d]", maxGridDim)
	}
	ncfg := netConfig(c.Design, c.Width, c.Height)
	for i, a := range c.Apps {
		f := func(sub string) string { return fmt.Sprintf("apps[%d].%s", i, sub) }
		hasTrace := a.Trace != "" || len(a.TraceData) > 0
		switch {
		case hasTrace && a.Profile != "":
			return fieldErrf(f("profile"), "both profile %q and a trace set", a.Profile).
				hint("a spec is either synthetic (profile) or replayed (trace/traceData)")
		case !hasTrace && a.Profile == "":
			return fieldErrf(f("profile"), "missing profile").
				hint("pick a benchmark name from adaptnoc-sim -profiles, or replay a trace")
		case !hasTrace:
			if err := CheckProfile(a.Profile); err != nil {
				return fieldErrf(f("profile"), "unknown profile %q", a.Profile).
					hint("pick a benchmark name from adaptnoc-sim -profiles")
			}
		}
		r := a.Region
		if r.W <= 0 || r.H <= 0 {
			return fieldErrf(f("region"), "empty region %v", r).
				hint("give the region positive w and h tile counts")
		}
		if r.X < 0 || r.Y < 0 || r.X+r.W > ncfg.Width || r.Y+r.H > ncfg.Height {
			return fieldErrf(f("region"), "region %v outside the %dx%d grid", r, ncfg.Width, ncfg.Height).
				hint("shrink or move the region, or grow the chip with width/height")
		}
		for j, mc := range a.MCTiles {
			if mc < 0 || int(mc) >= ncfg.NumNodes() {
				return fieldErrf(fmt.Sprintf("apps[%d].mcTiles[%d]", i, j), "tile %d outside the chip", mc).
					hint("tile IDs are row-major in [0,%d)", ncfg.NumNodes())
			}
			if !r.Contains(noc.CoordOf(mc, ncfg.Width)) {
				return fieldErrf(fmt.Sprintf("apps[%d].mcTiles[%d]", i, j), "MC tile %d outside region %v", mc, r).
					hint("every MC must sit on one of its own app's tiles")
			}
		}
		if hasTrace {
			if a.InstrBudget != 0 {
				return fieldErrf(f("instrBudget"), "trace replay takes no instruction budget").
					hint("drop instrBudget; the trace itself bounds the run")
			}
			if a.TraceApp < 0 {
				return fieldErrf(f("traceApp"), "negative trace app index %d", a.TraceApp).
					hint("recorded apps are indexed 0..n-1 in recording order")
			}
			// The path form defers decoding to NewSim (only the submitting
			// client can read the file); inline data validates here so a
			// daemon can refuse a bad blob before committing a worker.
			if len(a.TraceData) > 0 {
				tr, err := traffic.DecodeTrace(a.TraceData)
				if err != nil {
					return fieldErrf(f("traceData"), "%v", err).
						hint("re-record with adaptnoc-sim -record-trace; blobs are not hand-editable")
				}
				if a.TraceApp >= len(tr.Apps) {
					return fieldErrf(f("traceApp"), "trace has %d recorded apps, index %d", len(tr.Apps), a.TraceApp).
						hint("recorded apps are indexed 0..n-1 in recording order")
				}
				ta := &tr.Apps[a.TraceApp]
				if ta.W != r.W || ta.H != r.H {
					return fieldErrf(f("region"), "region %dx%d does not match the recorded %dx%d", r.W, r.H, ta.W, ta.H).
						hint("a replay may move the recorded region but not resize it")
				}
				if err := ta.FitsGrid(ncfg.Width, ncfg.Height); err != nil {
					return fieldErrf(f("traceData"), "%v", err).
						hint("replay on a chip at least as large as the recording")
				}
			}
		}
		if a.InstrBudget < 0 {
			return fieldErrf(f("instrBudget"), "negative budget %d", a.InstrBudget).
				hint("use 0 to run until the cycle limit")
		}
		if a.ShareMCs < 0 {
			return fieldErrf(f("shareMCs"), "negative share count %d", a.ShareMCs).
				hint("use 0 to disable MC sharing")
		}
		if a.Static < Mesh || a.Static >= topology.NumSelectable {
			return fieldErrf(f("static"), "invalid topology %d", int(a.Static)).
				hint("choose mesh, cmesh, torus, or tree")
		}
		for j := 0; j < i; j++ {
			if a.Region.Overlaps(c.Apps[j].Region) {
				return fieldErrf(f("region"), "region %v overlaps apps[%d] region %v", a.Region, j, c.Apps[j].Region).
					hint("applications need disjoint tile rectangles")
			}
		}
	}
	if c.EpochCycles < 0 {
		return fieldErrf("epochCycles", "negative epoch %d", c.EpochCycles).
			hint("use 0 for the paper's 50000-cycle epoch")
	}
	if c.VCsPerVNet < 0 {
		return fieldErrf("vcsPerVNet", "negative VC count %d", c.VCsPerVNet).
			hint("use 0 for the design's default VC count")
	}
	if c.SetupCycles < 0 {
		return fieldErrf("setupCycles", "negative setup time %d", c.SetupCycles).
			hint("use 0 for the paper's 14-cycle setup")
	}
	if c.ShortcutLinksPerApp < 0 {
		return fieldErrf("shortcutLinksPerApp", "negative link budget %d", c.ShortcutLinksPerApp).
			hint("use 0 for the default of 2 links per app")
	}
	if c.PGWakeCycles < 0 || c.PGIdleCycles < 0 {
		return fieldErrf("pgWakeCycles", "negative power-gating timing %d/%d", c.PGWakeCycles, c.PGIdleCycles).
			hint("use 0 for the defaults (16-cycle wake, 10-cycle idle)")
	}
	if c.RL.EpsilonSet && (c.RL.Epsilon < 0 || c.RL.Epsilon > 1) {
		return fieldErrf("rl.epsilon", "exploration rate %v outside [0,1]", c.RL.Epsilon).
			hint("omit epsilon/epsilonSet for the paper's anneal schedule")
	}
	if c.RL.Gamma < 0 || c.RL.Gamma > 1 {
		return fieldErrf("rl.gamma", "discount factor %v outside [0,1]", c.RL.Gamma).
			hint("omit gamma for the paper's default")
	}
	if d := c.RL.DQN; d.ReplaySize < 0 || d.Minibatch < 0 || d.TargetSync < 0 {
		return fieldErrf("rl.dqn", "negative replay/minibatch/targetSync size").
			hint("leave the dqn block zero for the paper's hyper-parameters")
	}
	// Upper bounds: a config travels as JSON (serving API, checkpoints), so
	// a few bytes must not be able to demand gigabytes of agent state.
	if d := c.RL.DQN; d.ReplaySize > 1<<20 || d.Minibatch > 1<<16 {
		return fieldErrf("rl.dqn", "implausibly large replay/minibatch size").
			hint("replaySize must fit in 2^20 and minibatch in 2^16")
	}
	for i, h := range c.RL.DQN.Hidden {
		if h < 1 || h > 1<<12 {
			return fieldErrf(fmt.Sprintf("rl.dqn.hidden[%d]", i), "layer size %d outside [1,4096]", h)
		}
	}
	if len(c.Faults) > fault.MaxEvents {
		return fieldErrf("faults", "schedule has %d events, limit %d", len(c.Faults), fault.MaxEvents).
			hint("split enormous campaigns across runs")
	}
	for i := range c.Faults {
		if ce := c.Faults[i].Check(ncfg.NumNodes()); ce != nil {
			e := fieldErrf(fmt.Sprintf("faults[%d].%s", i, ce.Field), "%s", ce.Msg)
			if ce.Hint != "" {
				e = e.hint("%s", ce.Hint)
			}
			return e
		}
	}
	return nil
}

// decodeStrict decodes one JSON value, rejecting unknown fields (typoed
// field names should fail loudly, not silently fall back to defaults) and
// trailing garbage.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}

// ParseConfig decodes and validates a JSON simulation configuration.
// Unknown fields are rejected; validation errors name the offending field.
func ParseConfig(data []byte) (Config, error) {
	var cfg Config
	if err := decodeStrict(data, &cfg); err != nil {
		return Config{}, fmt.Errorf("adaptnoc: parsing config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// ParseResults decodes a JSON Results document (the inverse of
// json.Marshal on Results — what adaptnoc-sim -json and the serving API
// emit).
func ParseResults(data []byte) (Results, error) {
	var res Results
	if err := decodeStrict(data, &res); err != nil {
		return Results{}, fmt.Errorf("adaptnoc: parsing results: %w", err)
	}
	return res, nil
}
