module adaptnoc

go 1.22
