package adaptnoc_test

// One benchmark per table and figure of the paper's evaluation
// (Section V), plus microbenchmarks of the substrate. Each figure bench
// regenerates its experiment at reduced (quick) fidelity and reports the
// headline comparison as custom metrics, so
//
//	go test -bench=Fig -benchtime=1x
//
// reproduces the whole evaluation in a few minutes; use
// cmd/adaptnoc-experiments (without -quick) for full-fidelity tables.

import (
	"context"
	"sync"
	"testing"

	"adaptnoc"
	"adaptnoc/internal/exp"
	"adaptnoc/internal/noc"
	"adaptnoc/internal/rl"
	"adaptnoc/internal/runner"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/topology"
)

// quickOpts returns the shared reduced-fidelity settings.
func quickOpts() exp.Options {
	return exp.QuickOptions()
}

// mixedOnce caches the mixed-workload runs shared by Figs. 7 and 10-13.
var (
	mixedOnce sync.Once
	mixedRes  exp.MixedResult
	mixedErr  error
)

func mixed(b *testing.B) exp.MixedResult {
	b.Helper()
	mixedOnce.Do(func() {
		mixedRes, mixedErr = exp.RunMixed(quickOpts(), "bfs", "canneal", "ferret")
	})
	if mixedErr != nil {
		b.Fatal(mixedErr)
	}
	return mixedRes
}

// reportNormalized emits metric = value(design)/value(baseline).
func reportNormalized(b *testing.B, name string, vals []float64, idx int) {
	if vals[0] != 0 {
		b.ReportMetric(vals[idx]/vals[0], name)
	}
}

const adaptIdx = 6 // adapt-noc position in exp.AllDesigns

func BenchmarkFig07PacketLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := mixed(b)
		reportNormalized(b, "adapt/base_latency", m.Latency, adaptIdx)
	}
}

func BenchmarkFig08CPUHopCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig8(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(t.Rows)), "apps")
	}
}

func BenchmarkFig09GPUHopQueue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig9(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(t.Rows)), "rows")
	}
}

func BenchmarkFig10ExecTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := mixed(b)
		reportNormalized(b, "adapt/base_exec", m.ExecTime, adaptIdx)
	}
}

func BenchmarkFig11Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := mixed(b)
		reportNormalized(b, "adapt/base_energy", m.TotalEnergy, adaptIdx)
	}
}

func BenchmarkFig12DynamicEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := mixed(b)
		reportNormalized(b, "adapt/base_dynamic", m.DynamicEnergy, adaptIdx)
	}
}

func BenchmarkFig13StaticEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := mixed(b)
		reportNormalized(b, "adapt/base_static", m.StaticEnergy, adaptIdx)
	}
}

func BenchmarkFig14CPUSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig14(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(t.Rows)-1), "apps")
	}
}

func BenchmarkFig15GPUSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig15(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(t.Rows)-1), "apps")
	}
}

func BenchmarkFig16SubNoCSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig16(quickOpts(), true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(t.Rows)), "sizes")
	}
}

func BenchmarkFig17EpochSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig17(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig18Discount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig18(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig19Exploration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig19(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTabAreaOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exp.TabArea()
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTabWiring(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exp.TabWiring()
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTabTiming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exp.TabTiming()
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkExtraLatencyThroughput regenerates the latency-throughput
// characterization (not a paper figure; standard NoC methodology).
func BenchmarkExtraLatencyThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.CharacterizeTopologies(15000, 5, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate microbenchmarks ---

// BenchmarkMeshCycle measures one simulated cycle of a loaded 8x8 mesh
// (cycles/sec throughput of the core model).
func BenchmarkMeshCycle(b *testing.B) {
	s, err := adaptnoc.NewSim(adaptnoc.Config{
		Design: adaptnoc.DesignBaseline,
		Apps:   adaptnoc.DefaultMixed(0),
		Seed:   1,
	})
	if err != nil {
		b.Fatal(err)
	}
	s.Run(5000) // warm into steady state
	b.ResetTimer()
	s.Run(adaptnoc.Cycle(b.N))
}

// BenchmarkNetworkTickIdle measures one simulated cycle of a mostly-idle
// 8x8 chip — the hot path the active-router/active-channel work lists
// target. Reports the fraction of router/channel ticks skipped.
func BenchmarkNetworkTickIdle(b *testing.B) {
	s, err := adaptnoc.NewSim(adaptnoc.Config{
		Design: adaptnoc.DesignBaseline,
		Apps: []adaptnoc.AppSpec{{
			Profile: "blackscholes", // near-idle traffic
			Region:  adaptnoc.Region{W: 4, H: 4},
		}},
		Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	s.Run(5000) // warm past startup transients
	b.ResetTimer()
	s.Run(adaptnoc.Cycle(b.N))
	b.StopTimer()
	st := s.TickStats()
	b.ReportMetric(st.RouterSkipRate(), "router_skip_rate")
	b.ReportMetric(st.ChannelSkipRate(), "chan_skip_rate")
}

// BenchmarkRunnerFanout measures fanning 8 independent quick simulations
// over the runner pool (one per CPU) — the experiment drivers' fan-out
// shape.
func BenchmarkRunnerFanout(b *testing.B) {
	seeds := runner.Seeds(2021, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := runner.Map(context.Background(), 0, seeds,
			func(_ context.Context, seed uint64) (float64, error) {
				s, err := adaptnoc.NewSim(adaptnoc.Config{
					Design: adaptnoc.DesignBaseline,
					Apps: []adaptnoc.AppSpec{{
						Profile: "bfs",
						Region:  adaptnoc.Region{W: 4, H: 4},
					}},
					Seed: seed,
				})
				if err != nil {
					return 0, err
				}
				s.Run(4000)
				return s.Results().MeanLatency(), nil
			})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDQNInference measures one forward pass of the 12-15-15-4
// policy network (paper: 486 ns in minimal hardware).
func BenchmarkDQNInference(b *testing.B) {
	rng := sim.NewRNG(1)
	n := rl.NewNet([]int{rl.StateSize, 15, 15, rl.NumActions}, rng)
	x := make([]float64, rl.StateSize)
	for i := range x {
		x[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.Forward(x)
	}
}

// BenchmarkReconfiguration measures a full cmesh->torus subNoC switch
// (notification wave + drain + rebuild + Ts) on an otherwise idle region.
func BenchmarkReconfiguration(b *testing.B) {
	s, err := adaptnoc.NewSim(adaptnoc.Config{
		Design: adaptnoc.DesignAdaptNoRL,
		Apps: []adaptnoc.AppSpec{{
			Profile: "blackscholes",
			Region:  adaptnoc.Region{W: 4, H: 4},
			Static:  adaptnoc.CMesh,
		}},
		Seed:        1,
		EpochCycles: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	s.Run(2000)
	kinds := []adaptnoc.Kind{adaptnoc.Torus, adaptnoc.CMesh}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := false
		if err := s.Reconfigure(0, kinds[i%2], func() { done = true }); err != nil {
			b.Fatal(err)
		}
		for !done {
			s.Run(64)
		}
	}
}

// BenchmarkRoutingTableLookup measures the RC-stage table access.
func BenchmarkRoutingTableLookup(b *testing.B) {
	t := noc.NewRoutingTable(64)
	for d := noc.NodeID(0); d < 64; d++ {
		t.Set(d, noc.PortEast, noc.ClassKeep)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := t.Lookup(noc.NodeID(i & 63)); !ok {
			b.Fatal("missing route")
		}
	}
}

// BenchmarkTreeTableBuild measures constructing the tree topology's
// routing state for a 4x8 region (the most complex builder).
func BenchmarkTreeTableBuild(b *testing.B) {
	cfg := noc.DefaultConfig()
	for i := 0; i < b.N; i++ {
		net := noc.NewNetwork(cfg)
		topology.ConfigureTreeRegion(net, topology.Region{W: 4, H: 8}, 0, nil)
	}
}

// BenchmarkExtraAblations regenerates the design-choice ablation table.
func BenchmarkExtraAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Ablations(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTabSwitching regenerates the reconfiguration-cost validation.
func BenchmarkTabSwitching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.TabSwitching(0); err != nil {
			b.Fatal(err)
		}
	}
}

// Trace record/replay microbenchmarks. BenchmarkTraceLiveRun is the
// "before" column of BENCH_trace.json (the synthetic mixed workload the
// recorder captures) and BenchmarkTraceReplay the "after" column (the
// same traffic re-driven from the recorded dependency graph), so the
// recorded JSON shows what replay costs relative to the live run.
const traceBenchCycles = 4000

func traceBenchConfig() adaptnoc.Config {
	return adaptnoc.Config{
		Design:      adaptnoc.DesignBaseline,
		Apps:        adaptnoc.DefaultMixed(0),
		Seed:        2021,
		EpochCycles: 4000,
	}
}

var (
	traceBlobOnce sync.Once
	traceBlobData []byte
	traceBlobErr  error
)

// traceBenchBlob records the live run once and caches the blob.
func traceBenchBlob(b *testing.B) []byte {
	b.Helper()
	traceBlobOnce.Do(func() {
		s, err := adaptnoc.NewSim(traceBenchConfig())
		if err != nil {
			traceBlobErr = err
			return
		}
		if traceBlobErr = s.RecordTrace(); traceBlobErr != nil {
			return
		}
		s.Run(traceBenchCycles)
		tr, err := s.FinishTrace()
		if err != nil {
			traceBlobErr = err
			return
		}
		traceBlobData, traceBlobErr = adaptnoc.EncodeTrace(tr)
	})
	if traceBlobErr != nil {
		b.Fatal(traceBlobErr)
	}
	return traceBlobData
}

func BenchmarkTraceLiveRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := adaptnoc.NewSim(traceBenchConfig())
		if err != nil {
			b.Fatal(err)
		}
		s.Run(traceBenchCycles)
	}
}

func BenchmarkTraceReplay(b *testing.B) {
	blob := traceBenchBlob(b)
	apps, w, h, err := adaptnoc.TraceWorkload(blob)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := adaptnoc.NewSim(adaptnoc.Config{
			Design: adaptnoc.DesignBaseline, Width: w, Height: h,
			Apps: apps, Seed: 2021, EpochCycles: 4000,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !s.RunUntilFinished(traceBenchCycles * 10) {
			b.Fatal("replay did not drain")
		}
	}
}
