// Package adaptnoc is a from-scratch implementation of Adapt-NoC (Zheng,
// Wang, Louri — HPCA 2021): a reconfigurable network-on-chip fabric that
// partitions a manycore chip into disjoint subNoCs, gives each concurrently
// running application its own topology (mesh, cmesh, torus, or tree), and
// selects that topology at runtime with a per-subNoC deep-Q-network
// control policy.
//
// The package is a façade over the internal packages:
//
//   - internal/sim — deterministic cycle-driven kernel
//   - internal/noc — cycle-accurate VC routers, links, network interfaces
//   - internal/topology — topology builders and routing tables
//   - internal/fabric — subNoC allocation, reconfiguration, MC sharing
//   - internal/rl — DQN / Q-learning control policies
//   - internal/power — DSENT-style energy accounting
//   - internal/system — closed-loop CPU/GPU core and memory model
//   - internal/core — the per-subNoC epoch controller
//
// The quickest way in is NewSim with a Design and a set of AppSpecs; see
// examples/quickstart.
package adaptnoc

import (
	"encoding/json"
	"fmt"

	"adaptnoc/internal/core"
	"adaptnoc/internal/fabric"
	"adaptnoc/internal/fault"
	"adaptnoc/internal/noc"
	"adaptnoc/internal/power"
	"adaptnoc/internal/rl"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/system"
	"adaptnoc/internal/topology"
	"adaptnoc/internal/traffic"
)

// Re-exported building blocks.
type (
	// PolicyNet is a DQN prediction network (offline-trained weights).
	PolicyNet = rl.Net
	// Region is a rectangular set of tiles.
	Region = topology.Region
	// Kind is a subNoC topology (Mesh, CMesh, Torus, Tree).
	Kind = topology.Kind
	// NodeID identifies a tile.
	NodeID = noc.NodeID
	// Cycle is a simulation timestamp.
	Cycle = sim.Cycle
	// EnergyBreakdown splits energy by component.
	EnergyBreakdown = power.Breakdown
	// TickStats counts executed versus skipped component ticks (the
	// network's idle-skip work lists).
	TickStats = noc.TickStats
)

// Topology kinds. TorusTree is the Section II-B.4 extension (torus
// request network + tree reply network); it is outside the RL action
// space but available to Static configuration and manual Reconfigure.
const (
	Mesh      = topology.Mesh
	CMesh     = topology.CMesh
	Torus     = topology.Torus
	Tree      = topology.Tree
	TorusTree = topology.TorusTree
)

// Design selects one of the evaluated network designs (Section IV-A).
type Design int

// The seven design points of the paper's evaluation.
const (
	DesignBaseline  Design = iota // 8x8 mesh
	DesignOSCAR                   // mesh + dynamic VC allocation
	DesignShortcut                // mesh + long-range express links
	DesignFTBY                    // flattened butterfly
	DesignFTBYPG                  // flattened butterfly + runtime power gating
	DesignAdaptNoRL               // Adapt-NoC fabric, statically chosen topology
	DesignAdaptNoC                // Adapt-NoC fabric + RL policy
	NumDesigns
)

// String implements fmt.Stringer.
func (d Design) String() string {
	switch d {
	case DesignBaseline:
		return "baseline"
	case DesignOSCAR:
		return "oscar"
	case DesignShortcut:
		return "shortcut"
	case DesignFTBY:
		return "ftby"
	case DesignFTBYPG:
		return "ftby-pg"
	case DesignAdaptNoRL:
		return "adapt-norl"
	case DesignAdaptNoC:
		return "adapt-noc"
	default:
		return fmt.Sprintf("design(%d)", int(d))
	}
}

// AppSpec describes one application to map onto the chip. A spec is
// either synthetic — Profile names a phase model — or replayed: exactly
// one of Profile and Trace/TraceData must be set.
type AppSpec struct {
	// Profile names a benchmark from internal/traffic (Table II).
	Profile string `json:"profile,omitempty"`
	// Trace names an ADNOCTRC dependency-trace file (adaptnoc-sim
	// -record-trace) to replay instead of a synthetic profile. It is a
	// client-side convenience: NewSim inlines the file's bytes into
	// TraceData, and the serving API rejects the path form — a server
	// never reads its own filesystem on a client's behalf.
	Trace string `json:"trace,omitempty"`
	// TraceData is the trace blob itself (base64 in JSON). It lives inside
	// the config, so it travels through the serving API, enters the
	// content-addressed cache key, and keeps checkpoints self-contained.
	TraceData []byte `json:"traceData,omitempty"`
	// TraceApp selects which of the trace's recorded applications this
	// spec replays (a recording of an n-app chip holds n streams).
	TraceApp int `json:"traceApp,omitempty"`
	// Region is the tile rectangle the application occupies.
	Region Region `json:"region"`
	// MCTiles host the region's memory controllers — the paper provisions
	// one per 2x4 sub-block (Section II-C.2). Empty defaults to one MC at
	// the region's origin tile. The first MC is primary (tree root).
	MCTiles []NodeID `json:"mcTiles,omitempty"`
	// InstrBudget is instructions per core; 0 runs until the simulation
	// cycle limit (latency experiments).
	InstrBudget int64 `json:"instrBudget,omitempty"`
	// Static pins the subNoC topology under DesignAdaptNoRL (and is the
	// initial topology under DesignAdaptNoC).
	Static Kind `json:"static,omitempty"`
	// ShareMCs asks the fabric for access to that many foreign MCs
	// (Adapt designs only).
	ShareMCs int `json:"shareMCs,omitempty"`
}

// RLOptions configure the DesignAdaptNoC policy.
type RLOptions struct {
	// Pretrained supplies offline-trained weights (Section III-E); nil
	// starts from fresh weights.
	Pretrained *rl.Net `json:"pretrained,omitempty"`
	// SharedAgent makes every subNoC controller use this one agent
	// instance — the offline training harness accumulates experience
	// across episodes through it. Overrides Pretrained. It is an in-process
	// handle and deliberately has no JSON representation: configurations
	// that carry one cannot travel over the serving API or be hashed.
	SharedAgent *rl.DQN `json:"-"`
	// Train enables online learning (used by the offline training harness).
	Train bool `json:"train,omitempty"`
	// DQN overrides hyper-parameters; zero value uses the paper's.
	DQN rl.DQNConfig `json:"dqn"`
	// Epsilon overrides the exploration rate when EpsilonSet (Fig. 19
	// sweep; zero is a valid rate).
	Epsilon    float64 `json:"epsilon,omitempty"`
	EpsilonSet bool    `json:"epsilonSet,omitempty"`
	// Gamma overrides the discount factor when > 0 (Fig. 18 sweep).
	Gamma float64 `json:"gamma,omitempty"`
}

// maxGridDim bounds Config.Width/Height. Past 64×64 a single chip
// outgrows both the paper's platform and what the sharded tick has been
// validated on, and a config travels as JSON, so a few bytes must not be
// able to demand an enormous simulation.
const maxGridDim = 64

// Config assembles a simulation.
type Config struct {
	Design Design    `json:"design"`
	Apps   []AppSpec `json:"apps"`

	// Width and Height size the chip grid in tiles. Zero means the
	// paper's 8×8 evaluation platform; larger grids (up to maxGridDim per
	// side) serve the scaling experiments that the sharded tick targets.
	Width  int `json:"width,omitempty"`
	Height int `json:"height,omitempty"`

	// Seed drives every random stream; equal seeds give identical runs.
	Seed uint64 `json:"seed"`
	// EpochCycles is the control epoch (paper: 50000).
	EpochCycles int `json:"epochCycles,omitempty"`
	// Memory overrides the memory-hierarchy timing; zero value uses
	// defaults.
	Memory system.Params `json:"memory"`
	// Power overrides the energy model; zero value uses defaults.
	Power power.Params `json:"power"`
	// RL configures the DesignAdaptNoC policy.
	RL RLOptions `json:"rl"`
	// ShortcutLinksPerApp is the express-link budget per application
	// under DesignShortcut (default 2).
	ShortcutLinksPerApp int `json:"shortcutLinksPerApp,omitempty"`
	// PGWakeCycles / PGIdleCycles configure DesignFTBYPG power gating.
	PGWakeCycles int `json:"pgWakeCycles,omitempty"`
	PGIdleCycles int `json:"pgIdleCycles,omitempty"`

	// Ablation knobs (default off = the paper's design).
	//
	// NoInjectionBypass removes the Adapt-NoC bypass at the injection
	// port's VCs (Section II-A.1).
	NoInjectionBypass bool `json:"noInjectionBypass,omitempty"`
	// VCsPerVNet overrides the per-design virtual-channel count when > 0.
	VCsPerVNet int `json:"vcsPerVNet,omitempty"`
	// SetupCycles overrides the reconfiguration table-setup time Ts when
	// > 0 (paper: 14).
	SetupCycles int `json:"setupCycles,omitempty"`
	// UseQTable replaces the DQN with the tabular Q-learning agent the
	// paper argues against (Section III-A).
	UseQTable bool `json:"useQTable,omitempty"`

	// Faults schedules deterministic link/router/VC failures injected
	// mid-run (see internal/fault). Order is significant: checkpoint blobs
	// reference events by index, so the schedule is never re-sorted.
	Faults []fault.Event `json:"faults,omitempty"`
}

// Sim is a fully assembled simulation of one design point.
type Sim struct {
	Cfg     Config
	Kernel  *sim.Kernel
	Net     *noc.Network
	Fabric  *fabric.Fabric // nil for non-Adapt designs
	Machine *system.Machine
	Meter   *power.Meter
	Ctl     *core.Controller      // nil for non-Adapt designs
	OSCAR   *core.OSCARController // nil unless DesignOSCAR
	apps    []*system.App
	binds   []*core.Binding
	specs   []AppSpec
	subnocs []*fabric.SubNoC
	faults  *fault.Engine     // nil unless Cfg.Faults is non-empty
	rec     *traffic.Recorder // nil unless RecordTrace armed it

	// delta caches the sections of the most recent Checkpoint or
	// CheckpointDelta so the next delta can skip re-encoding quiescent
	// layers (see checkpoint.go). Nil until the first checkpoint.
	delta *deltaCache
}

// netConfig derives the per-design microarchitecture (Section IV-A's
// area-equalized VC counts and hop latencies) on a w×h grid (0 defaults
// to the paper's 8×8 platform).
func netConfig(d Design, w, h int) noc.Config {
	cfg := noc.DefaultConfig()
	if w > 0 {
		cfg.Width = w
	}
	if h > 0 {
		cfg.Height = h
	}
	switch d {
	case DesignFTBY, DesignFTBYPG:
		cfg.RouterLatency = 3
		cfg.VCsPerVNet = 4
	case DesignAdaptNoRL, DesignAdaptNoC:
		cfg.VCsPerVNet = 2
		cfg.InjectionBypass = true
	}
	return cfg
}

// Canonical resolves the configuration into the form NewSim actually
// simulates: every defaulted field is filled with its explicit value and
// every knob the selected design ignores is reset to its zero value, so
// that two configurations produce identical simulations if and only if
// their canonical forms are identical. NewSim(cfg) and
// NewSim(cfg.Canonical()) build the same simulation.
//
// The returned config owns fresh Apps/MCTiles/DQN.Hidden storage; the
// RL.Pretrained and RL.SharedAgent pointers are shared (pretrained weights
// are treated as immutable, and NewSim clones them before use).
func (c Config) Canonical() Config {
	cfg := c
	cfg.Apps = append([]AppSpec(nil), c.Apps...)
	cfg.Faults = append([]fault.Event(nil), c.Faults...)
	if cfg.Width == 0 {
		cfg.Width = noc.DefaultConfig().Width
	}
	if cfg.Height == 0 {
		cfg.Height = noc.DefaultConfig().Height
	}
	if cfg.EpochCycles == 0 {
		cfg.EpochCycles = 50000
	}
	if cfg.Memory == (system.Params{}) {
		cfg.Memory = system.DefaultParams()
	}
	if cfg.Power == (power.Params{}) {
		cfg.Power = power.DefaultParams()
	}

	adapt := cfg.Design == DesignAdaptNoRL || cfg.Design == DesignAdaptNoC

	// Per-design knobs: fill defaults where the design reads them, zero
	// them where it does not (NewSim never looks, so differing values
	// would change nothing but the config's hash).
	if cfg.Design == DesignShortcut {
		if cfg.ShortcutLinksPerApp == 0 {
			cfg.ShortcutLinksPerApp = 2
		}
	} else {
		cfg.ShortcutLinksPerApp = 0
	}
	if cfg.Design == DesignFTBYPG {
		if cfg.PGWakeCycles == 0 {
			cfg.PGWakeCycles = 16
		}
		if cfg.PGIdleCycles == 0 {
			cfg.PGIdleCycles = 10
		}
	} else {
		cfg.PGWakeCycles, cfg.PGIdleCycles = 0, 0
	}
	if adapt {
		if cfg.SetupCycles == 0 {
			cfg.SetupCycles = fabric.DefaultConfig().SetupCycles
		}
	} else {
		cfg.SetupCycles = 0
		cfg.NoInjectionBypass = false
	}
	// The effective VC count is the design default unless overridden;
	// recording it explicitly makes "override with the default" and "no
	// override" the same config.
	if cfg.VCsPerVNet == 0 {
		cfg.VCsPerVNet = netConfig(cfg.Design, cfg.Width, cfg.Height).VCsPerVNet
	}

	// RL options only steer DesignAdaptNoC's learned policy.
	if cfg.Design != DesignAdaptNoC {
		cfg.RL = RLOptions{}
		cfg.UseQTable = false
	} else if cfg.UseQTable {
		cfg.RL = RLOptions{} // the tabular agent takes no hyper-parameters
	} else {
		if cfg.RL.SharedAgent != nil {
			cfg.RL.Pretrained = nil // SharedAgent overrides
		}
		if cfg.RL.DQN.ReplaySize == 0 {
			cfg.RL.DQN = rl.DefaultDQNConfig()
		}
		cfg.RL.DQN.Hidden = append([]int(nil), cfg.RL.DQN.Hidden...)
		if cfg.RL.EpsilonSet {
			cfg.RL.DQN.Epsilon = cfg.RL.Epsilon
			cfg.RL.Epsilon, cfg.RL.EpsilonSet = 0, false
		}
		if cfg.RL.Gamma > 0 {
			cfg.RL.DQN.Gamma = cfg.RL.Gamma
			cfg.RL.Gamma = 0
		}
	}

	// Static topology pins are only read by the Adapt designs.
	gridW := cfg.Width
	for i := range cfg.Apps {
		a := &cfg.Apps[i]
		if len(a.MCTiles) == 0 {
			a.MCTiles = []NodeID{noc.Coord{X: a.Region.X, Y: a.Region.Y}.ID(gridW)}
		} else {
			a.MCTiles = append([]NodeID(nil), a.MCTiles...)
		}
		if !adapt {
			a.Static = Mesh
		}
	}
	return cfg
}

// NewSim assembles a simulation. Regions must be disjoint and on-grid.
func NewSim(cfg Config) (*Sim, error) {
	if len(cfg.Apps) == 0 {
		return nil, fmt.Errorf("adaptnoc: no applications")
	}
	cfg = cfg.Canonical()

	ncfg := netConfig(cfg.Design, cfg.Width, cfg.Height)
	if cfg.NoInjectionBypass {
		ncfg.InjectionBypass = false
	}
	if cfg.VCsPerVNet > 0 {
		ncfg.VCsPerVNet = cfg.VCsPerVNet
	}
	// traces[i] is the recorded stream spec i replays (nil for synthetic
	// apps). Resolving also inlines path-named files into cfg.Apps so the
	// config stored on the Sim — and in every checkpoint taken from it —
	// is self-contained.
	traces := make([]*traffic.TraceApp, len(cfg.Apps))
	for i := range cfg.Apps {
		a := &cfg.Apps[i]
		for _, mc := range a.MCTiles {
			if !a.Region.Contains(noc.CoordOf(mc, ncfg.Width)) {
				return nil, fmt.Errorf("adaptnoc: app %d MC tile %d outside region %v", i, mc, a.Region)
			}
		}
		if a.Trace != "" || len(a.TraceData) > 0 {
			ta, err := resolveTraceSpec(a, ncfg.Width, ncfg.Height)
			if err != nil {
				return nil, fmt.Errorf("adaptnoc: app %d: %w", i, err)
			}
			traces[i] = ta
		} else if err := CheckProfile(a.Profile); err != nil {
			return nil, err
		}
		for j := 0; j < i; j++ {
			if a.Region.Overlaps(cfg.Apps[j].Region) {
				return nil, fmt.Errorf("adaptnoc: app regions %v and %v overlap", a.Region, cfg.Apps[j].Region)
			}
		}
	}

	s := &Sim{Cfg: cfg, specs: cfg.Apps}
	s.Kernel = sim.NewKernel()
	s.Net = noc.NewNetwork(ncfg)
	s.Kernel.Register(s.Net)
	s.Meter = power.NewMeter(s.Net, cfg.Power)
	s.Machine = system.NewMachine(s.Net, s.Kernel, cfg.Memory)

	rng := sim.NewRNG(cfg.Seed ^ 0xadaf7)

	switch cfg.Design {
	case DesignBaseline, DesignOSCAR:
		topology.BuildMesh(s.Net)
	case DesignShortcut:
		topology.BuildShortcutMesh(s.Net, s.shortcutLinks(ncfg))
	case DesignFTBY, DesignFTBYPG:
		topology.BuildFlattenedButterfly(s.Net)
		if cfg.Design == DesignFTBYPG {
			for _, r := range s.Net.Routers() {
				if !r.Disabled() {
					r.EnablePowerGating(sim.Cycle(cfg.PGWakeCycles), sim.Cycle(cfg.PGIdleCycles))
				}
			}
		}
	case DesignAdaptNoRL, DesignAdaptNoC:
		fcfg := fabric.DefaultConfig()
		if cfg.SetupCycles > 0 {
			fcfg.SetupCycles = cfg.SetupCycles
		}
		s.Fabric = fabric.New(s.Net, s.Kernel, fcfg)
	default:
		return nil, fmt.Errorf("adaptnoc: unknown design %v", cfg.Design)
	}

	// Applications. The fabric's per-subNoC MC anchor (the tree root) is
	// the most central of the region's controllers, which minimizes the
	// tree's depth.
	var subnocs []*fabric.SubNoC
	for i, spec := range cfg.Apps {
		if s.Fabric != nil {
			primary := centralMC(spec, ncfg.Width)
			var extras []noc.NodeID
			for _, mc := range spec.MCTiles {
				if mc != primary {
					extras = append(extras, mc)
				}
			}
			sn, err := s.Fabric.Allocate(i, spec.Region, spec.Static, primary, extras...)
			if err != nil {
				return nil, fmt.Errorf("adaptnoc: app %d: %w", i, err)
			}
			subnocs = append(subnocs, sn)
		}
		// Every app draws its RNG split, used or not, so adding a trace
		// spec never shifts a neighbouring profile app's random stream.
		appRNG := rng.Split(uint64(1000 + i))
		var app *system.App
		if ta := traces[i]; ta != nil {
			src := traffic.NewTraceSource(ta, spec.Region.X, spec.Region.Y, ncfg.Width)
			app = system.NewSourceApp(i, ta.Profile, src, spec.Region.Tiles(ncfg.Width), spec.MCTiles)
		} else {
			prof, _ := traffic.ByName(spec.Profile)
			app = system.NewApp(i, prof, spec.Region.Tiles(ncfg.Width),
				spec.MCTiles, spec.InstrBudget, appRNG)
		}
		s.apps = append(s.apps, app)
		s.Machine.AddApp(app)
	}

	// MC sharing: a memory-hungry app additionally reaches foreign MCs in
	// adjacent subNoCs (Section II-C.2); 20% of its off-chip accesses go
	// there. Under the Adapt designs the fabric wires a boundary crossing;
	// under the whole-chip baselines the shared mesh already reaches them.
	const foreignFrac = 0.2
	for i, spec := range cfg.Apps {
		if spec.ShareMCs <= 0 {
			continue
		}
		var foreign []noc.NodeID
		got := 0
		for j, other := range cfg.Apps {
			if got >= spec.ShareMCs || j == i {
				continue
			}
			if s.Fabric != nil {
				if err := s.Fabric.ShareMC(subnocs[i], other.MCTiles[0]); err != nil {
					continue
				}
			}
			foreign = append(foreign, other.MCTiles[0])
			got++
		}
		s.apps[i].SetForeignMCs(foreign, foreignFrac)
	}
	s.subnocs = subnocs

	// Control plane.
	switch cfg.Design {
	case DesignOSCAR:
		s.OSCAR = core.NewOSCARController(s.Kernel, s.Net, s.apps)
		s.OSCAR.EpochCycles = cfg.EpochCycles
		s.OSCAR.Start()
	case DesignAdaptNoRL, DesignAdaptNoC:
		s.Ctl = core.NewController(s.Kernel, s.Fabric, s.Machine, s.Meter)
		s.Ctl.EpochCycles = cfg.EpochCycles
		for i, sn := range subnocs {
			var pol core.Policy
			switch {
			case cfg.Design == DesignAdaptNoRL:
				pol = core.StaticPolicy{Kind: cfg.Apps[i].Static}
			case cfg.UseQTable:
				pol = &core.QTablePolicy{Agent: rl.NewQTable(rng.Split(uint64(7000 + i)))}
			default:
				pol = &core.DQNPolicy{Agent: s.newAgent(rng.Split(uint64(7000 + i))), Train: cfg.RL.Train}
			}
			b := s.Ctl.Bind(sn, s.apps[i], pol)
			b.KeepTrace = true
			s.binds = append(s.binds, b)
		}
		s.Ctl.Start()
	}

	if len(cfg.Faults) > 0 {
		eng, err := fault.New(s.Net, s.Kernel, s.Fabric, cfg.Faults, s.faultOptions())
		if err != nil {
			return nil, fmt.Errorf("adaptnoc: %w", err)
		}
		s.faults = eng
	}
	return s, nil
}

// faultOptions derives the fault engine's tuning from the configuration.
// OSCAR's opaque VC admission policy cannot be proven compatible with a
// partially masked port, so its VC faults escalate to link faults.
func (s *Sim) faultOptions() fault.Options {
	return fault.Options{
		EscalateVCFaults: s.Cfg.Design == DesignOSCAR,
		SetupCycles:      s.Cfg.SetupCycles,
	}
}

// FaultEngine returns the fault engine, or nil when no faults are
// scheduled.
func (s *Sim) FaultEngine() *fault.Engine { return s.faults }

// ApplyFaultSchedule injects additional fault events at runtime — the
// fault-campaign workflow restores one warmed checkpoint and replays it
// under many schedules. Every event must strike strictly after the current
// cycle. The schedule becomes part of Cfg.Faults, so a checkpoint taken
// afterwards restores the extended schedule.
func (s *Sim) ApplyFaultSchedule(events []fault.Event) error {
	if len(events) == 0 {
		return nil
	}
	if s.faults == nil {
		now := s.Kernel.Now()
		for i := range events {
			if events[i].Cycle <= int64(now) {
				return fmt.Errorf("adaptnoc: events[%d].cycle: %d is not after the current cycle %d",
					i, events[i].Cycle, now)
			}
		}
		eng, err := fault.New(s.Net, s.Kernel, s.Fabric, events, s.faultOptions())
		if err != nil {
			return fmt.Errorf("adaptnoc: %w", err)
		}
		s.faults = eng
	} else if err := s.faults.Extend(events); err != nil {
		return fmt.Errorf("adaptnoc: %w", err)
	}
	s.Cfg.Faults = append(s.Cfg.Faults, events...)
	return nil
}

// newAgent instantiates one subNoC's DQN from the RL options.
func (s *Sim) newAgent(rng *sim.RNG) *rl.DQN {
	if s.Cfg.RL.SharedAgent != nil {
		return s.Cfg.RL.SharedAgent
	}
	dcfg := s.Cfg.RL.DQN
	if dcfg.ReplaySize == 0 {
		dcfg = rl.DefaultDQNConfig()
	}
	if s.Cfg.RL.EpsilonSet {
		dcfg.Epsilon = s.Cfg.RL.Epsilon
	}
	if s.Cfg.RL.Gamma > 0 {
		dcfg.Gamma = s.Cfg.RL.Gamma
	}
	if s.Cfg.RL.Pretrained != nil {
		return rl.NewDQNFromNet(dcfg, s.Cfg.RL.Pretrained.Clone(), rng)
	}
	return rl.NewDQN(dcfg, rng)
}

// shortcutLinks derives per-application express links: from each app's MC
// router to the far end of its region's MC row and MC column (the
// long-distance memory traffic the Shortcut design targets).
func (s *Sim) shortcutLinks(ncfg noc.Config) []topology.Shortcut {
	var out []topology.Shortcut
	for _, spec := range s.Cfg.Apps {
		mc := noc.CoordOf(spec.MCTiles[0], ncfg.Width)
		budget := s.Cfg.ShortcutLinksPerApp
		rowFar := noc.Coord{X: spec.Region.X + spec.Region.W - 1, Y: mc.Y}
		if rowFar.X == mc.X {
			rowFar.X = spec.Region.X
		}
		colFar := noc.Coord{X: mc.X, Y: spec.Region.Y + spec.Region.H - 1}
		if colFar.Y == mc.Y {
			colFar.Y = spec.Region.Y
		}
		for _, far := range []noc.Coord{rowFar, colFar} {
			if budget == 0 {
				break
			}
			d := abs(far.X-mc.X) + abs(far.Y-mc.Y)
			if d < 2 {
				continue
			}
			out = append(out, topology.Shortcut{A: spec.MCTiles[0], B: far.ID(ncfg.Width)})
			budget--
		}
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Reconfigure switches an application's subNoC to a new topology at
// runtime using the staged deadlock-free protocol (Adapt designs only).
// It is asynchronous: done (optional) runs when injection reopens. Under
// DesignAdaptNoC the RL controller may immediately reconfigure again at
// the next epoch; for manual control use DesignAdaptNoRL.
func (s *Sim) Reconfigure(appIndex int, kind Kind, done func()) error {
	if s.Fabric == nil {
		return fmt.Errorf("adaptnoc: design %v has no reconfigurable fabric", s.Cfg.Design)
	}
	if appIndex < 0 || appIndex >= len(s.subnocs) {
		return fmt.Errorf("adaptnoc: no application %d", appIndex)
	}
	return s.Fabric.Reconfigure(s.subnocs[appIndex], kind, done)
}

// TickStats reports how many router and channel ticks the network skipped
// through its idle work lists — the observability hook for the hot-path
// optimization.
func (s *Sim) TickStats() TickStats { return s.Net.TickStats() }

// Topology reports an application's current subNoC topology (Adapt
// designs; Mesh otherwise).
func (s *Sim) Topology(appIndex int) Kind {
	if s.Fabric == nil || appIndex < 0 || appIndex >= len(s.subnocs) {
		return Mesh
	}
	return s.subnocs[appIndex].Kind
}

// Layout renders an application's region as ASCII art (active routers,
// powered-off routers, mesh links, adaptable segments) for inspection.
func (s *Sim) Layout(appIndex int) string {
	if appIndex < 0 || appIndex >= len(s.specs) {
		return ""
	}
	return topology.Render(s.Net, s.specs[appIndex].Region)
}

// LoadPolicy parses DQN weights produced by cmd/adaptnoc-train.
func LoadPolicy(blob []byte) (*PolicyNet, error) {
	var n rl.Net
	if err := json.Unmarshal(blob, &n); err != nil {
		return nil, fmt.Errorf("adaptnoc: parsing policy weights: %w", err)
	}
	return &n, nil
}

// DefaultPolicy returns the embedded offline-trained policy, or nil when
// the build carries none (deployments then fall back to online learning).
func DefaultPolicy() *PolicyNet { return rl.Pretrained() }

// centralMC returns the app's memory controller with the smallest total
// distance to the region's tiles — the tree root that minimizes depth.
func centralMC(spec AppSpec, gridW int) NodeID {
	best, bestSum := spec.MCTiles[0], 1<<30
	for _, mc := range spec.MCTiles {
		c := noc.CoordOf(mc, gridW)
		sum := 0
		for _, t := range spec.Region.Tiles(gridW) {
			tc := noc.CoordOf(t, gridW)
			sum += abs(tc.X-c.X) + abs(tc.Y-c.Y)
		}
		if sum < bestSum {
			best, bestSum = mc, sum
		}
	}
	return best
}
