package adaptnoc

// Dependency-trace record & replay façade over internal/traffic: any live
// run can be captured into a compact ADNOCTRC blob (RecordTrace /
// FinishTrace), and a recorded stream replays through AppSpec.Trace /
// AppSpec.TraceData in place of a synthetic profile. Replay self-paces —
// each recorded packet injects a fixed gap after its recorded
// dependencies retire on the replaying fabric — so the same trace probes
// different designs, and the replay checkpoints, resumes, and shards like
// any other workload.

import (
	"fmt"
	"os"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/traffic"
)

// Re-exported trace types (see internal/traffic for the format).
type (
	// Trace is a decoded dependency trace: one recorded stream per app.
	Trace = traffic.Trace
	// TraceApp is one application's recorded stream.
	TraceApp = traffic.TraceApp
)

// EncodeTrace serializes a trace into the versioned ADNOCTRC format. The
// encoding is deterministic, so trace content is content-addressable
// wherever configs are.
func EncodeTrace(t *Trace) ([]byte, error) { return traffic.EncodeTrace(t) }

// DecodeTrace parses and validates an ADNOCTRC blob. It is safe on
// adversarial input: every count is bounds-checked before allocation.
func DecodeTrace(blob []byte) (*Trace, error) { return traffic.DecodeTrace(blob) }

// CheckProfile is the one profile-existence check every configuration
// entry path (the -apps parser, NewSim, Config.Validate) shares, so the
// error reads identically everywhere.
func CheckProfile(name string) error {
	if _, ok := traffic.ByName(name); !ok {
		return fmt.Errorf("adaptnoc: unknown profile %q (see adaptnoc-sim -profiles)", name)
	}
	return nil
}

// resolveTraceSpec validates one replay spec and returns the recorded
// stream it names, inlining a path-named file into spec.TraceData as a
// side effect (the spec is part of the config NewSim stores, which makes
// checkpoints taken from the sim self-contained).
func resolveTraceSpec(spec *AppSpec, gridW, gridH int) (*traffic.TraceApp, error) {
	if spec.Profile != "" {
		return nil, fmt.Errorf("both profile %q and a trace set; a spec is one or the other", spec.Profile)
	}
	if spec.InstrBudget != 0 {
		return nil, fmt.Errorf("trace replay takes no instruction budget (the trace itself bounds the run)")
	}
	if len(spec.TraceData) == 0 {
		data, err := os.ReadFile(spec.Trace)
		if err != nil {
			return nil, fmt.Errorf("reading trace: %w", err)
		}
		spec.TraceData = data
	}
	spec.Trace = ""
	tr, err := traffic.DecodeTrace(spec.TraceData)
	if err != nil {
		return nil, err
	}
	if spec.TraceApp < 0 || spec.TraceApp >= len(tr.Apps) {
		return nil, fmt.Errorf("trace has %d recorded apps, index %d", len(tr.Apps), spec.TraceApp)
	}
	ta := &tr.Apps[spec.TraceApp]
	if ta.W != spec.Region.W || ta.H != spec.Region.H {
		return nil, fmt.Errorf("region %dx%d does not match the recorded %dx%d (a replay may move the region but not resize it)",
			spec.Region.W, spec.Region.H, ta.W, ta.H)
	}
	if err := ta.FitsGrid(gridW, gridH); err != nil {
		return nil, err
	}
	return ta, nil
}

// TraceWorkload derives replay AppSpecs from a trace's own recorded
// placements: every recorded application replays in its original position
// with its original memory controllers. It returns the specs plus the
// recorded grid dimensions (the chip the placements assume).
func TraceWorkload(data []byte) ([]AppSpec, int, int, error) {
	tr, err := traffic.DecodeTrace(data)
	if err != nil {
		return nil, 0, 0, err
	}
	specs := make([]AppSpec, 0, len(tr.Apps))
	for i := range tr.Apps {
		a := &tr.Apps[i]
		var mcs []NodeID
		for _, mc := range a.MCs {
			rx, ry := int(mc)%a.W, int(mc)/a.W
			mcs = append(mcs, NodeID((a.Y+ry)*tr.GridW+(a.X+rx)))
		}
		specs = append(specs, AppSpec{
			Region:    Region{X: a.X, Y: a.Y, W: a.W, H: a.H},
			MCTiles:   mcs,
			TraceData: data,
			TraceApp:  i,
		})
	}
	return specs, tr.GridW, tr.GridH, nil
}

// RecordTrace starts capturing this run into a dependency trace. It must
// be called before the first cycle of a fresh simulation — recorded
// release gaps are absolute from cycle 0, so a resumed run cannot be
// recorded. Collect the result with FinishTrace after running.
func (s *Sim) RecordTrace() error {
	if s.Kernel.Now() != 0 {
		return fmt.Errorf("adaptnoc: recording must start at cycle 0, not %d", s.Kernel.Now())
	}
	if s.rec != nil {
		return fmt.Errorf("adaptnoc: already recording")
	}
	rec := traffic.NewRecorder(s.Net.Cfg.Width, s.Net.Cfg.Height)
	for i, spec := range s.specs {
		rec.AddApp(i, s.apps[i].Profile.Name,
			spec.Region.X, spec.Region.Y, spec.Region.W, spec.Region.H,
			append([]noc.NodeID(nil), spec.MCTiles...))
	}
	s.Machine.SetRecorder(rec)
	s.rec = rec
	return nil
}

// FinishTrace assembles the recording started by RecordTrace into a
// validated trace. The simulation may keep running, but packets still in
// flight stay unrecorded tails: call it after the run window ends.
func (s *Sim) FinishTrace() (*Trace, error) {
	if s.rec == nil {
		return nil, fmt.Errorf("adaptnoc: RecordTrace was never called")
	}
	return s.rec.Finish()
}
