// Command adaptnoc-serve runs the simulation-as-a-service daemon: POST a
// JSON configuration to /v1/sims, poll or stream the job, and let the
// content-addressed cache answer repeats instantly. See README.md
// ("Serving") for the API walkthrough.
//
//	adaptnoc-serve -addr :8080 -cachedir /var/cache/adaptnoc
//
// With -enroll the daemon registers itself with a fleet coordinator
// (adaptnoc-fleet) and heartbeats until shutdown; -public-url overrides
// the advertised address when the daemon sits behind NAT or a proxy.
//
// Two self-driving modes exist for CI:
//
//	-smoke          start on a loopback port, submit one small simulation
//	                to itself, verify the result parses and the
//	                resubmission is a byte-identical cache hit, drain,
//	                exit 0 — the gate that the whole serving path works.
//	-benchjson F    measure one uncached run against repeated cached
//	                submissions of the same request and write the
//	                wall-clock comparison to F (BENCH_serve.json).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"adaptnoc"
	"adaptnoc/internal/fleet"
	"adaptnoc/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		queue      = flag.Int("queue", 64, "admission queue depth (full queue answers 429)")
		workers    = flag.Int("workers", 0, "worker pool size (0 = one per CPU)")
		cacheDir   = flag.String("cachedir", "", "persist results to this directory (empty = memory only)")
		cacheBytes = flag.Int64("cachebytes", 64<<20, "in-memory result cache budget in bytes")
		ckptBytes  = flag.Int64("checkpointbytes", 256<<20, "on-disk checkpoint directory budget in bytes (LRU eviction)")
		drainSecs  = flag.Int("drain", 60, "seconds to wait for in-flight jobs on shutdown")
		smoke      = flag.Bool("smoke", false, "run the loopback self-test and exit")
		benchJSON  = flag.String("benchjson", "", "measure cached-vs-uncached throughput, write JSON to this file, and exit")
		enroll     = flag.String("enroll", "", "register with a fleet coordinator at this URL and heartbeat")
		publicURL  = flag.String("public-url", "", "URL the coordinator should reach this daemon at (default derived from -addr)")
	)
	flag.Parse()

	// Checkpoints live beside the result cache: a canceled job's mid-run
	// state persists across daemon restarts just like finished results do.
	ckptDir := ""
	if *cacheDir != "" {
		ckptDir = filepath.Join(*cacheDir, "checkpoints")
	}
	srv := serve.New(serve.Options{
		QueueDepth:      *queue,
		Workers:         *workers,
		CacheBytes:      *cacheBytes,
		CacheDir:        *cacheDir,
		CheckpointDir:   ckptDir,
		CheckpointBytes: *ckptBytes,
	})

	if *smoke || *benchJSON != "" {
		cl, stop, err := startLoopback(srv)
		if err != nil {
			log.Fatal(err)
		}
		if *smoke {
			err = runSmoke(cl)
		} else {
			err = runBench(cl, *benchJSON)
		}
		if stopErr := stop(); err == nil {
			err = stopErr
		}
		if err != nil {
			log.Fatal(err)
		}
		if *smoke {
			fmt.Println("smoke: ok")
		}
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	log.Printf("adaptnoc-serve listening on %s", ln.Addr())

	// Fleet enrollment: register with the coordinator and heartbeat until
	// shutdown, re-registering if the coordinator restarts. Failures are
	// retried forever — a worker outliving its coordinator is normal.
	var enrollCancel context.CancelFunc = func() {}
	if *enroll != "" {
		self := *publicURL
		if self == "" {
			self = "http://" + ln.Addr().String()
		}
		var ectx context.Context
		ectx, enrollCancel = context.WithCancel(context.Background())
		go func() {
			log.Printf("enrolling with %s as %s", *enroll, self)
			fleet.Enroll(ectx, *enroll, self, 5*time.Second)
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	enrollCancel()
	log.Printf("draining (up to %ds)...", *drainSecs)
	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainSecs)*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	hs.Shutdown(context.Background())
	log.Printf("drained")
}

// client drives a daemon over real HTTP on a loopback port.
type client struct{ base string }

// startLoopback serves srv on 127.0.0.1:0 and returns a client plus a stop
// function that drains the daemon and closes the listener.
func startLoopback(srv *serve.Server) (*client, func() error, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	stop := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		return hs.Shutdown(context.Background())
	}
	return &client{base: "http://" + ln.Addr().String()}, stop, nil
}

func (c *client) submit(req serve.Request) (serve.JobInfo, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return serve.JobInfo{}, err
	}
	resp, err := http.Post(c.base+"/v1/sims", "application/json", bytes.NewReader(body))
	if err != nil {
		return serve.JobInfo{}, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return serve.JobInfo{}, err
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return serve.JobInfo{}, fmt.Errorf("submit: %s: %s", resp.Status, blob)
	}
	var info serve.JobInfo
	if err := json.Unmarshal(blob, &info); err != nil {
		return serve.JobInfo{}, err
	}
	return info, nil
}

func (c *client) wait(info serve.JobInfo, timeout time.Duration) (serve.JobInfo, error) {
	deadline := time.Now().Add(timeout)
	for !info.State.Terminal() {
		if time.Now().After(deadline) {
			return info, fmt.Errorf("job %s stuck in state %s", info.ID, info.State)
		}
		time.Sleep(50 * time.Millisecond)
		resp, err := http.Get(c.base + "/v1/jobs/" + info.ID)
		if err != nil {
			return info, err
		}
		blob, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(blob, &info); err != nil {
			return info, err
		}
	}
	return info, nil
}

// benchRequest is the measured workload: the paper's mixed workload under
// the full Adapt-NoC design for four control epochs.
func benchRequest() serve.Request {
	return serve.Request{
		Config: adaptnoc.Config{
			Design: adaptnoc.DesignAdaptNoC,
			Apps:   adaptnoc.DefaultMixed(0),
			Seed:   2021,
		},
		Cycles: 200000,
	}
}

// runSmoke exercises the serving path end to end: submit, wait, parse,
// resubmit for a byte-identical cache hit.
func runSmoke(cl *client) error {
	req := benchRequest()
	req.Cycles = 20000
	info, err := cl.submit(req)
	if err != nil {
		return fmt.Errorf("smoke: %w", err)
	}
	if info, err = cl.wait(info, 2*time.Minute); err != nil {
		return fmt.Errorf("smoke: %w", err)
	}
	if info.State != serve.StateDone {
		return fmt.Errorf("smoke: job %s ended %s: %s", info.ID, info.State, info.Error)
	}
	res, err := adaptnoc.ParseResults(info.Results)
	if err != nil {
		return fmt.Errorf("smoke: results do not parse: %w", err)
	}
	if res.Cycles != req.Cycles {
		return fmt.Errorf("smoke: ran %d cycles, want %d", res.Cycles, req.Cycles)
	}

	again, err := cl.submit(req)
	if err != nil {
		return fmt.Errorf("smoke: %w", err)
	}
	if again.Cache != "hit" || again.State != serve.StateDone {
		return fmt.Errorf("smoke: resubmission not served from cache: cache=%s state=%s", again.Cache, again.State)
	}
	if !bytes.Equal(again.Results, info.Results) {
		return fmt.Errorf("smoke: cached results differ from computed results")
	}
	return nil
}

// runBench times one uncached run against repeated cached submissions of
// the identical request and writes the comparison as JSON.
func runBench(cl *client, path string) error {
	req := benchRequest()

	start := time.Now()
	info, err := cl.submit(req)
	if err != nil {
		return err
	}
	if info, err = cl.wait(info, 10*time.Minute); err != nil {
		return err
	}
	if info.State != serve.StateDone {
		return fmt.Errorf("bench: job ended %s: %s", info.State, info.Error)
	}
	uncached := time.Since(start)

	const cachedReqs = 50
	start = time.Now()
	for i := 0; i < cachedReqs; i++ {
		again, err := cl.submit(req)
		if err != nil {
			return err
		}
		if again.Cache != "hit" {
			return fmt.Errorf("bench: request %d missed the cache", i)
		}
	}
	cachedMean := time.Since(start).Seconds() / cachedReqs

	doc := struct {
		Design         string  `json:"design"`
		Seed           uint64  `json:"seed"`
		Cycles         int64   `json:"cycles"`
		UncachedSec    float64 `json:"uncached_sec"`
		CachedRequests int     `json:"cached_requests"`
		CachedMeanSec  float64 `json:"cached_mean_sec"`
		Speedup        float64 `json:"speedup"`
	}{
		Design: req.Config.Design.String(), Seed: req.Config.Seed, Cycles: int64(req.Cycles),
		UncachedSec: uncached.Seconds(), CachedRequests: cachedReqs, CachedMeanSec: cachedMean,
		Speedup: uncached.Seconds() / cachedMean,
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	log.Printf("bench: uncached %.2fs, cached mean %.2fms, speedup %.0fx",
		doc.UncachedSec, 1000*doc.CachedMeanSec, doc.Speedup)
	return nil
}
