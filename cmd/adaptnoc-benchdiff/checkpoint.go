package main

// Checkpoint-mode gate: instead of comparing two `go test -bench` outputs,
// -checkpoint reads a BENCH_checkpoint.json written by TestCheckpointBenchRecord
// and enforces the delta-chain contract on its steady-regime rows — a
// rolling delta must be at least -min-delta-size-ratio times smaller and
// -min-delta-encode-speedup times faster to encode than the full snapshot
// it chains from. Active-regime rows are printed for the record but not
// gated: under a saturated workload most component records change every
// interval, so the delta win there is real but load-dependent.

import (
	"encoding/json"
	"fmt"
	"os"
)

// checkpointRow mirrors the fields of a BENCH_checkpoint.json row this
// gate reads; unknown fields are ignored so the row schema can grow.
type checkpointRow struct {
	Design             string  `json:"design"`
	Regime             string  `json:"regime"`
	Grid               string  `json:"grid"`
	Bytes              int     `json:"bytes"`
	EncodeSec          float64 `json:"encode_sec"`
	DeltaBytes         int     `json:"delta_bytes"`
	DeltaEncodeSec     float64 `json:"delta_encode_sec"`
	DeltaSizeRatio     float64 `json:"delta_size_ratio"`
	DeltaEncodeSpeedup float64 `json:"delta_encode_speedup"`
}

// gateCheckpoint applies the steady-row minima and reports every row. It
// fails when any steady row misses a minimum — and when no steady row
// exists at all, so a regenerated file cannot silently drop the gated
// regime.
func gateCheckpoint(path string, minSizeRatio, minEncodeSpeedup float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rows []checkpointRow
	if err := json.Unmarshal(data, &rows); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	steady := 0
	var failures []string
	for _, r := range rows {
		label := r.Design
		if r.Grid != "" {
			label += "/" + r.Grid
		}
		fmt.Printf("%-10s %-20s full=%6dB %7.2fms  delta=%6dB %7.2fms  size=%5.1fx encode=%4.1fx\n",
			r.Regime, label, r.Bytes, 1000*r.EncodeSec, r.DeltaBytes, 1000*r.DeltaEncodeSec,
			r.DeltaSizeRatio, r.DeltaEncodeSpeedup)
		if r.Regime != "steady" {
			continue
		}
		steady++
		if r.DeltaSizeRatio < minSizeRatio {
			failures = append(failures, fmt.Sprintf(
				"%s: delta size ratio %.1fx below the %.1fx minimum", label, r.DeltaSizeRatio, minSizeRatio))
		}
		if r.DeltaEncodeSpeedup < minEncodeSpeedup {
			failures = append(failures, fmt.Sprintf(
				"%s: delta encode speedup %.1fx below the %.1fx minimum", label, r.DeltaEncodeSpeedup, minEncodeSpeedup))
		}
	}
	if steady == 0 {
		failures = append(failures, "no steady-regime rows found — the gated regime is missing from the file")
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "FAIL: %s\n", f)
		}
		return fmt.Errorf("%d checkpoint gate failure(s)", len(failures))
	}
	return nil
}
