package main

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// Run is one benchmark result line from `go test -bench` output.
type Run struct {
	Iterations  int64
	NsPerOp     float64
	BytesPerOp  int64
	AllocsPerOp int64
	HasMem      bool // line carried -benchmem columns
}

// Summary aggregates the runs of one benchmark across -count repetitions.
// ns/op keeps both the mean (the gated metric) and the min (the least noisy
// point estimate on a shared machine).
type Summary struct {
	Runs        int     `json:"runs"`
	NsPerOpMean float64 `json:"ns_per_op_mean"`
	NsPerOpMin  float64 `json:"ns_per_op_min"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Comparison is the JSON record benchdiff emits (BENCH_tick.json).
type Comparison struct {
	Bench            string   `json:"bench"`
	AfterBench       string   `json:"after_bench,omitempty"` // set when the after side is a different benchmark
	Before           Summary  `json:"before"`
	After            Summary  `json:"after"`
	NsDeltaPercent   float64  `json:"ns_delta_percent"` // negative = faster
	AllocsDelta      int64    `json:"allocs_delta"`
	MaxNsRegressPct  float64  `json:"max_ns_regress_percent"`
	MaxAllocsRegress int64    `json:"max_allocs_regress,omitempty"`
	RequireZeroAlloc bool     `json:"require_zero_allocs"`
	Pass             bool     `json:"pass"`
	Failures         []string `json:"failures,omitempty"`
}

// ParseBench extracts every result line for the named benchmark. Lines look
// like
//
//	BenchmarkNetworkTick-8   103021   11753 ns/op   0 B/op   0 allocs/op
//
// where the -8 GOMAXPROCS suffix and the -benchmem columns are optional.
func ParseBench(text, bench string) ([]Run, error) {
	var runs []Run
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || fields[0] != bench && !strings.HasPrefix(fields[0], bench+"-") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Run{Iterations: iters}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = val
				ok = true
			case "B/op":
				r.BytesPerOp = int64(val)
				r.HasMem = true
			case "allocs/op":
				r.AllocsPerOp = int64(val)
				r.HasMem = true
			}
		}
		if ok {
			runs = append(runs, r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("no result lines for %s", bench)
	}
	for _, r := range runs {
		if !r.HasMem {
			return nil, fmt.Errorf("%s results lack B/op and allocs/op; rerun with -benchmem", bench)
		}
	}
	return runs, nil
}

// Summarize folds repeated runs into one record: mean and min ns/op, and the
// worst (largest) B/op and allocs/op seen — a single allocating run is a
// real regression even if its siblings were clean.
func Summarize(runs []Run) Summary {
	s := Summary{Runs: len(runs), NsPerOpMin: runs[0].NsPerOp}
	var sum float64
	for _, r := range runs {
		sum += r.NsPerOp
		if r.NsPerOp < s.NsPerOpMin {
			s.NsPerOpMin = r.NsPerOp
		}
		if r.BytesPerOp > s.BytesPerOp {
			s.BytesPerOp = r.BytesPerOp
		}
		if r.AllocsPerOp > s.AllocsPerOp {
			s.AllocsPerOp = r.AllocsPerOp
		}
	}
	s.NsPerOpMean = sum / float64(len(runs))
	return s
}

// compare applies the gates and assembles the JSON record.
func compare(bench string, before, after Summary, maxNsRegressPct float64, maxAllocsRegress int64, requireZeroAllocs bool) Comparison {
	c := Comparison{
		Bench:            bench,
		Before:           before,
		After:            after,
		MaxNsRegressPct:  maxNsRegressPct,
		MaxAllocsRegress: maxAllocsRegress,
		RequireZeroAlloc: requireZeroAllocs,
		AllocsDelta:      after.AllocsPerOp - before.AllocsPerOp,
		Pass:             true,
	}
	if before.NsPerOpMean > 0 {
		c.NsDeltaPercent = (after.NsPerOpMean - before.NsPerOpMean) / before.NsPerOpMean * 100
	}
	if c.NsDeltaPercent > maxNsRegressPct {
		c.Pass = false
		c.Failures = append(c.Failures, fmt.Sprintf(
			"ns/op regressed %.1f%% (mean %.0f -> %.0f), limit %.1f%%",
			c.NsDeltaPercent, before.NsPerOpMean, after.NsPerOpMean, maxNsRegressPct))
	}
	if after.AllocsPerOp > before.AllocsPerOp+maxAllocsRegress {
		c.Pass = false
		msg := fmt.Sprintf("allocs/op regressed %d -> %d", before.AllocsPerOp, after.AllocsPerOp)
		if maxAllocsRegress > 0 {
			msg += fmt.Sprintf(", allowance %d", maxAllocsRegress)
		}
		c.Failures = append(c.Failures, msg)
	}
	if requireZeroAllocs && after.AllocsPerOp != 0 {
		c.Pass = false
		c.Failures = append(c.Failures, fmt.Sprintf(
			"allocs/op = %d, want 0", after.AllocsPerOp))
	}
	return c
}
