// Command adaptnoc-benchdiff compares two `go test -bench` text outputs and
// gates performance regressions: it fails (exit 1) when the after run is
// slower than the before run by more than -max-ns-regress percent on mean
// ns/op, or when allocs/op regressed by more than -max-allocs-regress
// (default 0: any regression fails). With -require-zero-allocs it
// additionally demands the after run reports exactly 0 allocs/op, which is
// the steady-state contract of the simulator's arena allocator.
//
// The comparison (all runs of both files, min/mean ns/op, B/op, allocs/op,
// the deltas, and the verdict) is written as JSON to -json, giving the repo
// a committed before/after record (BENCH_tick.json) next to each optimized
// benchmark's baseline.
//
// -bench accepts a comma-separated list; each name is compared and the
// JSON record becomes an array (a single name keeps the original object
// shape). -after-bench, when set, names the benchmark(s) to read from the
// after file instead — pointing -before and -after at the SAME file then
// compares two benchmarks of one run, which is how the sharded-tick gate
// demands "shards=N at least 2x faster than shards=1" from a single
// BENCH_shard measurement (a negative -max-ns-regress is a required
// improvement: -50 fails unless the after side is at least twice as fast).
//
// A second mode gates the delta-checkpoint contract: -checkpoint reads a
// BENCH_checkpoint.json written by TestCheckpointBenchRecord and fails
// unless every steady-regime row's rolling delta beats the full snapshot
// by -min-delta-size-ratio on bytes and -min-delta-encode-speedup on
// encode time (see checkpoint.go).
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkNetworkTick -benchmem -count 5 ./internal/noc > after.txt
//	adaptnoc-benchdiff -bench BenchmarkNetworkTick \
//	    -before internal/noc/testdata/bench_tick_before.txt -after after.txt \
//	    -json BENCH_tick.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	var (
		benchName  = flag.String("bench", "BenchmarkNetworkTick", "comma-separated benchmark `names` to compare (exact, without the -N cpu suffix)")
		afterBench = flag.String("after-bench", "", "comma-separated `names` to read from the after file (default: same as -bench)")
		beforePath = flag.String("before", "", "`file` with the baseline go test -bench output")
		afterPath  = flag.String("after", "", "`file` with the candidate go test -bench output")
		jsonPath   = flag.String("json", "", "write the comparison record to this `file` (optional)")
		maxNs      = flag.Float64("max-ns-regress", 10, "fail when mean ns/op regresses by more than this `percent` (negative demands an improvement)")
		maxAllocs  = flag.Int64("max-allocs-regress", 0, "fail when allocs/op regresses by more than this `count` (default: any regression fails)")
		zeroAllocs = flag.Bool("require-zero-allocs", false, "fail unless the after run reports exactly 0 allocs/op")
		ckptPath   = flag.String("checkpoint", "", "gate a BENCH_checkpoint.json `file` instead of comparing bench outputs")
		minSize    = flag.Float64("min-delta-size-ratio", 5, "checkpoint mode: minimum full/delta size ratio on steady rows")
		minSpeed   = flag.Float64("min-delta-encode-speedup", 3, "checkpoint mode: minimum full/delta encode speedup on steady rows")
	)
	flag.Parse()
	if *ckptPath != "" {
		if err := gateCheckpoint(*ckptPath, *minSize, *minSpeed); err != nil {
			fatalExit(err)
		}
		fmt.Println("PASS")
		return
	}
	if *beforePath == "" || *afterPath == "" {
		fmt.Fprintln(os.Stderr, "adaptnoc-benchdiff: -before and -after are required")
		flag.Usage()
		os.Exit(2)
	}
	benches := strings.Split(*benchName, ",")
	afters := benches
	if *afterBench != "" {
		afters = strings.Split(*afterBench, ",")
		if len(afters) != len(benches) {
			fatal(fmt.Errorf("-after-bench names %d benchmarks, -bench names %d", len(afters), len(benches)))
		}
	}

	var cmps []Comparison
	failed := false
	for i, bench := range benches {
		bench = strings.TrimSpace(bench)
		afterName := strings.TrimSpace(afters[i])
		before, err := summarizeFile(*beforePath, bench)
		if err != nil {
			fatal(err)
		}
		after, err := summarizeFile(*afterPath, afterName)
		if err != nil {
			fatal(err)
		}
		cmp := compare(bench, before, after, *maxNs, *maxAllocs, *zeroAllocs)
		if afterName != bench {
			cmp.AfterBench = afterName
		}
		cmps = append(cmps, cmp)

		label := bench
		if afterName != bench {
			label = bench + " -> " + afterName
		}
		fmt.Printf("%s: ns/op %.0f -> %.0f (%+.1f%%), allocs/op %d -> %d\n",
			label, before.NsPerOpMean, after.NsPerOpMean, cmp.NsDeltaPercent,
			before.AllocsPerOp, after.AllocsPerOp)
		if !cmp.Pass {
			failed = true
			for _, f := range cmp.Failures {
				fmt.Fprintf(os.Stderr, "FAIL: %s: %s\n", label, f)
			}
		}
	}

	if *jsonPath != "" {
		var doc any = cmps
		if len(cmps) == 1 {
			doc = cmps[0] // original single-object shape (BENCH_tick.json)
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("PASS")
}

func summarizeFile(path, bench string) (Summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Summary{}, err
	}
	runs, err := ParseBench(string(data), bench)
	if err != nil {
		return Summary{}, fmt.Errorf("%s: %w", path, err)
	}
	return Summarize(runs), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adaptnoc-benchdiff:", err)
	os.Exit(2)
}

// fatalExit is fatal with the gate-failure exit code (1, not the usage
// error's 2), so CI distinguishes "the contract is broken" from "the tool
// was invoked wrong".
func fatalExit(err error) {
	fmt.Fprintln(os.Stderr, "adaptnoc-benchdiff:", err)
	os.Exit(1)
}
