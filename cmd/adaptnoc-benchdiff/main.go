// Command adaptnoc-benchdiff compares two `go test -bench` text outputs and
// gates performance regressions: it fails (exit 1) when the after run is
// slower than the before run by more than -max-ns-regress percent on mean
// ns/op, or when allocs/op regressed at all. With -require-zero-allocs it
// additionally demands the after run reports exactly 0 allocs/op, which is
// the steady-state contract of the simulator's arena allocator.
//
// The comparison (all runs of both files, min/mean ns/op, B/op, allocs/op,
// the deltas, and the verdict) is written as JSON to -json, giving the repo
// a committed before/after record (BENCH_tick.json) next to each optimized
// benchmark's baseline.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkNetworkTick -benchmem -count 5 ./internal/noc > after.txt
//	adaptnoc-benchdiff -bench BenchmarkNetworkTick \
//	    -before internal/noc/testdata/bench_tick_before.txt -after after.txt \
//	    -json BENCH_tick.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		benchName  = flag.String("bench", "BenchmarkNetworkTick", "benchmark name to compare (exact, without -N cpu suffix)")
		beforePath = flag.String("before", "", "`file` with the baseline go test -bench output")
		afterPath  = flag.String("after", "", "`file` with the candidate go test -bench output")
		jsonPath   = flag.String("json", "", "write the comparison record to this `file` (optional)")
		maxNs      = flag.Float64("max-ns-regress", 10, "fail when mean ns/op regresses by more than this `percent`")
		zeroAllocs = flag.Bool("require-zero-allocs", false, "fail unless the after run reports exactly 0 allocs/op")
	)
	flag.Parse()
	if *beforePath == "" || *afterPath == "" {
		fmt.Fprintln(os.Stderr, "adaptnoc-benchdiff: -before and -after are required")
		flag.Usage()
		os.Exit(2)
	}

	before, err := summarizeFile(*beforePath, *benchName)
	if err != nil {
		fatal(err)
	}
	after, err := summarizeFile(*afterPath, *benchName)
	if err != nil {
		fatal(err)
	}

	cmp := compare(*benchName, before, after, *maxNs, *zeroAllocs)
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(cmp, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("%s: ns/op %.0f -> %.0f (%+.1f%%), allocs/op %d -> %d\n",
		*benchName, before.NsPerOpMean, after.NsPerOpMean, cmp.NsDeltaPercent,
		before.AllocsPerOp, after.AllocsPerOp)
	if !cmp.Pass {
		for _, f := range cmp.Failures {
			fmt.Fprintf(os.Stderr, "FAIL: %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Println("PASS")
}

func summarizeFile(path, bench string) (Summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Summary{}, err
	}
	runs, err := ParseBench(string(data), bench)
	if err != nil {
		return Summary{}, fmt.Errorf("%s: %w", path, err)
	}
	return Summarize(runs), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adaptnoc-benchdiff:", err)
	os.Exit(2)
}
