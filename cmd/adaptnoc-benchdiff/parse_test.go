package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: adaptnoc/internal/noc
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkNetworkTick-8 	  103021	     14000 ns/op	     729 B/op	      12 allocs/op
BenchmarkNetworkTick-8 	   89695	     14200 ns/op	     729 B/op	      12 allocs/op
BenchmarkNetworkTickIdle-8 	 1000000	       100 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	adaptnoc/internal/noc	7.660s
`

func TestParseBenchSelectsNameAndSuffix(t *testing.T) {
	runs, err := ParseBench(sample, "BenchmarkNetworkTick")
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("parsed %d runs, want 2 (must not match BenchmarkNetworkTickIdle)", len(runs))
	}
	if runs[0].NsPerOp != 14000 || runs[0].AllocsPerOp != 12 || runs[0].BytesPerOp != 729 {
		t.Fatalf("first run parsed wrong: %+v", runs[0])
	}
	// The bare name (no GOMAXPROCS suffix) must parse too.
	bare := strings.ReplaceAll(sample, "BenchmarkNetworkTick-8", "BenchmarkNetworkTick")
	if runs, err = ParseBench(bare, "BenchmarkNetworkTick"); err != nil || len(runs) != 2 {
		t.Fatalf("bare-name parse: %d runs, err %v", len(runs), err)
	}
}

const shardedSample = `goos: linux
BenchmarkNetworkTickSharded/32x32/shards=1-8 	    5000	    240000 ns/op	       0 B/op	       0 allocs/op
BenchmarkNetworkTickSharded/32x32/shards=4-8 	   20000	     70000 ns/op	       0 B/op	       0 allocs/op
PASS
`

func TestParseBenchSelectsSubBenchmarks(t *testing.T) {
	// Sub-benchmark paths contain '/' and '='; the name+"-N" cpu-suffix rule
	// must still pick exactly one row per full path.
	serial, err := ParseBench(shardedSample, "BenchmarkNetworkTickSharded/32x32/shards=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 1 || serial[0].NsPerOp != 240000 {
		t.Fatalf("serial row parsed wrong: %+v", serial)
	}
	sharded, err := ParseBench(shardedSample, "BenchmarkNetworkTickSharded/32x32/shards=4")
	if err != nil {
		t.Fatal(err)
	}
	if len(sharded) != 1 || sharded[0].NsPerOp != 70000 {
		t.Fatalf("sharded row parsed wrong: %+v", sharded)
	}
}

func TestParseBenchRejectsMissingBenchmem(t *testing.T) {
	if _, err := ParseBench("BenchmarkNetworkTick 100 14000 ns/op\n", "BenchmarkNetworkTick"); err == nil {
		t.Fatal("accepted output without -benchmem columns")
	}
	if _, err := ParseBench(sample, "BenchmarkAbsent"); err == nil {
		t.Fatal("accepted absent benchmark")
	}
}

func TestSummarizeTakesMeanMinAndWorstAllocs(t *testing.T) {
	s := Summarize([]Run{
		{NsPerOp: 10000, AllocsPerOp: 0, BytesPerOp: 0, HasMem: true},
		{NsPerOp: 14000, AllocsPerOp: 3, BytesPerOp: 128, HasMem: true},
	})
	if s.NsPerOpMean != 12000 || s.NsPerOpMin != 10000 {
		t.Fatalf("ns summary wrong: %+v", s)
	}
	if s.AllocsPerOp != 3 || s.BytesPerOp != 128 {
		t.Fatalf("a single allocating run must dominate the summary: %+v", s)
	}
}

func TestCompareGates(t *testing.T) {
	base := Summary{Runs: 5, NsPerOpMean: 14000, NsPerOpMin: 13500, AllocsPerOp: 12}
	for _, tc := range []struct {
		name      string
		after     Summary
		maxAllocs int64
		zero      bool
		pass      bool
	}{
		{"improved to zero allocs", Summary{NsPerOpMean: 10500, NsPerOpMin: 10300, AllocsPerOp: 0}, 0, true, true},
		{"slower beyond limit", Summary{NsPerOpMean: 16000, AllocsPerOp: 0}, 0, false, false},
		{"within noise", Summary{NsPerOpMean: 14500, AllocsPerOp: 12}, 0, false, true},
		{"alloc regression", Summary{NsPerOpMean: 13000, AllocsPerOp: 13}, 0, false, false},
		{"alloc regression within allowance", Summary{NsPerOpMean: 13000, AllocsPerOp: 13}, 1, false, true},
		{"alloc regression beyond allowance", Summary{NsPerOpMean: 13000, AllocsPerOp: 20}, 5, false, false},
		{"nonzero with zero required", Summary{NsPerOpMean: 13000, AllocsPerOp: 12}, 0, true, false},
	} {
		c := compare("BenchmarkNetworkTick", base, tc.after, 10, tc.maxAllocs, tc.zero)
		if c.Pass != tc.pass {
			t.Errorf("%s: pass = %v, want %v (failures: %v)", tc.name, c.Pass, tc.pass, c.Failures)
		}
	}
}

func TestCompareNegativeLimitDemandsImprovement(t *testing.T) {
	// The sharded-tick gate: -max-ns-regress -50 means the after side must be
	// at least 2x faster, not merely no slower.
	base := Summary{Runs: 3, NsPerOpMean: 240000, NsPerOpMin: 230000}
	fast := Summary{Runs: 3, NsPerOpMean: 70000, NsPerOpMin: 69000}
	if c := compare("BenchmarkNetworkTickSharded/32x32/shards=1", base, fast, -50, 0, false); !c.Pass {
		t.Errorf("2x+ speedup rejected: %v", c.Failures)
	}
	slow := Summary{Runs: 3, NsPerOpMean: 180000, NsPerOpMin: 175000}
	if c := compare("BenchmarkNetworkTickSharded/32x32/shards=1", base, slow, -50, 0, false); c.Pass {
		t.Error("25% speedup passed a gate demanding 50%")
	}
}
