// Command adaptnoc-sim runs a single simulation configuration and prints
// per-application and energy results.
//
// Usage:
//
//	adaptnoc-sim [-design name] [-gpu profile] [-cpu1 profile] [-cpu2 profile]
//	             [-apps "bfs:0,0,4,8:tree; canneal:4,0,4,4:cmesh"]
//	             [-cycles N | -budget N] [-epoch N] [-seed N] [-share N]
//	             [-trace] [-stats] [-layout] [-json]
//
// Designs: baseline, oscar, shortcut, ftby, ftby-pg, adapt-norl, adapt-noc.
// Topologies for -apps: mesh, cmesh, torus, tree, torus+tree.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"adaptnoc"
	"adaptnoc/internal/traffic"
)

func main() {
	design := flag.String("design", "adapt-noc", "network design to simulate")
	gpu := flag.String("gpu", "bfs", "GPU application profile (4x8 region)")
	cpu1 := flag.String("cpu1", "canneal", "first CPU application profile (4x4 region)")
	cpu2 := flag.String("cpu2", "ferret", "second CPU application profile (4x4 region)")
	cycles := flag.Int64("cycles", 500000, "cycles to simulate (latency mode)")
	budget := flag.Int64("budget", 0, "per-core instruction budget (execution-time mode)")
	epoch := flag.Int("epoch", 50000, "control epoch in cycles")
	seed := flag.Uint64("seed", 2021, "random seed")
	share := flag.Int("share", 0, "foreign MCs shared to the GPU application")
	appsFlag := flag.String("apps", "", `explicit workload, e.g. "bfs:0,0,4,8:tree; canneal:4,0,4,4:cmesh" (overrides -gpu/-cpu1/-cpu2)`)
	trace := flag.Bool("trace", false, "print the per-epoch controller trace (Adapt designs)")
	stats := flag.Bool("stats", false, "print tick work-list statistics (idle-skip rates)")
	layout := flag.Bool("layout", false, "render each subNoC's final physical configuration")
	jsonOut := flag.Bool("json", false, "emit results as JSON")
	listProfiles := flag.Bool("profiles", false, "list available application profiles and exit")
	flag.Parse()

	if *listProfiles {
		fmt.Println(strings.Join(traffic.Names(), "\n"))
		return
	}
	d, err := adaptnoc.ParseDesign(*design)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptnoc-sim:", err)
		os.Exit(1)
	}

	apps := adaptnoc.MixedWorkload(*gpu, *cpu1, *cpu2, *budget)
	apps[0].ShareMCs = *share
	if *appsFlag != "" {
		apps, err = adaptnoc.ParseAppSpecs(*appsFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptnoc-sim:", err)
			os.Exit(1)
		}
		for i := range apps {
			apps[i].InstrBudget = *budget
		}
	}
	cfg := adaptnoc.Config{
		Design:      d,
		Apps:        apps,
		Seed:        *seed,
		EpochCycles: *epoch,
	}
	if d == adaptnoc.DesignAdaptNoC {
		cfg.RL.Pretrained = adaptnoc.DefaultPolicy()
		if cfg.RL.Pretrained == nil {
			fmt.Fprintln(os.Stderr, "adaptnoc-sim: no embedded policy; training online")
			cfg.RL.Train = true
		}
	}
	s, err := adaptnoc.NewSim(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptnoc-sim:", err)
		os.Exit(1)
	}
	if *budget > 0 {
		if !s.RunUntilFinished(adaptnoc.Cycle(100 * *cycles)) {
			fmt.Fprintln(os.Stderr, "adaptnoc-sim: workload did not finish; raise -cycles")
			os.Exit(1)
		}
	} else {
		s.Run(adaptnoc.Cycle(*cycles))
	}
	res := s.Results()
	if *jsonOut {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptnoc-sim:", err)
			os.Exit(1)
		}
		fmt.Println(string(blob))
	} else {
		fmt.Print(res)
	}

	if *stats {
		st := s.TickStats()
		fmt.Printf("\n# tick stats: %d cycles; routers ticked %d skipped %d (%.1f%% skipped); channels ticked %d skipped %d (%.1f%% skipped)\n",
			st.Cycles, st.RouterTicks, st.RouterSkips, 100*st.RouterSkipRate(),
			st.ChannelTicks, st.ChannelSkips, 100*st.ChannelSkipRate())
	}
	if *layout {
		for i := range apps {
			fmt.Printf("\n# app %d (%s), final topology %v\n%s",
				i, apps[i].Profile, s.Topology(i), s.Layout(i))
		}
	}
	if *trace && s.Ctl != nil {
		for i, b := range s.Ctl.Bindings() {
			fmt.Printf("\n# epoch trace, app %d (%s)\n", i, apps[i].Profile)
			for _, rec := range b.Trace {
				fmt.Printf("ep%-3d kind=%-5v chose=%-5v net=%6.1f queue=%7.1f power=%5.0fmW reward=%6.2f\n",
					rec.Epoch, rec.Kind, rec.Chosen, rec.AvgNetLat, rec.AvgQueueLat, rec.PowerMW, rec.Reward)
			}
		}
	}
}
