// Command adaptnoc-sim runs a single simulation configuration and prints
// per-application and energy results.
//
// Usage:
//
//	adaptnoc-sim [-design name] [-gpu profile] [-cpu1 profile] [-cpu2 profile]
//	             [-apps "bfs:0,0,4,8:tree; canneal:4,0,4,4:cmesh"]
//	             [-cycles N | -budget N] [-epoch N] [-seed N] [-share N]
//	             [-record-trace out.trc] [-trace file.trc]
//	             [-flittrace out.json] [-traceformat chrome|ring] [-tracecap N]
//	             [-hist] [-verify N] [-pprof addr]
//	             [-epochtrace] [-stats] [-layout] [-json]
//	             [-checkpoint file] [-checkpoint-every N] [-resume file]
//	             [-faults N|file.json] [-fault-seed N]
//
// -checkpoint saves the complete simulation state to a file as the run
// advances (every -checkpoint-every cycles; 0 saves only at the end).
// -resume restores such a file — the checkpoint embeds its own
// configuration, so the workload flags are ignored — and runs the
// remaining cycles; the results are byte-identical to an uninterrupted
// run.
//
// -record-trace captures the run into an ADNOCTRC dependency trace:
// every packet with the inter-packet dependencies and compute gaps that
// produced it. -trace replays such a file in place of the synthetic
// workload — the recorded placements rebuild the app regions, the run
// advances until the trace drains, and replay self-paces (a slower
// fabric delays dependents instead of injecting an impossible schedule).
// Recording assumes a cycle-0 start, so -record-trace cannot combine
// with -resume.
//
// -faults injects a fault campaign: an integer generates that many seeded
// random link/router/VC failures over the run window (-fault-seed pins
// the campaign independently of the traffic seed), anything else is read
// as a JSON schedule file (an array of {cycle, kind, router, port, vc,
// repair} events). Combined with -resume, the schedule's strike cycles
// are relative to the resume point, so one warmed checkpoint replays
// under many campaigns.
//
// Designs: baseline, oscar, shortcut, ftby, ftby-pg, adapt-norl, adapt-noc.
// Topologies for -apps: mesh, cmesh, torus, tree, torus+tree.
//
// -flittrace captures every flit's lifecycle. The default chrome format
// loads directly into Perfetto (ui.perfetto.dev) or chrome://tracing; the
// ring format is a compact fixed-record binary that keeps only the most
// recent -tracecap events. -hist prints per-vnet latency percentiles and
// the busiest routers/links. -verify N runs the flit-conservation and
// credit-balance invariant checker every N cycles.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"

	"adaptnoc"
	"adaptnoc/internal/fault"
	"adaptnoc/internal/obs"
	"adaptnoc/internal/traffic"
)

// faultSchedule resolves the -faults flag: an integer generates that many
// seeded random faults over the run window; anything else names a JSON
// schedule file.
func faultSchedule(spec string, faultSeed, seed uint64, w, h int, cycles int64) ([]fault.Event, error) {
	if n, err := strconv.Atoi(spec); err == nil {
		if n < 0 {
			return nil, fmt.Errorf("-faults %d: fault count cannot be negative", n)
		}
		if faultSeed == 0 {
			faultSeed = seed + 1
		}
		return fault.Generate(n, faultSeed, w, h, cycles), nil
	}
	data, err := os.ReadFile(spec)
	if err != nil {
		return nil, fmt.Errorf("-faults: %w", err)
	}
	return fault.ParseSchedule(data)
}

func main() {
	design := flag.String("design", "adapt-noc", "network design to simulate")
	gpu := flag.String("gpu", "bfs", "GPU application profile (4x8 region)")
	cpu1 := flag.String("cpu1", "canneal", "first CPU application profile (4x4 region)")
	cpu2 := flag.String("cpu2", "ferret", "second CPU application profile (4x4 region)")
	cycles := flag.Int64("cycles", 500000, "cycles to simulate (latency mode)")
	budget := flag.Int64("budget", 0, "per-core instruction budget (execution-time mode)")
	epoch := flag.Int("epoch", 50000, "control epoch in cycles")
	seed := flag.Uint64("seed", 2021, "random seed")
	share := flag.Int("share", 0, "foreign MCs shared to the GPU application")
	appsFlag := flag.String("apps", "", `explicit workload, e.g. "bfs:0,0,4,8:tree; canneal:4,0,4,4:cmesh" (overrides -gpu/-cpu1/-cpu2)`)
	traceFile := flag.String("flittrace", "", "write a flit-level observability trace to this file")
	replayTrace := flag.String("trace", "", "replay an ADNOCTRC dependency trace (recorded with -record-trace) in place of the synthetic workload")
	recordTrace := flag.String("record-trace", "", "record the run into an ADNOCTRC dependency-trace file")
	traceFormat := flag.String("traceformat", "chrome", "flit-trace format: chrome (Perfetto JSON) or ring (binary ring buffer)")
	traceCap := flag.Int("tracecap", 0, "max trace events kept (0 = format default)")
	hist := flag.Bool("hist", false, "print per-vnet latency histograms and hotspot counters")
	verifyEvery := flag.Int64("verify", 0, "run the invariant checker every N cycles (0 = off)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	epochTrace := flag.Bool("epochtrace", false, "print the per-epoch controller trace (Adapt designs)")
	stats := flag.Bool("stats", false, "print tick work-list statistics (idle-skip rates)")
	layout := flag.Bool("layout", false, "render each subNoC's final physical configuration")
	jsonOut := flag.Bool("json", false, "emit results as JSON")
	listProfiles := flag.Bool("profiles", false, "list available application profiles and exit")
	width := flag.Int("width", 0, "chip width in tiles (0 = the paper's 8; multiples of 8 tile the default workload)")
	height := flag.Int("height", 0, "chip height in tiles (0 = the paper's 8)")
	shards := flag.Int("shards", 1, "network tick shards: 1 = serial, k > 1 = k parallel row bands, 0 = auto by chip size")
	checkpoint := flag.String("checkpoint", "", "save the simulation state to this file as the run advances")
	checkpointEvery := flag.Int64("checkpoint-every", 0, "cycles between checkpoint saves (0 = only at the end)")
	resumeFrom := flag.String("resume", "", "restore this checkpoint and continue (workload flags are ignored)")
	faults := flag.String("faults", "", "fault schedule: an integer generates that many seeded random faults, anything else is read as a JSON schedule file")
	faultSeed := flag.Uint64("fault-seed", 0, "seed for generated fault schedules (0 = derive from -seed)")
	flag.Parse()

	if *listProfiles {
		fmt.Println(strings.Join(traffic.Names(), "\n"))
		return
	}
	d, err := adaptnoc.ParseDesign(*design)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptnoc-sim:", err)
		os.Exit(1)
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "adaptnoc-sim: pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "adaptnoc-sim: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	if *recordTrace != "" && *resumeFrom != "" {
		fmt.Fprintln(os.Stderr, "adaptnoc-sim: -record-trace needs a cycle-0 start and cannot combine with -resume")
		os.Exit(1)
	}
	var s *adaptnoc.Sim
	var apps []adaptnoc.AppSpec
	if *resumeFrom != "" {
		s, err = adaptnoc.RestoreSimFromFile(*resumeFrom)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptnoc-sim:", err)
			os.Exit(1)
		}
		apps = s.Cfg.Apps // the checkpoint's own workload
		fmt.Fprintf(os.Stderr, "adaptnoc-sim: resumed %s (%s) at cycle %d\n",
			*resumeFrom, s.Cfg.Design, s.Kernel.Now())
		if *faults != "" {
			// The campaign workflow: restore one warmed checkpoint, replay
			// it under a schedule. Strike cycles are relative to the resume
			// point so one schedule works against any snapshot.
			sched, err := faultSchedule(*faults, *faultSeed, s.Cfg.Seed, s.Net.Cfg.Width, s.Net.Cfg.Height, *cycles)
			if err != nil {
				fmt.Fprintln(os.Stderr, "adaptnoc-sim:", err)
				os.Exit(1)
			}
			now := int64(s.Kernel.Now())
			for i := range sched {
				sched[i].Cycle += now
			}
			if err := s.ApplyFaultSchedule(sched); err != nil {
				fmt.Fprintln(os.Stderr, "adaptnoc-sim:", err)
				os.Exit(1)
			}
		}
	} else {
		w, h := *width, *height
		if w == 0 {
			w = 8
		}
		if h == 0 {
			h = 8
		}
		gridW, gridH := *width, *height
		if *replayTrace != "" {
			data, rerr := os.ReadFile(*replayTrace)
			if rerr != nil {
				fmt.Fprintln(os.Stderr, "adaptnoc-sim: -trace:", rerr)
				os.Exit(1)
			}
			var tw, th int
			apps, tw, th, err = adaptnoc.TraceWorkload(data)
			if err != nil {
				fmt.Fprintln(os.Stderr, "adaptnoc-sim:", err)
				os.Exit(1)
			}
			// The recorded grid sizes the replay chip unless -width/-height
			// explicitly picks a (larger) one.
			if gridW == 0 {
				gridW = tw
			}
			if gridH == 0 {
				gridH = th
			}
			w, h = gridW, gridH
		} else if w != 8 || h != 8 {
			// Larger chips tile the three-app mapping per 8×8 quadrant.
			apps = adaptnoc.TiledMixed(w, h, *budget)
			apps[0].ShareMCs = *share
		} else {
			apps = adaptnoc.MixedWorkload(*gpu, *cpu1, *cpu2, *budget)
			apps[0].ShareMCs = *share
		}
		if *appsFlag != "" && *replayTrace == "" {
			apps, err = adaptnoc.ParseAppSpecs(*appsFlag)
			if err != nil {
				fmt.Fprintln(os.Stderr, "adaptnoc-sim:", err)
				os.Exit(1)
			}
			for i := range apps {
				apps[i].InstrBudget = *budget
			}
		}
		cfg := adaptnoc.Config{
			Design:      d,
			Apps:        apps,
			Width:       gridW,
			Height:      gridH,
			Seed:        *seed,
			EpochCycles: *epoch,
		}
		if *faults != "" {
			cfg.Faults, err = faultSchedule(*faults, *faultSeed, *seed, w, h, *cycles)
			if err != nil {
				fmt.Fprintln(os.Stderr, "adaptnoc-sim:", err)
				os.Exit(1)
			}
		}
		if d == adaptnoc.DesignAdaptNoC {
			cfg.RL.Pretrained = adaptnoc.DefaultPolicy()
			if cfg.RL.Pretrained == nil {
				fmt.Fprintln(os.Stderr, "adaptnoc-sim: no embedded policy; training online")
				cfg.RL.Train = true
			}
		}
		s, err = adaptnoc.NewSim(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptnoc-sim:", err)
			os.Exit(1)
		}
		if *recordTrace != "" {
			if err := s.RecordTrace(); err != nil {
				fmt.Fprintln(os.Stderr, "adaptnoc-sim:", err)
				os.Exit(1)
			}
		}
	}

	// Sharding is an execution knob: any value computes the same results,
	// so it applies equally to fresh and resumed simulations.
	s.SetShards(*shards)

	// Observability: tracers are fanned out through a Tee so -trace and
	// -hist compose; the network pays one nil check per event when both
	// are off.
	var tee obs.Tee
	var chrome *obs.ChromeTracer
	var ring *obs.RingTracer
	if *traceFile != "" {
		switch *traceFormat {
		case "chrome":
			chrome = &obs.ChromeTracer{Cap: *traceCap}
			tee = append(tee, chrome)
		case "ring":
			capacity := *traceCap
			if capacity <= 0 {
				capacity = 1 << 20
			}
			ring = obs.NewRingTracer(capacity)
			tee = append(tee, ring)
		default:
			fmt.Fprintf(os.Stderr, "adaptnoc-sim: unknown -traceformat %q (want chrome or ring)\n", *traceFormat)
			os.Exit(1)
		}
	}
	var metrics *obs.Metrics
	if *hist {
		metrics = obs.NewMetrics()
		tee = append(tee, metrics)
	}
	switch len(tee) {
	case 0:
	case 1:
		s.Net.SetTracer(tee[0])
	default:
		s.Net.SetTracer(tee)
	}
	if *verifyEvery > 0 {
		s.Net.SetVerifier(*verifyEvery, obs.Verify)
	}

	// A trace replay is finite like a budgeted run: it ends when the
	// recorded stream drains, with -cycles scaling the safety cap.
	budgeted := *budget > 0 || *replayTrace != ""
	if *resumeFrom != "" {
		budgeted = false
		for _, a := range apps {
			if a.InstrBudget > 0 || len(a.TraceData) > 0 || a.Trace != "" {
				budgeted = true
				break
			}
		}
	}
	every := adaptnoc.Cycle(*checkpointEvery)
	if budgeted {
		maxCycles := adaptnoc.Cycle(100 * *cycles)
		var finished bool
		if *checkpoint != "" {
			finished, err = s.RunUntilFinishedCheckpointed(context.Background(),
				maxCycles-s.Kernel.Now(), *checkpoint, every)
			if err != nil {
				fmt.Fprintln(os.Stderr, "adaptnoc-sim:", err)
				os.Exit(1)
			}
		} else if remaining := maxCycles - s.Kernel.Now(); remaining > 0 {
			finished = s.RunUntilFinished(remaining)
		}
		if !finished && !s.Machine.AllFinished() {
			fmt.Fprintln(os.Stderr, "adaptnoc-sim: workload did not finish; raise -cycles")
			os.Exit(1)
		}
	} else {
		total := adaptnoc.Cycle(*cycles)
		if *checkpoint != "" {
			if err := s.RunContextCheckpointed(context.Background(),
				total-s.Kernel.Now(), *checkpoint, every); err != nil {
				fmt.Fprintln(os.Stderr, "adaptnoc-sim:", err)
				os.Exit(1)
			}
		} else if remaining := total - s.Kernel.Now(); remaining > 0 {
			s.Run(remaining)
		}
	}
	res := s.Results()
	if *jsonOut {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptnoc-sim:", err)
			os.Exit(1)
		}
		fmt.Println(string(blob))
	} else {
		fmt.Print(res)
	}

	if *traceFile != "" {
		if err := writeTrace(*traceFile, chrome, ring); err != nil {
			fmt.Fprintln(os.Stderr, "adaptnoc-sim:", err)
			os.Exit(1)
		}
	}
	if *recordTrace != "" {
		tr, err := s.FinishTrace()
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptnoc-sim:", err)
			os.Exit(1)
		}
		blob, err := adaptnoc.EncodeTrace(tr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptnoc-sim:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*recordTrace, blob, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "adaptnoc-sim:", err)
			os.Exit(1)
		}
		n := 0
		for _, a := range tr.Apps {
			n += len(a.Nodes)
		}
		fmt.Fprintf(os.Stderr, "adaptnoc-sim: recorded %d packets across %d apps to %s (%d bytes)\n",
			n, len(tr.Apps), *recordTrace, len(blob))
	}
	if metrics != nil {
		fmt.Println()
		metrics.Report(os.Stdout, int64(s.Kernel.Now()))
	}
	if *stats {
		st := s.TickStats()
		fmt.Printf("\n# tick stats: %d cycles; routers ticked %d skipped %d (%.1f%% skipped); channels ticked %d skipped %d (%.1f%% skipped)\n",
			st.Cycles, st.RouterTicks, st.RouterSkips, 100*st.RouterSkipRate(),
			st.ChannelTicks, st.ChannelSkips, 100*st.ChannelSkipRate())
	}
	if *layout {
		for i := range apps {
			fmt.Printf("\n# app %d (%s), final topology %v\n%s",
				i, apps[i].Profile, s.Topology(i), s.Layout(i))
		}
	}
	if *epochTrace && s.Ctl != nil {
		for i, b := range s.Ctl.Bindings() {
			fmt.Printf("\n# epoch trace, app %d (%s)\n", i, apps[i].Profile)
			for _, rec := range b.Trace {
				fmt.Printf("ep%-3d kind=%-5v chose=%-5v net=%6.1f queue=%7.1f power=%5.0fmW reward=%6.2f\n",
					rec.Epoch, rec.Kind, rec.Chosen, rec.AvgNetLat, rec.AvgQueueLat, rec.PowerMW, rec.Reward)
			}
		}
	}
}

func writeTrace(path string, chrome *obs.ChromeTracer, ring *obs.RingTracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch {
	case chrome != nil:
		if _, err := chrome.WriteTo(f); err != nil {
			return err
		}
		if chrome.Dropped > 0 {
			fmt.Fprintf(os.Stderr, "adaptnoc-sim: trace cap reached, dropped %d events (raise -tracecap)\n", chrome.Dropped)
		}
	case ring != nil:
		if _, err := ring.WriteTo(f); err != nil {
			return err
		}
		if ring.Total() > uint64(len(ring.Records())) {
			fmt.Fprintf(os.Stderr, "adaptnoc-sim: ring kept newest %d of %d events\n", len(ring.Records()), ring.Total())
		}
	}
	return f.Sync()
}
