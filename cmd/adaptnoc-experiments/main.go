// Command adaptnoc-experiments regenerates the paper's evaluation tables
// and figures (Section V) on the simulator.
//
// Usage:
//
//	adaptnoc-experiments [-quick] [-parallel n] [-fig list] [-benchjson file]
//	                     [-pprof addr] [-checkpoint dir] [-checkpoint-every n]
//	                     [-resume]
//
// -checkpoint persists every simulation's state to the named directory
// (content-addressed by canonical config, refreshed every
// -checkpoint-every cycles, kept after completion). -resume continues an
// interrupted suite from those files — completed runs fast-forward
// straight to their results — and the emitted tables are byte-identical
// either way.
//
// -fig selects a comma-separated subset: 7,8,9,10,11,12,13,14,15,16,17,
// 18,19, area, wiring, timing, chars (latency-throughput curves),
// ablation (design-choice ablations), switching (reconfiguration cost),
// faults (latency + survival rate vs fault count; -faults sets the
// counts), or "all" (default). The figure list lives in exp.Units, shared
// with the fleet coordinator so both render identical suites.
//
// -parallel bounds how many independent simulations run at once (0 = one
// per CPU, 1 = serial). Results are identical at any setting; see
// internal/runner for the determinism contract.
//
// -benchjson additionally times every selected figure twice — serial and
// at the requested parallelism — and writes the wall-clock comparison as
// machine-readable JSON (the emitted tables come from the parallel pass).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"adaptnoc"
	"adaptnoc/internal/exp"
)

// parseCounts parses the -faults flag: comma-separated non-negative fault
// counts for the fault-tolerance sweep.
func parseCounts(s string) ([]int, error) {
	var counts []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("-faults %q: want comma-separated non-negative counts", s)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// benchUnit is one figure's wall-clock record in the -benchjson output.
type benchUnit struct {
	Figure      string  `json:"figure"`
	SerialSec   float64 `json:"serial_sec"`
	ParallelSec float64 `json:"parallel_sec"`
	Speedup     float64 `json:"speedup"`
}

// benchFile is the -benchjson document.
type benchFile struct {
	Quick            bool        `json:"quick"`
	Seed             uint64      `json:"seed"`
	Parallelism      int         `json:"parallelism"`
	GOMAXPROCS       int         `json:"gomaxprocs"`
	Units            []benchUnit `json:"units"`
	TotalSerialSec   float64     `json:"total_serial_sec"`
	TotalParallelSec float64     `json:"total_parallel_sec"`
	Speedup          float64     `json:"speedup"`
}

func main() {
	quick := flag.Bool("quick", false, "reduced-fidelity runs (seconds instead of minutes)")
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	figs := flag.String("fig", "all", "comma-separated figures to regenerate")
	seed := flag.Uint64("seed", 0, "override the random seed (0 keeps the default)")
	parallel := flag.Int("parallel", 0, "simulations to run at once (0 = one per CPU, 1 = serial)")
	shards := flag.Int("shards", 1, "network tick shards per simulation: 1 = serial, k > 1 = k parallel row bands, 0 = auto by chip size")
	benchJSON := flag.String("benchjson", "", "write serial-vs-parallel wall-clock JSON to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	checkpoint := flag.String("checkpoint", "", "persist per-simulation checkpoints to this directory")
	checkpointEvery := flag.Int64("checkpoint-every", 0, "cycles between checkpoint saves (0 = only at the end of each run)")
	resume := flag.Bool("resume", false, "continue from checkpoints in the -checkpoint directory")
	faultCounts := flag.String("faults", "0,2,4,8", "fault counts for the faults unit (comma-separated)")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "adaptnoc-experiments: pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "adaptnoc-experiments: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	o := exp.DefaultOptions()
	if *quick {
		o = exp.QuickOptions()
	}
	if *seed != 0 {
		o.Seed = *seed
	}
	o.Parallelism = *parallel
	o.Shards = *shards
	if *shards == 0 {
		o.Shards = -1 // exp's auto-select sentinel (0 keeps the zero-value serial default)
	}
	o.CheckpointDir = *checkpoint
	o.CheckpointEvery = adaptnoc.Cycle(*checkpointEvery)
	o.Resume = *resume
	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "adaptnoc-experiments: -resume needs -checkpoint")
		os.Exit(2)
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "adaptnoc-experiments:", err)
		os.Exit(1)
	}
	emit := func(t exp.Table) {
		if *csvOut {
			if err := t.CSV(os.Stdout); err != nil {
				fail(err)
			}
			return
		}
		t.Print(os.Stdout)
	}

	counts, err := parseCounts(*faultCounts)
	if err != nil {
		fail(err)
	}
	params := exp.SuiteParams{
		Figs:        strings.Split(*figs, ","),
		Quick:       *quick,
		FaultCounts: counts,
	}
	units, err := exp.Units(params)
	if err != nil {
		fail(err)
	}

	var bench benchFile
	for _, u := range units {
		if *benchJSON != "" {
			serial := o
			serial.Parallelism = 1
			start := time.Now()
			if _, err := u.Run(serial); err != nil {
				fail(err)
			}
			serialSec := time.Since(start).Seconds()
			start = time.Now()
			ts, err := u.Run(o)
			if err != nil {
				fail(err)
			}
			parSec := time.Since(start).Seconds()
			rec := benchUnit{Figure: u.Key, SerialSec: serialSec, ParallelSec: parSec}
			if parSec > 0 {
				rec.Speedup = serialSec / parSec
			}
			bench.Units = append(bench.Units, rec)
			bench.TotalSerialSec += serialSec
			bench.TotalParallelSec += parSec
			for _, t := range ts {
				emit(t)
			}
			continue
		}
		ts, err := u.Run(o)
		if err != nil {
			fail(err)
		}
		for _, t := range ts {
			emit(t)
		}
	}

	if *benchJSON != "" {
		bench.Quick = *quick
		bench.Seed = o.Seed
		bench.Parallelism = *parallel
		bench.GOMAXPROCS = runtime.GOMAXPROCS(0)
		if bench.TotalParallelSec > 0 {
			bench.Speedup = bench.TotalSerialSec / bench.TotalParallelSec
		}
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			fail(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*benchJSON, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "adaptnoc-experiments: wrote %s (serial %.1fs, parallel %.1fs, speedup %.2fx)\n",
			*benchJSON, bench.TotalSerialSec, bench.TotalParallelSec, bench.Speedup)
	}
}
