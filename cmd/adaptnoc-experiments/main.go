// Command adaptnoc-experiments regenerates the paper's evaluation tables
// and figures (Section V) on the simulator.
//
// Usage:
//
//	adaptnoc-experiments [-quick] [-fig list]
//
// -fig selects a comma-separated subset: 7,8,9,10,11,12,13,14,15,16,17,
// 18,19, area, wiring, timing, chars (latency-throughput curves),
// ablation (design-choice ablations), switching (reconfiguration cost), or
// "all" (default, excluding chars).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"adaptnoc"
	"adaptnoc/internal/exp"
)

func main() {
	quick := flag.Bool("quick", false, "reduced-fidelity runs (seconds instead of minutes)")
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	figs := flag.String("fig", "all", "comma-separated figures to regenerate")
	seed := flag.Uint64("seed", 0, "override the random seed (0 keeps the default)")
	flag.Parse()

	o := exp.DefaultOptions()
	if *quick {
		o = exp.QuickOptions()
	}
	if *seed != 0 {
		o.Seed = *seed
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	sel := func(k string) bool { return all || want[k] }
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "adaptnoc-experiments:", err)
		os.Exit(1)
	}
	emit := func(t exp.Table) {
		if *csvOut {
			if err := t.CSV(os.Stdout); err != nil {
				fail(err)
			}
			return
		}
		t.Print(os.Stdout)
	}

	// Figs 7, 10-13 share the mixed-workload runs.
	if sel("7") || sel("10") || sel("11") || sel("12") || sel("13") {
		m, err := exp.RunMixed(o, "bfs", "canneal", "ferret")
		if err != nil {
			fail(err)
		}
		if sel("7") {
			emit(m.Fig7())
		}
		if sel("10") {
			emit(m.Fig10())
		}
		if sel("11") {
			emit(m.Fig11())
		}
		if sel("12") {
			emit(m.Fig12())
		}
		if sel("13") {
			emit(m.Fig13())
		}
	}
	type figFn struct {
		key string
		fn  func() (exp.Table, error)
	}
	for _, f := range []figFn{
		{"8", func() (exp.Table, error) { return exp.Fig8(o) }},
		{"9", func() (exp.Table, error) { return exp.Fig9(o) }},
		{"14", func() (exp.Table, error) { return exp.Fig14(o) }},
		{"15", func() (exp.Table, error) { return exp.Fig15(o) }},
		{"16", func() (exp.Table, error) { return exp.Fig16(o, *quick) }},
		{"17", func() (exp.Table, error) { return exp.Fig17(o) }},
		{"18", func() (exp.Table, error) { return exp.Fig18(o) }},
		{"19", func() (exp.Table, error) { return exp.Fig19(o) }},
	} {
		if !sel(f.key) {
			continue
		}
		t, err := f.fn()
		if err != nil {
			fail(err)
		}
		emit(t)
	}
	if sel("switching") {
		tab, err := exp.TabSwitching()
		if err != nil {
			fail(err)
		}
		emit(tab)
	}
	if sel("ablation") {
		tab, err := exp.Ablations(o)
		if err != nil {
			fail(err)
		}
		emit(tab)
	}
	if sel("chars") {
		cycles := 60000
		if *quick {
			cycles = 20000
		}
		tab, err := exp.CharacterizeTopologies(adaptnoc.Cycle(cycles), o.Seed)
		if err != nil {
			fail(err)
		}
		emit(tab)
	}
	if sel("area") {
		emit(exp.TabArea())
	}
	if sel("wiring") {
		emit(exp.TabWiring())
	}
	if sel("timing") {
		emit(exp.TabTiming())
	}
}
