// Command adaptnoc-train runs the offline DQN training of Section III-E
// and writes the trained prediction network as JSON.
//
// Usage:
//
//	adaptnoc-train [-rounds N] [-cycles N] [-epoch N] [-seed N] [-o weights.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"adaptnoc/internal/train"
)

func main() {
	o := train.DefaultOptions()
	rounds := flag.Int("rounds", o.Rounds, "passes over the training curriculum")
	cycles := flag.Int64("cycles", o.EpisodeCycles, "simulated cycles per episode")
	epoch := flag.Int("epoch", o.EpochCycles, "control epoch during training (cycles)")
	seed := flag.Uint64("seed", o.Seed, "random seed")
	out := flag.String("o", "weights.json", "output path for the trained network")
	quiet := flag.Bool("q", false, "suppress per-episode progress")
	flag.Parse()

	o.Rounds = *rounds
	o.EpisodeCycles = *cycles
	o.EpochCycles = *epoch
	o.Seed = *seed
	if !*quiet {
		o.Log = os.Stderr
	}

	agent, err := train.Train(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptnoc-train:", err)
		os.Exit(1)
	}
	blob, err := json.Marshal(agent.Prediction)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptnoc-train:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "adaptnoc-train:", err)
		os.Exit(1)
	}
	fmt.Printf("trained network written to %s (%d bytes, %d inferences, replay %d)\n",
		*out, len(blob), agent.Inferences, agent.Replay.Len())
}
