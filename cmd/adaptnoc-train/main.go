// Command adaptnoc-train runs the offline DQN training of Section III-E
// and writes the trained prediction network as JSON.
//
// Usage:
//
//	adaptnoc-train [-rounds N] [-cycles N] [-epoch N] [-seed N] [-o weights.json]
//	               [-checkpoint file] [-checkpoint-every N] [-resume]
//	               [-max-episodes N]
//
// With -checkpoint the trainer saves its full learning state every
// -checkpoint-every episodes; -resume continues from that file, producing
// an agent byte-identical to an uninterrupted run. -max-episodes bounds
// one session so long trainings can be split across invocations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"adaptnoc/internal/train"
)

func main() {
	o := train.DefaultOptions()
	rounds := flag.Int("rounds", o.Rounds, "passes over the training curriculum")
	cycles := flag.Int64("cycles", o.EpisodeCycles, "simulated cycles per episode")
	epoch := flag.Int("epoch", o.EpochCycles, "control epoch during training (cycles)")
	seed := flag.Uint64("seed", o.Seed, "random seed")
	out := flag.String("o", "weights.json", "output path for the trained network")
	quiet := flag.Bool("q", false, "suppress per-episode progress")
	checkpoint := flag.String("checkpoint", "", "save training state to this file as episodes complete")
	every := flag.Int("checkpoint-every", 1, "episodes between checkpoint saves")
	resume := flag.Bool("resume", false, "continue from the -checkpoint file when it exists")
	maxEpisodes := flag.Int("max-episodes", 0, "stop after this many episodes this invocation (0 = all remaining)")
	flag.Parse()

	o.Rounds = *rounds
	o.EpisodeCycles = *cycles
	o.EpochCycles = *epoch
	o.Seed = *seed
	o.CheckpointPath = *checkpoint
	o.CheckpointEvery = *every
	o.Resume = *resume
	o.MaxEpisodes = *maxEpisodes
	if !*quiet {
		o.Log = os.Stderr
	}
	if (*resume || *maxEpisodes > 0) && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "adaptnoc-train: -resume and -max-episodes need -checkpoint")
		os.Exit(2)
	}

	agent, err := train.Train(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptnoc-train:", err)
		os.Exit(1)
	}
	blob, err := json.Marshal(agent.Prediction)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptnoc-train:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "adaptnoc-train:", err)
		os.Exit(1)
	}
	fmt.Printf("trained network written to %s (%d bytes, %d inferences, replay %d)\n",
		*out, len(blob), agent.Inferences, agent.Replay.Len())
}
