// Command adaptnoc-fleet runs the distributed-experiment coordinator:
// POST a suite manifest to /v1/suites and the coordinator decomposes it
// into content-addressed work items, schedules them across registered
// adaptnoc-serve workers (leases, retries, work stealing, checkpoint
// handoff from dead nodes), and serves the merged tables — byte-identical
// to a local adaptnoc-experiments run of the same suite. See README.md
// ("Fleet") for the API walkthrough.
//
//	adaptnoc-fleet -addr :8090 -workers http://node1:8080,http://node2:8080
//
// Workers can also self-register: run adaptnoc-serve with
// -enroll http://coordinator:8090 and it registers and heartbeats itself.
//
// -smoke is the CI self-test: coordinator plus two in-process workers on
// loopback ports, a small suite driven through the full HTTP surface,
// output compared byte-for-byte against a local run, and a resubmission
// verified to complete without a single new dispatch.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"adaptnoc/internal/fleet"
)

func main() {
	var (
		addr        = flag.String("addr", ":8090", "listen address")
		workers     = flag.String("workers", "", "comma-separated serve worker URLs to register at startup")
		lease       = flag.Duration("lease", 15*time.Second, "job lease interval (a dead coordinator frees its jobs within one)")
		poll        = flag.Duration("poll", 250*time.Millisecond, "job polling and lease-renewal period")
		stealAfter  = flag.Duration("steal-after", time.Minute, "duplicate a slow job onto an idle worker after this long (negative disables)")
		maxAttempts = flag.Int("max-attempts", 8, "dispatch attempts per work item before it fails permanently")
		parallel    = flag.Int("parallel", 0, "evaluations in flight per suite (0 = one per CPU)")
		ttl         = flag.Duration("heartbeat-ttl", 15*time.Second, "how long a worker stays schedulable after its last heartbeat or probe")
		smoke       = flag.Bool("smoke", false, "run the loopback self-test and exit")
	)
	flag.Parse()

	if *smoke {
		if err := runSmoke(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("fleet smoke: ok")
		return
	}

	c := fleet.New(fleet.Options{
		Lease:        *lease,
		Poll:         *poll,
		StealAfter:   *stealAfter,
		MaxAttempts:  *maxAttempts,
		Parallelism:  *parallel,
		HeartbeatTTL: *ttl,
		Logf:         log.Printf,
	})
	for _, u := range strings.Split(*workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			c.AddWorker(u)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: c.Handler()}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	log.Printf("adaptnoc-fleet listening on %s", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("stopping...")
	c.Close()
	hs.Shutdown(context.Background())
	log.Printf("stopped")
}
