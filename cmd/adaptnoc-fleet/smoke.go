package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"adaptnoc/internal/exp"
	"adaptnoc/internal/fleet"
	"adaptnoc/internal/serve"
)

// smokeManifest is the self-test suite: one remote-evaluated sweep (five
// simulations, Fig. 19's exploration-rate sweep) plus one closed-form
// table, so both the fleet path and the coordinator-local path render.
func smokeManifest() fleet.Manifest {
	return fleet.Manifest{Figs: []string{"19", "area"}, Quick: true}
}

// runSmoke drills the whole fleet surface on loopback ports: two real
// serve daemons register over HTTP, a suite goes through POST /v1/suites,
// and the merged output must be byte-identical to a local run of the same
// manifest. A resubmission must then complete from the coordinator's
// completed items without a single new dispatch.
func runSmoke() error {
	var stops []func()
	defer func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}()

	workerURLs := make([]string, 2)
	for i := range workerURLs {
		srv := serve.New(serve.Options{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		workerURLs[i] = "http://" + ln.Addr().String()
		stops = append(stops, func() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			srv.Shutdown(ctx)
			hs.Shutdown(context.Background())
		})
	}

	c := fleet.New(fleet.Options{
		Lease:        2 * time.Second,
		Poll:         50 * time.Millisecond,
		HeartbeatTTL: 2 * time.Second,
		JitterSeed:   1,
	})
	stops = append(stops, c.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: c.Handler()}
	go hs.Serve(ln)
	stops = append(stops, func() { hs.Shutdown(context.Background()) })
	base := "http://" + ln.Addr().String()

	for _, u := range workerURLs {
		blob, _ := json.Marshal(map[string]string{"url": u})
		resp, err := http.Post(base+"/v1/workers", "application/json", bytes.NewReader(blob))
		if err != nil {
			return fmt.Errorf("smoke: registering %s: %w", u, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return fmt.Errorf("smoke: registering %s: %s", u, resp.Status)
		}
	}

	// The reference: the exact planner this process would run locally.
	m := smokeManifest()
	ref, err := renderLocal(m)
	if err != nil {
		return fmt.Errorf("smoke: local reference: %w", err)
	}

	out, err := submitAndWait(base, m, 4*time.Minute)
	if err != nil {
		return fmt.Errorf("smoke: %w", err)
	}
	if !bytes.Equal(out, ref) {
		return fmt.Errorf("smoke: fleet output differs from local run (%d vs %d bytes)", len(out), len(ref))
	}
	dispatches, err := counter(base, "adaptnoc_fleet_dispatches_total")
	if err != nil {
		return fmt.Errorf("smoke: %w", err)
	}
	if dispatches == 0 {
		return fmt.Errorf("smoke: suite completed without dispatching to workers")
	}
	if local, _ := counter(base, "adaptnoc_fleet_local_runs_total"); local != 0 {
		return fmt.Errorf("smoke: %d evaluations fell back to the coordinator with workers registered", local)
	}

	// Resubmission: completed items answer instantly; dispatch count must
	// not move.
	out2, err := submitAndWait(base, m, time.Minute)
	if err != nil {
		return fmt.Errorf("smoke: resubmission: %w", err)
	}
	if !bytes.Equal(out2, ref) {
		return fmt.Errorf("smoke: resubmitted suite output differs")
	}
	after, err := counter(base, "adaptnoc_fleet_dispatches_total")
	if err != nil {
		return fmt.Errorf("smoke: %w", err)
	}
	if after != dispatches {
		return fmt.Errorf("smoke: resubmission dispatched %d new jobs, want 0", after-dispatches)
	}
	return nil
}

// renderLocal runs the manifest's suite in-process and renders it the way
// the coordinator does — the byte-identity reference.
func renderLocal(m fleet.Manifest) ([]byte, error) {
	tables, err := exp.RunSuite(m.Options(), m.Params())
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	for _, t := range tables {
		t.Print(&buf)
	}
	return buf.Bytes(), nil
}

// submitAndWait posts a suite, polls it to completion, and fetches the
// rendered output.
func submitAndWait(base string, m fleet.Manifest, timeout time.Duration) ([]byte, error) {
	blob, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+"/v1/suites", "application/json", bytes.NewReader(blob))
	if err != nil {
		return nil, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("submit suite: %s: %s", resp.Status, body)
	}
	var info fleet.SuiteInfo
	if err := json.Unmarshal(body, &info); err != nil {
		return nil, err
	}

	deadline := time.Now().Add(timeout)
	for info.State == fleet.SuiteRunning {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("suite %s stuck (%d/%d items)", info.ID, info.Done, info.Started)
		}
		time.Sleep(100 * time.Millisecond)
		resp, err := http.Get(base + "/v1/suites/" + info.ID)
		if err != nil {
			return nil, err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(body, &info); err != nil {
			return nil, err
		}
	}
	if info.State != fleet.SuiteDone {
		return nil, fmt.Errorf("suite %s ended %s: %s", info.ID, info.State, info.Error)
	}

	resp, err = http.Get(base + "/v1/suites/" + info.ID + "/output")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fetch output: %s: %s", resp.Status, out)
	}
	return out, nil
}

// counter scrapes one counter from the coordinator's /metrics exposition.
func counter(base, name string) (int64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			return strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
		}
	}
	return 0, fmt.Errorf("metric %s not found", name)
}
