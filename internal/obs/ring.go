package obs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"adaptnoc/internal/noc"
)

// RecordKind labels one ring-buffer record.
type RecordKind uint8

// Ring record kinds, one per tracer event.
const (
	RecEnqueue RecordKind = iota + 1
	RecInject
	RecArrive
	RecRoute
	RecVCAlloc
	RecTraverse
	RecLink
	RecEject
	RecDeliver
)

// String implements fmt.Stringer.
func (k RecordKind) String() string {
	switch k {
	case RecEnqueue:
		return "enqueue"
	case RecInject:
		return "inject"
	case RecArrive:
		return "arrive"
	case RecRoute:
		return "route"
	case RecVCAlloc:
		return "vcalloc"
	case RecTraverse:
		return "traverse"
	case RecLink:
		return "link"
	case RecEject:
		return "eject"
	case RecDeliver:
		return "deliver"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record is one fixed-size lifecycle event. Loc is the router or NI tile
// for router/NI events and the link index (see RingTracer.LinkNames) for
// RecLink. Aux carries the event-specific detail: input port for
// RecArrive, output port for RecRoute/RecTraverse, granted VC for
// RecVCAlloc, and the wire latency for RecLink.
type Record struct {
	Cycle int64
	Pkt   uint64
	Loc   int32
	Aux   int32
	Seq   uint16
	Kind  RecordKind
	_     [5]byte // pad to 32 bytes so the on-disk layout is stable
}

// RingTracer keeps the last N lifecycle events as fixed-size records — a
// flight recorder for multi-million-cycle runs where full JSON tracing is
// too heavy. The binary dump is ~32 bytes/event regardless of run length.
type RingTracer struct {
	recs  []Record
	next  int
	wrap  bool
	total uint64

	linkIDs   map[*noc.Channel]int32
	linkNames []string
}

// NewRingTracer returns a tracer retaining the last capacity events.
func NewRingTracer(capacity int) *RingTracer {
	if capacity < 1 {
		panic("obs: ring capacity must be >= 1")
	}
	return &RingTracer{
		recs:    make([]Record, capacity),
		linkIDs: make(map[*noc.Channel]int32),
	}
}

// Total returns the number of events observed (retained or evicted).
func (r *RingTracer) Total() uint64 { return r.total }

// LinkNames returns the name table indexed by RecLink records' Loc.
func (r *RingTracer) LinkNames() []string { return r.linkNames }

// Records returns the retained records oldest-first.
func (r *RingTracer) Records() []Record {
	if !r.wrap {
		return append([]Record(nil), r.recs[:r.next]...)
	}
	out := make([]Record, 0, len(r.recs))
	out = append(out, r.recs[r.next:]...)
	return append(out, r.recs[:r.next]...)
}

func (r *RingTracer) add(rec Record) {
	r.recs[r.next] = rec
	r.next++
	r.total++
	if r.next == len(r.recs) {
		r.next = 0
		r.wrap = true
	}
}

func (r *RingTracer) linkID(ch *noc.Channel) int32 {
	if id, ok := r.linkIDs[ch]; ok {
		return id
	}
	id := int32(len(r.linkNames))
	r.linkIDs[ch] = id
	r.linkNames = append(r.linkNames, fmt.Sprintf("%v->%v %v", ch.From, ch.To, ch.Kind))
	return id
}

// PacketEnqueued implements noc.Tracer.
func (r *RingTracer) PacketEnqueued(p *noc.Packet, now Cycle) {
	r.add(Record{Kind: RecEnqueue, Cycle: int64(now), Pkt: p.ID, Loc: int32(p.Src), Aux: int32(p.Dst)})
}

// PacketInjected implements noc.Tracer.
func (r *RingTracer) PacketInjected(p *noc.Packet, router noc.NodeID, now Cycle) {
	r.add(Record{Kind: RecInject, Cycle: int64(now), Pkt: p.ID, Loc: int32(router)})
}

// FlitArrived implements noc.Tracer.
func (r *RingTracer) FlitArrived(router noc.NodeID, port int, f *noc.Flit, now Cycle) {
	r.add(Record{Kind: RecArrive, Cycle: int64(now), Pkt: f.Pkt.ID, Seq: uint16(f.Seq), Loc: int32(router), Aux: int32(port)})
}

// FlitRouted implements noc.Tracer.
func (r *RingTracer) FlitRouted(router noc.NodeID, f *noc.Flit, outPort int, now Cycle) {
	r.add(Record{Kind: RecRoute, Cycle: int64(now), Pkt: f.Pkt.ID, Seq: uint16(f.Seq), Loc: int32(router), Aux: int32(outPort)})
}

// FlitVCAllocated implements noc.Tracer.
func (r *RingTracer) FlitVCAllocated(router noc.NodeID, f *noc.Flit, outVC int, now Cycle) {
	r.add(Record{Kind: RecVCAlloc, Cycle: int64(now), Pkt: f.Pkt.ID, Seq: uint16(f.Seq), Loc: int32(router), Aux: int32(outVC)})
}

// FlitTraversed implements noc.Tracer.
func (r *RingTracer) FlitTraversed(router noc.NodeID, outPort int, f *noc.Flit, now Cycle) {
	r.add(Record{Kind: RecTraverse, Cycle: int64(now), Pkt: f.Pkt.ID, Seq: uint16(f.Seq), Loc: int32(router), Aux: int32(outPort)})
}

// LinkTraversed implements noc.Tracer.
func (r *RingTracer) LinkTraversed(ch *noc.Channel, f *noc.Flit, sent, arrived Cycle) {
	r.add(Record{Kind: RecLink, Cycle: int64(arrived), Pkt: f.Pkt.ID, Seq: uint16(f.Seq),
		Loc: r.linkID(ch), Aux: int32(arrived - sent)})
}

// FlitEjected implements noc.Tracer.
func (r *RingTracer) FlitEjected(ni noc.NodeID, f *noc.Flit, now Cycle) {
	r.add(Record{Kind: RecEject, Cycle: int64(now), Pkt: f.Pkt.ID, Seq: uint16(f.Seq), Loc: int32(ni)})
}

// PacketDelivered implements noc.Tracer.
func (r *RingTracer) PacketDelivered(p *noc.Packet, now Cycle) {
	r.add(Record{Kind: RecDeliver, Cycle: int64(now), Pkt: p.ID, Loc: int32(p.Dst)})
}

// ringMagic opens every binary ring dump.
const ringMagic = "ANOCRNG1"

// RingDump is a decoded binary ring-buffer file.
type RingDump struct {
	Total     uint64 // events observed over the whole run
	LinkNames []string
	Records   []Record // oldest first
}

// WriteTo dumps the ring as a self-describing little-endian binary file:
// magic, total event count, link-name table, then the retained records
// oldest-first.
func (r *RingTracer) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &countWriter{w: bw}
	if _, err := io.WriteString(cw, ringMagic); err != nil {
		return cw.n, err
	}
	recs := r.Records()
	hdr := []uint64{r.total, uint64(len(r.linkNames)), uint64(len(recs))}
	if err := binary.Write(cw, binary.LittleEndian, hdr); err != nil {
		return cw.n, err
	}
	for _, name := range r.linkNames {
		if err := binary.Write(cw, binary.LittleEndian, uint32(len(name))); err != nil {
			return cw.n, err
		}
		if _, err := io.WriteString(cw, name); err != nil {
			return cw.n, err
		}
	}
	if err := binary.Write(cw, binary.LittleEndian, recs); err != nil {
		return cw.n, err
	}
	return cw.n, bw.Flush()
}

// ReadRing decodes a dump produced by RingTracer.WriteTo.
func ReadRing(rd io.Reader) (*RingDump, error) {
	br := bufio.NewReader(rd)
	magic := make([]byte, len(ringMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("obs: reading ring magic: %w", err)
	}
	if string(magic) != ringMagic {
		return nil, fmt.Errorf("obs: bad ring magic %q", magic)
	}
	var hdr [3]uint64
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("obs: reading ring header: %w", err)
	}
	total, nNames, nRecs := hdr[0], hdr[1], hdr[2]
	const sane = 1 << 30
	if nNames > sane || nRecs > sane {
		return nil, fmt.Errorf("obs: implausible ring header (%d names, %d records)", nNames, nRecs)
	}
	d := &RingDump{Total: total, LinkNames: make([]string, nNames)}
	for i := range d.LinkNames {
		var ln uint32
		if err := binary.Read(br, binary.LittleEndian, &ln); err != nil {
			return nil, fmt.Errorf("obs: reading link name %d: %w", i, err)
		}
		if ln > 4096 {
			return nil, fmt.Errorf("obs: implausible link name length %d", ln)
		}
		buf := make([]byte, ln)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("obs: reading link name %d: %w", i, err)
		}
		d.LinkNames[i] = string(buf)
	}
	d.Records = make([]Record, nRecs)
	if err := binary.Read(br, binary.LittleEndian, d.Records); err != nil {
		return nil, fmt.Errorf("obs: reading ring records: %w", err)
	}
	return d, nil
}
