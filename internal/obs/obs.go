// Package obs is the observability layer of the simulator: flit lifecycle
// tracing (Chrome trace_event export and a compact binary ring buffer),
// per-vnet latency histograms with tail percentiles, per-router/per-link
// utilization counters, and a network-wide invariant checker.
//
// Everything here hangs off noc.Network's nil-checkable Tracer/VerifyFunc
// hooks, so a simulation that installs nothing pays one predicted branch
// per event site and nothing else.
package obs

import (
	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
)

// Cycle aliases sim.Cycle to keep the tracer signatures readable here.
type Cycle = sim.Cycle

// Tee fans every tracer event out to each element in order, letting a run
// collect a Chrome trace and histogram metrics at the same time.
type Tee []noc.Tracer

// PacketEnqueued implements noc.Tracer.
func (t Tee) PacketEnqueued(p *noc.Packet, now Cycle) {
	for _, x := range t {
		x.PacketEnqueued(p, now)
	}
}

// PacketInjected implements noc.Tracer.
func (t Tee) PacketInjected(p *noc.Packet, router noc.NodeID, now Cycle) {
	for _, x := range t {
		x.PacketInjected(p, router, now)
	}
}

// FlitArrived implements noc.Tracer.
func (t Tee) FlitArrived(router noc.NodeID, port int, f *noc.Flit, now Cycle) {
	for _, x := range t {
		x.FlitArrived(router, port, f, now)
	}
}

// FlitRouted implements noc.Tracer.
func (t Tee) FlitRouted(router noc.NodeID, f *noc.Flit, outPort int, now Cycle) {
	for _, x := range t {
		x.FlitRouted(router, f, outPort, now)
	}
}

// FlitVCAllocated implements noc.Tracer.
func (t Tee) FlitVCAllocated(router noc.NodeID, f *noc.Flit, outVC int, now Cycle) {
	for _, x := range t {
		x.FlitVCAllocated(router, f, outVC, now)
	}
}

// FlitTraversed implements noc.Tracer.
func (t Tee) FlitTraversed(router noc.NodeID, outPort int, f *noc.Flit, now Cycle) {
	for _, x := range t {
		x.FlitTraversed(router, outPort, f, now)
	}
}

// LinkTraversed implements noc.Tracer.
func (t Tee) LinkTraversed(ch *noc.Channel, f *noc.Flit, sent, arrived Cycle) {
	for _, x := range t {
		x.LinkTraversed(ch, f, sent, arrived)
	}
}

// FlitEjected implements noc.Tracer.
func (t Tee) FlitEjected(ni noc.NodeID, f *noc.Flit, now Cycle) {
	for _, x := range t {
		x.FlitEjected(ni, f, now)
	}
}

// PacketDelivered implements noc.Tracer.
func (t Tee) PacketDelivered(p *noc.Packet, now Cycle) {
	for _, x := range t {
		x.PacketDelivered(p, now)
	}
}
