package obs_test

import (
	"testing"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/obs"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/topology"
)

// benchNet builds a 4x4 mesh under uniform load for overhead measurement.
func benchNet(b *testing.B) (*noc.Network, *sim.Kernel) {
	b.Helper()
	cfg := noc.DefaultConfig()
	cfg.Width, cfg.Height = 4, 4
	net := noc.NewNetwork(cfg)
	topology.BuildMesh(net)
	k := sim.NewKernel()
	k.Register(net)
	return net, k
}

func driveLoad(net *noc.Network, k *sim.Kernel, cycles int) {
	nodes := net.Cfg.NumNodes()
	for c := 0; c < cycles; c += 8 {
		for src := 0; src < nodes; src += 3 {
			dst := (src + 5) % nodes
			net.Enqueue(net.NewPacket(noc.NodeID(src), noc.NodeID(dst),
				noc.ClassData, noc.VNet(src%noc.NumVNets), 0), k.Now())
		}
		k.Run(sim.Cycle(int64(k.Now()) + 8))
	}
}

// BenchmarkTickTraced measures the loaded tick loop with the full tracer
// fan-out installed (chrome + metrics through a Tee) — the worst-case
// per-event cost. Compare against BenchmarkTickUntraced for the overhead.
func BenchmarkTickTraced(b *testing.B) {
	net, k := benchNet(b)
	tr := obs.NewChromeTracer()
	net.SetTracer(obs.Tee{tr, obs.NewMetrics()})
	b.ResetTimer()
	driveLoad(net, k, b.N)
}

// BenchmarkTickUntraced is the identical workload with tracing disabled:
// each event site is a single nil check.
func BenchmarkTickUntraced(b *testing.B) {
	net, k := benchNet(b)
	b.ResetTimer()
	driveLoad(net, k, b.N)
}
