package obs

import (
	"fmt"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
)

// Verify checks network-wide conservation invariants at a cycle boundary.
// It is valid at ANY cycle, not just at quiescence, so it can be installed
// as a periodic checker (Network.SetVerifier) under live traffic:
//
//  1. Flit conservation: every flit ever injected is either ejected or
//     still in flight (router buffers + channel queues).
//  2. Packet conservation once drained: with nothing in flight and no
//     packet queued, enqueued == delivered.
//  3. Credit balance: for every channel, upstream credits + downstream
//     occupancy + in-flight flits/credits equal the buffer depth per VC
//     (noc.Network.CheckCreditInvariant).
//  4. Timestamp sanity: every in-flight flit's packet was enqueued before
//     it was injected, and neither stamp lies in the future.
//  5. VC FIFO ordering: flits of one packet sit in consecutive-Seq order
//     inside any input VC (virtual cut-through forbids interleaving).
//
// The signature matches noc.VerifyFunc.
func Verify(n *noc.Network, now sim.Cycle) error {
	inFlight := int64(n.InFlightFlits())
	if n.TotalFlitsInjected != n.TotalFlitsEjected+inFlight {
		return fmt.Errorf("obs: flit conservation broken: injected %d != ejected %d + in-flight %d",
			n.TotalFlitsInjected, n.TotalFlitsEjected, inFlight)
	}
	// Fault-aware packet conservation: packets a fault made undeliverable
	// are explicitly dropped-and-accounted (TotalDropped), never silently
	// lost, so at quiescence delivered + dropped covers everything ever
	// enqueued.
	if inFlight == 0 && n.Quiescent() && n.PendingPackets() == 0 &&
		n.TotalEnqueued != n.TotalDelivered+n.TotalDropped {
		return fmt.Errorf("obs: packet conservation broken at quiescence: enqueued %d != delivered %d + dropped %d",
			n.TotalEnqueued, n.TotalDelivered, n.TotalDropped)
	}
	if err := n.CheckCreditInvariant(); err != nil {
		return err
	}

	var err error
	n.ForEachInFlightFlit(func(f *noc.Flit) {
		if err != nil {
			return
		}
		p := f.Pkt
		switch {
		case p.EnqueuedAt > p.InjectedAt:
			err = fmt.Errorf("obs: %v flit %d injected at %d before enqueue at %d",
				p, f.Seq, p.InjectedAt, p.EnqueuedAt)
		case p.InjectedAt > now:
			err = fmt.Errorf("obs: %v flit %d injected at %d, in flight at %d",
				p, f.Seq, p.InjectedAt, now)
		}
	})
	if err != nil {
		return err
	}

	for _, r := range n.Routers() {
		var (
			lastPort, lastVC = -1, -1
			lastPkt          *noc.Packet
			lastSeq          int
		)
		r.ForEachBufferedFlit(func(port, vc int, f *noc.Flit) {
			if err != nil {
				return
			}
			if port == lastPort && vc == lastVC && f.Pkt == lastPkt && f.Seq != lastSeq+1 {
				err = fmt.Errorf("obs: %v flits out of order in router %d port %d vc %d: seq %d after %d",
					f.Pkt, r.ID, port, vc, f.Seq, lastSeq)
			}
			lastPort, lastVC, lastPkt, lastSeq = port, vc, f.Pkt, f.Seq
		})
		if err != nil {
			return err
		}
	}
	return nil
}
