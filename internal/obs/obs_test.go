package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/obs"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/topology"
)

// rig builds a 4x4 mesh with 1:1 NI attachments and XY routing.
func rig(t *testing.T) (*noc.Network, *sim.Kernel) {
	t.Helper()
	cfg := noc.DefaultConfig()
	cfg.Width, cfg.Height = 4, 4
	net := noc.NewNetwork(cfg)
	topology.BuildMesh(net)
	k := sim.NewKernel()
	k.Register(net)
	return net, k
}

// load enqueues a deterministic all-to-all-ish workload at cycle 0.
func load(net *noc.Network, n int) {
	nodes := noc.NodeID(net.Cfg.NumNodes())
	for i := 0; i < n; i++ {
		src := noc.NodeID(i) % nodes
		dst := (src + noc.NodeID(1+i*7%int(nodes-1))) % nodes
		if src == dst {
			dst = (dst + 1) % nodes
		}
		class := noc.ClassCoherence
		if i%3 == 0 {
			class = noc.ClassData
		}
		net.Enqueue(net.NewPacket(src, dst, class, noc.VNet(i%noc.NumVNets), 0), 0)
	}
}

func drain(t *testing.T, net *noc.Network, k *sim.Kernel, cycles sim.Cycle) {
	t.Helper()
	k.Run(cycles)
	if !net.Quiescent() || net.PendingPackets() != 0 {
		t.Fatalf("network did not drain in %d cycles", cycles)
	}
}

func TestChromeTracerProducesValidTrace(t *testing.T) {
	net, k := rig(t)
	tr := obs.NewChromeTracer()
	net.SetTracer(tr)
	load(net, 40)
	drain(t, net, k, 2000)

	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var spans, instants, meta int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
			if e.Dur < 0 || e.Ts < 0 {
				t.Fatalf("span %q has negative ts/dur: %+v", e.Name, e)
			}
		case "i":
			instants++
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %q in %+v", e.Ph, e)
		}
	}
	if spans == 0 || instants == 0 || meta == 0 {
		t.Fatalf("trace missing event kinds: %d spans, %d instants, %d metadata", spans, instants, meta)
	}
	if tr.Dropped != 0 {
		t.Fatalf("dropped %d events below cap", tr.Dropped)
	}
}

func TestChromeTracerHonoursCap(t *testing.T) {
	net, k := rig(t)
	tr := obs.NewChromeTracer()
	tr.Cap = 10
	net.SetTracer(tr)
	load(net, 40)
	drain(t, net, k, 2000)
	if tr.Events() != 10 || tr.Dropped == 0 {
		t.Fatalf("cap not enforced: %d events, %d dropped", tr.Events(), tr.Dropped)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("capped trace is not valid JSON")
	}
}

func TestMetricsHistogramsAndReport(t *testing.T) {
	net, k := rig(t)
	m := obs.NewMetrics()
	net.SetTracer(m)
	load(net, 60)
	drain(t, net, k, 3000)

	if m.Packets != 60 {
		t.Fatalf("metrics saw %d packets, want 60", m.Packets)
	}
	for v := 0; v < noc.NumVNets; v++ {
		h := m.Total[v]
		if h.N() == 0 {
			t.Fatalf("vnet %d histogram empty", v)
		}
		p50, p95, p99 := h.Percentile(50), h.Percentile(95), h.Percentile(99)
		if p50 > p95 || p95 > p99 {
			t.Fatalf("vnet %d percentiles not monotone: p50=%d p95=%d p99=%d", v, p50, p95, p99)
		}
	}
	var buf bytes.Buffer
	m.Report(&buf, 3000)
	out := buf.String()
	for _, want := range []string{"p50=", "p95=", "p99=", "busiest routers", "busiest links", "flits/cycle"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRingTracerWrapAndRoundTrip(t *testing.T) {
	net, k := rig(t)
	tr := obs.NewRingTracer(256)
	net.SetTracer(tr)
	load(net, 40)
	drain(t, net, k, 2000)

	if tr.Total() <= 256 {
		t.Fatalf("want enough events to wrap, got %d", tr.Total())
	}
	recs := tr.Records()
	if len(recs) != 256 {
		t.Fatalf("retained %d records, want 256", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Cycle < recs[i-1].Cycle {
			t.Fatalf("records not in chronological order at %d: %d < %d", i, recs[i].Cycle, recs[i-1].Cycle)
		}
	}

	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := obs.ReadRing(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Total != tr.Total() || len(d.Records) != len(recs) {
		t.Fatalf("round trip mismatch: total %d/%d, records %d/%d",
			d.Total, tr.Total(), len(d.Records), len(recs))
	}
	for i := range recs {
		if d.Records[i] != recs[i] {
			t.Fatalf("record %d mismatch: %+v != %+v", i, d.Records[i], recs[i])
		}
	}
	if len(d.LinkNames) == 0 || d.LinkNames[0] == "" {
		t.Fatalf("link name table lost: %q", d.LinkNames)
	}
}

func TestTeeFansOut(t *testing.T) {
	net, k := rig(t)
	m := obs.NewMetrics()
	ring := obs.NewRingTracer(1024)
	net.SetTracer(obs.Tee{m, ring})
	load(net, 20)
	drain(t, net, k, 2000)
	if m.Packets != 20 || ring.Total() == 0 {
		t.Fatalf("tee lost events: metrics %d packets, ring %d records", m.Packets, ring.Total())
	}
}

func TestVerifyCleanRunUnderLiveTraffic(t *testing.T) {
	net, k := rig(t)
	net.SetVerifier(1, obs.Verify)
	load(net, 60)
	drain(t, net, k, 3000)
	if err := obs.Verify(net, 3000); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyDetectsCreditLeak(t *testing.T) {
	net, k := rig(t)
	load(net, 20)
	drain(t, net, k, 2000)
	if err := obs.Verify(net, 2000); err != nil {
		t.Fatalf("pre-mutation network unexpectedly broken: %v", err)
	}
	net.Router(0).DebugDropCredit(noc.PortEast, 0)
	err := obs.Verify(net, 2000)
	if err == nil {
		t.Fatal("credit leak went undetected")
	}
	if !strings.Contains(err.Error(), "credit invariant") {
		t.Fatalf("unexpected error for credit leak: %v", err)
	}
}

func TestVerifyDetectsConservationBreak(t *testing.T) {
	net, k := rig(t)
	load(net, 20)
	drain(t, net, k, 2000)
	net.TotalFlitsInjected++
	err := obs.Verify(net, 2000)
	if err == nil || !strings.Contains(err.Error(), "flit conservation") {
		t.Fatalf("conservation break not detected: %v", err)
	}
}

// TestVerifierFailsLoudly proves an installed checker panics the tick that
// observes an injected credit leak: the mutation cannot be shrugged off
// into slightly-wrong results.
func TestVerifierFailsLoudly(t *testing.T) {
	net, k := rig(t)
	net.SetVerifier(1, obs.Verify)
	load(net, 20)
	k.Run(50)
	net.Router(0).DebugDropCredit(noc.PortEast, 0)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("verifier did not panic on credit-leak mutation")
		}
		if !strings.Contains(sprint(r), "invariant violated") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	k.Run(100)
}

func sprint(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	if e, ok := v.(error); ok {
		return e.Error()
	}
	return ""
}

func TestWritePromHistogram(t *testing.T) {
	h := sim.NewHistogram(250, 4)
	for _, v := range []int64{100, 300, 900, 5000} {
		h.Add(v)
	}
	var b strings.Builder
	obs.WritePromHistogram(&b, "job_seconds", "Job wall time.", h, 1e-3)
	got := b.String()
	for _, want := range []string{
		"# TYPE job_seconds histogram",
		`job_seconds_bucket{le="0.25"} 1`,
		`job_seconds_bucket{le="0.5"} 2`,
		`job_seconds_bucket{le="1"} 3`, // cumulative: counts accumulate
		`job_seconds_bucket{le="+Inf"} 4`,
		"job_seconds_sum 6.3",
		"job_seconds_count 4",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
}
