package obs

import (
	"fmt"
	"io"

	"adaptnoc/internal/sim"
)

// WritePromHistogram renders a sim.Histogram in the Prometheus text
// exposition format: cumulative le-bucket counts at the histogram's
// bucket boundaries, a +Inf bucket absorbing the overflow, and the
// _sum/_count pair. scale multiplies boundaries and the sum, converting
// the histogram's native unit into the exported one (Prometheus
// convention is base units — pass 1e-3 for a histogram recorded in
// milliseconds to export seconds).
//
// sim.Histogram serves simulated-cycle latencies everywhere else in the
// repository; this is the bridge that lets the serving daemon (and any
// future exporter) publish the same shape to a real monitoring stack.
func WritePromHistogram(w io.Writer, name, help string, h *sim.Histogram, scale float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	width, counts, overflow := h.Buckets()
	var cum int64
	for i, c := range counts {
		cum += c
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, float64(int64(i+1)*width)*scale, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum+overflow)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.Mean()*float64(h.N())*scale)
	fmt.Fprintf(w, "%s_count %d\n", name, h.N())
}
