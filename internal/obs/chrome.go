package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"adaptnoc/internal/noc"
)

// ChromeTracer records the flit lifecycle as Chrome trace_event JSON that
// chrome://tracing and Perfetto load directly. The track layout is:
//
//   - process "routers": one thread per router; each per-hop residency
//     (arrival -> switch traversal) is a complete ("X") slice named after
//     the packet and flit, with the RC/VA grant cycles in its args.
//   - process "links": one thread per channel; each flit's wire time is a
//     slice spanning send -> delivery.
//   - process "NIs": one thread per tile; packet enqueue, injection, and
//     delivery appear as instant events.
//
// Cycles map 1:1 to trace microseconds, so slice lengths read directly as
// cycle counts in the UI.
type ChromeTracer struct {
	// Cap bounds the number of retained events; once reached, further
	// events are counted in Dropped instead of stored (the metadata track
	// names are still emitted). Zero means DefaultEventCap.
	Cap     int
	Dropped int64

	events  []chromeEvent
	pending map[flitKey]hopState

	linkIDs   map[*noc.Channel]int
	linkNames []string

	routerSeen map[noc.NodeID]bool
	niSeen     map[noc.NodeID]bool
}

// DefaultEventCap bounds a ChromeTracer to roughly a gigabyte of JSON; use
// the ring tracer for longer runs.
const DefaultEventCap = 4 << 20

// Track process IDs.
const (
	pidRouters = 1
	pidLinks   = 2
	pidNIs     = 3
)

// flitKey is the stable identity of a flit across its lifetime. *Flit
// pointers index into per-packet arena slabs that are recycled at delivery,
// so a pointer key could alias a past flit; (packet ID, sequence) cannot.
type flitKey struct {
	pkt uint64
	seq int
}

func keyOf(f *noc.Flit) flitKey { return flitKey{pkt: f.Pkt.ID, seq: f.Seq} }

type hopState struct {
	router noc.NodeID
	arrive Cycle
	rc, va Cycle
	hasRC  bool
	hasVA  bool
}

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// NewChromeTracer returns an empty tracer ready to install via SetTracer.
// The zero value (useful for setting Cap via a literal) works too.
func NewChromeTracer() *ChromeTracer {
	c := &ChromeTracer{}
	c.ensure()
	return c
}

func (c *ChromeTracer) ensure() {
	if c.pending == nil {
		c.pending = make(map[flitKey]hopState)
		c.linkIDs = make(map[*noc.Channel]int)
		c.routerSeen = make(map[noc.NodeID]bool)
		c.niSeen = make(map[noc.NodeID]bool)
	}
}

// Events returns the number of retained events.
func (c *ChromeTracer) Events() int { return len(c.events) }

func (c *ChromeTracer) emit(e chromeEvent) {
	limit := c.Cap
	if limit <= 0 {
		limit = DefaultEventCap
	}
	if len(c.events) >= limit {
		c.Dropped++
		return
	}
	c.events = append(c.events, e)
}

func (c *ChromeTracer) touchRouter(id noc.NodeID) {
	c.ensure()
	if !c.routerSeen[id] {
		c.routerSeen[id] = true
	}
}

func (c *ChromeTracer) touchNI(id noc.NodeID) {
	c.ensure()
	if !c.niSeen[id] {
		c.niSeen[id] = true
	}
}

func (c *ChromeTracer) linkID(ch *noc.Channel) int {
	c.ensure()
	if id, ok := c.linkIDs[ch]; ok {
		return id
	}
	id := len(c.linkNames)
	c.linkIDs[ch] = id
	c.linkNames = append(c.linkNames, fmt.Sprintf("%v->%v %v", ch.From, ch.To, ch.Kind))
	return id
}

func flitName(f *noc.Flit) string {
	return fmt.Sprintf("pkt#%d.%d", f.Pkt.ID, f.Seq)
}

// PacketEnqueued implements noc.Tracer.
func (c *ChromeTracer) PacketEnqueued(p *noc.Packet, now Cycle) {
	c.touchNI(p.Src)
	c.emit(chromeEvent{Name: fmt.Sprintf("enqueue pkt#%d", p.ID), Ph: "i", Ts: int64(now),
		Pid: pidNIs, Tid: int(p.Src), S: "t",
		Args: map[string]any{"dst": int(p.Dst), "vnet": p.VNet.String(), "size": p.Size, "app": p.App}})
}

// PacketInjected implements noc.Tracer.
func (c *ChromeTracer) PacketInjected(p *noc.Packet, router noc.NodeID, now Cycle) {
	c.touchNI(p.Src)
	c.emit(chromeEvent{Name: fmt.Sprintf("inject pkt#%d", p.ID), Ph: "i", Ts: int64(now),
		Pid: pidNIs, Tid: int(p.Src), S: "t",
		Args: map[string]any{"router": int(router), "queued": int64(p.QueuingLatency())}})
}

// FlitArrived implements noc.Tracer.
func (c *ChromeTracer) FlitArrived(router noc.NodeID, port int, f *noc.Flit, now Cycle) {
	c.ensure()
	c.pending[keyOf(f)] = hopState{router: router, arrive: now}
}

// FlitRouted implements noc.Tracer.
func (c *ChromeTracer) FlitRouted(router noc.NodeID, f *noc.Flit, outPort int, now Cycle) {
	if h, ok := c.pending[keyOf(f)]; ok {
		h.rc, h.hasRC = now, true
		c.pending[keyOf(f)] = h
	}
}

// FlitVCAllocated implements noc.Tracer.
func (c *ChromeTracer) FlitVCAllocated(router noc.NodeID, f *noc.Flit, outVC int, now Cycle) {
	if h, ok := c.pending[keyOf(f)]; ok {
		h.va, h.hasVA = now, true
		c.pending[keyOf(f)] = h
	}
}

// FlitTraversed implements noc.Tracer.
func (c *ChromeTracer) FlitTraversed(router noc.NodeID, outPort int, f *noc.Flit, now Cycle) {
	h, ok := c.pending[keyOf(f)]
	if !ok {
		return
	}
	delete(c.pending, keyOf(f))
	c.touchRouter(router)
	args := map[string]any{
		"dst": int(f.Pkt.Dst), "outPort": noc.DirPortName(outPort), "vnet": f.Pkt.VNet.String(),
	}
	if h.hasRC {
		args["rc"] = int64(h.rc)
	}
	if h.hasVA {
		args["va"] = int64(h.va)
	}
	c.emit(chromeEvent{Name: flitName(f), Ph: "X", Ts: int64(h.arrive), Dur: int64(now - h.arrive),
		Pid: pidRouters, Tid: int(router), Args: args})
}

// LinkTraversed implements noc.Tracer.
func (c *ChromeTracer) LinkTraversed(ch *noc.Channel, f *noc.Flit, sent, arrived Cycle) {
	id := c.linkID(ch)
	c.emit(chromeEvent{Name: flitName(f), Ph: "X", Ts: int64(sent), Dur: int64(arrived - sent),
		Pid: pidLinks, Tid: id})
}

// FlitEjected implements noc.Tracer.
func (c *ChromeTracer) FlitEjected(ni noc.NodeID, f *noc.Flit, now Cycle) {
	// The per-flit record of ejection is the tail of its last link slice;
	// only packet completion gets its own instant (see PacketDelivered).
	delete(c.pending, keyOf(f))
}

// PacketDelivered implements noc.Tracer.
func (c *ChromeTracer) PacketDelivered(p *noc.Packet, now Cycle) {
	c.touchNI(p.Dst)
	c.emit(chromeEvent{Name: fmt.Sprintf("deliver pkt#%d", p.ID), Ph: "i", Ts: int64(now),
		Pid: pidNIs, Tid: int(p.Dst), S: "t",
		Args: map[string]any{"src": int(p.Src), "latency": int64(p.TotalLatency()), "hops": p.Hops}})
}

// WriteTo streams the trace as a Chrome trace_event JSON object. Metadata
// (process/thread names) is emitted first so the viewer labels every track.
func (c *ChromeTracer) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &countWriter{w: bw}
	enc := json.NewEncoder(cw)

	write := func(s string) error {
		_, err := io.WriteString(cw, s)
		return err
	}
	if err := write(`{"traceEvents":[`); err != nil {
		return cw.n, err
	}
	first := true
	emit := func(e chromeEvent) error {
		if !first {
			if err := write(",\n"); err != nil {
				return err
			}
		}
		first = false
		// json.Encoder appends a newline; tolerated inside the array.
		return enc.Encode(e)
	}

	meta := func(pid int, name string) error {
		return emit(chromeEvent{Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name}})
	}
	if err := meta(pidRouters, "routers"); err != nil {
		return cw.n, err
	}
	if err := meta(pidLinks, "links"); err != nil {
		return cw.n, err
	}
	if err := meta(pidNIs, "NIs"); err != nil {
		return cw.n, err
	}
	for _, id := range sortedIDs(c.routerSeen) {
		if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: pidRouters, Tid: int(id),
			Args: map[string]any{"name": fmt.Sprintf("router %d", id)}}); err != nil {
			return cw.n, err
		}
	}
	for i, name := range c.linkNames {
		if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: pidLinks, Tid: i,
			Args: map[string]any{"name": name}}); err != nil {
			return cw.n, err
		}
	}
	for _, id := range sortedIDs(c.niSeen) {
		if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: pidNIs, Tid: int(id),
			Args: map[string]any{"name": fmt.Sprintf("ni %d", id)}}); err != nil {
			return cw.n, err
		}
	}

	for i := range c.events {
		if err := emit(c.events[i]); err != nil {
			return cw.n, err
		}
	}
	if err := write("]"); err != nil {
		return cw.n, err
	}
	if c.Dropped > 0 {
		if err := write(fmt.Sprintf(`,"droppedEvents":%d`, c.Dropped)); err != nil {
			return cw.n, err
		}
	}
	if err := write("}\n"); err != nil {
		return cw.n, err
	}
	return cw.n, bw.Flush()
}

func sortedIDs(m map[noc.NodeID]bool) []noc.NodeID {
	ids := make([]noc.NodeID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
