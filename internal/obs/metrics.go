package obs

import (
	"fmt"
	"io"
	"sort"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
)

// Metrics is a Tracer that aggregates instead of recording: per-vnet
// latency histograms (total, network, and queuing components) and
// per-router / per-link flit-traversal counters. Install it alone or in a
// Tee next to a trace recorder.
type Metrics struct {
	noc.NopTracer

	// Latency histograms indexed by virtual network.
	Total [noc.NumVNets]*sim.Histogram
	Net   [noc.NumVNets]*sim.Histogram
	Queue [noc.NumVNets]*sim.Histogram

	Packets int64

	routerTrav []int64
	linkFlits  map[*noc.Channel]linkCount
}

type linkCount struct {
	name  string
	flits int64
}

// NewMetrics sizes the histograms for cycle-granularity latencies up to
// 4096 cycles (the overflow bucket reports the observed maximum beyond
// that, so saturated tails still surface).
func NewMetrics() *Metrics {
	m := &Metrics{linkFlits: make(map[*noc.Channel]linkCount)}
	for v := 0; v < noc.NumVNets; v++ {
		m.Total[v] = sim.NewHistogram(4, 1024)
		m.Net[v] = sim.NewHistogram(4, 1024)
		m.Queue[v] = sim.NewHistogram(4, 1024)
	}
	return m
}

// FlitTraversed implements noc.Tracer.
func (m *Metrics) FlitTraversed(router noc.NodeID, outPort int, f *noc.Flit, now Cycle) {
	for int(router) >= len(m.routerTrav) {
		m.routerTrav = append(m.routerTrav, 0)
	}
	m.routerTrav[router]++
}

// LinkTraversed implements noc.Tracer.
func (m *Metrics) LinkTraversed(ch *noc.Channel, f *noc.Flit, sent, arrived Cycle) {
	lc, ok := m.linkFlits[ch]
	if !ok {
		lc.name = fmt.Sprintf("%v->%v %v", ch.From, ch.To, ch.Kind)
	}
	lc.flits++
	m.linkFlits[ch] = lc
}

// PacketDelivered implements noc.Tracer.
func (m *Metrics) PacketDelivered(p *noc.Packet, now Cycle) {
	m.Packets++
	v := p.VNet
	m.Total[v].Add(int64(p.TotalLatency()))
	m.Net[v].Add(int64(p.NetworkLatency()))
	m.Queue[v].Add(int64(p.QueuingLatency()))
}

// Report prints the per-vnet latency distributions and the busiest
// routers/links; cycles scales utilization to flits/cycle (pass 0 to omit
// the rates). Output order is deterministic.
func (m *Metrics) Report(w io.Writer, cycles int64) {
	fmt.Fprintf(w, "# packet latency (cycles), %d packets\n", m.Packets)
	for v := 0; v < noc.NumVNets; v++ {
		if m.Total[v].N() == 0 {
			continue
		}
		fmt.Fprintf(w, "vnet %-8s total    %s\n", noc.VNet(v), m.Total[v].Summary())
		fmt.Fprintf(w, "vnet %-8s network  %s\n", noc.VNet(v), m.Net[v].Summary())
		fmt.Fprintf(w, "vnet %-8s queuing  %s\n", noc.VNet(v), m.Queue[v].Summary())
	}

	type entry struct {
		name  string
		flits int64
	}
	rate := func(flits int64) string {
		if cycles <= 0 {
			return ""
		}
		return fmt.Sprintf(" (%.3f flits/cycle)", float64(flits)/float64(cycles))
	}

	var routers []entry
	for id, n := range m.routerTrav {
		if n > 0 {
			routers = append(routers, entry{fmt.Sprintf("router %d", id), n})
		}
	}
	sort.Slice(routers, func(i, j int) bool {
		if routers[i].flits != routers[j].flits {
			return routers[i].flits > routers[j].flits
		}
		return routers[i].name < routers[j].name
	})
	fmt.Fprintf(w, "# busiest routers (switch traversals)\n")
	for i, e := range routers {
		if i == 5 {
			break
		}
		fmt.Fprintf(w, "%-12s %d%s\n", e.name, e.flits, rate(e.flits))
	}

	// Aggregate by name: reconfiguration can tear a channel down and wire
	// an identical one; they are the same physical link for reporting.
	byName := make(map[string]int64)
	for _, lc := range m.linkFlits {
		byName[lc.name] += lc.flits
	}
	links := make([]entry, 0, len(byName))
	for name, n := range byName {
		links = append(links, entry{name, n})
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].flits != links[j].flits {
			return links[i].flits > links[j].flits
		}
		return links[i].name < links[j].name
	})
	fmt.Fprintf(w, "# busiest links (flits carried)\n")
	for i, e := range links {
		if i == 5 {
			break
		}
		fmt.Fprintf(w, "%-28s %d%s\n", e.name, e.flits, rate(e.flits))
	}
}

// RouterTraversals returns switch-traversal counts indexed by router ID
// (short slice if high routers never traversed).
func (m *Metrics) RouterTraversals() []int64 { return m.routerTrav }
