// Package noc implements a cycle-accurate network-on-chip model equivalent
// in abstraction level to the GARNET network model used by the paper:
// virtual-channel routers with RC/VA/SA/ST pipeline stages, virtual
// cut-through flow control with credits, configurable per-router pipeline
// latency (Tr) and per-channel latency (Tl), virtual networks for protocol
// deadlock avoidance, and network interfaces with per-vnet injection queues.
//
// The model is cycle-driven: Network implements sim.Ticker and advances
// channels, routers, and network interfaces once per cycle in a fixed order
// chosen so that all cross-component communication has register (one-cycle)
// semantics.
//
// Topology is expressed as a set of directed Channels attached to router
// Ports plus per-router, per-vnet routing tables; packages topology and
// fabric build and reconfigure these. A port's channel attachment models
// the paper's input/output muxes: at any instant one channel drives a port.
package noc

import "fmt"

// NodeID identifies a tile (core / cache slice / memory controller site) in
// the manycore grid, row-major: id = y*Width + x.
type NodeID int

// Coord is a tile position in the grid.
type Coord struct{ X, Y int }

// ID returns the row-major NodeID of the coordinate in a grid of width w.
func (c Coord) ID(w int) NodeID { return NodeID(c.Y*w + c.X) }

// CoordOf returns the coordinate of id in a grid of width w.
func CoordOf(id NodeID, w int) Coord { return Coord{X: int(id) % w, Y: int(id) / w} }

// VNet is a virtual network index. Two virtual networks separate request
// and reply packets, eliminating protocol deadlock (Section II-C.3).
type VNet int

// Virtual networks.
const (
	VNetRequest VNet = 0 // coherence requests, read/write requests
	VNetReply   VNet = 1 // data replies from caches and memory controllers
	NumVNets         = 2
)

// String implements fmt.Stringer.
func (v VNet) String() string {
	switch v {
	case VNetRequest:
		return "request"
	case VNetReply:
		return "reply"
	default:
		return fmt.Sprintf("vnet(%d)", int(v))
	}
}

// PacketClass distinguishes the two message kinds the RL state vector
// counts (Table I: "Number of coherence packets", "Number of data packets").
type PacketClass int

// Packet classes.
const (
	ClassCoherence PacketClass = iota // single-flit control message
	ClassData                         // multi-flit cache-line-bearing message
)

// String implements fmt.Stringer.
func (c PacketClass) String() string {
	if c == ClassCoherence {
		return "coherence"
	}
	return "data"
}

// Standard port roles. A mesh router has the first five; concentration and
// express (adaptable-link) attachments add further ports at runtime.
const (
	PortLocal = 0 // to/from the network interface(s)
	PortEast  = 1 // +x
	PortWest  = 2 // -x
	PortNorth = 3 // +y
	PortSouth = 4 // -y
)

// DirPortName names the canonical ports for diagnostics.
func DirPortName(p int) string {
	switch p {
	case PortLocal:
		return "local"
	case PortEast:
		return "east"
	case PortWest:
		return "west"
	case PortNorth:
		return "north"
	case PortSouth:
		return "south"
	default:
		return fmt.Sprintf("ext%d", p)
	}
}

// Config carries the microarchitectural parameters shared by every design
// point in the evaluation (Section IV-A).
type Config struct {
	Width, Height int // grid dimensions in tiles

	VCsPerVNet int // virtual channels per virtual network per input port
	VCDepth    int // buffer depth per VC, in flits

	RouterLatency int // Tr: cycles from head arrival to switch traversal
	LinkLatency   int // Tl: cycles per mesh-link hop

	CtrlFlits int // flits per coherence/control packet
	DataFlits int // flits per data packet (header + cache line)

	// InjectionBypass enables the Adapt-NoC bypass path at the injection
	// port's VCs: flits entering via the local port skip the input pipeline
	// delay when their VC is empty (Section II-A.1).
	InjectionBypass bool

	// MMPerTile is the tile edge length in millimetres, used to derive
	// long-link latencies (1 cycle per HighMetalMMPerCycle mm).
	MMPerTile float64
	// HighMetalMMPerCycle is the distance a signal covers per cycle on the
	// high metal layers used for long adaptable/express links.
	HighMetalMMPerCycle float64
	// IntermediateMMPerCycle is the same for the intermediate metal
	// layers (M4-M6; ~5x slower per mm at 45 nm).
	IntermediateMMPerCycle float64
}

// DefaultConfig returns the common parameters from Section IV-A: 8x8 grid,
// 4-flit virtual cut-through VCs, Tr=2, Tl=1, 256-bit links (1-flit control
// packets, 3-flit data packets carrying a 64-byte line), 1 mm tiles, and
// 4 mm/cycle high-metal links.
func DefaultConfig() Config {
	return Config{
		Width: 8, Height: 8,
		VCsPerVNet:             3,
		VCDepth:                4,
		RouterLatency:          2,
		LinkLatency:            1,
		CtrlFlits:              1,
		DataFlits:              3,
		MMPerTile:              1.0,
		HighMetalMMPerCycle:    4.0,
		IntermediateMMPerCycle: 2.0,
	}
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.Width <= 0 || c.Height <= 0:
		return fmt.Errorf("noc: invalid grid %dx%d", c.Width, c.Height)
	case c.VCsPerVNet <= 0:
		return fmt.Errorf("noc: need at least one VC per vnet, got %d", c.VCsPerVNet)
	case c.VCDepth < c.DataFlits:
		return fmt.Errorf("noc: virtual cut-through requires VC depth >= packet size (%d < %d)",
			c.VCDepth, c.DataFlits)
	case c.RouterLatency < 1:
		return fmt.Errorf("noc: router latency must be >= 1, got %d", c.RouterLatency)
	case c.LinkLatency < 1:
		return fmt.Errorf("noc: link latency must be >= 1, got %d", c.LinkLatency)
	case c.CtrlFlits < 1 || c.DataFlits < 1:
		return fmt.Errorf("noc: packet sizes must be >= 1 flit")
	}
	return nil
}

// NumNodes returns the tile count.
func (c Config) NumNodes() int { return c.Width * c.Height }

// LongLinkLatency returns the cycle latency of a high-metal link spanning
// the given number of tile edges, at least one cycle.
func (c Config) LongLinkLatency(tiles int) int {
	return c.linkLatencyAt(tiles, c.HighMetalMMPerCycle)
}

// IntermediateLinkLatency is LongLinkLatency on the slower intermediate
// metal layers.
func (c Config) IntermediateLinkLatency(tiles int) int {
	return c.linkLatencyAt(tiles, c.IntermediateMMPerCycle)
}

func (c Config) linkLatencyAt(tiles int, mmPerCycle float64) int {
	if tiles < 0 {
		tiles = -tiles
	}
	if mmPerCycle <= 0 {
		mmPerCycle = 1
	}
	mm := float64(tiles) * c.MMPerTile
	lat := int((mm + mmPerCycle - 1) / mmPerCycle)
	if lat < 1 {
		lat = 1
	}
	return lat
}
