package noc_test

import (
	"testing"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/topology"
)

// steadyState builds an 8x8 mesh carrying a fixed closed-loop population of
// packets: every delivery immediately enqueues a successor from the
// delivered packet's destination, so the in-flight load is constant forever
// and the tick loop runs at its true steady-state cost — no RNG, no open
// loop drift, fully deterministic. The returned step function advances one
// cycle.
func steadyState(population int) (net *noc.Network, step func(), delivered *int64) {
	cfg := noc.DefaultConfig() // 8x8, Tr=2, Tl=1
	net = noc.NewNetwork(cfg)
	topology.BuildMesh(net)
	// The package test hook installs a periodic invariant verifier on every
	// network; benchmarks and allocation tests measure the bare tick loop.
	net.SetVerifier(0, nil)

	nodes := net.Cfg.NumNodes()
	const stride = 27 // coprime to 64: packets tour the whole chip
	var count int64
	next := func(src noc.NodeID, i int64) *noc.Packet {
		dst := noc.NodeID((int(src) + stride) % nodes)
		class, vnet := noc.ClassCoherence, noc.VNetRequest
		if i%4 == 0 { // every fourth packet is multi-flit data
			class, vnet = noc.ClassData, noc.VNetReply
		}
		return net.NewPacket(src, dst, class, vnet, 0)
	}

	var now sim.Cycle
	var nDelivered int64
	net.SetDeliverFunc(func(p *noc.Packet, at sim.Cycle) {
		nDelivered++
		count++
		net.Enqueue(next(p.Dst, count), at)
	})
	for i := 0; i < population; i++ {
		count++
		net.Enqueue(next(noc.NodeID(i%nodes), count), 0)
	}
	step = func() {
		net.Tick(now)
		now++
	}
	return net, step, &nDelivered
}

// BenchmarkNetworkTick measures one cycle of the loaded steady-state tick
// loop — the per-cycle cost every simulation in the serving daemon and the
// experiment drivers pays. The companion allocation test
// (TestSteadyStateTickZeroAllocs) asserts the same workload allocates
// nothing per tick; make bench-tick gates both against the recorded
// baseline via cmd/adaptnoc-benchdiff.
func BenchmarkNetworkTick(b *testing.B) {
	_, step, delivered := steadyState(96)
	for i := 0; i < 4000; i++ { // warm pools, queues, and work lists
		step()
	}
	if *delivered == 0 {
		b.Fatal("no deliveries during warmup")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}
