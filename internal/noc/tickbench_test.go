package noc_test

import (
	"fmt"
	"runtime"
	"testing"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/topology"
)

// steadyState builds an 8x8 mesh carrying a fixed closed-loop population of
// packets: every delivery immediately enqueues a successor from the
// delivered packet's destination, so the in-flight load is constant forever
// and the tick loop runs at its true steady-state cost — no RNG, no open
// loop drift, fully deterministic. The returned step function advances one
// cycle.
func steadyState(population int) (net *noc.Network, step func(), delivered *int64) {
	return steadyStateGrid(8, 8, population, 1)
}

// steadyStateGrid is steadyState on a w×h mesh ticked with the given shard
// count — the workload of the sharded-tick scaling benchmarks.
func steadyStateGrid(w, h, population, shards int) (net *noc.Network, step func(), delivered *int64) {
	cfg := noc.DefaultConfig() // Tr=2, Tl=1
	cfg.Width, cfg.Height = w, h
	net = noc.NewNetwork(cfg)
	topology.BuildMesh(net)
	net.SetShards(shards)
	// The package test hook installs a periodic invariant verifier on every
	// network; benchmarks and allocation tests measure the bare tick loop.
	net.SetVerifier(0, nil)

	nodes := net.Cfg.NumNodes()
	const stride = 27 // coprime to power-of-two chips: packets tour the whole grid
	var count int64
	next := func(src noc.NodeID, i int64) *noc.Packet {
		dst := noc.NodeID((int(src) + stride) % nodes)
		class, vnet := noc.ClassCoherence, noc.VNetRequest
		if i%4 == 0 { // every fourth packet is multi-flit data
			class, vnet = noc.ClassData, noc.VNetReply
		}
		return net.NewPacket(src, dst, class, vnet, 0)
	}

	var now sim.Cycle
	var nDelivered int64
	net.SetDeliverFunc(func(p *noc.Packet, at sim.Cycle) {
		nDelivered++
		count++
		net.Enqueue(next(p.Dst, count), at)
	})
	for i := 0; i < population; i++ {
		count++
		net.Enqueue(next(noc.NodeID(i%nodes), count), 0)
	}
	step = func() {
		net.Tick(now)
		now++
	}
	return net, step, &nDelivered
}

// BenchmarkNetworkTick measures one cycle of the loaded steady-state tick
// loop — the per-cycle cost every simulation in the serving daemon and the
// experiment drivers pays. The companion allocation test
// (TestSteadyStateTickZeroAllocs) asserts the same workload allocates
// nothing per tick; make bench-tick gates both against the recorded
// baseline via cmd/adaptnoc-benchdiff.
func BenchmarkNetworkTick(b *testing.B) {
	_, step, delivered := steadyState(96)
	for i := 0; i < 4000; i++ { // warm pools, queues, and work lists
		step()
	}
	if *delivered == 0 {
		b.Fatal("no deliveries during warmup")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// BenchmarkNetworkTickSharded measures the region-parallel tick across
// chip sizes, serial vs one shard per core. The load scales with the chip
// (1.5 packets per tile) so ns/cycle reflects per-cycle work growth, and
// the speedup column of BENCH_shard.json is shards=N over shards=1 at
// equal size. On a single-core host the sharded rows degenerate to the
// serial path (SetShards clamps to what the gang can use, and the barrier
// overhead is the measured cost).
func BenchmarkNetworkTickSharded(b *testing.B) {
	ks := []int{1}
	if shards := runtime.GOMAXPROCS(0); shards > 1 {
		ks = append(ks, shards)
	}
	for _, size := range []int{8, 16, 32, 64} {
		population := size * size * 3 / 2
		for _, k := range ks {
			name := fmt.Sprintf("%dx%d/shards=%d", size, size, k)
			b.Run(name, func(b *testing.B) {
				_, step, delivered := steadyStateGrid(size, size, population, k)
				for i := 0; i < 4000; i++ {
					step()
				}
				if *delivered == 0 {
					b.Fatal("no deliveries during warmup")
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					step()
				}
			})
		}
	}
}
