package noc

// Per-network allocation arena. Every packet and flit slab a network hands
// out in steady state comes from here, and every delivered packet returns
// here, so a warmed-up simulation ticks without touching the Go allocator
// at all (see BenchmarkNetworkTick and TestSteadyStateTickZeroAllocs).
//
// Two properties matter more than raw speed:
//
//   - Determinism. The free lists are plain LIFO stacks owned by one
//     network and driven only by simulation events, so the packet/slab a
//     call returns is a pure function of simulation history. sync.Pool
//     would not give that guarantee (its per-P caches drain on GC and vary
//     with scheduling), and the parallel experiment runner depends on every
//     simulation being bit-identical regardless of sibling load. Under tick
//     sharding each shard owns a pool of its own (Network.pools): the only
//     parallel allocation site is the injector's slab carve, which draws
//     from its shard's pool in deterministic per-region order, so the rule
//     survives — each pool's state is a pure function of its shard's
//     simulation history.
//
//   - Contiguity. A packet's flits are carved as one []Flit slab out of a
//     large arena block, so the flits that travel together sit together:
//     serializing, buffering, and ejecting a packet walks one cache line or
//     two instead of chasing Size separately-allocated objects.
//
// Pointers into an arena block stay valid forever — blocks are never grown
// in place or released, only carved and recycled — so *Flit and *Packet
// remain stable while a packet is in flight. They are NOT stable across
// packets: delivery recycles both (see Network.deliver), and the next
// NewPacket may reuse the same memory. Code observing the network must not
// retain either pointer past the delivery callback (Tracer documents the
// same contract).

// Arena block sizes. Packet blocks hold pktBlockSize packets; flit blocks
// hold flitBlockFlits flits and are carved into per-packet slabs. Both are
// cold-path constants: once the in-flight population peaks, no new block is
// ever allocated.
const (
	pktBlockSize   = 128
	flitBlockFlits = 1024
)

// PoolStats counts arena traffic; reuse counters prove that a steady-state
// simulation stops allocating (see Network.PoolStats).
type PoolStats struct {
	PacketsCarved int64 // packets carved fresh from an arena block
	PacketsReused int64 // NewPacket calls served from the free list
	PacketsFreed  int64 // packets returned at delivery
	SlabsCarved   int64 // flit slabs carved fresh from an arena block
	SlabsReused   int64 // slabs served from a size-class free list
	SlabsFreed    int64 // slabs returned at delivery
	ArenaFlits    int64 // flits of arena capacity reserved
}

// slabClass is the free list for one flit-slab size. A network sees at
// most a handful of packet sizes (CtrlFlits, DataFlits), so classes are a
// linearly-scanned slice rather than a map.
type slabClass struct {
	size int
	free [][]Flit
}

// pool is the per-network arena plus free lists. The zero value is ready
// to use.
type pool struct {
	stats PoolStats

	freePkts []*Packet
	pktBlock []Packet // remaining tail of the current packet block

	flitBlock []Flit // remaining tail of the current flit block
	classes   []slabClass
}

// getPacket returns a packet with unspecified contents; the caller must
// overwrite every field (Network.NewPacket assigns a full struct literal).
func (pl *pool) getPacket() *Packet {
	if n := len(pl.freePkts); n > 0 {
		p := pl.freePkts[n-1]
		pl.freePkts[n-1] = nil
		pl.freePkts = pl.freePkts[:n-1]
		pl.stats.PacketsReused++
		return p
	}
	if len(pl.pktBlock) == 0 {
		pl.pktBlock = make([]Packet, pktBlockSize)
	}
	p := &pl.pktBlock[0]
	pl.pktBlock = pl.pktBlock[1:]
	pl.stats.PacketsCarved++
	return p
}

// putPacket returns a delivered packet to the free list. The caller has
// already cleared external references (Payload, flit slab).
func (pl *pool) putPacket(p *Packet) {
	pl.freePkts = append(pl.freePkts, p)
	pl.stats.PacketsFreed++
}

// getSlab returns a []Flit of exactly size flits, contiguous in one arena
// block, with unspecified contents (fillFlits overwrites every entry).
func (pl *pool) getSlab(size int) []Flit {
	for i := range pl.classes {
		c := &pl.classes[i]
		if c.size != size {
			continue
		}
		if n := len(c.free); n > 0 {
			s := c.free[n-1]
			c.free[n-1] = nil
			c.free = c.free[:n-1]
			pl.stats.SlabsReused++
			return s
		}
		break
	}
	if len(pl.flitBlock) < size {
		n := flitBlockFlits
		if size > n {
			n = size
		}
		pl.flitBlock = make([]Flit, n)
		pl.stats.ArenaFlits += int64(n)
	}
	s := pl.flitBlock[:size:size]
	pl.flitBlock = pl.flitBlock[size:]
	pl.stats.SlabsCarved++
	return s
}

// putSlab recycles a packet's flit slab into its size class.
func (pl *pool) putSlab(s []Flit) {
	pl.stats.SlabsFreed++
	size := len(s)
	for i := range pl.classes {
		if pl.classes[i].size == size {
			pl.classes[i].free = append(pl.classes[i].free, s)
			return
		}
	}
	pl.classes = append(pl.classes, slabClass{size: size, free: [][]Flit{s}})
}

// add accumulates another pool's counters.
func (s *PoolStats) add(o PoolStats) {
	s.PacketsCarved += o.PacketsCarved
	s.PacketsReused += o.PacketsReused
	s.PacketsFreed += o.PacketsFreed
	s.SlabsCarved += o.SlabsCarved
	s.SlabsReused += o.SlabsReused
	s.SlabsFreed += o.SlabsFreed
	s.ArenaFlits += o.ArenaFlits
}

// PoolStats returns the network's arena counters, summed over the shard
// pools. In steady state only the Reused/Freed counters advance; Carved
// counters advancing under constant load means recycling broke. The split
// between pools — unlike the simulation results — depends on the shard
// count, so PoolStats is diagnostic state and is not serialized in
// checkpoints.
func (n *Network) PoolStats() PoolStats {
	var s PoolStats
	for i := range n.pools {
		s.add(n.pools[i].stats)
	}
	return s
}
