package noc

import (
	"fmt"

	"adaptnoc/internal/sim"
)

// NI is a network interface: the per-tile injection/ejection point. Packets
// enqueue into per-vnet FIFO queues of unbounded depth (the queue is where
// the paper's queuing latency accrues), are serialized into flits, and are
// streamed into the serving router's local input port through the injection
// arbiter. Ejected flits are reassembled and handed to the delivery
// callback.
// pktQueue is a head-indexed FIFO: popping (even a few slots past the
// head, see scanDepth) is O(scan depth), not O(queue length) — saturated
// NIs hold very long queues and must not go quadratic.
type pktQueue struct {
	items []*Packet
	head  int
}

func (q *pktQueue) len() int         { return len(q.items) - q.head }
func (q *pktQueue) at(i int) *Packet { return q.items[q.head+i] }
func (q *pktQueue) push(p *Packet)   { q.items = append(q.items, p) }

// take removes the element i slots past the head by shifting the short
// prefix right.
func (q *pktQueue) take(i int) *Packet {
	p := q.items[q.head+i]
	for j := q.head + i; j > q.head; j-- {
		q.items[j] = q.items[j-1]
	}
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return p
}

// NI is a network interface: the per-tile injection/ejection point. (See
// the package comment; queuing latency accrues here.)
type NI struct {
	ID NodeID

	queues [NumVNets]pktQueue
	vnRR   int

	// openStreams counts packets currently being serialized by injectors
	// (a tree root MC has several injection ports draining one NI).
	openStreams int

	// rxOpen counts inbound packets mid-reassembly. The per-packet flit
	// tally lives on the packet itself (Packet.rxFlits), so the NI keeps
	// no per-packet reassembly state at all — ejection does no map work
	// and a long-running simulation's reassembly footprint is exactly the
	// in-flight packet population.
	rxOpen int

	// gated blocks the start of new packet streams during subNoC
	// reconfiguration (a mid-stream packet always finishes first).
	gated bool

	// Activity window (injection-port metrics for Table I).
	act NIActivity
}

// SetGated blocks (true) or unblocks (false) new injections from this NI.
func (n *NI) SetGated(g bool) { n.gated = g }

// Gated reports whether new injections are blocked.
func (n *NI) Gated() bool { return n.gated }

// NIActivity is the per-NI window of injection-port metrics.
type NIActivity struct {
	QueueOccupancySum int64 // sum over cycles of queued packets
	EnqueuedPackets   int64
	InjectedPackets   int64
	DeliveredPackets  int64
	DeliveredFlits    int64
	QueuingCycles     int64 // total queuing latency of packets injected in window
}

func newNI(id NodeID) *NI {
	return &NI{ID: id}
}

// RxPending returns the number of inbound packets this NI is currently
// reassembling — the whole of its reassembly state, bounded by the
// in-flight packet population rather than run length.
func (n *NI) RxPending() int { return n.rxOpen }

// QueueLen returns the number of packets waiting (not yet fully streamed).
func (n *NI) QueueLen() int {
	return n.queues[0].len() + n.queues[1].len() + n.openStreams
}

// TakeActivity returns and resets the NI activity window.
func (n *NI) TakeActivity() NIActivity {
	a := n.act
	n.act = NIActivity{}
	return a
}

// enqueue appends a packet to its vnet queue.
func (n *NI) enqueue(p *Packet, now sim.Cycle) {
	p.EnqueuedAt = now
	n.queues[p.VNet].push(p)
	n.act.EnqueuedPackets++
}

// scanDepth bounds how far past a blocked head the injector may look for a
// startable packet. Distinct VCs are physically distinct queues, so
// shallow out-of-order start avoids head-of-line blocking between flows
// sharing one NI (e.g. two applications' replies at a shared MC) without
// modelling unbounded reordering.
const scanDepth = 8

// takePacket removes and returns the queued packet at (vnet, index).
func (n *NI) takePacket(v VNet, idx int) *Packet {
	p := n.queues[v].take(idx)
	n.vnRR = (int(v) + 1) % NumVNets
	return p
}

// receiveFlit accepts an ejected flit; on tail, the packet is complete.
func (n *NI) receiveFlit(f *Flit, now sim.Cycle, deliver func(*Packet, sim.Cycle)) {
	p := f.Pkt
	if p.Dst != n.ID {
		panic(fmt.Sprintf("noc: flit for %d ejected at NI %d", p.Dst, n.ID))
	}
	if p.rxFlits == 0 {
		n.rxOpen++
	}
	p.rxFlits++
	n.act.DeliveredFlits++
	if f.Tail {
		if p.rxFlits != p.Size {
			panic(fmt.Sprintf("noc: packet %v tail after %d/%d flits", p, p.rxFlits, p.Size))
		}
		n.rxOpen--
		p.EjectedAt = now
		n.act.DeliveredPackets++
		if deliver != nil {
			deliver(p, now)
		}
	}
}

// niStream is one injector's open packet stream from one NI. Stream state
// lives on the injector (not the NI) because several injection ports may
// drain one NI concurrently — the tree's high-fanout root (Section
// II-B.3) gives the memory controller extra injection bandwidth.
type niStream struct {
	ni      *NI
	cur     *Packet
	flits   []Flit // the packet's arena slab; dropped at tail send
	nextSeq int
	vcFlat  int
}

// injector is the injection-side arbiter of one router local input port.
// It models the paper's concentration mux: up to four NIs share the single
// injection port, selected round-robin each cycle; credits mirror the
// router's local input VC buffers.
type injector struct {
	router  *Router
	port    int
	ch      *Channel
	streams []*niStream
	rr      int
	credits []int
	owner   []*Packet
	depth   int
	// primary marks the injector that accounts its NIs' queue-occupancy
	// statistics (secondary root-fanout injectors must not double-count).
	primary bool
	// detached marks an injector removed by DetachLocal; the network's
	// injection list drops marked entries in one order-preserving
	// compaction pass.
	detached bool

	// poolIdx names the shard pool flit slabs are carved from and reg the
	// region whose counters this injector bumps — both assigned by
	// Network.carve so the injection phase touches only its own shard's
	// state.
	poolIdx int
	reg     *shardRegion
}

func newInjector(r *Router, port int, ch *Channel, nis []*NI, primary bool) *injector {
	nvc := NumVNets * r.cfg.VCsPerVNet
	inj := &injector{router: r, port: port, ch: ch, depth: r.cfg.VCDepth, primary: primary}
	for _, ni := range nis {
		inj.streams = append(inj.streams, &niStream{ni: ni})
	}
	inj.credits = make([]int, nvc)
	inj.owner = make([]*Packet, nvc)
	for i := range inj.credits {
		inj.credits[i] = inj.depth
	}
	return inj
}

func (inj *injector) receiveCredit(vc int) {
	inj.credits[vc]++
	if inj.credits[vc] > inj.depth {
		panic(fmt.Sprintf("noc: injection credit overflow at router %d vc %d", inj.router.ID, vc))
	}
}

// tick sends at most one flit from one attached NI into the local port.
func (inj *injector) tick(now sim.Cycle) {
	if inj.primary {
		for _, st := range inj.streams {
			st.ni.act.QueueOccupancySum += int64(st.ni.QueueLen())
		}
	}
	n := len(inj.streams)
	for off := 0; off < n; off++ {
		st := inj.streams[(inj.rr+off)%n]
		if inj.trySend(st, now) {
			inj.rr = (inj.rr + off + 1) % n
			return
		}
	}
}

// tryStart claims a local-input VC for the next startable queued packet
// (virtual cut-through: the VC must be unowned with room for the whole
// packet; VC policy honoured; dateline-exempt, see allowedInjectionVCs)
// and opens the stream.
func (inj *injector) tryStart(st *niStream) bool {
	ni := st.ni
	for i := 0; i < NumVNets; i++ {
		v := VNet((ni.vnRR + i) % NumVNets)
		depth := ni.queues[v].len()
		if depth > scanDepth {
			depth = scanDepth
		}
		for idx := 0; idx < depth; idx++ {
			p := ni.queues[v].at(idx)
			granted := -1
			inj.router.allowedInjectionVCs(p, func(flat int) bool {
				if inj.owner[flat] == nil && inj.credits[flat] >= p.Size {
					granted = flat
					return false
				}
				return true
			})
			if granted < 0 {
				continue
			}
			st.cur = ni.takePacket(v, idx)
			st.flits = inj.router.net.makeFlits(st.cur, inj.poolIdx)
			st.nextSeq = 0
			st.vcFlat = granted
			inj.owner[granted] = st.cur
			ni.openStreams++
			return true
		}
	}
	return false
}

// trySend attempts to emit the stream's next flit; reports whether a flit
// was sent.
func (inj *injector) trySend(st *niStream, now sim.Cycle) bool {
	if st.cur == nil {
		if st.ni.gated {
			return false
		}
		if !inj.tryStart(st) {
			return false
		}
	}
	if inj.credits[st.vcFlat] <= 0 {
		return false
	}
	f := &st.flits[st.nextSeq]
	f.VC = st.vcFlat
	inj.credits[st.vcFlat]--
	inj.ch.send(f, now)
	st.nextSeq++
	net := inj.router.net
	inj.reg.flitsInjected++
	if f.Head {
		st.cur.InjectedAt = now
		st.ni.act.InjectedPackets++
		st.ni.act.QueuingCycles += int64(st.cur.QueuingLatency())
		if net.tracer != nil {
			net.tracer.PacketInjected(st.cur, inj.router.ID, now)
		}
	}
	if f.Tail {
		inj.owner[st.vcFlat] = nil
		st.cur = nil
		st.flits = nil
		st.ni.openStreams--
	}
	return true
}
