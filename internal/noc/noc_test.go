package noc

import (
	"strings"
	"testing"
	"testing/quick"

	"adaptnoc/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, mut := range map[string]func(*Config){
		"zero grid":        func(c *Config) { c.Width = 0 },
		"no VCs":           func(c *Config) { c.VCsPerVNet = 0 },
		"vct depth":        func(c *Config) { c.VCDepth = c.DataFlits - 1 },
		"router latency":   func(c *Config) { c.RouterLatency = 0 },
		"link latency":     func(c *Config) { c.LinkLatency = 0 },
		"zero-flit packet": func(c *Config) { c.CtrlFlits = 0 },
	} {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

func TestLongLinkLatency(t *testing.T) {
	c := DefaultConfig() // 1 mm tiles, 4 mm/cycle
	for _, tc := range []struct{ tiles, want int }{
		{0, 1}, {1, 1}, {4, 1}, {5, 2}, {8, 2}, {-7, 2},
	} {
		if got := c.LongLinkLatency(tc.tiles); got != tc.want {
			t.Errorf("LongLinkLatency(%d) = %d, want %d", tc.tiles, got, tc.want)
		}
	}
}

func TestCoordRoundTrip(t *testing.T) {
	f := func(id uint8) bool {
		n := NodeID(id % 64)
		return CoordOf(n, 8).ID(8) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRoutingTableOps(t *testing.T) {
	tbl := NewRoutingTable(8)
	if _, ok := tbl.Lookup(3); ok {
		t.Fatal("empty table has a route")
	}
	tbl.Set(3, PortEast, ClassSet1)
	e, ok := tbl.Lookup(3)
	if !ok || e.OutPort != PortEast || e.Class != ClassSet1 {
		t.Fatalf("lookup = %+v ok=%v", e, ok)
	}
	if _, ok := tbl.Lookup(99); ok {
		t.Fatal("out-of-range lookup succeeded")
	}
	cp := tbl.Clone()
	cp.Set(3, PortWest, ClassKeep)
	if e, _ := tbl.Lookup(3); e.OutPort != PortEast {
		t.Fatal("Clone aliases the original")
	}
	other := NewRoutingTable(8)
	other.Set(5, PortNorth, ClassKeep)
	merged := tbl.Merge(other)
	if _, ok := merged.Lookup(5); !ok {
		t.Fatal("Merge lost a route")
	}
	if got := len(merged.Destinations()); got != 2 {
		t.Fatalf("Destinations = %d, want 2", got)
	}
	merged.Unset(5)
	if _, ok := merged.Lookup(5); ok {
		t.Fatal("Unset did not remove the route")
	}
}

func TestPortDimConvention(t *testing.T) {
	if PortDim(PortEast) != 0 || PortDim(PortWest) != 0 || PortDim(5) != 0 || PortDim(6) != 0 {
		t.Fatal("X dimension ports wrong")
	}
	if PortDim(PortNorth) != 1 || PortDim(PortSouth) != 1 || PortDim(7) != 1 || PortDim(8) != 1 {
		t.Fatal("Y dimension ports wrong")
	}
	if PortDim(PortLocal) == 0 || PortDim(PortLocal) == 1 {
		t.Fatal("local port must be its own pseudo-dimension")
	}
	if PortDim(9) == PortDim(10) {
		t.Fatal("express ports must get distinct pseudo-dimensions")
	}
}

func TestChannelOneFlitPerCycle(t *testing.T) {
	ch := newChannel(Endpoint{Kind: EndRouter, Router: 0, Port: PortEast},
		Endpoint{Kind: EndRouter, Router: 1, Port: PortWest}, ChanMesh, 1, 1)
	p := &Packet{ID: 1, Size: 2}
	fs := MakeFlits(p)
	ch.send(&fs[0], 10)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("two sends in one cycle did not panic")
		} else if !strings.Contains(r.(string), "two flits") {
			t.Fatalf("unexpected panic %v", r)
		}
	}()
	ch.send(&fs[1], 10)
}

func TestChannelInactiveSendPanics(t *testing.T) {
	ch := newChannel(Endpoint{Kind: EndRouter}, Endpoint{Kind: EndRouter, Router: 1}, ChanMesh, 1, 1)
	ch.setActive(false)
	defer func() {
		if recover() == nil {
			t.Fatal("send on inactive channel did not panic")
		}
	}()
	fs := MakeFlits(&Packet{ID: 1, Size: 1})
	ch.send(&fs[0], 0)
}

func TestChannelDeliveryLatencyAndHarvest(t *testing.T) {
	ch := newChannel(Endpoint{Kind: EndRouter}, Endpoint{Kind: EndRouter, Router: 1}, ChanMesh, 3, 1)
	fs := MakeFlits(&Packet{ID: 1, Size: 1})
	ch.send(&fs[0], 5)
	delivered := 0
	ch.deliverFlits(7, func(*Flit) { delivered++ })
	if delivered != 0 {
		t.Fatal("delivered before latency elapsed")
	}
	if !ch.Busy() {
		t.Fatal("channel with in-flight flit not busy")
	}
	ch.deliverFlits(8, func(*Flit) { delivered++ })
	if delivered != 1 {
		t.Fatalf("delivered = %d at latency", delivered)
	}
	if ch.Busy() {
		t.Fatal("drained channel still busy")
	}
	if got := ch.TakeFlits(); got != 1 {
		t.Fatalf("TakeFlits = %d", got)
	}
	if got := ch.TakeFlits(); got != 0 {
		t.Fatalf("second TakeFlits = %d, want 0", got)
	}
}

func TestMakeFlitsShape(t *testing.T) {
	p := &Packet{ID: 9, Size: 3}
	fs := MakeFlits(p)
	if len(fs) != 3 || !fs[0].Head || fs[0].Tail || !fs[2].Tail || fs[1].Head || fs[1].Tail {
		t.Fatalf("flit shape wrong: %+v", fs)
	}
	for i, f := range fs {
		if f.Seq != i || f.Pkt != p {
			t.Fatalf("flit %d mislinked", i)
		}
	}
}

// rig2 wires two routers in a row with 1:1 NIs and straight-line tables.
func rig2(cfg Config) (*Network, *sim.Kernel) {
	net := NewNetwork(cfg)
	net.ConnectBidir(0, PortEast, 1, PortWest, ChanMesh, cfg.LinkLatency, 1)
	net.AttachLocal(0, []NodeID{0}, 1)
	net.AttachLocal(1, []NodeID{1}, 1)
	t0 := NewRoutingTable(cfg.NumNodes())
	t0.Set(0, PortLocal, ClassKeep)
	t0.Set(1, PortEast, ClassKeep)
	t1 := NewRoutingTable(cfg.NumNodes())
	t1.Set(1, PortLocal, ClassKeep)
	t1.Set(0, PortWest, ClassKeep)
	for v := VNet(0); v < NumVNets; v++ {
		net.Router(0).SetTable(v, t0)
		net.Router(1).SetTable(v, t1)
	}
	k := sim.NewKernel()
	k.Register(net)
	return net, k
}

func TestVCTPacketsDoNotInterleave(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 2, 1
	net, k := rig2(cfg)
	var order []uint64
	net.SetDeliverFunc(func(p *Packet, _ sim.Cycle) { order = append(order, p.ID) })
	for i := 0; i < 6; i++ {
		net.Enqueue(net.NewPacket(0, 1, ClassData, VNetReply, 0), 0)
	}
	k.Run(200)
	if len(order) != 6 {
		t.Fatalf("delivered %d of 6", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("same-flow packets reordered: %v", order)
		}
	}
	if err := net.CheckCreditInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestInjectionBypassSavesPipelineCycles(t *testing.T) {
	lat := func(bypass bool) sim.Cycle {
		cfg := DefaultConfig()
		cfg.Width, cfg.Height = 2, 1
		cfg.InjectionBypass = bypass
		net, k := rig2(cfg)
		var total sim.Cycle
		net.SetDeliverFunc(func(p *Packet, _ sim.Cycle) { total = p.TotalLatency() })
		net.Enqueue(net.NewPacket(0, 1, ClassCoherence, VNetRequest, 0), 0)
		k.Run(100)
		return total
	}
	with, without := lat(true), lat(false)
	if with >= without {
		t.Fatalf("bypass latency %d not below %d", with, without)
	}
	if without-with != sim.Cycle(DefaultConfig().RouterLatency) {
		t.Fatalf("bypass saved %d cycles, want Tr=%d", without-with, DefaultConfig().RouterLatency)
	}
}

func TestPowerGatingAddsWakeLatencyAndSleeps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 2, 1
	net, k := rig2(cfg)
	net.Router(1).EnablePowerGating(20, 5)
	var lat sim.Cycle
	net.SetDeliverFunc(func(p *Packet, _ sim.Cycle) { lat = p.TotalLatency() })

	// Let router 1 fall asleep.
	k.Run(100)
	if !net.Router(1).Asleep() {
		t.Fatal("idle gated router never slept")
	}
	net.Enqueue(net.NewPacket(0, 1, ClassCoherence, VNetRequest, 0), k.Now())
	k.RunFor(200)
	if lat == 0 {
		t.Fatal("packet not delivered through gated router")
	}

	// Compare with an ungated rig.
	net2, k2 := rig2(cfg)
	var lat2 sim.Cycle
	net2.SetDeliverFunc(func(p *Packet, _ sim.Cycle) { lat2 = p.TotalLatency() })
	k2.Run(100)
	net2.Enqueue(net2.NewPacket(0, 1, ClassCoherence, VNetRequest, 0), k2.Now())
	k2.RunFor(200)
	if lat <= lat2 {
		t.Fatalf("wake-up latency missing: gated %d vs ungated %d", lat, lat2)
	}
	act := net.Router(1).TakeActivity()
	if act.WakeUps == 0 || act.GatedCycles == 0 {
		t.Fatalf("gating not accounted: %+v", act)
	}
}

func TestVCPolicyRestrictsAllocation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 2, 1
	net, k := rig2(cfg)
	// Forbid everything for app 7: its packets must never inject.
	policy := func(p *Packet, _ VNet, _ int) bool { return p.App != 7 }
	net.Router(0).SetVCPolicy(policy)
	net.Router(1).SetVCPolicy(policy)

	delivered := map[int]int{}
	net.SetDeliverFunc(func(p *Packet, _ sim.Cycle) { delivered[p.App]++ })
	net.Enqueue(net.NewPacket(0, 1, ClassCoherence, VNetRequest, 7), 0)
	net.Enqueue(net.NewPacket(0, 1, ClassCoherence, VNetRequest, 1), 0)
	k.Run(300)
	if delivered[7] != 0 {
		t.Fatal("fully-forbidden app still delivered")
	}
	if delivered[1] != 1 {
		t.Fatal("allowed app blocked")
	}
}

func TestGatedNIHoldsNewPackets(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 2, 1
	net, k := rig2(cfg)
	delivered := 0
	net.SetDeliverFunc(func(*Packet, sim.Cycle) { delivered++ })
	net.NI(0).SetGated(true)
	net.Enqueue(net.NewPacket(0, 1, ClassCoherence, VNetRequest, 0), 0)
	k.Run(100)
	if delivered != 0 {
		t.Fatal("gated NI injected")
	}
	if net.PendingPackets() != 1 {
		t.Fatalf("pending = %d, want 1", net.PendingPackets())
	}
	net.NI(0).SetGated(false)
	k.RunFor(100)
	if delivered != 1 {
		t.Fatal("ungated NI did not inject")
	}
	if !net.Quiescent() {
		t.Fatal("not quiescent after delivery")
	}
}

func TestSelfAddressedPacketPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 2, 1
	net, _ := rig2(cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("self-addressed packet accepted")
		}
	}()
	net.Enqueue(net.NewPacket(1, 1, ClassCoherence, VNetRequest, 0), 0)
}

func TestActivityCountersTrackEvents(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 2, 1
	net, k := rig2(cfg)
	net.Enqueue(net.NewPacket(0, 1, ClassData, VNetReply, 0), 0)
	k.Run(100)
	act := net.Router(0).TakeActivity()
	size := int64(cfg.DataFlits)
	if act.BufferWrites != size || act.BufferReads != size || act.CrossbarTrav != size {
		t.Fatalf("per-flit counters wrong: %+v", act)
	}
	if act.VAGrants != 1 || act.RoutedPackets != 1 {
		t.Fatalf("per-packet counters wrong: %+v", act)
	}
	// TakeActivity resets.
	if a2 := net.Router(0).TakeActivity(); a2.BufferWrites != 0 {
		t.Fatal("TakeActivity did not reset")
	}
}

func TestInjectionFanoutDoublesBandwidth(t *testing.T) {
	// Two injection ports draining one NI (the tree root's MC fanout)
	// must sustain ~2 flits/cycle where a single port sustains ~1.
	run := func(fanout bool) int {
		cfg := DefaultConfig()
		cfg.Width, cfg.Height = 2, 1
		net := NewNetwork(cfg)
		net.ConnectBidir(0, PortEast, 1, PortWest, ChanMesh, cfg.LinkLatency, 1)
		// Router 0 gets a second east-side channel on an extra port so the
		// two injection streams do not serialize at one output.
		p0 := net.Router(0).AddPort()
		p1 := net.Router(1).AddPort()
		net.Connect(Endpoint{Kind: EndRouter, Router: 0, Port: p0},
			Endpoint{Kind: EndRouter, Router: 1, Port: p1}, ChanMesh, cfg.LinkLatency, 1)
		net.AttachLocal(0, []NodeID{0}, 1)
		net.AttachLocal(1, []NodeID{1}, 1)
		// Router 1 gets a second ejection port so delivery is not the cap.
		ej2 := net.Router(1).AddPort()
		net.AttachLocalPort(1, ej2, []NodeID{1}, 1)
		extra := net.Router(0).AddPort()
		if fanout {
			net.AttachInjectionPort(0, extra, []NodeID{0}, 1)
		}
		// Split the two virtual networks over the two east channels so the
		// output side offers 2 flits/cycle and the injection side is the
		// binding constraint.
		tReq := NewRoutingTable(cfg.NumNodes())
		tReq.Set(0, PortLocal, ClassKeep)
		tReq.Set(1, PortEast, ClassKeep)
		tRep := NewRoutingTable(cfg.NumNodes())
		tRep.Set(0, PortLocal, ClassKeep)
		tRep.Set(1, p0, ClassKeep)
		net.Router(0).SetTable(VNetRequest, tReq)
		net.Router(0).SetTable(VNetReply, tRep)
		t1Req := NewRoutingTable(cfg.NumNodes())
		t1Req.Set(1, PortLocal, ClassKeep)
		t1Req.Set(0, PortWest, ClassKeep)
		t1Rep := NewRoutingTable(cfg.NumNodes())
		t1Rep.Set(1, ej2, ClassKeep)
		t1Rep.Set(0, PortWest, ClassKeep)
		net.Router(1).SetTable(VNetRequest, t1Req)
		net.Router(1).SetTable(VNetReply, t1Rep)
		k := sim.NewKernel()
		k.Register(net)
		delivered := 0
		net.SetDeliverFunc(func(*Packet, sim.Cycle) { delivered++ })
		// Saturating offered load of single-flit packets.
		k.Register(sim.TickerFunc(func(now sim.Cycle) {
			if now < 2000 {
				net.Enqueue(net.NewPacket(0, 1, ClassCoherence, VNetRequest, 0), now)
				net.Enqueue(net.NewPacket(0, 1, ClassData, VNetReply, 0), now)
			}
		}))
		k.Run(2400)
		return delivered
	}
	single, double := run(false), run(true)
	if single == 0 {
		t.Fatal("no throughput")
	}
	// One output channel limits both cases to ~1 flit/cycle; the fanout
	// case must clearly exceed the single injector's throughput because
	// two streams feed the router's local VCs in parallel.
	if float64(double) < 1.25*float64(single) {
		t.Fatalf("fanout throughput %d not well above single %d", double, single)
	}
}

func TestStringers(t *testing.T) {
	if VNetRequest.String() != "request" || VNetReply.String() != "reply" {
		t.Fatal("vnet strings")
	}
	if !strings.Contains(VNet(7).String(), "7") {
		t.Fatal("unknown vnet string")
	}
	if ClassCoherence.String() != "coherence" || ClassData.String() != "data" {
		t.Fatal("class strings")
	}
	e := Endpoint{Kind: EndRouter, Router: 5, Port: PortNorth}
	if e.String() != "r5.north" {
		t.Fatalf("endpoint = %q", e.String())
	}
	ni := Endpoint{Kind: EndNI, NI: 7}
	if ni.String() != "ni7" {
		t.Fatalf("NI endpoint = %q", ni.String())
	}
	for k, want := range map[ChannelKind]string{
		ChanMesh: "mesh", ChanAdaptable: "adaptable", ChanConcentration: "concentration",
		ChanExpress: "express", ChanLocal: "local",
	} {
		if k.String() != want {
			t.Fatalf("channel kind %d = %q", int(k), k.String())
		}
	}
	p := &Packet{ID: 3, Src: 1, Dst: 2, Class: ClassData, VNet: VNetReply, Size: 3, App: 0}
	if !strings.Contains(p.String(), "pkt#3") || !strings.Contains(p.String(), "1->2") {
		t.Fatalf("packet string %q", p)
	}
	tbl := NewRoutingTable(4)
	tbl.Set(1, PortEast, ClassKeep)
	if !strings.Contains(tbl.String(), "1/4") {
		t.Fatalf("table string %q", tbl.String())
	}
}

func TestPacketLatencyAccessors(t *testing.T) {
	p := &Packet{EnqueuedAt: 10, InjectedAt: 14, EjectedAt: 40}
	if p.QueuingLatency() != 4 || p.NetworkLatency() != 26 || p.TotalLatency() != 30 {
		t.Fatalf("latency accessors: %d %d %d",
			p.QueuingLatency(), p.NetworkLatency(), p.TotalLatency())
	}
}

func TestAttachedPortsCountsOnlyWired(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 2, 1
	net, _ := rig2(cfg)
	r := net.Router(0)
	base := r.AttachedPorts() // local + east
	if base != 2 {
		t.Fatalf("AttachedPorts = %d, want 2", base)
	}
	r.AddPort() // grown but unattached: powered off
	if r.AttachedPorts() != base {
		t.Fatal("unattached port counted")
	}
}
