package noc

// Region-parallel tick sharding. The mesh is partitioned into contiguous
// bands of rows, one per shard; each band becomes a shardRegion owning the
// routers, NIs, injectors, and internal channels whose serving router sits
// in the band. Regions tick in parallel on a persistent sim.Gang and only
// the boundary channels — the router-to-router links whose endpoints sit
// in different bands — are ticked serially at the barrier, in canonical
// order. Determinism is argued in Network.Tick's comment; the partition
// itself is rebuilt by carve() whenever wiring or the shard count changes.

import (
	"runtime"

	"adaptnoc/internal/sim"
)

// Gang phase selectors (see Network.Tick).
const (
	gangPhaseChannels = iota
	gangPhaseRouters
)

// autoShardNodes is the chip size at which SetShards(0) starts sharding:
// below 16×16 the per-cycle work is too small for the barrier to pay off.
const autoShardNodes = 256

// shardRegion is one shard's slice of the network: the work lists,
// injector group, delivery buffer, and counters that its worker may touch
// without synchronization during the parallel phases. Every field mirrors
// the pre-sharding Network field of the same name; the per-region split
// keeps the PR-4 zero-alloc steady state per worker (each list reaches a
// stable capacity and stops growing).
type shardRegion struct {
	activeCh []*Channel
	wokenCh  []*Channel
	activeR  []*Router
	wokenR   []*Router
	injs     []*injector

	// pending buffers the packets whose tail flit ejected this cycle; the
	// barrier replays them through the delivery callback in canonical
	// order. deliver is the closure appending to pending, built once so
	// the per-tail-flit call allocates nothing.
	pending []*Packet
	deliver DeliverFunc

	// Per-cycle counters folded into the network totals at the merge
	// phase.
	tickedCh      int64
	tickedR       int64
	flitsInjected int64
	flitsEjected  int64
}

// SetShards sets the number of tick shards. k <= 0 selects automatically:
// GOMAXPROCS shards for chips of autoShardNodes tiles and up, serial
// below. The count is clamped to the row count (a shard owns at least one
// row). Sharding is a runtime execution knob, not simulation state — any
// value produces byte-identical results — so it is not part of Config and
// not serialized in checkpoints.
func (n *Network) SetShards(k int) {
	if k <= 0 {
		k = 1
		if n.Cfg.NumNodes() >= autoShardNodes {
			k = runtime.GOMAXPROCS(0)
		}
	}
	if k > n.Cfg.Height {
		k = n.Cfg.Height
	}
	if k < 1 {
		k = 1
	}
	if k == n.shards {
		return
	}
	n.shards = k
	n.carveDirty = true
}

// Shards returns the current tick shard count.
func (n *Network) Shards() int { return n.shards }

// ShardOfRouter returns the shard that owns a router under the current
// partition (carving first if the partition is stale). Diagnostic: lets
// tests and tools confirm the banding matches topology.PartitionRows.
func (n *Network) ShardOfRouter(id NodeID) int {
	if n.carveDirty {
		n.carve()
	}
	return n.routers[id].shard
}

// StopWorkers releases the shard worker goroutines (idempotent). The
// network remains usable: the next Tick of a sharded network re-carves and
// restarts them. Call when parking a network for a long time so idle
// simulations do not pin goroutines.
func (n *Network) StopWorkers() {
	if n.gang != nil {
		n.gang.Stop()
		n.gang = nil
		n.carveDirty = true
	}
}

// shardOf returns the shard owning an endpoint. NI endpoints carry the
// serving router's ID in their NI field (see attachLocalPort), so every
// injection, ejection, and concentration channel lands in its router's
// shard and only router-to-router links can cross shards.
func (n *Network) shardOf(e Endpoint) int {
	if e.Kind == EndRouter {
		return n.routers[e.Router].shard
	}
	return n.routers[e.NI].shard
}

// carve (re)builds the shard partition from live state: assigns every
// router, channel, and injector to its region, rebuilds the per-region
// work lists, and sizes the worker gang. It runs at the next Tick after
// any wiring mutation, shard-count change, or checkpoint restore — the
// work lists are derived state, so rebuilding them cannot change what the
// simulation computes:
//
//   - a channel is on an active list if and only if it is Busy, which is
//     exactly the queued invariant the incremental wake/compact protocol
//     maintains (wake implies Busy; entries drain only inside tickChannel;
//     a ticked channel is kept only while Busy);
//   - a router is on an active list if and only if it is not parked;
//   - list order is unobservable (Tick's canonical delivery replay is the
//     only same-cycle ordering the simulation can see).
func (n *Network) carve() {
	n.carveDirty = false
	k := n.shards
	w, h := n.Cfg.Width, n.Cfg.Height

	for len(n.pools) < k {
		n.pools = append(n.pools, pool{})
	}

	if len(n.regions) != k {
		n.regions = make([]*shardRegion, k)
		for i := range n.regions {
			reg := &shardRegion{}
			reg.deliver = func(p *Packet, now sim.Cycle) { reg.pending = append(reg.pending, p) }
			n.regions[i] = reg
		}
	} else {
		for _, reg := range n.regions {
			for i := range reg.activeCh {
				reg.activeCh[i] = nil
			}
			reg.activeCh = reg.activeCh[:0]
			for i := range reg.wokenCh {
				reg.wokenCh[i] = nil
			}
			reg.wokenCh = reg.wokenCh[:0]
			for i := range reg.activeR {
				reg.activeR[i] = nil
			}
			reg.activeR = reg.activeR[:0]
			for i := range reg.wokenR {
				reg.wokenR[i] = nil
			}
			reg.wokenR = reg.wokenR[:0]
			for i := range reg.injs {
				reg.injs[i] = nil
			}
			reg.injs = reg.injs[:0]
		}
	}

	// Row→shard map: contiguous bands whose sizes differ by at most one,
	// matching topology.PartitionRows. Built by iterating the bands — the
	// closed-form inverse y*k/h misassigns rows when h % k != 0.
	if cap(n.rowShard) < h {
		n.rowShard = make([]int, h)
	}
	rows := n.rowShard[:h]
	for i := 0; i < k; i++ {
		for y := i * h / k; y < (i+1)*h/k; y++ {
			rows[y] = i
		}
	}

	// Routers: a Y band is a contiguous row-major ID range, so iterating
	// in ID order yields each region's active list in ID order.
	for _, r := range n.routers {
		r.shard = rows[int(r.ID)/w]
		if !r.parked {
			n.regions[r.shard].activeR = append(n.regions[r.shard].activeR, r)
		}
	}

	// Channels, in canonical order so every region list and the boundary
	// list are pure functions of live state. Boundary channels stay
	// permanently queued: their wake() must be a no-op because the sending
	// region may not touch another region's work list.
	for i := range n.boundaryCh {
		n.boundaryCh[i] = nil
	}
	n.boundaryCh = n.boundaryCh[:0]
	for _, ch := range n.sortedChannels() {
		s := n.shardOf(ch.From)
		ch.shard = s
		if d := n.shardOf(ch.To); d != s {
			ch.boundary = true
			ch.queued = true
			n.boundaryCh = append(n.boundaryCh, ch)
			continue
		}
		ch.boundary = false
		if ch.Busy() {
			ch.queued = true
			n.regions[s].activeCh = append(n.regions[s].activeCh, ch)
		} else {
			// A channel leaving permanently-queued boundary duty mutated
			// without wake() ever firing; its splice cache is stale.
			ch.queued = false
			ch.snapClean = false
		}
	}

	// Injectors: grouping the (router, port)-sorted injection list by
	// region preserves the global order as the concatenation of the
	// per-region orders (a region is a contiguous ID range).
	for _, inj := range n.injList {
		s := inj.router.shard
		inj.poolIdx = s
		inj.reg = n.regions[s]
		n.regions[s].injs = append(n.regions[s].injs, inj)
	}

	// Worker gang: k-1 workers (the caller's goroutine runs region 0
	// between Kick and Wait). Serial networks hold no workers at all so
	// idle simulations pin no goroutines.
	if k > 1 {
		if n.gang != nil && n.gang.Workers() != k-1 {
			n.gang.Stop()
			n.gang = nil
		}
		if n.gang == nil {
			n.gang = sim.NewGang(k-1, func(worker, phase int) {
				reg := n.regions[worker+1]
				if phase == gangPhaseChannels {
					n.regionChannels(reg, n.gangNow)
				} else {
					n.regionRouters(reg, n.gangNow)
				}
			})
		}
	} else if n.gang != nil {
		n.gang.Stop()
		n.gang = nil
	}
}

// regionChannels is one region's share of the channel phase: merge the
// channels woken since the previous tick (router traversals, injector
// sends, ejection credits — their earliest delivery is this cycle at the
// soonest, so merging here loses nothing), then tick the internal active
// list with keep-compaction.
func (n *Network) regionChannels(reg *shardRegion, now sim.Cycle) {
	if len(reg.wokenCh) > 0 {
		reg.activeCh = append(reg.activeCh, reg.wokenCh...)
		reg.wokenCh = reg.wokenCh[:0]
	}
	keep := reg.activeCh[:0]
	for _, ch := range reg.activeCh {
		if !ch.active {
			ch.queued = false
			ch.snapClean = false
			continue
		}
		n.tickChannel(ch, now, reg)
		reg.tickedCh++
		if ch.Busy() {
			keep = append(keep, ch)
		} else {
			ch.queued = false
			ch.snapClean = false
		}
	}
	for i := len(keep); i < len(reg.activeCh); i++ {
		reg.activeCh[i] = nil
	}
	reg.activeCh = keep
}

// regionRouters is one region's share of the router phase: merge routers
// woken by this cycle's deliveries (they must still tick this cycle),
// tick the active list with park-compaction, then run the region's
// injectors in deterministic (router, port) order.
func (n *Network) regionRouters(reg *shardRegion, now sim.Cycle) {
	if len(reg.wokenR) > 0 {
		reg.activeR = append(reg.activeR, reg.wokenR...)
		reg.wokenR = reg.wokenR[:0]
	}
	reg.tickedR += int64(len(reg.activeR))
	keep := reg.activeR[:0]
	for _, r := range reg.activeR {
		r.Tick(now)
		if !r.parked {
			keep = append(keep, r)
		}
	}
	for i := len(keep); i < len(reg.activeR); i++ {
		reg.activeR[i] = nil
	}
	reg.activeR = keep

	for _, inj := range reg.injs {
		inj.tick(now)
	}
}
