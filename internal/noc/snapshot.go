package noc

// Checkpoint support for the network. The serialized state is everything
// the tick loop can observe:
//
//   - live packets by value, keyed by ID (arena pointers are never
//     serialized; restore carves fresh slabs and rebuilds an ID index);
//   - per-NI injection queues, stream counters, and activity windows;
//   - per-router VC ring contents as (packet ID, seq, visibleAt) triples
//     plus head-of-line routing/allocation state, output credit mirrors,
//     switch holds, gating dynamics, and activity counters;
//   - per-injector stream and credit state;
//   - per-channel in-flight flits and credits, serialized with channels
//     sorted by (From, To) because the membership slice's order is
//     incidental (swap-removal).
//
// The active/woken work lists and the arena shape are deliberately NOT
// serialized: both are derived execution state whose layout depends on the
// tick shard count, and a checkpoint must be byte-identical no matter how
// many shards wrote it. The work lists are a pure function of live state
// (a channel is listed iff Busy, a router iff not parked) and list order
// is unobservable since Tick canonicalizes same-cycle delivery order, so
// Restore just schedules a carve() and the next Tick rebuilds them. The
// arena refills through ordinary delivery recycling; PoolStats after a
// restore count from the restore point (diagnostic state only — nothing
// the simulation computes reads them).
//
// Derived state (occupancy counts, live masks, held masks, resolved
// pointers) is recomputed. Restore runs against a freshly constructed
// network whose static wiring (topology, attachments, tables) has already
// been rebuilt by replaying the configuration, and validates every
// reference so a corrupted checkpoint fails with an error instead of
// corrupting the simulation.

import (
	"bytes"
	"fmt"
	"sort"

	"adaptnoc/internal/sim"
	"adaptnoc/internal/snap"
)

// PayloadCodec serializes the opaque Packet.Payload values a simulation
// attaches. The system model owns the payload types, so it provides the
// codec; pure-traffic networks (nil payloads) need none.
type PayloadCodec interface {
	EncodePayload(w *snap.Writer, payload any) error
	DecodePayload(r *snap.Reader) (any, error)
}

func snapshotEndpoint(w *snap.Writer, e Endpoint) {
	w.Int(int(e.Kind))
	w.Int(int(e.Router))
	w.Int(e.Port)
	w.Int(int(e.NI))
}

func restoreEndpoint(r *snap.Reader) (Endpoint, error) {
	var e Endpoint
	kind, err := r.Int()
	if err != nil {
		return e, err
	}
	e.Kind = EndpointKind(kind)
	router, err := r.Int()
	if err != nil {
		return e, err
	}
	e.Router = NodeID(router)
	if e.Port, err = r.Int(); err != nil {
		return e, err
	}
	ni, err := r.Int()
	if err != nil {
		return e, err
	}
	e.NI = NodeID(ni)
	return e, nil
}

// endpointLess orders endpoints for the canonical channel ordering.
func endpointLess(a, b Endpoint) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Router != b.Router {
		return a.Router < b.Router
	}
	if a.NI != b.NI {
		return a.NI < b.NI
	}
	return a.Port < b.Port
}

func channelLess(a, b *Channel) bool {
	if a.From != b.From {
		return endpointLess(a.From, b.From)
	}
	return endpointLess(a.To, b.To)
}

// sortedChannels returns the live channels in canonical (From, To) order.
func (n *Network) sortedChannels() []*Channel {
	chs := append([]*Channel(nil), n.channels...)
	sort.Slice(chs, func(i, j int) bool { return channelLess(chs[i], chs[j]) })
	return chs
}

// livePackets collects every packet reachable from the network's dynamic
// state, sorted by ID.
func (n *Network) livePackets() []*Packet {
	seen := make(map[uint64]*Packet)
	add := func(p *Packet) {
		if p != nil {
			seen[p.ID] = p
		}
	}
	for _, ni := range n.nis {
		for v := range ni.queues {
			q := &ni.queues[v]
			for i := 0; i < q.len(); i++ {
				add(q.at(i))
			}
		}
	}
	for _, inj := range n.injList {
		for _, st := range inj.streams {
			add(st.cur)
		}
	}
	for _, r := range n.routers {
		r.ForEachBufferedFlit(func(_, _ int, f *Flit) { add(f.Pkt) })
	}
	for _, ch := range n.channels {
		for _, e := range ch.fwd[ch.fwdHead:] {
			add(e.flit.Pkt)
		}
	}
	pkts := make([]*Packet, 0, len(seen))
	for _, p := range seen {
		pkts = append(pkts, p)
	}
	sort.Slice(pkts, func(i, j int) bool { return pkts[i].ID < pkts[j].ID })
	return pkts
}

// Snapshot writes the network's complete dynamic state. codec serializes
// packet payloads; it may be nil if every live payload is nil.
// Part-mark kinds inside the net section. Marks key each component record
// by a stable identity so the delta encoder aligns records across two
// snapshots (see snap.Part); they never enter the serialized bytes.
const (
	partNetHeader = iota
	partNetPacket
	partNetNI
	partNetRouter
	partNetInjector
	partNetChannel
)

// channelPartKey folds both endpoints into a stable identity that survives
// packets and routers churning around the channel. FNV-1a over the
// endpoint fields, folded to the 56 bits a part key can carry.
func channelPartKey(ch *Channel) uint64 {
	h := uint64(1469598103934665603)
	step := func(v int) {
		h ^= uint64(uint32(v))
		h *= 1099511628211
	}
	for _, e := range []Endpoint{ch.From, ch.To} {
		step(int(e.Kind))
		step(int(e.Router))
		step(e.Port)
		step(int(e.NI))
	}
	return snap.PartKey(partNetChannel, h)
}

func (n *Network) Snapshot(w *snap.Writer, codec PayloadCodec) error {
	w.Mark(snap.PartKey(partNetHeader, 0))
	w.U64(n.nextPkt)
	w.I64(int64(n.lastTick))
	w.I64(n.TotalEnqueued)
	w.I64(n.TotalDelivered)
	w.I64(n.TotalFlitsInjected)
	w.I64(n.TotalFlitsEjected)
	w.I64(n.stats.Cycles)
	w.I64(n.stats.RouterTicks)
	w.I64(n.stats.RouterSkips)
	w.I64(n.stats.ChannelTicks)
	w.I64(n.stats.ChannelSkips)

	// Live packets by value.
	pkts := n.livePackets()
	w.Uvarint(uint64(len(pkts)))
	for _, p := range pkts {
		w.Mark(snap.PartKey(partNetPacket, p.ID))
		w.U64(p.ID)
		w.Int(int(p.Src))
		w.Int(int(p.Dst))
		w.Int(int(p.Class))
		w.Int(int(p.VNet))
		w.Int(p.Size)
		w.Int(p.App)
		w.I64(int64(p.EnqueuedAt))
		w.I64(int64(p.InjectedAt))
		w.I64(int64(p.EjectedAt))
		w.Int(p.Hops)
		w.Int(p.datelineClass)
		w.Int(int(p.lastDim))
		w.Int(p.rxFlits)
		w.Bool(p.flits != nil)
		if codec == nil {
			if p.Payload != nil {
				return fmt.Errorf("noc: packet %v carries a payload but no codec is installed", p)
			}
			w.Bool(false)
		} else {
			w.Bool(true)
			if err := codec.EncodePayload(w, p.Payload); err != nil {
				return err
			}
		}
	}

	// NIs, in tile order.
	w.Uvarint(uint64(len(n.nis)))
	for _, ni := range n.nis {
		w.Mark(snap.PartKey(partNetNI, uint64(ni.ID)))
		for v := range ni.queues {
			q := &ni.queues[v]
			w.Uvarint(uint64(q.len()))
			for i := 0; i < q.len(); i++ {
				w.U64(q.at(i).ID)
			}
		}
		w.Int(ni.vnRR)
		w.Int(ni.openStreams)
		w.Int(ni.rxOpen)
		w.Bool(ni.gated)
		w.I64(ni.act.QueueOccupancySum)
		w.I64(ni.act.EnqueuedPackets)
		w.I64(ni.act.InjectedPackets)
		w.I64(ni.act.DeliveredPackets)
		w.I64(ni.act.DeliveredFlits)
		w.I64(ni.act.QueuingCycles)
	}

	// Routers, in tile order. A parked router with a clean splice cache is
	// copied from its previous serialization instead of re-walked; parked
	// routers dominate a mostly-idle mesh, so this turns the snapshot walk
	// from O(chip) into O(active region) + a memcpy.
	w.Uvarint(uint64(len(n.routers)))
	for _, r := range n.routers {
		w.Mark(snap.PartKey(partNetRouter, uint64(r.ID)))
		if r.parked && r.snapClean && r.snapBytes != nil {
			if SnapshotVerify {
				if err := verifySplice("router", int(r.ID), r.snapBytes, func(vw *snap.Writer) { r.snapshot(vw) }); err != nil {
					return err
				}
			}
			w.Raw(r.snapBytes)
			continue
		}
		start := w.Len()
		r.snapshot(w)
		r.snapBytes = append(r.snapBytes[:0], w.Bytes()[start:]...)
		r.snapClean = r.parked
	}

	// Injectors, in the deterministic injection-list order (which is the
	// sorted (router, port) order and is reproduced by the wiring replay).
	w.Uvarint(uint64(len(n.injList)))
	for _, inj := range n.injList {
		w.Mark(snap.PartKey(partNetInjector, uint64(inj.router.ID)<<8|uint64(inj.port)))
		w.Int(int(inj.router.ID))
		w.Int(inj.port)
		w.Int(inj.rr)
		w.Uvarint(uint64(len(inj.credits)))
		for _, c := range inj.credits {
			w.Int(c)
		}
		w.Uvarint(uint64(len(inj.streams)))
		for _, st := range inj.streams {
			w.Int(int(st.ni.ID))
			w.Bool(st.cur != nil)
			if st.cur != nil {
				w.U64(st.cur.ID)
				w.Int(st.nextSeq)
				w.Int(st.vcFlat)
			}
		}
	}

	// Channels in canonical order, with in-flight contents. Like parked
	// routers, quiet channels splice their cached serialization.
	chs := n.sortedChannels()
	w.Uvarint(uint64(len(chs)))
	for _, ch := range chs {
		w.Mark(channelPartKey(ch))
		if !ch.queued && ch.snapClean && ch.snapBytes != nil {
			if SnapshotVerify {
				if err := verifySplice("channel", int(ch.From.Router), ch.snapBytes, ch.snapshot); err != nil {
					return err
				}
			}
			w.Raw(ch.snapBytes)
			continue
		}
		start := w.Len()
		ch.snapshot(w)
		ch.snapBytes = append(ch.snapBytes[:0], w.Bytes()[start:]...)
		ch.snapClean = !ch.queued
	}
	return nil
}

// snapshot writes one channel's dynamic state.
func (ch *Channel) snapshot(w *snap.Writer) {
	snapshotEndpoint(w, ch.From)
	snapshotEndpoint(w, ch.To)
	w.I64(int64(ch.lastSend))
	w.Bool(ch.sentAny)
	w.I64(ch.FlitsCarried)
	w.I64(ch.harvested)
	w.Uvarint(uint64(len(ch.fwd) - ch.fwdHead))
	for _, e := range ch.fwd[ch.fwdHead:] {
		w.U64(e.flit.Pkt.ID)
		w.Int(e.flit.Seq)
		w.Int(e.flit.VC)
		w.I64(int64(e.deliverAt))
	}
	w.Uvarint(uint64(len(ch.rev) - ch.revHead))
	for _, e := range ch.rev[ch.revHead:] {
		w.Int(e.credit.vc)
		w.I64(int64(e.deliverAt))
	}
}

// SnapshotVerify makes Snapshot re-serialize every component it would
// splice from cache and fail loudly on any byte difference — the tripwire
// for a mutation site missing its snapClean clear. Tests arm it;
// production leaves it off.
var SnapshotVerify = false

func verifySplice(kind string, id int, cached []byte, build func(*snap.Writer)) error {
	var vw snap.Writer
	build(&vw)
	if !bytes.Equal(vw.Bytes(), cached) {
		return fmt.Errorf("noc: %s %d changed while marked snapshot-clean — missed mutation site", kind, id)
	}
	return nil
}

// snapshot writes one router's dynamic state.
func (r *Router) snapshot(w *snap.Writer) {
	w.I64(int64(r.tableReadyAt))
	w.Bool(r.disabled)
	w.Bool(r.asleep)
	w.I64(int64(r.wakeAt))
	w.I64(int64(r.lastActive))
	w.Bool(r.parked)
	w.I64(int64(r.parkedAt))
	w.Int(r.vaRR)
	w.I64(r.act.BufferWrites)
	w.I64(r.act.BufferReads)
	w.I64(r.act.CrossbarTrav)
	w.I64(r.act.VAGrants)
	w.I64(r.act.SAGrants)
	w.I64(r.act.OccupancySum)
	w.I64(r.act.ActiveCycles)
	w.I64(r.act.GatedCycles)
	w.I64(r.act.WakeUps)
	w.I64(r.act.BufferedPeak)
	w.I64(r.act.RoutedPackets)

	w.Uvarint(uint64(len(r.inputs)))
	for pi := range r.inputs {
		in := &r.inputs[pi]
		for i := range in.vcs {
			vc := &in.vcs[i]
			w.Uvarint(uint64(vc.n))
			for k := 0; k < vc.n; k++ {
				f := vc.ring[(vc.head+k)%len(vc.ring)]
				w.U64(f.Pkt.ID)
				w.Int(f.Seq)
				w.I64(int64(f.visibleAt))
			}
			w.Bool(vc.routed)
			w.Int(vc.outPort)
			w.Int(vc.classAfter)
			w.Int(vc.outVC)
		}
	}
	for oi := range r.outputs {
		out := &r.outputs[oi]
		w.Bool(out.out != nil)
		if out.out == nil {
			continue
		}
		w.Uvarint(uint64(len(out.credits)))
		for _, c := range out.credits {
			w.Int(c)
		}
		for _, p := range out.owner {
			if p == nil {
				w.U64(0)
			} else {
				w.U64(p.ID)
			}
		}
		w.Int(out.holdPort)
		w.Int(out.holdVC)
		w.Int(out.rr)
	}
}

// Restore overlays a state written by Snapshot onto a freshly built
// network whose static wiring already matches the checkpoint (same
// topology, attachments, and tables). It validates every cross-reference.
func (n *Network) Restore(r *snap.Reader, codec PayloadCodec) error {
	var err error
	if n.nextPkt, err = r.U64(); err != nil {
		return err
	}
	lastTick, err := r.I64()
	if err != nil {
		return err
	}
	n.lastTick = sim.Cycle(lastTick)
	for _, dst := range []*int64{
		&n.TotalEnqueued, &n.TotalDelivered, &n.TotalFlitsInjected, &n.TotalFlitsEjected,
		&n.stats.Cycles, &n.stats.RouterTicks, &n.stats.RouterSkips,
		&n.stats.ChannelTicks, &n.stats.ChannelSkips,
	} {
		if *dst, err = r.I64(); err != nil {
			return err
		}
	}

	// Packets.
	nPkts, err := r.Count(16)
	if err != nil {
		return err
	}
	// Live packets are allocated outside the arena (the arena is execution
	// state, not simulation state); delivery recycles them into pool 0
	// through the ordinary path.
	byID := make(map[uint64]*Packet, nPkts)
	for i := 0; i < nPkts; i++ {
		p := &Packet{}
		if p.ID, err = r.U64(); err != nil {
			return err
		}
		if p.ID == 0 || p.ID > n.nextPkt {
			return fmt.Errorf("noc: packet ID %d out of range", p.ID)
		}
		if byID[p.ID] != nil {
			return fmt.Errorf("noc: duplicate packet %d", p.ID)
		}
		src, err := r.Int()
		if err != nil {
			return err
		}
		dst, err := r.Int()
		if err != nil {
			return err
		}
		if src < 0 || src >= len(n.nis) || dst < 0 || dst >= len(n.nis) {
			return fmt.Errorf("noc: packet %d endpoints %d->%d", p.ID, src, dst)
		}
		p.Src, p.Dst = NodeID(src), NodeID(dst)
		class, err := r.Int()
		if err != nil {
			return err
		}
		p.Class = PacketClass(class)
		vnet, err := r.Int()
		if err != nil {
			return err
		}
		if vnet < 0 || vnet >= NumVNets {
			return fmt.Errorf("noc: packet %d vnet %d", p.ID, vnet)
		}
		p.VNet = VNet(vnet)
		if p.Size, err = r.Int(); err != nil {
			return err
		}
		if p.Size < 1 || p.Size > 1<<16 {
			return fmt.Errorf("noc: packet %d size %d", p.ID, p.Size)
		}
		if p.App, err = r.Int(); err != nil {
			return err
		}
		var at int64
		if at, err = r.I64(); err != nil {
			return err
		}
		p.EnqueuedAt = sim.Cycle(at)
		if at, err = r.I64(); err != nil {
			return err
		}
		p.InjectedAt = sim.Cycle(at)
		if at, err = r.I64(); err != nil {
			return err
		}
		p.EjectedAt = sim.Cycle(at)
		if p.Hops, err = r.Int(); err != nil {
			return err
		}
		if p.datelineClass, err = r.Int(); err != nil {
			return err
		}
		lastDim, err := r.Int()
		if err != nil {
			return err
		}
		if p.rxFlits, err = r.Int(); err != nil {
			return err
		}
		if p.rxFlits < 0 || p.rxFlits > p.Size {
			return fmt.Errorf("noc: packet %d reassembled %d/%d flits", p.ID, p.rxFlits, p.Size)
		}
		hasFlits, err := r.Bool()
		if err != nil {
			return err
		}
		if hasFlits {
			fillFlits(p, make([]Flit, p.Size))
		}
		p.lastDim = int8(lastDim)
		hasPayload, err := r.Bool()
		if err != nil {
			return err
		}
		if hasPayload {
			if codec == nil {
				return fmt.Errorf("noc: checkpoint carries payloads but no codec is installed")
			}
			if p.Payload, err = codec.DecodePayload(r); err != nil {
				return err
			}
		}
		byID[p.ID] = p
	}
	lookup := func(id uint64) (*Packet, error) {
		p := byID[id]
		if p == nil {
			return nil, fmt.Errorf("noc: reference to unknown packet %d", id)
		}
		return p, nil
	}
	// lookupFlit resolves a (packet, seq) pair to the slab flit.
	lookupFlit := func(id uint64, seq int) (*Flit, error) {
		p, err := lookup(id)
		if err != nil {
			return nil, err
		}
		if p.flits == nil {
			return nil, fmt.Errorf("noc: packet %d has flits in flight but no slab", id)
		}
		if seq < 0 || seq >= len(p.flits) {
			return nil, fmt.Errorf("noc: packet %d flit %d of %d", id, seq, len(p.flits))
		}
		return &p.flits[seq], nil
	}

	// NIs.
	nNIs, err := r.Count(8)
	if err != nil {
		return err
	}
	if nNIs != len(n.nis) {
		return fmt.Errorf("noc: checkpoint has %d NIs, network has %d", nNIs, len(n.nis))
	}
	for _, ni := range n.nis {
		for v := range ni.queues {
			qn, err := r.Count(1)
			if err != nil {
				return err
			}
			q := pktQueue{}
			for i := 0; i < qn; i++ {
				id, err := r.U64()
				if err != nil {
					return err
				}
				p, err := lookup(id)
				if err != nil {
					return err
				}
				q.push(p)
			}
			ni.queues[v] = q
		}
		if ni.vnRR, err = r.Int(); err != nil {
			return err
		}
		if ni.vnRR < 0 || ni.vnRR >= NumVNets {
			return fmt.Errorf("noc: NI %d vnet pointer %d", ni.ID, ni.vnRR)
		}
		if ni.openStreams, err = r.Int(); err != nil {
			return err
		}
		if ni.rxOpen, err = r.Int(); err != nil {
			return err
		}
		if ni.gated, err = r.Bool(); err != nil {
			return err
		}
		for _, dst := range []*int64{
			&ni.act.QueueOccupancySum, &ni.act.EnqueuedPackets, &ni.act.InjectedPackets,
			&ni.act.DeliveredPackets, &ni.act.DeliveredFlits, &ni.act.QueuingCycles,
		} {
			if *dst, err = r.I64(); err != nil {
				return err
			}
		}
	}

	// Routers.
	nRouters, err := r.Count(16)
	if err != nil {
		return err
	}
	if nRouters != len(n.routers) {
		return fmt.Errorf("noc: checkpoint has %d routers, network has %d", nRouters, len(n.routers))
	}
	for _, rt := range n.routers {
		rt.snapClean = false
		if err := rt.restore(r, lookupFlit, lookup); err != nil {
			return err
		}
	}

	// Injectors.
	nInj, err := r.Count(4)
	if err != nil {
		return err
	}
	if nInj != len(n.injList) {
		return fmt.Errorf("noc: checkpoint has %d injectors, network has %d", nInj, len(n.injList))
	}
	for _, inj := range n.injList {
		router, err := r.Int()
		if err != nil {
			return err
		}
		port, err := r.Int()
		if err != nil {
			return err
		}
		if NodeID(router) != inj.router.ID || port != inj.port {
			return fmt.Errorf("noc: checkpoint injector (%d,%d), network has (%d,%d)",
				router, port, inj.router.ID, inj.port)
		}
		if inj.rr, err = r.Int(); err != nil {
			return err
		}
		if len(inj.streams) > 0 && (inj.rr < 0 || inj.rr >= len(inj.streams)) {
			return fmt.Errorf("noc: injector (%d,%d) stream pointer %d", router, port, inj.rr)
		}
		nc, err := r.Count(1)
		if err != nil {
			return err
		}
		if nc != len(inj.credits) {
			return fmt.Errorf("noc: injector (%d,%d) has %d credit VCs, checkpoint %d",
				router, port, len(inj.credits), nc)
		}
		for i := range inj.credits {
			if inj.credits[i], err = r.Int(); err != nil {
				return err
			}
			if inj.credits[i] < 0 || inj.credits[i] > inj.depth {
				return fmt.Errorf("noc: injector (%d,%d) vc %d credits %d", router, port, i, inj.credits[i])
			}
		}
		ns, err := r.Count(2)
		if err != nil {
			return err
		}
		if ns != len(inj.streams) {
			return fmt.Errorf("noc: injector (%d,%d) has %d streams, checkpoint %d",
				router, port, len(inj.streams), ns)
		}
		for i := range inj.owner {
			inj.owner[i] = nil
		}
		for _, st := range inj.streams {
			niID, err := r.Int()
			if err != nil {
				return err
			}
			if NodeID(niID) != st.ni.ID {
				return fmt.Errorf("noc: injector (%d,%d) stream NI %d, checkpoint %d",
					router, port, st.ni.ID, niID)
			}
			open, err := r.Bool()
			if err != nil {
				return err
			}
			if !open {
				st.cur, st.flits, st.nextSeq, st.vcFlat = nil, nil, 0, 0
				continue
			}
			id, err := r.U64()
			if err != nil {
				return err
			}
			p, err := lookup(id)
			if err != nil {
				return err
			}
			if p.flits == nil {
				return fmt.Errorf("noc: open stream for packet %d without a slab", id)
			}
			st.cur = p
			st.flits = p.flits
			if st.nextSeq, err = r.Int(); err != nil {
				return err
			}
			if st.nextSeq < 0 || st.nextSeq > p.Size {
				return fmt.Errorf("noc: stream position %d of packet %d (size %d)", st.nextSeq, id, p.Size)
			}
			if st.vcFlat, err = r.Int(); err != nil {
				return err
			}
			if st.vcFlat < 0 || st.vcFlat >= len(inj.owner) {
				return fmt.Errorf("noc: stream VC %d of injector (%d,%d)", st.vcFlat, router, port)
			}
			if inj.owner[st.vcFlat] != nil {
				return fmt.Errorf("noc: two streams own injector (%d,%d) vc %d", router, port, st.vcFlat)
			}
			inj.owner[st.vcFlat] = p
		}
	}

	// Channels.
	chs := n.sortedChannels()
	nCh, err := r.Count(16)
	if err != nil {
		return err
	}
	if nCh != len(chs) {
		return fmt.Errorf("noc: checkpoint has %d channels, network has %d", nCh, len(chs))
	}
	for _, ch := range chs {
		from, err := restoreEndpoint(r)
		if err != nil {
			return err
		}
		to, err := restoreEndpoint(r)
		if err != nil {
			return err
		}
		if from != ch.From || to != ch.To {
			return fmt.Errorf("noc: checkpoint channel %v->%v, network has %v->%v", from, to, ch.From, ch.To)
		}
		lastSend, err := r.I64()
		if err != nil {
			return err
		}
		ch.lastSend = sim.Cycle(lastSend)
		if ch.sentAny, err = r.Bool(); err != nil {
			return err
		}
		if ch.FlitsCarried, err = r.I64(); err != nil {
			return err
		}
		if ch.harvested, err = r.I64(); err != nil {
			return err
		}
		nf, err := r.Count(4)
		if err != nil {
			return err
		}
		ch.fwd, ch.fwdHead = ch.fwd[:0], 0
		for i := 0; i < nf; i++ {
			id, err := r.U64()
			if err != nil {
				return err
			}
			seq, err := r.Int()
			if err != nil {
				return err
			}
			f, err := lookupFlit(id, seq)
			if err != nil {
				return err
			}
			if f.VC, err = r.Int(); err != nil {
				return err
			}
			at, err := r.I64()
			if err != nil {
				return err
			}
			ch.fwd = append(ch.fwd, inFlight{flit: f, deliverAt: sim.Cycle(at)})
		}
		nr, err := r.Count(2)
		if err != nil {
			return err
		}
		ch.rev, ch.revHead = ch.rev[:0], 0
		for i := 0; i < nr; i++ {
			vc, err := r.Int()
			if err != nil {
				return err
			}
			at, err := r.I64()
			if err != nil {
				return err
			}
			ch.rev = append(ch.rev, inFlight{isCredit: true, credit: creditMsg{vc: vc}, deliverAt: sim.Cycle(at)})
		}
		ch.queued = false
		ch.snapClean = false
	}

	// Work lists are not serialized; the carve scheduled here rebuilds
	// them from the restored live state (Busy channels, unparked routers)
	// before the next Tick.
	n.carveDirty = true
	return nil
}

// restore overlays one router's dynamic state; lookupFlit and lookup
// resolve packet references against the restored packet table.
func (r *Router) restore(rd *snap.Reader, lookupFlit func(uint64, int) (*Flit, error), lookup func(uint64) (*Packet, error)) error {
	var err error
	var at int64
	if at, err = rd.I64(); err != nil {
		return err
	}
	r.tableReadyAt = sim.Cycle(at)
	if r.disabled, err = rd.Bool(); err != nil {
		return err
	}
	if r.asleep, err = rd.Bool(); err != nil {
		return err
	}
	if at, err = rd.I64(); err != nil {
		return err
	}
	r.wakeAt = sim.Cycle(at)
	if at, err = rd.I64(); err != nil {
		return err
	}
	r.lastActive = sim.Cycle(at)
	if r.parked, err = rd.Bool(); err != nil {
		return err
	}
	if at, err = rd.I64(); err != nil {
		return err
	}
	r.parkedAt = sim.Cycle(at)
	if r.vaRR, err = rd.Int(); err != nil {
		return err
	}
	for _, dst := range []*int64{
		&r.act.BufferWrites, &r.act.BufferReads, &r.act.CrossbarTrav,
		&r.act.VAGrants, &r.act.SAGrants, &r.act.OccupancySum,
		&r.act.ActiveCycles, &r.act.GatedCycles, &r.act.WakeUps,
		&r.act.BufferedPeak, &r.act.RoutedPackets,
	} {
		if *dst, err = rd.I64(); err != nil {
			return err
		}
	}

	nPorts, err := rd.Count(1)
	if err != nil {
		return err
	}
	if nPorts != len(r.inputs) {
		return fmt.Errorf("noc: router %d has %d ports, checkpoint %d", r.ID, len(r.inputs), nPorts)
	}
	r.buffered = 0
	nvc := NumVNets * r.cfg.VCsPerVNet
	for pi := range r.inputs {
		in := &r.inputs[pi]
		in.occupied = 0
		in.liveMask = 0
		for i := range in.vcs {
			vc := &in.vcs[i]
			for vc.n > 0 {
				vc.pop()
			}
			vc.head = 0
			depth, err := rd.Count(9)
			if err != nil {
				return err
			}
			if depth > r.cfg.VCDepth {
				return fmt.Errorf("noc: router %d port %d vc %d holds %d flits, depth %d",
					r.ID, pi, i, depth, r.cfg.VCDepth)
			}
			for k := 0; k < depth; k++ {
				id, err := rd.U64()
				if err != nil {
					return err
				}
				seq, err := rd.Int()
				if err != nil {
					return err
				}
				f, err := lookupFlit(id, seq)
				if err != nil {
					return err
				}
				if at, err = rd.I64(); err != nil {
					return err
				}
				f.visibleAt = sim.Cycle(at)
				f.VC = i
				vc.push(f)
			}
			if depth > 0 {
				in.occupied += depth
				r.buffered += depth
				if i < 64 {
					in.liveMask |= 1 << uint(i)
				}
			}
			if vc.routed, err = rd.Bool(); err != nil {
				return err
			}
			if vc.outPort, err = rd.Int(); err != nil {
				return err
			}
			if vc.routed && (vc.outPort < 0 || vc.outPort >= len(r.outputs)) {
				return fmt.Errorf("noc: router %d vc routed to port %d of %d", r.ID, vc.outPort, len(r.outputs))
			}
			if vc.classAfter, err = rd.Int(); err != nil {
				return err
			}
			if vc.outVC, err = rd.Int(); err != nil {
				return err
			}
			if vc.outVC >= nvc {
				return fmt.Errorf("noc: router %d vc allocated downstream vc %d of %d", r.ID, vc.outVC, nvc)
			}
		}
	}

	r.heldMask = 0
	r.reqMask = 0
	for oi := range r.outputs {
		out := &r.outputs[oi]
		hasOut, err := rd.Bool()
		if err != nil {
			return err
		}
		if hasOut != (out.out != nil) {
			return fmt.Errorf("noc: router %d port %d attachment mismatch (checkpoint %v)", r.ID, oi, hasOut)
		}
		if !hasOut {
			continue
		}
		nc, err := rd.Count(1)
		if err != nil {
			return err
		}
		if nc != len(out.credits) {
			return fmt.Errorf("noc: router %d port %d has %d credit VCs, checkpoint %d",
				r.ID, oi, len(out.credits), nc)
		}
		for i := range out.credits {
			if out.credits[i], err = rd.Int(); err != nil {
				return err
			}
			if out.credits[i] < 0 || out.credits[i] > out.depth {
				return fmt.Errorf("noc: router %d port %d vc %d credits %d", r.ID, oi, i, out.credits[i])
			}
		}
		for i := range out.owner {
			id, err := rd.U64()
			if err != nil {
				return err
			}
			if id == 0 {
				out.owner[i] = nil
				continue
			}
			if out.owner[i], err = lookup(id); err != nil {
				return err
			}
		}
		if out.holdPort, err = rd.Int(); err != nil {
			return err
		}
		if out.holdVC, err = rd.Int(); err != nil {
			return err
		}
		if out.holdPort != -1 {
			if out.holdPort < 0 || out.holdPort >= len(r.inputs) ||
				out.holdVC < 0 || out.holdVC >= nvc {
				return fmt.Errorf("noc: router %d port %d hold (%d,%d)", r.ID, oi, out.holdPort, out.holdVC)
			}
			if oi < 64 {
				r.heldMask |= 1 << uint(oi)
			}
		}
		if out.rr, err = rd.Int(); err != nil {
			return err
		}
		if total := len(r.inputs) * nvc; out.rr < 0 || out.rr >= total {
			return fmt.Errorf("noc: router %d port %d arbitration pointer %d", r.ID, oi, out.rr)
		}
	}
	return nil
}
