package noc_test

import (
	"testing"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
)

// TestSteadyStateTickZeroAllocs is the allocation contract of the arena:
// once the in-flight population has peaked, Network.Tick must not touch the
// Go allocator at all. testing.AllocsPerRun returns an exact per-invocation
// average, so any allocation on any tick fails the test.
func TestSteadyStateTickZeroAllocs(t *testing.T) {
	_, step, delivered := steadyState(96)
	for i := 0; i < 4000; i++ {
		step()
	}
	if *delivered == 0 {
		t.Fatal("no deliveries during warmup")
	}
	before := *delivered
	if avg := testing.AllocsPerRun(500, step); avg != 0 {
		t.Fatalf("steady-state tick allocates %.2f times per cycle, want 0", avg)
	}
	if *delivered == before {
		t.Fatal("allocation measurement ticked a dead network")
	}
}

// TestSteadyStateShardedTickZeroAllocs extends the allocation contract to
// the region-parallel tick: once the partition is carved and every shard's
// pools and work lists have reached their high-water marks, a sharded
// Tick — gang dispatch, all worker goroutines, the boundary barrier, and
// the delivery replay — must not touch the Go allocator either.
// AllocsPerRun counts heap mallocs process-wide, so a single allocation on
// any shard worker fails the test.
func TestSteadyStateShardedTickZeroAllocs(t *testing.T) {
	net, step, delivered := steadyStateGrid(16, 16, 384, 4)
	if net.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", net.Shards())
	}
	for i := 0; i < 4000; i++ {
		step()
	}
	if *delivered == 0 {
		t.Fatal("no deliveries during warmup")
	}
	before := *delivered
	if avg := testing.AllocsPerRun(500, step); avg != 0 {
		t.Fatalf("sharded steady-state tick allocates %.2f times per cycle, want 0", avg)
	}
	if *delivered == before {
		t.Fatal("allocation measurement ticked a dead network")
	}
}

// TestPoolRecyclingReachesSteadyState proves the arena stops carving new
// memory once warmed: under constant closed-loop load, every NewPacket is
// served from the free lists and the carve counters freeze.
func TestPoolRecyclingReachesSteadyState(t *testing.T) {
	net, step, _ := steadyState(96)
	for i := 0; i < 4000; i++ {
		step()
	}
	warm := net.PoolStats()
	if warm.PacketsFreed == 0 || warm.SlabsFreed == 0 {
		t.Fatalf("nothing recycled during warmup: %+v", warm)
	}
	for i := 0; i < 4000; i++ {
		step()
	}
	after := net.PoolStats()
	if after.PacketsCarved != warm.PacketsCarved || after.SlabsCarved != warm.SlabsCarved ||
		after.ArenaFlits != warm.ArenaFlits {
		t.Fatalf("arena kept carving under steady load:\nwarm  %+v\nafter %+v", warm, after)
	}
	if after.PacketsReused <= warm.PacketsReused || after.SlabsReused <= warm.SlabsReused {
		t.Fatalf("free lists not serving steady-state traffic:\nwarm  %+v\nafter %+v", warm, after)
	}
}

// TestNIReassemblyStateBounded locks in the satellite guarantee that
// destination-side reassembly state is O(in-flight packets), not O(packets
// ever delivered): mid-run the per-NI pending counts stay below the fixed
// closed-loop population, and a drained network holds none at all.
func TestNIReassemblyStateBounded(t *testing.T) {
	const population = 96
	net, step, delivered := steadyState(population)
	nodes := net.Cfg.NumNodes()
	pending := func() int {
		total := 0
		for i := 0; i < nodes; i++ {
			total += net.NI(noc.NodeID(i)).RxPending()
		}
		return total
	}
	for i := 0; i < 20000; i++ {
		step()
		if p := pending(); p > population {
			t.Fatalf("cycle %d: %d packets mid-reassembly exceeds the %d in flight",
				i, p, population)
		}
	}
	if *delivered < 10*population {
		t.Fatalf("only %d deliveries in 20k cycles; load loop broken", *delivered)
	}
	// Stop the closed loop and drain: reassembly state must return to zero.
	net.SetDeliverFunc(nil)
	for i := 0; i < 5000 && !net.Quiescent(); i++ {
		step()
	}
	if !net.Quiescent() {
		t.Fatal("network did not drain")
	}
	if p := pending(); p != 0 {
		t.Fatalf("drained network still tracks %d packets mid-reassembly", p)
	}
}

// TestPoolReuseDeterminism guards the property the freelists were designed
// around (and the reason sync.Pool is banned here): recycling must be a pure
// function of simulation history, so two identical runs deliver the same
// packet IDs at the same cycles and carve/reuse identical arena traffic.
func TestPoolReuseDeterminism(t *testing.T) {
	type delivery struct {
		id uint64
		at sim.Cycle
	}
	run := func() ([]delivery, noc.PoolStats) {
		net, step, _ := steadyState(64)
		var log []delivery
		// Replace steadyState's closed-loop observer with one that also logs
		// each delivery; the re-enqueue rule stays deterministic.
		net.SetDeliverFunc(func(p *noc.Packet, at sim.Cycle) {
			log = append(log, delivery{id: p.ID, at: at})
			dst := noc.NodeID((int(p.Dst) + 27) % net.Cfg.NumNodes())
			class, vnet := noc.ClassCoherence, noc.VNetRequest
			if len(log)%4 == 0 {
				class, vnet = noc.ClassData, noc.VNetReply
			}
			net.Enqueue(net.NewPacket(p.Dst, dst, class, vnet, 0), at)
		})
		for i := 0; i < 6000; i++ {
			step()
		}
		return log, net.PoolStats()
	}
	logA, statsA := run()
	logB, statsB := run()
	if len(logA) == 0 {
		t.Fatal("no deliveries")
	}
	if statsA != statsB {
		t.Fatalf("arena traffic diverged between identical runs:\nA %+v\nB %+v", statsA, statsB)
	}
	if len(logA) != len(logB) {
		t.Fatalf("delivery counts diverged: %d vs %d", len(logA), len(logB))
	}
	for i := range logA {
		if logA[i] != logB[i] {
			t.Fatalf("delivery %d diverged: %+v vs %+v", i, logA[i], logB[i])
		}
	}
}
