package noc

import "fmt"

// ClassOp says how a hop changes the packet's dateline VC class. Crossing a
// torus wraparound sets class 1; turning into a new dimension resets to
// class 0 (each ring's dependency cycle is broken independently under
// dimension-ordered routing).
type ClassOp int8

// Class operations.
const (
	ClassKeep ClassOp = iota
	ClassSet1
	ClassSet0
)

// RouteEntry is one routing-table row: the output port toward a destination
// and the dateline class operation this hop applies (Section II-C.3).
type RouteEntry struct {
	OutPort int8
	Class   ClassOp
	Valid   bool
}

// RoutingTable maps destination NodeIDs to route entries for one virtual
// network at one router. Tables are immutable after construction so that
// the reconfiguration protocol can swap them atomically by pointer; the
// adaptable router's "reconfigurable routing table" (Section II-A.1) is a
// pointer swap gated by the Ts setup delay.
type RoutingTable struct {
	entries []RouteEntry
}

// NewRoutingTable returns an empty (all-invalid) table for n destinations.
func NewRoutingTable(n int) *RoutingTable {
	return &RoutingTable{entries: make([]RouteEntry, n)}
}

// Set installs the route toward dst.
func (t *RoutingTable) Set(dst NodeID, outPort int, op ClassOp) {
	t.entries[dst] = RouteEntry{OutPort: int8(outPort), Class: op, Valid: true}
}

// Unset removes the route toward dst (used when a memory-controller share
// is torn down).
func (t *RoutingTable) Unset(dst NodeID) {
	if int(dst) < len(t.entries) {
		t.entries[dst] = RouteEntry{}
	}
}

// Lookup returns the route toward dst. ok is false if the table has no
// route (a misrouted packet — always a bug in topology construction).
func (t *RoutingTable) Lookup(dst NodeID) (RouteEntry, bool) {
	if int(dst) >= len(t.entries) {
		return RouteEntry{}, false
	}
	e := t.entries[dst]
	return e, e.Valid
}

// Destinations returns every destination with a valid route, for the
// deadlock checker.
func (t *RoutingTable) Destinations() []NodeID {
	var out []NodeID
	for i, e := range t.entries {
		if e.Valid {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Clone returns a mutable copy.
func (t *RoutingTable) Clone() *RoutingTable {
	cp := make([]RouteEntry, len(t.entries))
	copy(cp, t.entries)
	return &RoutingTable{entries: cp}
}

// Merge overlays routes from o onto a copy of t (o wins on conflict).
func (t *RoutingTable) Merge(o *RoutingTable) *RoutingTable {
	cp := t.Clone()
	for i, e := range o.entries {
		if e.Valid {
			cp.entries[i] = e
		}
	}
	return cp
}

// String summarizes the table for diagnostics.
func (t *RoutingTable) String() string {
	n := 0
	for _, e := range t.entries {
		if e.Valid {
			n++
		}
	}
	return fmt.Sprintf("routes(%d/%d)", n, len(t.entries))
}
