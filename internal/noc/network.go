package noc

import (
	"fmt"
	"sort"

	"adaptnoc/internal/sim"
)

// DeliverFunc observes every packet at the cycle its tail flit reaches the
// destination NI.
type DeliverFunc func(p *Packet, now sim.Cycle)

// Network owns the routers, network interfaces, and channels of one chip
// and advances them one cycle per Tick. Topology packages wire it; the
// fabric package rewires it at runtime.
type Network struct {
	Cfg Config

	routers  []*Router
	nis      []*NI
	channels []*Channel

	// injectors is keyed by (router, local port); a router may have
	// several local ports (flattened butterfly gives each terminal its
	// own, Adapt-NoC concentration shares one through the mux). injList
	// mirrors it in deterministic order for the per-cycle tick.
	injectors map[injKey]*injector
	injList   []*injector
	// attach maps each tile to the router currently serving its NI
	// (-1 when unattached).
	attach []NodeID

	onDeliver DeliverFunc
	nextPkt   uint64

	// pools are the per-shard allocation arenas: packet free list plus flit
	// slab arena, recycled at delivery (see pool.go). pools[0] additionally
	// owns every packet header (NewPacket and delivery recycling run
	// serially); the per-shard pools serve only the flit slabs injectors
	// carve in the parallel injection phase. The slice only grows; index
	// into it per call rather than holding a *pool across carves.
	pools []pool

	// ccFlits/ccCredits are CheckCreditInvariant's per-VC tallies, sized to
	// the flat VC count once and reused so a periodic verifier pass does
	// not allocate.
	ccFlits   []int
	ccCredits []int

	// Tick sharding (see shard.go). regions holds one shardRegion per
	// shard, each owning a contiguous band of mesh rows with its own work
	// lists; boundaryCh lists the channels crossing shards, ticked serially
	// at the barrier in canonical order. carveDirty forces a carve() at the
	// next Tick after any change to sharding or wiring. gang is the
	// persistent worker pool (nil when shards == 1); gangNow passes the
	// current cycle to workers without an allocation.
	shards     int
	carveDirty bool
	regions    []*shardRegion
	boundaryCh []*Channel
	gang       *sim.Gang
	gangNow    sim.Cycle
	// pendingAll and rowShard are carve/barrier scratch reused across
	// cycles so the steady-state tick allocates nothing.
	pendingAll []*Packet
	rowShard   []int

	// lastTick is the cycle most recently passed to Tick (-1 before the
	// first). Parked routers reconstruct their counters through it when
	// read (see Router.syncIdle).
	lastTick sim.Cycle

	stats TickStats

	// Observability: optional lifecycle tracer and periodic invariant
	// checker (see trace.go). Both are nil/0 unless explicitly installed;
	// the hot path pays one nil or integer comparison per guarded site.
	tracer      Tracer
	verifier    VerifyFunc
	verifyEvery int64

	// onDrop observes packets a fault made undeliverable; faultGuard arms
	// the routability check in Enqueue (off on the fault-free path, where
	// an unroutable packet is a simulator bug, not a scenario).
	onDrop     DeliverFunc
	faultGuard bool

	// Aggregate counters (whole-run, never reset).
	TotalEnqueued  int64
	TotalDelivered int64
	// TotalDropped / TotalFlitsDropped account packets a fault made
	// undeliverable: at any quiescent point
	// TotalEnqueued == TotalDelivered + TotalDropped + pending queue
	// population. Dropped packets never inject, so the flit conservation
	// counters below are untouched by drops.
	TotalDropped      int64
	TotalFlitsDropped int64
	// Flit-granularity conservation counters: a flit is injected when it
	// leaves an NI on an injection channel and ejected when the
	// destination NI consumes it, so at any cycle boundary
	// TotalFlitsInjected == TotalFlitsEjected + InFlightFlits().
	TotalFlitsInjected int64
	TotalFlitsEjected  int64
}

// TickStats counts executed versus skipped component ticks, proving the
// idle-skip rate of the active work lists.
type TickStats struct {
	Cycles       int64 // network ticks executed
	RouterTicks  int64 // router ticks actually run
	RouterSkips  int64 // router ticks skipped (parked routers)
	ChannelTicks int64 // channel ticks actually run
	ChannelSkips int64 // channel ticks skipped (idle channels)
}

// RouterSkipRate is the fraction of router ticks avoided.
func (s TickStats) RouterSkipRate() float64 {
	if t := s.RouterTicks + s.RouterSkips; t > 0 {
		return float64(s.RouterSkips) / float64(t)
	}
	return 0
}

// ChannelSkipRate is the fraction of channel ticks avoided.
func (s TickStats) ChannelSkipRate() float64 {
	if t := s.ChannelTicks + s.ChannelSkips; t > 0 {
		return float64(s.ChannelSkips) / float64(t)
	}
	return 0
}

// TickStats returns the skip counters accumulated so far.
func (n *Network) TickStats() TickStats { return n.stats }

// NewNetwork creates a W×H network with one 5-port router and one NI per
// tile and no channels. Topology builders add channels, local attachments,
// routing tables, and any extra ports.
func NewNetwork(cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := &Network{Cfg: cfg, lastTick: -1, shards: 1}
	n.pools = make([]pool, 1)
	nvc := NumVNets * cfg.VCsPerVNet
	n.ccFlits = make([]int, nvc)
	n.ccCredits = make([]int, nvc)
	if testVerifier != nil {
		n.verifier, n.verifyEvery = testVerifier, testVerifyEvery
	}
	count := cfg.NumNodes()
	n.routers = make([]*Router, count)
	n.nis = make([]*NI, count)
	n.injectors = make(map[injKey]*injector)
	n.attach = make([]NodeID, count)
	for i := 0; i < count; i++ {
		n.routers[i] = newRouter(NodeID(i), 5, &n.Cfg, n)
		n.nis[i] = newNI(NodeID(i))
		n.attach[i] = -1
	}
	// Carve immediately so regions[0] exists before the first Tick: wake()
	// targets a region's work list, and tests send on wired channels before
	// ever ticking. Wiring calls mark the partition dirty and the next Tick
	// re-carves.
	n.carve()
	return n
}

// Router returns the router at a tile.
func (n *Network) Router(id NodeID) *Router { return n.routers[id] }

// NI returns a tile's network interface.
func (n *Network) NI(id NodeID) *NI { return n.nis[id] }

// Routers returns the router slice (do not mutate).
func (n *Network) Routers() []*Router { return n.routers }

// NIs returns the NI slice (do not mutate).
func (n *Network) NIs() []*NI { return n.nis }

// Channels returns the live channel slice (do not mutate).
func (n *Network) Channels() []*Channel { return n.channels }

// SetDeliverFunc installs the packet delivery observer.
func (n *Network) SetDeliverFunc(fn DeliverFunc) { n.onDeliver = fn }

// SetDropFunc installs the fault-drop observer, called for every packet
// the network drops because a fault made it undeliverable (before the
// packet is recycled).
func (n *Network) SetDropFunc(fn DeliverFunc) { n.onDrop = fn }

// SetFaultGuard arms (true) or disarms the per-Enqueue routability check.
// The fault engine arms it at its first strike; a fault-free network keeps
// the check off so the steady-state injection path pays nothing.
func (n *Network) SetFaultGuard(on bool) { n.faultGuard = on }

// ServingRouter returns the router currently serving a tile's NI, or -1.
func (n *Network) ServingRouter(tile NodeID) NodeID { return n.attach[tile] }

// Connect wires a directed router-to-router channel and attaches it to the
// named ports, returning the channel. The downstream credit mirror is sized
// from the network configuration.
func (n *Network) Connect(from, to Endpoint, kind ChannelKind, latency, tiles int) *Channel {
	if from.Kind != EndRouter || to.Kind != EndRouter {
		panic("noc: Connect is for router-to-router channels; use AttachLocal for NIs")
	}
	ch := newChannel(from, to, kind, latency, tiles)
	ch.net = n
	src := n.routers[from.Router]
	dst := n.routers[to.Router]
	ch.srcRouter, ch.dstRouter = src, dst
	nvc := NumVNets * n.Cfg.VCsPerVNet
	src.attachOut(from.Port, ch, nvc, n.Cfg.VCDepth)
	dst.attachIn(to.Port, ch)
	n.channels = append(n.channels, ch)
	n.carveDirty = true
	return ch
}

// ConnectBidir wires a mesh-style bidirectional link between two routers on
// complementary ports, with 1-tile span.
func (n *Network) ConnectBidir(a NodeID, aPort int, b NodeID, bPort int, kind ChannelKind, latency, tiles int) (fwd, rev *Channel) {
	fwd = n.Connect(Endpoint{Kind: EndRouter, Router: a, Port: aPort},
		Endpoint{Kind: EndRouter, Router: b, Port: bPort}, kind, latency, tiles)
	rev = n.Connect(Endpoint{Kind: EndRouter, Router: b, Port: bPort},
		Endpoint{Kind: EndRouter, Router: a, Port: aPort}, kind, latency, tiles)
	return fwd, rev
}

// injKey identifies one local attachment point.
type injKey struct {
	router NodeID
	port   int
}

// AttachLocal connects the NIs of the given tiles to a router's local
// port: an injection channel (NIs → local input, arbitrated by the
// concentration mux when several tiles share it) and an ejection channel
// (local output → NIs). latency covers the concentration-link distance;
// 1 for a resident NI.
func (n *Network) AttachLocal(router NodeID, tiles []NodeID, latency int) {
	n.AttachLocalPort(router, PortLocal, tiles, latency)
}

// AttachLocalPort is AttachLocal on an explicit local port, letting
// high-radix routers (flattened butterfly) give each terminal its own
// injection/ejection port.
func (n *Network) AttachLocalPort(router NodeID, port int, tiles []NodeID, latency int) {
	n.attachLocalPort(router, port, tiles, latency, true)
}

// AttachInjectionPort adds an injection-only local port for tiles already
// attached to this router — the tree root's extra injection bandwidth
// ("maximize the fanout of the root router ... to provide sufficient
// injection bandwidth", Section II-B.3). No ejection channel is wired and
// the port never appears in routing tables.
func (n *Network) AttachInjectionPort(router NodeID, port int, tiles []NodeID, latency int) {
	n.attachLocalPort(router, port, tiles, latency, false)
}

func (n *Network) attachLocalPort(router NodeID, port int, tiles []NodeID, latency int, withEjection bool) {
	r := n.routers[router]
	kind := ChanLocal
	if len(tiles) > 1 {
		kind = ChanConcentration
	}
	injCh := newChannel(
		Endpoint{Kind: EndNI, NI: router, Port: port},
		Endpoint{Kind: EndRouter, Router: router, Port: port},
		kind, latency, 1)
	injCh.net = n
	injCh.dstRouter = r
	n.channels = append(n.channels, injCh)
	r.attachIn(port, injCh)
	if withEjection {
		ejCh := newChannel(
			Endpoint{Kind: EndRouter, Router: router, Port: port},
			Endpoint{Kind: EndNI, NI: router, Port: port},
			kind, latency, 1)
		ejCh.net = n
		ejCh.srcRouter = r
		n.channels = append(n.channels, ejCh)
		nvc := NumVNets * n.Cfg.VCsPerVNet
		r.attachOut(port, ejCh, nvc, n.Cfg.VCDepth)
	}

	nis := make([]*NI, len(tiles))
	for i, t := range tiles {
		nis[i] = n.nis[t]
		n.attach[t] = router
	}
	inj := newInjector(r, port, injCh, nis, withEjection)
	injCh.srcInj = inj
	n.injectors[injKey{router, port}] = inj
	n.carveDirty = true
	n.injList = append(n.injList, inj)
	sort.Slice(n.injList, func(i, j int) bool {
		a, b := n.injList[i], n.injList[j]
		if a.router.ID != b.router.ID {
			return a.router.ID < b.router.ID
		}
		return a.port < b.port
	})
}

// DetachLocal removes every NI attachment of a router (used before
// re-clustering during reconfiguration). Injection streams must be idle.
//
// Detached injectors are marked and the deterministic injection list is
// compacted once, order-preserving, after all ports are processed — a wide
// reconfiguration wave detaching k of n injectors costs O(n + k) instead
// of the O(k·n) of per-injector shift removal.
func (n *Network) DetachLocal(router NodeID) {
	r := n.routers[router]
	detached := 0
	for port := 0; port < r.NumPorts(); port++ {
		key := injKey{router, port}
		inj := n.injectors[key]
		if inj == nil {
			continue
		}
		for _, st := range inj.streams {
			if st.cur != nil {
				panic(fmt.Sprintf("noc: detaching NI %d mid-packet", st.ni.ID))
			}
			n.attach[st.ni.ID] = -1
		}
		if inj.ch.Busy() {
			panic(fmt.Sprintf("noc: detaching router %d local port %d with traffic in flight", router, port))
		}
		n.removeChannel(inj.ch)
		if ej := r.OutputChannel(port); ej != nil {
			n.removeChannel(ej)
			r.attachOut(port, nil, 0, 0)
		}
		r.attachIn(port, nil)
		delete(n.injectors, key)
		inj.detached = true
		detached++
	}
	if detached == 0 {
		return
	}
	keep := n.injList[:0]
	for _, x := range n.injList {
		if !x.detached {
			keep = append(keep, x)
		}
	}
	for i := len(keep); i < len(n.injList); i++ {
		n.injList[i] = nil
	}
	n.injList = keep
	n.carveDirty = true
}

// DisconnectOut detaches and removes the channel on a router output port.
// The channel must be drained.
func (n *Network) DisconnectOut(router NodeID, port int) {
	r := n.routers[router]
	ch := r.OutputChannel(port)
	if ch == nil {
		return
	}
	if ch.Busy() {
		panic(fmt.Sprintf("noc: disconnecting busy channel %v->%v", ch.From, ch.To))
	}
	if ch.To.Kind == EndRouter {
		n.routers[ch.To.Router].attachIn(ch.To.Port, nil)
	}
	r.attachOut(port, nil, 0, 0)
	n.removeChannel(ch)
}

// removeChannel deactivates and drops a channel from the live set. If the
// channel sits on an active work list it is NOT spliced out eagerly (an
// O(active) shift per removal): deactivation plus the carve the removal
// schedules is enough — the re-carve rebuilds every region's work list
// from live state before the next Tick. A removed channel is drained by
// precondition, so dropping it delivers nothing.
//
// The n.channels membership slice is unordered (it only feeds sums and
// invariant sweeps), so swap-removal there is O(1) and stays.
func (n *Network) removeChannel(ch *Channel) {
	ch.setActive(false)
	n.carveDirty = true
	for i, c := range n.channels {
		if c == ch {
			n.channels[i] = n.channels[len(n.channels)-1]
			n.channels[len(n.channels)-1] = nil
			n.channels = n.channels[:len(n.channels)-1]
			return
		}
	}
}

// NewPacket returns a packet with the configured size for its class, drawn
// from the network's arena. The packet is valid until its delivery
// callback returns, at which point it is recycled; see Packet.
func (n *Network) NewPacket(src, dst NodeID, class PacketClass, vnet VNet, app int) *Packet {
	n.nextPkt++
	size := n.Cfg.CtrlFlits
	if class == ClassData {
		size = n.Cfg.DataFlits
	}
	p := n.pools[0].getPacket()
	// Full-literal assignment resets every pooled field (timestamps, hops,
	// payload, dateline state, reassembly count, slab reference and its
	// owning pool).
	*p = Packet{
		ID: n.nextPkt, Src: src, Dst: dst,
		Class: class, VNet: vnet, Size: size, App: app,
	}
	return p
}

// makeFlits serializes a packet into a pooled slab from pool poolIdx and
// tags the packet with the owning pool so delivery recycles the slab where
// it came from. Injectors pass their shard's pool (the only allocation on
// the parallel injection phase); serial callers use pool 0.
func (n *Network) makeFlits(p *Packet, poolIdx int) []Flit {
	if p.Size < 1 {
		panic("noc: packet with no flits")
	}
	p.slabPool = int32(poolIdx)
	return fillFlits(p, n.pools[poolIdx].getSlab(p.Size))
}

// Enqueue submits a packet at its source NI at cycle now. Under an armed
// fault guard, a packet the damaged topology cannot deliver is dropped
// (and accounted) instead of queued.
func (n *Network) Enqueue(p *Packet, now sim.Cycle) {
	if p.Src == p.Dst {
		panic(fmt.Sprintf("noc: self-addressed packet %v", p))
	}
	if n.faultGuard && !n.routable(p) {
		n.TotalEnqueued++
		n.dropPacket(p, now)
		return
	}
	n.nis[p.Src].enqueue(p, now)
	n.TotalEnqueued++
	if n.tracer != nil {
		n.tracer.PacketEnqueued(p, now)
	}
}

// routable reports whether the current topology can deliver p: both
// endpoints must have attached NIs and the source's serving router must
// hold a route for the destination on the packet's vnet. The fault
// engine's healed tables are closed under next-hop (a spanning tree per
// component, or a pruned-to-fixpoint static table), so a valid source
// entry implies a complete path.
func (n *Network) routable(p *Packet) bool {
	return n.routableTo(p.Src, p.Dst, p.VNet)
}

func (n *Network) routableTo(src, dst NodeID, v VNet) bool {
	s, d := n.attach[src], n.attach[dst]
	if s < 0 || d < 0 {
		return false
	}
	tbl := n.routers[s].Table(v)
	if tbl == nil {
		return false
	}
	_, ok := tbl.Lookup(dst)
	return ok
}

// Deliverable reports whether an Enqueue of a src→dst packet on vnet v
// would be accepted rather than fault-dropped: with no armed fault guard
// every packet queues; under a guard the damaged topology must hold a
// route. Traffic sources consult this so a packet doomed to drop at
// injection never occupies an outstanding-request slot.
func (n *Network) Deliverable(src, dst NodeID, v VNet) bool {
	return !n.faultGuard || n.routableTo(src, dst, v)
}

// dropPacket accounts for and recycles a packet a fault made
// undeliverable. Dropped packets were never injected, so they own no flit
// slab and the flit conservation counters stay untouched. Serial phases
// only (drops happen at Enqueue and at the fault engine's quiescent apply
// points, never inside the parallel tick phases).
func (n *Network) dropPacket(p *Packet, now sim.Cycle) {
	n.TotalDropped++
	n.TotalFlitsDropped += int64(p.Size)
	if n.onDrop != nil {
		n.onDrop(p, now)
	}
	if p.flits != nil {
		n.pools[p.slabPool].putSlab(p.flits)
		p.flits = nil
	}
	p.Payload = nil
	n.pools[0].putPacket(p)
}

// DropUnroutable sweeps every NI injection queue and drops queued packets
// the current (post-fault) topology can no longer deliver, returning the
// number dropped. The fault engine calls it after applying damage, on a
// quiescent network.
func (n *Network) DropUnroutable(now sim.Cycle) int {
	dropped := 0
	for _, ni := range n.nis {
		for v := range ni.queues {
			q := &ni.queues[v]
			keep := q.items[q.head:q.head]
			for i := q.head; i < len(q.items); i++ {
				p := q.items[i]
				if n.routable(p) {
					keep = append(keep, p)
					continue
				}
				n.dropPacket(p, now)
				dropped++
			}
			q.items = q.items[:q.head+len(keep)]
		}
	}
	return dropped
}

// LocalAttachment describes one local port of a router as
// AttachLocalPort/AttachInjectionPort configured it, so the fault engine
// can detach a failed router and later re-attach an identical wiring.
type LocalAttachment struct {
	Port         int
	Tiles        []NodeID
	Latency      int
	WithEjection bool
}

// LocalAttachments returns a router's local attachments in port order.
func (n *Network) LocalAttachments(router NodeID) []LocalAttachment {
	var out []LocalAttachment
	r := n.routers[router]
	for port := 0; port < r.NumPorts(); port++ {
		inj := n.injectors[injKey{router, port}]
		if inj == nil {
			continue
		}
		la := LocalAttachment{Port: port, Latency: inj.ch.Latency, WithEjection: inj.primary}
		for _, st := range inj.streams {
			la.Tiles = append(la.Tiles, st.ni.ID)
		}
		out = append(out, la)
	}
	return out
}

// Tick advances the whole network one cycle in four phases:
//
//  1. Region channel phase (parallel): each shard ticks its internal
//     channels — both endpoints inside the shard — against its own work
//     list. Tail-flit deliveries are buffered per region instead of
//     running the delivery callback immediately.
//  2. Barrier (serial): boundary channels (endpoints in different shards)
//     tick in canonical (From, To) order, then the buffered deliveries of
//     all regions run through the delivery callback in canonical
//     destination order.
//  3. Region router phase (parallel): each shard ticks its routers and
//     then its injectors, in deterministic per-region order.
//  4. Merge (serial): per-region counters fold into the network totals
//     and the periodic verifier runs.
//
// All cross-component paths have at least one cycle of latency and a tile
// ejects at most one tail flit per cycle, so the only in-cycle order the
// simulation can observe is same-cycle delivery-callback order — which the
// barrier canonicalizes by sorting on destination. That makes the results
// (and checkpoint blobs) byte-identical for every shard count, including
// the serial shards == 1 path, which runs the same four phases on one
// region covering the whole chip.
//
// Only the active work lists are walked: a channel with nothing in flight
// and a router that parked itself (disabled, asleep, or empty) are skipped
// entirely, which is the common case in drained or power-gated regions.
// Skipped components stay externally indistinguishable from ticked ones —
// channels hold no per-cycle state, and parked routers reconstruct their
// activity counters on demand (Router.syncIdle).
func (n *Network) Tick(now sim.Cycle) {
	if n.carveDirty {
		n.carve()
	}
	n.lastTick = now
	n.stats.Cycles++

	// Tracing wants globally ordered callbacks, so a traced network runs
	// its regions sequentially on this goroutine; the state evolution is
	// identical (regions only touch state they own).
	parallel := n.gang != nil && n.tracer == nil
	n.gangNow = now

	// Phase 1: internal channels, per region.
	if parallel {
		n.gang.Kick(gangPhaseChannels)
		n.regionChannels(n.regions[0], now)
		n.gang.Wait()
	} else {
		for _, reg := range n.regions {
			n.regionChannels(reg, now)
		}
	}

	// Phase 2 (barrier): boundary channels in canonical order, then the
	// canonical delivery replay.
	var boundaryTicked int64
	for _, ch := range n.boundaryCh {
		if !ch.active || !ch.Busy() {
			continue
		}
		n.tickChannel(ch, now, nil)
		boundaryTicked++
	}
	n.replayDeliveries(now)

	// Phase 3: routers then injectors, per region.
	if parallel {
		n.gang.Kick(gangPhaseRouters)
		n.regionRouters(n.regions[0], now)
		n.gang.Wait()
	} else {
		for _, reg := range n.regions {
			n.regionRouters(reg, now)
		}
	}

	// Phase 4: fold the per-region counters into the network totals.
	tickedCh := boundaryTicked
	var tickedR, injected, ejected int64
	for _, reg := range n.regions {
		tickedCh += reg.tickedCh
		tickedR += reg.tickedR
		injected += reg.flitsInjected
		ejected += reg.flitsEjected
		reg.tickedCh, reg.tickedR, reg.flitsInjected, reg.flitsEjected = 0, 0, 0, 0
	}
	n.stats.ChannelTicks += tickedCh
	n.stats.ChannelSkips += int64(len(n.channels)) - tickedCh
	n.stats.RouterTicks += tickedR
	n.stats.RouterSkips += int64(len(n.routers)) - tickedR
	n.TotalFlitsInjected += injected
	n.TotalFlitsEjected += ejected

	if n.verifyEvery > 0 && int64(now)%n.verifyEvery == 0 {
		if err := n.verifier(n, now); err != nil {
			panic(fmt.Sprintf("noc: invariant violated at cycle %d: %v", now, err))
		}
	}
}

// replayDeliveries runs the delivery callbacks buffered by the region
// channel phase, in canonical order. Each tile sits on exactly one
// ejection channel and a channel delivers at most one flit per cycle, so
// at most one packet per destination tile completes per cycle — sorting by
// destination is a total order, independent of region count and work-list
// order. The sort is a hand-written insertion sort: the list is tiny (a
// handful of same-cycle deliveries) and sort.Slice's interface conversion
// would allocate on the steady-state path.
func (n *Network) replayDeliveries(now sim.Cycle) {
	pend := n.pendingAll[:0]
	for _, reg := range n.regions {
		pend = append(pend, reg.pending...)
		for i := range reg.pending {
			reg.pending[i] = nil
		}
		reg.pending = reg.pending[:0]
	}
	for i := 1; i < len(pend); i++ {
		p := pend[i]
		j := i - 1
		for j >= 0 && pend[j].Dst > p.Dst {
			pend[j+1] = pend[j]
			j--
		}
		pend[j+1] = p
	}
	for i, p := range pend {
		pend[i] = nil
		n.deliver(p, now)
	}
	n.pendingAll = pend[:0]
}

// tickChannel delivers due credits and flits. Endpoint targets were
// resolved to direct pointers when the channel was wired (srcRouter /
// srcInj / dstRouter), so the per-delivery path does no endpoint switch
// and no injector map lookup. reg is the region running the tick and
// receives the ejection side effects (flit counter, buffered delivery);
// it is nil for boundary channels, which are router-to-router by
// construction and never reach the ejection branch.
func (n *Network) tickChannel(ch *Channel, now sim.Cycle, reg *shardRegion) {
	ch.deliverCredits(now, func(vc int) {
		if ch.srcRouter != nil {
			ch.srcRouter.receiveCredit(ch.From.Port, vc, now)
			return
		}
		if ch.srcInj == nil {
			panic("noc: credit for detached injector")
		}
		ch.srcInj.receiveCredit(vc)
	})
	ch.deliverFlits(now, func(f *Flit) {
		if n.tracer != nil {
			n.tracer.LinkTraversed(ch, f, now-sim.Cycle(ch.Latency), now)
		}
		if ch.dstRouter != nil {
			ch.dstRouter.receiveFlit(ch.To.Port, f, now)
			// Credit returns to the sender as the buffer slot is consumed
			// downstream; the router emits it at switch traversal via the
			// input channel (see Router.traverse -> creditUpstream).
			return
		}
		// Ejection: the NI consumes the flit immediately and the buffer
		// slot frees right away. The tail-flit delivery callback is
		// deferred to the barrier (reg.deliver buffers the packet) so
		// same-cycle deliveries run in canonical order there.
		dst := f.Pkt.Dst
		if n.attach[dst] != ch.From.Router {
			panic(fmt.Sprintf("noc: packet %v ejected at router %d but tile attached to %d",
				f.Pkt, ch.From.Router, n.attach[dst]))
		}
		ch.sendCredit(f.VC, now)
		reg.flitsEjected++
		if n.tracer != nil {
			n.tracer.FlitEjected(dst, f, now)
		}
		n.nis[dst].receiveFlit(f, now, reg.deliver)
	})
}

func (n *Network) deliver(p *Packet, now sim.Cycle) {
	n.TotalDelivered++
	if n.tracer != nil {
		n.tracer.PacketDelivered(p, now)
	}
	if n.onDeliver != nil {
		n.onDeliver(p, now)
	}
	// The packet is dead: every flit was ejected (the NI checked the tail
	// count) and every observer has run. Recycle the flit slab into the
	// pool that carved it and the packet into the serial pool; both may be
	// reused by a later NewPacket.
	if p.flits != nil {
		n.pools[p.slabPool].putSlab(p.flits)
		p.flits = nil
	}
	p.Payload = nil
	n.pools[0].putPacket(p)
}

// InFlightFlits counts flits buffered in routers or travelling on channels.
func (n *Network) InFlightFlits() int {
	c := 0
	for _, r := range n.routers {
		c += r.Occupancy()
	}
	for _, ch := range n.channels {
		c += len(ch.fwd) - ch.fwdHead
	}
	return c
}

// ForEachInFlightFlit visits every flit currently buffered in a router
// input VC or travelling on a channel, in deterministic order. Used by the
// invariant checker to validate per-flit timestamps and VC FIFO ordering.
func (n *Network) ForEachInFlightFlit(fn func(f *Flit)) {
	for _, r := range n.routers {
		r.ForEachBufferedFlit(func(port, vc int, f *Flit) { fn(f) })
	}
	for _, ch := range n.channels {
		for _, e := range ch.fwd[ch.fwdHead:] {
			fn(e.flit)
		}
	}
}

// Quiescent reports whether no flit is buffered or in flight anywhere and
// no NI is mid-stream (injection queues may still hold whole packets).
func (n *Network) Quiescent() bool {
	if n.InFlightFlits() != 0 {
		return false
	}
	for _, ni := range n.nis {
		if ni.openStreams != 0 {
			return false
		}
	}
	return true
}

// PendingPackets counts packets queued at NIs but not yet fully injected.
func (n *Network) PendingPackets() int {
	c := 0
	for _, ni := range n.nis {
		c += ni.QueueLen()
	}
	return c
}

// CheckCreditInvariant validates, for every live channel, that upstream
// credits + downstream buffered flits + flits/credits in flight equal the
// buffer depth for every VC. Router-to-router channels check against the
// downstream input VCs; injection channels against the serving router's
// local input VCs (the injector holds the credit mirror); ejection
// channels have no downstream buffer (the NI consumes immediately), so
// credits plus in-flight entries must make up the full depth. Holds at any
// cycle boundary, not just at quiescence.
func (n *Network) CheckCreditInvariant() error {
	// Per-VC in-flight tallies reuse the network's scratch slices (sized to
	// the flat VC count at construction) so the periodic verifier sweep
	// allocates nothing.
	inFlightFlits := n.ccFlits
	inFlightCredits := n.ccCredits
	for _, ch := range n.channels {
		for vc := range inFlightFlits {
			inFlightFlits[vc] = 0
			inFlightCredits[vc] = 0
		}
		for _, e := range ch.fwd[ch.fwdHead:] {
			inFlightFlits[e.flit.VC]++
		}
		for _, e := range ch.rev[ch.revHead:] {
			inFlightCredits[e.credit.vc]++
		}
		switch {
		case ch.From.Kind == EndRouter && ch.To.Kind == EndRouter:
			up := &n.routers[ch.From.Router].outputs[ch.From.Port]
			down := &n.routers[ch.To.Router].inputs[ch.To.Port]
			if up.out != ch {
				continue
			}
			for vc := range up.credits {
				total := up.credits[vc] + down.vcs[vc].len() + inFlightFlits[vc] + inFlightCredits[vc]
				if total != up.depth {
					return fmt.Errorf("noc: credit invariant broken on %v->%v vc %d: %d+%d+%d+%d != %d",
						ch.From, ch.To, vc, up.credits[vc], down.vcs[vc].len(),
						inFlightFlits[vc], inFlightCredits[vc], up.depth)
				}
			}
		case ch.From.Kind == EndNI && ch.To.Kind == EndRouter:
			inj := n.injectors[injKey{ch.From.NI, ch.From.Port}]
			down := &n.routers[ch.To.Router].inputs[ch.To.Port]
			if inj == nil || down.in != ch {
				continue
			}
			for vc := range inj.credits {
				total := inj.credits[vc] + down.vcs[vc].len() + inFlightFlits[vc] + inFlightCredits[vc]
				if total != inj.depth {
					return fmt.Errorf("noc: injection credit invariant broken on %v->%v vc %d: %d+%d+%d+%d != %d",
						ch.From, ch.To, vc, inj.credits[vc], down.vcs[vc].len(),
						inFlightFlits[vc], inFlightCredits[vc], inj.depth)
				}
			}
		case ch.From.Kind == EndRouter && ch.To.Kind == EndNI:
			up := &n.routers[ch.From.Router].outputs[ch.From.Port]
			if up.out != ch {
				continue
			}
			for vc := range up.credits {
				total := up.credits[vc] + inFlightFlits[vc] + inFlightCredits[vc]
				if total != up.depth {
					return fmt.Errorf("noc: ejection credit invariant broken on %v->%v vc %d: %d+%d+%d != %d",
						ch.From, ch.To, vc, up.credits[vc],
						inFlightFlits[vc], inFlightCredits[vc], up.depth)
				}
			}
		}
	}
	return nil
}
