package noc

import (
	"fmt"
	"sort"

	"adaptnoc/internal/sim"
)

// DeliverFunc observes every packet at the cycle its tail flit reaches the
// destination NI.
type DeliverFunc func(p *Packet, now sim.Cycle)

// Network owns the routers, network interfaces, and channels of one chip
// and advances them one cycle per Tick. Topology packages wire it; the
// fabric package rewires it at runtime.
type Network struct {
	Cfg Config

	routers  []*Router
	nis      []*NI
	channels []*Channel

	// injectors is keyed by (router, local port); a router may have
	// several local ports (flattened butterfly gives each terminal its
	// own, Adapt-NoC concentration shares one through the mux). injList
	// mirrors it in deterministic order for the per-cycle tick.
	injectors map[injKey]*injector
	injList   []*injector
	// attach maps each tile to the router currently serving its NI
	// (-1 when unattached).
	attach []NodeID

	onDeliver DeliverFunc
	// deliverBound is the method value n.deliver, materialized once so the
	// per-tail-flit delivery call does not rebuild it.
	deliverBound DeliverFunc
	nextPkt      uint64

	// pool is the per-network allocation arena: packet free list plus flit
	// slab arena, recycled at delivery (see pool.go).
	pool pool

	// ccFlits/ccCredits are CheckCreditInvariant's per-VC tallies, sized to
	// the flat VC count once and reused so a periodic verifier pass does
	// not allocate.
	ccFlits   []int
	ccCredits []int

	// Active work lists: only channels with traffic in flight and routers
	// with work are ticked; idle ones are skipped. Wakes that occur inside
	// a tick phase are buffered in the woken slices and merged at the next
	// phase boundary (channels at the next Tick, routers before this
	// Tick's router phase, since channel deliveries may wake routers that
	// must still tick this cycle).
	activeCh []*Channel
	wokenCh  []*Channel
	activeR  []*Router
	wokenR   []*Router

	// lastTick is the cycle most recently passed to Tick (-1 before the
	// first). Parked routers reconstruct their counters through it when
	// read (see Router.syncIdle).
	lastTick sim.Cycle

	stats TickStats

	// Observability: optional lifecycle tracer and periodic invariant
	// checker (see trace.go). Both are nil/0 unless explicitly installed;
	// the hot path pays one nil or integer comparison per guarded site.
	tracer      Tracer
	verifier    VerifyFunc
	verifyEvery int64

	// Aggregate counters (whole-run, never reset).
	TotalEnqueued  int64
	TotalDelivered int64
	// Flit-granularity conservation counters: a flit is injected when it
	// leaves an NI on an injection channel and ejected when the
	// destination NI consumes it, so at any cycle boundary
	// TotalFlitsInjected == TotalFlitsEjected + InFlightFlits().
	TotalFlitsInjected int64
	TotalFlitsEjected  int64
}

// TickStats counts executed versus skipped component ticks, proving the
// idle-skip rate of the active work lists.
type TickStats struct {
	Cycles       int64 // network ticks executed
	RouterTicks  int64 // router ticks actually run
	RouterSkips  int64 // router ticks skipped (parked routers)
	ChannelTicks int64 // channel ticks actually run
	ChannelSkips int64 // channel ticks skipped (idle channels)
}

// RouterSkipRate is the fraction of router ticks avoided.
func (s TickStats) RouterSkipRate() float64 {
	if t := s.RouterTicks + s.RouterSkips; t > 0 {
		return float64(s.RouterSkips) / float64(t)
	}
	return 0
}

// ChannelSkipRate is the fraction of channel ticks avoided.
func (s TickStats) ChannelSkipRate() float64 {
	if t := s.ChannelTicks + s.ChannelSkips; t > 0 {
		return float64(s.ChannelSkips) / float64(t)
	}
	return 0
}

// TickStats returns the skip counters accumulated so far.
func (n *Network) TickStats() TickStats { return n.stats }

// NewNetwork creates a W×H network with one 5-port router and one NI per
// tile and no channels. Topology builders add channels, local attachments,
// routing tables, and any extra ports.
func NewNetwork(cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := &Network{Cfg: cfg, lastTick: -1}
	n.deliverBound = n.deliver
	nvc := NumVNets * cfg.VCsPerVNet
	n.ccFlits = make([]int, nvc)
	n.ccCredits = make([]int, nvc)
	if testVerifier != nil {
		n.verifier, n.verifyEvery = testVerifier, testVerifyEvery
	}
	count := cfg.NumNodes()
	n.routers = make([]*Router, count)
	n.nis = make([]*NI, count)
	n.injectors = make(map[injKey]*injector)
	n.attach = make([]NodeID, count)
	for i := 0; i < count; i++ {
		n.routers[i] = newRouter(NodeID(i), 5, &n.Cfg, n)
		n.nis[i] = newNI(NodeID(i))
		n.attach[i] = -1
	}
	return n
}

// Router returns the router at a tile.
func (n *Network) Router(id NodeID) *Router { return n.routers[id] }

// NI returns a tile's network interface.
func (n *Network) NI(id NodeID) *NI { return n.nis[id] }

// Routers returns the router slice (do not mutate).
func (n *Network) Routers() []*Router { return n.routers }

// NIs returns the NI slice (do not mutate).
func (n *Network) NIs() []*NI { return n.nis }

// Channels returns the live channel slice (do not mutate).
func (n *Network) Channels() []*Channel { return n.channels }

// SetDeliverFunc installs the packet delivery observer.
func (n *Network) SetDeliverFunc(fn DeliverFunc) { n.onDeliver = fn }

// ServingRouter returns the router currently serving a tile's NI, or -1.
func (n *Network) ServingRouter(tile NodeID) NodeID { return n.attach[tile] }

// Connect wires a directed router-to-router channel and attaches it to the
// named ports, returning the channel. The downstream credit mirror is sized
// from the network configuration.
func (n *Network) Connect(from, to Endpoint, kind ChannelKind, latency, tiles int) *Channel {
	if from.Kind != EndRouter || to.Kind != EndRouter {
		panic("noc: Connect is for router-to-router channels; use AttachLocal for NIs")
	}
	ch := newChannel(from, to, kind, latency, tiles)
	ch.net = n
	src := n.routers[from.Router]
	dst := n.routers[to.Router]
	ch.srcRouter, ch.dstRouter = src, dst
	nvc := NumVNets * n.Cfg.VCsPerVNet
	src.attachOut(from.Port, ch, nvc, n.Cfg.VCDepth)
	dst.attachIn(to.Port, ch)
	n.channels = append(n.channels, ch)
	return ch
}

// ConnectBidir wires a mesh-style bidirectional link between two routers on
// complementary ports, with 1-tile span.
func (n *Network) ConnectBidir(a NodeID, aPort int, b NodeID, bPort int, kind ChannelKind, latency, tiles int) (fwd, rev *Channel) {
	fwd = n.Connect(Endpoint{Kind: EndRouter, Router: a, Port: aPort},
		Endpoint{Kind: EndRouter, Router: b, Port: bPort}, kind, latency, tiles)
	rev = n.Connect(Endpoint{Kind: EndRouter, Router: b, Port: bPort},
		Endpoint{Kind: EndRouter, Router: a, Port: aPort}, kind, latency, tiles)
	return fwd, rev
}

// injKey identifies one local attachment point.
type injKey struct {
	router NodeID
	port   int
}

// AttachLocal connects the NIs of the given tiles to a router's local
// port: an injection channel (NIs → local input, arbitrated by the
// concentration mux when several tiles share it) and an ejection channel
// (local output → NIs). latency covers the concentration-link distance;
// 1 for a resident NI.
func (n *Network) AttachLocal(router NodeID, tiles []NodeID, latency int) {
	n.AttachLocalPort(router, PortLocal, tiles, latency)
}

// AttachLocalPort is AttachLocal on an explicit local port, letting
// high-radix routers (flattened butterfly) give each terminal its own
// injection/ejection port.
func (n *Network) AttachLocalPort(router NodeID, port int, tiles []NodeID, latency int) {
	n.attachLocalPort(router, port, tiles, latency, true)
}

// AttachInjectionPort adds an injection-only local port for tiles already
// attached to this router — the tree root's extra injection bandwidth
// ("maximize the fanout of the root router ... to provide sufficient
// injection bandwidth", Section II-B.3). No ejection channel is wired and
// the port never appears in routing tables.
func (n *Network) AttachInjectionPort(router NodeID, port int, tiles []NodeID, latency int) {
	n.attachLocalPort(router, port, tiles, latency, false)
}

func (n *Network) attachLocalPort(router NodeID, port int, tiles []NodeID, latency int, withEjection bool) {
	r := n.routers[router]
	kind := ChanLocal
	if len(tiles) > 1 {
		kind = ChanConcentration
	}
	injCh := newChannel(
		Endpoint{Kind: EndNI, NI: router, Port: port},
		Endpoint{Kind: EndRouter, Router: router, Port: port},
		kind, latency, 1)
	injCh.net = n
	injCh.dstRouter = r
	n.channels = append(n.channels, injCh)
	r.attachIn(port, injCh)
	if withEjection {
		ejCh := newChannel(
			Endpoint{Kind: EndRouter, Router: router, Port: port},
			Endpoint{Kind: EndNI, NI: router, Port: port},
			kind, latency, 1)
		ejCh.net = n
		ejCh.srcRouter = r
		n.channels = append(n.channels, ejCh)
		nvc := NumVNets * n.Cfg.VCsPerVNet
		r.attachOut(port, ejCh, nvc, n.Cfg.VCDepth)
	}

	nis := make([]*NI, len(tiles))
	for i, t := range tiles {
		nis[i] = n.nis[t]
		n.attach[t] = router
	}
	inj := newInjector(r, port, injCh, nis, withEjection)
	injCh.srcInj = inj
	n.injectors[injKey{router, port}] = inj
	n.injList = append(n.injList, inj)
	sort.Slice(n.injList, func(i, j int) bool {
		a, b := n.injList[i], n.injList[j]
		if a.router.ID != b.router.ID {
			return a.router.ID < b.router.ID
		}
		return a.port < b.port
	})
}

// DetachLocal removes every NI attachment of a router (used before
// re-clustering during reconfiguration). Injection streams must be idle.
//
// Detached injectors are marked and the deterministic injection list is
// compacted once, order-preserving, after all ports are processed — a wide
// reconfiguration wave detaching k of n injectors costs O(n + k) instead
// of the O(k·n) of per-injector shift removal.
func (n *Network) DetachLocal(router NodeID) {
	r := n.routers[router]
	detached := 0
	for port := 0; port < r.NumPorts(); port++ {
		key := injKey{router, port}
		inj := n.injectors[key]
		if inj == nil {
			continue
		}
		for _, st := range inj.streams {
			if st.cur != nil {
				panic(fmt.Sprintf("noc: detaching NI %d mid-packet", st.ni.ID))
			}
			n.attach[st.ni.ID] = -1
		}
		if inj.ch.Busy() {
			panic(fmt.Sprintf("noc: detaching router %d local port %d with traffic in flight", router, port))
		}
		n.removeChannel(inj.ch)
		if ej := r.OutputChannel(port); ej != nil {
			n.removeChannel(ej)
			r.attachOut(port, nil, 0, 0)
		}
		r.attachIn(port, nil)
		delete(n.injectors, key)
		inj.detached = true
		detached++
	}
	if detached == 0 {
		return
	}
	keep := n.injList[:0]
	for _, x := range n.injList {
		if !x.detached {
			keep = append(keep, x)
		}
	}
	for i := len(keep); i < len(n.injList); i++ {
		n.injList[i] = nil
	}
	n.injList = keep
}

// DisconnectOut detaches and removes the channel on a router output port.
// The channel must be drained.
func (n *Network) DisconnectOut(router NodeID, port int) {
	r := n.routers[router]
	ch := r.OutputChannel(port)
	if ch == nil {
		return
	}
	if ch.Busy() {
		panic(fmt.Sprintf("noc: disconnecting busy channel %v->%v", ch.From, ch.To))
	}
	if ch.To.Kind == EndRouter {
		n.routers[ch.To.Router].attachIn(ch.To.Port, nil)
	}
	r.attachOut(port, nil, 0, 0)
	n.removeChannel(ch)
}

// removeChannel deactivates and drops a channel from the live set. If the
// channel sits on the active work list it is NOT spliced out eagerly (an
// O(active) shift per removal): deactivation alone is enough, because the
// next Tick skips inactive channels and drops them during its ordinary
// keep-compaction pass. A removed channel is drained by precondition, so
// skipping it delivers nothing and same-cycle delivery order — which the
// active list's order determines and which must stay a pure function of
// simulation history — is untouched.
//
// The n.channels membership slice is unordered (it only feeds sums and
// invariant sweeps), so swap-removal there is O(1) and stays.
func (n *Network) removeChannel(ch *Channel) {
	ch.setActive(false)
	for i, c := range n.channels {
		if c == ch {
			n.channels[i] = n.channels[len(n.channels)-1]
			n.channels[len(n.channels)-1] = nil
			n.channels = n.channels[:len(n.channels)-1]
			return
		}
	}
}

// NewPacket returns a packet with the configured size for its class, drawn
// from the network's arena. The packet is valid until its delivery
// callback returns, at which point it is recycled; see Packet.
func (n *Network) NewPacket(src, dst NodeID, class PacketClass, vnet VNet, app int) *Packet {
	n.nextPkt++
	size := n.Cfg.CtrlFlits
	if class == ClassData {
		size = n.Cfg.DataFlits
	}
	p := n.pool.getPacket()
	// Full-literal assignment resets every pooled field (timestamps, hops,
	// payload, dateline state, reassembly count, slab reference).
	*p = Packet{
		ID: n.nextPkt, Src: src, Dst: dst,
		Class: class, VNet: vnet, Size: size, App: app,
	}
	return p
}

// makeFlits serializes a packet into a pooled slab from the arena.
func (n *Network) makeFlits(p *Packet) []Flit {
	if p.Size < 1 {
		panic("noc: packet with no flits")
	}
	return fillFlits(p, n.pool.getSlab(p.Size))
}

// Enqueue submits a packet at its source NI at cycle now.
func (n *Network) Enqueue(p *Packet, now sim.Cycle) {
	if p.Src == p.Dst {
		panic(fmt.Sprintf("noc: self-addressed packet %v", p))
	}
	n.nis[p.Src].enqueue(p, now)
	n.TotalEnqueued++
	if n.tracer != nil {
		n.tracer.PacketEnqueued(p, now)
	}
}

// Tick advances the whole network one cycle: channel deliveries, router
// pipelines, then injection arbitration. All cross-component paths have at
// least one cycle of latency, so the in-cycle order is not observable.
//
// Only the active work lists are walked: a channel with nothing in flight
// and a router that parked itself (disabled, asleep, or empty) are skipped
// entirely, which is the common case in drained or power-gated regions.
// Skipped components stay externally indistinguishable from ticked ones —
// channels hold no per-cycle state, and parked routers reconstruct their
// activity counters on demand (Router.syncIdle).
func (n *Network) Tick(now sim.Cycle) {
	n.lastTick = now
	n.stats.Cycles++

	// Channels woken since the previous tick (router traversals, injector
	// sends, ejection credits) join the list; their earliest delivery is
	// this cycle at the soonest, so merging here loses nothing. Channels
	// removed by reconfiguration are dropped here too (removeChannel does
	// not splice work lists eagerly).
	if len(n.wokenCh) > 0 {
		n.activeCh = append(n.activeCh, n.wokenCh...)
		n.wokenCh = n.wokenCh[:0]
	}
	var tickedCh int64
	keepCh := n.activeCh[:0]
	for _, ch := range n.activeCh {
		if !ch.active {
			ch.queued = false
			continue
		}
		n.tickChannel(ch, now)
		tickedCh++
		if ch.Busy() {
			keepCh = append(keepCh, ch)
		} else {
			ch.queued = false
		}
	}
	for i := len(keepCh); i < len(n.activeCh); i++ {
		n.activeCh[i] = nil
	}
	n.activeCh = keepCh
	n.stats.ChannelTicks += tickedCh
	n.stats.ChannelSkips += int64(len(n.channels)) - tickedCh

	// Routers woken by this cycle's deliveries must still tick this cycle,
	// so the merge sits between the channel and router phases.
	if len(n.wokenR) > 0 {
		n.activeR = append(n.activeR, n.wokenR...)
		n.wokenR = n.wokenR[:0]
	}
	tickedR := int64(len(n.activeR))
	keepR := n.activeR[:0]
	for _, r := range n.activeR {
		r.Tick(now)
		if !r.parked {
			keepR = append(keepR, r)
		}
	}
	n.activeR = keepR
	n.stats.RouterTicks += tickedR
	n.stats.RouterSkips += int64(len(n.routers)) - tickedR

	for _, inj := range n.injList {
		inj.tick(now)
	}

	if n.verifyEvery > 0 && int64(now)%n.verifyEvery == 0 {
		if err := n.verifier(n, now); err != nil {
			panic(fmt.Sprintf("noc: invariant violated at cycle %d: %v", now, err))
		}
	}
}

// tickChannel delivers due credits and flits. Endpoint targets were
// resolved to direct pointers when the channel was wired (srcRouter /
// srcInj / dstRouter), so the per-delivery path does no endpoint switch
// and no injector map lookup.
func (n *Network) tickChannel(ch *Channel, now sim.Cycle) {
	ch.deliverCredits(now, func(vc int) {
		if ch.srcRouter != nil {
			ch.srcRouter.receiveCredit(ch.From.Port, vc, now)
			return
		}
		if ch.srcInj == nil {
			panic("noc: credit for detached injector")
		}
		ch.srcInj.receiveCredit(vc)
	})
	ch.deliverFlits(now, func(f *Flit) {
		if n.tracer != nil {
			n.tracer.LinkTraversed(ch, f, now-sim.Cycle(ch.Latency), now)
		}
		if ch.dstRouter != nil {
			ch.dstRouter.receiveFlit(ch.To.Port, f, now)
			// Credit returns to the sender as the buffer slot is consumed
			// downstream; the router emits it at switch traversal via the
			// input channel (see Router.traverse -> creditUpstream).
			return
		}
		// Ejection: the NI consumes the flit immediately and the buffer
		// slot frees right away.
		dst := f.Pkt.Dst
		if n.attach[dst] != ch.From.Router {
			panic(fmt.Sprintf("noc: packet %v ejected at router %d but tile attached to %d",
				f.Pkt, ch.From.Router, n.attach[dst]))
		}
		ch.sendCredit(f.VC, now)
		n.TotalFlitsEjected++
		if n.tracer != nil {
			n.tracer.FlitEjected(dst, f, now)
		}
		n.nis[dst].receiveFlit(f, now, n.deliverBound)
	})
}

func (n *Network) deliver(p *Packet, now sim.Cycle) {
	n.TotalDelivered++
	if n.tracer != nil {
		n.tracer.PacketDelivered(p, now)
	}
	if n.onDeliver != nil {
		n.onDeliver(p, now)
	}
	// The packet is dead: every flit was ejected (the NI checked the tail
	// count) and every observer has run. Recycle the flit slab and the
	// packet into the arena; both may be reused by a later NewPacket.
	if p.flits != nil {
		n.pool.putSlab(p.flits)
		p.flits = nil
	}
	p.Payload = nil
	n.pool.putPacket(p)
}

// InFlightFlits counts flits buffered in routers or travelling on channels.
func (n *Network) InFlightFlits() int {
	c := 0
	for _, r := range n.routers {
		c += r.Occupancy()
	}
	for _, ch := range n.channels {
		c += len(ch.fwd) - ch.fwdHead
	}
	return c
}

// ForEachInFlightFlit visits every flit currently buffered in a router
// input VC or travelling on a channel, in deterministic order. Used by the
// invariant checker to validate per-flit timestamps and VC FIFO ordering.
func (n *Network) ForEachInFlightFlit(fn func(f *Flit)) {
	for _, r := range n.routers {
		r.ForEachBufferedFlit(func(port, vc int, f *Flit) { fn(f) })
	}
	for _, ch := range n.channels {
		for _, e := range ch.fwd[ch.fwdHead:] {
			fn(e.flit)
		}
	}
}

// Quiescent reports whether no flit is buffered or in flight anywhere and
// no NI is mid-stream (injection queues may still hold whole packets).
func (n *Network) Quiescent() bool {
	if n.InFlightFlits() != 0 {
		return false
	}
	for _, ni := range n.nis {
		if ni.openStreams != 0 {
			return false
		}
	}
	return true
}

// PendingPackets counts packets queued at NIs but not yet fully injected.
func (n *Network) PendingPackets() int {
	c := 0
	for _, ni := range n.nis {
		c += ni.QueueLen()
	}
	return c
}

// CheckCreditInvariant validates, for every live channel, that upstream
// credits + downstream buffered flits + flits/credits in flight equal the
// buffer depth for every VC. Router-to-router channels check against the
// downstream input VCs; injection channels against the serving router's
// local input VCs (the injector holds the credit mirror); ejection
// channels have no downstream buffer (the NI consumes immediately), so
// credits plus in-flight entries must make up the full depth. Holds at any
// cycle boundary, not just at quiescence.
func (n *Network) CheckCreditInvariant() error {
	// Per-VC in-flight tallies reuse the network's scratch slices (sized to
	// the flat VC count at construction) so the periodic verifier sweep
	// allocates nothing.
	inFlightFlits := n.ccFlits
	inFlightCredits := n.ccCredits
	for _, ch := range n.channels {
		for vc := range inFlightFlits {
			inFlightFlits[vc] = 0
			inFlightCredits[vc] = 0
		}
		for _, e := range ch.fwd[ch.fwdHead:] {
			inFlightFlits[e.flit.VC]++
		}
		for _, e := range ch.rev[ch.revHead:] {
			inFlightCredits[e.credit.vc]++
		}
		switch {
		case ch.From.Kind == EndRouter && ch.To.Kind == EndRouter:
			up := &n.routers[ch.From.Router].outputs[ch.From.Port]
			down := &n.routers[ch.To.Router].inputs[ch.To.Port]
			if up.out != ch {
				continue
			}
			for vc := range up.credits {
				total := up.credits[vc] + down.vcs[vc].len() + inFlightFlits[vc] + inFlightCredits[vc]
				if total != up.depth {
					return fmt.Errorf("noc: credit invariant broken on %v->%v vc %d: %d+%d+%d+%d != %d",
						ch.From, ch.To, vc, up.credits[vc], down.vcs[vc].len(),
						inFlightFlits[vc], inFlightCredits[vc], up.depth)
				}
			}
		case ch.From.Kind == EndNI && ch.To.Kind == EndRouter:
			inj := n.injectors[injKey{ch.From.NI, ch.From.Port}]
			down := &n.routers[ch.To.Router].inputs[ch.To.Port]
			if inj == nil || down.in != ch {
				continue
			}
			for vc := range inj.credits {
				total := inj.credits[vc] + down.vcs[vc].len() + inFlightFlits[vc] + inFlightCredits[vc]
				if total != inj.depth {
					return fmt.Errorf("noc: injection credit invariant broken on %v->%v vc %d: %d+%d+%d+%d != %d",
						ch.From, ch.To, vc, inj.credits[vc], down.vcs[vc].len(),
						inFlightFlits[vc], inFlightCredits[vc], inj.depth)
				}
			}
		case ch.From.Kind == EndRouter && ch.To.Kind == EndNI:
			up := &n.routers[ch.From.Router].outputs[ch.From.Port]
			if up.out != ch {
				continue
			}
			for vc := range up.credits {
				total := up.credits[vc] + inFlightFlits[vc] + inFlightCredits[vc]
				if total != up.depth {
					return fmt.Errorf("noc: ejection credit invariant broken on %v->%v vc %d: %d+%d+%d != %d",
						ch.From, ch.To, vc, up.credits[vc],
						inFlightFlits[vc], inFlightCredits[vc], up.depth)
				}
			}
		}
	}
	return nil
}
