package noc_test

import (
	"adaptnoc/internal/noc"
	"adaptnoc/internal/obs"
)

// Every network built by any test in this package runs the obs invariant
// checker (flit conservation, credit balance, timestamp monotonicity)
// periodically, so each simulation test doubles as a conservation check.
// The hook lives in the external test package because internal/obs imports
// this one.
func init() {
	noc.InstallTestVerifier(64, obs.Verify)
}
