package noc

import "adaptnoc/internal/sim"

// Tracer observes the full flit lifecycle: packet enqueue at the source
// NI, injection into the first router, per-hop pipeline progress (arrival,
// route computation, VC allocation, switch traversal), link traversals,
// and per-flit ejection / packet delivery at the destination.
//
// The network holds a single nil-checkable Tracer; every hot-path call
// site is guarded by one nil comparison, so a disabled tracer costs one
// predicted branch per event and nothing else. Implementations live in
// internal/obs (Chrome trace_event export, binary ring buffer, latency
// histograms); they must not mutate the flits or packets they observe and
// must not retain *Flit or *Packet pointers past the packet's delivery:
// both index into the network's arena and are recycled by a later packet
// (see pool.go). Identity that must outlive delivery is (Pkt.ID, Seq).
//
// All callbacks run synchronously inside Network.Tick in deterministic
// simulation order, so a tracer needs no locking of its own.
type Tracer interface {
	// PacketEnqueued fires when a packet enters its source NI queue.
	PacketEnqueued(p *Packet, now sim.Cycle)
	// PacketInjected fires when the head flit is sent on the injection
	// channel toward the first router.
	PacketInjected(p *Packet, router NodeID, now sim.Cycle)
	// FlitArrived fires when a flit is written into a router input VC.
	FlitArrived(router NodeID, port int, f *Flit, now sim.Cycle)
	// FlitRouted fires when route computation resolves the packet's
	// output port at a router (head flit only, once per hop).
	FlitRouted(router NodeID, f *Flit, outPort int, now sim.Cycle)
	// FlitVCAllocated fires when VC allocation grants the packet a
	// downstream VC (head flit only, once per hop).
	FlitVCAllocated(router NodeID, f *Flit, outVC int, now sim.Cycle)
	// FlitTraversed fires when a flit wins switch allocation and crosses
	// the crossbar onto its output channel (the SA+ST stages).
	FlitTraversed(router NodeID, outPort int, f *Flit, now sim.Cycle)
	// LinkTraversed fires when a channel delivers a flit: sent is the
	// cycle the flit entered the wire, arrived the delivery cycle.
	LinkTraversed(ch *Channel, f *Flit, sent, arrived sim.Cycle)
	// FlitEjected fires when a flit is consumed by the destination NI.
	FlitEjected(ni NodeID, f *Flit, now sim.Cycle)
	// PacketDelivered fires when the tail flit completes a packet; the
	// packet's EnqueuedAt/InjectedAt/EjectedAt stamps are final.
	PacketDelivered(p *Packet, now sim.Cycle)
}

// NopTracer implements Tracer with no-ops; embed it to implement only the
// events a collector cares about.
type NopTracer struct{}

// PacketEnqueued implements Tracer.
func (NopTracer) PacketEnqueued(*Packet, sim.Cycle) {}

// PacketInjected implements Tracer.
func (NopTracer) PacketInjected(*Packet, NodeID, sim.Cycle) {}

// FlitArrived implements Tracer.
func (NopTracer) FlitArrived(NodeID, int, *Flit, sim.Cycle) {}

// FlitRouted implements Tracer.
func (NopTracer) FlitRouted(NodeID, *Flit, int, sim.Cycle) {}

// FlitVCAllocated implements Tracer.
func (NopTracer) FlitVCAllocated(NodeID, *Flit, int, sim.Cycle) {}

// FlitTraversed implements Tracer.
func (NopTracer) FlitTraversed(NodeID, int, *Flit, sim.Cycle) {}

// LinkTraversed implements Tracer.
func (NopTracer) LinkTraversed(*Channel, *Flit, sim.Cycle, sim.Cycle) {}

// FlitEjected implements Tracer.
func (NopTracer) FlitEjected(NodeID, *Flit, sim.Cycle) {}

// PacketDelivered implements Tracer.
func (NopTracer) PacketDelivered(*Packet, sim.Cycle) {}

// SetTracer installs (or, with nil, removes) the lifecycle tracer.
func (n *Network) SetTracer(t Tracer) { n.tracer = t }

// Tracer returns the installed lifecycle tracer (nil when disabled).
func (n *Network) Tracer() Tracer { return n.tracer }

// VerifyFunc checks network-wide invariants; returning an error makes the
// network panic at the end of the offending Tick (fail loudly — a broken
// conservation or credit invariant means every later result is garbage).
type VerifyFunc func(n *Network, now sim.Cycle) error

// SetVerifier installs an invariant checker that runs at the end of every
// Tick whose cycle is a multiple of every. every <= 0 or fn == nil
// disables checking.
func (n *Network) SetVerifier(every int64, fn VerifyFunc) {
	if every <= 0 || fn == nil {
		n.verifyEvery, n.verifier = 0, nil
		return
	}
	n.verifyEvery, n.verifier = every, fn
}

// Test-only default verifier, installed into every subsequently built
// Network. Test packages register it from an init() in a _test.go file
// (see internal/noc and internal/exp), which turns every simulation test
// into a conservation / credit-balance / timestamp check without touching
// production call sites. The indirection exists because the checker lives
// in internal/obs, which imports this package.
var (
	testVerifier    VerifyFunc
	testVerifyEvery int64
)

// InstallTestVerifier registers a VerifyFunc that NewNetwork will install
// on every network it builds from now on. Intended to be called from an
// init() in a _test.go file; it is not safe to call concurrently with
// NewNetwork.
func InstallTestVerifier(every int64, fn VerifyFunc) {
	testVerifier, testVerifyEvery = fn, every
}
