package noc

import (
	"fmt"

	"adaptnoc/internal/sim"
)

// EndpointKind distinguishes what a channel terminates on.
type EndpointKind int

// Endpoint kinds.
const (
	EndRouter EndpointKind = iota // a router port
	EndNI                         // a network interface (injection/ejection)
)

// Endpoint names one side of a directed channel.
type Endpoint struct {
	Kind EndpointKind
	// Router and Port are valid when Kind == EndRouter.
	Router NodeID
	Port   int
	// NI is valid when Kind == EndNI.
	NI NodeID
}

// String implements fmt.Stringer.
func (e Endpoint) String() string {
	if e.Kind == EndNI {
		return fmt.Sprintf("ni%d", e.NI)
	}
	return fmt.Sprintf("r%d.%s", e.Router, DirPortName(e.Port))
}

// ChannelKind classifies wires for the power and wiring-budget models.
type ChannelKind int

// Channel kinds.
const (
	ChanMesh          ChannelKind = iota // nearest-neighbour mesh link
	ChanAdaptable                        // segment of an adaptable link (high metal)
	ChanConcentration                    // core-to-remote-router concentration link
	ChanExpress                          // static express link (Shortcut, FTBY)
	ChanLocal                            // router <-> resident NI connection
)

// String implements fmt.Stringer.
func (k ChannelKind) String() string {
	switch k {
	case ChanMesh:
		return "mesh"
	case ChanAdaptable:
		return "adaptable"
	case ChanConcentration:
		return "concentration"
	case ChanExpress:
		return "express"
	case ChanLocal:
		return "local"
	default:
		return fmt.Sprintf("chan(%d)", int(k))
	}
}

// inFlight is a flit (or credit) travelling on a channel.
type inFlight struct {
	flit      *Flit
	credit    creditMsg
	isCredit  bool
	deliverAt sim.Cycle
}

// creditMsg returns one buffer slot to the upstream output port.
type creditMsg struct {
	vc int
}

// Channel is a directed wire bundle between two endpoints with a fixed
// latency. Flits travel forward; credits travel backward on the paired
// return wires with the same latency. At most one flit may be accepted per
// cycle (one flit per cycle per 256-bit link).
//
// A channel can be deactivated during fabric reconfiguration; sending on an
// inactive channel panics (the reconfiguration protocol must drain first).
type Channel struct {
	From, To Endpoint
	Kind     ChannelKind
	Latency  int
	Tiles    int // physical span in tile edges, for power/wiring models
	// Intermediate marks wires placed on the intermediate metal layers
	// (M4-M6) instead of the default high layers — slower but a separate
	// wiring budget (Section V-B.2). The combined torus+tree topology
	// puts its tree segments there.
	Intermediate bool

	active bool

	// net and queued drive the owning region's active-channel work list: a
	// channel with nothing in flight is dropped from the per-cycle tick
	// loop and re-queued by the first send or credit (see Network.Tick).
	// net is nil for channels built outside a Network (tests).
	net    *Network
	queued bool

	// shard is the region owning this channel's tick (the sender's shard);
	// boundary marks channels whose endpoints sit in different shards.
	// Boundary channels are ticked serially at the barrier and stay
	// permanently queued so wake() — called from the sending region's
	// parallel phase — is a race-free no-op. Both are assigned by
	// Network.carve.
	shard    int
	boundary bool

	// Resolved endpoints, set when the channel is wired into a network so
	// the per-delivery hot path dispatches through a direct pointer rather
	// than an endpoint-kind switch plus injector map lookup. dstRouter is
	// nil on ejection channels (the NI consumes); srcRouter is nil on
	// injection channels, where srcInj holds the credit sink instead.
	srcRouter *Router
	dstRouter *Router
	srcInj    *injector

	fwd     []inFlight // flits toward To, FIFO by deliverAt
	fwdHead int
	rev     []inFlight // credits toward From
	revHead int

	lastSend sim.Cycle // panic guard: one flit per cycle
	sentAny  bool

	// Flits delivered counter for the power model.
	FlitsCarried int64
	// harvested marks how many of FlitsCarried the power meter has
	// already accounted.
	harvested int64

	// Snapshot splice cache (see Network.Snapshot): the bytes this channel
	// serialized to last time, valid while snapClean holds. snapClean is
	// only ever set for a non-queued channel — a queued channel is ticked
	// and mutated — and is cleared at every transition that can change a
	// quiet channel's serialized state: getting woken, being dropped from
	// a work list after draining, harvesting, and re-carves (a boundary
	// channel mutates while permanently queued, so its wake never fires).
	snapClean bool
	snapBytes []byte
}

// TakeFlits returns the flits carried since the last harvest.
func (c *Channel) TakeFlits() int64 {
	c.snapClean = false
	n := c.FlitsCarried - c.harvested
	c.harvested = c.FlitsCarried
	return n
}

// newChannel constructs an active channel.
func newChannel(from, to Endpoint, kind ChannelKind, latency, tiles int) *Channel {
	if latency < 1 {
		panic("noc: channel latency must be >= 1")
	}
	return &Channel{From: from, To: to, Kind: kind, Latency: latency, Tiles: tiles, active: true}
}

// Active reports whether the channel currently carries traffic.
func (c *Channel) Active() bool { return c.active }

// setActive is used by the fabric during reconfiguration.
func (c *Channel) setActive(v bool) { c.active = v }

// Busy reports whether any flit or credit is still in flight.
func (c *Channel) Busy() bool {
	return len(c.fwd) > c.fwdHead || len(c.rev) > c.revHead
}

// wake puts the channel on its region's work list so the new traffic is
// delivered. Wakes during a tick are buffered and merged at the next tick
// boundary — every payload has >= 1 cycle of latency, so that is early
// enough. Only the owning region's worker can reach a non-queued internal
// channel (its sender lives in the same shard), and boundary channels are
// permanently queued, so the append never races.
func (c *Channel) wake() {
	if c.queued || c.net == nil {
		return
	}
	c.queued = true
	c.snapClean = false
	reg := c.net.regions[c.shard]
	reg.wokenCh = append(reg.wokenCh, c)
}

// send places a flit on the channel at cycle now.
func (c *Channel) send(f *Flit, now sim.Cycle) {
	if !c.active {
		panic(fmt.Sprintf("noc: send on inactive channel %v->%v", c.From, c.To))
	}
	if c.sentAny && c.lastSend == now {
		panic(fmt.Sprintf("noc: two flits on channel %v->%v in cycle %d", c.From, c.To, now))
	}
	c.sentAny = true
	c.lastSend = now
	c.fwd = append(c.fwd, inFlight{flit: f, deliverAt: now + sim.Cycle(c.Latency)})
	c.FlitsCarried++
	c.wake()
}

// sendCredit places a credit on the return path at cycle now.
func (c *Channel) sendCredit(vc int, now sim.Cycle) {
	c.rev = append(c.rev, inFlight{isCredit: true, credit: creditMsg{vc: vc}, deliverAt: now + sim.Cycle(c.Latency)})
	c.wake()
}

// deliverFlits pops all flits due at or before now, preserving order. The
// queue is head-indexed and compacts when empty, so steady-state operation
// does not allocate.
func (c *Channel) deliverFlits(now sim.Cycle, fn func(*Flit)) {
	for c.fwdHead < len(c.fwd) && c.fwd[c.fwdHead].deliverAt <= now {
		f := c.fwd[c.fwdHead].flit
		c.fwd[c.fwdHead] = inFlight{}
		c.fwdHead++
		fn(f)
	}
	if c.fwdHead == len(c.fwd) {
		c.fwd = c.fwd[:0]
		c.fwdHead = 0
	}
}

// deliverCredits pops all credits due at or before now.
func (c *Channel) deliverCredits(now sim.Cycle, fn func(vc int)) {
	for c.revHead < len(c.rev) && c.rev[c.revHead].deliverAt <= now {
		vc := c.rev[c.revHead].credit.vc
		c.rev[c.revHead] = inFlight{}
		c.revHead++
		fn(vc)
	}
	if c.revHead == len(c.rev) {
		c.rev = c.rev[:0]
		c.revHead = 0
	}
}
