package noc

import (
	"fmt"
	"math/bits"

	"adaptnoc/internal/sim"
)

// vcState is one virtual channel at one input port. Flits queue in FIFO
// order in a fixed ring (depth = VCDepth); with virtual cut-through a
// downstream VC is allocated to a whole packet before its head traverses,
// so packets never interleave within a VC even though several complete
// packets may queue back to back.
type vcState struct {
	ring []*Flit // circular buffer, len == VCDepth
	head int
	n    int

	// Per-packet routing/allocation state for the packet at the head of
	// the queue.
	routed     bool
	outPort    int
	classAfter int // dateline class downstream of this hop
	outVC      int // -1 until VA succeeds
}

func (v *vcState) front() *Flit {
	if v.n == 0 {
		return nil
	}
	return v.ring[v.head]
}

func (v *vcState) push(f *Flit) {
	i := v.head + v.n
	if i >= len(v.ring) {
		i -= len(v.ring)
	}
	v.ring[i] = f
	v.n++
}

func (v *vcState) pop() *Flit {
	f := v.ring[v.head]
	v.ring[v.head] = nil
	v.head++
	if v.head == len(v.ring) {
		v.head = 0
	}
	v.n--
	return f
}

func (v *vcState) len() int { return v.n }

func (v *vcState) resetHeadState() {
	v.routed = false
	v.outPort = -1
	v.classAfter = 0
	v.outVC = -1
}

// InputPort is one router input with its VC buffers and the (single,
// mux-selected) incoming channel currently attached. occupied counts
// buffered flits across the port's VCs so empty ports skip the pipeline.
type InputPort struct {
	index    int
	in       *Channel
	vcs      []vcState
	occupied int
	// liveMask has bit i set while vcs[i] buffers at least one flit, so the
	// pipeline visits occupied VCs directly (ascending bit order == the
	// slice order a full scan would use, so arbitration is unchanged).
	// Maintained only for the first 64 VCs; configurations beyond that fall
	// back to the full scan (see stagePipeline).
	liveMask uint64
}

// OutputPort is one router output: the attached outgoing channel, credit
// counters mirroring the downstream buffer, per-VC packet ownership for
// virtual cut-through allocation, and the switch-holding state that keeps
// an output dedicated to one packet from head to tail.
type OutputPort struct {
	index   int
	out     *Channel
	credits []int
	owner   []*Packet // downstream VC ownership (nil = free)
	depth   int

	// deadVC masks flat VCs a fault took out of service: the VC allocator
	// never grants a masked VC. Zero on the fault-free path, so the hot
	// loop pays one integer test.
	deadVC uint64

	// Switch hold: while a packet streams, (holdPort, holdVC) identify the
	// input VC that owns this output. holdPort == -1 means free.
	holdPort, holdVC int

	rr int // round-robin pointer for switch allocation
}

func (o *OutputPort) holdFree() bool { return o.holdPort == -1 }

// VCPolicy restricts which VCs a packet may be allocated (OSCAR-style
// application-aware VC partitioning). nil permits every VC of the packet's
// virtual network.
type VCPolicy func(p *Packet, vnet VNet, vcWithinVNet int) bool

// Router is a single adaptable router: a set of ports whose channel
// attachments are selected by (modelled) muxes, per-vnet reconfigurable
// routing tables, a VC-buffered virtual cut-through pipeline with RC, VA,
// SA and ST stages, and optional runtime power gating.
//
// Activity counters feed the power model and the RL state vector; they are
// windowed (read-and-reset) by the epoch controller.
type Router struct {
	ID  NodeID
	cfg *Config
	net *Network

	// Ports are stored by value so a router's port state is one contiguous
	// slab (the pipeline touches every occupied port each cycle). Element
	// pointers are taken only transiently: AddPort may relocate the slices.
	inputs  []InputPort
	outputs []OutputPort

	tables       [NumVNets]*RoutingTable
	tableReadyAt sim.Cycle // RC stalls before this cycle (Ts setup window)

	// useDateline enables torus dateline VC classing per virtual network
	// (the combined torus+tree topology runs a torus request network and
	// a tree reply network, only the former needing dateline classes).
	useDateline [NumVNets]bool
	disabled    bool // fabric-level deep power-off (cmesh idle routers)

	policy VCPolicy

	// Runtime power gating (FTBY_PG): a sleeping router delays the
	// visibility of arriving flits by the wake-up latency.
	gateEnabled bool
	wakeLatency sim.Cycle
	sleepAfter  sim.Cycle
	asleep      bool
	wakeAt      sim.Cycle
	lastActive  sim.Cycle

	vaRR int

	// buffered caches total flits across input VCs (hot path: lets idle
	// routers skip their pipeline entirely).
	buffered int

	// parked marks the router as off its region's active work list: its
	// Tick would only bump counters (disabled, asleep, or no buffered
	// flits), so the network skips it and the counters are reconstructed
	// lazily by syncIdle. parkedAt is the first cycle whose counters have
	// not been applied yet.
	parked   bool
	parkedAt sim.Cycle

	// shard is the tick region owning this router (Network.carve).
	shard int

	// saBuckets is per-output-port request scratch reused across cycles.
	saBuckets [][]saRequest

	// heldMask and reqMask drive the switch-allocation sweep: bit oi is set
	// while output oi is held by a streaming packet (persistent, maintained
	// by traverse/attachOut) or received an SA request this cycle (cleared
	// each stagePipeline). Only outputs with a bit set can do switch work,
	// so the sweep skips the rest. Maintained for the first 64 ports;
	// wider routers fall back to sweeping every output.
	heldMask uint64
	reqMask  uint64

	// Activity counters (window-accumulated; see TakeActivity).
	act RouterActivity

	// Snapshot splice cache (see Network.Snapshot): the bytes this router
	// serialized to last time, valid while snapClean holds. snapClean is
	// only ever set for a parked router — an active router is re-ticked
	// every cycle — and is cleared by every mutation that can reach a
	// parked router's serialized state: the park itself, lazy counter
	// settlement (syncIdle), returning credits, activity harvesting,
	// reconfiguration, and wiring changes. The tick pipeline never touches
	// it, so dirty tracking costs nothing on the hot path.
	snapClean bool
	snapBytes []byte
}

// RouterActivity is the per-router event window used by the power model and
// the RL state (Table I network metrics).
type RouterActivity struct {
	BufferWrites  int64 // flits written into input VC buffers
	BufferReads   int64 // flits read out (switch traversals from a buffer)
	CrossbarTrav  int64 // switch traversals
	VAGrants      int64
	SAGrants      int64
	OccupancySum  int64 // sum over cycles of buffered flits (utilization)
	ActiveCycles  int64 // cycles not asleep/disabled
	GatedCycles   int64 // cycles asleep or disabled (no static power)
	WakeUps       int64
	BufferedPeak  int64
	RoutedPackets int64
}

// newRouter builds a router with nports ports and empty channel attachments.
// Routers start parked: the first arriving flit puts them on the network's
// active list.
func newRouter(id NodeID, nports int, cfg *Config, net *Network) *Router {
	r := &Router{ID: id, cfg: cfg, net: net, parked: true}
	for p := 0; p < nports; p++ {
		r.addPortLocked()
	}
	return r
}

// addPortLocked appends one port with initialized VC rings.
func (r *Router) addPortLocked() int {
	r.snapClean = false
	p := len(r.inputs)
	nvc := NumVNets * r.cfg.VCsPerVNet
	in := InputPort{index: p, vcs: make([]vcState, nvc)}
	// All VC rings of a port share one backing array, so the pipeline's
	// walk over a port's occupied VCs stays within a few cache lines.
	depth := r.cfg.VCDepth
	backing := make([]*Flit, nvc*depth)
	for i := range in.vcs {
		in.vcs[i].ring = backing[i*depth : (i+1)*depth : (i+1)*depth]
		in.vcs[i].resetHeadState()
	}
	r.inputs = append(r.inputs, in)
	r.outputs = append(r.outputs, OutputPort{index: p, holdPort: -1, holdVC: -1})
	// The switch-allocation scratch grows with the port count here, at
	// construction, so stagePipeline never allocates.
	r.saBuckets = append(r.saBuckets, nil)
	return p
}

// NumPorts returns the router's port count.
func (r *Router) NumPorts() int { return len(r.inputs) }

// AttachedPorts counts ports with at least one channel attached — the
// ports that actually burn leakage (a previously grown port left
// unattached after reconfiguration is powered off).
func (r *Router) AttachedPorts() int {
	n := 0
	for p := range r.inputs {
		if r.inputs[p].in != nil || r.outputs[p].out != nil {
			n++
		}
	}
	return n
}

// AddPort appends an extra port (express/adaptable attachment) and returns
// its index.
func (r *Router) AddPort() int {
	return r.addPortLocked()
}

// PortDim returns the dimension a port moves a packet along, using the
// standard port convention (East/West and the row adaptable-link ports are
// X; North/South and the column adaptable ports are Y; everything else,
// including local and express ports, is its own pseudo-dimension so
// dateline classes reset when entering it).
func PortDim(port int) int8 {
	switch port {
	case PortEast, PortWest, 5, 6: // 5,6 = topology.PortAdaptEast/West
		return 0
	case PortNorth, PortSouth, 7, 8:
		return 1
	default:
		return int8(10 + port)
	}
}

// vcIndex maps (vnet, vc-within-vnet) to a flat VC index.
func (r *Router) vcIndex(v VNet, k int) int { return int(v)*r.cfg.VCsPerVNet + k }

// SetTable installs the routing table for a virtual network, effective
// immediately. Use SetTableAfter during reconfiguration to model Ts.
func (r *Router) SetTable(v VNet, t *RoutingTable) { r.tables[v] = t }

// Table returns the current routing table for a virtual network.
func (r *Router) Table(v VNet) *RoutingTable { return r.tables[v] }

// SetTableAfter installs a table and makes route computation unavailable
// for setup cycles (the paper's Ts=14-cycle connection setup, Section IV-A).
func (r *Router) SetTableAfter(v VNet, t *RoutingTable, now sim.Cycle, setup int) {
	r.snapClean = false
	r.tables[v] = t
	ready := now + sim.Cycle(setup)
	if ready > r.tableReadyAt {
		r.tableReadyAt = ready
	}
}

// StallTables makes route computation unavailable for the next setup
// cycles without changing the tables — the Ts connection-setup window of
// the reconfiguration protocol (Section IV-A).
func (r *Router) StallTables(now sim.Cycle, setup int) {
	r.snapClean = false
	ready := now + sim.Cycle(setup)
	if ready > r.tableReadyAt {
		r.tableReadyAt = ready
	}
}

// SetDateline enables torus dateline VC classing on this router for every
// virtual network.
func (r *Router) SetDateline(on bool) {
	for v := range r.useDateline {
		r.useDateline[v] = on
	}
}

// SetDatelineVNet enables dateline classing for one virtual network only.
func (r *Router) SetDatelineVNet(v VNet, on bool) { r.useDateline[v] = on }

// SetDisabled deep-powers the router off (fabric guarantees no routes use
// it). A disabled router must be empty.
func (r *Router) SetDisabled(off bool) {
	r.snapClean = false
	if off && r.Occupancy() != 0 {
		panic(fmt.Sprintf("noc: disabling router %d with %d buffered flits", r.ID, r.Occupancy()))
	}
	r.syncIdle(r.net.lastTick)
	r.disabled = off
}

// Disabled reports fabric-level power-off.
func (r *Router) Disabled() bool { return r.disabled }

// UsesDateline reports whether dateline classing is enabled for a vnet.
func (r *Router) UsesDateline(v VNet) bool { return r.useDateline[v] }

// SetVCPolicy installs an OSCAR-style VC admission policy (nil clears).
func (r *Router) SetVCPolicy(p VCPolicy) { r.policy = p }

// SetVCFault marks (dead == true) or repairs one flat output VC on a port.
// A dead VC is skipped by the VC allocator. The caller must ensure the VC
// holds no packet (the fault engine applies damage on a quiescent network).
func (r *Router) SetVCFault(port, flatVC int, dead bool) {
	out := &r.outputs[port]
	if dead {
		out.deadVC |= 1 << uint(flatVC)
	} else {
		out.deadVC &^= 1 << uint(flatVC)
	}
}

// VCFaultMask returns the dead-VC bitmask of an output port.
func (r *Router) VCFaultMask(port int) uint64 { return r.outputs[port].deadVC }

// EnablePowerGating turns on conventional runtime power gating with the
// given wake-up latency and idle timeout (FTBY_PG baseline).
func (r *Router) EnablePowerGating(wake, idle sim.Cycle) {
	r.gateEnabled = true
	r.wakeLatency = wake
	r.sleepAfter = idle
}

// Asleep reports whether the router is currently clock/power gated.
func (r *Router) Asleep() bool {
	r.syncIdle(r.net.lastTick)
	return r.asleep
}

// Occupancy returns the number of flits buffered across all input VCs.
func (r *Router) Occupancy() int { return r.buffered }

// PortEmpty reports whether an input port's VC buffers hold no flits.
func (r *Router) PortEmpty(port int) bool {
	in := &r.inputs[port]
	for i := range in.vcs {
		if in.vcs[i].len() > 0 {
			return false
		}
	}
	return true
}

// BufferCapacity returns total input buffering in flits.
func (r *Router) BufferCapacity() int {
	return len(r.inputs) * NumVNets * r.cfg.VCsPerVNet * r.cfg.VCDepth
}

// TakeActivity returns the activity window accumulated since the previous
// call and resets it.
func (r *Router) TakeActivity() RouterActivity {
	r.syncIdle(r.net.lastTick)
	r.snapClean = false
	a := r.act
	r.act = RouterActivity{}
	return a
}

// PeekActivity returns the current window without resetting.
func (r *Router) PeekActivity() RouterActivity {
	r.syncIdle(r.net.lastTick)
	return r.act
}

// park takes the router off the active list after a cycle in which it did
// no pipeline work and cannot do any until external input arrives; the
// skipped cycles' counters are owed from now+1 (see syncIdle).
func (r *Router) park(now sim.Cycle) {
	r.parked = true
	r.parkedAt = now + 1
	r.snapClean = false
}

// syncIdle applies the activity counters for the parked cycles up to and
// including through, exactly as per-cycle Ticks would have: a disabled or
// asleep router accumulates GatedCycles; an enabled idle router
// accumulates ActiveCycles until the power-gating sleep transition (if
// gating is on), which it replays at the same cycle a ticked router would
// have slept.
func (r *Router) syncIdle(through sim.Cycle) {
	if !r.parked || through < r.parkedAt {
		return
	}
	r.snapClean = false
	n := int64(through - r.parkedAt + 1)
	switch {
	case r.disabled:
		r.act.GatedCycles += n
	case r.gateEnabled && r.asleep:
		r.act.GatedCycles += n
	case r.gateEnabled:
		// First cycle s at which Tick's sleep check (now >= wakeAt &&
		// now-lastActive > sleepAfter, with zero occupancy) passes.
		s := r.wakeAt
		if t := r.lastActive + r.sleepAfter + 1; t > s {
			s = t
		}
		if s > r.parkedAt {
			a := through
			if s-1 < a {
				a = s - 1
			}
			r.act.ActiveCycles += int64(a - r.parkedAt + 1)
		}
		if through >= s {
			r.asleep = true
			r.act.GatedCycles += int64(through - s + 1)
		}
	default:
		r.act.ActiveCycles += n
	}
	r.parkedAt = through + 1
}

// receiveFlit is called by the network when a channel delivers a flit into
// this router. The flit's VC was chosen by the upstream VA stage.
func (r *Router) receiveFlit(port int, f *Flit, now sim.Cycle) {
	if r.disabled {
		panic(fmt.Sprintf("noc: flit %v arrived at disabled router %d", f.Pkt, r.ID))
	}
	if r.parked {
		// Channels deliver before routers tick, so the router has only
		// been skipped through cycle now-1; settle those counters (which
		// also resolves any pending sleep transition, so the wake check
		// below sees the same asleep state a per-cycle Tick would have
		// left), then rejoin the active list in time for this cycle's
		// router phase.
		r.syncIdle(now - 1)
		r.parked = false
		reg := r.net.regions[r.shard]
		reg.wokenR = append(reg.wokenR, r)
	}
	in := &r.inputs[port]
	vc := &in.vcs[f.VC]
	if vc.len() >= r.cfg.VCDepth {
		panic(fmt.Sprintf("noc: buffer overflow at router %d port %d vc %d (credit protocol violated)",
			r.ID, port, f.VC))
	}
	// Pipeline visibility: Tr cycles of RC/VA/SA pipeline before the flit
	// may traverse (arrival-to-arrival hop latency is Tr+Tl); the injection
	// bypass (Adapt-NoC) lets flits entering an empty local-port VC skip
	// the input pipeline.
	f.visibleAt = now + sim.Cycle(r.cfg.RouterLatency)
	if r.cfg.InjectionBypass && port == PortLocal && vc.len() == 0 {
		f.visibleAt = now
	}
	if r.gateEnabled {
		if r.asleep {
			r.asleep = false
			r.wakeAt = now + r.wakeLatency
			r.act.WakeUps++
		}
		if r.wakeAt > f.visibleAt {
			f.visibleAt = r.wakeAt
		}
	}
	vc.push(f)
	if f.VC < 64 {
		in.liveMask |= 1 << uint(f.VC)
	}
	in.occupied++
	r.buffered++
	r.act.BufferWrites++
	r.lastActive = now
	if r.net.tracer != nil {
		r.net.tracer.FlitArrived(r.ID, port, f, now)
	}
}

// receiveCredit is called by the network when a credit returns to one of
// this router's output ports.
func (r *Router) receiveCredit(port, vc int, now sim.Cycle) {
	out := &r.outputs[port]
	r.snapClean = false
	out.credits[vc]++
	if out.credits[vc] > out.depth {
		panic(fmt.Sprintf("noc: credit overflow at router %d port %d vc %d", r.ID, port, vc))
	}
}

// outVCRange returns the [lo, hi) range of within-vnet VC indices a packet
// may claim downstream under dateline classing; class is the packet's
// dateline class after the hop being allocated. The VC policy is applied by
// the callers on top of this range.
func (r *Router) outVCRange(p *Packet, class int) (lo, hi int) {
	lo, hi = 0, r.cfg.VCsPerVNet
	if r.useDateline[p.VNet] && r.cfg.VCsPerVNet > 1 {
		half := r.cfg.VCsPerVNet / 2
		if class == 0 {
			hi = half
		} else {
			lo = half
		}
	}
	return lo, hi
}

// allowedOutVCs iterates the VCs the packet may be allocated downstream,
// honouring vnet partitioning, dateline classes, and the VC policy. class
// is the packet's dateline class after the hop being allocated.
func (r *Router) allowedOutVCs(p *Packet, class int, yield func(flatVC int) bool) {
	v := p.VNet
	lo, hi := r.outVCRange(p, class)
	for k := lo; k < hi; k++ {
		if r.policy != nil && !r.policy(p, v, k) {
			continue
		}
		if !yield(r.vcIndex(v, k)) {
			return
		}
	}
}

// allowedInjectionVCs iterates the local-input VCs a packet may claim at
// injection. Unlike allowedOutVCs it ignores dateline classing: the local
// input buffer is not a ring resource (no route passes ring → local input
// → ring), so restricting it cannot break a dependency cycle — the class-0
// constraint is enforced at the first ring hop by the VA step in
// stagePipeline instead.
func (r *Router) allowedInjectionVCs(p *Packet, yield func(flatVC int) bool) {
	v := p.VNet
	for k := 0; k < r.cfg.VCsPerVNet; k++ {
		if r.policy != nil && !r.policy(p, v, k) {
			continue
		}
		if !yield(r.vcIndex(v, k)) {
			return
		}
	}
}

// Tick advances the router one cycle: route computation for new heads,
// virtual-channel allocation, switch allocation, and switch traversal.
// A tick that ends with nothing buffered parks the router: subsequent
// cycles are skipped by the network and their counters owed to syncIdle
// until a flit arrival unparks it.
func (r *Router) Tick(now sim.Cycle) {
	if r.disabled {
		r.act.GatedCycles++
		r.park(now)
		return
	}
	if r.gateEnabled {
		if r.asleep {
			r.act.GatedCycles++
			r.park(now)
			return
		}
		if now >= r.wakeAt && r.Occupancy() == 0 && now-r.lastActive > r.sleepAfter {
			r.asleep = true
			r.act.GatedCycles++
			r.park(now)
			return
		}
	}
	r.act.ActiveCycles++

	if r.buffered == 0 {
		r.park(now)
		return
	}
	occ := int64(r.buffered)
	r.act.OccupancySum += occ
	if occ > r.act.BufferedPeak {
		r.act.BufferedPeak = occ
	}

	r.stagePipeline(now)
	if r.buffered == 0 {
		r.park(now)
	}
}

// saRequest describes an input VC bidding for an output port this cycle.
type saRequest struct {
	port, vc int
}

// stagePipeline performs route computation, virtual-channel allocation,
// and switch-request collection in a single pass over the input VCs, then
// arbitrates each output port (switch allocation) and traverses winners.
// Merging the stages is purely an optimization: within one cycle the
// sequential RC -> VA -> SA evaluation order per VC is identical to
// separate passes.
func (r *Router) stagePipeline(now sim.Cycle) {
	tablesReady := now >= r.tableReadyAt
	r.reqMask = 0

	// Walk only the occupied VCs of each port via the live-bit mask; set
	// bits ascend, so VC order matches the full scan exactly. The mask
	// tracks 64 VCs — wider configurations scan the whole slice.
	maskScan := NumVNets*r.cfg.VCsPerVNet <= 64
	for pi := range r.inputs {
		in := &r.inputs[pi]
		if in.occupied == 0 {
			continue
		}
		if maskScan {
			for mask := in.liveMask; mask != 0; mask &= mask - 1 {
				r.stageVC(in, bits.TrailingZeros64(mask), now, tablesReady)
			}
		} else {
			for i := range in.vcs {
				r.stageVC(in, i, now, tablesReady)
			}
		}
	}

	// Switch allocation visits only outputs that are held or requested;
	// every other output would no-op. The snapshot stays accurate mid-loop
	// because a traverse can only change the hold of the output being
	// visited. Requests are filed only for hold-free outputs and holds only
	// change during this sweep, so a held output's bucket is always empty.
	if len(r.outputs) <= 64 {
		for m := r.heldMask | r.reqMask; m != 0; m &= m - 1 {
			r.arbitrateOutput(bits.TrailingZeros64(m), now)
		}
		return
	}
	for oi := range r.outputs {
		r.arbitrateOutput(oi, now)
	}
}

// arbitrateOutput runs switch allocation for one output port: continue the
// held packet if one streams, else pick the round-robin winner among this
// cycle's requests and traverse it. Consumed request buckets are reset here.
func (r *Router) arbitrateOutput(oi int, now sim.Cycle) {
	out := &r.outputs[oi]
	if out.out == nil {
		return
	}
	if !out.holdFree() {
		// Continue the held packet if its next flit is ready.
		r.saBuckets[oi] = r.saBuckets[oi][:0]
		vc := &r.inputs[out.holdPort].vcs[out.holdVC]
		f := vc.front()
		if f != nil && f.visibleAt <= now && out.credits[vc.outVC] > 0 {
			r.traverse(out, out.holdPort, out.holdVC, now)
		}
		return
	}
	reqs := r.saBuckets[oi]
	if len(reqs) == 0 {
		return
	}
	r.saBuckets[oi] = reqs[:0]
	nvc := NumVNets * r.cfg.VCsPerVNet
	total := len(r.inputs) * nvc
	best, bestKey := -1, 1<<30
	for ri, rq := range reqs {
		key := (rq.port*nvc + rq.vc - out.rr + total) % total
		if key < bestKey {
			bestKey = key
			best = ri
		}
	}
	win := reqs[best]
	out.rr = (win.port*nvc + win.vc + 1) % total
	r.traverse(out, win.port, win.vc, now)
}

// stageVC runs the RC -> VA -> SA-request steps for one input VC: route the
// head packet, claim a downstream VC (virtual cut-through), and file a
// switch request into the output's bucket when eligible.
func (r *Router) stageVC(in *InputPort, i int, now sim.Cycle, tablesReady bool) {
	vc := &in.vcs[i]
	f := vc.front()
	if f == nil || f.visibleAt > now {
		return
	}
	// RC: route the packet at the head of the VC.
	if f.Head && !vc.routed {
		if !tablesReady {
			return
		}
		tbl := r.tables[f.Pkt.VNet]
		if tbl == nil {
			return
		}
		e, ok := tbl.Lookup(f.Pkt.Dst)
		if !ok {
			panic(fmt.Sprintf("noc: router %d has no %s route to %d (pkt %v)",
				r.ID, f.Pkt.VNet, f.Pkt.Dst, f.Pkt))
		}
		vc.routed = true
		vc.outPort = int(e.OutPort)
		// Dateline class: reset when the hop enters a new dimension (each
		// ring's dependency cycle is broken independently under
		// dimension-ordered routing), then apply the table's operation.
		base := f.Pkt.datelineClass
		if PortDim(vc.outPort) != f.Pkt.lastDim {
			base = 0
		}
		switch e.Class {
		case ClassKeep:
			vc.classAfter = base
		case ClassSet1:
			vc.classAfter = 1
		case ClassSet0:
			vc.classAfter = 0
		}
		r.act.RoutedPackets++
		if r.net.tracer != nil {
			r.net.tracer.FlitRouted(r.ID, f, vc.outPort, now)
		}
	}
	if !vc.routed {
		return
	}
	out := &r.outputs[vc.outPort]
	if out.out == nil {
		panic(fmt.Sprintf("noc: router %d port %d routed but has no output channel", r.ID, vc.outPort))
	}
	// VA: claim a downstream VC for the whole packet (virtual cut-through:
	// unowned and with credits for every flit). The allowed-VC scan is
	// written out directly — a closure here is a per-VC-per-cycle indirect
	// call on the hottest path in the simulator.
	if vc.outVC < 0 {
		granted := -1
		v := f.Pkt.VNet
		lo, hi := r.outVCRange(f.Pkt, vc.classAfter)
		for k := lo; k < hi; k++ {
			if r.policy != nil && !r.policy(f.Pkt, v, k) {
				continue
			}
			flat := r.vcIndex(v, k)
			if out.deadVC&(1<<uint(flat)) != 0 {
				continue
			}
			if out.owner[flat] == nil && out.credits[flat] >= f.Pkt.Size {
				granted = flat
				break
			}
		}
		if granted < 0 {
			return
		}
		vc.outVC = granted
		out.owner[granted] = f.Pkt
		r.act.VAGrants++
		if r.net.tracer != nil {
			r.net.tracer.FlitVCAllocated(r.ID, f, granted, now)
		}
	}
	// SA request: eligible when credits exist and the output is not held by
	// another packet.
	if out.credits[vc.outVC] <= 0 || !out.holdFree() {
		return
	}
	if vc.outPort < 64 {
		r.reqMask |= 1 << uint(vc.outPort)
	}
	r.saBuckets[vc.outPort] = append(r.saBuckets[vc.outPort], saRequest{port: in.index, vc: i})
}

// traverse moves the front flit of (port, vc) through the crossbar onto the
// output channel, returns a credit upstream, and updates hold/ownership.
func (r *Router) traverse(out *OutputPort, port, vcIdx int, now sim.Cycle) {
	in := &r.inputs[port]
	vc := &in.vcs[vcIdx]
	f := vc.pop()
	if vc.n == 0 && vcIdx < 64 {
		in.liveMask &^= 1 << uint(vcIdx)
	}
	in.occupied--
	r.buffered--

	outVC := vc.outVC

	out.credits[outVC]--
	f.VC = outVC
	if f.Head {
		// Dateline state rides the head flit: the only reader is the next
		// router's RC stage, which fires when the head arrives, so the
		// packet must carry the class of the last router the HEAD crossed.
		// Body flits must not write it — they trail at upstream routers
		// whose classAfter may differ (and, under tick sharding, may sit in
		// another region, making the redundant write a data race).
		f.Pkt.datelineClass = vc.classAfter
		f.Pkt.lastDim = PortDim(out.index)
	}
	out.out.send(f, now)

	// The buffer slot frees now; return a credit to the upstream sender on
	// the input channel's reverse wires.
	if in.in != nil {
		in.in.sendCredit(vcIdx, now)
	}

	r.act.BufferReads++
	r.act.CrossbarTrav++
	r.act.SAGrants++
	r.lastActive = now
	if r.net.tracer != nil {
		r.net.tracer.FlitTraversed(r.ID, out.index, f, now)
	}

	if f.Head {
		f.Pkt.Hops++
	}
	if f.Tail {
		out.owner[outVC] = nil
		out.holdPort, out.holdVC = -1, -1
		vc.resetHeadState()
		if out.index < 64 {
			r.heldMask &^= 1 << uint(out.index)
		}
	} else {
		out.holdPort, out.holdVC = port, vcIdx
		if out.index < 64 {
			r.heldMask |= 1 << uint(out.index)
		}
	}
}

// ForEachBufferedFlit visits every flit buffered in this router's input
// VCs in deterministic (port, VC, FIFO) order. Observability/debug only.
func (r *Router) ForEachBufferedFlit(fn func(port, vc int, f *Flit)) {
	if r.buffered == 0 {
		return
	}
	for pi := range r.inputs {
		in := &r.inputs[pi]
		if in.occupied == 0 {
			continue
		}
		for i := range in.vcs {
			vc := &in.vcs[i]
			for k := 0; k < vc.n; k++ {
				fn(in.index, i, vc.ring[(vc.head+k)%len(vc.ring)])
			}
		}
	}
}

// DebugDropCredit silently discards one upstream credit on an output port,
// deliberately breaking the flow-control accounting. It exists solely so
// tests can prove the invariant checker detects a credit leak; nothing in
// the simulator calls it.
func (r *Router) DebugDropCredit(port, vc int) {
	out := &r.outputs[port]
	if out.credits[vc] <= 0 {
		panic(fmt.Sprintf("noc: DebugDropCredit with no credit at router %d port %d vc %d", r.ID, port, vc))
	}
	out.credits[vc]--
}

// attachIn connects a channel to an input port (the input mux selection).
func (r *Router) attachIn(port int, ch *Channel) {
	r.snapClean = false
	in := &r.inputs[port]
	if in.in != nil && ch != nil && in.in != ch && in.in.Busy() {
		panic(fmt.Sprintf("noc: re-muxing busy input %d.%d", r.ID, port))
	}
	in.in = ch
}

// attachOut connects a channel to an output port and initializes the credit
// mirror of the downstream buffer (downDepth flits per VC).
func (r *Router) attachOut(port int, ch *Channel, downVCs, downDepth int) {
	r.snapClean = false
	out := &r.outputs[port]
	if out.out != nil && ch != nil && out.out != ch && !out.holdFree() {
		panic(fmt.Sprintf("noc: re-muxing busy output %d.%d", r.ID, port))
	}
	out.out = ch
	out.depth = downDepth
	out.credits = make([]int, downVCs)
	out.owner = make([]*Packet, downVCs)
	for i := range out.credits {
		out.credits[i] = downDepth
	}
	out.holdPort, out.holdVC = -1, -1
	if out.index < 64 {
		r.heldMask &^= 1 << uint(out.index)
	}
}

// OutputChannel returns the channel attached to an output port (nil if
// none); used by topology builders and tests.
func (r *Router) OutputChannel(port int) *Channel {
	if port < 0 || port >= len(r.outputs) {
		return nil
	}
	return r.outputs[port].out
}

// InputChannel returns the channel attached to an input port (nil if none).
func (r *Router) InputChannel(port int) *Channel {
	if port < 0 || port >= len(r.inputs) {
		return nil
	}
	return r.inputs[port].in
}
