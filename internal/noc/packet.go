package noc

import (
	"fmt"

	"adaptnoc/internal/sim"
)

// Packet is one network message. A packet is serialized into Size flits at
// the network interface and reassembled at the destination. Latency
// bookkeeping follows the paper's split: queuing latency is time spent
// waiting at the source network interface, network latency is time from
// first entering a router until the tail flit is ejected.
//
// Packets minted by Network.NewPacket are recycled: when the delivery
// callback returns, the packet and its flit slab go back to the network's
// arena (see pool.go) and the same memory may serve a later NewPacket.
// Observers must copy what they need inside the callback and must not
// retain the *Packet.
type Packet struct {
	ID    uint64
	Src   NodeID
	Dst   NodeID
	Class PacketClass
	VNet  VNet
	Size  int // flits
	App   int // owning application index (-1 if none)

	// EnqueuedAt is the cycle the packet entered the NI injection queue.
	EnqueuedAt sim.Cycle
	// InjectedAt is the cycle the head flit entered the first router.
	InjectedAt sim.Cycle
	// EjectedAt is the cycle the tail flit was delivered to the
	// destination NI.
	EjectedAt sim.Cycle

	Hops int // router-to-router hops taken by the head flit

	// Payload carries an opaque reference for the system model (e.g. the
	// memory transaction this packet belongs to). The network never
	// inspects it.
	Payload any

	// datelineClass tracks the torus dateline VC class: packets start in
	// class 0 and move to class 1 after crossing the dateline, which
	// breaks the wraparound channel-dependency cycle (Section II-C.3).
	// The class is per ring: it resets when the packet turns into a new
	// dimension (lastDim tracks the dimension of the previous hop).
	datelineClass int
	lastDim       int8

	// flits is the packet's serialized flit slab, one contiguous []Flit
	// carved from the owning network's arena; recycled at delivery.
	// slabPool names the shard pool the slab was carved from so delivery
	// returns it there (0 for serial callers and restored packets; reset
	// by NewPacket's full-literal assignment).
	flits    []Flit
	slabPool int32
	// rxFlits counts flits received by the destination NI; replaces the
	// NI-side reassembly map so ejection does no map work and reassembly
	// state is exactly O(in-flight packets).
	rxFlits int
}

// QueuingLatency returns cycles spent waiting at the source NI.
func (p *Packet) QueuingLatency() sim.Cycle { return p.InjectedAt - p.EnqueuedAt }

// NetworkLatency returns cycles spent inside the network.
func (p *Packet) NetworkLatency() sim.Cycle { return p.EjectedAt - p.InjectedAt }

// TotalLatency returns queuing plus network latency.
func (p *Packet) TotalLatency() sim.Cycle { return p.EjectedAt - p.EnqueuedAt }

// String implements fmt.Stringer.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt#%d %s %s %d->%d app%d size=%d",
		p.ID, p.VNet, p.Class, p.Src, p.Dst, p.App, p.Size)
}

// Flit is the unit of flow control. Flits of one packet always travel in
// order on the same VC of each hop (virtual cut-through).
//
// Flits are values inside their packet's slab; the *Flit pointers passed
// through channels and router buffers point into that slab and are only
// valid while the packet is in flight. Identity that must outlive delivery
// is (Pkt.ID, Seq), never the pointer.
type Flit struct {
	Pkt  *Packet
	Seq  int // 0-based position within the packet
	Head bool
	Tail bool

	// VC is the virtual channel the flit occupies at its current input
	// port; set on arrival.
	VC int

	// visibleAt is the cycle at which the router pipeline may first act on
	// the flit at its current input port; models the Tr-cycle pipeline.
	visibleAt sim.Cycle
}

// MakeFlits serializes a packet into a freshly allocated flit slab. The
// injection path uses the pooled Network.makeFlits instead; this entry
// point serves tests and standalone channel use.
func MakeFlits(p *Packet) []Flit {
	if p.Size < 1 {
		panic("noc: packet with no flits")
	}
	return fillFlits(p, make([]Flit, p.Size))
}

// fillFlits initializes a slab of exactly p.Size flits in place and records
// it as the packet's slab for recycling at delivery.
func fillFlits(p *Packet, fs []Flit) []Flit {
	p.lastDim = -1
	p.flits = fs
	for i := range fs {
		fs[i] = Flit{
			Pkt:  p,
			Seq:  i,
			Head: i == 0,
			Tail: i == p.Size-1,
		}
	}
	return fs
}
