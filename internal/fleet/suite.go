package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"adaptnoc"
	"adaptnoc/internal/exp"
	"adaptnoc/internal/serve"
)

// SuiteState is a suite's lifecycle position.
type SuiteState string

// Suite lifecycle: running → done or failed.
const (
	SuiteRunning SuiteState = "running"
	SuiteDone    SuiteState = "done"
	SuiteFailed  SuiteState = "failed"
)

// SuiteEvent is one progress report, streamed over SSE while a suite runs:
// an evaluation starting or finishing, keyed by its content address.
type SuiteEvent struct {
	// Phase is item-start, item-done, or item-failed.
	Phase string `json:"phase"`
	// Key is the work item's content address (serve.RequestKey).
	Key string `json:"key,omitempty"`
	// Started and Done count this suite's evaluations so far. The total is
	// not known upfront — later configurations depend on earlier results
	// (the oracle probes gate the static-mapping runs).
	Started int    `json:"started"`
	Done    int    `json:"done"`
	Error   string `json:"error,omitempty"`
}

// SuiteInfo is the wire representation of a suite (POST /v1/suites and
// GET /v1/suites/{id} responses).
type SuiteInfo struct {
	ID       string     `json:"id"`
	State    SuiteState `json:"state"`
	Manifest Manifest   `json:"manifest"`
	Started  int        `json:"started"`
	Done     int        `json:"done"`
	Error    string     `json:"error,omitempty"`
	// Tables and Bytes describe the rendered output of a done suite
	// (GET /v1/suites/{id}/output).
	Tables int `json:"tables,omitempty"`
	Bytes  int `json:"bytes,omitempty"`
}

// suiteRecord is the server-side suite.
type suiteRecord struct {
	id       string
	manifest Manifest

	mu       sync.Mutex
	state    SuiteState
	errMsg   string
	output   []byte // rendered tables, byte-identical to the CLI's stdout
	tables   int
	started  int
	finished int
	events   []SuiteEvent
	subs     []chan SuiteEvent
	done     chan struct{} // closed on reaching a terminal state
}

func newSuiteRecord(id string, m Manifest) *suiteRecord {
	return &suiteRecord{id: id, manifest: m, state: SuiteRunning, done: make(chan struct{})}
}

func (sr *suiteRecord) info() SuiteInfo {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return SuiteInfo{
		ID: sr.id, State: sr.state, Manifest: sr.manifest,
		Started: sr.started, Done: sr.finished, Error: sr.errMsg,
		Tables: sr.tables, Bytes: len(sr.output),
	}
}

// emit records a progress event and fans it out, dropping rather than
// stalling on slow subscribers (the history replay keeps them complete).
func (sr *suiteRecord) emit(phase, key, errMsg string) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if sr.state != SuiteRunning {
		return
	}
	switch phase {
	case "item-start":
		sr.started++
	case "item-done", "item-failed":
		sr.finished++
	}
	ev := SuiteEvent{Phase: phase, Key: key, Started: sr.started, Done: sr.finished, Error: errMsg}
	sr.events = append(sr.events, ev)
	for _, ch := range sr.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// finish moves the suite to a terminal state exactly once.
func (sr *suiteRecord) finish(state SuiteState, output []byte, tables int, errMsg string) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if sr.state != SuiteRunning {
		return
	}
	sr.state = state
	sr.output = output
	sr.tables = tables
	sr.errMsg = errMsg
	for _, ch := range sr.subs {
		close(ch)
	}
	sr.subs = nil
	close(sr.done)
}

// subscribe returns the events so far plus a live channel for the rest
// (nil when the suite already ended; closed when it does).
func (sr *suiteRecord) subscribe() (history []SuiteEvent, live <-chan SuiteEvent) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	history = append([]SuiteEvent(nil), sr.events...)
	if sr.state != SuiteRunning {
		return history, nil
	}
	ch := make(chan SuiteEvent, 256)
	sr.subs = append(sr.subs, ch)
	return history, ch
}

// runSuite executes one suite end to end: the exact planner and
// table-assembly code the adaptnoc-experiments CLI runs (exp.RunSuite),
// with evaluations routed through the fleet via exp.Options.Eval. The
// rendered output is therefore byte-identical to a local run of the same
// manifest — the suite's whole correctness story in one sentence.
func (c *Coordinator) runSuite(sr *suiteRecord) {
	defer c.wg.Done()
	o := sr.manifest.Options()
	o.Parallelism = c.opts.Parallelism
	o.Eval = func(ctx context.Context, cfg adaptnoc.Config, cycles, maxCycles adaptnoc.Cycle) (adaptnoc.Results, error) {
		// Tie the evaluation to the coordinator's lifetime as well as the
		// planner's own cancellation.
		evalCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		stop := context.AfterFunc(c.ctx, cancel)
		defer stop()

		req := serve.Request{Config: cfg, Cycles: cycles, MaxCycles: maxCycles}.Canonical()
		key, err := serve.RequestKey(req)
		if err != nil {
			return adaptnoc.Results{}, err
		}
		sr.emit("item-start", key, "")
		res, err := c.evalItem(evalCtx, key, req)
		if err != nil {
			sr.emit("item-failed", key, err.Error())
			return adaptnoc.Results{}, err
		}
		sr.emit("item-done", key, "")
		return res, nil
	}

	tables, err := exp.RunSuite(o, sr.manifest.Params())
	if err != nil {
		c.logf("fleet: %s failed: %v", sr.id, err)
		sr.finish(SuiteFailed, nil, 0, err.Error())
		return
	}
	var buf bytes.Buffer
	for _, t := range tables {
		t.Print(&buf)
	}
	c.logf("fleet: %s done: %d tables, %d bytes", sr.id, len(tables), buf.Len())
	sr.finish(SuiteDone, buf.Bytes(), len(tables), "")
}

// --- suite handlers ---

// maxManifestBytes bounds a suite submission body.
const maxManifestBytes = 1 << 20

func (c *Coordinator) handleCreateSuite(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxManifestBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	m, err := ParseManifest(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	c.mu.Lock()
	c.nextSuite++
	sr := newSuiteRecord(fmt.Sprintf("suite-%d", c.nextSuite), m)
	c.suites[sr.id] = sr
	c.suiteOrder = append(c.suiteOrder, sr.id)
	c.mu.Unlock()
	c.suitesTotal.Add(1)
	c.logf("fleet: accepted %s (figs=%v quick=%v)", sr.id, m.Figs, m.Quick)
	c.wg.Add(1)
	go c.runSuite(sr)
	writeJSON(w, http.StatusAccepted, sr.info())
}

func (c *Coordinator) lookupSuite(id string) *suiteRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.suites[id]
}

func (c *Coordinator) handleSuites(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	order := append([]string(nil), c.suiteOrder...)
	records := make([]*suiteRecord, 0, len(order))
	for _, id := range order {
		records = append(records, c.suites[id])
	}
	c.mu.Unlock()
	infos := make([]SuiteInfo, 0, len(records))
	for _, sr := range records {
		infos = append(infos, sr.info())
	}
	writeJSON(w, http.StatusOK, infos)
}

func (c *Coordinator) handleSuite(w http.ResponseWriter, r *http.Request) {
	sr := c.lookupSuite(r.PathValue("id"))
	if sr == nil {
		httpError(w, http.StatusNotFound, "no such suite")
		return
	}
	writeJSON(w, http.StatusOK, sr.info())
}

// handleSuiteOutput serves a done suite's rendered tables — the bytes a
// local adaptnoc-experiments run of the same manifest writes to stdout.
func (c *Coordinator) handleSuiteOutput(w http.ResponseWriter, r *http.Request) {
	sr := c.lookupSuite(r.PathValue("id"))
	if sr == nil {
		httpError(w, http.StatusNotFound, "no such suite")
		return
	}
	sr.mu.Lock()
	state, errMsg, output := sr.state, sr.errMsg, sr.output
	sr.mu.Unlock()
	switch state {
	case SuiteRunning:
		httpError(w, http.StatusConflict, "suite is still running (watch /v1/suites/{id}/events)")
	case SuiteFailed:
		httpError(w, http.StatusConflict, fmt.Sprintf("suite failed: %s", errMsg))
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(output)
	}
}

func (c *Coordinator) handleSuiteEvents(w http.ResponseWriter, r *http.Request) {
	sr := c.lookupSuite(r.PathValue("id"))
	if sr == nil {
		httpError(w, http.StatusNotFound, "no such suite")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(name string, v any) {
		blob, _ := json.Marshal(v)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, blob)
		flusher.Flush()
	}

	history, live := sr.subscribe()
	for _, ev := range history {
		writeEvent("item", ev)
	}
	if live != nil {
	stream:
		for {
			select {
			case ev, ok := <-live:
				if !ok {
					break stream // suite finished
				}
				writeEvent("item", ev)
			case <-r.Context().Done():
				return
			}
		}
	}
	writeEvent("done", sr.info())
}
