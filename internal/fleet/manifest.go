// Package fleet scales the experiment suite across many serve daemons: a
// coordinator decomposes a suite manifest into content-addressed work
// items (key = serve.RequestKey) and drives them to completion against a
// registered set of adaptnoc-serve workers, reconcile-loop style — desired
// state is the suite manifest, observed state is the per-key results, and
// the loop leases, retries with jittered exponential backoff, steals work
// from slow nodes, and ships checkpoint blobs so a dead worker's
// half-finished job resumes on a replacement instead of recomputing.
//
// Byte identity is the design anchor, not an afterthought: the coordinator
// runs the exact planner and table-assembly code the adaptnoc-experiments
// CLI runs (exp.RunSuite), routing only the simulation evaluations through
// the fleet via exp.Options.Eval. Determinism end-to-end — equal canonical
// configs produce identical Results wherever they execute — makes the
// merged table byte-identical to a local run of the same suite, including
// runs spliced across nodes through checkpoint handoff.
package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"adaptnoc"
	"adaptnoc/internal/exp"
)

// Manifest is the body of POST /v1/suites: the declarative description of
// one experiment suite, mirroring the adaptnoc-experiments flags so the
// same selection runs identically on either surface.
type Manifest struct {
	// Figs selects figures exactly like the CLI's -fig (empty = "all").
	Figs []string `json:"figs,omitempty"`
	// Quick selects the reduced-fidelity options (the CLI's -quick).
	Quick bool `json:"quick,omitempty"`
	// Seed overrides the random seed (0 keeps the default).
	Seed uint64 `json:"seed,omitempty"`
	// FaultCounts are the fault counts for the faults unit (the CLI's
	// -faults; nil = 0,2,4,8).
	FaultCounts []int `json:"faultCounts,omitempty"`
	// CharCycles overrides the chars unit's window (0 = the default).
	CharCycles adaptnoc.Cycle `json:"charCycles,omitempty"`
}

// Params returns the suite's figure-selection half.
func (m Manifest) Params() exp.SuiteParams {
	return exp.SuiteParams{
		Figs:        m.Figs,
		Quick:       m.Quick,
		FaultCounts: m.FaultCounts,
		CharCycles:  m.CharCycles,
	}
}

// Options returns the cost/seed half, derived exactly the way the CLI
// derives it: Default or Quick options, then the seed override. Execution
// knobs (Parallelism, Eval) are the coordinator's to set — they never
// change what a suite computes.
func (m Manifest) Options() exp.Options {
	o := exp.DefaultOptions()
	if m.Quick {
		o = exp.QuickOptions()
	}
	if m.Seed != 0 {
		o.Seed = m.Seed
	}
	return o
}

// Validate resolves the figure selection, surfacing unknown keys now
// rather than mid-suite.
func (m Manifest) Validate() error {
	if _, err := exp.Units(m.Params()); err != nil {
		return err
	}
	for i, n := range m.FaultCounts {
		if n < 0 {
			return fmt.Errorf("fleet: faultCounts[%d] = %d: want non-negative", i, n)
		}
	}
	return nil
}

// ParseManifest strictly decodes and validates a suite manifest: unknown
// fields and trailing garbage are errors, like serve.ParseRequest.
func ParseManifest(data []byte) (Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("fleet: parsing manifest: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return Manifest{}, fmt.Errorf("fleet: trailing data after manifest")
	}
	if err := m.Validate(); err != nil {
		return Manifest{}, err
	}
	return m, nil
}
