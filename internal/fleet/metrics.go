package fleet

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"adaptnoc/internal/obs"
)

// handleMetrics renders the coordinator's counters in the Prometheus text
// exposition format, following the serve daemon's hand-rolled conventions
// (the repository takes no dependencies). Work-item gauges are recomputed
// by scanning the item table — the items are the source of truth, so the
// gauges can never drift from the scheduler's actual state.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	gauge := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	var pending, leased, done, failed, retried int
	c.mu.Lock()
	for _, it := range c.items {
		state, _, _, retries, _ := it.snapshot()
		switch state {
		case ItemPending:
			pending++
		case ItemLeased:
			leased++
		case ItemDone:
			done++
		case ItemFailed:
			failed++
		}
		if retries > 0 {
			retried++
		}
	}
	workers := make([]*worker, 0, len(c.workers))
	for _, wk := range c.workers {
		workers = append(workers, wk)
	}
	c.mu.Unlock()

	gauge("adaptnoc_fleet_items_pending", "Work items awaiting dispatch.", pending)
	gauge("adaptnoc_fleet_items_leased", "Work items leased to a worker.", leased)
	gauge("adaptnoc_fleet_items_done", "Work items completed.", done)
	gauge("adaptnoc_fleet_items_failed", "Work items that failed permanently.", failed)
	gauge("adaptnoc_fleet_items_retried", "Work items that needed at least one requeue.", retried)

	healthy := 0
	for _, wk := range workers {
		if wk.healthy(c.opts.HeartbeatTTL) {
			healthy++
		}
	}
	gauge("adaptnoc_fleet_workers_registered", "Workers currently registered.", len(workers))
	gauge("adaptnoc_fleet_workers_healthy", "Registered workers passing health checks.", healthy)

	// Per-worker liveness, one labeled series per worker, in stable order.
	sort.Slice(workers, func(i, j int) bool { return workers[i].id < workers[j].id })
	fmt.Fprintf(&b, "# HELP adaptnoc_fleet_worker_up 1 while the worker passes health checks.\n")
	fmt.Fprintf(&b, "# TYPE adaptnoc_fleet_worker_up gauge\n")
	for _, wk := range workers {
		up := 0
		if wk.healthy(c.opts.HeartbeatTTL) {
			up = 1
		}
		fmt.Fprintf(&b, "adaptnoc_fleet_worker_up{worker=%q} %d\n", wk.id, up)
	}

	counter("adaptnoc_fleet_dispatches_total", "Jobs dispatched to workers.", c.dispatches.Load())
	counter("adaptnoc_fleet_retries_total", "Requeues after a lost lease or failed dispatch.", c.requeues.Load())
	counter("adaptnoc_fleet_steals_total", "Duplicate dispatches to idle workers.", c.steals.Load())
	counter("adaptnoc_fleet_local_runs_total", "Items evaluated on the coordinator (no workers).", c.localRuns.Load())
	counter("adaptnoc_fleet_handoffs_total", "Checkpoint blobs shipped to a replacement worker.", c.handoffs.Load())
	counter("adaptnoc_fleet_delta_shadows_total", "Checkpoint shadows refreshed via delta frames instead of full blobs.", c.deltaShadows.Load())
	counter("adaptnoc_fleet_suites_total", "Suites accepted.", c.suitesTotal.Load())

	// Item latency is recorded in milliseconds; obs exports it in the
	// Prometheus base unit (seconds).
	c.histMu.Lock()
	obs.WritePromHistogram(&b, "adaptnoc_fleet_item_seconds",
		"Wall-clock time from first dispatch to completion per work item.", c.latency, 1e-3)
	c.histMu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}
