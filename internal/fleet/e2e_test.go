package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"adaptnoc/internal/exp"
	"adaptnoc/internal/serve"
)

// renderSuite runs the manifest's suite in-process and renders it the way
// the coordinator does — the byte-identity reference.
func renderSuite(m Manifest) ([]byte, error) {
	tables, err := exp.RunSuite(m.Options(), m.Params())
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	for _, t := range tables {
		t.Print(&buf)
	}
	return buf.Bytes(), nil
}

// TestMultiNodeKillByteIdentity is the fleet's acceptance test: a suite
// scheduled across three serve workers — one of them killed abruptly while
// mid-job with a shadowed checkpoint — must still render byte-identical to
// a local run of the same manifest, with the interrupted work resumed on a
// surviving node from the handed-off checkpoint blob instead of cycle
// zero.
func TestMultiNodeKillByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node e2e in -short mode")
	}
	manifest := Manifest{Figs: []string{"17"}, Quick: true}

	ref, err := renderSuite(manifest)
	if err != nil {
		t.Fatalf("local reference run: %v", err)
	}

	type node struct {
		srv *serve.Server
		ts  *httptest.Server
	}
	nodes := make([]*node, 3)
	for i := range nodes {
		srv := serve.New(serve.Options{JitterSeed: uint64(i + 1)})
		nodes[i] = &node{srv: srv, ts: httptest.NewServer(srv.Handler())}
	}
	// The victim (nodes[0]) is torn down mid-test; survivors close here.
	defer nodes[1].ts.Close()
	defer nodes[2].ts.Close()

	c := New(Options{
		Lease:        time.Second,
		Poll:         20 * time.Millisecond,
		HeartbeatTTL: time.Second,
		StealAfter:   -1, // exercised elsewhere; keep the kill the only disturbance
		MaxAttempts:  10,
		JitterSeed:   3,
		Logf:         t.Logf,
	})
	defer c.Close()
	victim, _ := c.AddWorker(nodes[0].ts.URL)
	c.AddWorker(nodes[1].ts.URL)
	c.AddWorker(nodes[2].ts.URL)
	cts := httptest.NewServer(c.Handler())
	defer cts.Close()

	blob, _ := json.Marshal(manifest)
	resp, err := http.Post(cts.URL+"/v1/suites", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	var suite SuiteInfo
	json.NewDecoder(resp.Body).Decode(&suite)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}

	// Wait until the coordinator has shadowed a checkpoint for an item
	// leased to the victim — killing it then forces that work onto a
	// replacement node, which must receive the blob and resume mid-run
	// rather than restart from cycle zero. Fig. 17's jobs run for several
	// epoch slices, so an item seen snapshotting has seconds of work left.
	victimBusy := func() bool {
		c.mu.Lock()
		items := make([]*item, 0, len(c.items))
		for _, it := range c.items {
			items = append(items, it)
		}
		c.mu.Unlock()
		for _, it := range items {
			state, worker, _, _, _ := it.snapshot()
			if _, cycle := it.checkpointData(); state == ItemLeased && worker == victim.ID && cycle > 0 {
				return true
			}
		}
		return false
	}
	deadline := time.Now().Add(2 * time.Minute)
	for !victimBusy() {
		if time.Now().After(deadline) {
			t.Fatal("victim never got a snapshotting job; cannot exercise the kill")
		}
		time.Sleep(10 * time.Millisecond)
	}
	nodes[0].ts.CloseClientConnections()
	nodes[0].ts.Close() // abrupt death: no drain, no goodbye

	for suite.State == SuiteRunning {
		if time.Now().After(deadline.Add(4 * time.Minute)) {
			t.Fatalf("suite stuck after the kill (%d/%d items)", suite.Done, suite.Started)
		}
		time.Sleep(50 * time.Millisecond)
		resp, err := http.Get(cts.URL + "/v1/suites/" + suite.ID)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(body, &suite); err != nil {
			t.Fatal(err)
		}
	}
	if suite.State != SuiteDone {
		t.Fatalf("suite ended %s: %s", suite.State, suite.Error)
	}

	resp, err = http.Get(cts.URL + "/v1/suites/" + suite.ID + "/output")
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("output: %s: %s", resp.Status, out)
	}
	if !bytes.Equal(out, ref) {
		t.Fatalf("fleet output differs from local run after worker kill:\n--- fleet (%d bytes)\n%s\n--- local (%d bytes)\n%s",
			len(out), out, len(ref), ref)
	}

	// The kill must have been felt: at least one lease was lost and
	// requeued, and at least one checkpoint blob was handed to a
	// replacement worker.
	if n := c.requeues.Load(); n == 0 {
		t.Error("no requeues recorded — the kill was not exercised")
	}
	if n := c.handoffs.Load(); n == 0 {
		t.Error("no checkpoint handoffs recorded — the resume path was not exercised")
	}
	// Repeated shadow polls of the same running job must have refreshed at
	// least once via the ?base= delta path instead of full re-fetches.
	if n := c.deltaShadows.Load(); n == 0 {
		t.Error("no delta shadow refreshes recorded — every poll re-fetched the full blob")
	}
	if n := c.localRuns.Load(); n != 0 {
		t.Errorf("%d evaluations fell back to the coordinator, want 0", n)
	}
}

// TestStealDuplicatesOntoIdleWorker pins the work-stealing path: with one
// slow-loaded worker and one idle worker, a job outliving StealAfter is
// duplicated onto the idle node and the first finisher completes the item.
func TestStealDuplicatesOntoIdleWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("steal e2e in -short mode")
	}
	nodes := make([]*httptest.Server, 2)
	for i := range nodes {
		srv := serve.New(serve.Options{JitterSeed: uint64(i + 1)})
		nodes[i] = httptest.NewServer(srv.Handler())
		defer nodes[i].Close()
	}
	c := New(Options{
		Lease:        time.Second,
		Poll:         20 * time.Millisecond,
		HeartbeatTTL: time.Second,
		StealAfter:   200 * time.Millisecond, // far below the job's runtime
		JitterSeed:   5,
		Logf:         t.Logf,
	})
	defer c.Close()
	// Only the first worker is registered at dispatch time; the second
	// appears once the job is already running, so it is idle when the
	// steal timer fires.
	c.AddWorker(nodes[0].URL)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := c.Evaluate(ctx, smokeConfig(), 120000, 0)
		done <- err
	}()

	time.Sleep(100 * time.Millisecond)
	c.AddWorker(nodes[1].URL)

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Evaluate: %v", err)
		}
	case <-time.After(3 * time.Minute):
		t.Fatal("evaluation did not finish")
	}
	if n := c.steals.Load(); n == 0 {
		t.Error("no steal recorded despite an idle worker and a slow job")
	}
}
