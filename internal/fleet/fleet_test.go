package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"adaptnoc"
	"adaptnoc/internal/serve"
)

func TestManifestParse(t *testing.T) {
	m, err := ParseManifest([]byte(`{"figs": ["19", "area"], "quick": true, "seed": 7}`))
	if err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	if !m.Quick || m.Seed != 7 || len(m.Figs) != 2 {
		t.Fatalf("manifest decoded wrong: %+v", m)
	}
	o := m.Options()
	if o.Seed != 7 {
		t.Fatalf("seed override not applied: %d", o.Seed)
	}
	if o.Cycles != 60000 {
		t.Fatalf("quick options not selected: cycles=%d", o.Cycles)
	}

	bad := []string{
		`{"figs": ["bogus"]}`,                 // unknown figure
		`{"figs": ["19"], "typo": 1}`,         // unknown field
		`{"faultCounts": [-1]}`,               // negative count
		`{"figs": ["19"]} {"figs": ["area"]}`, // trailing data
		`{"figs": ["19"]`,                     // malformed
	}
	for _, doc := range bad {
		if _, err := ParseManifest([]byte(doc)); err == nil {
			t.Errorf("manifest %s accepted, want error", doc)
		}
	}
}

func TestBackoffEnvelope(t *testing.T) {
	j := newJitterSource(42)
	prev := time.Duration(0)
	for attempt := 1; attempt <= 12; attempt++ {
		// Envelope at this attempt: base doubled attempt-1 times, capped.
		env := backoffBase
		for i := 1; i < attempt && env < backoffCap; i++ {
			env *= 2
		}
		if env > backoffCap {
			env = backoffCap
		}
		d := j.backoff(attempt)
		if d < env/2 || d >= env {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, d, env/2, env)
		}
		if d > backoffCap {
			t.Fatalf("attempt %d: backoff %v above cap", attempt, d)
		}
		_ = prev
		prev = d
	}

	// Same seed, same schedule: the retry cadence is reproducible.
	a, b := newJitterSource(7), newJitterSource(7)
	for i := 1; i <= 8; i++ {
		if x, y := a.backoff(i), b.backoff(i); x != y {
			t.Fatalf("attempt %d: seeded backoff diverged: %v vs %v", i, x, y)
		}
	}
}

func TestItemLifecycle(t *testing.T) {
	it := newItem("k", serve.Request{})
	if !it.tryDrive() {
		t.Fatal("first tryDrive refused")
	}
	if it.tryDrive() {
		t.Fatal("second tryDrive succeeded while driving")
	}
	it.setLeased("w-1")
	it.releaseDrive()
	if state, _, _ := it.outcome(); state != ItemPending {
		t.Fatalf("releaseDrive left state %s, want pending", state)
	}
	if !it.tryDrive() {
		t.Fatal("tryDrive refused after release")
	}

	it.setCheckpoint([]byte("new"), 100, "aa")
	it.setCheckpoint([]byte("stale"), 50, "bb") // older cycle must not replace
	if blob, cycle := it.checkpointData(); string(blob) != "new" || cycle != 100 {
		t.Fatalf("stale checkpoint replaced fresh one: %q@%d", blob, cycle)
	}

	if !it.complete([]byte("r1")) {
		t.Fatal("complete refused on live item")
	}
	if it.complete([]byte("r2")) || it.fail("late") {
		t.Fatal("terminal item accepted a second outcome")
	}
	state, result, _ := it.outcome()
	if state != ItemDone || string(result) != "r1" {
		t.Fatalf("outcome = %s/%q, want done/r1", state, result)
	}
	if blob, _ := it.checkpointData(); blob != nil {
		t.Fatal("completed item still holds a checkpoint blob")
	}
	select {
	case <-it.done:
	default:
		t.Fatal("done channel not closed")
	}
	if it.tryDrive() {
		t.Fatal("tryDrive succeeded on a terminal item")
	}
}

// smokeConfig is a cheap non-budgeted single-app workload.
func smokeConfig() adaptnoc.Config {
	reg := adaptnoc.Region{W: 4, H: 8}
	return adaptnoc.Config{
		Design: adaptnoc.DesignBaseline,
		Apps:   []adaptnoc.AppSpec{{Profile: "bfs", Region: reg, MCTiles: adaptnoc.BlockMCs(reg)}},
		Seed:   2021,
	}
}

// TestLocalFallback proves a bare coordinator (no workers registered)
// still evaluates, and that the result is exactly what a direct simulation
// of the canonical config produces.
func TestLocalFallback(t *testing.T) {
	c := New(Options{Poll: 10 * time.Millisecond, JitterSeed: 1})
	defer c.Close()

	const cycles = 4000
	got, err := c.Evaluate(context.Background(), smokeConfig(), cycles, 0)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if n := c.localRuns.Load(); n != 1 {
		t.Fatalf("localRuns = %d, want 1", n)
	}

	s, err := adaptnoc.NewSim(smokeConfig().Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunContext(context.Background(), cycles); err != nil {
		t.Fatal(err)
	}
	want := s.Results()
	gb, _ := json.Marshal(got)
	wb, _ := json.Marshal(want)
	if !bytes.Equal(gb, wb) {
		t.Fatalf("fleet-evaluated results differ from direct simulation")
	}

	// The same request again must be answered from the completed item.
	if _, err := c.Evaluate(context.Background(), smokeConfig(), cycles, 0); err != nil {
		t.Fatalf("second Evaluate: %v", err)
	}
	if n := c.localRuns.Load(); n != 1 {
		t.Fatalf("repeat evaluation re-ran the simulation (localRuns = %d)", n)
	}
}

func TestWorkerRegistryHTTP(t *testing.T) {
	c := New(Options{JitterSeed: 1})
	defer c.Close()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	register := func(url string) (WorkerInfo, int) {
		blob, _ := json.Marshal(map[string]string{"url": url})
		resp, err := http.Post(ts.URL+"/v1/workers", "application/json", bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var info WorkerInfo
		json.NewDecoder(resp.Body).Decode(&info)
		return info, resp.StatusCode
	}

	info, code := register("http://127.0.0.1:7777")
	if code != http.StatusCreated || info.ID != "w-1" {
		t.Fatalf("register: code=%d info=%+v", code, info)
	}
	// Same URL re-registers under the same identity, 200 not 201.
	again, code := register("http://127.0.0.1:7777/")
	if code != http.StatusOK || again.ID != "w-1" {
		t.Fatalf("re-register: code=%d info=%+v", code, again)
	}
	if _, code := register("http://127.0.0.1:7778"); code != http.StatusCreated {
		t.Fatalf("second worker: code=%d", code)
	}

	resp, err := http.Post(ts.URL+"/v1/workers/w-1/heartbeat", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("heartbeat: %s", resp.Status)
	}
	resp, err = http.Post(ts.URL+"/v1/workers/w-99/heartbeat", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown heartbeat: %s, want 404", resp.Status)
	}

	resp, err = http.Get(ts.URL + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	var list []WorkerInfo
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list) != 2 || list[0].ID != "w-1" || list[1].ID != "w-2" {
		t.Fatalf("worker list = %+v", list)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/workers/w-2", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %s", resp.Status)
	}
	if wk := c.lookupWorker("w-2"); wk != nil {
		t.Fatal("deleted worker still registered")
	}
}

// TestEnrollRegistersAndRecovers runs the worker-side enrollment loop
// against a live coordinator: it registers, heartbeats, and re-registers
// after the coordinator forgets it.
func TestEnrollRegistersAndRecovers(t *testing.T) {
	c := New(Options{JitterSeed: 1})
	defer c.Close()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go Enroll(ctx, ts.URL, "http://127.0.0.1:7777", 20*time.Millisecond)

	waitFor := func(what string, ok func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !ok() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	registered := func() bool { return c.lookupWorker("w-1") != nil }
	waitFor("enrollment", registered)

	// Forget the worker; the heartbeat's 404 must trigger re-registration
	// (as w-2 — the URL is the identity anchor only while registered).
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/workers/w-1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitFor("re-registration", func() bool { return c.lookupWorker("w-2") != nil })
}

// TestMetricsExposition runs one evaluation and parses the whole /metrics
// document: every series must carry the adaptnoc_fleet_ prefix, gauges and
// counters must parse, and the item-latency histogram must be cumulative
// with a +Inf bucket equal to its count — the obs.WritePromHistogram
// conventions the serve daemon established.
func TestMetricsExposition(t *testing.T) {
	c := New(Options{Poll: 10 * time.Millisecond, JitterSeed: 1})
	defer c.Close()
	if _, err := c.Evaluate(context.Background(), smokeConfig(), 4000, 0); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want Prometheus text exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	values := map[string]float64{}
	var bucketCum []float64
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		name := fields[0]
		if !strings.HasPrefix(name, "adaptnoc_fleet_") {
			t.Fatalf("series %q outside the adaptnoc_fleet_ namespace", name)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		values[name] = v
		if strings.HasPrefix(name, "adaptnoc_fleet_item_seconds_bucket{") {
			if len(bucketCum) > 0 && v < bucketCum[len(bucketCum)-1] {
				t.Fatalf("histogram buckets not cumulative at %q", line)
			}
			bucketCum = append(bucketCum, v)
		}
	}

	for name, want := range map[string]float64{
		"adaptnoc_fleet_items_done":         1,
		"adaptnoc_fleet_items_pending":      0,
		"adaptnoc_fleet_items_leased":       0,
		"adaptnoc_fleet_local_runs_total":   1,
		"adaptnoc_fleet_dispatches_total":   0,
		"adaptnoc_fleet_item_seconds_count": 1,
	} {
		if got, ok := values[name]; !ok {
			t.Errorf("metric %s missing", name)
		} else if got != want {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	inf, ok := values[`adaptnoc_fleet_item_seconds_bucket{le="+Inf"}`]
	if !ok {
		t.Fatal("histogram missing the +Inf bucket")
	}
	if inf != values["adaptnoc_fleet_item_seconds_count"] {
		t.Fatalf("+Inf bucket %g != count %g", inf, values["adaptnoc_fleet_item_seconds_count"])
	}
	if got := values["adaptnoc_fleet_workers_registered"]; got != 0 {
		t.Fatalf("workers_registered = %g, want 0", got)
	}
}

// TestSuiteHTTPSurface runs an instant suite (closed-form tables only)
// through the full HTTP surface: submit, list, poll, SSE, output.
func TestSuiteHTTPSurface(t *testing.T) {
	c := New(Options{JitterSeed: 1})
	defer c.Close()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	// Reject garbage first.
	resp, err := http.Post(ts.URL+"/v1/suites", "application/json", strings.NewReader(`{"figs":["bogus"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad manifest: %s, want 400", resp.Status)
	}

	resp, err = http.Post(ts.URL+"/v1/suites", "application/json", strings.NewReader(`{"figs":["area","wiring"]}`))
	if err != nil {
		t.Fatal(err)
	}
	var info SuiteInfo
	json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || info.ID != "suite-1" {
		t.Fatalf("submit: code=%d info=%+v", resp.StatusCode, info)
	}

	// SSE must replay and terminate with a done event once the suite ends.
	resp, err = http.Get(ts.URL + "/v1/suites/suite-1/events")
	if err != nil {
		t.Fatal(err)
	}
	stream, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(stream), "event: done") {
		t.Fatalf("SSE stream missing done event:\n%s", stream)
	}

	resp, err = http.Get(ts.URL + "/v1/suites/suite-1/output")
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("output: %s: %s", resp.Status, out)
	}
	for _, title := range []string{"area", "wiring"} {
		if !strings.Contains(string(out), title) {
			t.Errorf("output missing the %s table:\n%s", title, out)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/suites")
	if err != nil {
		t.Fatal(err)
	}
	var list []SuiteInfo
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list) != 1 || list[0].State != SuiteDone || list[0].Tables != 2 {
		t.Fatalf("suite list = %+v", list)
	}

	if resp, err = http.Get(ts.URL + "/v1/suites/suite-9/output"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown suite output: %s, want 404", resp.Status)
	}
}
