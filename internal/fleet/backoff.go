package fleet

import (
	"sync"
	"time"

	"adaptnoc/internal/sim"
)

// Requeue backoff shape: exponential from base to cap, with full jitter on
// the upper half so a burst of failures (one dead worker dropping many
// leases at once) spreads its retries instead of thundering back in step.
const (
	backoffBase = 250 * time.Millisecond
	backoffCap  = 30 * time.Second
)

// jitterSource is a mutex-guarded deterministic RNG: the coordinator's
// backoff jitter and steal decisions draw from it, so a seeded coordinator
// retries on a reproducible schedule (tests pin the seed; production seeds
// from the clock).
type jitterSource struct {
	mu  sync.Mutex
	rng *sim.RNG
}

func newJitterSource(seed uint64) *jitterSource {
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	return &jitterSource{rng: sim.NewRNG(seed)}
}

// backoff returns the wait before retry number attempt (1-based): an
// exponential envelope with the actual wait drawn uniformly from
// [envelope/2, envelope).
func (j *jitterSource) backoff(attempt int) time.Duration {
	d := backoffBase
	for i := 1; i < attempt && d < backoffCap; i++ {
		d *= 2
	}
	if d > backoffCap {
		d = backoffCap
	}
	half := int64(d / 2)
	j.mu.Lock()
	w := half + int64(j.rng.Uint64()%uint64(half))
	j.mu.Unlock()
	return time.Duration(w)
}
