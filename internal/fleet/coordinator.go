package fleet

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adaptnoc"
	"adaptnoc/internal/runner"
	"adaptnoc/internal/serve"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/snap"
)

// Options configure a Coordinator. The zero value is usable.
type Options struct {
	// Lease is the lease interval dispatched jobs carry; the coordinator
	// renews it every poll, so a dead coordinator (or partitioned worker)
	// frees the job within one interval (default 15s).
	Lease time.Duration
	// Poll is the job-polling and lease-renewal period (default 250ms).
	Poll time.Duration
	// StealAfter is how long a dispatched job may run before the
	// coordinator duplicates it onto an idle worker, first finisher wins
	// (default 1m; negative disables stealing).
	StealAfter time.Duration
	// MaxAttempts bounds dispatch attempts per work item before the item
	// fails permanently (default 8).
	MaxAttempts int
	// Parallelism bounds how many evaluations a suite issues at once — it
	// is handed to exp.Options.Parallelism and also caps local fallback
	// runs (<= 0 selects one per CPU).
	Parallelism int
	// HeartbeatTTL is how long a worker stays schedulable after its last
	// proof of life — heartbeat, probe, or successful RPC (default 15s).
	HeartbeatTTL time.Duration
	// JitterSeed seeds the requeue-backoff jitter (0 seeds from the clock).
	JitterSeed uint64
	// Logf, when set, receives scheduling decisions (dispatch, requeue,
	// steal, handoff) for the operator's log.
	Logf func(format string, args ...any)
}

// Coordinator schedules experiment suites across a fleet of adaptnoc-serve
// workers. Create with New, mount Handler on an http.Server, and call
// Close to stop background loops and cancel in-flight suites.
type Coordinator struct {
	opts   Options
	mux    *http.ServeMux
	jitter *jitterSource

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu         sync.Mutex
	items      map[string]*item
	workers    map[string]*worker
	suites     map[string]*suiteRecord
	suiteOrder []string
	nextWorker int64
	nextSuite  int64

	localSem chan struct{} // bounds no-worker fallback evaluations

	dispatches   atomic.Int64
	requeues     atomic.Int64
	steals       atomic.Int64
	localRuns    atomic.Int64
	handoffs     atomic.Int64
	deltaShadows atomic.Int64
	suitesTotal  atomic.Int64

	histMu  sync.Mutex
	latency *sim.Histogram // item wall time (first dispatch to done), ms
}

// itemLatencyBucketMS is the item-latency histogram shape: 60 × 2 s
// buckets (2 min span) plus overflow — items are whole simulations, an
// order of magnitude above single serve jobs.
const (
	itemLatencyBucketMS = 2000
	itemLatencyBuckets  = 60
)

// New builds a Coordinator and starts its health prober.
func New(o Options) *Coordinator {
	if o.Lease <= 0 {
		o.Lease = 15 * time.Second
	}
	if o.Poll <= 0 {
		o.Poll = 250 * time.Millisecond
	}
	if o.StealAfter == 0 {
		o.StealAfter = time.Minute
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 8
	}
	if o.HeartbeatTTL <= 0 {
		o.HeartbeatTTL = 15 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		opts:     o,
		jitter:   newJitterSource(o.JitterSeed),
		ctx:      ctx,
		cancel:   cancel,
		items:    make(map[string]*item),
		workers:  make(map[string]*worker),
		suites:   make(map[string]*suiteRecord),
		localSem: make(chan struct{}, runner.Parallelism(o.Parallelism)),
		latency:  sim.NewHistogram(itemLatencyBucketMS, itemLatencyBuckets),
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux.HandleFunc("POST /v1/workers", c.handleRegister)
	c.mux.HandleFunc("GET /v1/workers", c.handleWorkers)
	c.mux.HandleFunc("POST /v1/workers/{id}/heartbeat", c.handleHeartbeat)
	c.mux.HandleFunc("DELETE /v1/workers/{id}", c.handleUnregister)
	c.mux.HandleFunc("POST /v1/suites", c.handleCreateSuite)
	c.mux.HandleFunc("GET /v1/suites", c.handleSuites)
	c.mux.HandleFunc("GET /v1/suites/{id}", c.handleSuite)
	c.mux.HandleFunc("GET /v1/suites/{id}/output", c.handleSuiteOutput)
	c.mux.HandleFunc("GET /v1/suites/{id}/events", c.handleSuiteEvents)
	c.wg.Add(1)
	go c.prober()
	return c
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Close stops the coordinator: background loops exit and every in-flight
// suite's evaluations are canceled.
func (c *Coordinator) Close() {
	c.cancel()
	c.wg.Wait()
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// short abbreviates a content key for logs and errors.
func short(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// sleepCtx waits d or until ctx ends, reporting whether the full wait
// elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// --- scheduling core ---

// ensureItem returns the work item for a key, creating it on first sight.
// Items are shared across suites: two suites needing the same evaluation
// wait on one item, and a completed item answers later suites instantly.
func (c *Coordinator) ensureItem(key string, req serve.Request) *item {
	c.mu.Lock()
	defer c.mu.Unlock()
	if it, ok := c.items[key]; ok {
		return it
	}
	it := newItem(key, req)
	c.items[key] = it
	return it
}

// Evaluate runs one canonical simulation request through the fleet and
// returns its Results. It is the exp.Options.Eval implementation: suites
// call it for every evaluation, concurrently up to the planner's
// parallelism.
func (c *Coordinator) Evaluate(ctx context.Context, cfg adaptnoc.Config, cycles, maxCycles adaptnoc.Cycle) (adaptnoc.Results, error) {
	req := serve.Request{Config: cfg, Cycles: cycles, MaxCycles: maxCycles}.Canonical()
	key, err := serve.RequestKey(req)
	if err != nil {
		return adaptnoc.Results{}, err
	}
	return c.evalItem(ctx, key, req)
}

// evalItem drives the item for key to a terminal state and decodes its
// result. The first caller claims the item's driver token and runs the
// reconcile loop; concurrent callers for the same key block on the item,
// and take the token over if the driver's context ends first.
func (c *Coordinator) evalItem(ctx context.Context, key string, req serve.Request) (adaptnoc.Results, error) {
	it := c.ensureItem(key, req)
	for {
		state, result, errMsg := it.outcome()
		switch state {
		case ItemDone:
			var res adaptnoc.Results
			if err := json.Unmarshal(result, &res); err != nil {
				return adaptnoc.Results{}, fmt.Errorf("fleet: decoding results of %s: %w", short(key), err)
			}
			return res, nil
		case ItemFailed:
			return adaptnoc.Results{}, fmt.Errorf("fleet: %s: %s", short(key), errMsg)
		}
		if err := ctx.Err(); err != nil {
			return adaptnoc.Results{}, err
		}
		if it.tryDrive() {
			c.drive(ctx, it)
			it.releaseDrive()
			continue
		}
		// Another caller is driving; wait for the terminal state, with a
		// periodic recheck in case the driver released without finishing.
		select {
		case <-it.done:
		case <-ctx.Done():
			return adaptnoc.Results{}, ctx.Err()
		case <-time.After(c.opts.Poll):
		}
	}
}

// drive is the per-item reconcile loop: dispatch to the least-loaded
// healthy worker, requeue with jittered exponential backoff on loss, fall
// back to local evaluation when no workers are registered, give up after
// MaxAttempts.
func (c *Coordinator) drive(ctx context.Context, it *item) {
	for attempt := 1; ; attempt++ {
		if state, _, _ := it.outcome(); state.Terminal() {
			return
		}
		if ctx.Err() != nil {
			return
		}
		wk := c.pickWorker("", false)
		if wk == nil {
			c.runLocal(ctx, it)
			return
		}
		switch c.attempt(ctx, it, wk, true) {
		case oDone, oCanceled:
			return
		case oRequeue:
			it.setPending()
			c.requeues.Add(1)
			if attempt >= c.opts.MaxAttempts {
				c.failItem(it, fmt.Sprintf("gave up after %d dispatch attempts", attempt))
				return
			}
			wait := c.jitter.backoff(attempt)
			c.logf("fleet: requeueing %s (attempt %d, backoff %s)", short(it.key), attempt, wait)
			if !sleepCtx(ctx, wait) {
				return
			}
		}
	}
}

// shadowCheckpoint refreshes the item's handoff copy of a running job's
// state. When the item already holds a hash-named copy, the fetch names it
// with ?base= and usually receives just the delta frames extending it —
// kilobytes instead of a full blob — which it applies locally; any gap
// (the worker rebased past our copy, a parse or apply failure) degrades to
// one full re-fetch. Best-effort throughout: shadowing is an optimization
// over re-running from cycle zero, never a correctness requirement.
func (c *Coordinator) shadowCheckpoint(it *item, wk *worker, jobID string) {
	local, _, haveHash := it.checkpointState()
	baseHex := ""
	if local != nil && haveHash != "" {
		baseHex = haveHash
	}
	blob, cycle, format, tip, err := wk.getCheckpoint(jobID, baseHex)
	if err != nil {
		return
	}
	if format == "delta-chain" {
		frames, perr := snap.ParseFrameLog(blob)
		if perr == nil {
			if applied, aerr := snap.ApplyChain(local, frames...); aerr == nil {
				it.setCheckpoint(applied, cycle, tip)
				c.deltaShadows.Add(1)
				return
			}
		}
		if blob, cycle, _, tip, err = wk.getCheckpoint(jobID, ""); err != nil {
			return
		}
	}
	it.setCheckpoint(blob, cycle, tip)
}

// outcome classifies one dispatch attempt.
type outcome int

const (
	oDone     outcome = iota // the item reached a terminal state
	oRequeue                 // attempt lost: worker unreachable, backpressured, or lease lapsed
	oCanceled                // the driver's context ended
)

// attempt runs one dispatch against one worker: ship the freshest shadowed
// checkpoint ahead of the job, submit lease-scoped with ?resume=1, then
// poll — renewing the lease, shadowing checkpoints for handoff, and
// optionally stealing onto an idle worker when the run outlives
// StealAfter.
func (c *Coordinator) attempt(ctx context.Context, it *item, wk *worker, stealAllowed bool) outcome {
	if blob, cycle := it.checkpointData(); blob != nil {
		if err := wk.putCheckpoint(it.key, blob); err == nil {
			c.handoffs.Add(1)
			c.logf("fleet: handed %s to %s at cycle %d", short(it.key), wk.id, cycle)
		}
	}
	info, wait, err := wk.submit(it.req, c.opts.Lease, true)
	if err != nil {
		c.logf("fleet: %s: submit %s: %v", wk.id, short(it.key), err)
		wk.markDead()
		return oRequeue
	}
	if wait > 0 {
		// Backpressure: honor the worker's jittered Retry-After, then let
		// the drive loop reschedule (possibly elsewhere).
		if !sleepCtx(ctx, wait) {
			return oCanceled
		}
		return oRequeue
	}
	c.dispatches.Add(1)
	it.setLeased(wk.id)
	wk.inflight.Add(1)
	defer wk.inflight.Add(-1)
	if info.State.Terminal() {
		return c.settle(it, info) // cache hit: born done
	}

	start := time.Now()
	stole := false
	errs := 0
	tick := time.NewTicker(c.opts.Poll)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			wk.cancelJob(info.ID)
			return oCanceled
		case <-it.done:
			// A stolen duplicate (or a concurrent suite) finished the item.
			wk.cancelJob(info.ID)
			return oDone
		case <-tick.C:
		}
		cur, err := wk.getJob(info.ID)
		if err != nil {
			if errs++; errs >= 3 {
				c.logf("fleet: %s: lost while running %s: %v", wk.id, short(it.key), err)
				wk.markDead()
				return oRequeue
			}
			continue
		}
		errs = 0
		if cur.State.Terminal() {
			return c.settle(it, cur)
		}
		wk.renewLease(info.ID)
		if _, have := it.checkpointData(); cur.CheckpointCycle > have {
			c.shadowCheckpoint(it, wk, info.ID)
		}
		if stealAllowed && !stole && c.opts.StealAfter > 0 && time.Since(start) > c.opts.StealAfter {
			if alt := c.pickWorker(wk.id, true); alt != nil {
				stole = true
				it.markStolen()
				c.steals.Add(1)
				c.logf("fleet: stealing %s from %s onto idle %s", short(it.key), wk.id, alt.id)
				c.wg.Add(1)
				go func() {
					defer c.wg.Done()
					c.attempt(ctx, it, alt, false)
				}()
			}
		}
	}
}

// settle folds a terminal JobInfo into the item. A failed job is a
// deterministic simulation error — retrying elsewhere would reproduce it,
// so the item fails permanently. A canceled job (lapsed lease, worker
// shutdown shedding load) requeues.
func (c *Coordinator) settle(it *item, info serve.JobInfo) outcome {
	switch info.State {
	case serve.StateDone:
		c.finishItem(it, info.Results)
		return oDone
	case serve.StateFailed:
		c.failItem(it, info.Error)
		return oDone
	default:
		return oRequeue
	}
}

// finishItem completes the item and records its wall-clock latency, once.
func (c *Coordinator) finishItem(it *item, result []byte) {
	if !it.complete(result) {
		return
	}
	c.histMu.Lock()
	c.latency.Add(time.Since(it.started).Milliseconds())
	c.histMu.Unlock()
}

func (c *Coordinator) failItem(it *item, msg string) {
	if it.fail(msg) {
		c.logf("fleet: %s failed permanently: %s", short(it.key), msg)
	}
}

// runLocal evaluates the item on the coordinator itself — the no-worker
// fallback that keeps a bare coordinator useful. It honors a shadowed
// checkpoint (an item half-run on a since-dead fleet resumes locally) and
// mirrors the serve worker's execution exactly, so results are identical.
func (c *Coordinator) runLocal(ctx context.Context, it *item) {
	select {
	case c.localSem <- struct{}{}:
	case <-ctx.Done():
		return
	}
	defer func() { <-c.localSem }()
	c.localRuns.Add(1)
	it.setLeased("local")
	var simu *adaptnoc.Sim
	if blob, _ := it.checkpointData(); blob != nil {
		if restored, err := adaptnoc.RestoreSim(blob); err == nil {
			simu = restored
		}
	}
	if simu == nil {
		fresh, err := adaptnoc.NewSim(it.req.Config)
		if err != nil {
			c.failItem(it, err.Error())
			return
		}
		simu = fresh
	}
	var err error
	if it.req.Budgeted() {
		_, err = simu.RunUntilFinishedContext(ctx, it.req.MaxCycles-simu.Kernel.Now())
	} else {
		err = simu.RunContext(ctx, it.req.Cycles-simu.Kernel.Now())
	}
	if err != nil {
		// Canceled mid-run: shadow the state so the next driver resumes
		// from here instead of cycle zero.
		if blob, cerr := simu.Checkpoint(); cerr == nil {
			hash, _ := simu.CheckpointBodyHash()
			it.setCheckpoint(blob, int64(simu.Kernel.Now()), hex.EncodeToString(hash[:]))
		}
		it.setPending()
		return
	}
	blob, err := json.Marshal(simu.Results())
	if err != nil {
		c.failItem(it, err.Error())
		return
	}
	c.finishItem(it, blob)
}

// pickWorker returns the healthy worker holding the fewest coordinator
// leases, ties broken by id. exclude skips one worker (the steal path
// never duplicates onto the original node); mustIdle restricts the choice
// to workers with no inflight leases.
func (c *Coordinator) pickWorker(exclude string, mustIdle bool) *worker {
	c.mu.Lock()
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var best *worker
	var bestLoad int64
	for _, id := range ids {
		wk := c.workers[id]
		if wk.id == exclude || !wk.healthy(c.opts.HeartbeatTTL) {
			continue
		}
		load := wk.inflight.Load()
		if mustIdle && load > 0 {
			continue
		}
		if best == nil || load < bestLoad {
			best, bestLoad = wk, load
		}
	}
	c.mu.Unlock()
	return best
}

// prober pings every registered worker's /healthz periodically. Active
// probing keeps statically registered workers (no self-heartbeat)
// schedulable and notices abrupt deaths without waiting for a dispatch to
// fail.
func (c *Coordinator) prober() {
	defer c.wg.Done()
	interval := c.opts.HeartbeatTTL / 3
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-tick.C:
		}
		c.mu.Lock()
		workers := make([]*worker, 0, len(c.workers))
		for _, wk := range c.workers {
			workers = append(workers, wk)
		}
		c.mu.Unlock()
		for _, wk := range workers {
			wk.probe()
		}
	}
}

// --- worker registry handlers ---

// AddWorker registers a worker by URL, returning its info and whether the
// registration created a new entry. Re-adding a known URL refreshes its
// liveness and keeps the identity — a restarted worker picks up where its
// name left off. The -workers flag and tests call this directly; remote
// workers go through POST /v1/workers.
func (c *Coordinator) AddWorker(url string) (WorkerInfo, bool) {
	url = strings.TrimRight(strings.TrimSpace(url), "/")
	c.mu.Lock()
	for _, wk := range c.workers {
		if wk.url == url {
			c.mu.Unlock()
			wk.noteAlive()
			return wk.info(c.opts.HeartbeatTTL), false
		}
	}
	c.nextWorker++
	wk := newWorker(fmt.Sprintf("w-%d", c.nextWorker), url)
	c.workers[wk.id] = wk
	c.mu.Unlock()
	c.logf("fleet: registered %s at %s", wk.id, url)
	return wk.info(c.opts.HeartbeatTTL), true
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<16))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	var reg struct {
		URL string `json:"url"`
	}
	if err := json.Unmarshal(body, &reg); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("parsing registration: %v", err))
		return
	}
	if strings.TrimSpace(reg.URL) == "" {
		httpError(w, http.StatusBadRequest, `missing worker url (want {"url": "http://host:port"})`)
		return
	}
	info, created := c.AddWorker(reg.URL)
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, info)
}

func (c *Coordinator) lookupWorker(id string) *worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.workers[id]
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	wk := c.lookupWorker(r.PathValue("id"))
	if wk == nil {
		httpError(w, http.StatusNotFound, "no such worker (re-register)")
		return
	}
	wk.noteAlive()
	writeJSON(w, http.StatusOK, wk.info(c.opts.HeartbeatTTL))
}

func (c *Coordinator) handleUnregister(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c.mu.Lock()
	wk := c.workers[id]
	delete(c.workers, id)
	c.mu.Unlock()
	if wk == nil {
		httpError(w, http.StatusNotFound, "no such worker")
		return
	}
	wk.markDead() // in-flight attempts notice and requeue elsewhere
	c.logf("fleet: unregistered %s", id)
	writeJSON(w, http.StatusOK, map[string]string{"removed": id})
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	infos := make([]WorkerInfo, 0, len(c.workers))
	for _, wk := range c.workers {
		infos = append(infos, wk.info(c.opts.HeartbeatTTL))
	}
	c.mu.Unlock()
	sort.Slice(infos, func(a, b int) bool { return infos[a].ID < infos[b].ID })
	writeJSON(w, http.StatusOK, infos)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// --- small helpers (mirroring internal/serve) ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
