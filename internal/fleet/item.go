package fleet

import (
	"sync"
	"time"

	"adaptnoc/internal/serve"
)

// ItemState is a work item's reconcile position.
type ItemState string

// Item lifecycle: pending → leased → done, with leased → pending requeues
// on worker failure, lease loss, or backpressure, and a terminal failed
// state for deterministic simulation errors and exhausted retries.
const (
	ItemPending ItemState = "pending"
	ItemLeased  ItemState = "leased"
	ItemDone    ItemState = "done"
	ItemFailed  ItemState = "failed"
)

// Terminal reports whether the state is final.
func (s ItemState) Terminal() bool { return s == ItemDone || s == ItemFailed }

// item is one content-addressed evaluation: a canonical serve request plus
// everything the reconcile loop learns about it. Items are shared — every
// suite that needs the same key waits on the same item, and exactly one
// evaluate call drives it at a time (the driver token below).
type item struct {
	key string
	req serve.Request // canonical

	mu        sync.Mutex
	state     ItemState
	driving   bool   // a drive loop currently owns this item
	worker    string // worker id of the current (first) lease, for display
	attempts  int    // dispatch attempts so far
	retries   int    // requeues after a lost lease or failed dispatch
	stolen    int    // duplicate dispatches to idle workers
	result    []byte // marshaled Results when done
	errMsg    string
	started   time.Time
	ckptBlob  []byte // latest shadowed checkpoint, for handoff
	ckptCycle int64
	ckptHash  string        // hex body hash of ckptBlob; names it in delta negotiation
	done      chan struct{} // closed on reaching a terminal state
}

func newItem(key string, req serve.Request) *item {
	return &item{key: key, req: req, state: ItemPending, started: time.Now(), done: make(chan struct{})}
}

// tryDrive claims the item's driver token. One waiter at a time runs the
// reconcile loop; the rest just block on done (and can take over if the
// driver's suite is torn down mid-flight).
func (it *item) tryDrive() bool {
	it.mu.Lock()
	defer it.mu.Unlock()
	if it.driving || it.state.Terminal() {
		return false
	}
	it.driving = true
	return true
}

// releaseDrive returns the driver token (the item may still be pending —
// a canceled driver leaves it for the next waiter).
func (it *item) releaseDrive() {
	it.mu.Lock()
	it.driving = false
	if it.state == ItemLeased {
		it.state = ItemPending
		it.worker = ""
	}
	it.mu.Unlock()
}

// setLeased marks the item leased to a worker and counts the dispatch.
func (it *item) setLeased(workerID string) {
	it.mu.Lock()
	it.state = ItemLeased
	it.worker = workerID
	it.attempts++
	it.mu.Unlock()
}

// setPending requeues the item after a lost attempt.
func (it *item) setPending() {
	it.mu.Lock()
	it.state = ItemPending
	it.worker = ""
	it.retries++
	it.mu.Unlock()
}

// complete finishes the item exactly once; later calls (a stolen duplicate
// finishing second) report false and change nothing.
func (it *item) complete(result []byte) bool {
	it.mu.Lock()
	defer it.mu.Unlock()
	if it.state.Terminal() {
		return false
	}
	it.state = ItemDone
	it.result = result
	it.ckptBlob = nil // spent; the result supersedes it
	close(it.done)
	return true
}

// fail finishes the item with an error exactly once.
func (it *item) fail(msg string) bool {
	it.mu.Lock()
	defer it.mu.Unlock()
	if it.state.Terminal() {
		return false
	}
	it.state = ItemFailed
	it.errMsg = msg
	close(it.done)
	return true
}

// markStolen counts a duplicate dispatch.
func (it *item) markStolen() {
	it.mu.Lock()
	it.stolen++
	it.mu.Unlock()
}

// outcome returns the terminal payload: the state plus, when terminal, the
// marshaled result or the error message.
func (it *item) outcome() (ItemState, []byte, string) {
	it.mu.Lock()
	defer it.mu.Unlock()
	return it.state, it.result, it.errMsg
}

// setCheckpoint shadows a fresher checkpoint blob for handoff. hash is
// the blob's hex body hash when the shadower knows it ("" otherwise —
// the item then re-fetches full until a hash-bearing shadow lands).
func (it *item) setCheckpoint(blob []byte, cycle int64, hash string) {
	it.mu.Lock()
	if cycle > it.ckptCycle {
		it.ckptBlob, it.ckptCycle, it.ckptHash = blob, cycle, hash
	}
	it.mu.Unlock()
}

// checkpointData returns the latest shadowed blob, or nil.
func (it *item) checkpointData() ([]byte, int64) {
	it.mu.Lock()
	defer it.mu.Unlock()
	return it.ckptBlob, it.ckptCycle
}

// checkpointState additionally reports the shadowed blob's body hash, the
// token the delta-negotiation fetch names its base with.
func (it *item) checkpointState() ([]byte, int64, string) {
	it.mu.Lock()
	defer it.mu.Unlock()
	return it.ckptBlob, it.ckptCycle, it.ckptHash
}

// snapshot returns the fields the status surfaces render.
func (it *item) snapshot() (state ItemState, worker string, attempts, retries, stolen int) {
	it.mu.Lock()
	defer it.mu.Unlock()
	return it.state, it.worker, it.attempts, it.retries, it.stolen
}
