package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"adaptnoc/internal/serve"
)

// worker is one registered serve daemon: identity, a health record fed by
// heartbeats, probes, and every RPC outcome, and the HTTP client the
// reconcile loop drives it with.
type worker struct {
	id  string
	url string

	client *http.Client

	mu       sync.Mutex
	lastSeen time.Time
	dead     bool // last contact failed; any successful contact revives

	inflight atomic.Int64 // leases the coordinator currently holds here
}

// WorkerInfo is the wire representation of a registered worker
// (GET /v1/workers).
type WorkerInfo struct {
	ID       string `json:"id"`
	URL      string `json:"url"`
	Healthy  bool   `json:"healthy"`
	Inflight int64  `json:"inflight"`
	// LastSeenMS is how long ago the worker last proved liveness, in
	// milliseconds.
	LastSeenMS int64 `json:"lastSeenMs"`
}

func newWorker(id, url string) *worker {
	return &worker{
		id: id, url: url,
		client:   &http.Client{Timeout: 15 * time.Second},
		lastSeen: time.Now(),
	}
}

// noteAlive records a successful contact (heartbeat, probe, or RPC).
func (w *worker) noteAlive() {
	w.mu.Lock()
	w.lastSeen = time.Now()
	w.dead = false
	w.mu.Unlock()
}

// markDead records a failed contact; the worker stays out of scheduling
// until something succeeds against it again.
func (w *worker) markDead() {
	w.mu.Lock()
	w.dead = true
	w.mu.Unlock()
}

// healthy reports whether the worker is schedulable: not marked dead and
// seen within the TTL.
func (w *worker) healthy(ttl time.Duration) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return !w.dead && time.Since(w.lastSeen) < ttl
}

func (w *worker) info(ttl time.Duration) WorkerInfo {
	w.mu.Lock()
	lastSeen, dead := w.lastSeen, w.dead
	w.mu.Unlock()
	return WorkerInfo{
		ID: w.id, URL: w.url,
		Healthy:    !dead && time.Since(lastSeen) < ttl,
		Inflight:   w.inflight.Load(),
		LastSeenMS: time.Since(lastSeen).Milliseconds(),
	}
}

// probe checks the worker's /healthz. Active probing keeps statically
// registered workers (no self-heartbeat) schedulable and notices abrupt
// deaths between polls.
func (w *worker) probe() bool {
	resp, err := w.client.Get(w.url + "/healthz")
	if err != nil {
		w.markDead()
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		w.markDead()
		return false
	}
	w.noteAlive()
	return true
}

// submit posts a lease-scoped job. A 429 answer is backpressure, not
// failure: it returns the jittered Retry-After as a wait with no error.
func (w *worker) submit(req serve.Request, lease time.Duration, resume bool) (serve.JobInfo, time.Duration, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return serve.JobInfo{}, 0, err
	}
	url := fmt.Sprintf("%s/v1/sims?lease=%s", w.url, lease)
	if resume {
		url += "&resume=1"
	}
	resp, err := w.client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return serve.JobInfo{}, 0, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return serve.JobInfo{}, 0, err
	}
	w.noteAlive()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
		var info serve.JobInfo
		if err := json.Unmarshal(blob, &info); err != nil {
			return serve.JobInfo{}, 0, err
		}
		return info, 0, nil
	case http.StatusTooManyRequests:
		secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil || secs <= 0 {
			secs = 1
		}
		return serve.JobInfo{}, time.Duration(secs) * time.Second, nil
	default:
		return serve.JobInfo{}, 0, fmt.Errorf("fleet: %s: submit: %s: %s", w.id, resp.Status, blob)
	}
}

func (w *worker) getJob(id string) (serve.JobInfo, error) {
	resp, err := w.client.Get(w.url + "/v1/jobs/" + id)
	if err != nil {
		return serve.JobInfo{}, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return serve.JobInfo{}, err
	}
	w.noteAlive()
	if resp.StatusCode != http.StatusOK {
		return serve.JobInfo{}, fmt.Errorf("fleet: %s: job %s: %s", w.id, id, resp.Status)
	}
	var info serve.JobInfo
	if err := json.Unmarshal(blob, &info); err != nil {
		return serve.JobInfo{}, err
	}
	return info, nil
}

// renewLease pushes the job's lease out by one interval. Best-effort: a
// 409 means the lease already lapsed, which the next poll observes as a
// canceled job.
func (w *worker) renewLease(id string) {
	resp, err := w.client.Post(w.url+"/v1/jobs/"+id+"/lease", "application/json", nil)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	w.noteAlive()
}

// getCheckpoint fetches the job's latest state for shadowing. When
// baseHex names a body hash the caller already holds, the worker may
// answer with just the delta frames extending it (format "delta-chain",
// body a snap frame log) instead of the full blob (format "full"). tipHex
// is the fetched state's body hash — the caller's base token next time.
func (w *worker) getCheckpoint(id, baseHex string) (blob []byte, cycle int64, format, tipHex string, err error) {
	url := w.url + "/v1/jobs/" + id + "/checkpoint"
	if baseHex != "" {
		url += "?base=" + baseHex
	}
	resp, err := w.client.Get(url)
	if err != nil {
		return nil, 0, "", "", err
	}
	defer resp.Body.Close()
	blob, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, "", "", err
	}
	w.noteAlive()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, "", "", fmt.Errorf("fleet: %s: checkpoint of %s: %s", w.id, id, resp.Status)
	}
	cycle, _ = strconv.ParseInt(resp.Header.Get("X-Checkpoint-Cycle"), 10, 64)
	format = resp.Header.Get("X-Checkpoint-Format")
	if format == "" {
		format = "full" // an older daemon that predates negotiation
	}
	return blob, cycle, format, resp.Header.Get("X-Checkpoint-Body-Hash"), nil
}

// putCheckpoint deposits a handed-off blob under a request key so the next
// ?resume=1 submission restores it.
func (w *worker) putCheckpoint(key string, blob []byte) error {
	req, err := http.NewRequest(http.MethodPut, w.url+"/v1/checkpoints/"+key, bytes.NewReader(blob))
	if err != nil {
		return err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	w.noteAlive()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: %s: checkpoint deposit: %s", w.id, resp.Status)
	}
	return nil
}

// cancelJob DELETEs a job, best-effort (losing side of a steal, teardown).
func (w *worker) cancelJob(id string) {
	req, err := http.NewRequest(http.MethodDelete, w.url+"/v1/jobs/"+id, nil)
	if err != nil {
		return
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// Enroll registers a serve daemon with a coordinator and heartbeats until
// ctx ends, re-registering whenever the coordinator forgets it (restart,
// eviction). It is the worker half of the enrollment surface — wire it to
// adaptnoc-serve -enroll.
func Enroll(ctx context.Context, coordinatorURL, selfURL string, interval time.Duration) error {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	client := &http.Client{Timeout: 10 * time.Second}
	register := func() (string, error) {
		body, _ := json.Marshal(map[string]string{"url": selfURL})
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			coordinatorURL+"/v1/workers", bytes.NewReader(body))
		if err != nil {
			return "", err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		blob, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
			return "", fmt.Errorf("fleet: enroll: %s: %s", resp.Status, blob)
		}
		var info WorkerInfo
		if err := json.Unmarshal(blob, &info); err != nil {
			return "", err
		}
		return info.ID, nil
	}

	id := ""
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		if id == "" {
			if got, err := register(); err == nil {
				id = got
			}
		} else {
			req, err := http.NewRequestWithContext(ctx, http.MethodPost,
				coordinatorURL+"/v1/workers/"+id+"/heartbeat", nil)
			if err == nil {
				resp, err := client.Do(req)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusNotFound {
						id = "" // coordinator forgot us; re-register next tick
					}
				}
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}
