package sim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if a.Mean() != 5 {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", a.Min(), a.Max())
	}
	// Population sd is 2; sample sd = sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(a.StdDev()-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", a.StdDev(), want)
	}
	if math.Abs(a.Sum()-40) > 1e-9 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	a.Reset()
	if a.N() != 0 || a.Mean() != 0 {
		t.Fatal("reset failed")
	}
}

func TestAccumulatorMatchesNaiveComputation(t *testing.T) {
	f := func(xs []float64) bool {
		var a Accumulator
		var sum float64
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				ok = false
				break
			}
			a.Add(x)
			sum += x
		}
		if !ok || len(xs) == 0 {
			return true
		}
		mean := sum / float64(len(xs))
		return math.Abs(a.Mean()-mean) < 1e-6*(1+math.Abs(mean))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram(10, 10)
	for v := int64(0); v < 100; v++ {
		h.Add(v)
	}
	if h.N() != 100 {
		t.Fatalf("N = %d", h.N())
	}
	if p := h.Percentile(50); p < 40 || p > 60 {
		t.Fatalf("P50 = %d", p)
	}
	if p := h.Percentile(99); p < 90 {
		t.Fatalf("P99 = %d", p)
	}
	// Overflow samples report the observed max.
	h.Add(5000)
	if p := h.Percentile(100); p != 5000 {
		t.Fatalf("P100 with overflow = %d", p)
	}
	h.Reset()
	if h.N() != 0 || h.Percentile(50) != 0 {
		t.Fatal("reset failed")
	}
}

func TestHistogramClampsNegatives(t *testing.T) {
	h := NewHistogram(4, 4)
	h.Add(-17)
	if h.Mean() != 0 {
		t.Fatalf("negative sample not clamped: mean %v", h.Mean())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 9 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 5 {
		t.Fatalf("q.5 = %v", q)
	}
	// Input must not be mutated.
	if xs[0] != 9 {
		t.Fatal("Quantile sorted the caller's slice")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty input")
	}
}

func TestHistogramOverflowAndSummary(t *testing.T) {
	h := NewHistogram(10, 4)
	for _, v := range []int64{5, 15, 25, 35, 45, 1000} {
		h.Add(v)
	}
	if h.Overflow() != 2 {
		t.Fatalf("Overflow = %d, want 2 (40+ falls past the last bucket)", h.Overflow())
	}
	s := h.Summary()
	for _, want := range []string{"n=6", "p50=", "p95=", "p99=", "max=1000"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Summary %q missing %q", s, want)
		}
	}
	h.Reset()
	if h.Overflow() != 0 {
		t.Fatalf("Overflow survived Reset: %d", h.Overflow())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(10, 4)
	for _, v := range []int64{5, 15, 25, 35, 45, 1000} {
		h.Add(v)
	}
	width, counts, overflow := h.Buckets()
	if width != 10 || overflow != 2 {
		t.Fatalf("Buckets width=%d overflow=%d, want 10 and 2", width, overflow)
	}
	want := []int64{1, 1, 1, 1}
	for i, c := range counts {
		if c != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
	// The returned slice is a copy: mutating it must not corrupt the
	// histogram an exporter is reading.
	counts[0] = 99
	if _, again, _ := h.Buckets(); again[0] != 1 {
		t.Fatal("Buckets exposed internal storage")
	}
}
