package sim

import "math"

// RNG is a small, fast, seedable pseudo-random generator (xoshiro256**)
// used everywhere randomness is needed so that whole-system runs are
// reproducible from a single seed. It is deliberately not math/rand: we
// need cheap splitting (independent per-component streams derived from a
// parent) and a stable algorithm across Go releases.
type RNG struct {
	s [4]uint64
}

// splitmix64 expands a seed into well-distributed state words.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed. Distinct seeds give
// independent streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	return r
}

// Split derives an independent child stream. The child is a pure function
// of the parent's current state and the label, so call order matters —
// split all children up front during construction for reproducibility.
func (r *RNG) Split(label uint64) *RNG {
	return NewRNG(r.Uint64() ^ (label * 0x9e3779b97f4a7c15))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Box–Muller; one value per
// call keeps the generator allocation-free and stateless beyond s).
func (r *RNG) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		if u1 <= 1e-300 {
			continue
		}
		u2 := r.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// Exponential returns an exponentially distributed variate with the given
// mean. Used for inter-arrival jitter in traffic sources.
func (r *RNG) Exponential(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Perm fills a permutation of [0, n) using Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Choice returns a random index weighted by the given non-negative weights.
// All-zero weights select uniformly.
func (r *RNG) Choice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("sim: negative weight")
		}
		total += w
	}
	if total == 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
