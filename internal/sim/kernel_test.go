package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelTickOrderAndCount(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Register(TickerFunc(func(now Cycle) { order = append(order, 1) }))
	k.Register(TickerFunc(func(now Cycle) { order = append(order, 2) }))
	k.Run(3)
	want := []int{1, 2, 1, 2, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("got %d ticks, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("tick order %v, want %v", order, want)
		}
	}
	if k.Now() != 3 {
		t.Fatalf("Now = %d, want 3", k.Now())
	}
}

func TestScheduleRunsBeforeTickersAtSameCycle(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Register(TickerFunc(func(now Cycle) {
		if now == 5 {
			order = append(order, "tick")
		}
	}))
	k.Schedule(5, func(now Cycle) { order = append(order, "event") })
	k.Run(10)
	if len(order) != 2 || order[0] != "event" || order[1] != "tick" {
		t.Fatalf("order = %v, want [event tick]", order)
	}
}

func TestScheduleFIFOWithinCycle(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(2, func(Cycle) { got = append(got, i) })
	}
	k.Run(3)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-cycle events out of order: %v", got)
		}
	}
}

func TestAfterChainsAndStop(t *testing.T) {
	k := NewKernel()
	count := 0
	var again func(Cycle)
	again = func(now Cycle) {
		count++
		if count == 5 {
			k.Stop()
			return
		}
		k.After(2, again)
	}
	k.After(2, again)
	end := k.Run(1000)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if end >= 1000 {
		t.Fatal("Stop did not end the run early")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.Run(5)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.Schedule(2, func(Cycle) {})
}

func TestEventHeapOrdersArbitrarySchedules(t *testing.T) {
	// Property: events fire in non-decreasing cycle order regardless of
	// insertion order.
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		k := NewKernel()
		var fired []Cycle
		for _, d := range delays {
			at := Cycle(d % 1000)
			k.Schedule(at, func(now Cycle) { fired = append(fired, now) })
		}
		k.Run(1001)
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPendingCyclesSorted(t *testing.T) {
	k := NewKernel()
	for _, at := range []Cycle{9, 3, 7, 1} {
		k.Schedule(at, func(Cycle) {})
	}
	got := k.pendingCycles()
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("pendingCycles not sorted: %v", got)
		}
	}
}

func TestPendingEvents(t *testing.T) {
	k := NewKernel()
	if n := k.PendingEvents(); n != 0 {
		t.Fatalf("fresh kernel has %d pending events", n)
	}
	for _, at := range []Cycle{2, 5, 5} {
		k.Schedule(at, func(Cycle) {})
	}
	if n := k.PendingEvents(); n != 3 {
		t.Fatalf("PendingEvents = %d, want 3", n)
	}
	k.Run(3) // fires the cycle-2 event
	if n := k.PendingEvents(); n != 2 {
		t.Fatalf("PendingEvents after partial run = %d, want 2", n)
	}
	k.Run(6)
	if n := k.PendingEvents(); n != 0 {
		t.Fatalf("PendingEvents after full run = %d, want 0", n)
	}
}
