package sim

// Checkpoint support for the kernel layer: the clock, the future-event
// list, RNG streams, and the statistics containers all expose their state
// explicitly here so the layers above can round-trip a simulation.

import (
	"fmt"
	"sort"

	"adaptnoc/internal/snap"
)

// State returns the generator's exact internal state.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState overwrites the generator's internal state; the stream continues
// exactly as if the intervening draws had happened in this process.
func (r *RNG) SetState(s [4]uint64) { r.s = s }

// Snapshot writes the generator state.
func (r *RNG) Snapshot(w *snap.Writer) {
	for _, word := range r.s {
		w.U64(word)
	}
}

// Restore reads a state written by Snapshot.
func (r *RNG) Restore(rd *snap.Reader) error {
	for i := range r.s {
		v, err := rd.U64()
		if err != nil {
			return err
		}
		r.s[i] = v
	}
	return nil
}

// Snapshot writes the accumulator's exact running state, bit patterns
// included, so a restored accumulator continues producing identical means
// and variances.
func (a *Accumulator) Snapshot(w *snap.Writer) {
	w.I64(a.n)
	w.F64(a.mean)
	w.F64(a.m2)
	w.F64(a.min)
	w.F64(a.max)
}

// Restore reads a state written by Snapshot.
func (a *Accumulator) Restore(r *snap.Reader) error {
	var err error
	if a.n, err = r.I64(); err != nil {
		return err
	}
	if a.mean, err = r.F64(); err != nil {
		return err
	}
	if a.m2, err = r.F64(); err != nil {
		return err
	}
	if a.min, err = r.F64(); err != nil {
		return err
	}
	a.max, err = r.F64()
	return err
}

// Snapshot writes the histogram's shape and counts.
func (h *Histogram) Snapshot(w *snap.Writer) {
	w.I64(h.width)
	w.I64s(h.buckets)
	w.I64(h.over)
	h.acc.Snapshot(w)
}

// Restore reads a state written by Snapshot, replacing the histogram's
// shape and counts.
func (h *Histogram) Restore(r *snap.Reader) error {
	width, err := r.I64()
	if err != nil {
		return err
	}
	if width <= 0 {
		return fmt.Errorf("sim: histogram width %d", width)
	}
	buckets, err := r.I64s()
	if err != nil {
		return err
	}
	if len(buckets) == 0 {
		return fmt.Errorf("sim: histogram with no buckets")
	}
	over, err := r.I64()
	if err != nil {
		return err
	}
	h.width, h.buckets, h.over = width, buckets, over
	return h.acc.Restore(r)
}

// Snapshot writes the kernel's clock and future-event list. Only
// descriptor events (ScheduleOp/AfterOp) are serializable; a pending
// closure event is reported as an error because a function value cannot
// be rebound in another process — the caller surfaces "not checkpointable
// here" rather than silently dropping the event.
//
// Events are written sorted by (at, seq). The heap's internal array layout
// depends on insertion history, but its pop order is a pure function of
// the (at, seq) keys, so the canonical sorted order restores identical
// behaviour and gives byte-identical snapshots regardless of layout.
func (k *Kernel) Snapshot(w *snap.Writer) error {
	evs := append([]event(nil), k.events...)
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].seq < evs[j].seq
	})
	for _, ev := range evs {
		if ev.fn != nil {
			return fmt.Errorf("sim: pending closure event at cycle %d cannot be checkpointed", ev.at)
		}
	}
	// Part-mark kinds inside the kernel section (delta alignment only):
	// kind 0 is the clock header, kind 1 keys each event by its sequence
	// number, which is stable for an event that merely survives between
	// two snapshots and pairs positionally when it reschedules.
	w.Mark(snap.PartKey(0, 0))
	w.I64(int64(k.now))
	w.I64(k.seq)
	w.Uvarint(uint64(len(evs)))
	for _, ev := range evs {
		w.Mark(snap.PartKey(1, uint64(ev.seq)))
		w.I64(int64(ev.at))
		w.I64(ev.seq)
		w.U32(uint32(ev.op))
		for _, a := range ev.args {
			w.I64(a)
		}
	}
	return nil
}

// Restore reads a state written by Snapshot into a freshly constructed
// kernel: the clock jumps to the checkpointed cycle and the event list is
// rebuilt. Tickers and op handlers are construction-time wiring and must
// already be registered.
func (k *Kernel) Restore(r *snap.Reader) error {
	now, err := r.I64()
	if err != nil {
		return err
	}
	seq, err := r.I64()
	if err != nil {
		return err
	}
	n, err := r.Count(8*5 + 4)
	if err != nil {
		return err
	}
	events := make(eventHeap, 0, n)
	for i := 0; i < n; i++ {
		var ev event
		at, err := r.I64()
		if err != nil {
			return err
		}
		ev.at = Cycle(at)
		if ev.seq, err = r.I64(); err != nil {
			return err
		}
		op, err := r.U32()
		if err != nil {
			return err
		}
		if op == 0 {
			return fmt.Errorf("sim: checkpoint contains closure event")
		}
		if k.ops[OpID(op)] == nil {
			return fmt.Errorf("sim: event references unregistered op %d", op)
		}
		ev.op = OpID(op)
		for j := range ev.args {
			if ev.args[j], err = r.I64(); err != nil {
				return err
			}
		}
		if ev.at < Cycle(now) {
			return fmt.Errorf("sim: event at cycle %d behind restored clock %d", ev.at, now)
		}
		if ev.seq > seq {
			return fmt.Errorf("sim: event seq %d ahead of restored counter %d", ev.seq, seq)
		}
		events.push(ev)
	}
	k.now, k.seq, k.events = Cycle(now), seq, events
	return nil
}
