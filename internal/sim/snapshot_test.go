package sim

import (
	"testing"

	"adaptnoc/internal/snap"
)

// xoshiroGolden pins the exact output streams of the generator. These
// vectors were produced by this implementation and cross-checked against
// the xoshiro256** reference (seed 0 via splitmix64); if a Go upgrade or a
// refactor changes any of them, every "deterministic from a single seed"
// guarantee in the repo is silently void, so this test must never be
// "fixed" by regenerating the constants.
func TestRNGGoldenVectors(t *testing.T) {
	cases := []struct {
		seed uint64
		want [5]uint64
	}{
		{0, [5]uint64{0x99ec5f36cb75f2b4, 0xbf6e1f784956452a, 0x1a5f849d4933e6e0, 0x6aa594f1262d2d2c, 0xbba5ad4a1f842e59}},
		{1, [5]uint64{0xb3f2af6d0fc710c5, 0x853b559647364cea, 0x92f89756082a4514, 0x642e1c7bc266a3a7, 0xb27a48e29a233673}},
		{2021, [5]uint64{0xf61612c2ff4d9bc1, 0x584f61ab0b9a78b4, 0x8153a8240f70a3e2, 0xf7825de81809f5f1, 0xbfa6b6578e1a9e26}},
		{0xdeadbeef, [5]uint64{0xc5555444a74d7e83, 0x65c30d37b4b16e38, 0x54f773200a4efa23, 0x429aed75fb958af7, 0xfb0e1dd69c255b2e}},
	}
	for _, c := range cases {
		r := NewRNG(c.seed)
		for i, want := range c.want {
			if got := r.Uint64(); got != want {
				t.Fatalf("seed %#x draw %d: got %#x want %#x", c.seed, i, got, want)
			}
		}
	}

	// Split is part of the pinned algorithm: it advances the parent by one
	// draw and derives the child from that draw and the label.
	r := NewRNG(2021)
	child := r.Split(7)
	if got := child.Uint64(); got != 0xb9ff5a931d17e3af {
		t.Fatalf("Split(7) first draw: got %#x", got)
	}
	if got := child.Uint64(); got != 0xc0994480b1b58e34 {
		t.Fatalf("Split(7) second draw: got %#x", got)
	}
	if got := r.Uint64(); got != 0x584f61ab0b9a78b4 {
		t.Fatalf("parent stream after Split: got %#x", got)
	}

	// Derived distributions ride on the same stream.
	f := NewRNG(42)
	if got := f.Float64(); got != 0.083862971059882163 {
		t.Fatalf("Float64: got %.17g", got)
	}
	n := NewRNG(42)
	if got := n.NormFloat64(); got != -1.6132237513849161 {
		t.Fatalf("NormFloat64: got %.17g", got)
	}
}

func TestRNGStateRoundTrip(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 1000; i++ {
		r.Uint64()
	}
	state := r.State()

	// A fresh generator given the captured state must continue the exact
	// stream, draw for draw.
	cp := &RNG{}
	cp.SetState(state)
	ref := NewRNG(99)
	for i := 0; i < 1000; i++ {
		ref.Uint64()
	}
	for i := 0; i < 256; i++ {
		if a, b := ref.Uint64(), cp.Uint64(); a != b {
			t.Fatalf("draw %d diverged after SetState: %#x vs %#x", i, a, b)
		}
	}

	// And via the binary snapshot path.
	var w snap.Writer
	r2 := NewRNG(7)
	r2.Uint64()
	r2.Snapshot(&w)
	var r3 RNG
	if err := r3.Restore(snap.NewReader(w.Bytes())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if a, b := r2.Uint64(), r3.Uint64(); a != b {
			t.Fatalf("snapshot round-trip diverged at draw %d", i)
		}
	}
}

func TestRNGSplitAfterRestore(t *testing.T) {
	// Splitting after a restore must yield the same child stream as
	// splitting at the same point of the original run: Split consumes
	// parent state, so this is the sharpest test that SetState captures
	// everything.
	orig := NewRNG(5)
	for i := 0; i < 37; i++ {
		orig.Uint64()
	}
	restored := &RNG{}
	restored.SetState(orig.State())

	a := orig.Split(1234)
	b := restored.Split(1234)
	for i := 0; i < 128; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("child streams diverged at draw %d", i)
		}
	}
	// The parents stay in lockstep too.
	for i := 0; i < 128; i++ {
		if x, y := orig.Uint64(), restored.Uint64(); x != y {
			t.Fatalf("parent streams diverged at draw %d", i)
		}
	}
}

func TestAccumulatorHistogramRoundTrip(t *testing.T) {
	var a Accumulator
	r := NewRNG(3)
	for i := 0; i < 500; i++ {
		a.Add(r.NormFloat64() * 10)
	}
	var w snap.Writer
	a.Snapshot(&w)
	var b Accumulator
	if err := b.Restore(snap.NewReader(w.Bytes())); err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("accumulator round trip: %+v vs %+v", a, b)
	}
	// Continued use stays bit-identical.
	a.Add(1.5)
	b.Add(1.5)
	if a != b {
		t.Fatalf("accumulator diverged after restore: %+v vs %+v", a, b)
	}

	h := NewHistogram(10, 20)
	for i := int64(0); i < 300; i++ {
		h.Add(i)
	}
	var hw snap.Writer
	h.Snapshot(&hw)
	h2 := NewHistogram(1, 1) // shape is overwritten by Restore
	if err := h2.Restore(snap.NewReader(hw.Bytes())); err != nil {
		t.Fatal(err)
	}
	if h.Summary() != h2.Summary() || h.Overflow() != h2.Overflow() {
		t.Fatalf("histogram round trip:\n%s\n%s", h.Summary(), h2.Summary())
	}
	h.Add(42)
	h2.Add(42)
	if h.Summary() != h2.Summary() {
		t.Fatal("histogram diverged after restore")
	}
}

func TestKernelOpEventsRoundTrip(t *testing.T) {
	const opPing OpID = 7

	build := func() (*Kernel, *[]int64) {
		k := NewKernel()
		log := &[]int64{}
		k.RegisterOp(opPing, func(now Cycle, args [3]int64) {
			*log = append(*log, int64(now), args[0], args[1], args[2])
			if args[0] < 3 {
				k.AfterOp(2, opPing, args[0]+1, args[1], args[2])
			}
		})
		return k, log
	}

	// Reference run: no checkpoint.
	ref, refLog := build()
	ref.ScheduleOp(5, opPing, 0, 10, 20)
	ref.ScheduleOp(8, opPing, 100, 0, 0)
	ref.Run(30)

	// Checkpointed run: snapshot at cycle 6 (self-rescheduling chain in
	// flight), restore into a fresh kernel, run to the same horizon.
	k, _ := build()
	k.ScheduleOp(5, opPing, 0, 10, 20)
	k.ScheduleOp(8, opPing, 100, 0, 0)
	k.Run(6)
	var w snap.Writer
	if err := k.Snapshot(&w); err != nil {
		t.Fatal(err)
	}

	k2, log2 := build()
	if err := k2.Restore(snap.NewReader(w.Bytes())); err != nil {
		t.Fatal(err)
	}
	if k2.Now() != 6 {
		t.Fatalf("restored clock %d, want 6", k2.Now())
	}
	// Replay the pre-checkpoint prefix into the restored log so the full
	// histories compare; the restored kernel only executes the suffix.
	k3, log3 := build()
	k3.ScheduleOp(5, opPing, 0, 10, 20)
	k3.ScheduleOp(8, opPing, 100, 0, 0)
	k3.Run(6)
	*log2 = append(*log2, *log3...)
	k2.Run(30)

	if len(*refLog) != len(*log2) {
		t.Fatalf("event log lengths differ: %d vs %d", len(*refLog), len(*log2))
	}
	for i := range *refLog {
		if (*refLog)[i] != (*log2)[i] {
			t.Fatalf("event log diverged at %d: %v vs %v", i, *refLog, *log2)
		}
	}

	// Seq continuity: events scheduled after restore must order after
	// pre-checkpoint events at the same cycle, exactly as in the reference.
	if ref.PendingEvents() != k2.PendingEvents() {
		t.Fatalf("pending events differ: %d vs %d", ref.PendingEvents(), k2.PendingEvents())
	}
}

func TestKernelSnapshotRejectsClosures(t *testing.T) {
	k := NewKernel()
	k.Schedule(10, func(Cycle) {})
	var w snap.Writer
	if err := k.Snapshot(&w); err == nil {
		t.Fatal("closure event serialized without error")
	}
}

func TestKernelRestoreRejectsCorruptEvents(t *testing.T) {
	// An event behind the restored clock must be rejected.
	var w snap.Writer
	w.I64(100) // now
	w.I64(5)   // seq
	w.Uvarint(1)
	w.I64(50) // at < now
	w.I64(1)
	w.U32(7)
	w.I64(0)
	w.I64(0)
	w.I64(0)
	k := NewKernel()
	if err := k.Restore(snap.NewReader(w.Bytes())); err == nil {
		t.Fatal("event behind clock accepted")
	}
}
