package sim

import "sync"

// Gang is a persistent pool of worker goroutines for intra-simulation
// parallel phases (the network's region-parallel tick). It exists because
// the tick loop is allocation-free in steady state and runs millions of
// times: spawning goroutines per phase would allocate and pay start-up
// latency on every cycle, while a Gang dispatches a phase with one channel
// send per worker and one WaitGroup wait — no allocation at all.
//
// The body closure is fixed at construction: worker i runs body(i, phase)
// once per Run(phase). The channel send happens-before the body runs and
// body's completion happens-before Run returns (WaitGroup), so phase
// payloads written by the caller before Run are visible to workers and
// worker results are visible to the caller after — the memory-ordering
// contract the race detector checks on the sharded tick.
//
// RNG streams are deliberately NOT distributed to workers: every RNG draw
// in the simulator happens in serially executed code (kernel tickers,
// delivery callbacks), and the region phases a Gang runs are RNG-free by
// construction. Keeping stream ownership serial is what makes the sharded
// tick bit-identical to the serial one.
type Gang struct {
	body func(worker, phase int)
	cmds []chan int
	wg   sync.WaitGroup
}

// NewGang starts n workers that each run body(worker, phase) per Run call.
// n <= 0 returns a Gang with no workers (Run is then a no-op).
func NewGang(n int, body func(worker, phase int)) *Gang {
	g := &Gang{body: body}
	for i := 0; i < n; i++ {
		cmd := make(chan int, 1)
		g.cmds = append(g.cmds, cmd)
		go g.work(i, cmd)
	}
	return g
}

func (g *Gang) work(i int, cmd chan int) {
	for phase := range cmd {
		g.body(i, phase)
		g.wg.Done()
	}
}

// Workers returns the number of worker goroutines.
func (g *Gang) Workers() int { return len(g.cmds) }

// Kick dispatches a phase to every worker and returns immediately; the
// caller may do a share of the work itself before calling Wait.
func (g *Gang) Kick(phase int) {
	g.wg.Add(len(g.cmds))
	for _, cmd := range g.cmds {
		cmd <- phase
	}
}

// Wait blocks until every worker finished the phase dispatched by Kick.
func (g *Gang) Wait() { g.wg.Wait() }

// Run dispatches a phase and waits for completion.
func (g *Gang) Run(phase int) {
	g.Kick(phase)
	g.Wait()
}

// Stop terminates the workers. The Gang must be idle; Run/Kick must not be
// called afterwards.
func (g *Gang) Stop() {
	for _, cmd := range g.cmds {
		close(cmd)
	}
	g.cmds = nil
}
