package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between split streams", same)
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for n := 1; n < 40; n++ {
		for i := 0; i < 50; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := NewRNG(11)
	const trials = 200000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < trials; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / trials
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bernoulli(%v) frequency %.3f", p, got)
		}
	}
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) fired")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) did not fire")
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	var acc Accumulator
	for i := 0; i < 100000; i++ {
		acc.Add(r.NormFloat64())
	}
	if math.Abs(acc.Mean()) > 0.02 {
		t.Errorf("normal mean %.4f", acc.Mean())
	}
	if math.Abs(acc.StdDev()-1) > 0.02 {
		t.Errorf("normal stddev %.4f", acc.StdDev())
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(17)
	var acc Accumulator
	for i := 0; i < 100000; i++ {
		acc.Add(r.Exponential(20))
	}
	if math.Abs(acc.Mean()-20) > 0.5 {
		t.Errorf("exponential mean %.2f, want ~20", acc.Mean())
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%32) + 1
		p := NewRNG(seed).Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	r := NewRNG(19)
	counts := [3]int{}
	for i := 0; i < 60000; i++ {
		counts[r.Choice([]float64{1, 2, 3})]++
	}
	if !(counts[0] < counts[1] && counts[1] < counts[2]) {
		t.Fatalf("weighted choice ordering broken: %v", counts)
	}
	// Zero weights fall back to uniform.
	z := r.Choice([]float64{0, 0})
	if z != 0 && z != 1 {
		t.Fatalf("zero-weight choice out of range: %d", z)
	}
}
