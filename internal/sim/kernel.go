// Package sim provides the deterministic cycle-driven simulation kernel
// underlying the Adapt-NoC model: a clock, an ordered set of clocked
// components, a lightweight future-event list for timed callbacks, and a
// seeded, splittable random number generator.
//
// The kernel is cycle-driven rather than event-driven: network-on-chip
// models advance nearly every component nearly every cycle, so a priority
// queue of events would cost more than it saves. Components implement
// Ticker and are stepped in registration order once per cycle; the event
// list exists for sparse timed actions (reconfiguration waves, power-gating
// wake-ups, epoch boundaries).
package sim

import (
	"fmt"
	"sort"
)

// Cycle is a simulation timestamp in clock cycles.
type Cycle int64

// Ticker is a clocked component. Tick is invoked exactly once per cycle in
// the order components were registered. Components must communicate through
// latched state (write this cycle, visible next cycle) when ordering between
// them would otherwise matter.
type Ticker interface {
	// Tick advances the component by one cycle. now is the cycle being
	// executed.
	Tick(now Cycle)
}

// TickerFunc adapts a function to the Ticker interface.
type TickerFunc func(now Cycle)

// Tick implements Ticker.
func (f TickerFunc) Tick(now Cycle) { f(now) }

// event is a scheduled callback: either a closure (fn != nil) or a
// descriptor referencing a registered operation. Descriptor events are the
// serializable form — a checkpoint can write (at, seq, op, args) and a
// restored kernel rebinds op to the handler registered under the same ID,
// which a closure cannot offer.
type event struct {
	at   Cycle
	seq  int64 // FIFO tie-break for events scheduled at the same cycle
	fn   func(now Cycle)
	op   OpID
	args [3]int64
}

// OpID names a registered operation handler. IDs are global constants
// agreed between the packages that schedule them (see RegisterOp); 0 is
// reserved for "closure event".
type OpID uint32

// OpHandler executes a descriptor event. args carry the operation's
// integer operands (object IDs, cycles) exactly as scheduled.
type OpHandler func(now Cycle, args [3]int64)

// Kernel drives the simulation. The zero value is not usable; construct
// with NewKernel.
type Kernel struct {
	now     Cycle
	tickers []Ticker
	events  eventHeap
	seq     int64
	stopped bool
	ops     map[OpID]OpHandler
}

// NewKernel returns a kernel positioned at cycle 0 with no components.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current cycle. During a Tick or event callback it is the
// cycle being executed.
func (k *Kernel) Now() Cycle { return k.now }

// Register adds a clocked component. Components tick in registration order.
func (k *Kernel) Register(t Ticker) {
	if t == nil {
		panic("sim: Register(nil)")
	}
	k.tickers = append(k.tickers, t)
}

// Schedule runs fn at the given absolute cycle, before that cycle's tickers.
// Scheduling in the past (at < Now) panics: it would silently reorder time.
// Scheduling at the current cycle runs fn later within the same cycle only
// if the kernel has not yet dispatched events for it; from inside a tick it
// panics, so use At(0) offsets of at least 1 from tickers.
func (k *Kernel) Schedule(at Cycle, fn func(now Cycle)) {
	if fn == nil {
		panic("sim: Schedule(nil)")
	}
	if at < k.now {
		panic(fmt.Sprintf("sim: Schedule at cycle %d before now %d", at, k.now))
	}
	k.seq++
	k.events.push(event{at: at, seq: k.seq, fn: fn})
}

// After runs fn delay cycles from now. delay must be >= 1 when called from
// inside a Tick.
func (k *Kernel) After(delay Cycle, fn func(now Cycle)) {
	k.Schedule(k.now+delay, fn)
}

// RegisterOp binds an operation ID to its handler. Every component that
// schedules descriptor events registers its handlers at construction, so a
// freshly built simulation — including one being restored from a
// checkpoint — always carries the full registry before any event fires.
// Re-registering an ID panics: it would silently change what a pending
// event does.
func (k *Kernel) RegisterOp(op OpID, h OpHandler) {
	if op == 0 {
		panic("sim: RegisterOp(0) — 0 is reserved for closure events")
	}
	if h == nil {
		panic("sim: RegisterOp(nil handler)")
	}
	if k.ops == nil {
		k.ops = make(map[OpID]OpHandler)
	}
	if _, dup := k.ops[op]; dup {
		panic(fmt.Sprintf("sim: op %d registered twice", op))
	}
	k.ops[op] = h
}

// ScheduleOp schedules a descriptor event at the given absolute cycle with
// the same ordering semantics as Schedule. The op need not be registered
// yet at scheduling time, only by the time the event fires.
func (k *Kernel) ScheduleOp(at Cycle, op OpID, a0, a1, a2 int64) {
	if op == 0 {
		panic("sim: ScheduleOp(0)")
	}
	if at < k.now {
		panic(fmt.Sprintf("sim: ScheduleOp at cycle %d before now %d", at, k.now))
	}
	k.seq++
	k.events.push(event{at: at, seq: k.seq, op: op, args: [3]int64{a0, a1, a2}})
}

// AfterOp schedules a descriptor event delay cycles from now.
func (k *Kernel) AfterOp(delay Cycle, op OpID, a0, a1, a2 int64) {
	k.ScheduleOp(k.now+delay, op, a0, a1, a2)
}

// Stop makes the current Run return after finishing the current cycle.
func (k *Kernel) Stop() { k.stopped = true }

// Step executes exactly one cycle: pending events at the current cycle, then
// every ticker, then advances the clock.
func (k *Kernel) Step() {
	for len(k.events) > 0 && k.events[0].at == k.now {
		ev := k.events.pop()
		if ev.fn != nil {
			ev.fn(k.now)
			continue
		}
		h, ok := k.ops[ev.op]
		if !ok {
			panic(fmt.Sprintf("sim: event fired for unregistered op %d", ev.op))
		}
		h(k.now, ev.args)
	}
	if len(k.events) > 0 && k.events[0].at < k.now {
		panic("sim: event left behind the clock")
	}
	for _, t := range k.tickers {
		t.Tick(k.now)
	}
	k.now++
}

// Run executes cycles until the clock reaches until (exclusive) or Stop is
// called. It returns the cycle at which it stopped.
func (k *Kernel) Run(until Cycle) Cycle {
	k.stopped = false
	for k.now < until && !k.stopped {
		k.Step()
	}
	return k.now
}

// RunFor executes n additional cycles (or fewer if Stop is called).
func (k *Kernel) RunFor(n Cycle) Cycle { return k.Run(k.now + n) }

// eventHeap is a binary min-heap ordered by (at, seq). A hand-rolled heap
// avoids the interface boxing of container/heap on this hot-ish path.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}

// PendingEvents returns the number of scheduled events that have not yet
// fired — an observability hook for drivers deciding whether a simulation
// still has future work queued.
func (k *Kernel) PendingEvents() int { return len(k.events) }

// pendingCycles returns pending events' cycles in ascending order; used by
// tests.
func (k *Kernel) pendingCycles() []Cycle {
	out := make([]Cycle, len(k.events))
	for i, ev := range k.events {
		out[i] = ev.at
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
