package sim

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator collects a running mean/min/max/variance of a scalar series
// without storing samples (Welford's algorithm).
type Accumulator struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one sample.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of samples recorded.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the sample mean, or 0 with no samples.
func (a *Accumulator) Mean() float64 { return a.mean }

// Min returns the smallest sample, or 0 with no samples.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample, or 0 with no samples.
func (a *Accumulator) Max() float64 { return a.max }

// Sum returns mean × n.
func (a *Accumulator) Sum() float64 { return a.mean * float64(a.n) }

// Variance returns the unbiased sample variance.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Reset discards all samples.
func (a *Accumulator) Reset() { *a = Accumulator{} }

// String renders a one-line summary.
func (a *Accumulator) String() string {
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f max=%.3f sd=%.3f",
		a.n, a.Mean(), a.Min(), a.Max(), a.StdDev())
}

// Histogram is a fixed-bucket latency histogram with an overflow bucket,
// supporting percentile queries. Bucket i covers [i*width, (i+1)*width).
type Histogram struct {
	width   int64
	buckets []int64
	over    int64
	acc     Accumulator
}

// NewHistogram returns a histogram with nbuckets buckets of the given width.
func NewHistogram(width int64, nbuckets int) *Histogram {
	if width <= 0 || nbuckets <= 0 {
		panic("sim: invalid histogram shape")
	}
	return &Histogram{width: width, buckets: make([]int64, nbuckets)}
}

// Add records a sample (negative samples clamp to 0).
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	h.acc.Add(float64(v))
	i := v / h.width
	if i >= int64(len(h.buckets)) {
		h.over++
		return
	}
	h.buckets[i]++
}

// N returns the number of samples.
func (h *Histogram) N() int64 { return h.acc.N() }

// Mean returns the mean sample value.
func (h *Histogram) Mean() float64 { return h.acc.Mean() }

// Max returns the maximum sample value.
func (h *Histogram) Max() float64 { return h.acc.Max() }

// Percentile returns an upper bound for the p-th percentile (p in [0,100]).
// Samples in the overflow bucket report the observed maximum.
func (h *Histogram) Percentile(p float64) int64 {
	n := h.acc.N()
	if n == 0 {
		return 0
	}
	target := int64(math.Ceil(p / 100 * float64(n)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return int64(i+1) * h.width
		}
	}
	return int64(h.acc.Max())
}

// Overflow returns the number of samples beyond the last bucket.
func (h *Histogram) Overflow() int64 { return h.over }

// Buckets returns the bucket width, a copy of the per-bucket counts, and
// the overflow count — the raw shape that exporters (e.g. the serving
// daemon's Prometheus text exposition) need, which percentile queries
// alone cannot provide.
func (h *Histogram) Buckets() (width int64, counts []int64, overflow int64) {
	return h.width, append([]int64(nil), h.buckets...), h.over
}

// Summary renders count, mean, and the p50/p95/p99 tail on one line — the
// shape the observability layer prints per virtual network.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p95=%d p99=%d max=%.0f",
		h.N(), h.Mean(), h.Percentile(50), h.Percentile(95), h.Percentile(99), h.Max())
}

// Reset discards all samples but keeps the shape.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.over = 0
	h.acc.Reset()
}

// Quantile returns the q-quantile (q in [0,1]) of a float slice, for offline
// analysis in the experiment harness. The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if q <= 0 {
		return cp[0]
	}
	if q >= 1 {
		return cp[len(cp)-1]
	}
	pos := q * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(cp) {
		return cp[len(cp)-1]
	}
	return cp[lo]*(1-frac) + cp[lo+1]*frac
}
