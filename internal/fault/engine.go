package fault

import (
	"fmt"

	"adaptnoc/internal/fabric"
	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
)

// Kernel operation IDs owned by this package (range 400-499). Fault strikes,
// drain polls, and repairs are descriptor events so a checkpoint taken at
// any point of a fault's lifecycle resumes it exactly.
const (
	// opFaultStrike marks schedule event args[0] pending and starts (or
	// joins) a drain.
	opFaultStrike sim.OpID = 400 + iota
	// opFaultPoll re-checks drain progress each cycle until the network is
	// quiescent, then applies all pending strikes and repairs at once.
	opFaultPoll
	// opFaultRepair marks schedule event args[0] pending-for-repair and
	// starts (or joins) a drain.
	opFaultRepair
)

// Options tunes the engine.
type Options struct {
	// EscalateVCFaults treats every VC fault as a link fault. The OSCAR
	// baseline installs an opaque VC admission policy the engine cannot
	// inspect, so it cannot prove a partially masked port still admits
	// every packet class; escalation keeps the run deadlock-free.
	EscalateVCFaults bool
	// DrainTimeout bounds the wait for quiescence after a strike; 0 means
	// the fabric default (50000 cycles). Exceeding it panics — it would
	// mean packets are stuck before the damage even lands.
	DrainTimeout sim.Cycle
	// SetupCycles is the Ts table-setup stall charged after every damage
	// application; 0 means the paper's 14.
	SetupCycles int
}

// pendingAction is one strike or repair waiting for the drain to finish.
type pendingAction struct {
	idx    int
	repair bool
}

// chanRec remembers a severed channel so repair can rebuild it exactly.
type chanRec struct {
	from, to     noc.Endpoint
	kind         noc.ChannelKind
	latency      int
	tiles        int
	intermediate bool
}

// damageRec is the undo record of one applied event, in application order.
type damageRec struct {
	kind      Kind
	router    noc.NodeID
	port      int
	vcMask    uint64
	escalated bool
	chans     []chanRec
	locals    []noc.LocalAttachment
	disabled  bool
}

// bridgeRec is one adaptable-link bridge the healer added.
type bridgeRec struct {
	a, b         noc.NodeID
	aPort, bPort int
}

// Engine drives a fault schedule against one network. All damage lands at
// quiescent points: a strike freezes the fabric (no topology switches may
// race the repair wiring), waits for any in-flight reconfiguration to
// finish, gates every NI, polls for quiescence, and only then rewires.
//
// The wiring under faults is a pure function of (base topology, set of
// currently active events): every application resets to the captured base
// and re-applies the active set in schedule order. That makes runs
// deterministic and lets checkpoint restore rebuild the damaged wiring by
// replaying the active set against the fabric-replayed base.
type Engine struct {
	net    *noc.Network
	kernel *sim.Kernel
	fab    *fabric.Fabric // nil for static (non-Adapt) designs
	sched  []Event
	opts   Options

	// gen counts mutations of the engine state Snapshot serializes, so
	// delta checkpointing can skip a quiescent fault section (dropped-
	// packet counters live on the network and machine and are folded in
	// by Gen).
	gen uint64

	pending    []pendingAction
	active     []bool
	draining   bool
	drainStart sim.Cycle
	gatedAll   bool
	savedGates []bool

	// Captured base state (first strike) and the undo log of the currently
	// applied damage.
	baseTaken    bool
	baseTables   [][noc.NumVNets]*noc.RoutingTable
	baseDateline [][noc.NumVNets]bool
	baseDisabled []bool
	records      []damageRec
	bridges      []bridgeRec

	// Run counters.
	Strikes int64 // damage applications (strike events landed)
	Repairs int64 // repair events landed
}

// New validates a schedule, registers the engine's descriptor ops, and
// schedules every strike. fab may be nil (static designs have no
// reconfigurable fabric; recovery prunes their tables instead).
func New(net *noc.Network, kernel *sim.Kernel, fab *fabric.Fabric, sched []Event, opts Options) (*Engine, error) {
	if len(sched) > MaxEvents {
		return nil, fmt.Errorf("fault: schedule has %d events, limit %d", len(sched), MaxEvents)
	}
	for i := range sched {
		if ce := sched[i].Check(net.Cfg.NumNodes()); ce != nil {
			return nil, fmt.Errorf("fault: events[%d].%s: %s", i, ce.Field, ce.Msg)
		}
	}
	if opts.DrainTimeout == 0 {
		opts.DrainTimeout = 50000
	}
	if opts.SetupCycles == 0 {
		opts.SetupCycles = 14
	}
	e := &Engine{
		net: net, kernel: kernel, fab: fab,
		sched:      append([]Event(nil), sched...),
		opts:       opts,
		active:     make([]bool, len(sched)),
		savedGates: make([]bool, net.Cfg.NumNodes()),
	}
	kernel.RegisterOp(opFaultStrike, func(now sim.Cycle, args [3]int64) {
		e.gen++
		e.pending = append(e.pending, pendingAction{idx: int(args[0])})
		e.beginDrain(now)
	})
	kernel.RegisterOp(opFaultRepair, func(now sim.Cycle, args [3]int64) {
		e.gen++
		e.pending = append(e.pending, pendingAction{idx: int(args[0]), repair: true})
		e.beginDrain(now)
	})
	kernel.RegisterOp(opFaultPoll, func(now sim.Cycle, args [3]int64) {
		e.poll(now)
	})
	// Checkpoint restore discards construction-time schedules and replays
	// the blob's event list instead, so scheduling here is safe on both the
	// fresh and the restored path.
	for i := range e.sched {
		kernel.ScheduleOp(sim.Cycle(e.sched[i].Cycle), opFaultStrike, int64(i), 0, 0)
	}
	return e, nil
}

// Extend appends events to the schedule at runtime (fault campaigns replay
// one warmed checkpoint under many schedules). Every event must strike
// strictly after the current cycle.
func (e *Engine) Extend(events []Event) error {
	if len(e.sched)+len(events) > MaxEvents {
		return fmt.Errorf("fault: extending to %d events, limit %d", len(e.sched)+len(events), MaxEvents)
	}
	now := e.kernel.Now()
	for i := range events {
		if ce := events[i].Check(e.net.Cfg.NumNodes()); ce != nil {
			return fmt.Errorf("fault: events[%d].%s: %s", i, ce.Field, ce.Msg)
		}
		if events[i].Cycle <= int64(now) {
			return fmt.Errorf("fault: events[%d].cycle: %d is not after the current cycle %d", i, events[i].Cycle, now)
		}
	}
	base := len(e.sched)
	e.gen++
	e.sched = append(e.sched, events...)
	e.active = append(e.active, make([]bool, len(events))...)
	for i := range events {
		e.kernel.ScheduleOp(sim.Cycle(events[i].Cycle), opFaultStrike, int64(base+i), 0, 0)
	}
	return nil
}

// Gen returns the engine's snapshot-state generation. Dropped-packet
// totals are serialized in the fault section but accounted on the network,
// so they fold into the generation directly.
func (e *Engine) Gen() uint64 {
	return e.gen + uint64(e.net.TotalDropped) + uint64(e.net.TotalFlitsDropped)
}

// Schedule returns the full event schedule (do not mutate).
func (e *Engine) Schedule() []Event { return e.sched }

// Draining reports whether a strike or repair is waiting for quiescence.
func (e *Engine) Draining() bool { return e.draining }

// ActiveCount returns the number of currently applied (unrepaired) events.
func (e *Engine) ActiveCount() int {
	c := 0
	for _, a := range e.active {
		if a {
			c++
		}
	}
	return c
}

// beginDrain starts the drain toward the next application point. Joining an
// ongoing drain is free: the pending action folds into the same apply.
func (e *Engine) beginDrain(now sim.Cycle) {
	if e.draining {
		return
	}
	e.gen++
	e.draining = true
	e.drainStart = now
	if e.fab != nil {
		// Permanently freeze topology switching: repair wiring and the
		// reconfiguration protocol must never race over the same ports.
		e.fab.Freeze()
	}
	e.kernel.AfterOp(1, opFaultPoll, 0, 0, 0)
}

// poll advances the drain state machine one cycle: wait for any in-flight
// reconfiguration to finish, then gate all NIs, then wait for the network
// to empty, then apply.
func (e *Engine) poll(now sim.Cycle) {
	if !e.draining {
		return // stale poll after an apply in the same cycle
	}
	if now > e.drainStart+e.opts.DrainTimeout {
		panic(fmt.Sprintf("fault: network failed to drain within %d cycles of the strike at %d",
			e.opts.DrainTimeout, e.drainStart))
	}
	if !e.fabricSettled() {
		e.repoll()
		return
	}
	if !e.gatedAll {
		for i, ni := range e.net.NIs() {
			e.savedGates[i] = ni.Gated()
			ni.SetGated(true)
		}
		e.gen++
		e.gatedAll = true
		e.repoll()
		return
	}
	if !e.quiet() {
		e.repoll()
		return
	}
	e.apply(now)
}

func (e *Engine) repoll() { e.kernel.AfterOp(1, opFaultPoll, 0, 0, 0) }

// fabricSettled reports whether no subNoC is mid-reconfiguration. The
// fabric is frozen, so once settled it stays settled.
func (e *Engine) fabricSettled() bool {
	if e.fab == nil {
		return true
	}
	for _, sn := range e.fab.SubNoCs() {
		if sn.State() != fabric.StateActive {
			return false
		}
	}
	return true
}

// quiet reports full network quiescence: no flit buffered or in flight, no
// NI mid-stream, and no credit still travelling on any channel (channels
// must be idle before they can be severed).
func (e *Engine) quiet() bool {
	if !e.net.Quiescent() {
		return false
	}
	for _, ch := range e.net.Channels() {
		if ch.Busy() {
			return false
		}
	}
	return true
}

// apply lands every pending strike and repair on the drained network:
// reset to the captured base, fold the pending set into the active set,
// re-apply all active damage in schedule order, heal, arm the drop
// accounting, sweep queues the new topology cannot serve, and reopen
// injection.
func (e *Engine) apply(now sim.Cycle) {
	if !e.baseTaken {
		e.captureBase()
	}
	e.resetToBase()
	for _, pa := range e.pending {
		if pa.repair {
			if e.active[pa.idx] {
				e.active[pa.idx] = false
				e.Repairs++
			}
			continue
		}
		e.active[pa.idx] = true
		e.Strikes++
		if rep := e.sched[pa.idx].Repair; rep > 0 {
			e.kernel.AfterOp(sim.Cycle(rep), opFaultRepair, int64(pa.idx), 0, 0)
		}
	}
	e.pending = e.pending[:0]
	any := false
	for i := range e.active {
		if e.active[i] {
			e.applyEvent(i)
			any = true
		}
	}
	if any {
		e.heal()
	}
	e.stallAll(now)
	e.net.SetFaultGuard(true)
	e.net.DropUnroutable(now)
	for i, g := range e.savedGates {
		e.net.NI(noc.NodeID(i)).SetGated(g)
	}
	e.gen++
	e.gatedAll = false
	e.draining = false
}

// captureBase records the pre-fault wiring's routing state. The fabric is
// frozen before the first apply, so this base is stable for the rest of
// the run — and checkpoint restore recaptures an identical base from the
// fabric-replayed wiring.
func (e *Engine) captureBase() {
	num := e.net.Cfg.NumNodes()
	e.baseTables = make([][noc.NumVNets]*noc.RoutingTable, num)
	e.baseDateline = make([][noc.NumVNets]bool, num)
	e.baseDisabled = make([]bool, num)
	for i := 0; i < num; i++ {
		r := e.net.Router(noc.NodeID(i))
		for v := noc.VNet(0); v < noc.NumVNets; v++ {
			e.baseTables[i][v] = r.Table(v)
			e.baseDateline[i][v] = r.UsesDateline(v)
		}
		e.baseDisabled[i] = r.Disabled()
	}
	e.gen++
	e.baseTaken = true
}

// resetToBase undoes every applied bridge and damage record, restoring the
// exact base wiring, tables, and dateline flags. Runs on a quiescent
// network only.
func (e *Engine) resetToBase() {
	for i := len(e.bridges) - 1; i >= 0; i-- {
		br := e.bridges[i]
		e.net.DisconnectOut(br.a, br.aPort)
		e.net.DisconnectOut(br.b, br.bPort)
	}
	e.bridges = e.bridges[:0]
	for i := len(e.records) - 1; i >= 0; i-- {
		rec := &e.records[i]
		if rec.disabled {
			e.net.Router(rec.router).SetDisabled(false)
		}
		for _, cr := range rec.chans {
			ch := e.net.Connect(cr.from, cr.to, cr.kind, cr.latency, cr.tiles)
			ch.Intermediate = cr.intermediate
		}
		for _, la := range rec.locals {
			if la.WithEjection {
				e.net.AttachLocalPort(rec.router, la.Port, la.Tiles, la.Latency)
			} else {
				e.net.AttachInjectionPort(rec.router, la.Port, la.Tiles, la.Latency)
			}
		}
		if rec.vcMask != 0 {
			for vc := 0; vc < 64; vc++ {
				if rec.vcMask&(1<<uint(vc)) != 0 {
					e.net.Router(rec.router).SetVCFault(rec.port, vc, false)
				}
			}
		}
	}
	e.records = e.records[:0]
	for i := range e.baseTables {
		r := e.net.Router(noc.NodeID(i))
		for v := noc.VNet(0); v < noc.NumVNets; v++ {
			r.SetTable(v, e.baseTables[i][v])
			r.SetDatelineVNet(v, e.baseDateline[i][v])
		}
	}
}

// applyEvent applies one scheduled event's damage, appending its undo
// record. Damage is applied against the (base + earlier active events)
// wiring, so the result is a pure function of the active set.
func (e *Engine) applyEvent(idx int) {
	ev := e.sched[idx]
	switch ev.Kind {
	case KindLink:
		rec := damageRec{kind: KindLink, router: ev.Router, port: ev.Port}
		e.cutLink(&rec, ev.Router, ev.Port)
		e.records = append(e.records, rec)
	case KindRouter:
		e.damageRouter(ev.Router)
	case KindVC:
		e.damageVC(ev.Router, ev.Port, ev.VC)
	}
}

// cutLink severs the router-to-router channel leaving (router, port) and
// its reverse, recording both. A port with no router-to-router channel
// (local, ejection, already severed) is a deterministic no-op.
func (e *Engine) cutLink(rec *damageRec, router noc.NodeID, port int) {
	r := e.net.Router(router)
	if port >= r.NumPorts() {
		return
	}
	if out := r.OutputChannel(port); out != nil && out.From.Kind == noc.EndRouter && out.To.Kind == noc.EndRouter {
		rec.chans = append(rec.chans, chanRec{from: out.From, to: out.To, kind: out.Kind,
			latency: out.Latency, tiles: out.Tiles, intermediate: out.Intermediate})
		e.net.DisconnectOut(router, port)
	}
	if in := r.InputChannel(port); in != nil && in.From.Kind == noc.EndRouter && in.To.Kind == noc.EndRouter {
		rec.chans = append(rec.chans, chanRec{from: in.From, to: in.To, kind: in.Kind,
			latency: in.Latency, tiles: in.Tiles, intermediate: in.Intermediate})
		e.net.DisconnectOut(in.From.Router, in.From.Port)
	}
}

// damageRouter powers a router off: every incident router-to-router channel
// is severed, the local attachments detached, and the router disabled. A
// router that is already powered off (a cmesh spare, or struck twice) is a
// no-op record.
func (e *Engine) damageRouter(id noc.NodeID) {
	r := e.net.Router(id)
	rec := damageRec{kind: KindRouter, router: id}
	if r.Disabled() {
		e.records = append(e.records, rec)
		return
	}
	for p := 0; p < r.NumPorts(); p++ {
		if out := r.OutputChannel(p); out != nil && out.From.Kind == noc.EndRouter && out.To.Kind == noc.EndRouter {
			rec.chans = append(rec.chans, chanRec{from: out.From, to: out.To, kind: out.Kind,
				latency: out.Latency, tiles: out.Tiles, intermediate: out.Intermediate})
			e.net.DisconnectOut(id, p)
		}
	}
	for p := 0; p < r.NumPorts(); p++ {
		if in := r.InputChannel(p); in != nil && in.From.Kind == noc.EndRouter && in.To.Kind == noc.EndRouter {
			rec.chans = append(rec.chans, chanRec{from: in.From, to: in.To, kind: in.Kind,
				latency: in.Latency, tiles: in.Tiles, intermediate: in.Intermediate})
			e.net.DisconnectOut(in.From.Router, in.From.Port)
		}
	}
	rec.locals = e.net.LocalAttachments(id)
	e.net.DetachLocal(id)
	r.SetDisabled(true)
	rec.disabled = true
	e.records = append(e.records, rec)
}

// damageVC takes one flat output VC out of service, escalating to a link
// cut when the masked port would strand a whole virtual network (or a
// dateline class), or when Options.EscalateVCFaults demands it.
func (e *Engine) damageVC(id noc.NodeID, port, vc int) {
	r := e.net.Router(id)
	rec := damageRec{kind: KindVC, router: id, port: port}
	if port >= r.NumPorts() {
		e.records = append(e.records, rec)
		return
	}
	out := r.OutputChannel(port)
	if out == nil || out.From.Kind != noc.EndRouter || out.To.Kind != noc.EndRouter {
		e.records = append(e.records, rec)
		return
	}
	flat := vc % (noc.NumVNets * e.net.Cfg.VCsPerVNet)
	maskAfter := r.VCFaultMask(port) | 1<<uint(flat)
	if e.opts.EscalateVCFaults || e.maskFatal(id, maskAfter) {
		rec.escalated = true
		e.cutLink(&rec, id, port)
		e.records = append(e.records, rec)
		return
	}
	r.SetVCFault(port, flat, true)
	rec.vcMask = 1 << uint(flat)
	e.records = append(e.records, rec)
}

// maskFatal reports whether a dead-VC mask would strand packets on the
// port: a whole virtual network's flat range dead, or — under the base
// dateline classing — a whole dateline half dead, leaves some packet class
// with no grantable VC.
func (e *Engine) maskFatal(id noc.NodeID, mask uint64) bool {
	vcs := e.net.Cfg.VCsPerVNet
	for v := 0; v < noc.NumVNets; v++ {
		lo := v * vcs
		full := uint64(0)
		for k := 0; k < vcs; k++ {
			full |= 1 << uint(lo+k)
		}
		if mask&full == full {
			return true
		}
		if vcs > 1 && e.baseDateline[id][v] {
			half := vcs / 2
			lowHalf, highHalf := uint64(0), uint64(0)
			for k := 0; k < half; k++ {
				lowHalf |= 1 << uint(lo+k)
			}
			for k := half; k < vcs; k++ {
				highHalf |= 1 << uint(lo+k)
			}
			if mask&lowHalf == lowHalf || mask&highHalf == highHalf {
				return true
			}
		}
	}
	return false
}

// stallAll charges the Ts table-setup window to every live router after an
// application (tables and wiring just changed under it).
func (e *Engine) stallAll(now sim.Cycle) {
	for _, r := range e.net.Routers() {
		if !r.Disabled() {
			r.StallTables(now, e.opts.SetupCycles)
		}
	}
}
