package fault

import (
	"fmt"

	"adaptnoc/internal/sim"
	"adaptnoc/internal/snap"
)

// Checkpoint support. The engine's serialized state is tiny — the drain
// state machine, the pending and active event sets, and the drop counters —
// because the damaged wiring itself is reconstructible: the fabric is
// frozen from the first strike, so the fabric section replays the exact
// base topology, and Restore re-applies the active events against it (the
// same pure function as a live apply). The network section restored
// afterwards then overlays dynamic state (and validates the channel set,
// which only matches if this replay produced identical wiring).

// Snapshot writes the engine's dynamic state.
func (e *Engine) Snapshot(w *snap.Writer) {
	w.Int(1) // version
	w.Bool(e.fab != nil && e.fab.Frozen())
	w.Bool(e.draining)
	w.I64(int64(e.drainStart))
	w.Bool(e.gatedAll)
	w.Uvarint(uint64(len(e.savedGates)))
	for _, g := range e.savedGates {
		w.Bool(g)
	}
	w.Uvarint(uint64(len(e.pending)))
	for _, pa := range e.pending {
		w.Int(pa.idx)
		w.Bool(pa.repair)
	}
	w.Uvarint(uint64(len(e.active)))
	for _, a := range e.active {
		w.Bool(a)
	}
	w.Bool(e.baseTaken)
	w.I64(e.Strikes)
	w.I64(e.Repairs)
	w.I64(e.net.TotalDropped)
	w.I64(e.net.TotalFlitsDropped)
}

// Restore overlays a Snapshot onto a freshly constructed engine carrying
// the same schedule, re-applying the active damage against the
// fabric-replayed base wiring. Must run after the fabric section and
// before the network section.
func (e *Engine) Restore(r *snap.Reader) error {
	ver, err := r.Int()
	if err != nil {
		return err
	}
	if ver != 1 {
		return fmt.Errorf("fault: unknown fault section version %d", ver)
	}
	frozen, err := r.Bool()
	if err != nil {
		return err
	}
	draining, err := r.Bool()
	if err != nil {
		return err
	}
	drainStart, err := r.I64()
	if err != nil {
		return err
	}
	gatedAll, err := r.Bool()
	if err != nil {
		return err
	}
	ngates, err := r.Count(1)
	if err != nil {
		return err
	}
	if ngates != len(e.savedGates) {
		return fmt.Errorf("fault: checkpoint has %d NI gates, network has %d", ngates, len(e.savedGates))
	}
	for i := 0; i < ngates; i++ {
		if e.savedGates[i], err = r.Bool(); err != nil {
			return err
		}
	}
	npend, err := r.Count(2)
	if err != nil {
		return err
	}
	pending := make([]pendingAction, npend)
	for i := range pending {
		if pending[i].idx, err = r.Int(); err != nil {
			return err
		}
		if pending[i].idx < 0 || pending[i].idx >= len(e.sched) {
			return fmt.Errorf("fault: pending action references event %d of %d", pending[i].idx, len(e.sched))
		}
		if pending[i].repair, err = r.Bool(); err != nil {
			return err
		}
	}
	nactive, err := r.Count(1)
	if err != nil {
		return err
	}
	if nactive != len(e.sched) {
		return fmt.Errorf("fault: checkpoint has %d fault events, schedule has %d", nactive, len(e.sched))
	}
	active := make([]bool, nactive)
	for i := range active {
		if active[i], err = r.Bool(); err != nil {
			return err
		}
	}
	baseTaken, err := r.Bool()
	if err != nil {
		return err
	}
	strikes, err := r.I64()
	if err != nil {
		return err
	}
	repairs, err := r.I64()
	if err != nil {
		return err
	}
	dropped, err := r.I64()
	if err != nil {
		return err
	}
	flitsDropped, err := r.I64()
	if err != nil {
		return err
	}

	if frozen && e.fab != nil {
		e.fab.Freeze()
	}
	e.draining = draining
	e.drainStart = sim.Cycle(drainStart)
	e.gatedAll = gatedAll
	e.pending = pending
	e.active = active
	e.Strikes = strikes
	e.Repairs = repairs
	if baseTaken {
		e.captureBase()
		any := false
		for i := range e.active {
			if e.active[i] {
				e.applyEvent(i)
				any = true
			}
		}
		if any {
			e.heal()
		}
		e.net.SetFaultGuard(true)
	}
	e.net.TotalDropped = dropped
	e.net.TotalFlitsDropped = flitsDropped
	return nil
}
