// Package fault implements a deterministic, seedable fault model for the
// Adapt-NoC fabric: transient and permanent link, router, and virtual-channel
// failures expressed as a schedule of strike events, injected mid-run through
// the reconfiguration machinery's drain discipline, with recovery routing
// that re-allocates adaptable links around dead regions (Adapt-NoC designs)
// or prunes the static tables to the surviving reachable set (baselines).
//
// Every fault application happens on a fully drained, injection-gated
// network, so damage never races in-flight flits; packets the damaged
// topology can no longer deliver are explicitly dropped-and-accounted
// (noc.Network.TotalDropped), never silently lost, keeping the obs.Verify
// conservation invariants intact under any schedule.
package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
)

// Kind classifies what a fault event takes out of service.
type Kind int

// Fault kinds. KindLink is the zero value so a schedule entry without a
// kind is a plain link failure.
const (
	// KindLink severs the bidirectional router-to-router link on the named
	// router port (both directions: a broken wire bundle loses its paired
	// return wires too). On a port with no router-to-router channel the
	// event is a deterministic no-op.
	KindLink Kind = iota
	// KindRouter powers the router off: every incident router-to-router
	// channel is severed and its local NI attachments are detached. On an
	// already powered-off router (a cmesh spare) the event is a no-op.
	KindRouter
	// KindVC takes one output virtual channel out of service (the VC
	// allocator never grants it). A VC failure that would strand a whole
	// virtual network — or a whole dateline class — on the port escalates
	// to a link failure.
	KindVC
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindLink:
		return "link"
	case KindRouter:
		return "router"
	case KindVC:
		return "vc"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// MarshalText implements encoding.TextMarshaler for the JSON wire format.
func (k Kind) MarshalText() ([]byte, error) {
	switch k {
	case KindLink, KindRouter, KindVC:
		return []byte(k.String()), nil
	}
	return nil, fmt.Errorf("fault: cannot marshal kind %d", int(k))
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (k *Kind) UnmarshalText(b []byte) error {
	switch string(b) {
	case "link":
		*k = KindLink
	case "router":
		*k = KindRouter
	case "vc":
		*k = KindVC
	default:
		return fmt.Errorf("fault: unknown kind %q (use link, router, or vc)", b)
	}
	return nil
}

// Event is one scheduled fault. Events are part of the simulation Config
// and of checkpoint blobs, so a run (or a replayed campaign) is a pure
// function of (config, schedule, seed).
type Event struct {
	// Cycle is the strike time. The damage lands at the first quiescent
	// point at or after this cycle (the engine drains the network first).
	Cycle int64 `json:"cycle"`
	// Kind selects link, router, or vc.
	Kind Kind `json:"kind"`
	// Router is the faulty router (for KindLink/KindVC, the upstream side
	// of the faulty port).
	Router noc.NodeID `json:"router"`
	// Port is the faulty output port (KindLink, KindVC).
	Port int `json:"port,omitempty"`
	// VC is the faulty flat virtual channel on the port (KindVC); values
	// beyond the configured flat VC count wrap modulo that count.
	VC int `json:"vc,omitempty"`
	// Repair makes the fault transient: the component returns to service
	// Repair cycles after the damage lands. Zero means permanent.
	Repair int64 `json:"repair,omitempty"`
}

// String implements fmt.Stringer.
func (ev Event) String() string {
	s := fmt.Sprintf("@%d %v r%d", ev.Cycle, ev.Kind, ev.Router)
	if ev.Kind != KindRouter {
		s += fmt.Sprintf(".p%d", ev.Port)
	}
	if ev.Kind == KindVC {
		s += fmt.Sprintf(".vc%d", ev.VC)
	}
	if ev.Repair > 0 {
		s += fmt.Sprintf(" repair+%d", ev.Repair)
	}
	return s
}

// CheckError reports one invalid Event field; Field is the JSON field name
// relative to the event, so callers can prefix it with their own path.
type CheckError struct {
	Field string
	Msg   string
	Hint  string
}

// Error implements error.
func (e *CheckError) Error() string { return fmt.Sprintf("%s: %s", e.Field, e.Msg) }

// Check validates one event. numNodes bounds Router when positive; pass 0
// to defer the topology bound (schedules parsed before a config is known).
func (ev Event) Check(numNodes int) *CheckError {
	switch {
	case ev.Cycle < 1:
		return &CheckError{Field: "cycle", Msg: fmt.Sprintf("must be >= 1, got %d", ev.Cycle),
			Hint: "faults strike mid-run; cycle 0 is construction time"}
	case ev.Kind < KindLink || ev.Kind > KindVC:
		return &CheckError{Field: "kind", Msg: fmt.Sprintf("unknown kind %d", int(ev.Kind)),
			Hint: "use link, router, or vc"}
	case ev.Router < 0:
		return &CheckError{Field: "router", Msg: fmt.Sprintf("negative router %d", ev.Router)}
	case numNodes > 0 && int(ev.Router) >= numNodes:
		return &CheckError{Field: "router", Msg: fmt.Sprintf("router %d outside the %d-tile grid", ev.Router, numNodes),
			Hint: "routers are numbered row-major, 0..width*height-1"}
	case ev.Port < 0 || ev.Port >= 16:
		return &CheckError{Field: "port", Msg: fmt.Sprintf("port %d out of range [0,16)", ev.Port),
			Hint: "mesh direction ports are 1 (east), 2 (west), 3 (north), 4 (south)"}
	case ev.VC < 0 || ev.VC >= 64:
		return &CheckError{Field: "vc", Msg: fmt.Sprintf("vc %d out of range [0,64)", ev.VC)}
	case ev.Repair < 0:
		return &CheckError{Field: "repair", Msg: fmt.Sprintf("negative repair delay %d", ev.Repair),
			Hint: "0 means permanent; a positive value repairs that many cycles after the strike lands"}
	}
	return nil
}

// Schedule wire-format limits. MaxEvents also caps Config.Faults.
const (
	MaxEvents        = 4096
	maxScheduleBytes = 1 << 20
)

// ParseSchedule decodes a JSON fault schedule (an array of events) with
// strict field checking. Hostile input errors out; it never panics and the
// decode allocation is bounded by the input-size cap.
func ParseSchedule(data []byte) ([]Event, error) {
	if len(data) > maxScheduleBytes {
		return nil, fmt.Errorf("fault: schedule is %d bytes, limit %d", len(data), maxScheduleBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var events []Event
	if err := dec.Decode(&events); err != nil {
		return nil, fmt.Errorf("fault: invalid schedule: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("fault: trailing data after schedule")
	}
	if len(events) > MaxEvents {
		return nil, fmt.Errorf("fault: schedule has %d events, limit %d", len(events), MaxEvents)
	}
	for i := range events {
		if ce := events[i].Check(0); ce != nil {
			return nil, fmt.Errorf("fault: events[%d].%s: %s", i, ce.Field, ce.Msg)
		}
	}
	return events, nil
}

// Generate produces a deterministic random schedule of n faults for a w×h
// grid over a run of horizon cycles: roughly half link failures, 30% router
// failures, 20% VC failures, with about 30% of events transient. Strikes
// land in the [horizon/10, horizon/2] window so the network has warmed up
// and the damage has time to show in the latency and survival numbers.
func Generate(n int, seed uint64, w, h int, horizon int64) []Event {
	rng := sim.NewRNG(seed ^ 0xfa017)
	if horizon < 20 {
		horizon = 20
	}
	lo, hi := horizon/10, horizon/2
	events := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		ev := Event{Cycle: lo + int64(rng.Intn(int(hi-lo+1)))}
		switch roll := rng.Intn(10); {
		case roll < 5:
			ev.Kind = KindLink
			ev.Router = noc.NodeID(rng.Intn(w * h))
			ev.Port = 1 + rng.Intn(4)
		case roll < 8:
			ev.Kind = KindRouter
			ev.Router = noc.NodeID(rng.Intn(w * h))
		default:
			ev.Kind = KindVC
			ev.Router = noc.NodeID(rng.Intn(w * h))
			ev.Port = 1 + rng.Intn(4)
			ev.VC = rng.Intn(4)
		}
		if rng.Intn(10) < 3 {
			ev.Repair = horizon/10 + int64(rng.Intn(int(horizon/5)+1))
		}
		events = append(events, ev)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Cycle < events[j].Cycle })
	return events
}
