package fault

import (
	"adaptnoc/internal/noc"
)

// heal rebuilds routing around the applied damage. Adapt-NoC designs use
// their adaptable links as spare wires: bridges span runs of dead routers
// along each row and column, then a BFS spanning forest over the surviving
// graph gives every connected component unique (hence deadlock-free) tree
// routes. Static designs cannot rewire; their base tables are pruned to the
// fixpoint of reachability, so every remaining entry still leads to its
// destination and no packet is ever routed into a hole — a pruned subset of
// a deadlock-free routing function stays deadlock-free.
func (e *Engine) heal() {
	if e.fab != nil {
		e.addBridges()
		e.buildTreeTables()
		return
	}
	e.pruneTables()
}

// faultDead reports whether a router was powered off by a fault (as
// opposed to a base-disabled cmesh spare, which bridges must not span —
// the spare's ports were never wired and its tiles answer elsewhere).
func (e *Engine) faultDead(id noc.NodeID) bool {
	return e.net.Router(id).Disabled() && !e.baseDisabled[id]
}

// addBridges scans every row and column for maximal runs of fault-dead
// routers flanked by live ones and spans each with a bidirectional
// adaptable-link segment — the paper's adaptable links reused as spare
// wires (the fabric is frozen, so no subNoC will contend for them).
func (e *Engine) addBridges() {
	w, h := e.net.Cfg.Width, e.net.Cfg.Height
	id := func(x, y int) noc.NodeID { return noc.NodeID(y*w + x) }
	live := func(n noc.NodeID) bool { return !e.net.Router(n).Disabled() }
	for y := 0; y < h; y++ {
		for x := 0; x < w; {
			if !live(id(x, y)) {
				x++
				continue
			}
			j := x + 1
			for j < w && e.faultDead(id(j, y)) {
				j++
			}
			if j > x+1 && j < w && live(id(j, y)) {
				e.tryBridge(id(x, y), id(j, y), j-x)
			}
			x = j
		}
	}
	for x := 0; x < w; x++ {
		for y := 0; y < h; {
			if !live(id(x, y)) {
				y++
				continue
			}
			j := y + 1
			for j < h && e.faultDead(id(x, j)) {
				j++
			}
			if j > y+1 && j < h && live(id(x, j)) {
				e.tryBridge(id(x, y), id(x, j), j-y)
			}
			y = j
		}
	}
}

// tryBridge wires an adaptable-link segment of the given tile span between
// two live routers, using the first free adaptable mux port (5..8) on each
// side. With no free port on either side the bridge is deterministically
// skipped — the wiring budget is one adaptable link per row and column, so
// contention means that budget is spent.
func (e *Engine) tryBridge(a, b noc.NodeID, span int) {
	aPort := e.freeAdaptPort(a)
	bPort := e.freeAdaptPort(b)
	if aPort < 0 || bPort < 0 {
		return
	}
	lat := e.net.Cfg.LongLinkLatency(span)
	e.net.ConnectBidir(a, aPort, b, bPort, noc.ChanAdaptable, lat, span)
	e.bridges = append(e.bridges, bridgeRec{a: a, b: b, aPort: aPort, bPort: bPort})
}

// freeAdaptPort returns the first adaptable mux port (5..8) with neither an
// input nor an output channel, or -1.
func (e *Engine) freeAdaptPort(id noc.NodeID) int {
	r := e.net.Router(id)
	hi := r.NumPorts()
	if hi > 9 {
		hi = 9
	}
	for p := 5; p < hi; p++ {
		if r.OutputChannel(p) == nil && r.InputChannel(p) == nil {
			return p
		}
	}
	return -1
}

// buildTreeTables installs BFS spanning-forest routing over the surviving
// (bridged) graph: one shared table per live router for both virtual
// networks, each destination routed along the unique tree path. Unique
// paths are suffix-consistent, so per-hop table routing composes, and the
// channel dependency graph of a tree is acyclic, so the routing is
// deadlock-free without dateline classing (which is disabled).
func (e *Engine) buildTreeTables() {
	n := e.net
	num := n.Cfg.NumNodes()
	parent := make([]int32, num)  // BFS parent, -1 for roots and dead routers
	upPort := make([]int8, num)   // port at the node toward its parent
	downPort := make([]int8, num) // port at the parent toward the node
	comp := make([]int32, num)    // connected component, -1 for dead routers
	for i := range parent {
		parent[i] = -1
		comp[i] = -1
	}
	var comps [][]noc.NodeID
	queue := make([]noc.NodeID, 0, num)
	for root := 0; root < num; root++ {
		if comp[root] >= 0 || n.Router(noc.NodeID(root)).Disabled() {
			continue
		}
		cid := int32(len(comps))
		members := []noc.NodeID{noc.NodeID(root)}
		comp[root] = cid
		queue = append(queue[:0], noc.NodeID(root))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			ru := n.Router(u)
			for p := 0; p < ru.NumPorts(); p++ {
				ch := ru.OutputChannel(p)
				if ch == nil || ch.To.Kind != noc.EndRouter {
					continue
				}
				v := ch.To.Router
				if comp[v] >= 0 || n.Router(v).Disabled() {
					continue
				}
				// Tree edges must be bidirectional: require the reciprocal
				// channel back from v on the same port pair.
				back := n.Router(v).OutputChannel(ch.To.Port)
				if back == nil || back.To.Kind != noc.EndRouter || back.To.Router != u {
					continue
				}
				comp[v] = cid
				parent[v] = int32(u)
				downPort[v] = int8(p)
				upPort[v] = int8(ch.To.Port)
				members = append(members, v)
				queue = append(queue, v)
			}
		}
		comps = append(comps, members)
	}

	tables := make([]*noc.RoutingTable, num)
	for _, members := range comps {
		for _, u := range members {
			tables[u] = noc.NewRoutingTable(num)
		}
	}
	for t := 0; t < num; t++ {
		dst := noc.NodeID(t)
		s := n.ServingRouter(dst)
		if s < 0 || tables[s] == nil {
			continue // tile detached by a router fault: unreachable by design
		}
		// Default: route toward the root, then overwrite the ancestor chain
		// of the serving router so it routes down toward s instead.
		for _, u := range comps[comp[s]] {
			if u != s && parent[u] >= 0 {
				tables[u].Set(dst, int(upPort[u]), noc.ClassKeep)
			}
		}
		for cur := s; parent[cur] >= 0; {
			par := noc.NodeID(parent[cur])
			tables[par].Set(dst, int(downPort[cur]), noc.ClassKeep)
			cur = par
		}
		for _, la := range n.LocalAttachments(s) {
			if !la.WithEjection {
				continue
			}
			for _, tile := range la.Tiles {
				if tile == dst {
					tables[s].Set(dst, la.Port, noc.ClassKeep)
					break
				}
			}
		}
	}
	for _, members := range comps {
		for _, u := range members {
			r := n.Router(u)
			for v := noc.VNet(0); v < noc.NumVNets; v++ {
				r.SetTable(v, tables[u])
				r.SetDatelineVNet(v, false)
			}
		}
	}
}

// pruneTables shrinks every static design's base tables to the fixpoint of
// deliverability: an entry survives only if its output channel still exists
// and either ejects to the destination's serving NI or hops to a live
// router whose own entry for that destination survives. Packets the pruned
// tables cannot route are dropped-and-accounted at enqueue instead of
// wandering into a hole.
func (e *Engine) pruneTables() {
	n := e.net
	num := n.Cfg.NumNodes()
	for v := noc.VNet(0); v < noc.NumVNets; v++ {
		valid := make([][]bool, num)
		for i := range valid {
			valid[i] = make([]bool, num)
		}
		for rid := 0; rid < num; rid++ {
			r := n.Router(noc.NodeID(rid))
			if r.Disabled() || e.baseTables[rid][v] == nil {
				continue
			}
			for dst := 0; dst < num; dst++ {
				ent, ok := e.baseTables[rid][v].Lookup(noc.NodeID(dst))
				if !ok {
					continue
				}
				ch := r.OutputChannel(int(ent.OutPort))
				if ch != nil && ch.To.Kind == noc.EndNI && n.ServingRouter(noc.NodeID(dst)) == noc.NodeID(rid) {
					valid[rid][dst] = true
				}
			}
		}
		for changed := true; changed; {
			changed = false
			for rid := 0; rid < num; rid++ {
				r := n.Router(noc.NodeID(rid))
				if r.Disabled() || e.baseTables[rid][v] == nil {
					continue
				}
				for dst := 0; dst < num; dst++ {
					if valid[rid][dst] {
						continue
					}
					ent, ok := e.baseTables[rid][v].Lookup(noc.NodeID(dst))
					if !ok {
						continue
					}
					ch := r.OutputChannel(int(ent.OutPort))
					if ch == nil || ch.To.Kind != noc.EndRouter {
						continue
					}
					next := ch.To.Router
					if !n.Router(next).Disabled() && valid[next][dst] {
						valid[rid][dst] = true
						changed = true
					}
				}
			}
		}
		for rid := 0; rid < num; rid++ {
			r := n.Router(noc.NodeID(rid))
			if r.Disabled() || e.baseTables[rid][v] == nil {
				continue
			}
			tbl := noc.NewRoutingTable(num)
			for dst := 0; dst < num; dst++ {
				if !valid[rid][dst] {
					continue
				}
				ent, _ := e.baseTables[rid][v].Lookup(noc.NodeID(dst))
				tbl.Set(noc.NodeID(dst), int(ent.OutPort), ent.Class)
			}
			r.SetTable(v, tbl)
		}
	}
}
