package fault

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestKindTextRoundTrip(t *testing.T) {
	for k := KindLink; k <= KindVC; k++ {
		b, err := k.MarshalText()
		if err != nil {
			t.Fatalf("marshal %v: %v", int(k), err)
		}
		var got Kind
		if err := got.UnmarshalText(b); err != nil {
			t.Fatalf("unmarshal %q: %v", b, err)
		}
		if got != k {
			t.Errorf("round trip %v -> %q -> %v", k, b, got)
		}
	}
	if _, err := Kind(7).MarshalText(); err == nil {
		t.Error("invalid kind marshalled")
	}
	var k Kind
	if err := k.UnmarshalText([]byte("meteor")); err == nil {
		t.Error("unknown kind text accepted")
	}
}

func TestEventString(t *testing.T) {
	cases := []struct {
		ev   Event
		want string
	}{
		{Event{Cycle: 100, Kind: KindLink, Router: 3, Port: 2}, "@100 link r3.p2"},
		{Event{Cycle: 5, Kind: KindRouter, Router: 9}, "@5 router r9"},
		{Event{Cycle: 7, Kind: KindVC, Router: 1, Port: 4, VC: 2}, "@7 vc r1.p4.vc2"},
		{Event{Cycle: 7, Kind: KindLink, Router: 0, Port: 1, Repair: 50}, "@7 link r0.p1 repair+50"},
	}
	for _, c := range cases {
		if got := c.ev.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestCheckFieldPaths(t *testing.T) {
	ok := Event{Cycle: 10, Kind: KindVC, Router: 5, Port: 3, VC: 1, Repair: 100}
	if ce := ok.Check(64); ce != nil {
		t.Fatalf("valid event rejected: %v", ce)
	}
	cases := []struct {
		ev    Event
		nodes int
		field string
	}{
		{Event{Cycle: 0, Router: 1, Port: 1}, 0, "cycle"},
		{Event{Cycle: -3, Router: 1, Port: 1}, 0, "cycle"},
		{Event{Cycle: 1, Kind: Kind(9), Router: 1}, 0, "kind"},
		{Event{Cycle: 1, Kind: Kind(-1), Router: 1}, 0, "kind"},
		{Event{Cycle: 1, Router: -1}, 0, "router"},
		{Event{Cycle: 1, Router: 64}, 64, "router"},
		{Event{Cycle: 1, Router: 64}, 0, ""}, // bound deferred
		{Event{Cycle: 1, Router: 1, Port: -1}, 0, "port"},
		{Event{Cycle: 1, Router: 1, Port: 16}, 0, "port"},
		{Event{Cycle: 1, Kind: KindVC, Router: 1, Port: 1, VC: 64}, 0, "vc"},
		{Event{Cycle: 1, Kind: KindVC, Router: 1, Port: 1, VC: -1}, 0, "vc"},
		{Event{Cycle: 1, Router: 1, Port: 1, Repair: -1}, 0, "repair"},
	}
	for _, c := range cases {
		ce := c.ev.Check(c.nodes)
		if c.field == "" {
			if ce != nil {
				t.Errorf("Check(%v, %d) = %v, want nil", c.ev, c.nodes, ce)
			}
			continue
		}
		if ce == nil || ce.Field != c.field {
			t.Errorf("Check(%v, %d) = %v, want field %q", c.ev, c.nodes, ce, c.field)
		}
		if ce != nil && !strings.Contains(ce.Error(), ce.Field) {
			t.Errorf("CheckError.Error() %q omits the field", ce.Error())
		}
	}
}

func TestParseScheduleValid(t *testing.T) {
	events, err := ParseSchedule([]byte(`[
		{"cycle": 100, "kind": "link", "router": 3, "port": 2},
		{"cycle": 200, "kind": "router", "router": 9},
		{"cycle": 300, "kind": "vc", "router": 1, "port": 4, "vc": 2, "repair": 500}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Cycle: 100, Kind: KindLink, Router: 3, Port: 2},
		{Cycle: 200, Kind: KindRouter, Router: 9},
		{Cycle: 300, Kind: KindVC, Router: 1, Port: 4, VC: 2, Repair: 500},
	}
	if !reflect.DeepEqual(events, want) {
		t.Errorf("parsed %+v, want %+v", events, want)
	}
	// The events marshal back to the same wire form they were parsed from.
	b, err := json.Marshal(events)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseSchedule(b)
	if err != nil {
		t.Fatalf("re-parse of marshalled schedule: %v", err)
	}
	if !reflect.DeepEqual(again, events) {
		t.Errorf("marshal round trip changed the schedule: %+v", again)
	}
}

func TestParseScheduleErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"garbage", "not json"},
		{"object", `{"cycle": 1}`},
		{"unknown field", `[{"cycle": 1, "router": 0, "port": 1, "laser": true}]`},
		{"unknown kind", `[{"cycle": 1, "kind": "cosmic", "router": 0}]`},
		{"trailing data", `[] []`},
		{"bad cycle", `[{"cycle": 0, "router": 0, "port": 1}]`},
		{"bad port", `[{"cycle": 1, "router": 0, "port": 99}]`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseSchedule([]byte(c.in)); err == nil {
				t.Errorf("ParseSchedule(%q) accepted", c.in)
			}
		})
	}
	if _, err := ParseSchedule(make([]byte, maxScheduleBytes+1)); err == nil {
		t.Error("oversized schedule accepted")
	}
	big := "[" + strings.Repeat(`{"cycle": 1, "router": 0, "port": 1},`, MaxEvents) +
		`{"cycle": 1, "router": 0, "port": 1}]`
	if _, err := ParseSchedule([]byte(big)); err == nil {
		t.Errorf("schedule with %d events accepted (limit %d)", MaxEvents+1, MaxEvents)
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	const n, w, h, horizon = 50, 8, 8, 100000
	a := Generate(n, 42, w, h, horizon)
	b := Generate(n, 42, w, h, horizon)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed generated different schedules")
	}
	c := Generate(n, 43, w, h, horizon)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated identical schedules")
	}
	if len(a) != n {
		t.Fatalf("generated %d events, want %d", len(a), n)
	}
	last := int64(0)
	for i, ev := range a {
		if ce := ev.Check(w * h); ce != nil {
			t.Fatalf("generated events[%d] = %v invalid: %v", i, ev, ce)
		}
		if ev.Cycle < horizon/10 || ev.Cycle > horizon/2 {
			t.Errorf("events[%d] strikes at %d, outside [%d,%d]", i, ev.Cycle, horizon/10, horizon/2)
		}
		if ev.Cycle < last {
			t.Errorf("events[%d] out of cycle order: %d after %d", i, ev.Cycle, last)
		}
		last = ev.Cycle
	}
	// The tiny-horizon clamp keeps cycles legal even for degenerate runs.
	for _, ev := range Generate(10, 7, 2, 2, 1) {
		if ce := ev.Check(4); ce != nil {
			t.Fatalf("tiny-horizon event %v invalid: %v", ev, ce)
		}
	}
}
