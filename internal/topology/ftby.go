package topology

import (
	"fmt"

	"adaptnoc/internal/noc"
)

// BuildFlattenedButterfly configures the whole chip as a flattened
// butterfly (Kim/Balfour/Dally, design point 4 in Section IV-A):
// concentration factor 4 (2×2 tile groups attach to one router), and every
// router directly connected to every other router in its row and column of
// the router grid. Routing is dimension-ordered (at most one X hop, one
// turn, one Y hop), hence deadlock-free. The caller should use a Config
// with RouterLatency 3 and 4 VCs per vnet to match the paper's FTBY setup.
//
// Grid dimensions must be even.
func BuildFlattenedButterfly(net *noc.Network) {
	cfg := net.Cfg
	if cfg.Width%2 != 0 || cfg.Height%2 != 0 {
		panic(fmt.Sprintf("topology: flattened butterfly needs even grid, got %dx%d", cfg.Width, cfg.Height))
	}
	w := cfg.Width
	gw, gh := cfg.Width/2, cfg.Height/2

	anchor := func(gx, gy int) noc.NodeID {
		return noc.Coord{X: 2 * gx, Y: 2 * gy}.ID(w)
	}

	// Concentrate 2x2 groups onto the anchor router. Unlike the Adapt-NoC
	// external concentration (one muxed injection port), the flattened
	// butterfly's radix includes one terminal port per concentrated tile
	// (Kim et al.), so each NI gets its own local port. localPort[tile] is
	// the ejection port serving it.
	localPort := make(map[noc.NodeID]int)
	for gy := 0; gy < gh; gy++ {
		for gx := 0; gx < gw; gx++ {
			a := anchor(gx, gy)
			r := net.Router(a)
			first := true
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					id := noc.Coord{X: 2*gx + dx, Y: 2*gy + dy}.ID(w)
					if id != a {
						net.Router(id).SetDisabled(true)
					}
					port := noc.PortLocal
					if !first {
						port = r.AddPort()
					}
					first = false
					localPort[id] = port
					net.AttachLocalPort(a, port, []noc.NodeID{id}, 1)
				}
			}
		}
	}

	// Full row/column connectivity on dedicated high-radix ports.
	// port[a][b] is a's output port toward b.
	port := make(map[noc.NodeID]map[noc.NodeID]int)
	link := func(a, b noc.NodeID, distTiles int) {
		if port[a] == nil {
			port[a] = make(map[noc.NodeID]int)
		}
		if port[b] == nil {
			port[b] = make(map[noc.NodeID]int)
		}
		pa := net.Router(a).AddPort()
		pb := net.Router(b).AddPort()
		net.ConnectBidir(a, pa, b, pb, noc.ChanExpress,
			cfg.LongLinkLatency(distTiles), distTiles)
		port[a][b] = pa
		port[b][a] = pb
	}
	for gy := 0; gy < gh; gy++ {
		for x1 := 0; x1 < gw; x1++ {
			for x2 := x1 + 1; x2 < gw; x2++ {
				link(anchor(x1, gy), anchor(x2, gy), 2*(x2-x1))
			}
		}
	}
	for gx := 0; gx < gw; gx++ {
		for y1 := 0; y1 < gh; y1++ {
			for y2 := y1 + 1; y2 < gh; y2++ {
				link(anchor(gx, y1), anchor(gx, y2), 2*(y2-y1))
			}
		}
	}

	// Dimension-ordered tables: X hop to the destination column's router in
	// my row, then Y hop.
	all := WholeChip(cfg)
	for gy := 0; gy < gh; gy++ {
		for gx := 0; gx < gw; gx++ {
			me := anchor(gx, gy)
			t := noc.NewRoutingTable(cfg.NumNodes())
			for _, tile := range all.Tiles(w) {
				s := net.ServingRouter(tile)
				sc := noc.CoordOf(s, w)
				sgx, sgy := sc.X/2, sc.Y/2
				switch {
				case s == me:
					t.Set(tile, localPort[tile], noc.ClassKeep)
				case sgx != gx:
					t.Set(tile, port[me][anchor(sgx, gy)], noc.ClassKeep)
				default:
					t.Set(tile, port[me][anchor(gx, sgy)], noc.ClassKeep)
				}
			}
			r := net.Router(me)
			r.SetTable(noc.VNetRequest, t)
			r.SetTable(noc.VNetReply, t)
		}
	}
}
