// Package topology builds and configures network topologies on a
// noc.Network: the whole-chip baselines (mesh, shortcut mesh, flattened
// butterfly) and the per-region subNoC topologies the Adapt-NoC fabric
// switches between (mesh, cmesh, torus, tree — Section II-B).
//
// Builders wire channels onto router ports, attach NIs (with concentration
// where the topology calls for it), and install per-vnet routing tables.
// Every routing function here is deadlock-free: dimension-ordered XY for
// mesh/cmesh, XY with dateline VC classes for torus, up*/down* on the reply
// tree, and monotone express-first XY for shortcut and flattened butterfly.
// The deadlock package verifies these properties in tests.
package topology

import (
	"fmt"

	"adaptnoc/internal/noc"
)

// Adaptable-link port convention: under the Adapt-NoC fabric every router
// carries four extra ports attached (by mux) to the row/column adaptable
// links. Builders that need them call EnsureAdaptPorts first.
const (
	PortAdaptEast  = 5
	PortAdaptWest  = 6
	PortAdaptNorth = 7
	PortAdaptSouth = 8
	numAdaptPorts  = 9 // total ports on an Adapt-NoC router
)

// Kind names a subNoC topology — the RL action space (Section III-B).
type Kind int

// SubNoC topology kinds. The first four are the paper's RL action space;
// TorusTree is the Section II-B.4 extension combining a torus request
// network with a tree reply network (its tree segments ride the
// intermediate metal layers, keeping the high-metal budget intact).
const (
	Mesh Kind = iota
	CMesh
	Torus
	Tree
	NumKinds // size of the RL action space

	TorusTree Kind = NumKinds

	// NumSelectable counts every topology the fabric can configure,
	// including the TorusTree extension (selection histograms are sized
	// with this; the RL action space stays NumKinds).
	NumSelectable = NumKinds + 1
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Mesh:
		return "mesh"
	case CMesh:
		return "cmesh"
	case Torus:
		return "torus"
	case Tree:
		return "tree"
	case TorusTree:
		return "torus+tree"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// MarshalText implements encoding.TextMarshaler, so JSON configurations
// carry topology names ("mesh", "torus+tree") rather than raw ints.
func (k Kind) MarshalText() ([]byte, error) {
	if k < Mesh || k >= NumSelectable {
		return nil, fmt.Errorf("topology: cannot marshal invalid kind %d", int(k))
	}
	return []byte(k.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler. An empty string
// decodes to Mesh (the zero value), so omitted JSON fields keep their
// Go-zero-value meaning.
func (k *Kind) UnmarshalText(text []byte) error {
	s := string(text)
	if s == "" {
		*k = Mesh
		return nil
	}
	for _, cand := range []Kind{Mesh, CMesh, Torus, Tree, TorusTree} {
		if cand.String() == s {
			*k = cand
			return nil
		}
	}
	return fmt.Errorf("topology: unknown kind %q (want mesh, cmesh, torus, tree, or torus+tree)", s)
}

// Region is a rectangular set of tiles [X, X+W) × [Y, Y+H).
type Region struct {
	X int `json:"x"`
	Y int `json:"y"`
	W int `json:"w"`
	H int `json:"h"`
}

// Contains reports whether the tile coordinate lies in the region.
func (r Region) Contains(c noc.Coord) bool {
	return c.X >= r.X && c.X < r.X+r.W && c.Y >= r.Y && c.Y < r.Y+r.H
}

// Tiles returns the region's tiles in row-major order for a grid of the
// given width.
func (r Region) Tiles(gridW int) []noc.NodeID {
	out := make([]noc.NodeID, 0, r.W*r.H)
	for y := r.Y; y < r.Y+r.H; y++ {
		for x := r.X; x < r.X+r.W; x++ {
			out = append(out, noc.Coord{X: x, Y: y}.ID(gridW))
		}
	}
	return out
}

// Size returns the number of tiles.
func (r Region) Size() int { return r.W * r.H }

// Overlaps reports whether two regions share any tile.
func (r Region) Overlaps(o Region) bool {
	return r.X < o.X+o.W && o.X < r.X+r.W && r.Y < o.Y+o.H && o.Y < r.Y+r.H
}

// String implements fmt.Stringer.
func (r Region) String() string { return fmt.Sprintf("%dx%d@(%d,%d)", r.W, r.H, r.X, r.Y) }

// WholeChip returns the region covering the full grid.
func WholeChip(cfg noc.Config) Region { return Region{W: cfg.Width, H: cfg.Height} }

// PartitionRows splits a w×h grid into min(shards, h) full-width Y-bands
// of near-equal height (band i covers rows [i*h/k, (i+1)*h/k), so heights
// differ by at most one and every row is covered exactly once). This is
// the banding the sharded network tick uses to assign routers to worker
// regions: Y-bands keep each shard's tiles contiguous in row-major ID
// order and bound cross-shard traffic to the horizontal cut between
// adjacent bands.
func PartitionRows(w, h, shards int) []Region {
	if w < 1 || h < 1 {
		panic(fmt.Sprintf("topology: PartitionRows on empty grid %dx%d", w, h))
	}
	k := shards
	if k < 1 {
		k = 1
	}
	if k > h {
		k = h
	}
	out := make([]Region, k)
	for i := 0; i < k; i++ {
		lo, hi := i*h/k, (i+1)*h/k
		out[i] = Region{X: 0, Y: lo, W: w, H: hi - lo}
	}
	return out
}

// EnsureAdaptPorts grows a router to the Adapt-NoC port count (5 mesh +
// 4 adaptable-link mux ports).
func EnsureAdaptPorts(r *noc.Router) {
	EnsurePorts(r, numAdaptPorts)
}

// EnsurePorts grows a router to at least n ports. Ports are never removed;
// an unattached port is powered off and costs nothing.
func EnsurePorts(r *noc.Router, n int) {
	for r.NumPorts() < n {
		r.AddPort()
	}
}

// MC injection-fanout ports: under the tree topologies the memory
// controllers' routers carry extra injection-only local ports so the reply
// streams are not limited to one flit per cycle — the paper's "maximize
// the fanout of the root router ... to provide sufficient injection
// bandwidth" (Section II-B.3), generalized to every MC of the region (our
// provisioning places one MC per 2x4 block; each is the local root of its
// reply subtree).
const (
	portMCInject0 = 9
	portMCInject1 = 10
	numTreePorts  = 11
)

// attachMCInjection gives the root two extra injection ports and every
// other in-region MC one.
func attachMCInjection(net *noc.Network, reg Region, rootTile noc.NodeID, mcTiles []noc.NodeID) {
	w := net.Cfg.Width
	r := net.Router(rootTile)
	EnsurePorts(r, numTreePorts)
	net.AttachInjectionPort(rootTile, portMCInject0, []noc.NodeID{rootTile}, 1)
	net.AttachInjectionPort(rootTile, portMCInject1, []noc.NodeID{rootTile}, 1)
	for _, mc := range mcTiles {
		if mc == rootTile || !reg.Contains(noc.CoordOf(mc, w)) {
			continue
		}
		EnsurePorts(net.Router(mc), portMCInject0+1)
		net.AttachInjectionPort(mc, portMCInject0, []noc.NodeID{mc}, 1)
	}
}

// WireMeshRegion creates the nearest-neighbour mesh channels inside a
// region (idempotent wiring is the caller's responsibility: call on a
// region whose direction ports are unattached).
func WireMeshRegion(net *noc.Network, reg Region) {
	w := net.Cfg.Width
	for y := reg.Y; y < reg.Y+reg.H; y++ {
		for x := reg.X; x < reg.X+reg.W; x++ {
			id := noc.Coord{X: x, Y: y}.ID(w)
			if x+1 < reg.X+reg.W {
				east := noc.Coord{X: x + 1, Y: y}.ID(w)
				net.ConnectBidir(id, noc.PortEast, east, noc.PortWest,
					noc.ChanMesh, net.Cfg.LinkLatency, 1)
			}
			if y+1 < reg.Y+reg.H {
				south := noc.Coord{X: x, Y: y + 1}.ID(w)
				net.ConnectBidir(id, noc.PortSouth, south, noc.PortNorth,
					noc.ChanMesh, net.Cfg.LinkLatency, 1)
			}
		}
	}
}

// AttachOneToOne attaches every tile's NI to its own router.
func AttachOneToOne(net *noc.Network, reg Region) {
	for _, t := range reg.Tiles(net.Cfg.Width) {
		net.AttachLocal(t, []noc.NodeID{t}, 1)
	}
}

// xyPort returns the XY (X-first) output port from cur toward dst on a
// uniform mesh, or PortLocal when cur == dst.
func xyPort(cur, dst noc.Coord) int {
	switch {
	case dst.X > cur.X:
		return noc.PortEast
	case dst.X < cur.X:
		return noc.PortWest
	case dst.Y > cur.Y:
		return noc.PortSouth
	case dst.Y < cur.Y:
		return noc.PortNorth
	default:
		return noc.PortLocal
	}
}

// XYTableForRouter builds the XY routing table of one router for all tiles
// of a region, given the current NI attachments (tiles served by other
// routers route toward the serving router first).
func XYTableForRouter(net *noc.Network, router noc.NodeID, reg Region) *noc.RoutingTable {
	w := net.Cfg.Width
	t := noc.NewRoutingTable(net.Cfg.NumNodes())
	cur := noc.CoordOf(router, w)
	for _, tile := range reg.Tiles(w) {
		serving := net.ServingRouter(tile)
		if serving < 0 {
			continue
		}
		if serving == router {
			t.Set(tile, noc.PortLocal, noc.ClassKeep)
			continue
		}
		t.Set(tile, xyPort(cur, noc.CoordOf(serving, w)), noc.ClassKeep)
	}
	return t
}

// InstallXYTables installs XY tables on every active router of a region,
// for both virtual networks.
func InstallXYTables(net *noc.Network, reg Region) {
	for _, id := range reg.Tiles(net.Cfg.Width) {
		r := net.Router(id)
		if r.Disabled() {
			continue
		}
		tbl := XYTableForRouter(net, id, reg)
		r.SetTable(noc.VNetRequest, tbl)
		r.SetTable(noc.VNetReply, tbl)
		r.SetDateline(false)
	}
}

// ConfigureMeshRegion wires a region as a plain mesh: one router per tile,
// nearest-neighbour links, XY routing.
func ConfigureMeshRegion(net *noc.Network, reg Region) {
	WireMeshRegion(net, reg)
	AttachOneToOne(net, reg)
	InstallXYTables(net, reg)
}

// BuildMesh configures the whole chip as the baseline 8×8 mesh
// (design point 1 in Section IV-A).
func BuildMesh(net *noc.Network) {
	ConfigureMeshRegion(net, WholeChip(net.Cfg))
}
