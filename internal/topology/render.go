package topology

import (
	"strings"

	"adaptnoc/internal/noc"
)

// Render draws a region's current physical configuration as ASCII art:
//
//	O---O===O   O     O  active router      .  powered-off router
//	|   !   |         -  mesh link          =  adaptable segment
//	O   O   O         #  both               |  vertical mesh
//	                  !  vertical adaptable :  vertical both
//
// Long adaptable segments are drawn through the routers they bypass.
// Useful for eyeballing what a reconfiguration actually built; see
// cmd/adaptnoc-sim -layout.
func Render(net *noc.Network, reg Region) string {
	w := net.Cfg.Width
	const (
		bitMesh = 1 << iota
		bitAdapt
	)
	h := make(map[[2]int]int) // between (x,y) and (x+1,y)
	v := make(map[[2]int]int) // between (x,y) and (x,y+1)

	for _, ch := range net.Channels() {
		if ch.From.Kind != noc.EndRouter || ch.To.Kind != noc.EndRouter {
			continue
		}
		a := noc.CoordOf(ch.From.Router, w)
		b := noc.CoordOf(ch.To.Router, w)
		bit := bitMesh
		if ch.Kind == noc.ChanAdaptable {
			bit = bitAdapt
		} else if ch.Kind == noc.ChanExpress {
			bit = bitAdapt
		}
		switch {
		case a.Y == b.Y && a.X != b.X:
			lo, hi := min2(a.X, b.X), max2(a.X, b.X)
			for x := lo; x < hi; x++ {
				h[[2]int{x, a.Y}] |= bit
			}
		case a.X == b.X && a.Y != b.Y:
			lo, hi := min2(a.Y, b.Y), max2(a.Y, b.Y)
			for y := lo; y < hi; y++ {
				v[[2]int{a.X, y}] |= bit
			}
		}
	}

	hSym := map[int]string{0: "   ", bitMesh: "---", bitAdapt: "===", bitMesh | bitAdapt: "###"}
	vSym := map[int]byte{0: ' ', bitMesh: '|', bitAdapt: '!', bitMesh | bitAdapt: ':'}

	var sb strings.Builder
	for y := reg.Y; y < reg.Y+reg.H; y++ {
		for x := reg.X; x < reg.X+reg.W; x++ {
			r := net.Router(noc.Coord{X: x, Y: y}.ID(w))
			sym := byte('O')
			if r.Disabled() {
				sym = '.'
			}
			sb.WriteByte(sym)
			if x+1 < reg.X+reg.W {
				sb.WriteString(hSym[h[[2]int{x, y}]])
			}
		}
		sb.WriteByte('\n')
		if y+1 < reg.Y+reg.H {
			for x := reg.X; x < reg.X+reg.W; x++ {
				sb.WriteByte(vSym[v[[2]int{x, y}]])
				if x+1 < reg.X+reg.W {
					sb.WriteString("   ")
				}
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
