package topology

import (
	"fmt"

	"adaptnoc/internal/noc"
)

// Shortcut is one application-specific long-range express link between two
// row- or column-aligned routers (the Ogras/Marculescu-style design of
// baseline 3, Section IV-A).
type Shortcut struct {
	A, B noc.NodeID
}

// BuildShortcutMesh configures the whole chip as a mesh augmented with the
// given long-range express links. Alignment is required so that routing
// stays dimension-ordered and monotone (hence deadlock-free): an express
// link is taken only when the destination lies at or beyond the far end in
// the same direction.
func BuildShortcutMesh(net *noc.Network, shortcuts []Shortcut) {
	BuildMesh(net)
	for _, s := range shortcuts {
		AddExpressLink(net, s.A, s.B)
	}
}

// AddExpressLink wires a bidirectional express link between two aligned
// routers on fresh ports and patches both routers' XY tables to use it for
// destinations at or beyond the far end.
func AddExpressLink(net *noc.Network, a, b noc.NodeID) {
	w := net.Cfg.Width
	ca, cb := noc.CoordOf(a, w), noc.CoordOf(b, w)
	if ca.X != cb.X && ca.Y != cb.Y {
		panic(fmt.Sprintf("topology: express link %v-%v not row/column aligned", ca, cb))
	}
	if a == b {
		panic("topology: express link to self")
	}
	dist := abs(ca.X-cb.X) + abs(ca.Y-cb.Y)
	pa := net.Router(a).AddPort()
	pb := net.Router(b).AddPort()
	net.ConnectBidir(a, pa, b, pb, noc.ChanExpress, net.Cfg.LongLinkLatency(dist), dist)
	patchExpressRoutes(net, a, b, pa)
	patchExpressRoutes(net, b, a, pb)
}

// patchExpressRoutes redirects a's routes through the express link to far
// for destinations where the link is a strict monotone win under XY order.
func patchExpressRoutes(net *noc.Network, at, far noc.NodeID, port int) {
	w := net.Cfg.Width
	ca, cf := noc.CoordOf(at, w), noc.CoordOf(far, w)
	r := net.Router(at)
	for _, v := range []noc.VNet{noc.VNetRequest, noc.VNetReply} {
		tbl := r.Table(v).Clone()
		for tile := noc.NodeID(0); int(tile) < net.Cfg.NumNodes(); tile++ {
			s := net.ServingRouter(tile)
			if s < 0 {
				continue
			}
			cs := noc.CoordOf(s, w)
			use := false
			if ca.Y == cf.Y && cs.X != ca.X {
				// Row link; destination still in its X phase.
				use = sign(cs.X-ca.X) == sign(cf.X-ca.X) && abs(cs.X-ca.X) >= abs(cf.X-ca.X)
			} else if ca.X == cf.X && cs.X == ca.X && cs.Y != ca.Y {
				// Column link; destination in its Y phase.
				use = sign(cs.Y-ca.Y) == sign(cf.Y-ca.Y) && abs(cs.Y-ca.Y) >= abs(cf.Y-ca.Y)
			}
			if use {
				tbl.Set(tile, port, noc.ClassKeep)
			}
		}
		r.SetTable(v, tbl)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func sign(x int) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}
