package topology

import (
	"adaptnoc/internal/noc"
)

// ConfigureTorusRegion configures a region as a torus (Section II-B.2):
// the full mesh plus wraparound adaptable-link segments connecting the
// region's peripheral routers on their free edge-facing ports. Routing is
// dimension-ordered with minimal ring direction; the wraparound hop is the
// dateline, moving packets into the upper VC class to break the ring's
// channel-dependency cycle (Section II-C.3). Requires >= 2 VCs per vnet.
func ConfigureTorusRegion(net *noc.Network, reg Region) {
	if net.Cfg.VCsPerVNet < 2 {
		panic("topology: torus dateline needs at least 2 VCs per vnet")
	}
	w := net.Cfg.Width
	WireMeshRegion(net, reg)
	AttachOneToOne(net, reg)

	// Wraparound segments (skip degenerate rings where wrap would parallel
	// an existing mesh link).
	if reg.W >= 3 {
		for y := reg.Y; y < reg.Y+reg.H; y++ {
			east := noc.Coord{X: reg.X + reg.W - 1, Y: y}.ID(w)
			west := noc.Coord{X: reg.X, Y: y}.ID(w)
			d := reg.W - 1
			net.ConnectBidir(east, noc.PortEast, west, noc.PortWest,
				noc.ChanAdaptable, net.Cfg.LongLinkLatency(d), d)
		}
	}
	if reg.H >= 3 {
		for x := reg.X; x < reg.X+reg.W; x++ {
			south := noc.Coord{X: x, Y: reg.Y + reg.H - 1}.ID(w)
			north := noc.Coord{X: x, Y: reg.Y}.ID(w)
			d := reg.H - 1
			net.ConnectBidir(south, noc.PortSouth, north, noc.PortNorth,
				noc.ChanAdaptable, net.Cfg.LongLinkLatency(d), d)
		}
	}

	for _, id := range reg.Tiles(w) {
		r := net.Router(id)
		tbl := torusTableForRouter(net, id, reg)
		r.SetTable(noc.VNetRequest, tbl)
		r.SetTable(noc.VNetReply, tbl)
		r.SetDateline(true)
	}
}

// torusTableForRouter builds the minimal dimension-ordered torus table.
func torusTableForRouter(net *noc.Network, router noc.NodeID, reg Region) *noc.RoutingTable {
	w := net.Cfg.Width
	t := noc.NewRoutingTable(net.Cfg.NumNodes())
	cur := noc.CoordOf(router, w)
	for _, tile := range reg.Tiles(w) {
		dst := noc.CoordOf(tile, w)
		if dst == cur {
			t.Set(tile, noc.PortLocal, noc.ClassKeep)
			continue
		}
		port, wraps := torusHop(cur, dst, reg)
		op := noc.ClassKeep
		if wraps {
			op = noc.ClassSet1
		}
		t.Set(tile, port, op)
	}
	return t
}

// torusHop picks the next XY hop on the region torus, returning the port
// and whether the hop traverses a wraparound (dateline) segment.
func torusHop(cur, dst noc.Coord, reg Region) (port int, wraps bool) {
	if dst.X != cur.X {
		return ringHop(cur.X, dst.X, reg.X, reg.W, noc.PortEast, noc.PortWest)
	}
	return ringHop(cur.Y, dst.Y, reg.Y, reg.H, noc.PortSouth, noc.PortNorth)
}

// ringHop picks the minimal direction around one ring. plusPort moves
// toward increasing coordinates. Rings shorter than 3 have no wrap link.
func ringHop(cur, dst, lo, n int, plusPort, minusPort int) (port int, wraps bool) {
	ci, di := cur-lo, dst-lo
	fwd := (di - ci + n) % n  // hops going +
	back := (ci - di + n) % n // hops going -
	wrapAvailable := n >= 3
	goPlus := fwd <= back
	if !wrapAvailable {
		// Pure mesh movement.
		goPlus = di > ci
		return pick(goPlus, plusPort, minusPort), false
	}
	if fwd == back {
		// Tie: prefer the no-wrap direction.
		goPlus = di > ci
	}
	if goPlus {
		return plusPort, ci == n-1
	}
	return minusPort, ci == 0
}

func pick(cond bool, a, b int) int {
	if cond {
		return a
	}
	return b
}
