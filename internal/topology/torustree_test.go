package topology

import (
	"testing"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
)

func TestTorusTreeDelivers(t *testing.T) {
	cfg := noc.DefaultConfig()
	cfg.VCsPerVNet = 2
	reg := Region{X: 0, Y: 0, W: 4, H: 8}
	root := noc.Coord{X: 2, Y: 4}.ID(cfg.Width)
	net := noc.NewNetwork(cfg)
	ConfigureTorusTreeRegion(net, reg, root, nil)
	runTraffic(t, net, reg.Tiles(cfg.Width), 4000, 77)
}

func TestTorusTreeRequestsUseWraparounds(t *testing.T) {
	cfg := noc.DefaultConfig()
	cfg.VCsPerVNet = 2
	reg := Region{X: 0, Y: 0, W: 4, H: 8}
	root := noc.Coord{X: 2, Y: 4}.ID(cfg.Width)

	meshNet := noc.NewNetwork(cfg)
	ConfigureMeshRegion(meshNet, reg)
	ttNet := noc.NewNetwork(cfg)
	ConfigureTorusTreeRegion(ttNet, reg, root, nil)

	// Requests across the long dimension: ring routing must cut hops.
	hops := func(net *noc.Network) float64 {
		k := sim.NewKernel()
		k.Register(net)
		var total, n float64
		net.SetDeliverFunc(func(p *noc.Packet, _ sim.Cycle) {
			total += float64(p.Hops)
			n++
		})
		for x := 0; x < 4; x++ {
			src := noc.Coord{X: x, Y: 0}.ID(cfg.Width)
			dst := noc.Coord{X: x, Y: 7}.ID(cfg.Width)
			net.Enqueue(net.NewPacket(src, dst, noc.ClassCoherence, noc.VNetRequest, 0), 0)
		}
		k.Run(500)
		if n != 4 {
			t.Fatalf("delivered %v of 4", n)
		}
		return total / n
	}
	if mh, th := hops(meshNet), hops(ttNet); th >= mh {
		t.Fatalf("torus+tree request hops %.2f not below mesh %.2f", th, mh)
	}
}

func TestTorusTreeRepliesRideTheTree(t *testing.T) {
	cfg := noc.DefaultConfig()
	cfg.VCsPerVNet = 2
	reg := Region{X: 0, Y: 0, W: 4, H: 4}
	root := noc.NodeID(0)
	net := noc.NewNetwork(cfg)
	ConfigureTorusTreeRegion(net, reg, root, nil)

	k := sim.NewKernel()
	k.Register(net)
	delivered := 0
	net.SetDeliverFunc(func(p *noc.Packet, _ sim.Cycle) {
		delivered++
		if p.Hops > 5 {
			t.Errorf("root reply to %d traversed %d routers, want <= 5", p.Dst, p.Hops)
		}
	})
	for _, tile := range reg.Tiles(cfg.Width) {
		if tile == root {
			continue
		}
		net.Enqueue(net.NewPacket(root, tile, noc.ClassData, noc.VNetReply, 0), 0)
	}
	k.Run(2000)
	if delivered != reg.Size()-1 {
		t.Fatalf("delivered %d of %d", delivered, reg.Size()-1)
	}
}

func TestTorusTreeDatelinePerVNet(t *testing.T) {
	cfg := noc.DefaultConfig()
	cfg.VCsPerVNet = 2
	reg := Region{X: 0, Y: 0, W: 4, H: 4}
	net := noc.NewNetwork(cfg)
	ConfigureTorusTreeRegion(net, reg, 0, nil)
	r := net.Router(9) // (1,1), inside the region
	if !r.UsesDateline(noc.VNetRequest) {
		t.Fatal("request vnet missing dateline classes")
	}
	if r.UsesDateline(noc.VNetReply) {
		t.Fatal("reply vnet must not be dateline-classed (the tree is acyclic)")
	}
}
