package topology

import (
	"adaptnoc/internal/noc"
)

// ConfigureCMeshRegion configures a region as a concentrated mesh
// (Section II-B.1): tiles are grouped (2×2 where the region allows), each
// group's cores attach to a single active router through concentration
// links (external concentration — the injection mux, not extra ports), the
// remaining routers are powered off, and the active routers are re-linked
// with adaptable-link segments that bridge the powered-off neighbours.
//
// The region's direction and local ports must be unattached (the fabric
// tears a region down before reconfiguring it).
func ConfigureCMeshRegion(net *noc.Network, reg Region) {
	w := net.Cfg.Width

	groupsX := splitDim(reg.X, reg.W)
	groupsY := splitDim(reg.Y, reg.H)

	// Active routers form a cartesian sub-grid at the group anchors.
	activeAt := func(gx, gy span) noc.NodeID {
		return noc.Coord{X: gx.lo, Y: gy.lo}.ID(w)
	}

	for _, gy := range groupsY {
		for _, gx := range groupsX {
			anchor := activeAt(gx, gy)
			var tiles []noc.NodeID
			for y := gy.lo; y < gy.lo+gy.n; y++ {
				for x := gx.lo; x < gx.lo+gx.n; x++ {
					id := noc.Coord{X: x, Y: y}.ID(w)
					tiles = append(tiles, id)
					if id != anchor {
						r := net.Router(id)
						r.SetTable(noc.VNetRequest, nil)
						r.SetTable(noc.VNetReply, nil)
						r.SetDisabled(true)
					}
				}
			}
			net.Router(anchor).SetDisabled(false)
			net.AttachLocal(anchor, tiles, 1)
		}
	}

	// Adaptable-link segments between consecutive active routers, attached
	// to the regular direction ports (the mesh links to powered-off
	// neighbours are mux-deselected).
	for _, gy := range groupsY {
		for i := 0; i+1 < len(groupsX); i++ {
			a := activeAt(groupsX[i], gy)
			b := activeAt(groupsX[i+1], gy)
			d := groupsX[i+1].lo - groupsX[i].lo
			net.ConnectBidir(a, noc.PortEast, b, noc.PortWest,
				noc.ChanAdaptable, net.Cfg.LongLinkLatency(d), d)
		}
	}
	for _, gx := range groupsX {
		for i := 0; i+1 < len(groupsY); i++ {
			a := activeAt(gx, groupsY[i])
			b := activeAt(gx, groupsY[i+1])
			d := groupsY[i+1].lo - groupsY[i].lo
			net.ConnectBidir(a, noc.PortSouth, b, noc.PortNorth,
				noc.ChanAdaptable, net.Cfg.LongLinkLatency(d), d)
		}
	}

	InstallXYTables(net, reg)
}

// span is one concentration group extent along one dimension.
type span struct {
	lo, n int
}

// splitDim partitions a dimension of length length starting at lo into
// concentration groups of width 2 (a trailing group of 1 when odd).
func splitDim(lo, length int) []span {
	var out []span
	for off := 0; off < length; off += 2 {
		n := 2
		if off+2 > length {
			n = 1
		}
		out = append(out, span{lo: lo + off, n: n})
	}
	return out
}
