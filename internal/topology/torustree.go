package topology

import (
	"fmt"

	"adaptnoc/internal/noc"
)

// ConfigureTorusTreeRegion configures a region with the combined topology
// the paper sketches in Section II-B.4: the request virtual network runs a
// torus (mesh plus wraparound segments on the high-metal adaptable links,
// with dateline VC classes) while the reply virtual network runs the MC-
// rooted tree. The torus serves the many-to-one request convergecast with
// extra bisection bandwidth; the tree serves the one-to-many reply
// distribution — "simultaneously optimize both request and reply networks
// for memory-intensive applications".
//
// Wiring: the wraparounds occupy the high-metal adaptable links (as in the
// plain torus), so the tree's distance-2 segments are placed on the
// intermediate metal layers instead (Section V-B.2 budgets seven 256-bit
// links per tile edge there) — slower per millimetre, which the segment
// latencies reflect.
//
// Deadlock freedom is per virtual network (VCs are partitioned by vnet):
// the request torus uses dateline classes on its rings, and the reply
// tree's XY*-then-down* argument is unchanged; dateline classing is
// enabled for the request vnet only.
func ConfigureTorusTreeRegion(net *noc.Network, reg Region, rootTile noc.NodeID, mcTiles []noc.NodeID) {
	if net.Cfg.VCsPerVNet < 2 {
		panic("topology: torus+tree needs at least 2 VCs per vnet for the request dateline")
	}
	w := net.Cfg.Width
	root := noc.CoordOf(rootTile, w)
	if !reg.Contains(root) {
		panic(fmt.Sprintf("topology: tree root %v outside region %v", root, reg))
	}

	WireMeshRegion(net, reg)
	AttachOneToOne(net, reg)
	for _, t := range reg.Tiles(w) {
		EnsureAdaptPorts(net.Router(t))
	}

	// Torus wraparounds on the free edge-facing direction ports (high
	// metal), exactly as ConfigureTorusRegion wires them.
	if reg.W >= 3 {
		for y := reg.Y; y < reg.Y+reg.H; y++ {
			east := noc.Coord{X: reg.X + reg.W - 1, Y: y}.ID(w)
			west := noc.Coord{X: reg.X, Y: y}.ID(w)
			d := reg.W - 1
			net.ConnectBidir(east, noc.PortEast, west, noc.PortWest,
				noc.ChanAdaptable, net.Cfg.LongLinkLatency(d), d)
		}
	}
	if reg.H >= 3 {
		for x := reg.X; x < reg.X+reg.W; x++ {
			south := noc.Coord{X: x, Y: reg.Y + reg.H - 1}.ID(w)
			north := noc.Coord{X: x, Y: reg.Y}.ID(w)
			d := reg.H - 1
			net.ConnectBidir(south, noc.PortSouth, north, noc.PortNorth,
				noc.ChanAdaptable, net.Cfg.LongLinkLatency(d), d)
		}
	}

	// Tree overlay for replies, segments on intermediate metal, plus the
	// root's injection fanout.
	attachMCInjection(net, reg, rootTile, mcTiles)
	tr := buildTree(net, reg, root, true)

	for _, id := range reg.Tiles(w) {
		r := net.Router(id)
		r.SetTable(noc.VNetRequest, torusTableForRouter(net, id, reg))
		r.SetTable(noc.VNetReply, tr.tableFor(net, id, reg))
		r.SetDatelineVNet(noc.VNetRequest, true)
		r.SetDatelineVNet(noc.VNetReply, false)
	}
}
