package topology

import (
	"testing"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
)

// runTraffic injects packets uniformly at random between the given tiles
// and runs until everything is delivered, returning the delivered packets.
func runTraffic(t *testing.T, net *noc.Network, tiles []noc.NodeID, npackets int, seed uint64) []*noc.Packet {
	t.Helper()
	if len(tiles) < 2 {
		t.Fatal("need at least two tiles")
	}
	rng := sim.NewRNG(seed)
	var delivered []*noc.Packet
	net.SetDeliverFunc(func(p *noc.Packet, now sim.Cycle) {
		delivered = append(delivered, p)
	})
	k := sim.NewKernel()
	k.Register(net)

	injected := 0
	k.Register(sim.TickerFunc(func(now sim.Cycle) {
		for injected < npackets && rng.Bernoulli(0.3) {
			src := tiles[rng.Intn(len(tiles))]
			dst := tiles[rng.Intn(len(tiles))]
			if src == dst {
				continue
			}
			class, vnet := noc.ClassCoherence, noc.VNetRequest
			if rng.Bernoulli(0.5) {
				class, vnet = noc.ClassData, noc.VNetReply
			}
			net.Enqueue(net.NewPacket(src, dst, class, vnet, 0), now)
			injected++
		}
	}))

	limit := sim.Cycle(200000)
	for k.Now() < limit && (injected < npackets || len(delivered) < npackets) {
		k.Step()
	}
	if len(delivered) != npackets {
		t.Fatalf("delivered %d of %d packets after %d cycles (in flight %d, pending %d)",
			len(delivered), npackets, k.Now(), net.InFlightFlits(), net.PendingPackets())
	}
	if err := net.CheckCreditInvariant(); err != nil {
		t.Fatal(err)
	}
	if !net.Quiescent() {
		t.Fatal("network not quiescent after all deliveries")
	}
	return delivered
}

func meanHops(pkts []*noc.Packet) float64 {
	if len(pkts) == 0 {
		return 0
	}
	var s float64
	for _, p := range pkts {
		s += float64(p.Hops)
	}
	return s / float64(len(pkts))
}

func meanNetLatency(pkts []*noc.Packet) float64 {
	var s float64
	for _, p := range pkts {
		s += float64(p.NetworkLatency())
	}
	return s / float64(len(pkts))
}

func TestMeshDeliversAll(t *testing.T) {
	cfg := noc.DefaultConfig()
	net := noc.NewNetwork(cfg)
	BuildMesh(net)
	reg := WholeChip(cfg)
	pkts := runTraffic(t, net, reg.Tiles(cfg.Width), 2000, 1)

	for _, p := range pkts {
		cs, cd := noc.CoordOf(p.Src, cfg.Width), noc.CoordOf(p.Dst, cfg.Width)
		want := abs(cs.X-cd.X) + abs(cs.Y-cd.Y) + 1 // +1: ejection router hop count includes first router
		if p.Hops != want {
			t.Fatalf("packet %v took %d hops, want %d (XY minimal)", p, p.Hops, want)
		}
		if p.NetworkLatency() <= 0 {
			t.Fatalf("packet %v has non-positive network latency", p)
		}
	}
}

func TestMeshLatencyMatchesAnalyticalAtLowLoad(t *testing.T) {
	// A single packet with no contention should take exactly
	// hops*(Tr+Tl) + serialization + local attach latencies.
	cfg := noc.DefaultConfig()
	net := noc.NewNetwork(cfg)
	BuildMesh(net)
	k := sim.NewKernel()
	k.Register(net)
	var got *noc.Packet
	net.SetDeliverFunc(func(p *noc.Packet, _ sim.Cycle) { got = p })

	p := net.NewPacket(0, 3, noc.ClassCoherence, noc.VNetRequest, 0)
	net.Enqueue(p, 0)
	k.Run(200)
	if got == nil {
		t.Fatal("packet not delivered")
	}
	// Path: NI -> r0 -> r1 -> r2 -> r3 -> NI. Injection link 1 cycle, then
	// 4 routers at Tr=2 + 3 mesh links at Tl=1 + ejection link 1 cycle.
	want := sim.Cycle(1 + 4*cfg.RouterLatency + 3*cfg.LinkLatency + 1)
	if got.TotalLatency() != want {
		t.Fatalf("zero-load latency = %d, want %d", got.TotalLatency(), want)
	}
	if got.Hops != 4 {
		t.Fatalf("hops = %d, want 4", got.Hops)
	}
}

func TestCMeshRegionDeliversAndReducesHops(t *testing.T) {
	cfg := noc.DefaultConfig()

	meshNet := noc.NewNetwork(cfg)
	reg := Region{X: 2, Y: 2, W: 4, H: 4}
	ConfigureMeshRegion(meshNet, reg)
	meshPkts := runTraffic(t, meshNet, reg.Tiles(cfg.Width), 1500, 7)

	cNet := noc.NewNetwork(cfg)
	ConfigureCMeshRegion(cNet, reg)
	cPkts := runTraffic(t, cNet, reg.Tiles(cfg.Width), 1500, 7)

	if mh, ch := meanHops(meshPkts), meanHops(cPkts); ch >= mh {
		t.Fatalf("cmesh mean hops %.2f not below mesh %.2f", ch, mh)
	}
}

func TestTorusRegionDeliversAndReducesHops(t *testing.T) {
	cfg := noc.DefaultConfig()
	cfg.VCsPerVNet = 2

	reg := Region{X: 0, Y: 0, W: 4, H: 4}
	meshNet := noc.NewNetwork(cfg)
	ConfigureMeshRegion(meshNet, reg)
	meshPkts := runTraffic(t, meshNet, reg.Tiles(cfg.Width), 1500, 13)

	tNet := noc.NewNetwork(cfg)
	ConfigureTorusRegion(tNet, reg)
	tPkts := runTraffic(t, tNet, reg.Tiles(cfg.Width), 1500, 13)

	if mh, th := meanHops(meshPkts), meanHops(tPkts); th >= mh {
		t.Fatalf("torus mean hops %.2f not below mesh %.2f", th, mh)
	}
}

func TestTorusHighLoadNoDeadlock(t *testing.T) {
	cfg := noc.DefaultConfig()
	cfg.VCsPerVNet = 2
	reg := Region{X: 0, Y: 0, W: 8, H: 8}
	net := noc.NewNetwork(cfg)
	ConfigureTorusRegion(net, reg)
	runTraffic(t, net, reg.Tiles(cfg.Width), 8000, 99)
}

func TestTreeRegionDelivers(t *testing.T) {
	cfg := noc.DefaultConfig()
	reg := Region{X: 4, Y: 0, W: 4, H: 4}
	root := noc.Coord{X: 4, Y: 0}.ID(cfg.Width)
	net := noc.NewNetwork(cfg)
	ConfigureTreeRegion(net, reg, root, nil)
	runTraffic(t, net, reg.Tiles(cfg.Width), 3000, 23)
}

func TestTreeRootRepliesWithinThreeHops(t *testing.T) {
	cfg := noc.DefaultConfig()
	reg := Region{X: 0, Y: 0, W: 4, H: 4}
	root := noc.NodeID(0)
	net := noc.NewNetwork(cfg)
	ConfigureTreeRegion(net, reg, root, nil)

	k := sim.NewKernel()
	k.Register(net)
	var delivered []*noc.Packet
	net.SetDeliverFunc(func(p *noc.Packet, _ sim.Cycle) { delivered = append(delivered, p) })
	for _, tile := range reg.Tiles(cfg.Width) {
		if tile == root {
			continue
		}
		net.Enqueue(net.NewPacket(root, tile, noc.ClassData, noc.VNetReply, 0), k.Now())
	}
	k.Run(2000)
	if len(delivered) != reg.Size()-1 {
		t.Fatalf("delivered %d of %d root replies", len(delivered), reg.Size()-1)
	}
	for _, p := range delivered {
		// Hops counts routers traversed. With a corner root in a 4x4 the
		// tree has depth <= 4 edges (two per dimension), i.e. <= 5 routers.
		if p.Hops > 5 {
			t.Errorf("root reply to %d traversed %d routers, want <= 5", p.Dst, p.Hops)
		}
	}
}

func TestFlattenedButterflyDelivers(t *testing.T) {
	cfg := noc.DefaultConfig()
	cfg.RouterLatency = 3
	cfg.VCsPerVNet = 4
	net := noc.NewNetwork(cfg)
	BuildFlattenedButterfly(net)
	reg := WholeChip(cfg)
	pkts := runTraffic(t, net, reg.Tiles(cfg.Width), 3000, 31)
	for _, p := range pkts {
		// At most src anchor, turn router, destination anchor.
		if p.Hops > 3 {
			t.Fatalf("FTBY packet %v traversed %d routers, want <= 3", p, p.Hops)
		}
	}
}

func TestShortcutReducesLatencyForTargetPairs(t *testing.T) {
	cfg := noc.DefaultConfig()

	plain := noc.NewNetwork(cfg)
	BuildMesh(plain)

	sc := noc.NewNetwork(cfg)
	BuildShortcutMesh(sc, []Shortcut{{A: 0, B: 7}, {A: 56, B: 63}})

	// Only traffic between the linked corners.
	probe := func(net *noc.Network) sim.Cycle {
		k := sim.NewKernel()
		k.Register(net)
		var lat sim.Cycle
		net.SetDeliverFunc(func(p *noc.Packet, _ sim.Cycle) { lat = p.TotalLatency() })
		net.Enqueue(net.NewPacket(0, 7, noc.ClassCoherence, noc.VNetRequest, 0), 0)
		k.Run(300)
		return lat
	}
	pl, scl := probe(plain), probe(sc)
	if pl == 0 || scl == 0 {
		t.Fatal("probe packet not delivered")
	}
	if scl >= pl {
		t.Fatalf("shortcut latency %d not below mesh %d", scl, pl)
	}
	// Shortcut network must still deliver general traffic.
	runTraffic(t, sc, WholeChip(cfg).Tiles(cfg.Width), 3000, 47)
}

// TestRandomConfigsDeliver fuzzes the router microarchitecture parameters:
// any (VC count, depth, Tr, Tl) combination within validation limits must
// deliver all traffic on every subNoC topology with credits conserved.
func TestRandomConfigsDeliver(t *testing.T) {
	rng := sim.NewRNG(321)
	trials := 10
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		cfg := noc.DefaultConfig()
		cfg.VCsPerVNet = 2 + rng.Intn(3) // 2..4
		cfg.VCDepth = 3 + rng.Intn(4)    // 3..6
		cfg.RouterLatency = 1 + rng.Intn(3)
		cfg.LinkLatency = 1 + rng.Intn(2)
		if cfg.VCDepth < cfg.DataFlits {
			cfg.VCDepth = cfg.DataFlits
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid config: %v", trial, err)
		}
		reg := Region{X: rng.Intn(3), Y: rng.Intn(3), W: 4, H: 4}
		net := noc.NewNetwork(cfg)
		switch trial % 5 {
		case 0:
			ConfigureMeshRegion(net, reg)
		case 1:
			ConfigureCMeshRegion(net, reg)
		case 2:
			ConfigureTorusRegion(net, reg)
		case 3:
			ConfigureTreeRegion(net, reg, reg.Tiles(cfg.Width)[0], nil)
		case 4:
			ConfigureTorusTreeRegion(net, reg, reg.Tiles(cfg.Width)[5], nil)
		}
		runTraffic(t, net, reg.Tiles(cfg.Width), 800, uint64(500+trial))
	}
}
