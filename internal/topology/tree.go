package topology

import (
	"fmt"

	"adaptnoc/internal/noc"
)

// ConfigureTreeRegion configures a region with the tree reply network of
// Section II-B.3: the request virtual network keeps the full mesh with XY
// routing, while the reply network is a spanning tree rooted at the memory
// controller's router, built from reversed/segmented adaptable links.
//
// Construction follows the paper's scalability principle ("maximize the
// fanout of the root router, connect root and intermediate routers with
// their downstream routers at an evenly-spaced distance in each
// row/column"): a column spine grows from the root as a chain of
// distance-2 adaptable segments (odd offsets hang off the chain by mesh
// links), and each spine router spans its row the same way. Each row's and
// column's single bidirectional adaptable link suffices: the + direction
// chain rides the forward wire and the − direction chain rides the
// reversed wire, in disjoint segments (Fig. 3(b)).
//
// Reply routing is up*/down*: down along tree edges (which always move
// away from the root's coordinates), up along XY-toward-root mesh hops
// (which always move toward them), so the channel sets are disjoint and the
// dependency graph is acyclic. Replies from the root — the dominant flow
// the tree exists for — travel pure down paths.
func ConfigureTreeRegion(net *noc.Network, reg Region, rootTile noc.NodeID, mcTiles []noc.NodeID) {
	w := net.Cfg.Width
	root := noc.CoordOf(rootTile, w)
	if !reg.Contains(root) {
		panic(fmt.Sprintf("topology: tree root %v outside region %v", root, reg))
	}
	WireMeshRegion(net, reg)
	AttachOneToOne(net, reg)
	for _, t := range reg.Tiles(w) {
		EnsureAdaptPorts(net.Router(t))
	}

	attachMCInjection(net, reg, rootTile, mcTiles)
	tr := buildTree(net, reg, root, false)

	for _, id := range reg.Tiles(w) {
		r := net.Router(id)
		r.SetTable(noc.VNetRequest, XYTableForRouter(net, id, reg))
		r.SetTable(noc.VNetReply, tr.tableFor(net, id, reg))
		r.SetDateline(false)
	}
}

// treeEdge is a directed parent→child tree connection.
type treeEdge struct {
	child   noc.NodeID
	outPort int
}

// tree holds the spanning tree and subtree membership.
type tree struct {
	root     noc.NodeID
	children map[noc.NodeID][]treeEdge
	subtree  map[noc.NodeID]map[noc.NodeID]bool // router -> descendant set (incl. self)
}

// buildTree wires the adaptable segments and assembles the spanning tree.
// With intermediate set, segments ride the intermediate metal layers
// (slower, separate wiring budget) — used by the combined topology whose
// high-metal wires carry the torus wraparounds.
func buildTree(net *noc.Network, reg Region, root noc.Coord, intermediate bool) *tree {
	w := net.Cfg.Width
	tr := &tree{
		root:     root.ID(w),
		children: make(map[noc.NodeID][]treeEdge),
		subtree:  make(map[noc.NodeID]map[noc.NodeID]bool),
	}

	addEdge := func(parent, child noc.Coord, outPort int, adapt bool, dist int) {
		p, c := parent.ID(w), child.ID(w)
		if adapt {
			inPort := oppositeAdapt(outPort)
			lat := net.Cfg.LongLinkLatency(dist)
			if intermediate {
				lat = net.Cfg.IntermediateLinkLatency(dist)
			}
			ch := net.Connect(
				noc.Endpoint{Kind: noc.EndRouter, Router: p, Port: outPort},
				noc.Endpoint{Kind: noc.EndRouter, Router: c, Port: inPort},
				noc.ChanAdaptable, lat, dist)
			ch.Intermediate = intermediate
		}
		tr.children[p] = append(tr.children[p], treeEdge{child: c, outPort: outPort})
	}

	// spanDim grows a chain from anchor along one dimension in direction
	// dir (+1/-1): even offsets ride distance-2 adaptable segments, odd
	// offsets hang off the previous even router by a mesh link. visit is
	// called for every router placed (used to grow rows off the spine).
	spanDim := func(anchor noc.Coord, horizontal bool, dir int, visit func(noc.Coord)) {
		at := func(off int) (noc.Coord, bool) {
			c := anchor
			if horizontal {
				c.X += dir * off
			} else {
				c.Y += dir * off
			}
			return c, reg.Contains(c)
		}
		meshPort, adaptPort := dimPorts(horizontal, dir)
		for off := 1; ; off++ {
			c, ok := at(off)
			if !ok {
				return
			}
			if off%2 == 1 {
				parent, _ := at(off - 1)
				addEdge(parent, c, meshPort, false, 1)
			} else {
				parent, _ := at(off - 2)
				addEdge(parent, c, adaptPort, true, 2)
			}
			visit(c)
		}
	}

	// Column spine through the root, rows hanging off every spine router.
	spanRow := func(spine noc.Coord) {
		spanDim(spine, true, +1, func(noc.Coord) {})
		spanDim(spine, true, -1, func(noc.Coord) {})
	}
	spanRow(root)
	spanDim(root, false, +1, spanRow)
	spanDim(root, false, -1, spanRow)

	tr.computeSubtrees(tr.root)
	return tr
}

// oppositeAdapt maps an adaptable output port to the matching input port on
// the receiving router.
func oppositeAdapt(outPort int) int {
	switch outPort {
	case PortAdaptEast:
		return PortAdaptWest
	case PortAdaptWest:
		return PortAdaptEast
	case PortAdaptNorth:
		return PortAdaptSouth
	case PortAdaptSouth:
		return PortAdaptNorth
	default:
		panic(fmt.Sprintf("topology: not an adaptable port: %d", outPort))
	}
}

// dimPorts returns the (mesh, adaptable) output ports moving along a
// dimension in direction dir.
func dimPorts(horizontal bool, dir int) (meshPort, adaptPort int) {
	switch {
	case horizontal && dir > 0:
		return noc.PortEast, PortAdaptEast
	case horizontal:
		return noc.PortWest, PortAdaptWest
	case dir > 0:
		return noc.PortSouth, PortAdaptSouth
	default:
		return noc.PortNorth, PortAdaptNorth
	}
}

// computeSubtrees fills the descendant sets by depth-first traversal.
func (tr *tree) computeSubtrees(v noc.NodeID) map[noc.NodeID]bool {
	set := map[noc.NodeID]bool{v: true}
	for _, e := range tr.children[v] {
		for d := range tr.computeSubtrees(e.child) {
			set[d] = true
		}
	}
	tr.subtree[v] = set
	return set
}

// tableFor builds the reply-vnet table of one router: down a tree edge
// when the destination lies in this router's subtree (root-sourced replies
// — the dominant flow — ride pure tree paths), otherwise dimension-ordered
// XY toward the destination itself. The combined function is deadlock-free
// because every route is XY* followed by down*: once a packet enters the
// subtree containing its destination it descends tree edges only, XY hops
// are mutually acyclic (dimension order), and down edges always move away
// from the root's coordinates while never feeding back into XY.
func (tr *tree) tableFor(net *noc.Network, router noc.NodeID, reg Region) *noc.RoutingTable {
	w := net.Cfg.Width
	t := noc.NewRoutingTable(net.Cfg.NumNodes())
	cur := noc.CoordOf(router, w)
	for _, tile := range reg.Tiles(w) {
		serving := net.ServingRouter(tile)
		if serving == router {
			t.Set(tile, noc.PortLocal, noc.ClassKeep)
			continue
		}
		if down, port := tr.downPort(router, serving); down {
			t.Set(tile, port, noc.ClassKeep)
			continue
		}
		t.Set(tile, xyPort(cur, noc.CoordOf(serving, w)), noc.ClassKeep)
	}
	return t
}

// downPort returns the tree edge whose subtree contains dst, if any.
func (tr *tree) downPort(v, dst noc.NodeID) (bool, int) {
	for _, e := range tr.children[v] {
		if tr.subtree[e.child][dst] {
			return true, e.outPort
		}
	}
	return false, 0
}
