package topology

import (
	"strings"
	"testing"

	"adaptnoc/internal/noc"
)

func TestRenderMesh(t *testing.T) {
	cfg := noc.DefaultConfig()
	net := noc.NewNetwork(cfg)
	reg := Region{W: 3, H: 2}
	ConfigureMeshRegion(net, reg)
	got := Render(net, reg)
	want := "O---O---O\n|   |   |\nO---O---O\n"
	if got != want {
		t.Fatalf("mesh render:\n%s\nwant:\n%s", got, want)
	}
}

func TestRenderCMeshShowsPoweredOffAndAdaptable(t *testing.T) {
	cfg := noc.DefaultConfig()
	net := noc.NewNetwork(cfg)
	reg := Region{W: 4, H: 4}
	ConfigureCMeshRegion(net, reg)
	got := Render(net, reg)
	if !strings.Contains(got, ".") {
		t.Fatalf("no powered-off routers rendered:\n%s", got)
	}
	if !strings.Contains(got, "=") {
		t.Fatalf("no adaptable segments rendered:\n%s", got)
	}
	t.Logf("\n%s", got)
}

func TestRenderTorusWrapsThroughRow(t *testing.T) {
	cfg := noc.DefaultConfig()
	cfg.VCsPerVNet = 2
	net := noc.NewNetwork(cfg)
	reg := Region{W: 4, H: 4}
	ConfigureTorusRegion(net, reg)
	got := Render(net, reg)
	// Wraparound spans the full row: mesh and adaptable overlap -> '#'.
	if !strings.Contains(got, "#") {
		t.Fatalf("no overlapping mesh+wrap rendered:\n%s", got)
	}
	t.Logf("\n%s", got)
}
