package topology

import (
	"strings"
	"testing"
	"testing/quick"

	"adaptnoc/internal/noc"
)

func TestXYPortDirections(t *testing.T) {
	c := noc.Coord{X: 3, Y: 3}
	for _, tc := range []struct {
		dst  noc.Coord
		want int
	}{
		{noc.Coord{X: 5, Y: 3}, noc.PortEast},
		{noc.Coord{X: 0, Y: 7}, noc.PortWest}, // X first
		{noc.Coord{X: 3, Y: 5}, noc.PortSouth},
		{noc.Coord{X: 3, Y: 0}, noc.PortNorth},
		{noc.Coord{X: 3, Y: 3}, noc.PortLocal},
	} {
		if got := xyPort(c, tc.dst); got != tc.want {
			t.Errorf("xyPort(%v,%v) = %s, want %s", c, tc.dst, noc.DirPortName(got), noc.DirPortName(tc.want))
		}
	}
}

func TestRingHopMinimalAndWrapFlag(t *testing.T) {
	// Ring of 8 positions starting at 0, ports +=East, -=West.
	for _, tc := range []struct {
		cur, dst  int
		wantPort  int
		wantWraps bool
	}{
		{0, 3, noc.PortEast, false},
		{0, 5, noc.PortWest, true},  // wrap going minus from position 0
		{7, 1, noc.PortEast, true},  // wrap going plus from the end
		{2, 6, noc.PortEast, false}, // tie fwd=back -> no-wrap direction
		{6, 2, noc.PortWest, false},
	} {
		port, wraps := ringHop(tc.cur, tc.dst, 0, 8, noc.PortEast, noc.PortWest)
		if port != tc.wantPort || wraps != tc.wantWraps {
			t.Errorf("ringHop(%d->%d) = %s wraps=%v, want %s wraps=%v",
				tc.cur, tc.dst, noc.DirPortName(port), wraps,
				noc.DirPortName(tc.wantPort), tc.wantWraps)
		}
	}
	// Degenerate 2-rings never wrap.
	if _, wraps := ringHop(1, 0, 0, 2, noc.PortEast, noc.PortWest); wraps {
		t.Error("2-ring reported a wrap")
	}
}

func TestRingHopAlwaysProgresses(t *testing.T) {
	// Property: following ringHop repeatedly reaches the destination in at
	// most n/2 (+1) steps for any ring size 2..8.
	f := func(curU, dstU, nU uint8) bool {
		n := int(nU%7) + 2
		cur, dst := int(curU)%n, int(dstU)%n
		if cur == dst {
			return true
		}
		pos := cur
		for steps := 0; steps <= n; steps++ {
			if pos == dst {
				return steps <= n/2+1
			}
			port, _ := ringHop(pos, dst, 0, n, noc.PortEast, noc.PortWest)
			if port == noc.PortEast {
				pos = (pos + 1) % n
			} else {
				pos = (pos - 1 + n) % n
			}
			if n < 3 { // no wrap links on degenerate rings
				if pos < 0 || pos >= n {
					return false
				}
			}
		}
		return pos == dst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitDimGrouping(t *testing.T) {
	for _, tc := range []struct {
		lo, n     int
		wantSpans []span
	}{
		{0, 4, []span{{0, 2}, {2, 2}}},
		{2, 5, []span{{2, 2}, {4, 2}, {6, 1}}},
		{0, 1, []span{{0, 1}}},
	} {
		got := splitDim(tc.lo, tc.n)
		if len(got) != len(tc.wantSpans) {
			t.Fatalf("splitDim(%d,%d) = %v", tc.lo, tc.n, got)
		}
		for i := range got {
			if got[i] != tc.wantSpans[i] {
				t.Fatalf("splitDim(%d,%d)[%d] = %v, want %v", tc.lo, tc.n, i, got[i], tc.wantSpans[i])
			}
		}
	}
}

// TestPartitionRowsEdgeWidths pins the degenerate shapes: single-row and
// single-column grids, non-positive shard counts (clamped to one band),
// shard counts past the row count (clamped to one band per row), and the
// empty-grid panic.
func TestPartitionRowsEdgeWidths(t *testing.T) {
	for _, tc := range []struct {
		w, h, k  int
		wantLens []int // band heights in order
	}{
		{1, 1, 1, []int{1}},
		{1, 1, 5, []int{1}},
		{1, 8, 3, []int{2, 3, 3}},
		{8, 1, 4, []int{1}},
		{3, 2, 2, []int{1, 1}},
		{8, 8, 0, []int{8}},
		{8, 8, -2, []int{8}},
		{2, 5, 2, []int{2, 3}},
		{2, 5, 4, []int{1, 1, 1, 2}},
		{2, 5, 5, []int{1, 1, 1, 1, 1}},
	} {
		regs := PartitionRows(tc.w, tc.h, tc.k)
		if len(regs) != len(tc.wantLens) {
			t.Fatalf("PartitionRows(%d,%d,%d) gave %d bands, want %d", tc.w, tc.h, tc.k, len(regs), len(tc.wantLens))
		}
		y := 0
		for i, r := range regs {
			if r.H != tc.wantLens[i] {
				t.Errorf("PartitionRows(%d,%d,%d)[%d].H = %d, want %d", tc.w, tc.h, tc.k, i, r.H, tc.wantLens[i])
			}
			if r.X != 0 || r.W != tc.w || r.Y != y {
				t.Errorf("PartitionRows(%d,%d,%d)[%d] = %v, want full-width band at Y=%d", tc.w, tc.h, tc.k, i, r, y)
			}
			y += r.H
		}
	}
	for _, tc := range [][2]int{{0, 8}, {8, 0}, {-1, 1}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PartitionRows(%d,%d,1) on an empty grid did not panic", tc[0], tc[1])
				}
			}()
			PartitionRows(tc[0], tc[1], 1)
		}()
	}
}

func TestPartitionRowsCoversAndBalances(t *testing.T) {
	for _, tc := range []struct{ w, h, k int }{
		{8, 8, 1}, {8, 8, 2}, {8, 8, 3}, {8, 8, 8}, {8, 8, 12},
		{16, 16, 4}, {32, 32, 7}, {5, 3, 2},
	} {
		regs := PartitionRows(tc.w, tc.h, tc.k)
		wantK := tc.k
		if wantK > tc.h {
			wantK = tc.h
		}
		if len(regs) != wantK {
			t.Fatalf("PartitionRows(%d,%d,%d) gave %d regions, want %d", tc.w, tc.h, tc.k, len(regs), wantK)
		}
		nextY, minH, maxH := 0, tc.h, 0
		for _, r := range regs {
			if r.X != 0 || r.W != tc.w {
				t.Fatalf("region %v is not a full-width band", r)
			}
			if r.Y != nextY {
				t.Fatalf("region %v leaves a gap: want Y=%d", r, nextY)
			}
			nextY += r.H
			if r.H < minH {
				minH = r.H
			}
			if r.H > maxH {
				maxH = r.H
			}
		}
		if nextY != tc.h {
			t.Fatalf("bands cover %d of %d rows", nextY, tc.h)
		}
		if maxH-minH > 1 {
			t.Fatalf("band heights range %d..%d, want spread <= 1", minH, maxH)
		}
	}
}

// TestPartitionRowsMatchesNetworkBanding pins the agreement between the
// exported partitioner and the banding the sharded network tick actually
// uses: every router must land in the shard whose PartitionRows region
// contains its row.
func TestPartitionRowsMatchesNetworkBanding(t *testing.T) {
	cfg := noc.DefaultConfig()
	for _, k := range []int{1, 2, 3, 5, 8} {
		net := noc.NewNetwork(cfg)
		BuildMesh(net)
		net.SetShards(k)
		regs := PartitionRows(cfg.Width, cfg.Height, k)
		for _, id := range WholeChip(cfg).Tiles(cfg.Width) {
			got := net.ShardOfRouter(id)
			c := noc.CoordOf(id, cfg.Width)
			want := -1
			for i, r := range regs {
				if r.Contains(c) {
					want = i
				}
			}
			if got != want {
				t.Fatalf("shards=%d router %d at %v: network shard %d, PartitionRows region %d", k, id, c, got, want)
			}
		}
	}
}

func TestTreeStructureProperties(t *testing.T) {
	cfg := noc.DefaultConfig()
	net := noc.NewNetwork(cfg)
	reg := Region{W: 4, H: 8}
	root := noc.Coord{X: 2, Y: 4}
	for _, tile := range reg.Tiles(cfg.Width) {
		EnsureAdaptPorts(net.Router(tile))
	}
	WireMeshRegion(net, reg)
	AttachOneToOne(net, reg)
	tr := buildTree(net, reg, root, false)

	// Spanning: every region tile is in the root's subtree.
	rootSet := tr.subtree[tr.root]
	for _, tile := range reg.Tiles(cfg.Width) {
		if !rootSet[tile] {
			t.Fatalf("tile %d not spanned by the tree", tile)
		}
	}
	if len(rootSet) != reg.Size() {
		t.Fatalf("tree spans %d tiles, want %d", len(rootSet), reg.Size())
	}
	// Each non-root node has exactly one parent (tree property): count
	// child references.
	parents := map[noc.NodeID]int{}
	for _, edges := range tr.children {
		for _, e := range edges {
			parents[e.child]++
		}
	}
	for _, tile := range reg.Tiles(cfg.Width) {
		want := 1
		if tile == tr.root {
			want = 0
		}
		if parents[tile] != want {
			t.Fatalf("tile %d has %d parents, want %d", tile, parents[tile], want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		Mesh: "mesh", CMesh: "cmesh", Torus: "torus", Tree: "tree", TorusTree: "torus+tree",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind string")
	}
}

func TestRegionOps(t *testing.T) {
	r := Region{X: 2, Y: 2, W: 3, H: 2}
	if r.Size() != 6 {
		t.Fatalf("Size = %d", r.Size())
	}
	if !r.Contains(noc.Coord{X: 4, Y: 3}) || r.Contains(noc.Coord{X: 5, Y: 2}) {
		t.Fatal("Contains boundary wrong")
	}
	if !r.Overlaps(Region{X: 4, Y: 3, W: 2, H: 2}) {
		t.Fatal("Overlaps false negative")
	}
	if r.Overlaps(Region{X: 5, Y: 2, W: 1, H: 1}) {
		t.Fatal("Overlaps false positive")
	}
	tiles := r.Tiles(8)
	if len(tiles) != 6 || tiles[0] != 18 || tiles[5] != 28 {
		t.Fatalf("Tiles = %v", tiles)
	}
}
