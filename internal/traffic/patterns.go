package traffic

import (
	"fmt"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
)

// Pattern generates destinations for synthetic open-loop traffic — the
// standard NoC characterization workloads (uniform random, transpose,
// bit-complement, hotspot, neighbour). They complement the closed-loop
// application profiles: the paper's subNoC topologies trade latency
// against saturation throughput, and these patterns expose exactly that
// trade-off (see exp.LatencyThroughput).
type Pattern interface {
	// Dst returns the destination tile for a packet sourced at src, or
	// ok=false when the pattern gives src no partner (e.g. transpose on
	// the diagonal).
	Dst(src noc.Coord, rng *sim.RNG) (noc.Coord, bool)
	// Name identifies the pattern.
	Name() string
}

// region bounds and helpers shared by the patterns.
type patternRegion struct {
	X, Y, W, H int
}

func (r patternRegion) contains(c noc.Coord) bool {
	return c.X >= r.X && c.X < r.X+r.W && c.Y >= r.Y && c.Y < r.Y+r.H
}

// Uniform sends every packet to a uniformly random tile of the region.
type Uniform struct{ Region patternRegion }

// NewUniform builds a uniform-random pattern over a region.
func NewUniform(x, y, w, h int) *Uniform {
	return &Uniform{Region: patternRegion{x, y, w, h}}
}

// Name implements Pattern.
func (u *Uniform) Name() string { return "uniform" }

// Dst implements Pattern.
func (u *Uniform) Dst(src noc.Coord, rng *sim.RNG) (noc.Coord, bool) {
	for tries := 0; tries < 8; tries++ {
		d := noc.Coord{X: u.Region.X + rng.Intn(u.Region.W), Y: u.Region.Y + rng.Intn(u.Region.H)}
		if d != src {
			return d, true
		}
	}
	return src, false
}

// Transpose sends (x, y) to (y, x) relative to the region origin — the
// adversarial pattern for dimension-ordered routing.
type Transpose struct{ Region patternRegion }

// NewTranspose builds a transpose pattern over a square region.
func NewTranspose(x, y, w, h int) *Transpose {
	if w != h {
		panic("traffic: transpose needs a square region")
	}
	return &Transpose{Region: patternRegion{x, y, w, h}}
}

// Name implements Pattern.
func (t *Transpose) Name() string { return "transpose" }

// Dst implements Pattern.
func (t *Transpose) Dst(src noc.Coord, _ *sim.RNG) (noc.Coord, bool) {
	rx, ry := src.X-t.Region.X, src.Y-t.Region.Y
	d := noc.Coord{X: t.Region.X + ry, Y: t.Region.Y + rx}
	return d, d != src
}

// BitComplement sends (x, y) to the diagonally opposite tile.
type BitComplement struct{ Region patternRegion }

// NewBitComplement builds a bit-complement pattern over a region.
func NewBitComplement(x, y, w, h int) *BitComplement {
	return &BitComplement{Region: patternRegion{x, y, w, h}}
}

// Name implements Pattern.
func (b *BitComplement) Name() string { return "bitcomp" }

// Dst implements Pattern.
func (b *BitComplement) Dst(src noc.Coord, _ *sim.RNG) (noc.Coord, bool) {
	d := noc.Coord{
		X: b.Region.X + (b.Region.W - 1 - (src.X - b.Region.X)),
		Y: b.Region.Y + (b.Region.H - 1 - (src.Y - b.Region.Y)),
	}
	return d, d != src
}

// HotspotPattern sends a fraction of traffic to one hot tile and the rest
// uniformly — the many-to-one stress the paper's tree topology targets.
type HotspotPattern struct {
	Region patternRegion
	Hot    noc.Coord
	Frac   float64
}

// NewHotspot builds a hotspot pattern.
func NewHotspot(x, y, w, h int, hot noc.Coord, frac float64) *HotspotPattern {
	return &HotspotPattern{Region: patternRegion{x, y, w, h}, Hot: hot, Frac: frac}
}

// Name implements Pattern.
func (h *HotspotPattern) Name() string { return fmt.Sprintf("hotspot%.0f", 100*h.Frac) }

// Dst implements Pattern.
func (h *HotspotPattern) Dst(src noc.Coord, rng *sim.RNG) (noc.Coord, bool) {
	if rng.Bernoulli(h.Frac) && src != h.Hot {
		return h.Hot, true
	}
	u := Uniform{Region: h.Region}
	return u.Dst(src, rng)
}

// Neighbour sends each packet one hop east (wrapping inside the region) —
// the best case for any grid topology.
type Neighbour struct{ Region patternRegion }

// NewNeighbour builds a nearest-neighbour pattern.
func NewNeighbour(x, y, w, h int) *Neighbour {
	return &Neighbour{Region: patternRegion{x, y, w, h}}
}

// Name implements Pattern.
func (n *Neighbour) Name() string { return "neighbour" }

// Dst implements Pattern.
func (n *Neighbour) Dst(src noc.Coord, _ *sim.RNG) (noc.Coord, bool) {
	d := src
	d.X = n.Region.X + (src.X-n.Region.X+1)%n.Region.W
	return d, d != src
}

// OpenLoopSource injects synthetic packets at a fixed per-tile rate
// (packets per node per cycle), the standard open-loop methodology:
// injection does not throttle with congestion, so queues grow without
// bound past saturation. It implements sim.Ticker.
type OpenLoopSource struct {
	Net     *noc.Network
	Pat     Pattern
	Tiles   []noc.NodeID
	Rate    float64 // packets per node per cycle
	DataPct float64 // fraction of packets that are multi-flit data
	RNG     *sim.RNG

	Injected int64
}

// Tick implements sim.Ticker.
func (s *OpenLoopSource) Tick(now sim.Cycle) {
	w := s.Net.Cfg.Width
	for _, t := range s.Tiles {
		if !s.RNG.Bernoulli(s.Rate) {
			continue
		}
		src := noc.CoordOf(t, w)
		dst, ok := s.Pat.Dst(src, s.RNG)
		if !ok {
			continue
		}
		class, vnet := noc.ClassCoherence, noc.VNetRequest
		if s.RNG.Bernoulli(s.DataPct) {
			class, vnet = noc.ClassData, noc.VNetReply
		}
		s.Net.Enqueue(s.Net.NewPacket(t, dst.ID(w), class, vnet, 0), now)
		s.Injected++
	}
}
