package traffic

// Dependency-trace format ("ADNOCTRC") and the TraceSource that replays
// it. A trace is a per-application DAG of packets in the Netrace style:
// each node names the packets that must retire (deliver or drop) before
// it becomes eligible, plus a gap in cycles between that release and its
// injection. Replay therefore adapts to the network it runs on — a slow
// fabric delays dependents instead of injecting an impossible schedule —
// while staying fully deterministic.
//
// Framing mirrors the checkpoint codec: magic + version + a
// gzip-compressed snap-section body, with every length bounds-checked
// before allocation (the trace decoder has its own fuzz target).

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/snap"
)

// Trace framing constants.
const (
	// TraceMagic identifies a dependency-trace blob.
	TraceMagic = "ADNOCTRC"
	// TraceVersion bumps on any format change; readers reject others.
	TraceVersion = 1
)

// Decode-side caps: a trace travels inside configs and over the serving
// API, so a few bytes must not be able to demand gigabytes.
const (
	maxTraceBody    = 1 << 28
	maxTraceApps    = 64
	maxTraceNodes   = 1 << 24
	maxNodeDeps     = 16
	maxTraceGridDim = 64
)

func corruptf(format string, args ...any) error {
	return fmt.Errorf("traffic: %s", fmt.Sprintf(format, args...))
}

// TraceNode is one recorded packet.
type TraceNode struct {
	// Src and Dst are region-relative tile indices (ry*W + rx), or
	// absolute tile IDs on the recorded grid when the matching Abs flag
	// is set (foreign-MC traffic crosses the region boundary).
	Src, Dst       int32
	SrcAbs, DstAbs bool
	// Data selects the multi-flit data class on the reply vnet.
	Data bool
	// Deps are earlier node indices that must retire before this node is
	// released; an empty list releases at recording start.
	Deps []int32
	// Gap is the cycle distance between release and injection.
	Gap uint32
	// DRetired/DL1D/DL1I/DL2 are the instruction/cache stat deltas folded
	// into the app's counters when this node injects, reconstructing the
	// recorded run's observable progress alongside its traffic.
	DRetired, DL1D, DL1I, DL2 int64
}

// TraceApp is one application's recorded stream.
type TraceApp struct {
	// Profile is the recorded workload's label (results tables reuse it).
	Profile string
	// X, Y, W, H is the recorded region placement.
	X, Y, W, H int
	// MCs are the recorded memory controllers, region-relative.
	MCs   []int32
	Nodes []TraceNode
}

// Trace is a decoded dependency trace.
type Trace struct {
	// GridW, GridH is the chip the trace was recorded on.
	GridW, GridH int
	Apps         []TraceApp
}

// validate bounds every field so a hostile blob cannot build an
// inconsistent source. Dependencies may only point backwards, which makes
// any decoded trace a DAG by construction.
func (t *Trace) validate() error {
	if t.GridW < 2 || t.GridH < 2 || t.GridW > maxTraceGridDim || t.GridH > maxTraceGridDim {
		return corruptf("trace grid %dx%d out of range", t.GridW, t.GridH)
	}
	if len(t.Apps) == 0 || len(t.Apps) > maxTraceApps {
		return corruptf("trace has %d apps, want 1..%d", len(t.Apps), maxTraceApps)
	}
	for ai := range t.Apps {
		a := &t.Apps[ai]
		if a.W < 1 || a.H < 1 || a.X < 0 || a.Y < 0 ||
			a.X+a.W > t.GridW || a.Y+a.H > t.GridH {
			return corruptf("trace app %d region %d,%d %dx%d outside %dx%d grid",
				ai, a.X, a.Y, a.W, a.H, t.GridW, t.GridH)
		}
		region := int32(a.W * a.H)
		grid := int32(t.GridW * t.GridH)
		for mi, mc := range a.MCs {
			if mc < 0 || mc >= region {
				return corruptf("trace app %d MC %d: tile %d outside region", ai, mi, mc)
			}
		}
		if len(a.Nodes) > maxTraceNodes {
			return corruptf("trace app %d has %d nodes, limit %d", ai, len(a.Nodes), maxTraceNodes)
		}
		for ni := range a.Nodes {
			n := &a.Nodes[ni]
			srcLim, dstLim := region, region
			if n.SrcAbs {
				srcLim = grid
			}
			if n.DstAbs {
				dstLim = grid
			}
			if n.Src < 0 || n.Src >= srcLim || n.Dst < 0 || n.Dst >= dstLim {
				return corruptf("trace app %d node %d: endpoint out of range", ai, ni)
			}
			if n.SrcAbs == n.DstAbs && n.Src == n.Dst {
				return corruptf("trace app %d node %d: src == dst", ai, ni)
			}
			if len(n.Deps) > maxNodeDeps {
				return corruptf("trace app %d node %d: %d deps, limit %d", ai, ni, len(n.Deps), maxNodeDeps)
			}
			for _, d := range n.Deps {
				if d < 0 || d >= int32(ni) {
					return corruptf("trace app %d node %d: dep %d not an earlier node", ai, ni, d)
				}
			}
		}
	}
	return nil
}

// FitsGrid checks that every absolute endpoint of the recorded stream
// lands on a w×h replay grid. Region-relative endpoints move with the
// region, but absolute ones (foreign-MC traffic) were recorded against
// the full chip and must exist on the chip replaying them.
func (a *TraceApp) FitsGrid(w, h int) error {
	grid := int32(w * h)
	for ni := range a.Nodes {
		n := &a.Nodes[ni]
		if (n.SrcAbs && n.Src >= grid) || (n.DstAbs && n.Dst >= grid) {
			return corruptf("trace node %d: absolute endpoint outside the %dx%d replay grid", ni, w, h)
		}
	}
	return nil
}

// EncodeTrace serializes a trace. The encoding is deterministic: equal
// traces yield equal bytes, so trace content is content-addressable
// wherever configs are.
func EncodeTrace(t *Trace) ([]byte, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	var body snap.Writer
	var meta snap.Writer
	meta.Int(t.GridW)
	meta.Int(t.GridH)
	meta.Uvarint(uint64(len(t.Apps)))
	body.Section("meta", meta.Bytes())
	for ai := range t.Apps {
		a := &t.Apps[ai]
		var w snap.Writer
		w.String(a.Profile)
		w.Int(a.X)
		w.Int(a.Y)
		w.Int(a.W)
		w.Int(a.H)
		w.Uvarint(uint64(len(a.MCs)))
		for _, mc := range a.MCs {
			w.Varint(int64(mc))
		}
		w.Uvarint(uint64(len(a.Nodes)))
		for ni := range a.Nodes {
			n := &a.Nodes[ni]
			var flags byte
			if n.Data {
				flags |= 1
			}
			if n.SrcAbs {
				flags |= 2
			}
			if n.DstAbs {
				flags |= 4
			}
			w.Uvarint(uint64(flags))
			w.Varint(int64(n.Src))
			w.Varint(int64(n.Dst))
			w.Uvarint(uint64(n.Gap))
			w.Uvarint(uint64(len(n.Deps)))
			for _, d := range n.Deps {
				// Backward distance: small for the chain-shaped deps the
				// recorder emits, so it varint-packs tightly.
				w.Uvarint(uint64(int32(ni) - d))
			}
			w.Varint(n.DRetired)
			w.Varint(n.DL1D)
			w.Varint(n.DL1I)
			w.Varint(n.DL2)
		}
		body.Section("app", w.Bytes())
	}

	var out bytes.Buffer
	out.WriteString(TraceMagic)
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], TraceVersion)
	out.Write(ver[:])
	zw := gzip.NewWriter(&out)
	zw.OS = 255 // "unknown", the deterministic choice
	if _, err := zw.Write(body.Bytes()); err != nil {
		panic(fmt.Sprintf("traffic: gzip to memory failed: %v", err)) // cannot happen
	}
	if err := zw.Close(); err != nil {
		panic(fmt.Sprintf("traffic: gzip to memory failed: %v", err))
	}
	return out.Bytes(), nil
}

// DecodeTrace parses and validates a trace blob. It is safe on
// adversarial input: every count is bounds-checked before allocation and
// the decompressed size is capped.
func DecodeTrace(blob []byte) (*Trace, error) {
	if len(blob) < len(TraceMagic)+4 {
		return nil, corruptf("trace too short")
	}
	if string(blob[:len(TraceMagic)]) != TraceMagic {
		return nil, corruptf("bad trace magic")
	}
	ver := binary.LittleEndian.Uint32(blob[len(TraceMagic):])
	if ver != TraceVersion {
		return nil, corruptf("trace version %d, want %d", ver, TraceVersion)
	}
	zr, err := gzip.NewReader(bytes.NewReader(blob[len(TraceMagic)+4:]))
	if err != nil {
		return nil, corruptf("bad trace body: %v", err)
	}
	bodyBytes, err := io.ReadAll(io.LimitReader(zr, maxTraceBody+1))
	if cerr := zr.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, corruptf("bad trace body: %v", err)
	}
	if len(bodyBytes) > maxTraceBody {
		return nil, corruptf("trace body exceeds %d bytes", maxTraceBody)
	}

	r := snap.NewReader(bodyBytes)
	mr, err := r.Section("meta")
	if err != nil {
		return nil, err
	}
	t := &Trace{}
	if t.GridW, err = mr.Int(); err != nil {
		return nil, err
	}
	if t.GridH, err = mr.Int(); err != nil {
		return nil, err
	}
	// Plain Uvarint, not Count: the app sections follow in the parent
	// reader, so the meta section's own remaining length proves nothing.
	nApps, err := mr.Uvarint()
	if err != nil {
		return nil, err
	}
	if err := mr.Done(); err != nil {
		return nil, err
	}
	if nApps == 0 || nApps > maxTraceApps {
		return nil, corruptf("trace has %d apps, limit %d", nApps, maxTraceApps)
	}
	t.Apps = make([]TraceApp, nApps)
	for ai := range t.Apps {
		ar, err := r.Section("app")
		if err != nil {
			return nil, err
		}
		if err := decodeTraceApp(ar, &t.Apps[ai]); err != nil {
			return nil, fmt.Errorf("traffic: trace app %d: %w", ai, err)
		}
		if err := ar.Done(); err != nil {
			return nil, err
		}
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func decodeTraceApp(r *snap.Reader, a *TraceApp) error {
	var err error
	if a.Profile, err = r.String(); err != nil {
		return err
	}
	for _, dst := range []*int{&a.X, &a.Y, &a.W, &a.H} {
		if *dst, err = r.Int(); err != nil {
			return err
		}
	}
	nMCs, err := r.Count(1)
	if err != nil {
		return err
	}
	a.MCs = make([]int32, nMCs)
	for i := range a.MCs {
		v, err := r.Varint()
		if err != nil {
			return err
		}
		a.MCs[i] = int32(v)
	}
	// Minimum node encoding: flags + src + dst + gap + dep count + four
	// stat deltas = 9 bytes.
	nNodes, err := r.Count(9)
	if err != nil {
		return err
	}
	if nNodes > maxTraceNodes {
		return corruptf("%d nodes, limit %d", nNodes, maxTraceNodes)
	}
	a.Nodes = make([]TraceNode, nNodes)
	for ni := range a.Nodes {
		n := &a.Nodes[ni]
		flags, err := r.Uvarint()
		if err != nil {
			return err
		}
		if flags&^uint64(7) != 0 {
			return corruptf("node %d: unknown flags %#x", ni, flags)
		}
		n.Data = flags&1 != 0
		n.SrcAbs = flags&2 != 0
		n.DstAbs = flags&4 != 0
		src, err := r.Varint()
		if err != nil {
			return err
		}
		dst, err := r.Varint()
		if err != nil {
			return err
		}
		n.Src, n.Dst = int32(src), int32(dst)
		gap, err := r.Uvarint()
		if err != nil {
			return err
		}
		if gap > 1<<32-1 {
			return corruptf("node %d: gap %d overflows", ni, gap)
		}
		n.Gap = uint32(gap)
		nDeps, err := r.Count(1)
		if err != nil {
			return err
		}
		if nDeps > maxNodeDeps {
			return corruptf("node %d: %d deps, limit %d", ni, nDeps, maxNodeDeps)
		}
		if nDeps > 0 {
			n.Deps = make([]int32, nDeps)
			for di := range n.Deps {
				back, err := r.Uvarint()
				if err != nil {
					return err
				}
				if back == 0 || back > uint64(ni) {
					return corruptf("node %d: dep distance %d out of range", ni, back)
				}
				n.Deps[di] = int32(ni) - int32(back)
			}
		}
		for _, dst := range []*int64{&n.DRetired, &n.DL1D, &n.DL1I, &n.DL2} {
			if *dst, err = r.Varint(); err != nil {
				return err
			}
		}
	}
	return nil
}

// injEntry is one released-but-not-yet-injected node.
type injEntry struct {
	cycle sim.Cycle
	node  int32
}

// injHeap is a deterministic min-heap ordered by (cycle, node index) —
// ties break on the node, so two runs always pop identically.
type injHeap []injEntry

func (h injHeap) less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].node < h[j].node
}

func (h *injHeap) push(e injEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !(*h).less(i, p) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *injHeap) pop() injEntry {
	top := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(*h) && (*h).less(l, small) {
			small = l
		}
		if r < len(*h) && (*h).less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// TraceSource replays one TraceApp: nodes inject Gap cycles after their
// last dependency retires, and the machine reports retirements back
// through Retire. It implements Source and Retirer.
type TraceSource struct {
	app *TraceApp
	// originX/originY place the recorded region on the replay grid;
	// gridW converts coordinates to tile IDs.
	originX, originY, gridW int

	dependents [][]int32
	depLeft    []int32
	injected   []bool
	retired    []bool
	ready      injHeap
	nRetired   int

	win, total *Stats

	events []Event
	evHead int
}

// NewTraceSource builds a replay source for app, placing the recorded
// region at (originX, originY) on a grid gridW tiles wide. The region
// dimensions must match the recording (the caller validates).
func NewTraceSource(app *TraceApp, originX, originY, gridW int) *TraceSource {
	s := &TraceSource{
		app: app, originX: originX, originY: originY, gridW: gridW,
		dependents: make([][]int32, len(app.Nodes)),
		depLeft:    make([]int32, len(app.Nodes)),
		injected:   make([]bool, len(app.Nodes)),
		retired:    make([]bool, len(app.Nodes)),
	}
	for ni := range app.Nodes {
		n := &app.Nodes[ni]
		s.depLeft[ni] = int32(len(n.Deps))
		for _, d := range n.Deps {
			s.dependents[d] = append(s.dependents[d], int32(ni))
		}
		if len(n.Deps) == 0 {
			s.ready.push(injEntry{cycle: sim.Cycle(n.Gap), node: int32(ni)})
		}
	}
	return s
}

// tile converts one recorded endpoint to a replay tile ID.
func (s *TraceSource) tile(idx int32, abs bool) noc.NodeID {
	if abs {
		return noc.NodeID(idx)
	}
	rx, ry := int(idx)%s.app.W, int(idx)/s.app.W
	return noc.NodeID((s.originY+ry)*s.gridW + (s.originX + rx))
}

// Bind implements Source.
func (s *TraceSource) Bind(v View) { s.win, s.total = v.Stats() }

// Finite implements Source: a trace always ends.
func (s *TraceSource) Finite() bool { return true }

// Progress implements Source: retired nodes.
func (s *TraceSource) Progress() float64 { return float64(s.nRetired) }

// StallCycles implements Source: trace replay has no MLP window.
func (s *TraceSource) StallCycles() int64 { return 0 }

// Advance implements Source: inject every node whose release gap has
// elapsed, folding its recorded stat deltas into the app counters.
func (s *TraceSource) Advance(now sim.Cycle) bool {
	s.events = s.events[:0]
	s.evHead = 0
	for len(s.ready) > 0 && s.ready[0].cycle <= now {
		e := s.ready.pop()
		n := &s.app.Nodes[e.node]
		s.injected[e.node] = true
		s.win.Retired += n.DRetired
		s.total.Retired += n.DRetired
		s.win.L1DMisses += n.DL1D
		s.total.L1DMisses += n.DL1D
		s.win.L1IMisses += n.DL1I
		s.total.L1IMisses += n.DL1I
		s.win.L2Misses += n.DL2
		s.total.L2Misses += n.DL2
		src := s.tile(n.Src, n.SrcAbs)
		dst := s.tile(n.Dst, n.DstAbs)
		if src == dst {
			// A re-placed region can collapse an absolute endpoint onto a
			// moved tile; the packet has nowhere to travel, so it retires
			// on the spot and releases its dependents.
			s.Retire(uint64(e.node), now)
			continue
		}
		s.events = append(s.events, Event{
			Kind: EvPacket, Src: src, Dst: dst, Data: n.Data, Ref: uint64(e.node),
		})
	}
	return s.nRetired == len(s.app.Nodes)
}

// NextEvent implements Source.
func (s *TraceSource) NextEvent() (Event, bool) {
	if s.evHead >= len(s.events) {
		return Event{}, false
	}
	ev := s.events[s.evHead]
	s.evHead++
	return ev, true
}

// Retire implements Retirer: the machine reports a replayed packet's
// delivery (or fault drop — lost packets still release their dependents,
// so a faulty fabric degrades the replay instead of deadlocking it).
func (s *TraceSource) Retire(ref uint64, now sim.Cycle) {
	if ref >= uint64(len(s.app.Nodes)) || s.retired[ref] {
		return
	}
	s.retired[ref] = true
	s.nRetired++
	for _, d := range s.dependents[ref] {
		s.depLeft[d]--
		if s.depLeft[d] == 0 {
			s.ready.push(injEntry{cycle: now + sim.Cycle(s.app.Nodes[d].Gap), node: d})
		}
	}
}

// Snapshot implements Source: the injected/retired bitmaps and the
// released-pending set. Dependency counts are recomputed on restore.
func (s *TraceSource) Snapshot(w *snap.Writer) {
	writeBitmap(w, s.injected)
	writeBitmap(w, s.retired)
	// Canonical order: the heap's array layout depends on operation
	// history, so serialize a sorted copy (which is itself a valid heap).
	pend := append(injHeap(nil), s.ready...)
	sort.Slice(pend, func(i, j int) bool { return pend.less(i, j) })
	w.Uvarint(uint64(len(pend)))
	for _, e := range pend {
		w.I64(int64(e.cycle))
		w.Varint(int64(e.node))
	}
}

// Restore implements Source.
func (s *TraceSource) Restore(r *snap.Reader) error {
	if err := readBitmap(r, s.injected); err != nil {
		return err
	}
	if err := readBitmap(r, s.retired); err != nil {
		return err
	}
	s.nRetired = 0
	for ni := range s.retired {
		if s.retired[ni] && !s.injected[ni] {
			return corruptf("trace node %d retired but never injected", ni)
		}
		if s.retired[ni] {
			s.nRetired++
		}
		s.depLeft[ni] = 0
		for _, d := range s.app.Nodes[ni].Deps {
			if !s.retired[d] {
				s.depLeft[ni]++
			}
		}
	}
	nPend, err := r.Count(9)
	if err != nil {
		return err
	}
	s.ready = s.ready[:0]
	released := 0
	for ni := range s.app.Nodes {
		if !s.injected[ni] && s.depLeft[ni] == 0 {
			released++
		}
	}
	if nPend != released {
		return corruptf("trace snapshot has %d pending nodes, want %d", nPend, released)
	}
	for i := 0; i < nPend; i++ {
		cyc, err := r.I64()
		if err != nil {
			return err
		}
		node, err := r.Varint()
		if err != nil {
			return err
		}
		if node < 0 || node >= int64(len(s.app.Nodes)) {
			return corruptf("trace snapshot pending node %d out of range", node)
		}
		if s.injected[node] || s.depLeft[node] != 0 {
			return corruptf("trace snapshot pending node %d not releasable", node)
		}
		// Entries were serialized in sorted order, which satisfies the
		// heap invariant as-is.
		s.ready = append(s.ready, injEntry{cycle: sim.Cycle(cyc), node: int32(node)})
	}
	s.events = s.events[:0]
	s.evHead = 0
	return nil
}

func writeBitmap(w *snap.Writer, bits []bool) {
	words := make([]uint64, (len(bits)+63)/64)
	for i, b := range bits {
		if b {
			words[i/64] |= 1 << (i % 64)
		}
	}
	w.Uvarint(uint64(len(bits)))
	for _, word := range words {
		w.U64(word)
	}
}

func readBitmap(r *snap.Reader, bits []bool) error {
	n, err := r.Uvarint()
	if err != nil {
		return err
	}
	if n != uint64(len(bits)) {
		return corruptf("bitmap has %d bits, want %d", n, len(bits))
	}
	for wi := 0; wi < (len(bits)+63)/64; wi++ {
		word, err := r.U64()
		if err != nil {
			return err
		}
		for j := 0; j < 64 && wi*64+j < len(bits); j++ {
			bits[wi*64+j] = word&(1<<j) != 0
		}
	}
	return nil
}
