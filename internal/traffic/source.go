package traffic

// The Source layer decouples "what a core does" from "how the machine
// moves packets". A Source owns the per-core execution state (retired
// instructions, phase position, RNG streams for the synthetic profiles;
// dependency graphs for trace replay) and turns one simulated cycle into
// a stream of injection events; internal/system owns everything on the
// other side of the network interface (transactions, memory controllers,
// outstanding-request windows, delivery accounting).
//
// Determinism contract (see DESIGN.md §12): a Source must be a pure
// function of its construction arguments, its serialized state, and the
// sequence of Advance/Retire calls. It must not read wall clocks, map
// iteration order, or any state the machine does not expose through View
// — so a run, a restored checkpoint of the run, and a resharded run all
// draw identical event streams.

import (
	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/snap"
)

// Stats are the instruction/cache observations a Source feeds into the
// owning application's epoch window and lifetime totals (the portion of
// the RL state vector the workload produces; packet and latency counters
// stay machine-owned).
type Stats struct {
	Retired   int64
	L1DMisses int64
	L1IMisses int64
	L2Misses  int64 // L2 -> memory controller accesses
}

// View is the machine-side state a Source may consult while advancing:
// the per-core outstanding-request windows (closed-loop throttling) and
// the counter blocks it folds observations into. The pointers returned by
// Stats are stable for the application's lifetime.
type View interface {
	// Outstanding returns core i's in-flight memory request count.
	Outstanding(core int) int
	// Deliverable reports whether a from→to request injection would be
	// accepted by the network rather than synchronously fault-dropped.
	// A drop at injection immediately releases the outstanding slot, so
	// a source must not count such an issue against the MLP window —
	// exactly the behaviour the pre-Source machine had, where the drop
	// callback decremented the counter mid-burst.
	Deliverable(from, to noc.NodeID) bool
	// Stats returns the epoch-window and lifetime counter blocks.
	Stats() (win, total *Stats)
}

// EventKind discriminates Source events.
type EventKind uint8

// The event kinds a Source can emit.
const (
	// EvCoherence is a fire-and-forget control message between two cores.
	EvCoherence EventKind = iota
	// EvMem starts a memory transaction: request to an L2 slice,
	// optionally spilling to a memory controller, data reply back.
	EvMem
	// EvPacket injects one raw pre-routed packet (trace replay); Ref is
	// handed back through Retirer.Retire when the packet leaves the
	// network.
	EvPacket
)

// Event is one injection a Source asks the machine to perform.
type Event struct {
	Kind EventKind

	// Core is the issuing core index (EvCoherence, EvMem).
	Core int
	// Peer is the destination core index (EvCoherence).
	Peer int

	// Slice, NeedsMC, MC describe an EvMem transaction's path.
	Slice   noc.NodeID
	NeedsMC bool
	MC      noc.NodeID

	// Src, Dst, Data, Ref describe an EvPacket injection. Data selects
	// the multi-flit data class on the reply vnet (vs a single-flit
	// control packet on the request vnet).
	Src, Dst noc.NodeID
	Data     bool
	Ref      uint64
}

// Source produces a core set's instruction/memory behaviour, one cycle at
// a time. Advance simulates the cycle and reports whether the workload
// has fully completed (finite sources only); NextEvent then drains the
// cycle's injection events in issue order.
type Source interface {
	// Bind attaches the machine-side view. Called once, before the first
	// Advance.
	Bind(v View)
	// Advance runs one cycle and returns true when a finite workload has
	// both consumed its work and drained its outstanding requests.
	Advance(now sim.Cycle) (done bool)
	// NextEvent pops the next buffered event of the current cycle.
	NextEvent() (Event, bool)
	// Finite reports whether the workload ever completes on its own.
	Finite() bool
	// Progress returns a monotone completion indicator (profile sources:
	// mean retired instructions per core; traces: retired packets).
	Progress() float64
	// StallCycles returns cumulative full-window stall cycles.
	StallCycles() int64
	// Snapshot serializes the source's dynamic state.
	Snapshot(w *snap.Writer)
	// Restore reads a state written by Snapshot on an identically
	// constructed source.
	Restore(r *snap.Reader) error
}

// Retirer is implemented by sources that must observe packet retirement
// (trace replay releases dependent packets on it). The machine calls it
// for every EvPacket delivery or fault drop.
type Retirer interface {
	Retire(ref uint64, now sim.Cycle)
}

// Layout is the tile geometry a PhaseSource draws destinations from. The
// owning application keeps the struct up to date in place (MC sharing is
// wired after construction), so the source always sees the live MC sets.
type Layout struct {
	// CoreTiles holds one tile per core, in core order.
	CoreTiles []noc.NodeID
	// L2Tiles are the slice homes (every region tile).
	L2Tiles []noc.NodeID
	// HotSlice is the home of hotspot-skewed accesses.
	HotSlice noc.NodeID
	// MCTiles are the app's own memory controllers.
	MCTiles []noc.NodeID
	// ForeignMCs are shared controllers in adjacent subNoCs; ForeignFrac
	// of off-chip accesses go there.
	ForeignMCs  []noc.NodeID
	ForeignFrac float64
}

// phaseThresholds pre-scales a phase's per-instruction event rates to
// 21-bit integer thresholds so one Uint64 draw decides the L1I miss,
// coherence message, and L1D access events together (hot path).
type phaseThresholds struct {
	l1i, coh, mem uint32
}

const thresholdBits = 21

func makeThresholds(ph Phase) phaseThresholds {
	scale := func(p float64) uint32 {
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		return uint32(p * float64(uint64(1)<<thresholdBits))
	}
	return phaseThresholds{
		l1i: scale(ph.L1IMissRate),
		coh: scale(ph.CoherencePerKInstr / 1000.0),
		mem: scale(ph.MemFrac),
	}
}

// phaseCore is one core's execution position inside a PhaseSource.
type phaseCore struct {
	rng        *sim.RNG
	retired    int64
	phaseIdx   int
	phaseInstr int64
	ipcAcc     float64
	stall      int64
	issued     int // EvMem events emitted this Advance (not serialized)
}

// PhaseSource drives cores from a synthetic phase-machine Profile — the
// Table II benchmark stand-ins. It reproduces, draw for draw, the
// injection behaviour the phase logic had when it lived inside
// internal/system, so profile-driven runs are byte-identical across the
// refactor.
type PhaseSource struct {
	prof       Profile
	budget     int64 // per-core instruction budget; 0 = run forever
	layout     *Layout
	thresholds []phaseThresholds

	rng   *sim.RNG // parent stream the per-core streams were split from
	cores []phaseCore

	view       View
	win, total *Stats

	events []Event
	evHead int
}

// NewPhaseSource builds a profile-driven source over a layout. Per-core
// RNG streams are split off rng keyed by core tile, in core order — the
// exact split sequence the pre-Source machine performed, so equal seeds
// keep producing equal runs.
func NewPhaseSource(prof Profile, budget int64, lay *Layout, rng *sim.RNG) *PhaseSource {
	if len(prof.Phases) == 0 {
		panic("traffic: profile with no phases")
	}
	if len(lay.CoreTiles) == 0 {
		panic("traffic: layout with no core tiles")
	}
	s := &PhaseSource{prof: prof, budget: budget, layout: lay, rng: rng}
	for _, ph := range prof.Phases {
		s.thresholds = append(s.thresholds, makeThresholds(ph))
	}
	s.cores = make([]phaseCore, len(lay.CoreTiles))
	for i, t := range lay.CoreTiles {
		s.cores[i].rng = rng.Split(uint64(t))
	}
	return s
}

// Bind implements Source.
func (s *PhaseSource) Bind(v View) {
	s.view = v
	s.win, s.total = v.Stats()
}

// Finite implements Source: a source with an instruction budget ends.
func (s *PhaseSource) Finite() bool { return s.budget > 0 }

// Progress implements Source: mean retired instructions per core.
func (s *PhaseSource) Progress() float64 {
	var sum int64
	for i := range s.cores {
		sum += s.cores[i].retired
	}
	return float64(sum) / float64(len(s.cores))
}

// StallCycles implements Source.
func (s *PhaseSource) StallCycles() int64 {
	var sum int64
	for i := range s.cores {
		sum += s.cores[i].stall
	}
	return sum
}

// Advance implements Source: every core retires up to IPC instructions
// and the per-instruction events are buffered in issue order.
func (s *PhaseSource) Advance(now sim.Cycle) bool {
	s.events = s.events[:0]
	s.evHead = 0
	done := s.budget > 0
	for ci := range s.cores {
		c := &s.cores[ci]
		c.issued = 0
		s.advanceCore(ci, c)
		if done && (c.retired < s.budget || s.view.Outstanding(ci)+c.issued > 0) {
			done = false
		}
	}
	return done
}

// NextEvent implements Source.
func (s *PhaseSource) NextEvent() (Event, bool) {
	if s.evHead >= len(s.events) {
		return Event{}, false
	}
	ev := s.events[s.evHead]
	s.evHead++
	return ev, true
}

// advanceCore is the hot loop. The draw order is load-bearing: one Uint64
// whose disjoint 21-bit fields decide the L1I-miss, coherence, and
// L1D-access events, then Bernoulli(L1MissRate), then the destination
// draws inside emitMem — any reordering changes every downstream golden
// file.
func (s *PhaseSource) advanceCore(ci int, c *phaseCore) {
	if s.view.Outstanding(ci) >= s.prof.MLP {
		c.stall++
		return
	}
	if s.budget > 0 && c.retired >= s.budget {
		return
	}
	c.ipcAcc += s.prof.IPC
	n := int(c.ipcAcc)
	c.ipcAcc -= float64(n)
	const mask = (uint64(1) << thresholdBits) - 1
	for i := 0; i < n; i++ {
		ph := s.prof.Phases[c.phaseIdx]
		th := s.thresholds[c.phaseIdx]
		c.retired++
		s.win.Retired++
		s.total.Retired++
		c.phaseInstr++
		if c.phaseInstr >= ph.Instructions {
			c.phaseInstr = 0
			c.phaseIdx = (c.phaseIdx + 1) % len(s.prof.Phases)
		}

		// One draw decides the three independent per-instruction events
		// (disjoint 21-bit fields).
		u := c.rng.Uint64()
		if uint32(u&mask) < th.l1i {
			s.win.L1IMisses++
			s.total.L1IMisses++
		}
		if uint32((u>>thresholdBits)&mask) < th.coh {
			s.emitCoherence(ci, c)
		}
		if uint32((u>>(2*thresholdBits))&mask) < th.mem && c.rng.Bernoulli(ph.L1MissRate) {
			s.win.L1DMisses++
			s.total.L1DMisses++
			s.emitMem(ci, c, ph)
			if s.view.Outstanding(ci)+c.issued >= s.prof.MLP {
				break
			}
		}
	}
}

// emitCoherence buffers a fire-and-forget control message to a peer core.
func (s *PhaseSource) emitCoherence(ci int, c *phaseCore) {
	n := len(s.layout.CoreTiles)
	if n < 2 {
		return
	}
	peer := c.rng.Intn(n)
	if peer == ci {
		return
	}
	s.events = append(s.events, Event{Kind: EvCoherence, Core: ci, Peer: peer})
}

// emitMem buffers an L1-miss transaction: home slice (hotspot-skewed
// striping), then the L2-miss spill decision, then the controller choice.
func (s *PhaseSource) emitMem(ci int, c *phaseCore, ph Phase) {
	lay := s.layout
	var slice noc.NodeID
	if ph.Hotspot > 0 && c.rng.Bernoulli(ph.Hotspot) {
		slice = lay.HotSlice
	} else {
		slice = lay.L2Tiles[c.rng.Intn(len(lay.L2Tiles))]
	}
	ev := Event{Kind: EvMem, Core: ci, Slice: slice}
	if c.rng.Bernoulli(ph.L2MissRate) {
		ev.NeedsMC = true
		if len(lay.ForeignMCs) > 0 && c.rng.Bernoulli(lay.ForeignFrac) {
			ev.MC = lay.ForeignMCs[c.rng.Intn(len(lay.ForeignMCs))]
		} else {
			ev.MC = lay.MCTiles[c.rng.Intn(len(lay.MCTiles))]
		}
		s.win.L2Misses++
		s.total.L2Misses++
	}
	// A request the faulty fabric drops at injection releases its
	// outstanding slot in the same cycle, so it must not count against
	// the MLP window (local slices never enqueue a request packet).
	tile := lay.CoreTiles[ci]
	if slice == tile || s.view.Deliverable(tile, slice) {
		c.issued++
	}
	s.events = append(s.events, ev)
}

// Part-mark kinds inside the source checkpoint section (delta alignment
// only, never serialized; see snap.Part).
const (
	// PartSrcApp marks one application's source blob; the machine's
	// source-section writer emits it before each Source.Snapshot.
	PartSrcApp = iota
	partSrcCore
)

// Snapshot implements Source: the parent RNG stream and every core's
// execution position.
func (s *PhaseSource) Snapshot(w *snap.Writer) {
	s.rng.Snapshot(w)
	w.Uvarint(uint64(len(s.cores)))
	for ci := range s.cores {
		c := &s.cores[ci]
		w.Mark(snap.PartKey(partSrcCore, uint64(ci)))
		w.I64(c.retired)
		w.Int(c.phaseIdx)
		w.I64(c.phaseInstr)
		w.F64(c.ipcAcc)
		w.I64(c.stall)
		c.rng.Snapshot(w)
	}
}

// Restore implements Source.
func (s *PhaseSource) Restore(r *snap.Reader) error {
	if err := s.rng.Restore(r); err != nil {
		return err
	}
	n, err := r.Count(1)
	if err != nil {
		return err
	}
	if n != len(s.cores) {
		return corruptf("phase source has %d cores, snapshot %d", len(s.cores), n)
	}
	for ci := range s.cores {
		c := &s.cores[ci]
		if c.retired, err = r.I64(); err != nil {
			return err
		}
		if c.phaseIdx, err = r.Int(); err != nil {
			return err
		}
		if c.phaseIdx < 0 || c.phaseIdx >= len(s.prof.Phases) {
			return corruptf("phase index %d out of range", c.phaseIdx)
		}
		if c.phaseInstr, err = r.I64(); err != nil {
			return err
		}
		if c.ipcAcc, err = r.F64(); err != nil {
			return err
		}
		if c.stall, err = r.I64(); err != nil {
			return err
		}
		if err := c.rng.Restore(r); err != nil {
			return err
		}
	}
	return nil
}
