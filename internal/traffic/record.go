package traffic

// Recorder captures a live run into the ADNOCTRC dependency format. The
// machine reports every packet it injects plus the transaction lifecycle
// around it; the recorder turns that into a DAG in the Netrace style:
//
//   - A transaction's request packet depends on the issuing core's
//     previously completed transaction (program order), with the gap
//     between that completion and this issue preserved in cycles.
//   - A forward or reply packet depends on the transaction's previous
//     packet, with the gap covering whatever service latency (L2 lookup,
//     DRAM access, controller queueing) separated retirement from send.
//   - Coherence messages and raw replayed packets carry no dependencies;
//     their gap is absolute from recording start.
//
// Replay therefore self-paces: on a slower fabric the completions arrive
// later and every dependent packet slides with them, while the recorded
// compute/service gaps stay fixed.

import (
	"sort"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
)

// recApp accumulates one application's trace.
type recApp struct {
	id      int
	profile string
	x, y    int
	w, h    int
	gridW   int
	mcs     []int32
	nodes   []TraceNode

	last Stats // totals at the previous node, for per-node deltas

	// lastDone/lastDoneC chain a core's transactions in program order.
	lastDone  []int32
	lastDoneC []int64

	overflow bool
}

// recTxn tracks one in-flight transaction's position in the DAG.
type recTxn struct {
	app  *recApp
	core int
	// node is the transaction's most recent packet; nodeRetire its
	// delivery (or drop) cycle, filled in before the next send.
	node       int32
	hasNode    bool
	nodeRetire int64
}

// Recorder captures machine activity into a Trace. Wire it with
// Machine.SetRecorder before the first cycle of a fresh run.
type Recorder struct {
	gridW, gridH int
	apps         map[int]*recApp
	txns         map[uint64]*recTxn
}

// NewRecorder starts an empty recording for a gridW x gridH chip.
// Recording assumes cycle 0 start; resumed runs cannot be recorded.
func NewRecorder(gridW, gridH int) *Recorder {
	return &Recorder{
		gridW: gridW, gridH: gridH,
		apps: make(map[int]*recApp),
		txns: make(map[uint64]*recTxn),
	}
}

// AddApp registers one application's placement before recording starts.
// mcs are absolute tiles inside the region.
func (r *Recorder) AddApp(id int, profile string, x, y, w, h int, mcs []noc.NodeID) {
	a := &recApp{id: id, profile: profile, x: x, y: y, w: w, h: h, gridW: r.gridW}
	for _, mc := range mcs {
		if rel, ok := a.rel(mc); ok {
			a.mcs = append(a.mcs, rel)
		}
	}
	r.apps[id] = a
}

// rel converts an absolute tile to a region-relative index.
func (a *recApp) rel(tile noc.NodeID) (int32, bool) {
	tx, ty := int(tile)%a.gridW, int(tile)/a.gridW
	rx, ry := tx-a.x, ty-a.y
	if rx < 0 || ry < 0 || rx >= a.w || ry >= a.h {
		return 0, false
	}
	return int32(ry*a.w + rx), true
}

// addNode appends one packet node and returns its index (-1 once the
// per-app node cap is hit; the overflow is reported at Finish).
func (a *recApp) addNode(src, dst noc.NodeID, data bool, deps []int32, gap int64, tot Stats) int32 {
	if a.overflow || len(a.nodes) >= maxTraceNodes {
		a.overflow = true
		return -1
	}
	n := TraceNode{Data: data, Deps: deps}
	if rel, ok := a.rel(src); ok {
		n.Src = rel
	} else {
		n.Src, n.SrcAbs = int32(src), true
	}
	if rel, ok := a.rel(dst); ok {
		n.Dst = rel
	} else {
		n.Dst, n.DstAbs = int32(dst), true
	}
	if gap < 0 {
		gap = 0
	}
	if gap > 1<<32-1 {
		gap = 1<<32 - 1
	}
	n.Gap = uint32(gap)
	n.DRetired = tot.Retired - a.last.Retired
	n.DL1D = tot.L1DMisses - a.last.L1DMisses
	n.DL1I = tot.L1IMisses - a.last.L1IMisses
	n.DL2 = tot.L2Misses - a.last.L2Misses
	a.last = tot
	a.nodes = append(a.nodes, n)
	return int32(len(a.nodes) - 1)
}

func (a *recApp) growCore(core int) {
	for len(a.lastDone) <= core {
		a.lastDone = append(a.lastDone, -1)
		a.lastDoneC = append(a.lastDoneC, 0)
	}
}

// Coherence records a fire-and-forget control packet (no dependencies).
func (r *Recorder) Coherence(app int, src, dst noc.NodeID, now sim.Cycle, tot Stats) {
	if a := r.apps[app]; a != nil {
		a.addNode(src, dst, false, nil, int64(now), tot)
	}
}

// Packet records a raw injected packet (re-recording a trace replay).
func (r *Recorder) Packet(app int, src, dst noc.NodeID, data bool, now sim.Cycle, tot Stats) {
	if a := r.apps[app]; a != nil {
		a.addNode(src, dst, data, nil, int64(now), tot)
	}
}

// TxnStart registers a new memory transaction issued by a core.
func (r *Recorder) TxnStart(app, core int, id uint64) {
	if a := r.apps[app]; a != nil {
		a.growCore(core)
		r.txns[id] = &recTxn{app: a, core: core, node: -1}
	}
}

// TxnSend records one packet carrying transaction id.
func (r *Recorder) TxnSend(id uint64, src, dst noc.NodeID, data bool, now sim.Cycle, tot Stats) {
	t := r.txns[id]
	if t == nil {
		return
	}
	a := t.app
	var deps []int32
	var gap int64
	switch {
	case t.hasNode:
		deps = []int32{t.node}
		gap = int64(now) - t.nodeRetire
	case a.lastDone[t.core] >= 0:
		deps = []int32{a.lastDone[t.core]}
		gap = int64(now) - a.lastDoneC[t.core]
	default:
		gap = int64(now)
	}
	if n := a.addNode(src, dst, data, deps, gap, tot); n >= 0 {
		t.node, t.hasNode = n, true
	}
}

// TxnPacketDone records that the transaction's in-flight packet retired
// (delivered, or dropped by a fault).
func (r *Recorder) TxnPacketDone(id uint64, now sim.Cycle) {
	if t := r.txns[id]; t != nil {
		t.nodeRetire = int64(now)
	}
}

// TxnEnd closes a transaction: its final packet becomes the issuing
// core's program-order anchor.
func (r *Recorder) TxnEnd(id uint64, now sim.Cycle) {
	t := r.txns[id]
	if t == nil {
		return
	}
	delete(r.txns, id)
	if t.hasNode {
		t.app.lastDone[t.core] = t.node
		t.app.lastDoneC[t.core] = int64(now)
	}
}

// Finish assembles the recording into a validated Trace.
func (r *Recorder) Finish() (*Trace, error) {
	ids := make([]int, 0, len(r.apps))
	for id := range r.apps {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	t := &Trace{GridW: r.gridW, GridH: r.gridH}
	for _, id := range ids {
		a := r.apps[id]
		if a.overflow {
			return nil, corruptf("recording exceeded %d nodes for app %d", maxTraceNodes, id)
		}
		t.Apps = append(t.Apps, TraceApp{
			Profile: a.profile,
			X:       a.x, Y: a.y, W: a.w, H: a.h,
			MCs:   a.mcs,
			Nodes: a.nodes,
		})
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return t, nil
}
