package traffic

import (
	"testing"
	"testing/quick"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
)

func inRegion(c noc.Coord, x, y, w, h int) bool {
	return c.X >= x && c.X < x+w && c.Y >= y && c.Y < y+h
}

func TestUniformStaysInRegionAndAvoidsSelf(t *testing.T) {
	rng := sim.NewRNG(1)
	u := NewUniform(2, 2, 4, 4)
	src := noc.Coord{X: 3, Y: 3}
	for i := 0; i < 2000; i++ {
		d, ok := u.Dst(src, rng)
		if !ok {
			continue
		}
		if d == src {
			t.Fatal("uniform returned the source")
		}
		if !inRegion(d, 2, 2, 4, 4) {
			t.Fatalf("destination %v outside region", d)
		}
	}
}

func TestTransposeIsInvolution(t *testing.T) {
	f := func(sx, sy uint8) bool {
		tr := NewTranspose(0, 0, 8, 8)
		src := noc.Coord{X: int(sx % 8), Y: int(sy % 8)}
		d, ok := tr.Dst(src, nil)
		if !ok {
			return src.X == src.Y // diagonal has no partner
		}
		back, ok2 := tr.Dst(d, nil)
		return ok2 && back == src
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeRequiresSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-square transpose accepted")
		}
	}()
	NewTranspose(0, 0, 4, 8)
}

func TestBitComplementIsInvolution(t *testing.T) {
	f := func(sx, sy uint8) bool {
		b := NewBitComplement(1, 1, 6, 4)
		src := noc.Coord{X: 1 + int(sx%6), Y: 1 + int(sy%4)}
		d, ok := b.Dst(src, nil)
		if !ok {
			return true // centre tile maps to itself
		}
		back, _ := b.Dst(d, nil)
		return back == src && inRegion(d, 1, 1, 6, 4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHotspotFraction(t *testing.T) {
	rng := sim.NewRNG(3)
	hot := noc.Coord{X: 2, Y: 2}
	h := NewHotspot(0, 0, 4, 4, hot, 0.5)
	src := noc.Coord{X: 0, Y: 0}
	hits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		d, ok := h.Dst(src, rng)
		if ok && d == hot {
			hits++
		}
	}
	frac := float64(hits) / trials
	// 50% directed plus the uniform share that happens to land on hot.
	if frac < 0.45 || frac < 0.5*0.9 {
		t.Fatalf("hotspot fraction %.3f, want >= ~0.5", frac)
	}
}

func TestNeighbourWraps(t *testing.T) {
	n := NewNeighbour(2, 0, 4, 4)
	d, ok := n.Dst(noc.Coord{X: 5, Y: 1}, nil)
	if !ok || d != (noc.Coord{X: 2, Y: 1}) {
		t.Fatalf("edge neighbour = %v ok=%v, want wrap to (2,1)", d, ok)
	}
	d, _ = n.Dst(noc.Coord{X: 3, Y: 2}, nil)
	if d != (noc.Coord{X: 4, Y: 2}) {
		t.Fatalf("interior neighbour = %v", d)
	}
}

func TestOpenLoopSourceRate(t *testing.T) {
	cfg := noc.DefaultConfig()
	net := noc.NewNetwork(cfg)
	// No topology needed: just count enqueues into NI queues.
	src := &OpenLoopSource{
		Net: net, Pat: NewUniform(0, 0, 4, 4),
		Tiles: []noc.NodeID{0, 1, 2, 3}, Rate: 0.25, DataPct: 0.5,
		RNG: sim.NewRNG(9),
	}
	const cycles = 20000
	for c := 0; c < cycles; c++ {
		src.Tick(sim.Cycle(c))
	}
	want := 0.25 * 4 * cycles
	if got := float64(src.Injected); got < 0.9*want || got > 1.1*want {
		t.Fatalf("injected %v, want ~%v", got, want)
	}
	if net.PendingPackets() != int(src.Injected) {
		t.Fatalf("pending %d != injected %d", net.PendingPackets(), src.Injected)
	}
}

func TestPatternNames(t *testing.T) {
	pats := []Pattern{
		NewUniform(0, 0, 4, 4), NewTranspose(0, 0, 4, 4),
		NewBitComplement(0, 0, 4, 4), NewHotspot(0, 0, 4, 4, noc.Coord{}, 0.2),
		NewNeighbour(0, 0, 4, 4),
	}
	seen := map[string]bool{}
	for _, p := range pats {
		if p.Name() == "" || seen[p.Name()] {
			t.Fatalf("bad/duplicate pattern name %q", p.Name())
		}
		seen[p.Name()] = true
	}
}
