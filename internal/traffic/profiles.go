// Package traffic defines the synthetic application models that stand in
// for the paper's Parsec (CPU) and Rodinia (GPU) benchmarks (Table II).
//
// A benchmark's NoC-visible behaviour is captured by a sequence of phases,
// each characterized along the axes the paper's RL state vector observes
// (Table I): instruction throughput, L1/L2 miss rates (which become L2 and
// memory-controller traffic), coherence-message intensity, memory-level
// parallelism, and the spatial spread of L2 accesses. The per-benchmark
// parameters are plausible characterizations chosen so that the suite
// spans the space the paper's selection results report: sparse-traffic
// CPU codes that favour cmesh, memory-intensive codes (CA, SW, X264) with
// one-to-many reply traffic that favour the tree, and high-throughput GPU
// codes that spread across mesh/torus/tree.
package traffic

// Class separates CPU-style and GPU-style cores.
type Class int

// Application classes.
const (
	CPU Class = iota
	GPU
)

// String implements fmt.Stringer.
func (c Class) String() string {
	if c == CPU {
		return "cpu"
	}
	return "gpu"
}

// Phase is one stretch of homogeneous behaviour.
type Phase struct {
	// Instructions is the phase length in retired instructions per core.
	Instructions int64
	// MemFrac is the fraction of instructions that access the L1D.
	MemFrac float64
	// L1MissRate is the fraction of L1D accesses that miss to an L2 slice
	// (becomes request/reply NoC traffic).
	L1MissRate float64
	// L1IMissRate is the instruction-fetch miss rate (stat + light traffic).
	L1IMissRate float64
	// L2MissRate is the fraction of L2 accesses forwarded to a memory
	// controller (off-chip accesses; the tree topology's target traffic).
	L2MissRate float64
	// CoherencePerKInstr is coherence/synchronization control messages per
	// thousand instructions (core-to-core traffic).
	CoherencePerKInstr float64
	// Hotspot in [0,1] skews L2 slice selection toward a single home slice
	// (0 = uniform striping across the region's slices).
	Hotspot float64
}

// Profile characterizes one benchmark application.
type Profile struct {
	Name  string
	Class Class
	// IPC is instructions per cycle per core when not stalled.
	IPC float64
	// MLP is the maximum outstanding memory requests per core
	// (GPU cores are highly latency-tolerant).
	MLP int
	// Phases repeat cyclically until the instruction budget is consumed.
	Phases []Phase
}

// phase is a convenience constructor.
func phase(instr int64, memFrac, l1Miss, l1iMiss, l2Miss, cohPerK, hotspot float64) Phase {
	return Phase{
		Instructions: instr, MemFrac: memFrac, L1MissRate: l1Miss,
		L1IMissRate: l1iMiss, L2MissRate: l2Miss,
		CoherencePerKInstr: cohPerK, Hotspot: hotspot,
	}
}

// CPUProfiles returns the seven Parsec-like applications of Table II.
func CPUProfiles() []Profile {
	return []Profile{
		{Name: "blackscholes", Class: CPU, IPC: 1.6, MLP: 4, Phases: []Phase{
			// Compute-bound option pricing: tiny working set, trivial sharing.
			phase(120000, 0.22, 0.005, 0.002, 0.10, 0.3, 0.0),
		}},
		{Name: "swaptions", Class: CPU, IPC: 1.4, MLP: 4, Phases: []Phase{
			// Monte-Carlo simulation: moderate misses, periodic bursts of
			// off-chip traffic (memory-intensive per Fig. 14: selects tree).
			phase(80000, 0.28, 0.015, 0.003, 0.45, 0.6, 0.1),
			phase(30000, 0.32, 0.030, 0.003, 0.60, 0.6, 0.2),
		}},
		{Name: "x264", Class: CPU, IPC: 1.2, MLP: 6, Phases: []Phase{
			// Video encoding: streaming frames from memory, phase-heavy.
			phase(50000, 0.35, 0.025, 0.008, 0.55, 1.2, 0.2),
			phase(50000, 0.30, 0.010, 0.006, 0.25, 1.0, 0.1),
		}},
		{Name: "ferret", Class: CPU, IPC: 1.3, MLP: 4, Phases: []Phase{
			// Pipeline-parallel similarity search: steady moderate traffic
			// with inter-stage (core-to-core) communication.
			phase(100000, 0.30, 0.012, 0.005, 0.30, 2.5, 0.0),
		}},
		{Name: "bodytrack", Class: CPU, IPC: 1.4, MLP: 4, Phases: []Phase{
			// Particle-filter vision: alternating compute and update phases.
			phase(70000, 0.25, 0.008, 0.004, 0.20, 1.5, 0.0),
			phase(24000, 0.33, 0.022, 0.004, 0.35, 2.0, 0.1),
		}},
		{Name: "canneal", Class: CPU, IPC: 0.9, MLP: 6, Phases: []Phase{
			// Simulated annealing over a huge netlist: cache-hostile random
			// accesses, heavy off-chip traffic (selects tree in Fig. 14).
			phase(60000, 0.38, 0.055, 0.004, 0.70, 0.8, 0.0),
		}},
		{Name: "fluidanimate", Class: CPU, IPC: 1.3, MLP: 4, Phases: []Phase{
			// SPH fluid simulation: neighbour exchanges dominate.
			phase(90000, 0.30, 0.015, 0.004, 0.25, 3.5, 0.0),
		}},
	}
}

// GPUProfiles returns the seven Rodinia-like applications of Table II.
// GPU cores are 8-wide SIMD with deep memory-level parallelism, so the
// same miss rates translate into far greater traffic intensity.
func GPUProfiles() []Profile {
	return []Profile{
		{Name: "kmeans", Class: GPU, IPC: 4.0, MLP: 18, Phases: []Phase{
			// Streaming distance computation over all points each iteration.
			phase(960000, 0.40, 0.038, 0.001, 0.70, 0.2, 0.1),
		}},
		{Name: "backprop", Class: GPU, IPC: 4.5, MLP: 18, Phases: []Phase{
			// Forward/backward passes alternate dense and sparse traffic.
			phase(480000, 0.35, 0.035, 0.001, 0.55, 0.3, 0.2),
			phase(480000, 0.30, 0.016, 0.001, 0.35, 0.3, 0.1),
		}},
		{Name: "heartwall", Class: GPU, IPC: 5.0, MLP: 8, Phases: []Phase{
			// Compute-heavy tracking with modest memory traffic.
			phase(1200000, 0.25, 0.012, 0.001, 0.30, 0.2, 0.0),
		}},
		{Name: "gaussian", Class: GPU, IPC: 3.5, MLP: 14, Phases: []Phase{
			// Elimination rows shrink: traffic decays across phases.
			phase(400000, 0.42, 0.042, 0.001, 0.60, 0.2, 0.3),
			phase(400000, 0.38, 0.024, 0.001, 0.45, 0.2, 0.2),
			phase(400000, 0.30, 0.012, 0.001, 0.30, 0.2, 0.1),
		}},
		{Name: "bfs", Class: GPU, IPC: 2.5, MLP: 24, Phases: []Phase{
			// Irregular frontier expansion: bursty, cache-hostile, heavily
			// off-chip (highest memory intensity in the suite).
			phase(320000, 0.48, 0.055, 0.001, 0.65, 0.4, 0.15),
			phase(160000, 0.35, 0.022, 0.001, 0.50, 0.3, 0.1),
		}},
		{Name: "nw", Class: GPU, IPC: 3.0, MLP: 10, Phases: []Phase{
			// Wavefront dynamic programming: neighbour-tile dependencies.
			phase(640000, 0.36, 0.030, 0.001, 0.40, 1.0, 0.0),
		}},
		{Name: "hotspot", Class: GPU, IPC: 4.0, MLP: 14, Phases: []Phase{
			// Stencil thermal simulation: regular neighbour + stream traffic.
			phase(800000, 0.38, 0.025, 0.001, 0.45, 0.8, 0.0),
		}},
	}
}

// The suite is static, and ByName sits on per-request validation paths
// (config parsing, the serving API), so the lookup table is built once at
// package init instead of rebuilding the profile slices on every call.
// The indexed profiles are shared — callers must treat them as read-only.
var (
	allProfiles  = append(CPUProfiles(), GPUProfiles()...)
	profileIndex = func() map[string]int {
		m := make(map[string]int, len(allProfiles))
		for i, p := range allProfiles {
			m[p.Name] = i
		}
		return m
	}()
)

// ByName finds a profile in the combined suite.
func ByName(name string) (Profile, bool) {
	i, ok := profileIndex[name]
	if !ok {
		return Profile{}, false
	}
	return allProfiles[i], true
}

// Names lists the suite for CLI help.
func Names() []string {
	out := make([]string, len(allProfiles))
	for i, p := range allProfiles {
		out[i] = p.Name
	}
	return out
}
