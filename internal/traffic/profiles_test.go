package traffic

import "testing"

func TestSuiteMatchesTableII(t *testing.T) {
	cpu, gpu := CPUProfiles(), GPUProfiles()
	if len(cpu) != 7 {
		t.Fatalf("CPU suite has %d apps, Table II lists 7", len(cpu))
	}
	if len(gpu) != 7 {
		t.Fatalf("GPU suite has %d apps, Table II lists 7", len(gpu))
	}
	wantCPU := []string{"blackscholes", "swaptions", "x264", "ferret", "bodytrack", "canneal", "fluidanimate"}
	for i, p := range cpu {
		if p.Name != wantCPU[i] {
			t.Errorf("CPU[%d] = %s, want %s", i, p.Name, wantCPU[i])
		}
		if p.Class != CPU {
			t.Errorf("%s misclassified", p.Name)
		}
	}
	wantGPU := []string{"kmeans", "backprop", "heartwall", "gaussian", "bfs", "nw", "hotspot"}
	for i, p := range gpu {
		if p.Name != wantGPU[i] {
			t.Errorf("GPU[%d] = %s, want %s", i, p.Name, wantGPU[i])
		}
		if p.Class != GPU {
			t.Errorf("%s misclassified", p.Name)
		}
	}
}

func TestProfilesAreWellFormed(t *testing.T) {
	for _, p := range append(CPUProfiles(), GPUProfiles()...) {
		if p.IPC <= 0 || p.IPC > 8 {
			t.Errorf("%s: IPC %v implausible", p.Name, p.IPC)
		}
		if p.MLP < 1 {
			t.Errorf("%s: MLP %d", p.Name, p.MLP)
		}
		if len(p.Phases) == 0 {
			t.Errorf("%s: no phases", p.Name)
		}
		for i, ph := range p.Phases {
			if ph.Instructions <= 0 {
				t.Errorf("%s phase %d: no instructions", p.Name, i)
			}
			for name, rate := range map[string]float64{
				"MemFrac": ph.MemFrac, "L1MissRate": ph.L1MissRate,
				"L1IMissRate": ph.L1IMissRate, "L2MissRate": ph.L2MissRate,
				"Hotspot": ph.Hotspot,
			} {
				if rate < 0 || rate > 1 {
					t.Errorf("%s phase %d: %s = %v out of [0,1]", p.Name, i, name, rate)
				}
			}
			if ph.CoherencePerKInstr < 0 || ph.CoherencePerKInstr > 1000 {
				t.Errorf("%s phase %d: coherence rate %v", p.Name, i, ph.CoherencePerKInstr)
			}
		}
	}
}

func TestGPUTrafficIntensityExceedsCPU(t *testing.T) {
	// The defining property of the two suites: per-cycle memory traffic
	// (IPC × MemFrac × L1MissRate, first phase) is higher for every GPU
	// app than the CPU median.
	intensity := func(p Profile) float64 {
		ph := p.Phases[0]
		return p.IPC * ph.MemFrac * ph.L1MissRate
	}
	var cpuMax float64
	for _, p := range CPUProfiles() {
		if v := intensity(p); v > cpuMax {
			cpuMax = v
		}
	}
	higher := 0
	for _, p := range GPUProfiles() {
		if intensity(p) > cpuMax/2 {
			higher++
		}
	}
	if higher < 5 {
		t.Errorf("only %d of 7 GPU apps exceed half the heaviest CPU intensity", higher)
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("bfs"); !ok {
		t.Fatal("bfs missing")
	}
	if _, ok := ByName("doom"); ok {
		t.Fatal("unknown profile found")
	}
	if got := len(Names()); got != 14 {
		t.Fatalf("Names() = %d entries, want 14", got)
	}
}

func TestMemoryIntensiveAppsForTree(t *testing.T) {
	// The paper's Fig. 14 calls out CA, SW, X264 as the memory-intensive
	// CPU apps that sometimes pick the tree; their L2 miss rates must
	// stand out within the CPU suite.
	get := func(name string) Profile {
		p, ok := ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		return p
	}
	light := get("blackscholes").Phases[0].L2MissRate
	for _, name := range []string{"canneal", "swaptions", "x264"} {
		if get(name).Phases[0].L2MissRate <= light {
			t.Errorf("%s L2 miss rate not above blackscholes", name)
		}
	}
}
