package traffic

// Checkpoint support. Patterns are stateless by design: Dst is a pure
// function of (src, rng), with the RNG passed in by the caller, so a
// Pattern carries nothing to serialize — its region and parameters come
// from the run configuration. The only stateful type in this package is
// OpenLoopSource, whose state is its private RNG stream and injection
// counter.

import "adaptnoc/internal/snap"

// Snapshot writes the source's dynamic state (RNG stream and injection
// counter). The network, pattern, tile set, and rates are configuration
// and are not serialized.
func (s *OpenLoopSource) Snapshot(w *snap.Writer) {
	s.RNG.Snapshot(w)
	w.I64(s.Injected)
}

// Restore reads a state written by Snapshot.
func (s *OpenLoopSource) Restore(r *snap.Reader) error {
	if err := s.RNG.Restore(r); err != nil {
		return err
	}
	var err error
	s.Injected, err = r.I64()
	return err
}
