package traffic

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/snap"
)

// testTrace builds a small two-app trace exercising every format feature:
// dependencies, gaps, data packets, absolute endpoints, and stat deltas.
func testTrace() *Trace {
	return &Trace{
		GridW: 8, GridH: 8,
		Apps: []TraceApp{
			{
				Profile: "bfs", X: 0, Y: 0, W: 4, H: 4,
				MCs: []int32{5},
				Nodes: []TraceNode{
					{Src: 0, Dst: 5, Gap: 3, DRetired: 100, DL1D: 4},
					{Src: 5, Dst: 0, Data: true, Deps: []int32{0}, Gap: 1, DL2: 1},
					{Src: 1, Dst: 60, DstAbs: true, Deps: []int32{0, 1}, Gap: 7, DL1I: 2},
				},
			},
			{
				Profile: "canneal", X: 4, Y: 0, W: 4, H: 4,
				MCs:   []int32{0, 15},
				Nodes: []TraceNode{{Src: 2, Dst: 3, Gap: 0, DRetired: 9}},
			},
		},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	want := testTrace()
	blob, err := EncodeTrace(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(blob, []byte(TraceMagic)) {
		t.Fatalf("encoded trace does not start with %q", TraceMagic)
	}
	got, err := DecodeTrace(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}

	// Deterministic bytes: equal traces must serialize identically (the
	// serving cache content-addresses configs containing trace blobs).
	again, err := EncodeTrace(testTrace())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, again) {
		t.Fatal("equal traces encoded to different bytes")
	}
}

func TestEncodeTraceRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Trace)
		want string
	}{
		{"grid too small", func(tr *Trace) { tr.GridW = 1 }, "grid"},
		{"grid too large", func(tr *Trace) { tr.GridH = maxTraceGridDim + 1 }, "grid"},
		{"no apps", func(tr *Trace) { tr.Apps = nil }, "apps"},
		{"region outside grid", func(tr *Trace) { tr.Apps[0].X = 6 }, "outside"},
		{"mc outside region", func(tr *Trace) { tr.Apps[0].MCs[0] = 16 }, "outside region"},
		{"negative endpoint", func(tr *Trace) { tr.Apps[0].Nodes[0].Src = -1 }, "out of range"},
		{"endpoint outside region", func(tr *Trace) { tr.Apps[0].Nodes[0].Dst = 16 }, "out of range"},
		{"self loop", func(tr *Trace) { tr.Apps[1].Nodes[0].Dst = 2 }, "src == dst"},
		{"forward dep", func(tr *Trace) { tr.Apps[0].Nodes[1].Deps[0] = 2 }, "earlier node"},
		{"self dep", func(tr *Trace) { tr.Apps[0].Nodes[1].Deps[0] = 1 }, "earlier node"},
		{"too many deps", func(tr *Trace) {
			tr.Apps[0].Nodes[2].Deps = make([]int32, maxNodeDeps+1)
		}, "deps"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := testTrace()
			tc.mut(tr)
			_, err := EncodeTrace(tr)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got error %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestDecodeTraceRejects(t *testing.T) {
	valid, err := EncodeTrace(testTrace())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		blob []byte
	}{
		{"empty", nil},
		{"short", valid[:4]},
		{"bad magic", append([]byte("NOTATRCE"), valid[8:]...)},
		{"bad version", append(append([]byte(nil), valid[:8]...), append([]byte{99, 0, 0, 0}, valid[12:]...)...)},
		{"truncated body", valid[:len(valid)-3]},
		{"garbage body", append(append([]byte(nil), valid[:12]...), 1, 2, 3, 4)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeTrace(tc.blob); err == nil {
				t.Fatal("decode accepted a corrupt blob")
			}
		})
	}
}

func TestFitsGrid(t *testing.T) {
	a := &testTrace().Apps[0] // has an absolute endpoint at tile 60
	if err := a.FitsGrid(8, 8); err != nil {
		t.Fatalf("trace should fit its own grid: %v", err)
	}
	if err := a.FitsGrid(6, 6); err == nil {
		t.Fatal("absolute tile 60 cannot fit a 6x6 grid")
	}
}

// traceView is the minimal machine-side view a TraceSource needs.
type traceView struct{ win, total Stats }

func (v *traceView) Outstanding(int) int              { return 0 }
func (v *traceView) Deliverable(_, _ noc.NodeID) bool { return true }
func (v *traceView) Stats() (*Stats, *Stats)          { return &v.win, &v.total }

// drain pops all buffered events of the current cycle.
func drain(s Source) []Event {
	var evs []Event
	for {
		ev, ok := s.NextEvent()
		if !ok {
			return evs
		}
		evs = append(evs, ev)
	}
}

func TestTraceSourceReplay(t *testing.T) {
	app := &testTrace().Apps[0]
	v := &traceView{}
	s := NewTraceSource(app, 0, 0, 8)
	s.Bind(v)

	if !s.Finite() {
		t.Fatal("trace source must be finite")
	}

	// Cycle 0..2: node 0 has Gap 3, nothing injects yet.
	for now := sim.Cycle(0); now < 3; now++ {
		if done := s.Advance(now); done || len(drain(s)) != 0 {
			t.Fatalf("cycle %d: unexpected injection before the root gap", now)
		}
	}
	// Cycle 3: node 0 injects; its stat deltas fold into the counters.
	s.Advance(3)
	evs := drain(s)
	if len(evs) != 1 || evs[0].Kind != EvPacket || evs[0].Ref != 0 {
		t.Fatalf("cycle 3: got %+v, want node 0", evs)
	}
	if evs[0].Src != 0 || evs[0].Dst != noc.NodeID(1*8+1) {
		t.Fatalf("node 0 endpoints %d->%d, want 0->9 (region-relative 5 on an 8-wide grid)",
			evs[0].Src, evs[0].Dst)
	}
	if v.total.Retired != 100 || v.total.L1DMisses != 4 {
		t.Fatalf("stat deltas not folded: %+v", v.total)
	}

	// Node 1 (deps: 0, gap 1) releases when node 0 retires at cycle 10.
	s.Retire(0, 10)
	s.Advance(10)
	if evs := drain(s); len(evs) != 0 {
		t.Fatalf("node 1 injected before its gap elapsed: %+v", evs)
	}
	s.Advance(11)
	evs = drain(s)
	if len(evs) != 1 || evs[0].Ref != 1 || !evs[0].Data {
		t.Fatalf("cycle 11: got %+v, want data node 1", evs)
	}

	// Node 2 needs both 0 and 1; only fires 7 cycles after the later
	// retirement. Duplicate retirements must be idempotent.
	s.Retire(1, 20)
	s.Retire(1, 21)
	s.Advance(26)
	if evs := drain(s); len(evs) != 0 {
		t.Fatalf("node 2 injected early: %+v", evs)
	}
	done := s.Advance(27)
	evs = drain(s)
	if len(evs) != 1 || evs[0].Ref != 2 {
		t.Fatalf("cycle 27: got %+v, want node 2", evs)
	}
	if evs[0].Dst != 60 {
		t.Fatalf("absolute endpoint moved: dst %d, want 60", evs[0].Dst)
	}
	if done {
		t.Fatal("done before the last node retired")
	}
	s.Retire(2, 28)
	if !s.Advance(29) {
		t.Fatal("source not done after every node retired")
	}
	if s.Progress() != 3 {
		t.Fatalf("progress %v, want 3", s.Progress())
	}
}

// TestTraceSourceRelocated replays a recorded region at a different
// origin: relative endpoints move with the region, absolute ones stay.
func TestTraceSourceRelocated(t *testing.T) {
	app := &testTrace().Apps[0]
	s := NewTraceSource(app, 4, 4, 8)
	s.Bind(&traceView{})
	s.Advance(3)
	evs := drain(s)
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	// Relative src 0 -> tile (4,4) = 36; relative dst 5 = (1,1) in-region
	// -> tile (5,5) = 45.
	if evs[0].Src != 36 || evs[0].Dst != 45 {
		t.Fatalf("relocated endpoints %d->%d, want 36->45", evs[0].Src, evs[0].Dst)
	}
}

// TestTraceSourceSnapshotRestore interrupts a replay mid-flight, restores
// it into a freshly constructed source, and checks both finish the
// remaining schedule identically.
func TestTraceSourceSnapshotRestore(t *testing.T) {
	app := &testTrace().Apps[0]
	run := func(s *TraceSource, from sim.Cycle, log *[]Event) sim.Cycle {
		now := from
		for i := 0; i < 100; i++ {
			done := s.Advance(now)
			evs := drain(s)
			*log = append(*log, evs...)
			for _, ev := range evs {
				s.Retire(ev.Ref, now+2) // fixed 2-cycle flight time
			}
			if done {
				return now
			}
			now++
		}
		t.Fatal("replay did not drain")
		return 0
	}

	// Uninterrupted reference run.
	ref := NewTraceSource(app, 0, 0, 8)
	ref.Bind(&traceView{})
	var want []Event
	run(ref, 0, &want)

	// Interrupted run: advance to cycle 4 (node 0 injected and retired,
	// node 1 pending), snapshot, restore, continue.
	s1 := NewTraceSource(app, 0, 0, 8)
	s1.Bind(&traceView{})
	var got []Event
	for now := sim.Cycle(0); now <= 4; now++ {
		s1.Advance(now)
		evs := drain(s1)
		got = append(got, evs...)
		for _, ev := range evs {
			s1.Retire(ev.Ref, now+2)
		}
	}
	var w snap.Writer
	s1.Snapshot(&w)

	s2 := NewTraceSource(app, 0, 0, 8)
	s2.Bind(&traceView{})
	if err := s2.Restore(snap.NewReader(w.Bytes())); err != nil {
		t.Fatal(err)
	}
	run(s2, 5, &got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored replay diverged:\ngot  %+v\nwant %+v", got, want)
	}

	// A corrupt snapshot must be rejected, not trusted.
	if err := s2.Restore(snap.NewReader([]byte{7, 7, 7})); err == nil {
		t.Fatal("restore accepted garbage")
	}
}

// TestTraceSourceDropRelease proves a dropped packet still releases its
// dependents — replay degrades under faults instead of deadlocking.
func TestTraceSourceDropRelease(t *testing.T) {
	app := &TraceApp{
		Profile: "bfs", X: 0, Y: 0, W: 2, H: 2,
		Nodes: []TraceNode{
			{Src: 0, Dst: 1},
			{Src: 1, Dst: 2, Deps: []int32{0}, Gap: 1},
		},
	}
	s := NewTraceSource(app, 0, 0, 4)
	s.Bind(&traceView{})
	s.Advance(0)
	if evs := drain(s); len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	// The machine drops node 0 at cycle 5 (fault) and reports it retired.
	s.Retire(0, 5)
	s.Advance(6)
	if evs := drain(s); len(evs) != 1 || evs[0].Ref != 1 {
		t.Fatalf("dependent not released after drop: %+v", evs)
	}
}

func FuzzDecodeTrace(f *testing.F) {
	valid, err := EncodeTrace(testTrace())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(TraceMagic))
	f.Add([]byte("ADNOCTRC\x01\x00\x00\x00"))
	f.Add(valid[:len(valid)-5])
	f.Add(append(append([]byte(nil), valid...), 0xff))
	big, err := EncodeTrace(&Trace{
		GridW: 64, GridH: 64,
		Apps: []TraceApp{{Profile: "x", W: 64, H: 64,
			Nodes: []TraceNode{{Src: 0, Dst: 4095}}}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(big)
	f.Fuzz(func(t *testing.T, blob []byte) {
		tr, err := DecodeTrace(blob)
		if err != nil {
			return
		}
		// Anything the decoder accepts must satisfy the validator (decode
		// ends with validate, so a pass here means the two agree) and
		// re-encode cleanly to an equal value.
		out, err := EncodeTrace(tr)
		if err != nil {
			t.Fatalf("decoded trace failed to re-encode: %v", err)
		}
		tr2, err := DecodeTrace(out)
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatal("decode/encode/decode not a fixpoint")
		}
	})
}
