package power

// Checkpoint support. The meter's dynamic state is the accumulated energy
// account and the per-region collection timestamps; the technology
// parameters come from the run configuration. Router/NI/channel activity
// windows belong to the network's snapshot.

import (
	"sort"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/snap"
)

func snapshotBreakdown(w *snap.Writer, b Breakdown) {
	w.F64(b.BufferPJ)
	w.F64(b.CrossbarPJ)
	w.F64(b.ArbitrationPJ)
	w.F64(b.LinkPJ)
	w.F64(b.MuxPJ)
	w.F64(b.RLPJ)
	w.F64(b.RouterStaticPJ)
	w.F64(b.LinkStaticPJ)
}

func restoreBreakdown(r *snap.Reader) (Breakdown, error) {
	var b Breakdown
	for _, dst := range []*float64{
		&b.BufferPJ, &b.CrossbarPJ, &b.ArbitrationPJ, &b.LinkPJ,
		&b.MuxPJ, &b.RLPJ, &b.RouterStaticPJ, &b.LinkStaticPJ,
	} {
		v, err := r.F64()
		if err != nil {
			return b, err
		}
		*dst = v
	}
	return b, nil
}

// SnapshotBreakdown writes one energy account (for callers that accumulate
// their own Breakdown, like the controller's per-binding energy).
func SnapshotBreakdown(w *snap.Writer, b Breakdown) { snapshotBreakdown(w, b) }

// RestoreBreakdown reads an account written by SnapshotBreakdown.
func RestoreBreakdown(r *snap.Reader) (Breakdown, error) { return restoreBreakdown(r) }

// Snapshot writes the meter's dynamic state.
func (m *Meter) Snapshot(w *snap.Writer) {
	snapshotBreakdown(w, m.total)
	keys := make([]int, 0, len(m.lastCollect))
	for k := range m.lastCollect {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.Int(k)
		w.I64(int64(m.lastCollect[noc.NodeID(k)]))
	}
}

// Restore reads a state written by Snapshot.
func (m *Meter) Restore(r *snap.Reader) error {
	total, err := restoreBreakdown(r)
	if err != nil {
		return err
	}
	n, err := r.Count(2)
	if err != nil {
		return err
	}
	last := make(map[noc.NodeID]sim.Cycle, n)
	for i := 0; i < n; i++ {
		k, err := r.Int()
		if err != nil {
			return err
		}
		at, err := r.I64()
		if err != nil {
			return err
		}
		last[noc.NodeID(k)] = sim.Cycle(at)
	}
	m.total = total
	m.lastCollect = last
	return nil
}
