// Package power implements the DSENT-style energy model of Section IV-A:
// dynamic energy is event counts (buffer writes/reads, crossbar traversals,
// VA/SA arbitrations, link flit-millimetres, RL inferences) times per-event
// energies; static energy is per-component leakage power times non-gated
// time. The per-event constants are 45 nm values consistent with the
// paper's published component areas and its 11.5 mW/adaptable-link figure;
// since every result in the paper is normalized to the mesh baseline, the
// relative energies are what matter and those follow the event counts
// measured by the simulator.
package power

import (
	"fmt"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
)

// Params holds the technology constants.
type Params struct {
	ClockGHz float64 `json:"clockGHz"` // core/network clock

	// Dynamic energy per event, picojoules.
	BufferWritePJ     float64 `json:"bufferWritePJ"`     // per flit written (256-bit flit)
	BufferReadPJ      float64 `json:"bufferReadPJ"`      // per flit read at switch traversal
	CrossbarPJ        float64 `json:"crossbarPJ"`        // per flit crossbar traversal (5x5 baseline)
	CrossbarPerPortPJ float64 `json:"crossbarPerPortPJ"` // additional per-flit cost per port beyond 5 (high radix)
	ArbitrationPJ     float64 `json:"arbitrationPJ"`     // per VA or SA grant
	LinkPJPerMM       float64 `json:"linkPJPerMM"`       // per flit per millimetre of wire
	MuxPJ             float64 `json:"muxPJ"`             // per flit through an adaptable-router mux
	RLInferencePJ     float64 `json:"rlInferencePJ"`     // per DQN forward pass (one adder + one multiplier serialized)

	// Static (leakage) power, milliwatts.
	RouterStaticBaseMW       float64 `json:"routerStaticBaseMW"`       // crossbar + allocators of a 5-port router
	RouterStaticPerPortMW    float64 `json:"routerStaticPerPortMW"`    // additional leakage per port beyond 5
	BufferStaticPerFlitMW    float64 `json:"bufferStaticPerFlitMW"`    // per flit of buffering
	MeshLinkStaticMW         float64 `json:"meshLinkStaticMW"`         // per active mesh/local link
	AdaptLinkStaticPerMMMW   float64 `json:"adaptLinkStaticPerMMMW"`   // per mm of active adaptable segment (paper: 11.5 mW per 8 mm link)
	ExpressLinkStaticPerMMMW float64 `json:"expressLinkStaticPerMMMW"` // per mm of express wiring (FTBY, shortcut)
}

// DefaultParams returns 45 nm constants.
func DefaultParams() Params {
	return Params{
		ClockGHz:          2.0,
		BufferWritePJ:     1.8,
		BufferReadPJ:      1.2,
		CrossbarPJ:        2.4,
		CrossbarPerPortPJ: 0.3,
		ArbitrationPJ:     0.18,
		LinkPJPerMM:       2.0,
		MuxPJ:             0.15,
		RLInferencePJ:     1200, // 486 ns on one adder + one multiplier (Section V-B.3)

		RouterStaticBaseMW:       0.9,
		RouterStaticPerPortMW:    0.15,
		BufferStaticPerFlitMW:    0.018,
		MeshLinkStaticMW:         0.35,
		AdaptLinkStaticPerMMMW:   11.5 / 8.0,
		ExpressLinkStaticPerMMMW: 0.35,
	}
}

// Breakdown is an energy account in picojoules, split the way Figs. 11-13
// report it.
type Breakdown struct {
	BufferPJ      float64 `json:"bufferPJ"`
	CrossbarPJ    float64 `json:"crossbarPJ"`
	ArbitrationPJ float64 `json:"arbitrationPJ"`
	LinkPJ        float64 `json:"linkPJ"`
	MuxPJ         float64 `json:"muxPJ"`
	RLPJ          float64 `json:"rlPJ"`

	RouterStaticPJ float64 `json:"routerStaticPJ"`
	LinkStaticPJ   float64 `json:"linkStaticPJ"`
}

// DynamicPJ returns total dynamic energy.
func (b Breakdown) DynamicPJ() float64 {
	return b.BufferPJ + b.CrossbarPJ + b.ArbitrationPJ + b.LinkPJ + b.MuxPJ + b.RLPJ
}

// StaticPJ returns total static energy.
func (b Breakdown) StaticPJ() float64 { return b.RouterStaticPJ + b.LinkStaticPJ }

// TotalPJ returns total energy.
func (b Breakdown) TotalPJ() float64 { return b.DynamicPJ() + b.StaticPJ() }

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.BufferPJ += o.BufferPJ
	b.CrossbarPJ += o.CrossbarPJ
	b.ArbitrationPJ += o.ArbitrationPJ
	b.LinkPJ += o.LinkPJ
	b.MuxPJ += o.MuxPJ
	b.RLPJ += o.RLPJ
	b.RouterStaticPJ += o.RouterStaticPJ
	b.LinkStaticPJ += o.LinkStaticPJ
}

// String implements fmt.Stringer.
func (b Breakdown) String() string {
	return fmt.Sprintf("dyn=%.1fpJ (buf %.1f xbar %.1f arb %.1f link %.1f mux %.1f rl %.1f) static=%.1fpJ",
		b.DynamicPJ(), b.BufferPJ, b.CrossbarPJ, b.ArbitrationPJ, b.LinkPJ, b.MuxPJ, b.RLPJ, b.StaticPJ())
}

// Meter harvests windowed activity from a network into energy accounts.
type Meter struct {
	P   Params
	net *noc.Network

	total       Breakdown
	lastCollect map[noc.NodeID]sim.Cycle

	// gen counts mutations of the state Snapshot serializes (energy
	// accrual and collection timestamps), for delta-checkpoint skipping.
	gen uint64
}

// Gen returns the meter's snapshot-state generation counter.
func (m *Meter) Gen() uint64 { return m.gen }

// NewMeter attaches a meter to a network.
func NewMeter(net *noc.Network, p Params) *Meter {
	return &Meter{P: p, net: net, lastCollect: make(map[noc.NodeID]sim.Cycle)}
}

// CollectRegionAt is CollectRegion with per-region window bookkeeping: the
// elapsed time is measured since the previous CollectRegionAt of the same
// region (keyed by its first tile). Use it when epochs and a final flush
// both collect the same region.
func (m *Meter) CollectRegionAt(tiles []noc.NodeID, now sim.Cycle) RegionWindow {
	key := tiles[0]
	last := m.lastCollect[key]
	m.lastCollect[key] = now
	return m.CollectRegion(tiles, int64(now-last))
}

// RegionWindow is one region-epoch harvest: the energy account plus the
// summed activity the RL state vector derives its network metrics from.
type RegionWindow struct {
	Energy   Breakdown
	Activity noc.RouterActivity
	// NIQueueSum is the sum over cycles and NIs of injection-queue depth.
	NIQueueSum    int64
	ActiveRouters int
	BufferCap     int // total buffer flits across active routers
	Cycles        int64
}

// RouterBufUtil returns mean buffer occupancy as a fraction of capacity.
func (w RegionWindow) RouterBufUtil() float64 {
	if w.Cycles == 0 || w.BufferCap == 0 {
		return 0
	}
	return float64(w.Activity.OccupancySum) / float64(w.Cycles) / float64(w.BufferCap)
}

// InjQueueAvg returns the mean injection-queue depth per NI.
func (w RegionWindow) InjQueueAvg(numNIs int) float64 {
	if w.Cycles == 0 || numNIs == 0 {
		return 0
	}
	return float64(w.NIQueueSum) / float64(w.Cycles) / float64(numNIs)
}

// Throughput returns flits switched per active router per cycle.
func (w RegionWindow) Throughput() float64 {
	if w.Cycles == 0 || w.ActiveRouters == 0 {
		return 0
	}
	return float64(w.Activity.CrossbarTrav) / float64(w.Cycles) / float64(w.ActiveRouters)
}

// AvgPowerMW returns the window's average power.
func (w RegionWindow) AvgPowerMW(clockGHz float64) float64 {
	return AvgPowerMW(w.Energy, w.Cycles, clockGHz)
}

// CollectRegion harvests the activity windows of the given tiles' routers,
// NIs, and outgoing channels, covering elapsed cycles of wall time, and
// returns the region's energy and activity for the window. Router and NI
// windows reset; call exactly once per window per region (regions must not
// overlap).
func (m *Meter) CollectRegion(tiles []noc.NodeID, elapsedCycles int64) RegionWindow {
	m.gen++
	win := RegionWindow{Cycles: elapsedCycles}
	var b Breakdown
	cycleNS := 1.0 / m.P.ClockGHz
	inRegion := make(map[noc.NodeID]bool, len(tiles))
	for _, t := range tiles {
		inRegion[t] = true
	}

	for _, t := range tiles {
		r := m.net.Router(t)
		act := r.TakeActivity()
		win.Activity.BufferWrites += act.BufferWrites
		win.Activity.BufferReads += act.BufferReads
		win.Activity.CrossbarTrav += act.CrossbarTrav
		win.Activity.VAGrants += act.VAGrants
		win.Activity.SAGrants += act.SAGrants
		win.Activity.OccupancySum += act.OccupancySum
		win.Activity.ActiveCycles += act.ActiveCycles
		win.Activity.GatedCycles += act.GatedCycles
		win.Activity.WakeUps += act.WakeUps
		win.Activity.RoutedPackets += act.RoutedPackets
		if !r.Disabled() {
			win.ActiveRouters++
			win.BufferCap += r.BufferCapacity()
		}
		b.BufferPJ += float64(act.BufferWrites)*m.P.BufferWritePJ + float64(act.BufferReads)*m.P.BufferReadPJ
		extraPorts := float64(r.AttachedPorts() - 5)
		if extraPorts < 0 {
			extraPorts = 0
		}
		b.CrossbarPJ += float64(act.CrossbarTrav) * (m.P.CrossbarPJ + extraPorts*m.P.CrossbarPerPortPJ)
		b.ArbitrationPJ += float64(act.VAGrants+act.SAGrants) * m.P.ArbitrationPJ
		b.MuxPJ += float64(act.CrossbarTrav) * m.P.MuxPJ

		// Static: leakage accrues only while not gated/disabled.
		activeNS := float64(act.ActiveCycles) * cycleNS
		staticMW := m.P.RouterStaticBaseMW +
			extraPorts*m.P.RouterStaticPerPortMW +
			float64(r.BufferCapacity())*m.P.BufferStaticPerFlitMW
		b.RouterStaticPJ += staticMW * activeNS // mW × ns = pJ
	}
	for _, t := range tiles {
		na := m.net.NI(t).TakeActivity()
		win.NIQueueSum += na.QueueOccupancySum
	}

	// Channels: dynamic by flit·mm, static by presence, attributed to the
	// source router's region.
	elapsedNS := float64(elapsedCycles) * cycleNS
	for _, ch := range m.net.Channels() {
		src := channelSourceTile(ch)
		if !inRegion[src] {
			continue
		}
		flits := ch.TakeFlits()
		mm := float64(ch.Tiles) // 1 mm tiles
		if mm < 1 {
			mm = 1
		}
		b.LinkPJ += float64(flits) * mm * m.P.LinkPJPerMM

		switch ch.Kind {
		case noc.ChanAdaptable:
			b.LinkStaticPJ += m.P.AdaptLinkStaticPerMMMW * mm * elapsedNS
		case noc.ChanExpress:
			b.LinkStaticPJ += m.P.ExpressLinkStaticPerMMMW * mm * elapsedNS
		default:
			b.LinkStaticPJ += m.P.MeshLinkStaticMW * elapsedNS
		}
	}

	m.total.Add(b)
	win.Energy = b
	return win
}

// AddRLInferences accounts n DQN forward passes to the total (and returns
// their energy so the caller can fold it into a window).
func (m *Meter) AddRLInferences(n int) float64 {
	m.gen++
	e := float64(n) * m.P.RLInferencePJ
	m.total.RLPJ += e
	return e
}

// Total returns the accumulated energy across all collected windows.
func (m *Meter) Total() Breakdown { return m.total }

// AvgPowerMW converts a window's energy to average power over the window.
func AvgPowerMW(b Breakdown, elapsedCycles int64, clockGHz float64) float64 {
	if elapsedCycles <= 0 {
		return 0
	}
	ns := float64(elapsedCycles) / clockGHz
	return b.TotalPJ() / ns // pJ/ns == mW
}

// channelSourceTile attributes a channel to a tile for regional accounting.
func channelSourceTile(ch *noc.Channel) noc.NodeID {
	if ch.From.Kind == noc.EndRouter {
		return ch.From.Router
	}
	return ch.From.NI
}
