package power

import (
	"math"
	"testing"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/topology"
)

// rig builds a 4x4 mesh region with a meter.
func rig() (*noc.Network, *sim.Kernel, *Meter, []noc.NodeID) {
	cfg := noc.DefaultConfig()
	net := noc.NewNetwork(cfg)
	reg := topology.Region{W: 4, H: 4}
	topology.ConfigureMeshRegion(net, reg)
	k := sim.NewKernel()
	k.Register(net)
	return net, k, NewMeter(net, DefaultParams()), reg.Tiles(cfg.Width)
}

func TestBreakdownArithmetic(t *testing.T) {
	b := Breakdown{BufferPJ: 1, CrossbarPJ: 2, ArbitrationPJ: 3, LinkPJ: 4, MuxPJ: 5, RLPJ: 6,
		RouterStaticPJ: 7, LinkStaticPJ: 8}
	if b.DynamicPJ() != 21 || b.StaticPJ() != 15 || b.TotalPJ() != 36 {
		t.Fatalf("sums wrong: %v %v %v", b.DynamicPJ(), b.StaticPJ(), b.TotalPJ())
	}
	var acc Breakdown
	acc.Add(b)
	acc.Add(b)
	if acc.TotalPJ() != 72 {
		t.Fatalf("Add broken: %v", acc.TotalPJ())
	}
}

func TestIdleRegionHasOnlyStaticEnergy(t *testing.T) {
	_, k, m, tiles := rig()
	k.Run(1000)
	w := m.CollectRegionAt(tiles, k.Now())
	if w.Energy.DynamicPJ() != 0 {
		t.Fatalf("idle region burned dynamic energy: %v", w.Energy)
	}
	if w.Energy.StaticPJ() <= 0 {
		t.Fatal("idle region has no static energy")
	}
	if w.Throughput() != 0 || w.RouterBufUtil() != 0 {
		t.Fatal("idle region reports activity")
	}
}

func TestTrafficProducesDynamicEnergyProportionally(t *testing.T) {
	run := func(packets int) float64 {
		net, k, m, tiles := rig()
		for i := 0; i < packets; i++ {
			net.Enqueue(net.NewPacket(0, 27, noc.ClassData, noc.VNetReply, 0), sim.Cycle(i*10))
		}
		k.Run(sim.Cycle(packets*10 + 500))
		return m.CollectRegionAt(tiles, k.Now()).Energy.DynamicPJ()
	}
	e10, e40 := run(10), run(40)
	if e10 <= 0 {
		t.Fatal("no dynamic energy")
	}
	ratio := e40 / e10
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("dynamic energy not ~linear in traffic: x4 packets -> x%.2f energy", ratio)
	}
}

func TestDisabledRoutersAccrueNoStatic(t *testing.T) {
	cfg := noc.DefaultConfig()
	mk := func(kind topology.Kind) float64 {
		net := noc.NewNetwork(cfg)
		reg := topology.Region{W: 4, H: 4}
		if kind == topology.CMesh {
			topology.ConfigureCMeshRegion(net, reg)
		} else {
			topology.ConfigureMeshRegion(net, reg)
		}
		k := sim.NewKernel()
		k.Register(net)
		m := NewMeter(net, DefaultParams())
		k.Run(2000)
		return m.CollectRegionAt(reg.Tiles(cfg.Width), k.Now()).Energy.RouterStaticPJ
	}
	mesh, cmesh := mk(topology.Mesh), mk(topology.CMesh)
	// CMesh powers off 12 of 16 routers: static should drop to ~1/4.
	if cmesh >= mesh/2 {
		t.Fatalf("cmesh router static %v not well below mesh %v", cmesh, mesh)
	}
}

func TestWindowsAreDisjoint(t *testing.T) {
	net, k, m, tiles := rig()
	net.Enqueue(net.NewPacket(0, 27, noc.ClassData, noc.VNetReply, 0), 0)
	k.Run(500)
	w1 := m.CollectRegionAt(tiles, k.Now())
	k.RunFor(500)
	w2 := m.CollectRegionAt(tiles, k.Now())
	// All dynamic energy happened in the first window; the second must not
	// re-count it.
	if w2.Energy.DynamicPJ() != 0 {
		t.Fatalf("second window re-counted dynamic energy: %v", w2.Energy)
	}
	if w1.Cycles != 500 || w2.Cycles != 500 {
		t.Fatalf("window sizes %d/%d", w1.Cycles, w2.Cycles)
	}
	tot := m.Total()
	if math.Abs(tot.TotalPJ()-(w1.Energy.TotalPJ()+w2.Energy.TotalPJ())) > 1e-9 {
		t.Fatal("meter total != sum of windows")
	}
}

func TestRLInferenceEnergy(t *testing.T) {
	_, _, m, _ := rig()
	pj := m.AddRLInferences(3)
	if pj != 3*m.P.RLInferencePJ {
		t.Fatalf("RL energy %v", pj)
	}
	if m.Total().RLPJ != pj {
		t.Fatal("RL energy not accumulated")
	}
}

func TestAvgPowerConversion(t *testing.T) {
	b := Breakdown{BufferPJ: 2000} // 2000 pJ over 1000 cycles at 2 GHz = 500 ns -> 4 mW
	if got := AvgPowerMW(b, 1000, 2.0); math.Abs(got-4) > 1e-9 {
		t.Fatalf("AvgPowerMW = %v, want 4", got)
	}
	if AvgPowerMW(b, 0, 2.0) != 0 {
		t.Fatal("zero-cycle window must report zero power")
	}
}
