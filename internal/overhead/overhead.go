// Package overhead reproduces the Section V-B analyses: the 45 nm area
// model (router components, whole-NoC totals, RL controllers, muxes and
// links), the wiring-density check against the Intel 45 nm metal stack,
// and the router/link/RL timing analysis with the mux-merging optimization.
// All constants are the paper's own published numbers.
package overhead

import "fmt"

// Paper-published area constants (45 nm, Synopsys DC), in square microns.
const (
	CrossbarAreaUM2       = 17806.0
	SwitchAllocAreaUM2    = 4589.0
	VCAllocAreaUM2        = 1062.0
	BuffersAreaUM2        = 246472.0 // baseline: 5 ports x 3 VCs x 2 vnets x 4 flits
	BaselineNoCAreaMM2    = 17.27    // 8x8 mesh total
	AdaptExtraPortsMM2    = 1.46     // peripheral-router extra ports
	RLControllersAreaUM2  = 100232.0 // all 8 controllers
	MuxArbLinkAreaUM2     = 107123.0 // arbiter + muxes + additional links
	baselineBufferFlits   = 5 * 3 * 2 * 4
	baselineRouterAreaUM2 = CrossbarAreaUM2 + SwitchAllocAreaUM2 + VCAllocAreaUM2 + BuffersAreaUM2
)

// RouterArea returns the area of one router with the given port count and
// total buffer capacity in flits, scaling the paper's baseline components
// (crossbar quadratically in ports, allocators and buffers linearly).
func RouterArea(ports, bufferFlits int) float64 {
	pr := float64(ports) / 5.0
	return CrossbarAreaUM2*pr*pr +
		SwitchAllocAreaUM2*pr +
		VCAllocAreaUM2*pr +
		BuffersAreaUM2*float64(bufferFlits)/float64(baselineBufferFlits)
}

// AreaReport is the Section V-B.1 accounting.
type AreaReport struct {
	BaselineNoCMM2   float64
	AdaptNoCMM2      float64
	RLControllersMM2 float64
	MuxArbLinksMM2   float64
	// SavingVsBaseline is the fractional area saving of Adapt-NoC after
	// the VC reduction (paper: 14%).
	SavingVsBaseline float64
}

// AdaptNoCArea reproduces the paper's bottom line: the Adapt-NoC trades
// one VC per vnet of buffering (3 -> 2) for the extra ports, muxes, RL
// controllers and links, ending up ~14% smaller than the baseline.
func AdaptNoCArea() AreaReport {
	routers := 64.0
	baselinePerRouter := RouterArea(5, baselineBufferFlits)
	adaptBufferFlits := 5 * 2 * 2 * 4 // 2 VCs per vnet
	adaptPerRouter := RouterArea(5, adaptBufferFlits)

	baselineTotal := routers * baselinePerRouter
	adaptTotal := routers*adaptPerRouter +
		AdaptExtraPortsMM2*1e6 +
		RLControllersAreaUM2 +
		MuxArbLinkAreaUM2

	return AreaReport{
		BaselineNoCMM2:   baselineTotal / 1e6,
		AdaptNoCMM2:      adaptTotal / 1e6,
		RLControllersMM2: RLControllersAreaUM2 / 1e6,
		MuxArbLinksMM2:   MuxArbLinkAreaUM2 / 1e6,
		SavingVsBaseline: 1 - adaptTotal/baselineTotal,
	}
}

// Intel 45 nm metal stack (Section V-B.2).
type MetalLayer struct {
	Name         string
	WirePitchNM  float64
	DelayPSPerMM float64
}

// Metal layers available for NoC routing.
var (
	HighMetal         = MetalLayer{Name: "M7-M8", WirePitchNM: 560, DelayPSPerMM: 42}
	IntermediateMetal = MetalLayer{Name: "M4-M6", WirePitchNM: 280, DelayPSPerMM: 200}
)

// LinksPerTileEdge returns how many w-bit bidirectional links fit across a
// 1 mm tile edge on a layer, with half the wiring resources available for
// on-chip routing (two routing directions share each layer pair).
func LinksPerTileEdge(layer MetalLayer, linkBits int) int {
	wiresPerMM := 1e6 / layer.WirePitchNM / 2 // half available for routing
	wiresPerLink := float64(2 * linkBits)     // bidirectional
	return int(wiresPerMM * 2 / wiresPerLink) // two layers in the pair
}

// WiringReport is the Section V-B.2 accounting.
type WiringReport struct {
	HighMetalLinks         int // 256-bit bidir links per tile edge, M7-M8
	IntermediateMetalLinks int // M4-M6
	RequiredLinks          int // Adapt-NoC worst case per tile edge
	WithinBudget           bool
}

// CheckWiringBudget verifies the Adapt-NoC requirement (mesh + adaptable +
// concentration links: at most four 256-bit bidirectional links per tile
// edge) against the stack (paper: 2 on high metal + 7 on intermediate).
func CheckWiringBudget() WiringReport {
	hi := LinksPerTileEdge(HighMetal, 256)
	mid := LinksPerTileEdge(IntermediateMetal, 256)
	const required = 4
	return WiringReport{
		HighMetalLinks:         hi,
		IntermediateMetalLinks: mid,
		RequiredLinks:          required,
		WithinBudget:           required <= hi+mid,
	}
}

// Router stage delays in picoseconds (Section V-B.3, 45 nm, 5x5 router).
const (
	RCDelayPS  = 164.0
	VADelayPS  = 370.0
	SADelayPS  = 243.0
	STDelayPS  = 256.0
	MuxDelayPS = 102.0
	// Reversed quad-state repeaters add transmission-gate delay.
	ReversedRepeaterExtraPS = 45.0
)

// TimingReport is the Section V-B.3 accounting.
type TimingReport struct {
	MergedRCPS float64 // RC + input mux
	MergedSTPS float64 // ST + output mux
	CriticalPS float64 // the stage limiting frequency
	// MuxMergeSafe is the paper's claim: merged RC and ST stay under the
	// VA stage, so the muxes cost no frequency.
	MuxMergeSafe bool
	MaxClockGHz  float64
}

// RouterTiming evaluates the mux-merging optimization.
func RouterTiming() TimingReport {
	mergedRC := RCDelayPS + MuxDelayPS
	mergedST := STDelayPS + MuxDelayPS
	critical := VADelayPS
	for _, d := range []float64{mergedRC, mergedST, SADelayPS} {
		if d > critical {
			critical = d
		}
	}
	return TimingReport{
		MergedRCPS:   mergedRC,
		MergedSTPS:   mergedST,
		CriticalPS:   critical,
		MuxMergeSafe: mergedRC <= VADelayPS && mergedST <= VADelayPS,
		MaxClockGHz:  1000.0 / critical,
	}
}

// LinkDelayPS returns wire delay for a length in mm on a layer.
func LinkDelayPS(layer MetalLayer, mm float64) float64 {
	return layer.DelayPSPerMM * mm
}

// RL inference latency (Section V-B.3): one adder and one multiplier
// serialize the whole DQN forward pass.
const (
	multiplierPS = 800.0 // one 32-bit multiply at 45 nm
	adderPS      = 245.0
)

// RLInferenceNS returns the DQN forward-pass latency for the given layer
// sizes with minimal hardware (one adder, one multiplier).
func RLInferenceNS(layers []int) float64 {
	var macs float64
	for i := 0; i+1 < len(layers); i++ {
		macs += float64(layers[i] * layers[i+1])
	}
	return macs * (multiplierPS + adderPS) / 1000.0
}

// String implements fmt.Stringer.
func (a AreaReport) String() string {
	return fmt.Sprintf("baseline %.2f mm² | adapt-noc %.2f mm² (RL %.3f, mux/links %.3f) | saving %.1f%%",
		a.BaselineNoCMM2, a.AdaptNoCMM2, a.RLControllersMM2, a.MuxArbLinksMM2, 100*a.SavingVsBaseline)
}

// String implements fmt.Stringer.
func (w WiringReport) String() string {
	return fmt.Sprintf("budget: %d high-metal + %d intermediate links/edge, need %d (ok=%v)",
		w.HighMetalLinks, w.IntermediateMetalLinks, w.RequiredLinks, w.WithinBudget)
}

// String implements fmt.Stringer.
func (t TimingReport) String() string {
	return fmt.Sprintf("RC+mux %.0f ps, ST+mux %.0f ps, critical %.0f ps (VA) -> %.2f GHz, mux merge safe=%v",
		t.MergedRCPS, t.MergedSTPS, t.CriticalPS, t.MaxClockGHz, t.MuxMergeSafe)
}
