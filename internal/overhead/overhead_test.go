package overhead

import (
	"math"
	"testing"
)

func TestAdaptNoCAreaMatchesPaper(t *testing.T) {
	r := AdaptNoCArea()
	// Paper: baseline 8x8 NoC is 17.27 mm².
	if math.Abs(r.BaselineNoCMM2-17.27) > 0.05 {
		t.Errorf("baseline NoC area %.2f mm², paper 17.27", r.BaselineNoCMM2)
	}
	// Paper: Adapt-NoC nets out ~14% smaller after the VC trade.
	if r.SavingVsBaseline < 0.05 || r.SavingVsBaseline > 0.30 {
		t.Errorf("area saving %.0f%% outside the paper's ballpark (14%%)", 100*r.SavingVsBaseline)
	}
	if r.AdaptNoCMM2 >= r.BaselineNoCMM2 {
		t.Error("Adapt-NoC not smaller than baseline")
	}
}

func TestRouterAreaScaling(t *testing.T) {
	base := RouterArea(5, 120)
	bigger := RouterArea(10, 120)
	if bigger <= base {
		t.Fatal("more ports must cost area")
	}
	// Crossbar scales quadratically: 10 ports should more than double it.
	if bigger < base+3*CrossbarAreaUM2 {
		t.Errorf("crossbar scaling too weak: %v -> %v", base, bigger)
	}
	fewerBufs := RouterArea(5, 80)
	if want := base - BuffersAreaUM2/3; math.Abs(fewerBufs-want) > 1 {
		t.Errorf("buffer scaling: got %v want %v", fewerBufs, want)
	}
}

func TestWiringBudget(t *testing.T) {
	r := CheckWiringBudget()
	if !r.WithinBudget {
		t.Fatal("Adapt-NoC exceeds the wiring budget")
	}
	// Paper: 2 high-metal and 7 intermediate links per tile edge; our
	// derivation from the same pitch numbers must land nearby.
	if r.HighMetalLinks < 2 || r.HighMetalLinks > 3 {
		t.Errorf("high-metal links %d, paper 2", r.HighMetalLinks)
	}
	if r.IntermediateMetalLinks < 5 || r.IntermediateMetalLinks > 8 {
		t.Errorf("intermediate links %d, paper 7", r.IntermediateMetalLinks)
	}
	if r.RequiredLinks != 4 {
		t.Errorf("required links %d, paper 4", r.RequiredLinks)
	}
}

func TestRouterTimingMuxMerge(t *testing.T) {
	r := RouterTiming()
	// Paper Section V-B.3: merged RC 266 ps, merged ST 358 ps, VA 370 ps
	// stays critical, so the muxes cost no frequency.
	if r.MergedRCPS != 266 {
		t.Errorf("merged RC %.0f ps, paper 266", r.MergedRCPS)
	}
	if r.MergedSTPS != 358 {
		t.Errorf("merged ST %.0f ps, paper 358", r.MergedSTPS)
	}
	if !r.MuxMergeSafe {
		t.Error("mux merge reported unsafe")
	}
	if r.CriticalPS != VADelayPS {
		t.Errorf("critical stage %.0f ps, want VA %.0f", r.CriticalPS, VADelayPS)
	}
}

func TestLinkDelays(t *testing.T) {
	// Paper: 42 ps/mm high metal, 200 ps/mm intermediate.
	if LinkDelayPS(HighMetal, 4) != 168 {
		t.Errorf("4 mm high-metal delay %v", LinkDelayPS(HighMetal, 4))
	}
	if LinkDelayPS(IntermediateMetal, 1) != 200 {
		t.Errorf("1 mm intermediate delay %v", LinkDelayPS(IntermediateMetal, 1))
	}
}

func TestRLInferenceLatencyMatchesPaper(t *testing.T) {
	// Paper: the 12-15-15-4 DQN takes 486 ns on one adder + multiplier.
	got := RLInferenceNS([]int{12, 15, 15, 4})
	if math.Abs(got-486) > 2 {
		t.Errorf("DQN inference %.1f ns, paper 486", got)
	}
	// More MACs must take longer.
	if RLInferenceNS([]int{12, 50, 50, 4}) <= got {
		t.Error("latency not increasing in network size")
	}
}
