package core

// Checkpoint support. The controller's dynamic state is the epoch counter
// and each binding's learning context (previous state/action, selection
// histogram, trace, reward and energy accumulators); the policy's own
// state (DQN weights, Q table) is serialized through the Policy-specific
// agents by the top-level checkpoint. Bindings are serialized in Bind
// order, which is construction order and therefore stable.

import (
	"fmt"

	"adaptnoc/internal/power"
	"adaptnoc/internal/snap"
	"adaptnoc/internal/topology"
)

// Part-mark kinds inside the control section (delta alignment only,
// never serialized; see snap.Part). Kinds 16+ are reserved for the rl
// package, which writes into the same section.
const (
	partCtlHeader = iota
	partCtlBinding
	partCtlTrace
	partCtlPolicy
)

// Snapshot writes the controller's dynamic state.
func (c *Controller) Snapshot(w *snap.Writer) {
	w.Mark(snap.PartKey(partCtlHeader, 0))
	w.Int(c.epoch)
	w.Bool(c.started)
	w.Uvarint(uint64(len(c.bindings)))
	for _, b := range c.bindings {
		w.Mark(snap.PartKey(partCtlBinding, uint64(b.SubNoC.ID)))
		w.Int(b.SubNoC.ID)
		w.Bool(b.hasPrev)
		if b.hasPrev {
			w.F64s(b.prevState)
			w.Int(int(b.prevAction))
		}
		for _, n := range b.Selections {
			w.I64(n)
		}
		w.F64(b.RewardSum)
		w.I64(b.EpochCount)
		power.SnapshotBreakdown(w, b.Energy)
		w.Uvarint(uint64(len(b.Trace)))
		for _, t := range b.Trace {
			// The trace is append-only, so keying records by epoch turns
			// the whole history into copies in every delta.
			w.Mark(snap.PartKey(partCtlTrace, uint64(b.SubNoC.ID)<<24|uint64(uint32(t.Epoch))&(1<<24-1)))
			w.Int(t.Epoch)
			w.Int(int(t.Kind))
			w.Int(int(t.Chosen))
			w.F64(t.AvgNetLat)
			w.F64(t.AvgQueueLat)
			w.F64(t.AvgHops)
			w.F64(t.PowerMW)
			w.F64(t.Reward)
			w.I64(t.Delivered)
			w.I64(t.RetiredInstr)
			w.F64s(t.State)
		}
	}
}

// Restore overlays a state written by Snapshot onto a controller with the
// same bindings (same subNoCs bound in the same order).
func (c *Controller) Restore(r *snap.Reader) error {
	var err error
	if c.epoch, err = r.Int(); err != nil {
		return err
	}
	if c.started, err = r.Bool(); err != nil {
		return err
	}
	n, err := r.Count(4)
	if err != nil {
		return err
	}
	if n != len(c.bindings) {
		return fmt.Errorf("core: checkpoint has %d bindings, controller has %d", n, len(c.bindings))
	}
	for _, b := range c.bindings {
		id, err := r.Int()
		if err != nil {
			return err
		}
		if id != b.SubNoC.ID {
			return fmt.Errorf("core: checkpoint binding for subNoC %d, controller has %d", id, b.SubNoC.ID)
		}
		if b.hasPrev, err = r.Bool(); err != nil {
			return err
		}
		if b.hasPrev {
			if b.prevState, err = r.F64s(); err != nil {
				return err
			}
			act, err := r.Int()
			if err != nil {
				return err
			}
			if act < 0 || act >= int(topology.NumSelectable) {
				return fmt.Errorf("core: binding %d previous action %d", id, act)
			}
			b.prevAction = topology.Kind(act)
		} else {
			b.prevState, b.prevAction = nil, 0
		}
		for i := range b.Selections {
			if b.Selections[i], err = r.I64(); err != nil {
				return err
			}
		}
		if b.RewardSum, err = r.F64(); err != nil {
			return err
		}
		if b.EpochCount, err = r.I64(); err != nil {
			return err
		}
		if b.Energy, err = power.RestoreBreakdown(r); err != nil {
			return err
		}
		nTrace, err := r.Count(10)
		if err != nil {
			return err
		}
		b.Trace = b.Trace[:0]
		for i := 0; i < nTrace; i++ {
			var t EpochRecord
			if t.Epoch, err = r.Int(); err != nil {
				return err
			}
			kind, err := r.Int()
			if err != nil {
				return err
			}
			t.Kind = topology.Kind(kind)
			chosen, err := r.Int()
			if err != nil {
				return err
			}
			t.Chosen = topology.Kind(chosen)
			for _, dst := range []*float64{
				&t.AvgNetLat, &t.AvgQueueLat, &t.AvgHops, &t.PowerMW, &t.Reward,
			} {
				if *dst, err = r.F64(); err != nil {
					return err
				}
			}
			if t.Delivered, err = r.I64(); err != nil {
				return err
			}
			if t.RetiredInstr, err = r.I64(); err != nil {
				return err
			}
			if t.State, err = r.F64s(); err != nil {
				return err
			}
			b.Trace = append(b.Trace, t)
		}
	}
	return nil
}

// SnapshotPolicies writes the agent state behind every binding's policy.
// Policies are serialized in binding order with a per-policy kind tag so a
// mismatched restore fails loudly rather than misreading bytes.
func (c *Controller) SnapshotPolicies(w *snap.Writer) error {
	w.Uvarint(uint64(len(c.bindings)))
	for _, b := range c.bindings {
		w.Mark(snap.PartKey(partCtlPolicy, uint64(b.SubNoC.ID)))
		switch p := b.Policy.(type) {
		case StaticPolicy:
			w.Int(policyStatic)
		case *DQNPolicy:
			w.Int(policyDQN)
			p.Agent.Snapshot(w)
			w.I64(p.lastInferences)
		case *QTablePolicy:
			w.Int(policyQTable)
			p.Agent.Snapshot(w)
		default:
			return fmt.Errorf("core: unserializable policy %T for subNoC %d", b.Policy, b.SubNoC.ID)
		}
	}
	return nil
}

// Policy kind tags in the checkpoint stream.
const (
	policyStatic = iota
	policyDQN
	policyQTable
)

// RestorePolicies reads agent state written by SnapshotPolicies into the
// controller's existing policies, which must be of the same kinds.
func (c *Controller) RestorePolicies(r *snap.Reader) error {
	n, err := r.Count(1)
	if err != nil {
		return err
	}
	if n != len(c.bindings) {
		return fmt.Errorf("core: checkpoint has %d policies, controller has %d", n, len(c.bindings))
	}
	for _, b := range c.bindings {
		kind, err := r.Int()
		if err != nil {
			return err
		}
		switch p := b.Policy.(type) {
		case StaticPolicy:
			if kind != policyStatic {
				return fmt.Errorf("core: checkpoint policy kind %d for static binding %d", kind, b.SubNoC.ID)
			}
		case *DQNPolicy:
			if kind != policyDQN {
				return fmt.Errorf("core: checkpoint policy kind %d for DQN binding %d", kind, b.SubNoC.ID)
			}
			if err := p.Agent.Restore(r); err != nil {
				return err
			}
			if p.lastInferences, err = r.I64(); err != nil {
				return err
			}
		case *QTablePolicy:
			if kind != policyQTable {
				return fmt.Errorf("core: checkpoint policy kind %d for Q-table binding %d", kind, b.SubNoC.ID)
			}
			if err := p.Agent.Restore(r); err != nil {
				return err
			}
		default:
			return fmt.Errorf("core: unserializable policy %T for subNoC %d", b.Policy, b.SubNoC.ID)
		}
	}
	return nil
}

// Snapshot writes the OSCAR controller's dynamic state.
func (o *OSCARController) Snapshot(w *snap.Writer) {
	w.Bool(o.started)
	w.I64(o.Reallocations)
	snapshotIntSliceMap(w, o.assignment)
	keys := sortedKeys(o.demand)
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.Int(k)
		w.I64(o.demand[k])
	}
}

// Restore overlays a state written by Snapshot. The assignment map is
// updated in place because the routers' VC-policy closures read it live.
func (o *OSCARController) Restore(r *snap.Reader) error {
	var err error
	if o.started, err = r.Bool(); err != nil {
		return err
	}
	if o.Reallocations, err = r.I64(); err != nil {
		return err
	}
	assign, err := restoreIntSliceMap(r)
	if err != nil {
		return err
	}
	n, err := r.Count(2)
	if err != nil {
		return err
	}
	demand := make(map[int]int64, n)
	for i := 0; i < n; i++ {
		k, err := r.Int()
		if err != nil {
			return err
		}
		v, err := r.I64()
		if err != nil {
			return err
		}
		demand[k] = v
	}
	for k := range o.assignment {
		delete(o.assignment, k)
	}
	for k, v := range assign {
		o.assignment[k] = v
	}
	o.demand = demand
	return nil
}

func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func snapshotIntSliceMap(w *snap.Writer, m map[int][]int) {
	keys := sortedKeys(m)
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.Int(k)
		w.Uvarint(uint64(len(m[k])))
		for _, v := range m[k] {
			w.Int(v)
		}
	}
}

func restoreIntSliceMap(r *snap.Reader) (map[int][]int, error) {
	n, err := r.Count(2)
	if err != nil {
		return nil, err
	}
	m := make(map[int][]int, n)
	for i := 0; i < n; i++ {
		k, err := r.Int()
		if err != nil {
			return nil, err
		}
		nv, err := r.Count(1)
		if err != nil {
			return nil, err
		}
		vs := make([]int, nv)
		for j := range vs {
			if vs[j], err = r.Int(); err != nil {
				return nil, err
			}
		}
		m[k] = vs
	}
	return m, nil
}
