package core

import (
	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/system"
)

// OSCARController implements the dynamic virtual-channel allocation of the
// OSCAR baseline (design point 2, Section IV-A): the shared mesh's VCs are
// partitioned among the co-running applications, and the partition is
// re-balanced every epoch in proportion to each application's measured
// injection demand (every application always keeps at least one VC per
// virtual network, which preserves deadlock freedom — the routing function
// itself is untouched).
type OSCARController struct {
	EpochCycles int

	kernel *sim.Kernel
	net    *noc.Network
	apps   []*system.App

	// assignment maps app ID -> allowed VC indices within a vnet.
	assignment map[int][]int
	demand     map[int]int64
	started    bool

	// Reallocations counts partition changes (diagnostic).
	Reallocations int64

	// gen counts epoch rounds for delta-checkpoint skipping; all
	// serialized OSCAR state mutates only in Start/onEpoch.
	gen uint64
}

// Gen returns the controller's snapshot-state generation counter.
func (o *OSCARController) Gen() uint64 { return o.gen }

// NewOSCARController installs the VC policy on every router of the
// network. The partition binds only where applications contend: a packet
// traversing a router inside its own application's region may use any VC
// (no interference to manage there), while foreign traffic — e.g. requests
// and replies of a neighbour reaching a shared memory controller — is
// confined to its application's allocated VCs, protecting the region
// owner's buffers.
func NewOSCARController(kernel *sim.Kernel, net *noc.Network, apps []*system.App) *OSCARController {
	o := &OSCARController{
		EpochCycles: 50000,
		kernel:      kernel,
		net:         net,
		apps:        apps,
		assignment:  make(map[int][]int),
		demand:      make(map[int]int64),
	}
	o.partition(equalShares(len(apps)))
	kernel.RegisterOp(opOscarEpoch, func(now sim.Cycle, _ [3]int64) { o.onEpoch(now) })

	// ownerOf maps each tile to the app occupying it (-1 if none).
	ownerOf := make([]int, net.Cfg.NumNodes())
	for i := range ownerOf {
		ownerOf[i] = -1
	}
	for _, a := range apps {
		for _, t := range a.Tiles {
			ownerOf[t] = a.ID
		}
	}
	for _, r := range net.Routers() {
		owner := ownerOf[r.ID]
		policy := func(p *noc.Packet, _ noc.VNet, vc int) bool {
			if p.App == owner {
				return true // home traffic keeps the full buffer pool
			}
			allowed, ok := o.assignment[p.App]
			if !ok {
				return true
			}
			for _, a := range allowed {
				if a == vc {
					return true
				}
			}
			return false
		}
		r.SetVCPolicy(policy)
	}
	return o
}

// Start schedules the periodic re-balancing.
func (o *OSCARController) Start() {
	if o.started {
		panic("core: OSCAR controller started twice")
	}
	o.started = true
	o.gen++
	o.kernel.AfterOp(sim.Cycle(o.EpochCycles), opOscarEpoch, 0, 0, 0)
}

func (o *OSCARController) onEpoch(now sim.Cycle) {
	o.gen++
	// Demand = packets delivered for each app this epoch.
	shares := make([]float64, len(o.apps))
	var total float64
	for i, a := range o.apps {
		tot := a.Totals()
		d := (tot.CoherencePackets + tot.DataPackets) - o.demand[a.ID]
		o.demand[a.ID] = tot.CoherencePackets + tot.DataPackets
		shares[i] = float64(d)
		total += float64(d)
	}
	if total == 0 {
		shares = equalShares(len(o.apps))
	} else {
		for i := range shares {
			shares[i] /= total
		}
	}
	o.partition(shares)
	o.kernel.AfterOp(sim.Cycle(o.EpochCycles), opOscarEpoch, 0, 0, 0)
}

// partition assigns the V VCs of each vnet to apps by largest-remainder
// with a floor of one VC per app.
func (o *OSCARController) partition(shares []float64) {
	v := o.net.Cfg.VCsPerVNet
	n := len(o.apps)
	counts := make([]int, n)
	for i := range counts {
		counts[i] = 1
	}
	extra := v - n
	if extra < 0 {
		// More apps than VCs: round-robin overlap, apps share VCs.
		newAssign := make(map[int][]int, n)
		for i, a := range o.apps {
			newAssign[a.ID] = []int{i % v}
		}
		o.applyAssignment(newAssign)
		return
	}
	// Hand out the extra VCs to the highest shares.
	for e := 0; e < extra; e++ {
		best, bestVal := 0, -1.0
		for i, s := range shares {
			val := s - float64(counts[i]-1)/float64(v)
			if val > bestVal {
				best, bestVal = i, val
			}
		}
		counts[best]++
	}
	newAssign := make(map[int][]int, n)
	vc := 0
	for i, a := range o.apps {
		for k := 0; k < counts[i]; k++ {
			newAssign[a.ID] = append(newAssign[a.ID], vc)
			vc++
		}
	}
	o.applyAssignment(newAssign)
}

func (o *OSCARController) applyAssignment(newAssign map[int][]int) {
	if !sameAssignment(o.assignment, newAssign) {
		o.Reallocations++
	}
	// Replace entries in place: the policy closure reads o.assignment.
	for k := range o.assignment {
		delete(o.assignment, k)
	}
	for k, v := range newAssign {
		o.assignment[k] = v
	}
}

// Assignment returns the app's current VC set (for tests).
func (o *OSCARController) Assignment(appID int) []int {
	return append([]int(nil), o.assignment[appID]...)
}

func sameAssignment(a, b map[int][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}

func equalShares(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 1.0 / float64(n)
	}
	return s
}
