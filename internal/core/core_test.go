package core

import (
	"testing"

	"adaptnoc/internal/fabric"
	"adaptnoc/internal/noc"
	"adaptnoc/internal/power"
	"adaptnoc/internal/rl"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/system"
	"adaptnoc/internal/topology"
	"adaptnoc/internal/traffic"
)

// rig assembles a full Adapt-NoC stack with one app on a 4x4 subNoC.
func rig(t *testing.T, profName string, pol Policy, epoch int) (*Controller, *Binding, *sim.Kernel) {
	t.Helper()
	cfg := noc.DefaultConfig()
	cfg.VCsPerVNet = 2
	cfg.InjectionBypass = true
	net := noc.NewNetwork(cfg)
	k := sim.NewKernel()
	k.Register(net)
	fab := fabric.New(net, k, fabric.DefaultConfig())
	m := system.NewMachine(net, k, system.DefaultParams())
	meter := power.NewMeter(net, power.DefaultParams())

	reg := topology.Region{X: 0, Y: 0, W: 4, H: 4}
	mc := noc.NodeID(0)
	sn, err := fab.Allocate(0, reg, topology.Mesh, mc)
	if err != nil {
		t.Fatal(err)
	}
	prof, ok := traffic.ByName(profName)
	if !ok {
		t.Fatalf("no profile %q", profName)
	}
	app := system.NewApp(0, prof, reg.Tiles(cfg.Width), []noc.NodeID{mc}, 0, sim.NewRNG(11))
	m.AddApp(app)

	c := NewController(k, fab, m, meter)
	c.EpochCycles = epoch
	b := c.Bind(sn, app, pol)
	b.KeepTrace = true
	c.Start()
	return c, b, k
}

func TestControllerEpochsAndStaticPolicy(t *testing.T) {
	_, b, k := rig(t, "canneal", StaticPolicy{Kind: topology.Mesh}, 5000)
	k.Run(60000)
	if b.EpochCount < 10 {
		t.Fatalf("only %d epochs ran", b.EpochCount)
	}
	if got := b.Selections[topology.Mesh]; got != b.EpochCount {
		t.Fatalf("static policy selected mesh %d of %d epochs", got, b.EpochCount)
	}
	if b.SubNoC.Reconfigs != 0 {
		t.Fatalf("static policy triggered %d reconfigurations", b.SubNoC.Reconfigs)
	}
	if len(b.Trace) == 0 || b.Trace[0].PowerMW <= 0 {
		t.Fatalf("trace missing or power not measured: %+v", b.Trace)
	}
	if b.MeanReward() >= 0 {
		t.Fatalf("reward should be negative (cost), got %v", b.MeanReward())
	}
}

func TestControllerStaticNonMeshReconfiguresOnce(t *testing.T) {
	_, b, k := rig(t, "blackscholes", StaticPolicy{Kind: topology.CMesh}, 5000)
	k.Run(40000)
	if b.SubNoC.Kind != topology.CMesh {
		t.Fatalf("kind = %v, want cmesh", b.SubNoC.Kind)
	}
	if b.SubNoC.Reconfigs != 1 {
		t.Fatalf("reconfigs = %d, want exactly 1", b.SubNoC.Reconfigs)
	}
}

func TestControllerDQNOnlineLearns(t *testing.T) {
	rng := sim.NewRNG(21)
	agent := rl.NewDQN(rl.DefaultDQNConfig(), rng)
	pol := &DQNPolicy{Agent: agent, Train: true}
	_, b, k := rig(t, "bfs", pol, 5000)
	k.Run(150000)
	if b.EpochCount < 20 {
		t.Fatalf("only %d epochs", b.EpochCount)
	}
	if agent.Replay.Len() == 0 {
		t.Fatal("no experiences recorded")
	}
	var chosen int
	for _, n := range b.Selections {
		if n > 0 {
			chosen++
		}
	}
	if chosen < 2 {
		t.Fatalf("exploration never tried a second topology: %v", b.Selections)
	}
}

func TestControllerQTablePolicy(t *testing.T) {
	pol := &QTablePolicy{Agent: rl.NewQTable(sim.NewRNG(31))}
	_, b, k := rig(t, "kmeans", pol, 5000)
	k.Run(80000)
	if pol.Agent.Entries() == 0 {
		t.Fatal("Q-table never populated")
	}
	if b.EpochCount == 0 {
		t.Fatal("no epochs")
	}
}

func TestSelectionFractionsSumToOne(t *testing.T) {
	_, b, k := rig(t, "x264", StaticPolicy{Kind: topology.Tree}, 5000)
	k.Run(40000)
	fr := b.SelectionFractions()
	var s float64
	for _, f := range fr {
		s += f
	}
	if s < 0.999 || s > 1.001 {
		t.Fatalf("fractions sum %v", s)
	}
}

func TestOSCARReallocatesVCs(t *testing.T) {
	cfg := noc.DefaultConfig() // 3 VCs per vnet
	net := noc.NewNetwork(cfg)
	k := sim.NewKernel()
	k.Register(net)
	topology.BuildMesh(net)
	m := system.NewMachine(net, k, system.DefaultParams())

	heavy, _ := traffic.ByName("bfs")
	light, _ := traffic.ByName("blackscholes")
	reg1 := topology.Region{X: 0, Y: 0, W: 4, H: 8}
	reg2 := topology.Region{X: 4, Y: 0, W: 4, H: 8}
	a1 := system.NewApp(0, heavy, reg1.Tiles(cfg.Width), []noc.NodeID{0}, 0, sim.NewRNG(41))
	a2 := system.NewApp(1, light, reg2.Tiles(cfg.Width), []noc.NodeID{4}, 0, sim.NewRNG(42))
	m.AddApp(a1)
	m.AddApp(a2)

	o := NewOSCARController(k, net, []*system.App{a1, a2})
	o.EpochCycles = 5000
	o.Start()

	if len(o.Assignment(0)) == 0 || len(o.Assignment(1)) == 0 {
		t.Fatal("initial assignment missing")
	}
	k.Run(40000)
	// The heavy app should end up with more VCs than the light one.
	if len(o.Assignment(0)) <= len(o.Assignment(1)) {
		t.Fatalf("heavy app got %d VCs, light got %d", len(o.Assignment(0)), len(o.Assignment(1)))
	}
	if len(o.Assignment(0))+len(o.Assignment(1)) != cfg.VCsPerVNet {
		t.Fatalf("assignments don't partition the %d VCs", cfg.VCsPerVNet)
	}
	// Traffic still flows under the partition.
	tot := a1.Totals()
	if tot.Delivered == 0 {
		t.Fatal("no packets delivered under OSCAR partitioning")
	}
}

func TestControllerAccumulatesEnergyAndTrace(t *testing.T) {
	_, b, k := rig(t, "kmeans", StaticPolicy{Kind: topology.Mesh}, 5000)
	k.Run(40000)
	if b.Energy.TotalPJ() <= 0 {
		t.Fatal("no energy accumulated on the binding")
	}
	if b.Energy.DynamicPJ() <= 0 || b.Energy.StaticPJ() <= 0 {
		t.Fatalf("energy split empty: %v", b.Energy)
	}
	for _, rec := range b.Trace {
		if len(rec.State) != rl.StateSize {
			t.Fatalf("trace state size %d", len(rec.State))
		}
		for i, v := range rec.State {
			if v < 0 || v > 1 {
				t.Fatalf("epoch %d feature %d = %v out of [0,1]", rec.Epoch, i, v)
			}
		}
	}
}

func TestDQNPolicyInferenceCounting(t *testing.T) {
	agent := rl.NewDQN(rl.DefaultDQNConfig(), sim.NewRNG(3))
	pol := &DQNPolicy{Agent: agent}
	s := make([]float64, rl.StateSize)
	pol.Decide(s)
	pol.Decide(s)
	if got := pol.Inferences(); got != 2 {
		t.Fatalf("Inferences = %d, want 2", got)
	}
	if got := pol.Inferences(); got != 0 {
		t.Fatalf("second Inferences = %d, want 0", got)
	}
}

func TestStaticTorusTreePolicy(t *testing.T) {
	// The extension kind must flow through the selection histogram
	// without overrunning the action-space-sized arrays.
	_, b, k := rig(t, "kmeans", StaticPolicy{Kind: topology.TorusTree}, 5000)
	k.Run(30000)
	if b.SubNoC.Kind != topology.TorusTree {
		t.Fatalf("kind = %v", b.SubNoC.Kind)
	}
	if b.Selections[topology.TorusTree] == 0 {
		t.Fatal("extension selections not recorded")
	}
}
