// Package core is the Adapt-NoC control plane — the paper's primary
// contribution tied together: per-subNoC RL controllers (placed in the
// memory controllers, Section III-A) observe the Table I state every epoch
// (50K cycles), compute the reward −power×(Tnetwork+Tqueuing) from the
// previous epoch, select one of the four subNoC topologies, and drive the
// fabric's deadlock-free reconfiguration. The same controller runs the
// Adapt-NoC-noRL baseline (a statically pinned topology) and exposes the
// per-epoch traces the evaluation figures are built from.
package core

import (
	"fmt"

	"adaptnoc/internal/fabric"
	"adaptnoc/internal/power"
	"adaptnoc/internal/rl"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/system"
	"adaptnoc/internal/topology"
)

// Policy selects the next topology for a subNoC each epoch.
type Policy interface {
	// Decide maps a normalized state to a topology; called once per epoch.
	Decide(state []float64) topology.Kind
	// Learn observes the completed transition (no-op for static and
	// deployment-mode DQN policies).
	Learn(prev []float64, action topology.Kind, reward float64, next []float64)
	// Inferences reports forward passes since the last call (for the
	// power model).
	Inferences() int
}

// StaticPolicy pins one topology (Adapt-NoC-noRL, design point 6).
type StaticPolicy struct{ Kind topology.Kind }

// Decide implements Policy.
func (s StaticPolicy) Decide([]float64) topology.Kind { return s.Kind }

// Learn implements Policy.
func (s StaticPolicy) Learn([]float64, topology.Kind, float64, []float64) {}

// Inferences implements Policy.
func (s StaticPolicy) Inferences() int { return 0 }

// DQNPolicy adapts an rl.DQN to the controller. With Train set it learns
// online (used by the offline-training harness, which runs the same loop
// against training workloads); in deployment only the forward pass runs.
type DQNPolicy struct {
	Agent *rl.DQN
	Train bool

	lastInferences int64
}

// Decide implements Policy.
func (d *DQNPolicy) Decide(state []float64) topology.Kind {
	return topology.Kind(d.Agent.Select(state))
}

// Learn implements Policy.
func (d *DQNPolicy) Learn(prev []float64, action topology.Kind, reward float64, next []float64) {
	if !d.Train {
		return
	}
	d.Agent.Observe(rl.Experience{State: prev, Action: int(action), Reward: reward, Next: next})
	d.Agent.TrainIteration()
}

// Inferences implements Policy.
func (d *DQNPolicy) Inferences() int {
	n := d.Agent.Inferences - d.lastInferences
	d.lastInferences = d.Agent.Inferences
	return int(n)
}

// QTablePolicy adapts the tabular agent (online Q-learning comparison).
type QTablePolicy struct{ Agent *rl.QTable }

// Decide implements Policy.
func (q *QTablePolicy) Decide(state []float64) topology.Kind {
	return topology.Kind(q.Agent.Select(state))
}

// Learn implements Policy.
func (q *QTablePolicy) Learn(prev []float64, action topology.Kind, reward float64, next []float64) {
	q.Agent.Update(prev, int(action), reward, next)
}

// Inferences implements Policy.
func (q *QTablePolicy) Inferences() int { return 1 }

// EpochRecord is one epoch's observations for one subNoC, the raw material
// of Figs. 14-19.
type EpochRecord struct {
	Epoch        int
	Kind         topology.Kind
	Chosen       topology.Kind
	AvgNetLat    float64
	AvgQueueLat  float64
	AvgHops      float64
	PowerMW      float64
	Reward       float64
	Delivered    int64
	RetiredInstr int64
	// State is the normalized Table I vector observed this epoch.
	State []float64
}

// Binding couples a subNoC, its application, and its control policy.
type Binding struct {
	SubNoC *fabric.SubNoC
	App    *system.App
	Policy Policy

	prevState  []float64
	prevAction topology.Kind
	hasPrev    bool

	// Selections histogram over epochs (Figs. 14-15); sized to include
	// the TorusTree extension, which static policies may pin.
	Selections [topology.NumSelectable]int64
	// Trace holds per-epoch records when tracing is enabled.
	Trace      []EpochRecord
	KeepTrace  bool
	RewardSum  float64
	EpochCount int64
	// Energy accumulates the subNoC's collected energy windows.
	Energy power.Breakdown
}

// Controller runs the epoch loop for every bound subNoC.
type Controller struct {
	EpochCycles int // paper: 50K

	kernel  *sim.Kernel
	fab     *fabric.Fabric
	machine *system.Machine
	meter   *power.Meter
	scales  rl.Scales

	bindings []*Binding
	epoch    int
	started  bool

	// gen counts epoch-processing rounds; every serialized controller
	// field mutates only inside Start/onEpoch, so together with the
	// policy agents' own generations it identifies a quiescent control
	// section for delta checkpointing.
	gen uint64
}

// StateGen returns a generation covering everything the control section
// serializes: the controller's own epoch state plus each binding's policy
// agent.
func (c *Controller) StateGen() uint64 {
	g := c.gen
	for _, b := range c.bindings {
		switch p := b.Policy.(type) {
		case *DQNPolicy:
			g += p.Agent.Gen()
		case *QTablePolicy:
			g += p.Agent.Gen()
		}
	}
	return g
}

// Kernel operation IDs owned by this package (range 300-399).
const (
	// opCtlEpoch is the RL controller's periodic epoch boundary.
	opCtlEpoch sim.OpID = 300 + iota
	// opOscarEpoch is the OSCAR controller's periodic VC re-balancing.
	opOscarEpoch
)

// NewController assembles the control plane.
func NewController(kernel *sim.Kernel, fab *fabric.Fabric, machine *system.Machine, meter *power.Meter) *Controller {
	c := &Controller{
		EpochCycles: 50000,
		kernel:      kernel,
		fab:         fab,
		machine:     machine,
		meter:       meter,
		scales:      rl.DefaultScales(),
	}
	kernel.RegisterOp(opCtlEpoch, func(now sim.Cycle, _ [3]int64) { c.onEpoch(now) })
	return c
}

// Bind attaches a policy to a subNoC/application pair.
func (c *Controller) Bind(sn *fabric.SubNoC, app *system.App, p Policy) *Binding {
	b := &Binding{SubNoC: sn, App: app, Policy: p}
	c.bindings = append(c.bindings, b)
	return b
}

// Bindings returns the bound subNoCs.
func (c *Controller) Bindings() []*Binding { return c.bindings }

// Start schedules the periodic epoch handler.
func (c *Controller) Start() {
	if c.started {
		panic("core: controller started twice")
	}
	c.started = true
	c.gen++
	c.kernel.AfterOp(sim.Cycle(c.EpochCycles), opCtlEpoch, 0, 0, 0)
}

// onEpoch processes every binding, then reschedules itself.
func (c *Controller) onEpoch(now sim.Cycle) {
	c.gen++
	c.epoch++
	for _, b := range c.bindings {
		c.processBinding(b, now)
	}
	c.kernel.AfterOp(sim.Cycle(c.EpochCycles), opCtlEpoch, 0, 0, 0)
}

// processBinding observes one subNoC's epoch, learns, decides, and
// triggers reconfiguration when the chosen topology differs.
func (c *Controller) processBinding(b *Binding, now sim.Cycle) {
	reg := b.SubNoC.Region
	tiles := c.fab.RegionOf(b.SubNoC)
	win := b.App.TakeWindow()
	pw := c.meter.CollectRegionAt(tiles, now)

	infs := b.Policy.Inferences()
	rlPJ := c.meter.AddRLInferences(infs)
	energy := addRL(pw.Energy, rlPJ)
	b.Energy.Add(energy)
	powerMW := power.AvgPowerMW(energy, pw.Cycles, c.meter.P.ClockGHz)

	// Count features are per-tile rates against a 50K-cycle reference
	// epoch, so one trained policy transfers across epoch lengths and
	// subNoC sizes.
	ef := 50000.0 / float64(c.EpochCycles) / float64(len(tiles))
	raw := rl.RawState{
		L1DMisses:        ef * float64(win.L1DMisses),
		L1IMisses:        ef * float64(win.L1IMisses),
		L2Misses:         ef * float64(win.L2Misses),
		RetiredInstr:     ef * float64(win.Retired),
		CoherencePackets: ef * float64(win.CoherencePackets),
		DataPackets:      ef * float64(win.DataPackets),
		RouterBufUtil:    pw.RouterBufUtil(),
		InjBufUtil:       clamp01(pw.InjQueueAvg(len(tiles)) / 8.0),
		RouterThroughput: pw.Throughput(),
		Current:          b.SubNoC.Kind,
		Cols:             reg.W,
		Rows:             reg.H,
	}
	state := c.scales.Normalize(raw)
	reward := rl.Reward(powerMW, win.AvgNetLatency(), win.AvgQueueLatency())

	if b.hasPrev {
		b.Policy.Learn(b.prevState, b.prevAction, reward, state)
	}
	b.RewardSum += reward
	b.EpochCount++

	chosen := b.Policy.Decide(state)
	b.Selections[chosen]++
	if b.KeepTrace {
		b.Trace = append(b.Trace, EpochRecord{
			Epoch: c.epoch, Kind: b.SubNoC.Kind, Chosen: chosen,
			AvgNetLat: win.AvgNetLatency(), AvgQueueLat: win.AvgQueueLatency(),
			AvgHops: win.AvgHops(), PowerMW: powerMW, Reward: reward,
			Delivered: win.Delivered, RetiredInstr: win.Retired,
			State: append([]float64(nil), state...),
		})
	}
	b.prevState, b.prevAction, b.hasPrev = state, chosen, true

	if chosen != b.SubNoC.Kind && b.SubNoC.State() == fabric.StateActive {
		if err := c.fab.Reconfigure(b.SubNoC, chosen, nil); err != nil {
			panic(fmt.Sprintf("core: reconfigure subNoC %d: %v", b.SubNoC.ID, err))
		}
	}
}

// SelectionFractions returns the per-topology fraction of epoch decisions
// (the bars of Figs. 14-15).
func (b *Binding) SelectionFractions() [topology.NumSelectable]float64 {
	var out [topology.NumSelectable]float64
	var total int64
	for _, n := range b.Selections {
		total += n
	}
	if total == 0 {
		return out
	}
	for i, n := range b.Selections {
		out[i] = float64(n) / float64(total)
	}
	return out
}

// MeanReward returns the average per-epoch reward.
func (b *Binding) MeanReward() float64 {
	if b.EpochCount == 0 {
		return 0
	}
	return b.RewardSum / float64(b.EpochCount)
}

func addRL(b power.Breakdown, rlPJ float64) power.Breakdown {
	b.RLPJ += rlPJ
	return b
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
