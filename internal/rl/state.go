package rl

import (
	"math"

	"adaptnoc/internal/topology"
)

// NumActions is the size of the action space: the four subNoC topologies
// (Section III-B).
const NumActions = int(topology.NumKinds)

// StateSize is the DQN input width: the 12 attributes of Table I.
const StateSize = 12

// RawState carries the un-normalized per-epoch observations of one subNoC
// (Table I). Counters are per epoch; utilizations are fractions in [0,1];
// throughput is flits per router per cycle.
type RawState struct {
	// Instruction and cache related metrics.
	L1DMisses    float64
	L1IMisses    float64
	L2Misses     float64
	RetiredInstr float64

	// Network related metrics.
	CoherencePackets float64
	DataPackets      float64
	RouterBufUtil    float64
	InjBufUtil       float64

	// Topology related metrics.
	RouterThroughput float64
	Current          topology.Kind
	Cols             int
	Rows             int
}

// Scales normalizes raw observations into the (0,1) range the activation
// function's linear region wants (Section III-E). Count features are
// per-tile per-50K-cycle-epoch rates (the controller divides the window
// counters by the subNoC's tile count and rescales the epoch), so one
// policy transfers across subNoC sizes — the paper's reason for training
// across 2x4 … 8x8 configurations.
type Scales struct {
	Misses       float64 // cache misses per tile per 50K-cycle epoch
	Instructions float64 // retired instructions per tile per epoch
	Packets      float64 // packets per tile per epoch
	Throughput   float64 // flits/router/cycle
	Dim          float64 // max rows/cols
}

// DefaultScales returns normalization constants sized so the heaviest GPU
// phases land near — not past — full scale.
func DefaultScales() Scales {
	return Scales{
		Misses:       3000,
		Instructions: 150000,
		Packets:      4000,
		Throughput:   1.0,
		Dim:          8,
	}
}

// Normalize builds the DQN input vector.
func (s Scales) Normalize(r RawState) []float64 {
	clamp01 := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	}
	return []float64{
		clamp01(r.L1DMisses / s.Misses),
		clamp01(r.L1IMisses / s.Misses),
		clamp01(r.L2Misses / s.Misses),
		clamp01(r.RetiredInstr / s.Instructions),
		clamp01(r.CoherencePackets / s.Packets),
		clamp01(r.DataPackets / s.Packets),
		clamp01(r.RouterBufUtil),
		clamp01(r.InjBufUtil),
		clamp01(r.RouterThroughput / s.Throughput),
		clamp01(float64(r.Current) / float64(NumActions-1)),
		clamp01(float64(r.Cols) / s.Dim),
		clamp01(float64(r.Rows) / s.Dim),
	}
}

// RewardScale sets the knee of the logarithmic reward compression
// (milliwatt-cycles). Sparse CPU epochs land around −0.5, saturating GPU
// epochs around −4.
const RewardScale = 1000.0

// Reward computes the paper's reward (Equation 2):
// −power × (Tnetwork + Tqueuing), with power in milliwatts and latencies
// in cycles. The product spans three orders of magnitude between sparse
// CPU phases and saturating GPU phases, so it is compressed
// logarithmically — an order-preserving transform per state that keeps the
// small DQN's gradients comparable across application classes. More
// negative is worse; the agent maximizes it.
func Reward(powerMW, netLatency, queueLatency float64) float64 {
	return -math.Log1p(powerMW * (netLatency + queueLatency) / RewardScale)
}
