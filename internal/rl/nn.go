// Package rl implements the reinforcement-learning control policy of
// Section III: the 12-feature state vector of Table I, the 4-topology
// action space, the reward −power×(Tnetwork+Tqueuing), a from-scratch
// dense neural network, the deep Q-network with experience replay and a
// target network (offline training, Section III-E), and a tabular
// Q-learning agent used for comparison and unit testing.
package rl

import (
	"encoding/json"
	"fmt"
	"math"

	"adaptnoc/internal/sim"
)

// Net is a fully connected feed-forward network with ReLU hidden layers
// and a linear output layer — the paper's DQN shape is
// NewNet([]int{12, 15, 15, 4}, rng).
type Net struct {
	Sizes []int
	// W[l] has Sizes[l+1] rows × Sizes[l] columns, row-major.
	W [][]float64
	B [][]float64
}

// NewNet creates a network with He-initialized weights.
func NewNet(sizes []int, rng *sim.RNG) *Net {
	if len(sizes) < 2 {
		panic("rl: network needs at least input and output layers")
	}
	n := &Net{Sizes: append([]int(nil), sizes...)}
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		w := make([]float64, in*out)
		scale := math.Sqrt(2.0 / float64(in))
		for i := range w {
			w[i] = rng.NormFloat64() * scale
		}
		n.W = append(n.W, w)
		n.B = append(n.B, make([]float64, out))
	}
	return n
}

// Clone deep-copies the network (target-network sync).
func (n *Net) Clone() *Net {
	cp := &Net{Sizes: append([]int(nil), n.Sizes...)}
	for l := range n.W {
		cp.W = append(cp.W, append([]float64(nil), n.W[l]...))
		cp.B = append(cp.B, append([]float64(nil), n.B[l]...))
	}
	return cp
}

// CopyFrom overwrites this network's parameters with o's.
func (n *Net) CopyFrom(o *Net) {
	for l := range n.W {
		copy(n.W[l], o.W[l])
		copy(n.B[l], o.B[l])
	}
}

// Forward computes the output Q-values for one input.
func (n *Net) Forward(x []float64) []float64 {
	acts := n.forwardAll(x)
	return acts[len(acts)-1]
}

// forwardAll returns the activations of every layer (input first).
func (n *Net) forwardAll(x []float64) [][]float64 {
	if len(x) != n.Sizes[0] {
		panic(fmt.Sprintf("rl: input size %d, want %d", len(x), n.Sizes[0]))
	}
	acts := make([][]float64, len(n.Sizes))
	acts[0] = x
	for l := 0; l < len(n.W); l++ {
		in, out := n.Sizes[l], n.Sizes[l+1]
		a := make([]float64, out)
		for j := 0; j < out; j++ {
			s := n.B[l][j]
			row := n.W[l][j*in : (j+1)*in]
			for i, xi := range acts[l] {
				s += row[i] * xi
			}
			if l < len(n.W)-1 && s < 0 {
				s = 0 // ReLU on hidden layers
			}
			a[j] = s
		}
		acts[l+1] = a
	}
	return acts
}

// tdClip bounds the per-sample gradient magnitude (Huber-style), keeping a
// single outlier epoch from blowing the small network's weights apart.
const tdClip = 4.0

// TrainStep performs one SGD step minimizing ½(Q(s)[action] − target)² and
// returns the TD error (target − prediction). Only the chosen action's
// output contributes gradient, per standard DQN training; the applied
// gradient is clipped to ±tdClip.
func (n *Net) TrainStep(x []float64, action int, target, lr float64) float64 {
	acts := n.forwardAll(x)
	out := acts[len(acts)-1]
	tdErr := target - out[action]
	grad := tdErr
	if grad > tdClip {
		grad = tdClip
	} else if grad < -tdClip {
		grad = -tdClip
	}

	// Output-layer delta: gradient only on the selected action.
	delta := make([]float64, len(out))
	delta[action] = -grad // d(loss)/d(out)

	for l := len(n.W) - 1; l >= 0; l-- {
		in, outN := n.Sizes[l], n.Sizes[l+1]
		prev := acts[l]
		var nextDelta []float64
		if l > 0 {
			nextDelta = make([]float64, in)
		}
		for j := 0; j < outN; j++ {
			d := delta[j]
			if d == 0 {
				continue
			}
			row := n.W[l][j*in : (j+1)*in]
			if l > 0 {
				for i := range row {
					nextDelta[i] += row[i] * d
				}
			}
			for i := range row {
				row[i] -= lr * d * prev[i]
			}
			n.B[l][j] -= lr * d
		}
		if l > 0 {
			// ReLU derivative on the hidden activation.
			for i := range nextDelta {
				if acts[l][i] <= 0 {
					nextDelta[i] = 0
				}
			}
			delta = nextDelta
		}
	}
	return tdErr
}

// Argmax returns the index of the largest value (first on ties).
func Argmax(xs []float64) int {
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}

// MarshalJSON / UnmarshalJSON give the net a stable weights format for
// cmd/adaptnoc-train and embedded pre-trained policies.
type netJSON struct {
	Sizes []int       `json:"sizes"`
	W     [][]float64 `json:"weights"`
	B     [][]float64 `json:"biases"`
}

// MarshalJSON implements json.Marshaler.
func (n *Net) MarshalJSON() ([]byte, error) {
	return json.Marshal(netJSON{Sizes: n.Sizes, W: n.W, B: n.B})
}

// UnmarshalJSON implements json.Unmarshaler.
func (n *Net) UnmarshalJSON(b []byte) error {
	var j netJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	if len(j.Sizes) < 2 || len(j.W) != len(j.Sizes)-1 || len(j.B) != len(j.Sizes)-1 {
		return fmt.Errorf("rl: malformed network JSON")
	}
	for l := 0; l+1 < len(j.Sizes); l++ {
		if len(j.W[l]) != j.Sizes[l]*j.Sizes[l+1] || len(j.B[l]) != j.Sizes[l+1] {
			return fmt.Errorf("rl: layer %d shape mismatch", l)
		}
	}
	n.Sizes, n.W, n.B = j.Sizes, j.W, j.B
	return nil
}
