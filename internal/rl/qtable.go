package rl

import (
	"adaptnoc/internal/sim"
)

// QTable is the tabular Q-learning agent of Section III-A (Equation 1):
// Q(s,a) += α[r + γ·maxQ(s',·) − Q(s,a)]. Continuous state vectors are
// discretized into a small number of buckets per feature; the table grows
// lazily. It exists as the simpler alternative the paper motivates DQN
// against (exponential table growth) and as a unit-testable reference.
type QTable struct {
	Alpha   float64 // learning rate (paper: 0.1)
	Gamma   float64 // discount factor (paper: 0.9)
	Epsilon float64 // exploration rate (paper: 0.05)
	Buckets int     // discretization levels per feature

	q   map[string][]float64
	rng *sim.RNG

	// gen counts mutations of the state Snapshot serializes, for
	// delta-checkpoint skipping.
	gen uint64
}

// Gen returns the table's snapshot-state generation counter.
func (t *QTable) Gen() uint64 { return t.gen }

// NewQTable creates an agent with the paper's online hyper-parameters.
func NewQTable(rng *sim.RNG) *QTable {
	return &QTable{Alpha: 0.1, Gamma: 0.9, Epsilon: 0.05, Buckets: 4,
		q: make(map[string][]float64), rng: rng}
}

// key discretizes a normalized state vector.
func (t *QTable) key(state []float64) string {
	b := make([]byte, len(state))
	for i, v := range state {
		k := int(v * float64(t.Buckets))
		if k >= t.Buckets {
			k = t.Buckets - 1
		}
		if k < 0 {
			k = 0
		}
		b[i] = byte('a' + k)
	}
	return string(b)
}

func (t *QTable) row(state []float64) []float64 {
	k := t.key(state)
	r, ok := t.q[k]
	if !ok {
		r = make([]float64, NumActions)
		t.q[k] = r
	}
	return r
}

// Select returns the ε-greedy action.
func (t *QTable) Select(state []float64) int {
	t.gen++
	if t.rng.Float64() < t.Epsilon {
		return t.rng.Intn(NumActions)
	}
	return Argmax(t.row(state))
}

// Update applies the Q-learning rule for an observed transition.
func (t *QTable) Update(state []float64, action int, reward float64, next []float64) {
	t.gen++
	row := t.row(state)
	var maxNext float64
	if next != nil {
		nr := t.row(next)
		maxNext = nr[Argmax(nr)]
	}
	row[action] += t.Alpha * (reward + t.Gamma*maxNext - row[action])
}

// Entries returns the number of distinct discretized states seen.
func (t *QTable) Entries() int { return len(t.q) }

// Q returns the current value of (state, action); for tests.
func (t *QTable) Q(state []float64, action int) float64 {
	return t.row(state)[action]
}
