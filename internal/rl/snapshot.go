package rl

// Checkpoint support. Agents are pure state machines over their weights,
// replay buffer, and RNG, so serializing those three reproduces the exact
// training trajectory. Hyper-parameters (DQNConfig, QTable's scalars) come
// from the run configuration and are validated, not restored.

import (
	"fmt"
	"sort"

	"adaptnoc/internal/snap"
)

// Part-mark kinds for rl state (delta alignment only; the 16+ range is
// reserved for this package when it writes into the control section —
// see internal/core). Identical keys recur across agents and between the
// prediction and target networks; the delta encoder pairs the leftovers
// positionally per kind, which preserves alignment because serialization
// order is deterministic.
const (
	partRLNetLayer = 16 + iota
	partRLReplayHeader
	partRLReplayEntry
	partRLAgentTail
	partRLQRow
)

// Snapshot writes the network's weights.
func (n *Net) Snapshot(w *snap.Writer) {
	w.Uvarint(uint64(len(n.Sizes)))
	for _, s := range n.Sizes {
		w.Int(s)
	}
	for l := range n.W {
		w.Mark(snap.PartKey(partRLNetLayer, uint64(l)))
		w.F64s(n.W[l])
		w.F64s(n.B[l])
	}
}

// RestoreNet reads a network written by Snapshot.
func RestoreNet(r *snap.Reader) (*Net, error) {
	nSizes, err := r.Count(1)
	if err != nil {
		return nil, err
	}
	if nSizes < 2 {
		return nil, fmt.Errorf("rl: network with %d layers", nSizes)
	}
	n := &Net{Sizes: make([]int, nSizes)}
	for i := range n.Sizes {
		s, err := r.Int()
		if err != nil {
			return nil, err
		}
		if s < 1 || s > 1<<16 {
			return nil, fmt.Errorf("rl: layer size %d", s)
		}
		n.Sizes[i] = s
	}
	n.W = make([][]float64, nSizes-1)
	n.B = make([][]float64, nSizes-1)
	for l := 0; l < nSizes-1; l++ {
		if n.W[l], err = r.F64s(); err != nil {
			return nil, err
		}
		if len(n.W[l]) != n.Sizes[l]*n.Sizes[l+1] {
			return nil, fmt.Errorf("rl: layer %d has %d weights, want %d",
				l, len(n.W[l]), n.Sizes[l]*n.Sizes[l+1])
		}
		if n.B[l], err = r.F64s(); err != nil {
			return nil, err
		}
		if len(n.B[l]) != n.Sizes[l+1] {
			return nil, fmt.Errorf("rl: layer %d has %d biases, want %d",
				l, len(n.B[l]), n.Sizes[l+1])
		}
	}
	return n, nil
}

func snapshotVec(w *snap.Writer, v []float64) {
	w.Bool(v != nil)
	if v != nil {
		w.F64s(v)
	}
}

func restoreVec(r *snap.Reader) ([]float64, error) {
	ok, err := r.Bool()
	if err != nil || !ok {
		return nil, err
	}
	return r.F64s()
}

// Snapshot writes the buffer's contents and ring position.
func (rb *ReplayBuffer) Snapshot(w *snap.Writer) {
	w.Mark(snap.PartKey(partRLReplayHeader, 0))
	w.Uvarint(uint64(len(rb.buf)))
	w.Int(rb.next)
	w.Bool(rb.full)
	n := rb.Len()
	w.Uvarint(uint64(n))
	for i := 0; i < n; i++ {
		w.Mark(snap.PartKey(partRLReplayEntry, uint64(i)))
		e := rb.buf[i]
		snapshotVec(w, e.State)
		w.Int(e.Action)
		w.F64(e.Reward)
		snapshotVec(w, e.Next)
	}
}

// Restore reads a buffer state written by Snapshot; the capacity must match.
func (rb *ReplayBuffer) Restore(r *snap.Reader) error {
	// The capacity is a configuration echo, not a count of following
	// elements (the buffer may be mostly empty), so it is not
	// bounds-checked against the remaining input — the match against the
	// agent's own capacity below is the guard.
	capn64, err := r.Uvarint()
	if err != nil {
		return err
	}
	capn := int(capn64)
	if capn64 > uint64(1<<32) || capn != len(rb.buf) {
		return fmt.Errorf("rl: checkpoint replay capacity %d, agent has %d", capn, len(rb.buf))
	}
	if rb.next, err = r.Int(); err != nil {
		return err
	}
	if rb.full, err = r.Bool(); err != nil {
		return err
	}
	if rb.next < 0 || rb.next >= capn && capn > 0 {
		return fmt.Errorf("rl: replay ring position %d of %d", rb.next, capn)
	}
	n, err := r.Count(4)
	if err != nil {
		return err
	}
	want := rb.next
	if rb.full {
		want = capn
	}
	if n != want {
		return fmt.Errorf("rl: replay holds %d experiences, ring state implies %d", n, want)
	}
	for i := range rb.buf {
		rb.buf[i] = Experience{}
	}
	for i := 0; i < n; i++ {
		var e Experience
		if e.State, err = restoreVec(r); err != nil {
			return err
		}
		if e.Action, err = r.Int(); err != nil {
			return err
		}
		if e.Reward, err = r.F64(); err != nil {
			return err
		}
		if e.Next, err = restoreVec(r); err != nil {
			return err
		}
		rb.buf[i] = e
	}
	return nil
}

// Snapshot writes the agent's full learning state: both networks, the
// replay buffer, the exploration RNG, and the iteration counters.
func (d *DQN) Snapshot(w *snap.Writer) {
	d.Prediction.Snapshot(w)
	d.target.Snapshot(w)
	d.Replay.Snapshot(w)
	w.Mark(snap.PartKey(partRLAgentTail, 0))
	d.rng.Snapshot(w)
	w.Int(d.iterations)
	w.I64(d.Inferences)
}

// Restore overlays a state written by Snapshot onto an agent constructed
// with the same configuration.
func (d *DQN) Restore(r *snap.Reader) error {
	pred, err := RestoreNet(r)
	if err != nil {
		return err
	}
	if !sameSizes(pred.Sizes, d.Prediction.Sizes) {
		return fmt.Errorf("rl: checkpoint network sizes %v, agent has %v", pred.Sizes, d.Prediction.Sizes)
	}
	target, err := RestoreNet(r)
	if err != nil {
		return err
	}
	if !sameSizes(target.Sizes, d.Prediction.Sizes) {
		return fmt.Errorf("rl: checkpoint target sizes %v, agent has %v", target.Sizes, d.Prediction.Sizes)
	}
	if err := d.Replay.Restore(r); err != nil {
		return err
	}
	if err := d.rng.Restore(r); err != nil {
		return err
	}
	if d.iterations, err = r.Int(); err != nil {
		return err
	}
	if d.Inferences, err = r.I64(); err != nil {
		return err
	}
	d.Prediction = pred
	d.target = target
	return nil
}

func sameSizes(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Snapshot writes the table's learned values and exploration RNG; keys are
// sorted so the encoding is canonical.
func (t *QTable) Snapshot(w *snap.Writer) {
	keys := make([]string, 0, len(t.q))
	for k := range t.q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		h := uint64(1469598103934665603)
		for i := 0; i < len(k); i++ {
			h ^= uint64(k[i])
			h *= 1099511628211
		}
		w.Mark(snap.PartKey(partRLQRow, h))
		w.String(k)
		w.F64s(t.q[k])
	}
	w.Mark(snap.PartKey(partRLAgentTail, 1))
	t.rng.Snapshot(w)
}

// Restore reads a table written by Snapshot.
func (t *QTable) Restore(r *snap.Reader) error {
	n, err := r.Count(2)
	if err != nil {
		return err
	}
	q := make(map[string][]float64, n)
	for i := 0; i < n; i++ {
		k, err := r.String()
		if err != nil {
			return err
		}
		row, err := r.F64s()
		if err != nil {
			return err
		}
		if len(row) != NumActions {
			return fmt.Errorf("rl: Q row %q has %d actions, want %d", k, len(row), NumActions)
		}
		if _, dup := q[k]; dup {
			return fmt.Errorf("rl: duplicate Q row %q", k)
		}
		q[k] = row
	}
	if err := t.rng.Restore(r); err != nil {
		return err
	}
	t.q = q
	return nil
}
