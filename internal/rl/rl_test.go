package rl

import (
	"encoding/json"
	"math"
	"testing"

	"adaptnoc/internal/sim"
	"adaptnoc/internal/topology"
)

func TestNetForwardShape(t *testing.T) {
	rng := sim.NewRNG(1)
	n := NewNet([]int{StateSize, 15, 15, NumActions}, rng)
	out := n.Forward(make([]float64, StateSize))
	if len(out) != NumActions {
		t.Fatalf("output size %d, want %d", len(out), NumActions)
	}
}

func TestNetLearnsLinearTarget(t *testing.T) {
	// Supervised sanity check: the net should fit Q(x)[a] = 2*x[a] on
	// random inputs via TrainStep.
	rng := sim.NewRNG(2)
	n := NewNet([]int{4, 16, 4}, rng)
	var lastErr float64
	for iter := 0; iter < 40000; iter++ {
		x := make([]float64, 4)
		for i := range x {
			x[i] = rng.Float64()
		}
		a := rng.Intn(4)
		target := 2 * x[a]
		e := n.TrainStep(x, a, target, 0.01)
		lastErr = math.Abs(e)
	}
	// Evaluate on fresh samples.
	var worst float64
	for i := 0; i < 200; i++ {
		x := make([]float64, 4)
		for j := range x {
			x[j] = rng.Float64()
		}
		out := n.Forward(x)
		for a := 0; a < 4; a++ {
			if d := math.Abs(out[a] - 2*x[a]); d > worst {
				worst = d
			}
		}
	}
	if worst > 0.25 {
		t.Fatalf("net failed to fit linear target: worst error %.3f (last TD %.3f)", worst, lastErr)
	}
}

func TestNetJSONRoundTrip(t *testing.T) {
	rng := sim.NewRNG(3)
	n := NewNet([]int{StateSize, 15, 15, NumActions}, rng)
	b, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	var m Net
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, StateSize)
	for i := range x {
		x[i] = rng.Float64()
	}
	a, bOut := n.Forward(x), m.Forward(x)
	for i := range a {
		if a[i] != bOut[i] {
			t.Fatalf("round-trip output mismatch at %d: %v vs %v", i, a[i], bOut[i])
		}
	}
}

func TestNetJSONRejectsMalformed(t *testing.T) {
	var m Net
	if err := json.Unmarshal([]byte(`{"sizes":[2,3],"weights":[[1,2,3]],"biases":[[0,0,0]]}`), &m); err == nil {
		t.Fatal("accepted weight matrix with wrong shape")
	}
}

func TestReplayBufferRing(t *testing.T) {
	rb := NewReplayBuffer(4)
	for i := 0; i < 6; i++ {
		rb.Add(Experience{Action: i})
	}
	if rb.Len() != 4 {
		t.Fatalf("Len = %d, want 4", rb.Len())
	}
	rng := sim.NewRNG(4)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[rb.Sample(rng).Action] = true
	}
	for a := 2; a <= 5; a++ {
		if !seen[a] {
			t.Fatalf("action %d never sampled", a)
		}
	}
	if seen[0] || seen[1] {
		t.Fatal("evicted experiences still sampled")
	}
}

// toyEnv is a deterministic 2-feature MDP where action quality depends on
// the first feature: states with v<0.5 reward action 0, others action 2.
type toyEnv struct {
	rng *sim.RNG
}

func (e *toyEnv) state() []float64 {
	s := make([]float64, StateSize)
	s[0] = e.rng.Float64()
	return s
}

func (e *toyEnv) reward(s []float64, a int) float64 {
	want := 0
	if s[0] >= 0.5 {
		want = 2
	}
	if a == want {
		return 1
	}
	return -1
}

func TestDQNLearnsToyPolicy(t *testing.T) {
	rng := sim.NewRNG(5)
	cfg := DefaultDQNConfig()
	cfg.LearningRate = 5e-3 // the toy problem tolerates a fast rate
	d := NewDQN(cfg, rng)
	env := &toyEnv{rng: sim.NewRNG(6)}

	for iter := 0; iter < 4000; iter++ {
		s := env.state()
		a := d.Select(s)
		r := env.reward(s, a)
		next := env.state()
		d.Observe(Experience{State: s, Action: a, Reward: r, Next: next})
		d.TrainIteration()
	}
	correct := 0
	trials := 500
	for i := 0; i < trials; i++ {
		s := env.state()
		a := d.Greedy(s)
		want := 0
		if s[0] >= 0.5 {
			want = 2
		}
		if a == want {
			correct++
		}
	}
	if frac := float64(correct) / float64(trials); frac < 0.9 {
		t.Fatalf("DQN greedy accuracy %.2f, want >= 0.9", frac)
	}
	if d.Inferences == 0 {
		t.Fatal("no inferences counted")
	}
}

func TestDQNTargetSyncReducesHeldOutError(t *testing.T) {
	rng := sim.NewRNG(7)
	cfg := DefaultDQNConfig()
	cfg.LearningRate = 5e-3
	d := NewDQN(cfg, rng)
	env := &toyEnv{rng: sim.NewRNG(8)}

	heldOut := make([]Experience, 100)
	for i := range heldOut {
		s := env.state()
		a := i % NumActions
		heldOut[i] = Experience{State: s, Action: a, Reward: env.reward(s, a), Next: env.state()}
	}
	meanAbs := func() float64 {
		var s float64
		for _, e := range heldOut {
			s += math.Abs(d.TDError(e))
		}
		return s / float64(len(heldOut))
	}
	before := meanAbs()
	for iter := 0; iter < 3000; iter++ {
		s := env.state()
		a := d.Select(s)
		d.Observe(Experience{State: s, Action: a, Reward: env.reward(s, a), Next: env.state()})
		d.TrainIteration()
	}
	after := meanAbs()
	if after >= before {
		t.Fatalf("held-out TD error did not fall: before %.3f after %.3f", before, after)
	}
}

func TestQTableConvergesOnDeterministicMDP(t *testing.T) {
	rng := sim.NewRNG(9)
	q := NewQTable(rng)
	q.Epsilon = 0.2
	env := &toyEnv{rng: sim.NewRNG(10)}
	for i := 0; i < 20000; i++ {
		s := env.state()
		a := q.Select(s)
		q.Update(s, a, env.reward(s, a), nil)
	}
	q.Epsilon = 0
	correct, trials := 0, 500
	for i := 0; i < trials; i++ {
		s := env.state()
		want := 0
		if s[0] >= 0.5 {
			want = 2
		}
		if q.Select(s) == want {
			correct++
		}
	}
	if frac := float64(correct) / float64(trials); frac < 0.95 {
		t.Fatalf("Q-table accuracy %.2f, want >= 0.95", frac)
	}
	if q.Entries() == 0 {
		t.Fatal("empty Q-table after training")
	}
}

func TestNormalizeClampsAndOrders(t *testing.T) {
	s := DefaultScales()
	r := RawState{
		L1DMisses: 1e9, L1IMisses: -5, L2Misses: 100,
		RetiredInstr: 200000, CoherencePackets: 15000, DataPackets: 30000,
		RouterBufUtil: 0.5, InjBufUtil: 2.0,
		RouterThroughput: 0.25, Current: topology.Torus, Cols: 4, Rows: 8,
	}
	v := s.Normalize(r)
	if len(v) != StateSize {
		t.Fatalf("state size %d, want %d", len(v), StateSize)
	}
	for i, x := range v {
		if x < 0 || x > 1 {
			t.Fatalf("feature %d = %v out of [0,1]", i, x)
		}
	}
	if v[0] != 1 || v[1] != 0 {
		t.Fatalf("clamping broken: %v %v", v[0], v[1])
	}
	if v[11] != 1 || v[10] != 0.5 {
		t.Fatalf("dims wrong: cols=%v rows=%v", v[10], v[11])
	}
}

func TestRewardSign(t *testing.T) {
	// Higher power or latency must give a lower (more negative) reward.
	base := Reward(10, 20, 5)
	if Reward(20, 20, 5) >= base {
		t.Fatal("reward not decreasing in power")
	}
	if Reward(10, 30, 5) >= base {
		t.Fatal("reward not decreasing in network latency")
	}
	if Reward(10, 20, 15) >= base {
		t.Fatal("reward not decreasing in queuing latency")
	}
}

func TestNetCloneAndCopyFrom(t *testing.T) {
	rng := sim.NewRNG(41)
	a := NewNet([]int{4, 8, 4}, rng)
	b := a.Clone()
	x := []float64{0.1, 0.2, 0.3, 0.4}
	// Training a must not affect b.
	for i := 0; i < 100; i++ {
		a.TrainStep(x, 0, -1, 0.01)
	}
	ao, bo := a.Forward(x), b.Forward(x)
	if ao[0] == bo[0] {
		t.Fatal("clone aliases the original")
	}
	b.CopyFrom(a)
	bo = b.Forward(x)
	for i := range ao {
		if ao[i] != bo[i] {
			t.Fatal("CopyFrom did not synchronize")
		}
	}
}

func TestTrainStepClipsLargeTargets(t *testing.T) {
	rng := sim.NewRNG(43)
	n := NewNet([]int{4, 8, 4}, rng)
	x := []float64{1, 1, 1, 1}
	before := n.Forward(x)[1]
	n.TrainStep(x, 1, -1e9, 0.01)
	after := n.Forward(x)[1]
	// The applied gradient is clipped, so one outlier moves the output by
	// a bounded amount rather than destroying the network.
	if d := before - after; d > 5 || d < 0 {
		t.Fatalf("clipped update moved output by %v", d)
	}
	for _, v := range n.Forward(x) {
		if v != v { // NaN check
			t.Fatal("NaN after outlier update")
		}
	}
}
