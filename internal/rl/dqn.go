package rl

import (
	"adaptnoc/internal/sim"
)

// Experience is one (s, a, r, s') transition in the replay buffer.
type Experience struct {
	State  []float64
	Action int
	Reward float64
	Next   []float64
}

// ReplayBuffer is the 1000-entry experience store of Section III-E,
// overwritten ring-style.
type ReplayBuffer struct {
	buf  []Experience
	next int
	full bool
}

// NewReplayBuffer creates a buffer with the given capacity.
func NewReplayBuffer(capacity int) *ReplayBuffer {
	return &ReplayBuffer{buf: make([]Experience, capacity)}
}

// Add stores one experience, evicting the oldest when full.
func (rb *ReplayBuffer) Add(e Experience) {
	rb.buf[rb.next] = e
	rb.next++
	if rb.next == len(rb.buf) {
		rb.next = 0
		rb.full = true
	}
}

// Len returns the number of stored experiences.
func (rb *ReplayBuffer) Len() int {
	if rb.full {
		return len(rb.buf)
	}
	return rb.next
}

// Sample returns a uniformly random stored experience.
func (rb *ReplayBuffer) Sample(rng *sim.RNG) Experience {
	return rb.buf[rng.Intn(rb.Len())]
}

// DQNConfig carries the Section III-E / IV-A hyper-parameters.
type DQNConfig struct {
	Hidden       []int   `json:"hidden"`       // hidden layer sizes (paper: 15, 15)
	LearningRate float64 `json:"learningRate"` // neural-network learning rate (paper: 1e-4)
	Gamma        float64 `json:"gamma"`        // discount factor (paper: 0.9)
	Epsilon      float64 `json:"epsilon"`      // exploration rate (paper: 0.05)
	ReplaySize   int     `json:"replaySize"`   // experiences (paper: 1000)
	Minibatch    int     `json:"minibatch"`    // SGD samples per training iteration (paper: 100)
	TargetSync   int     `json:"targetSync"`   // iterations between target-network syncs (paper: 168)
}

// DefaultDQNConfig returns the paper's hyper-parameters.
func DefaultDQNConfig() DQNConfig {
	return DQNConfig{
		Hidden:       []int{15, 15},
		LearningRate: 1e-4,
		Gamma:        0.9,
		Epsilon:      0.05,
		ReplaySize:   1000,
		Minibatch:    100,
		TargetSync:   168,
	}
}

// DQN is the deep Q-network agent: a prediction network that selects
// actions, a target network that stabilizes the bootstrap targets, and an
// experience replay buffer that decorrelates training samples. Training is
// offline (Section III-E); at deployment only the prediction network's
// forward pass runs in the per-subNoC RL controller.
type DQN struct {
	Cfg        DQNConfig
	Prediction *Net
	target     *Net
	Replay     *ReplayBuffer

	rng        *sim.RNG
	iterations int

	// Inferences counts forward passes for the power model.
	Inferences int64

	// gen counts mutations of the state Snapshot serializes, for
	// delta-checkpoint skipping of untrained, unqueried agents.
	gen uint64
}

// Gen returns the agent's snapshot-state generation counter.
func (d *DQN) Gen() uint64 { return d.gen }

// NewDQN creates an agent with freshly initialized networks.
func NewDQN(cfg DQNConfig, rng *sim.RNG) *DQN {
	sizes := append([]int{StateSize}, cfg.Hidden...)
	sizes = append(sizes, NumActions)
	pred := NewNet(sizes, rng)
	return &DQN{
		Cfg:        cfg,
		Prediction: pred,
		target:     pred.Clone(),
		Replay:     NewReplayBuffer(cfg.ReplaySize),
		rng:        rng,
	}
}

// NewDQNFromNet wraps a pre-trained prediction network for deployment.
func NewDQNFromNet(cfg DQNConfig, net *Net, rng *sim.RNG) *DQN {
	return &DQN{
		Cfg:        cfg,
		Prediction: net,
		target:     net.Clone(),
		Replay:     NewReplayBuffer(cfg.ReplaySize),
		rng:        rng,
	}
}

// Select returns the ε-greedy action for a normalized state.
func (d *DQN) Select(state []float64) int {
	d.gen++
	d.Inferences++
	if d.rng.Float64() < d.Cfg.Epsilon {
		return d.rng.Intn(NumActions)
	}
	return Argmax(d.Prediction.Forward(state))
}

// Greedy returns the pure-exploitation action.
func (d *DQN) Greedy(state []float64) int {
	d.gen++
	d.Inferences++
	return Argmax(d.Prediction.Forward(state))
}

// Observe stores a transition in the replay buffer.
func (d *DQN) Observe(e Experience) {
	d.gen++
	d.Replay.Add(e)
}

// TrainIteration runs one minibatch of SGD against targets from the target
// network and syncs the target network on schedule. It returns the mean
// absolute TD error of the minibatch. No-op (returns 0) until the replay
// buffer holds a minibatch.
func (d *DQN) TrainIteration() float64 {
	if d.Replay.Len() < d.Cfg.Minibatch {
		return 0
	}
	d.gen++
	var absErr float64
	for i := 0; i < d.Cfg.Minibatch; i++ {
		e := d.Replay.Sample(d.rng)
		target := e.Reward
		if e.Next != nil {
			q := d.target.Forward(e.Next)
			target += d.Cfg.Gamma * q[Argmax(q)]
		}
		err := d.Prediction.TrainStep(e.State, e.Action, target, d.Cfg.LearningRate)
		if err < 0 {
			err = -err
		}
		absErr += err
	}
	d.iterations++
	if d.iterations%d.Cfg.TargetSync == 0 {
		d.target.CopyFrom(d.Prediction)
	}
	return absErr / float64(d.Cfg.Minibatch)
}

// TDError evaluates the TD error of one transition without training; used
// to measure held-out convergence.
func (d *DQN) TDError(e Experience) float64 {
	target := e.Reward
	if e.Next != nil {
		q := d.target.Forward(e.Next)
		target += d.Cfg.Gamma * q[Argmax(q)]
	}
	return target - d.Prediction.Forward(e.State)[e.Action]
}
