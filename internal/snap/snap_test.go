package snap

import (
	"math"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var w Writer
	Header(&w)
	w.U64(0xdeadbeefcafef00d)
	w.I64(-42)
	w.U32(7)
	w.Uvarint(300)
	w.Varint(-300)
	w.Int(123456)
	w.Bool(true)
	w.Bool(false)
	w.F64(math.Pi)
	w.F64(math.Copysign(0, -1))
	w.Bytes0([]byte("hello"))
	w.String("world")
	w.F64s([]float64{1.5, -2.5})
	w.I64s([]int64{-1, 0, 1})

	r := NewReader(w.Bytes())
	if err := CheckHeader(r); err != nil {
		t.Fatal(err)
	}
	check := func(name string, got, want any, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Fatalf("%s: got %v want %v", name, got, want)
		}
	}
	u, err := r.U64()
	check("u64", u, uint64(0xdeadbeefcafef00d), err)
	i, err := r.I64()
	check("i64", i, int64(-42), err)
	u32, err := r.U32()
	check("u32", u32, uint32(7), err)
	uv, err := r.Uvarint()
	check("uvarint", uv, uint64(300), err)
	sv, err := r.Varint()
	check("varint", sv, int64(-300), err)
	n, err := r.Int()
	check("int", n, 123456, err)
	b1, err := r.Bool()
	check("bool t", b1, true, err)
	b2, err := r.Bool()
	check("bool f", b2, false, err)
	f, err := r.F64()
	check("f64", f, math.Pi, err)
	nz, err := r.F64()
	if err != nil || math.Signbit(nz) != true || nz != 0 {
		t.Fatalf("negative zero not preserved: %v %v", nz, err)
	}
	bs, err := r.Bytes0()
	check("bytes", string(bs), "hello", err)
	s, err := r.String()
	check("string", s, "world", err)
	fs, err := r.F64s()
	if err != nil || len(fs) != 2 || fs[0] != 1.5 || fs[1] != -2.5 {
		t.Fatalf("f64s: %v %v", fs, err)
	}
	is, err := r.I64s()
	if err != nil || len(is) != 3 || is[0] != -1 || is[2] != 1 {
		t.Fatalf("i64s: %v %v", is, err)
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestSections(t *testing.T) {
	var body Writer
	body.I64(99)
	var w Writer
	w.Section("alpha", body.Bytes())
	w.Section("beta", nil)

	r := NewReader(w.Bytes())
	sr, err := r.Section("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if v, err := sr.I64(); err != nil || v != 99 {
		t.Fatalf("section body: %v %v", v, err)
	}
	if err := sr.Done(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Section("gamma"); err == nil {
		t.Fatal("wrong section name accepted")
	}
}

func TestTruncationAndBombs(t *testing.T) {
	// Every primitive read from an empty or short buffer must error.
	r := NewReader(nil)
	if _, err := r.U64(); err == nil {
		t.Fatal("u64 from empty input")
	}
	if _, err := NewReader([]byte{1}).U32(); err == nil {
		t.Fatal("u32 from 1 byte")
	}
	if _, err := NewReader([]byte{2}).Bool(); err == nil {
		t.Fatal("bool byte 2 accepted")
	}

	// A huge declared length must be rejected before allocation.
	var w Writer
	w.Uvarint(1 << 40)
	if _, err := NewReader(w.Bytes()).Bytes0(); err == nil {
		t.Fatal("oversized byte string accepted")
	}
	if _, err := NewReader(w.Bytes()).F64s(); err == nil {
		t.Fatal("oversized f64 slice accepted")
	}
	if _, err := NewReader(w.Bytes()).Count(1); err == nil {
		t.Fatal("oversized count accepted")
	}

	// Wrong-version and bad-magic headers error with position context.
	var h Writer
	Header(&h)
	blob := append([]byte(nil), h.Bytes()...)
	blob[len(blob)-1] = 0xff // mangle version
	err := CheckHeader(NewReader(blob))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version: %v", err)
	}
	blob[0] = 'X'
	if err := CheckHeader(NewReader(blob)); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := CheckHeader(NewReader([]byte("ADN"))); err == nil {
		t.Fatal("truncated magic accepted")
	}
}

func TestDoneCatchesTrailing(t *testing.T) {
	var w Writer
	w.Bool(true)
	r := NewReader(w.Bytes())
	if err := r.Done(); err == nil {
		t.Fatal("trailing byte not caught")
	}
}
