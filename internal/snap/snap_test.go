package snap

import (
	"math"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var w Writer
	w.U64(0xdeadbeefcafef00d)
	w.I64(-42)
	w.U32(7)
	w.Uvarint(300)
	w.Varint(-300)
	w.Int(123456)
	w.Bool(true)
	w.Bool(false)
	w.F64(math.Pi)
	w.F64(math.Copysign(0, -1))
	w.Bytes0([]byte("hello"))
	w.String("world")
	w.F64s([]float64{1.5, -2.5})
	w.I64s([]int64{-1, 0, 1})

	r, err := Open(Seal(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, got, want any, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Fatalf("%s: got %v want %v", name, got, want)
		}
	}
	u, err := r.U64()
	check("u64", u, uint64(0xdeadbeefcafef00d), err)
	i, err := r.I64()
	check("i64", i, int64(-42), err)
	u32, err := r.U32()
	check("u32", u32, uint32(7), err)
	uv, err := r.Uvarint()
	check("uvarint", uv, uint64(300), err)
	sv, err := r.Varint()
	check("varint", sv, int64(-300), err)
	n, err := r.Int()
	check("int", n, 123456, err)
	b1, err := r.Bool()
	check("bool t", b1, true, err)
	b2, err := r.Bool()
	check("bool f", b2, false, err)
	f, err := r.F64()
	check("f64", f, math.Pi, err)
	nz, err := r.F64()
	if err != nil || math.Signbit(nz) != true || nz != 0 {
		t.Fatalf("negative zero not preserved: %v %v", nz, err)
	}
	bs, err := r.Bytes0()
	check("bytes", string(bs), "hello", err)
	s, err := r.String()
	check("string", s, "world", err)
	fs, err := r.F64s()
	if err != nil || len(fs) != 2 || fs[0] != 1.5 || fs[1] != -2.5 {
		t.Fatalf("f64s: %v %v", fs, err)
	}
	is, err := r.I64s()
	if err != nil || len(is) != 3 || is[0] != -1 || is[2] != 1 {
		t.Fatalf("i64s: %v %v", is, err)
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestSections(t *testing.T) {
	var body Writer
	body.I64(99)
	var w Writer
	w.Section("alpha", body.Bytes())
	w.Section("beta", nil)

	r := NewReader(w.Bytes())
	sr, err := r.Section("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if v, err := sr.I64(); err != nil || v != 99 {
		t.Fatalf("section body: %v %v", v, err)
	}
	if err := sr.Done(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Section("gamma"); err == nil {
		t.Fatal("wrong section name accepted")
	}
}

func TestTruncationAndBombs(t *testing.T) {
	// Every primitive read from an empty or short buffer must error.
	r := NewReader(nil)
	if _, err := r.U64(); err == nil {
		t.Fatal("u64 from empty input")
	}
	if _, err := NewReader([]byte{1}).U32(); err == nil {
		t.Fatal("u32 from 1 byte")
	}
	if _, err := NewReader([]byte{2}).Bool(); err == nil {
		t.Fatal("bool byte 2 accepted")
	}

	// A huge declared length must be rejected before allocation.
	var w Writer
	w.Uvarint(1 << 40)
	if _, err := NewReader(w.Bytes()).Bytes0(); err == nil {
		t.Fatal("oversized byte string accepted")
	}
	if _, err := NewReader(w.Bytes()).F64s(); err == nil {
		t.Fatal("oversized f64 slice accepted")
	}
	if _, err := NewReader(w.Bytes()).Count(1); err == nil {
		t.Fatal("oversized count accepted")
	}

	// Wrong-version and bad-magic headers error with position context.
	blob := Seal(nil)
	blob[len(Magic)] = 0xff // mangle version
	_, err := Open(blob)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version: %v", err)
	}
	blob[0] = 'X'
	if _, err := Open(blob); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Open([]byte("ADN")); err == nil {
		t.Fatal("truncated magic accepted")
	}

	// A current-version frame whose body is not valid gzip is corrupt.
	bad := Seal(nil)[:len(Magic)+4]
	bad = append(bad, "not gzip at all"...)
	if _, err := Open(bad); err == nil {
		t.Fatal("non-gzip body accepted")
	}
}

// TestSealDeterministic pins the content-addressing contract: sealing the
// same body twice yields identical bytes.
func TestSealDeterministic(t *testing.T) {
	body := []byte("the same body, sealed twice")
	a, b := Seal(body), Seal(body)
	if string(a) != string(b) {
		t.Fatal("Seal is not deterministic")
	}
}

// TestOpenAcceptsV1 proves the decoder still reads the uncompressed v1
// framing older builds wrote: magic, version word 1, raw body.
func TestOpenAcceptsV1(t *testing.T) {
	var w Writer
	w.buf = append(w.buf, Magic...)
	w.U32(VersionRaw)
	w.I64(-7)
	w.String("legacy")
	r, err := Open(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if v, err := r.I64(); err != nil || v != -7 {
		t.Fatalf("v1 body i64: %v %v", v, err)
	}
	if s, err := r.String(); err != nil || s != "legacy" {
		t.Fatalf("v1 body string: %q %v", s, err)
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
}

// TestSealOpenRoundTrip checks compression is actually happening and
// transparent: a repetitive body shrinks on the wire and round-trips.
func TestSealOpenRoundTrip(t *testing.T) {
	body := make([]byte, 1<<16)
	for i := range body {
		body[i] = byte(i % 7)
	}
	blob := Seal(body)
	if len(blob) >= len(body) {
		t.Fatalf("repetitive body did not compress: %d >= %d", len(blob), len(body))
	}
	got, err := OpenBody(blob)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(body) {
		t.Fatal("body did not round-trip")
	}
}

func TestDoneCatchesTrailing(t *testing.T) {
	var w Writer
	w.Bool(true)
	r := NewReader(w.Bytes())
	if err := r.Done(); err == nil {
		t.Fatal("trailing byte not caught")
	}
}
