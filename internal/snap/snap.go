// Package snap is the binary substrate of the checkpoint format: a
// length-aware little-endian writer/reader pair that every layer's
// Snapshot/Restore methods build on.
//
// The format is deliberately primitive — fixed-width integers, varint
// lengths, length-prefixed byte strings, and named length-prefixed
// sections — because the goal is byte-for-byte reproducibility, not
// schema evolution: a checkpoint is only ever read back by the exact
// simulator version that wrote it (the header pins a format version and
// readers reject anything else).
//
// The Reader is written to be safe on adversarial input: every length is
// bounds-checked against the bytes actually remaining before any
// allocation happens, so a truncated or corrupted blob produces an error,
// never a panic or a multi-gigabyte allocation. The checkpoint fuzz
// target (FuzzRestore) leans on this.
package snap

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Magic and Version identify a checkpoint blob. Version bumps on any
// format change. VersionRaw (1) framed the body uncompressed; Version (2)
// gzip-compresses it. Readers accept both — a daemon upgraded in place
// keeps restoring the blobs it wrote before the bump — but writers only
// emit the current version.
const (
	Magic      = "ADNOCKPT"
	VersionRaw = 1
	Version    = 2
)

// maxBodyBytes caps the decompressed size Open will produce (256 MiB —
// far above any real checkpoint, far below an allocation bomb). A tiny
// adversarial gzip stream can claim gigabytes; the cap keeps the Reader's
// no-allocation-bomb contract intact for compressed blobs.
const maxBodyBytes = 1 << 28

// ErrCorrupt is the error class for malformed input. It carries position
// context for debugging but is otherwise opaque.
type ErrCorrupt struct {
	Off int
	Msg string
}

func (e *ErrCorrupt) Error() string {
	return fmt.Sprintf("snap: corrupt input at offset %d: %s", e.Off, e.Msg)
}

// Writer appends primitive values to a growing buffer. The zero value is
// ready to use.
type Writer struct {
	buf   []byte
	parts []Part
}

// Part is a delta-alignment mark: a stable key recorded at a byte offset.
// Layers call Mark at the start of each self-contained component record
// (a packet, a router, a transaction) so the delta encoder can line up
// the same component across two snapshots even when unrelated components
// were inserted or removed between them. Parts are an in-memory aid for
// EncodeDelta only — they are never serialized into a blob, so marking is
// free to evolve without a format change.
type Part struct {
	Key uint64
	Off int
}

// PartKey builds a Part key from a component kind and a stable identity.
// The kind occupies the top byte so identities from different component
// types inside one section can never collide.
func PartKey(kind uint8, id uint64) uint64 { return uint64(kind)<<56 | id&(1<<56-1) }

// Mark records a part boundary at the current write position.
func (w *Writer) Mark(key uint64) { w.parts = append(w.parts, Part{Key: key, Off: len(w.buf)}) }

// Parts returns the marks recorded so far, in write order.
func (w *Writer) Parts() []Part { return w.parts }

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U64 appends a fixed-width little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends a fixed-width int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// U32 appends a fixed-width uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// Uvarint appends a varint-encoded length or count.
func (w *Writer) Uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Int appends an int as a varint-encoded value (two's-complement zigzag).
func (w *Writer) Int(v int) { w.buf = binary.AppendVarint(w.buf, int64(v)) }

// Varint appends a zigzag varint int64.
func (w *Writer) Varint(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// Bool appends a single 0/1 byte.
func (w *Writer) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.buf = append(w.buf, b)
}

// F64 appends a float64 by its IEEE-754 bit pattern, preserving the exact
// value including negative zero and NaN payloads.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Raw appends bytes verbatim, with no framing. It exists for encoders that
// cache a component's previous serialization and splice it back in when
// the component is known unchanged — the bytes must be exactly what the
// ordinary encoding calls would have produced.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Reset empties the writer, keeping its backing storage for reuse.
func (w *Writer) Reset() { w.buf, w.parts = w.buf[:0], w.parts[:0] }

// ResetWith empties the writer and adopts the given slices' backing
// storage. Periodic snapshot producers hand a retired generation's buffers
// back this way so a steady-state walk allocates nothing; the caller must
// no longer read through the donated slices.
func (w *Writer) ResetWith(buf []byte, parts []Part) { w.buf, w.parts = buf[:0], parts[:0] }

// Bytes0 appends a length-prefixed byte string.
func (w *Writer) Bytes0(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// F64s appends a length-prefixed []float64.
func (w *Writer) F64s(xs []float64) {
	w.Uvarint(uint64(len(xs)))
	for _, x := range xs {
		w.F64(x)
	}
}

// I64s appends a length-prefixed []int64.
func (w *Writer) I64s(xs []int64) {
	w.Uvarint(uint64(len(xs)))
	for _, x := range xs {
		w.I64(x)
	}
}

// Section appends a named, length-prefixed sub-blob. Sections give the
// top-level checkpoint its shape and let a reader verify it is consuming
// the layer it expects.
func (w *Writer) Section(name string, body []byte) {
	w.String(name)
	w.Bytes0(body)
}

// Reader consumes a buffer written by Writer. All methods return an error
// instead of panicking on truncated or malformed input, and no method
// allocates more memory than the input could legitimately describe.
type Reader struct {
	buf []byte
	off int
}

// NewReader wraps data for reading. The Reader does not copy data;
// returned byte slices alias it.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.buf) - r.off }

// Offset returns the current read position.
func (r *Reader) Offset() int { return r.off }

func (r *Reader) corrupt(msg string) error { return &ErrCorrupt{Off: r.off, Msg: msg} }

// U64 reads a fixed-width uint64.
func (r *Reader) U64() (uint64, error) {
	if r.Len() < 8 {
		return 0, r.corrupt("truncated u64")
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

// I64 reads a fixed-width int64.
func (r *Reader) I64() (int64, error) {
	v, err := r.U64()
	return int64(v), err
}

// U32 reads a fixed-width uint32.
func (r *Reader) U32() (uint32, error) {
	if r.Len() < 4 {
		return 0, r.corrupt("truncated u32")
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

// Uvarint reads a varint-encoded unsigned value.
func (r *Reader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, r.corrupt("bad uvarint")
	}
	r.off += n
	return v, nil
}

// Varint reads a zigzag varint int64.
func (r *Reader) Varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, r.corrupt("bad varint")
	}
	r.off += n
	return v, nil
}

// Int reads an int written by Writer.Int.
func (r *Reader) Int() (int, error) {
	v, err := r.Varint()
	return int(v), err
}

// Bool reads a 0/1 byte; any other value is corruption.
func (r *Reader) Bool() (bool, error) {
	if r.Len() < 1 {
		return false, r.corrupt("truncated bool")
	}
	b := r.buf[r.off]
	r.off++
	switch b {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, r.corrupt(fmt.Sprintf("bool byte %#x", b))
}

// F64 reads a float64 bit pattern.
func (r *Reader) F64() (float64, error) {
	v, err := r.U64()
	return math.Float64frombits(v), err
}

// Count reads a varint element count and verifies that at least minBytes
// bytes per element remain, so callers can size slices without an
// allocation bomb. minBytes must be >= 1.
func (r *Reader) Count(minBytes int) (int, error) {
	n, err := r.Uvarint()
	if err != nil {
		return 0, err
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64(r.Len())/uint64(minBytes) {
		return 0, r.corrupt(fmt.Sprintf("count %d exceeds remaining input", n))
	}
	return int(n), nil
}

// Bytes0 reads a length-prefixed byte string, aliasing the input buffer.
func (r *Reader) Bytes0() ([]byte, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Len()) {
		return nil, r.corrupt(fmt.Sprintf("byte string length %d exceeds remaining %d", n, r.Len()))
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

// String reads a length-prefixed string.
func (r *Reader) String() (string, error) {
	b, err := r.Bytes0()
	return string(b), err
}

// F64s reads a length-prefixed []float64.
func (r *Reader) F64s() ([]float64, error) {
	n, err := r.Count(8)
	if err != nil {
		return nil, err
	}
	xs := make([]float64, n)
	for i := range xs {
		if xs[i], err = r.F64(); err != nil {
			return nil, err
		}
	}
	return xs, nil
}

// I64s reads a length-prefixed []int64.
func (r *Reader) I64s() ([]int64, error) {
	n, err := r.Count(8)
	if err != nil {
		return nil, err
	}
	xs := make([]int64, n)
	for i := range xs {
		if xs[i], err = r.I64(); err != nil {
			return nil, err
		}
	}
	return xs, nil
}

// Rest consumes and returns every unread byte, aliasing the input buffer.
// Sections whose body is an opaque blob (the checkpoint's embedded config
// JSON) read it this way.
func (r *Reader) Rest() []byte {
	b := r.buf[r.off:]
	r.off = len(r.buf)
	return b
}

// Section reads a named sub-blob and verifies the name matches. The
// returned Reader covers exactly the section body, so over- or under-reads
// inside one layer cannot silently shift the next layer's decode.
func (r *Reader) Section(name string) (*Reader, error) {
	got, err := r.String()
	if err != nil {
		return nil, err
	}
	if got != name {
		return nil, r.corrupt(fmt.Sprintf("section %q, want %q", got, name))
	}
	body, err := r.Bytes0()
	if err != nil {
		return nil, err
	}
	return NewReader(body), nil
}

// Done verifies the reader consumed its input exactly. Layers call it at
// the end of their section so stray bytes are caught where they occur.
func (r *Reader) Done() error {
	if r.Len() != 0 {
		return r.corrupt(fmt.Sprintf("%d trailing bytes", r.Len()))
	}
	return nil
}

// Seal frames a body as a complete blob: magic, current format version,
// then the gzip-compressed body. Go's gzip output is deterministic for a
// given input (no timestamp: the header's ModTime is zero and the OS byte
// is fixed), so sealing the same body always yields the same bytes —
// checkpoint blobs stay content-addressable.
func Seal(body []byte) []byte {
	var out bytes.Buffer
	out.WriteString(Magic)
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], Version)
	out.Write(ver[:])
	zw := gzip.NewWriter(&out)
	zw.OS = 255 // "unknown", the deterministic choice
	if _, err := zw.Write(body); err != nil {
		panic(fmt.Sprintf("snap: gzip to memory failed: %v", err)) // cannot happen
	}
	if err := zw.Close(); err != nil {
		panic(fmt.Sprintf("snap: gzip to memory failed: %v", err))
	}
	return out.Bytes()
}

// OpenBody verifies a blob's magic and version and returns the decoded
// body bytes: decompressed for current-version blobs, aliased directly for
// VersionRaw ones (the uncompressed format older builds wrote). Unknown
// versions and malformed compression are corruption errors, and the
// decompressed size is capped so a malicious blob cannot demand an
// arbitrary allocation.
func OpenBody(blob []byte) ([]byte, error) {
	r := NewReader(blob)
	if r.Len() < len(Magic) {
		return nil, r.corrupt("truncated magic")
	}
	if string(r.buf[r.off:r.off+len(Magic)]) != Magic {
		return nil, r.corrupt("bad magic")
	}
	r.off += len(Magic)
	v, err := r.U32()
	if err != nil {
		return nil, err
	}
	switch v {
	case VersionRaw:
		return r.Rest(), nil
	case Version:
		zr, err := gzip.NewReader(bytes.NewReader(r.Rest()))
		if err != nil {
			return nil, &ErrCorrupt{Off: r.off, Msg: fmt.Sprintf("bad gzip body: %v", err)}
		}
		body, err := io.ReadAll(io.LimitReader(zr, maxBodyBytes+1))
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, &ErrCorrupt{Off: r.off, Msg: fmt.Sprintf("bad gzip body: %v", err)}
		}
		if len(body) > maxBodyBytes {
			return nil, &ErrCorrupt{Off: r.off, Msg: fmt.Sprintf("body exceeds %d bytes", maxBodyBytes)}
		}
		return body, nil
	default:
		return nil, r.corrupt(fmt.Sprintf("format version %d, want %d or %d", v, VersionRaw, Version))
	}
}

// Open is OpenBody returning a Reader over the body.
func Open(blob []byte) (*Reader, error) {
	body, err := OpenBody(blob)
	if err != nil {
		return nil, err
	}
	return NewReader(body), nil
}
