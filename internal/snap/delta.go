package snap

// Delta frames: version 3 of the checkpoint format encodes a snapshot as
// an edit script against a referenced base snapshot instead of repeating
// every byte. A frame is self-validating — it names the base it applies
// to and the result it must produce by content hash, so applying a frame
// to the wrong base (or a frame corrupted in flight) fails loudly instead
// of silently reconstructing garbage.
//
// Frame layout (uncompressed header, compressed payload):
//
//	"ADNOCDLT" | u32 version=3 | baseHash[32] | newHash[32] | gzip(payload)
//
// The hashes are SHA-256 over the *uncompressed body* of the respective
// full blobs (the section stream Seal would compress), not over the sealed
// bytes. Hashing bodies keeps the encoder off the expensive gzip path —
// it never has to seal a full blob just to learn its identity — while
// ApplyDelta re-seals deterministically, so base ⊕ delta reproduces the
// exact sealed v2 blob a full Checkpoint would have written.
//
// The payload replays the new body's section stream:
//
//	uvarint nSections, then per section:
//	  name (length-prefixed string)
//	  uvarint newLen (reconstructed section body length)
//	  ops until newLen bytes are produced:
//	    0 COPY baseOff n       — copy n bytes from the base section body
//	    1 XOR  baseOff n data  — base[baseOff:+n] XOR data (n bytes)
//	    2 LIT  n data          — n literal bytes
//
// Offsets are relative to the base *section* body of the same name. XOR
// exists because most component records change only a few low-order
// counter bytes between snapshots: the XOR stream is almost all zeros and
// the payload compression crushes it, where a literal would repay the
// full record.

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
)

// DeltaMagic and DeltaVersion identify a delta frame. A delta frame is
// never accepted where a full blob is required and vice versa — the magics
// differ — but both share the version counter's meaning: any format change
// bumps it.
const (
	DeltaMagic   = "ADNOCDLT"
	DeltaVersion = 3
)

// deltaHeaderLen is the fixed frame prefix: magic, version, two hashes.
const deltaHeaderLen = len(DeltaMagic) + 4 + 32 + 32

// Delta op codes.
const (
	opCopy = 0
	opXOR  = 1
	opLit  = 2
)

// BodyHash is the content identity used by delta frames: SHA-256 over a
// full blob's uncompressed body.
func BodyHash(body []byte) [32]byte { return sha256.Sum256(body) }

// IsDelta reports whether blob starts with the delta frame magic.
func IsDelta(blob []byte) bool {
	return len(blob) >= len(DeltaMagic) && string(blob[:len(DeltaMagic)]) == DeltaMagic
}

// DeltaHashes reads a frame's base and result body hashes without
// decompressing the payload, so a consumer can route or chain frames
// cheaply (the hashes sit in the uncompressed header).
func DeltaHashes(frame []byte) (base, result [32]byte, err error) {
	if !IsDelta(frame) {
		return base, result, &ErrCorrupt{Off: 0, Msg: "bad delta magic"}
	}
	if len(frame) < deltaHeaderLen {
		return base, result, &ErrCorrupt{Off: len(frame), Msg: "truncated delta header"}
	}
	v := binary.LittleEndian.Uint32(frame[len(DeltaMagic):])
	if v != DeltaVersion {
		return base, result, &ErrCorrupt{Off: len(DeltaMagic), Msg: fmt.Sprintf("delta version %d, want %d", v, DeltaVersion)}
	}
	copy(base[:], frame[len(DeltaMagic)+4:])
	copy(result[:], frame[len(DeltaMagic)+4+32:])
	return base, result, nil
}

// DeltaSection is one named section of a snapshot body, with the optional
// part marks its Writer recorded. Sections split from a raw body (no
// Writer in sight) have nil Parts; the encoder then falls back to
// whole-section compare, which still yields COPY for unchanged sections.
type DeltaSection struct {
	Name  string
	Body  []byte
	Parts []Part
}

// SplitSections parses a full blob body into its section list. Returned
// bodies alias the input.
func SplitSections(body []byte) ([]DeltaSection, error) {
	r := NewReader(body)
	var secs []DeltaSection
	for r.Len() > 0 {
		name, err := r.String()
		if err != nil {
			return nil, err
		}
		b, err := r.Bytes0()
		if err != nil {
			return nil, err
		}
		secs = append(secs, DeltaSection{Name: name, Body: b})
	}
	return secs, nil
}

// JoinSections reassembles a body from a section list, inverse of
// SplitSections.
func JoinSections(secs []DeltaSection) []byte { return JoinSectionsInto(nil, secs) }

// JoinSectionsInto is JoinSections writing over dst's backing storage. A
// periodic producer joins a multi-hundred-kilobyte body every interval and
// discards it right after hashing; reusing the previous interval's buffer
// keeps that churn out of the allocator.
func JoinSectionsInto(dst []byte, secs []DeltaSection) []byte {
	var w Writer
	w.ResetWith(dst, nil)
	for _, s := range secs {
		w.Section(s.Name, s.Body)
	}
	return w.Bytes()
}

// EncodeDelta builds a frame that transforms the base section list into
// the new one. baseHash and newHash are the BodyHash of the respective
// joined bodies; the encoder trusts the caller for the base (it never sees
// the base blob) and stamps both into the frame header for apply-time
// validation.
func EncodeDelta(baseSecs, newSecs []DeltaSection, baseHash, newHash [32]byte) []byte {
	var e DeltaEncoder
	return e.Encode(baseSecs, newSecs, baseHash, newHash)
}

// DeltaEncoder is EncodeDelta with memory. A rolling-chain producer
// encodes a frame every checkpoint interval; the encoder's scratch —
// payload writer, span tables, op accumulator, and above all the deflate
// state behind the payload compressor — survives between frames so the
// steady-state cost is the diff itself, not reallocating the machinery.
// The zero value is ready to use. Not safe for concurrent use.
type DeltaEncoder struct {
	pw        Writer
	zw        *gzip.Writer
	baseSpans []span
	newSpans  []span
	opData    []byte
}

// Encode builds a frame exactly as EncodeDelta does; only the returned
// frame is freshly allocated.
func (e *DeltaEncoder) Encode(baseSecs, newSecs []DeltaSection, baseHash, newHash [32]byte) []byte {
	e.pw.Reset()
	e.pw.Uvarint(uint64(len(newSecs)))
	for i := range newSecs {
		sec := &newSecs[i]
		e.pw.String(sec.Name)
		e.pw.Uvarint(uint64(len(sec.Body)))
		e.diffSection(findSection(baseSecs, sec.Name), sec)
	}

	var out bytes.Buffer
	out.Grow(deltaHeaderLen + len(e.pw.Bytes())/2)
	out.WriteString(DeltaMagic)
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], DeltaVersion)
	out.Write(ver[:])
	out.Write(baseHash[:])
	out.Write(newHash[:])
	if e.zw == nil {
		e.zw = gzip.NewWriter(&out)
	} else {
		e.zw.Reset(&out)
	}
	e.zw.OS = 255 // "unknown", the deterministic choice (matches Seal)
	if _, err := e.zw.Write(e.pw.Bytes()); err != nil {
		panic(fmt.Sprintf("snap: gzip to memory failed: %v", err)) // cannot happen
	}
	if err := e.zw.Close(); err != nil {
		panic(fmt.Sprintf("snap: gzip to memory failed: %v", err))
	}
	return out.Bytes()
}

// findSection locates a base section by name. Section lists are a handful
// of entries in blob order, so a linear scan beats building a map.
func findSection(secs []DeltaSection, name string) *DeltaSection {
	for i := range secs {
		if secs[i].Name == name {
			return &secs[i]
		}
	}
	return nil
}

// span is a part-delimited run of a section body.
type span struct {
	key      uint64
	off, end int
}

// spansOf turns a part list into contiguous spans covering the whole
// body, appending over dst's backing storage. A body with no marks is one
// anonymous span.
func spansOf(dst []span, body []byte, parts []Part) []span {
	if len(body) == 0 {
		return dst[:0]
	}
	spans := dst[:0]
	if cap(spans) < len(parts)+1 {
		spans = make([]span, 0, len(parts)+1)
	}
	if len(parts) == 0 || parts[0].Off > 0 {
		end := len(body)
		if len(parts) > 0 {
			end = parts[0].Off
		}
		spans = append(spans, span{key: ^uint64(0), off: 0, end: end})
	}
	for i, p := range parts {
		end := len(body)
		if i+1 < len(parts) {
			end = parts[i+1].Off
		}
		if p.Off > end || p.Off > len(body) {
			// Defensive: out-of-order or out-of-range marks degrade to
			// whole-body treatment rather than corrupting the script.
			return []span{{key: ^uint64(0), off: 0, end: len(body)}}
		}
		if p.Off == end {
			continue // empty span (consecutive marks)
		}
		spans = append(spans, span{key: p.Key, off: p.Off, end: end})
	}
	return spans
}

// diffSection emits the op stream transforming base into sec.
func (e *DeltaEncoder) diffSection(base *DeltaSection, sec *DeltaSection) {
	ob := opsBuilder{w: &e.pw, kind: -1, data: e.opData[:0]}
	defer func() { e.opData = ob.data }()
	if len(sec.Body) == 0 {
		return
	}
	if base == nil || len(base.Body) == 0 {
		ob.lit(sec.Body)
		ob.flush()
		return
	}
	if bytes.Equal(base.Body, sec.Body) {
		ob.copyOp(0, len(sec.Body))
		ob.flush()
		return
	}
	newSpans := spansOf(e.newSpans, sec.Body, sec.Parts)
	baseSpans := spansOf(e.baseSpans, base.Body, base.Parts)
	e.newSpans, e.baseSpans = newSpans, baseSpans
	if len(newSpans) == 1 && len(baseSpans) == 1 {
		// Unstructured section: XOR in place when lengths line up, else
		// emit it literally.
		if len(sec.Body) == len(base.Body) {
			ob.xor(base.Body, 0, sec.Body)
		} else {
			ob.lit(sec.Body)
		}
		ob.flush()
		return
	}

	// Fast path: between two snapshots of a steady system, the component
	// population rarely changes, so the span lists usually carry the same
	// keys in the same order. Pair them positionally and skip the matching
	// machinery — for a section with thousands of marks, building the
	// by-key index every interval would dwarf the diff itself.
	if len(newSpans) == len(baseSpans) {
		aligned := true
		for i := range newSpans {
			if newSpans[i].key != baseSpans[i].key {
				aligned = false
				break
			}
		}
		if aligned {
			for i, s := range newSpans {
				emitSpan(&ob, base.Body, baseSpans[i], sec.Body[s.off:s.end])
			}
			ob.flush()
			return
		}
	}

	// Pass 1: match new spans to base spans by key.
	baseByKey := make(map[uint64]int, len(baseSpans))
	for i, s := range baseSpans {
		if _, dup := baseByKey[s.key]; !dup {
			baseByKey[s.key] = i
		}
	}
	match := make([]int, len(newSpans)) // index into baseSpans, -1 if none
	baseUsed := make([]bool, len(baseSpans))
	for i, s := range newSpans {
		match[i] = -1
		if j, ok := baseByKey[s.key]; ok && !baseUsed[j] {
			match[i] = j
			baseUsed[j] = true
		}
	}
	// Pass 2: pair leftover spans of the same kind positionally. A
	// rescheduled kernel event or a packet that re-entered under a new ID
	// has no key match, but against the i-th unmatched base record of the
	// same kind it usually differs in a handful of counter bytes — worth
	// an XOR where a literal would repay the record.
	unmatchedBase := make(map[uint8][]int)
	for j, s := range baseSpans {
		if !baseUsed[j] && s.key != ^uint64(0) {
			kind := uint8(s.key >> 56)
			unmatchedBase[kind] = append(unmatchedBase[kind], j)
		}
	}
	for i, s := range newSpans {
		if match[i] >= 0 || s.key == ^uint64(0) {
			continue
		}
		kind := uint8(s.key >> 56)
		if q := unmatchedBase[kind]; len(q) > 0 {
			match[i] = q[0]
			unmatchedBase[kind] = q[1:]
		}
	}

	for i, s := range newSpans {
		nb := sec.Body[s.off:s.end]
		j := match[i]
		if j < 0 {
			ob.lit(nb)
			continue
		}
		emitSpan(&ob, base.Body, baseSpans[j], nb)
	}
	ob.flush()
}

// emitSpan diffs one new-span body against its matched base span: COPY
// when identical, XOR when same-length, literal otherwise.
func emitSpan(ob *opsBuilder, baseBody []byte, bs span, nb []byte) {
	bb := baseBody[bs.off:bs.end]
	switch {
	case bytes.Equal(bb, nb):
		ob.copyOp(bs.off, len(nb))
	case len(bb) == len(nb):
		ob.xor(bb, bs.off, nb)
	default:
		ob.lit(nb)
	}
}

// opsBuilder accumulates ops, merging adjacent compatible ones (a COPY
// whose base run continues the previous COPY, consecutive literals, an
// XOR continuing the previous XOR's base run) so long unchanged stretches
// cost a few bytes.
type opsBuilder struct {
	w       *Writer
	kind    int // -1: none pending
	baseOff int
	n       int
	data    []byte // LIT literal or XOR difference bytes
}

func (b *opsBuilder) copyOp(baseOff, n int) {
	if n == 0 {
		return
	}
	if b.kind == opCopy && b.baseOff+b.n == baseOff {
		b.n += n
		return
	}
	b.flush()
	b.kind, b.baseOff, b.n = opCopy, baseOff, n
}

func (b *opsBuilder) lit(data []byte) {
	if len(data) == 0 {
		return
	}
	if b.kind == opLit {
		b.data = append(b.data, data...)
		return
	}
	b.flush()
	b.kind = opLit
	b.data = append(b.data[:0], data...)
}

func (b *opsBuilder) xor(baseRun []byte, baseOff int, newRun []byte) {
	if len(newRun) == 0 {
		return
	}
	if b.kind != opXOR || b.baseOff+len(b.data) != baseOff {
		b.flush()
		b.kind, b.baseOff = opXOR, baseOff
		b.data = b.data[:0]
	}
	start := len(b.data)
	b.data = append(b.data, newRun...)
	for i := range newRun {
		b.data[start+i] ^= baseRun[i]
	}
}

func (b *opsBuilder) flush() {
	switch b.kind {
	case opCopy:
		b.w.Uvarint(opCopy)
		b.w.Uvarint(uint64(b.baseOff))
		b.w.Uvarint(uint64(b.n))
	case opXOR:
		b.w.Uvarint(opXOR)
		b.w.Uvarint(uint64(b.baseOff))
		b.w.Bytes0(b.data)
	case opLit:
		b.w.Uvarint(opLit)
		b.w.Bytes0(b.data)
	}
	b.kind = -1
	b.n = 0
	b.data = b.data[:0]
}

// applyBody reconstructs the new body from a base body and one frame,
// verifying both hashes. The returned slice is freshly allocated.
func applyBody(baseBody []byte, frame []byte) ([]byte, error) {
	wantBase, wantNew, err := DeltaHashes(frame)
	if err != nil {
		return nil, err
	}
	if BodyHash(baseBody) != wantBase {
		return nil, &ErrCorrupt{Off: len(DeltaMagic) + 4, Msg: "delta base hash mismatch"}
	}
	zr, err := gzip.NewReader(bytes.NewReader(frame[deltaHeaderLen:]))
	if err != nil {
		return nil, &ErrCorrupt{Off: deltaHeaderLen, Msg: fmt.Sprintf("bad delta payload: %v", err)}
	}
	payload, err := io.ReadAll(io.LimitReader(zr, maxBodyBytes+1))
	if cerr := zr.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, &ErrCorrupt{Off: deltaHeaderLen, Msg: fmt.Sprintf("bad delta payload: %v", err)}
	}
	if len(payload) > maxBodyBytes {
		return nil, &ErrCorrupt{Off: deltaHeaderLen, Msg: fmt.Sprintf("payload exceeds %d bytes", maxBodyBytes)}
	}
	baseSecs, err := SplitSections(baseBody)
	if err != nil {
		return nil, fmt.Errorf("snap: base blob: %w", err)
	}
	byName := make(map[string][]byte, len(baseSecs))
	for _, s := range baseSecs {
		byName[s.Name] = s.Body
	}

	r := NewReader(payload)
	nSec, err := r.Count(2)
	if err != nil {
		return nil, err
	}
	var out Writer
	total := 0
	for i := 0; i < nSec; i++ {
		name, err := r.String()
		if err != nil {
			return nil, err
		}
		newLen64, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if newLen64 > maxBodyBytes || total+int(newLen64) > maxBodyBytes {
			return nil, r.corrupt(fmt.Sprintf("section %q claims %d bytes", name, newLen64))
		}
		newLen := int(newLen64)
		total += newLen
		baseSec := byName[name]
		body := make([]byte, 0, newLen)
		for len(body) < newLen {
			tag, err := r.Uvarint()
			if err != nil {
				return nil, err
			}
			switch tag {
			case opCopy:
				off64, err := r.Uvarint()
				if err != nil {
					return nil, err
				}
				n64, err := r.Uvarint()
				if err != nil {
					return nil, err
				}
				if off64 > uint64(len(baseSec)) || n64 > uint64(len(baseSec))-off64 {
					return nil, r.corrupt(fmt.Sprintf("COPY [%d:+%d] outside base section %q (%d bytes)", off64, n64, name, len(baseSec)))
				}
				if int(n64) > newLen-len(body) {
					return nil, r.corrupt("COPY overruns section length")
				}
				body = append(body, baseSec[off64:off64+n64]...)
			case opXOR:
				off64, err := r.Uvarint()
				if err != nil {
					return nil, err
				}
				data, err := r.Bytes0()
				if err != nil {
					return nil, err
				}
				if off64 > uint64(len(baseSec)) || uint64(len(data)) > uint64(len(baseSec))-off64 {
					return nil, r.corrupt(fmt.Sprintf("XOR [%d:+%d] outside base section %q (%d bytes)", off64, len(data), name, len(baseSec)))
				}
				if len(data) > newLen-len(body) {
					return nil, r.corrupt("XOR overruns section length")
				}
				start := len(body)
				body = append(body, data...)
				base := baseSec[off64:]
				for j := range data {
					body[start+j] ^= base[j]
				}
			case opLit:
				data, err := r.Bytes0()
				if err != nil {
					return nil, err
				}
				if len(data) == 0 {
					return nil, r.corrupt("empty LIT")
				}
				if len(data) > newLen-len(body) {
					return nil, r.corrupt("LIT overruns section length")
				}
				body = append(body, data...)
			default:
				return nil, r.corrupt(fmt.Sprintf("delta op %d", tag))
			}
		}
		out.Section(name, body)
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	newBody := out.Bytes()
	if BodyHash(newBody) != wantNew {
		return nil, &ErrCorrupt{Off: len(DeltaMagic) + 36, Msg: "delta result hash mismatch"}
	}
	return newBody, nil
}

// ApplyChain reconstructs the full sealed blob a chain of delta frames
// describes: open the base, apply each frame's edit script in order, and
// seal the final body once. Every frame's base and result hashes are
// verified, so the returned blob is byte-identical to the full v2
// checkpoint written at the chain tip's cycle — or the call errors.
func ApplyChain(base []byte, frames ...[]byte) ([]byte, error) {
	if len(frames) == 0 {
		return base, nil
	}
	body, err := OpenBody(base)
	if err != nil {
		return nil, err
	}
	for i, f := range frames {
		body, err = applyBody(body, f)
		if err != nil {
			return nil, fmt.Errorf("snap: delta %d of %d: %w", i+1, len(frames), err)
		}
	}
	return Seal(body), nil
}

// ApplyDelta is ApplyChain for a single frame.
func ApplyDelta(base, frame []byte) ([]byte, error) {
	return ApplyChain(base, frame)
}

// ApplyChainPrefix applies the longest valid prefix of a frame chain and
// reports how many frames it consumed. Crash recovery uses it: an
// append-only delta log can end in a torn or superseded frame, and the
// right answer is the last state the intact prefix reaches, not an error.
// Applying zero frames returns the base unchanged. The error is non-nil
// only when the base blob itself cannot be opened.
func ApplyChainPrefix(base []byte, frames ...[]byte) ([]byte, int, error) {
	if len(frames) == 0 {
		return base, 0, nil
	}
	body, err := OpenBody(base)
	if err != nil {
		return nil, 0, err
	}
	applied := 0
	for _, f := range frames {
		next, err := applyBody(body, f)
		if err != nil {
			break
		}
		body = next
		applied++
	}
	if applied == 0 {
		return base, 0, nil
	}
	return Seal(body), applied, nil
}
