package snap

// Append-only frame logs: the on-disk companion of a delta chain. A log
// is a sequence of uvarint-length-prefixed records appended beside a full
// base blob; appending is the only write, so a crash can damage at most
// the final record, and the reader treats a torn tail as end-of-log
// rather than an error. Which records are *valid* is not the log's
// problem — every delta frame names its base by content hash, so applying
// the chain (ApplyChainPrefix) rejects records that survived a crash but
// describe a superseded base.

import (
	"encoding/binary"
	"os"
)

// AppendFrame appends one length-prefixed record to the log at path,
// creating it if needed. The record is written with a single Write call
// to keep the torn-tail window as small as the OS allows.
func AppendFrame(path string, frame []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(frame)))
	rec := make([]byte, 0, n+len(frame))
	rec = append(append(rec, hdr[:n]...), frame...)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(rec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFrameLog parses the log at path into records, stopping silently at
// the first torn record. A missing or empty log yields nil.
func ReadFrameLog(path string) [][]byte {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	r := NewReader(data)
	var frames [][]byte
	for r.Len() > 0 {
		f, err := r.Bytes0()
		if err != nil {
			break
		}
		frames = append(frames, f)
	}
	return frames
}

// FrameLog serializes records in the log's length-prefixed format — the
// wire shape a checkpoint endpoint ships a delta chain in.
func FrameLog(frames [][]byte) []byte {
	var w Writer
	for _, f := range frames {
		w.Bytes0(f)
	}
	return w.Bytes()
}

// ParseFrameLog is the strict inverse of FrameLog: unlike ReadFrameLog it
// rejects a torn tail, because on the wire truncation means a damaged
// response, not a survivable crash artifact.
func ParseFrameLog(data []byte) ([][]byte, error) {
	r := NewReader(data)
	var frames [][]byte
	for r.Len() > 0 {
		f, err := r.Bytes0()
		if err != nil {
			return nil, err
		}
		frames = append(frames, f)
	}
	return frames, nil
}
