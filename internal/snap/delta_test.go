package snap

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"strings"
	"testing"
)

// buildSections writes a small structured snapshot: three sections, the
// middle one with part marks around fixed-size records keyed by ID.
func buildSections(records map[uint64]byte, tail string) []DeltaSection {
	var hw Writer
	hw.U64(7)
	hw.String("header")

	var mw Writer
	ids := make([]uint64, 0, len(records))
	for id := range records {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for _, id := range ids {
		mw.Mark(PartKey(1, id))
		mw.U64(id)
		for i := 0; i < 16; i++ {
			mw.buf = append(mw.buf, records[id])
		}
	}

	var tw Writer
	tw.String(tail)

	return []DeltaSection{
		{Name: "head", Body: hw.Bytes(), Parts: hw.Parts()},
		{Name: "mid", Body: mw.Bytes(), Parts: mw.Parts()},
		{Name: "tail", Body: tw.Bytes(), Parts: tw.Parts()},
	}
}

func sealSections(secs []DeltaSection) []byte { return Seal(JoinSections(secs)) }

func encode(t *testing.T, base, next []DeltaSection) []byte {
	t.Helper()
	return EncodeDelta(base, next,
		BodyHash(JoinSections(base)), BodyHash(JoinSections(next)))
}

func TestDeltaRoundTrip(t *testing.T) {
	base := buildSections(map[uint64]byte{1: 'a', 2: 'b', 3: 'c'}, "t0")
	// Mutate record 2, drop 1, add 9, change the tail.
	next := buildSections(map[uint64]byte{2: 'B', 3: 'c', 9: 'z'}, "t1")

	frame := encode(t, base, next)
	got, err := ApplyDelta(sealSections(base), frame)
	if err != nil {
		t.Fatal(err)
	}
	want := sealSections(next)
	if !bytes.Equal(got, want) {
		t.Fatalf("base ⊕ delta != full blob (%d vs %d bytes)", len(got), len(want))
	}
	if !IsDelta(frame) {
		t.Fatal("IsDelta rejects a real frame")
	}
	if IsDelta(want) {
		t.Fatal("IsDelta accepts a full blob")
	}
	b, n, err := DeltaHashes(frame)
	if err != nil {
		t.Fatal(err)
	}
	if b != BodyHash(JoinSections(base)) || n != BodyHash(JoinSections(next)) {
		t.Fatal("DeltaHashes mismatch")
	}
}

func TestDeltaIdenticalBaseIsTiny(t *testing.T) {
	recs := map[uint64]byte{}
	for i := uint64(1); i <= 100; i++ {
		recs[i] = byte(i*37 + 11)
	}
	secs := buildSections(recs, "same")
	frame := encode(t, secs, secs)
	full := sealSections(secs)
	if len(frame) >= len(full)/2 || len(frame) > 200 {
		t.Fatalf("no-change delta is %d bytes (full %d)", len(frame), len(full))
	}
	got, err := ApplyDelta(full, frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, full) {
		t.Fatal("identity delta did not reproduce the blob")
	}
}

func TestDeltaSmallChangeBeatsFull(t *testing.T) {
	recs := map[uint64]byte{}
	for i := uint64(1); i <= 200; i++ {
		recs[i] = byte(i*37 + 11) // incompressible-ish per-record content
	}
	base := buildSections(recs, "x")
	recs[77] ^= 0xff
	next := buildSections(recs, "x")
	frame := encode(t, base, next)
	full := sealSections(next)
	if len(frame) >= len(full)/5 {
		t.Fatalf("one-record delta is %d bytes, full blob %d — expected ≥5x smaller", len(frame), len(full))
	}
	got, err := ApplyDelta(sealSections(base), frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, full) {
		t.Fatal("delta did not reproduce the blob")
	}
}

func TestDeltaChain(t *testing.T) {
	s0 := buildSections(map[uint64]byte{1: 'a', 2: 'b'}, "0")
	s1 := buildSections(map[uint64]byte{1: 'a', 2: 'c', 5: 'e'}, "1")
	s2 := buildSections(map[uint64]byte{2: 'c', 5: 'f'}, "2")
	d1 := encode(t, s0, s1)
	d2 := encode(t, s1, s2)
	got, err := ApplyChain(sealSections(s0), d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, sealSections(s2)) {
		t.Fatal("chain did not reproduce the tip blob")
	}
	// Zero frames: the base passes through untouched.
	same, err := ApplyChain(sealSections(s0))
	if err != nil || !bytes.Equal(same, sealSections(s0)) {
		t.Fatalf("empty chain: %v", err)
	}
	// Frames out of order must fail the hash check, not misapply.
	if _, err := ApplyChain(sealSections(s0), d2, d1); err == nil {
		t.Fatal("out-of-order chain accepted")
	}
}

func TestDeltaWrongBase(t *testing.T) {
	base := buildSections(map[uint64]byte{1: 'a'}, "0")
	next := buildSections(map[uint64]byte{1: 'b'}, "1")
	other := buildSections(map[uint64]byte{1: 'x'}, "9")
	frame := encode(t, base, next)
	_, err := ApplyDelta(sealSections(other), frame)
	if err == nil || !strings.Contains(err.Error(), "base hash") {
		t.Fatalf("wrong base: %v", err)
	}
}

// makeFrame assembles a frame from raw parts so tests can lie in every
// field the decoder checks.
func makeFrame(baseHash, newHash [32]byte, payload []byte) []byte {
	var out bytes.Buffer
	out.WriteString(DeltaMagic)
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], DeltaVersion)
	out.Write(ver[:])
	out.Write(baseHash[:])
	out.Write(newHash[:])
	zw := gzip.NewWriter(&out)
	zw.Write(payload)
	zw.Close()
	return out.Bytes()
}

func TestDeltaDecoderRejectsLies(t *testing.T) {
	base := buildSections(map[uint64]byte{1: 'a', 2: 'b'}, "t")
	blob := sealSections(base)
	body, err := OpenBody(blob)
	if err != nil {
		t.Fatal(err)
	}
	baseHash := BodyHash(body)
	good := encode(t, base, base)

	cases := map[string][]byte{
		"empty":            {},
		"short magic":      []byte("ADNOC"),
		"full-blob magic":  blob,
		"truncated header": good[:20],
		"truncated body":   good[:len(good)-3],
		"bad payload gzip": append(append([]byte{}, good[:deltaHeaderLen]...), "not gzip"...),
	}
	wrongVer := append([]byte(nil), good...)
	wrongVer[len(DeltaMagic)]++
	cases["wrong version"] = wrongVer

	lie := func(payload []byte) []byte { return makeFrame(baseHash, baseHash, payload) }
	{ // section count far beyond the payload
		var w Writer
		w.Uvarint(1 << 30)
		cases["section-count lie"] = lie(w.Bytes())
	}
	{ // section length overrunning the op stream
		var w Writer
		w.Uvarint(1)
		w.String("head")
		w.Uvarint(1 << 20)
		w.Uvarint(opLit)
		w.Bytes0([]byte("xy"))
		cases["section-length lie"] = lie(w.Bytes())
	}
	{ // COPY outside the base section
		var w Writer
		w.Uvarint(1)
		w.String("head")
		w.Uvarint(8)
		w.Uvarint(opCopy)
		w.Uvarint(1 << 40)
		w.Uvarint(8)
		cases["copy out of range"] = lie(w.Bytes())
	}
	{ // XOR overrunning the base section
		var w Writer
		w.Uvarint(1)
		w.String("tail")
		w.Uvarint(64)
		w.Uvarint(opXOR)
		w.Uvarint(0)
		w.Bytes0(make([]byte, 64))
		cases["xor out of range"] = lie(w.Bytes())
	}
	{ // unknown op
		var w Writer
		w.Uvarint(1)
		w.String("head")
		w.Uvarint(4)
		w.Uvarint(9)
		cases["unknown op"] = lie(w.Bytes())
	}
	{ // claims a section the base lacks, then copies from it
		var w Writer
		w.Uvarint(1)
		w.String("ghost")
		w.Uvarint(4)
		w.Uvarint(opCopy)
		w.Uvarint(0)
		w.Uvarint(4)
		cases["copy from missing section"] = lie(w.Bytes())
	}
	{ // correct script, lying result hash
		var w Writer
		w.Uvarint(0)
		cases["result hash lie"] = makeFrame(baseHash, [32]byte{1, 2, 3}, w.Bytes())
	}

	for name, frame := range cases {
		if _, err := ApplyDelta(blob, frame); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDeltaEncoderDeterministic(t *testing.T) {
	base := buildSections(map[uint64]byte{1: 'a', 2: 'b', 3: 'c'}, "t0")
	next := buildSections(map[uint64]byte{2: 'B', 3: 'c', 9: 'z'}, "t1")
	a := encode(t, base, next)
	b := encode(t, base, next)
	if !bytes.Equal(a, b) {
		t.Fatal("EncodeDelta is not deterministic")
	}
}

func TestSpansDegradeOnBadMarks(t *testing.T) {
	body := []byte("0123456789")
	// Out-of-range and out-of-order marks must degrade to one span, never
	// slice out of bounds.
	for _, parts := range [][]Part{
		{{Key: 1, Off: 4}, {Key: 2, Off: 2}},
		{{Key: 1, Off: 99}},
	} {
		spans := spansOf(nil, body, parts)
		if len(spans) != 1 || spans[0].off != 0 || spans[0].end != len(body) {
			t.Fatalf("parts %v: spans %v", parts, spans)
		}
	}
	if spansOf(nil, nil, nil) != nil {
		t.Fatal("empty body produced spans")
	}
}

func FuzzDecodeDelta(f *testing.F) {
	base := buildSections(map[uint64]byte{1: 'a', 2: 'b', 3: 'c'}, "seed")
	next := buildSections(map[uint64]byte{1: 'a', 2: 'B', 4: 'd'}, "seed2")
	blob := sealSections(base)
	body, _ := OpenBody(blob)
	baseHash := BodyHash(body)

	good := EncodeDelta(base, next, baseHash, BodyHash(JoinSections(next)))
	f.Add(good)
	f.Add(good[:deltaHeaderLen])
	f.Add(good[:len(good)/2])
	f.Add([]byte(DeltaMagic))
	f.Add([]byte{})
	wrongBase := append([]byte(nil), good...)
	wrongBase[len(DeltaMagic)+4] ^= 0xff
	f.Add(wrongBase)
	wrongVer := append([]byte(nil), good...)
	wrongVer[len(DeltaMagic)]++
	f.Add(wrongVer)
	{ // section-count lie under a valid header
		var w Writer
		w.Uvarint(1 << 30)
		f.Add(makeFrame(baseHash, baseHash, w.Bytes()))
	}
	{ // op soup
		var w Writer
		w.Uvarint(2)
		w.String("head")
		w.Uvarint(100)
		w.Uvarint(opCopy)
		w.Uvarint(0)
		w.Uvarint(200)
		f.Add(makeFrame(baseHash, baseHash, w.Bytes()))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; a successful apply must produce a well-formed
		// sealed blob whose body hash matches the frame's claim.
		out, err := ApplyDelta(blob, data)
		if err != nil {
			return
		}
		outBody, err := OpenBody(out)
		if err != nil {
			t.Fatalf("applied blob does not open: %v", err)
		}
		_, want, err := DeltaHashes(data)
		if err != nil {
			t.Fatalf("applied frame has unreadable hashes: %v", err)
		}
		if BodyHash(outBody) != want {
			t.Fatal("applied blob body does not match the frame's result hash")
		}
	})
}
