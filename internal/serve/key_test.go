package serve_test

import (
	"testing"

	"adaptnoc"
	"adaptnoc/internal/rl"
	"adaptnoc/internal/serve"
	"adaptnoc/internal/sim"
)

// keyConfig is the reference configuration the key tests perturb.
func keyConfig() adaptnoc.Config {
	return adaptnoc.Config{
		Design: adaptnoc.DesignAdaptNoC,
		Apps:   adaptnoc.DefaultMixed(0),
		Seed:   2021,
	}
}

func mustKey(t *testing.T, cfg adaptnoc.Config) string {
	t.Helper()
	key, err := serve.ConfigKey(cfg)
	if err != nil {
		t.Fatalf("ConfigKey: %v", err)
	}
	return key
}

// Semantically equal configurations must share a key: spelling defaults
// explicitly, or supplying the config over the wire with fields in any
// order, names the same simulation.
func TestConfigKeyCanonicalEquivalence(t *testing.T) {
	base := mustKey(t, keyConfig())

	explicit := keyConfig()
	explicit.EpochCycles = 50000 // the default, spelled out
	explicit.RL.DQN = rl.DefaultDQNConfig()
	if got := mustKey(t, explicit); got != base {
		t.Errorf("explicit defaults changed the key: %s vs %s", got, base)
	}

	// Knobs the selected design never reads must not influence the key.
	ignored := keyConfig()
	ignored.PGWakeCycles = 99 // only DesignFTBYPG reads power gating
	ignored.ShortcutLinksPerApp = 7
	if got := mustKey(t, ignored); got != base {
		t.Errorf("design-irrelevant knobs changed the key: %s vs %s", got, base)
	}

	// The same configuration arriving as wire JSON, fields deliberately
	// out of struct order.
	wire := []byte(`{
		"seed": 2021,
		"apps": [
			{"region": {"w": 4, "h": 8}, "profile": "bfs", "mcTiles": [0, 2, 32, 34]},
			{"profile": "canneal", "static": "cmesh", "region": {"x": 4, "y": 0, "w": 4, "h": 4}, "mcTiles": [4, 6]},
			{"profile": "ferret", "mcTiles": [36, 38], "region": {"y": 4, "x": 4, "w": 4, "h": 4}, "static": "cmesh"}
		],
		"design": "adapt-noc"
	}`)
	parsed, err := adaptnoc.ParseConfig(wire)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if got := mustKey(t, parsed); got != base {
		t.Errorf("wire config hashed differently: %s vs %s", got, base)
	}
}

func TestConfigKeyDistinguishes(t *testing.T) {
	base := mustKey(t, keyConfig())

	seed := keyConfig()
	seed.Seed = 2022
	if mustKey(t, seed) == base {
		t.Error("different seeds produced the same key")
	}

	design := keyConfig()
	design.Design = adaptnoc.DesignBaseline
	if mustKey(t, design) == base {
		t.Error("different designs produced the same key")
	}

	eps := keyConfig()
	eps.RL.Epsilon, eps.RL.EpsilonSet = 0.25, true
	if mustKey(t, eps) == base {
		t.Error("different exploration rates produced the same key")
	}
}

func TestConfigKeyRejectsSharedAgent(t *testing.T) {
	cfg := keyConfig()
	cfg.RL.SharedAgent = rl.NewDQN(rl.DefaultDQNConfig(), sim.NewRNG(1))
	if _, err := serve.ConfigKey(cfg); err == nil {
		t.Fatal("ConfigKey accepted an in-process shared agent")
	}
}

func TestRequestKeyWindow(t *testing.T) {
	implicit := serve.Request{Config: keyConfig()}
	explicit := serve.Request{Config: keyConfig(), Cycles: serve.DefaultCycles}
	ki, err := serve.RequestKey(implicit)
	if err != nil {
		t.Fatal(err)
	}
	ke, err := serve.RequestKey(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if ki != ke {
		t.Errorf("default and explicit windows hashed differently: %s vs %s", ki, ke)
	}
	longer := serve.Request{Config: keyConfig(), Cycles: 2 * serve.DefaultCycles}
	kl, err := serve.RequestKey(longer)
	if err != nil {
		t.Fatal(err)
	}
	if kl == ki {
		t.Error("different windows produced the same request key")
	}
}
