package serve_test

// Trace specs over the serving API: inline trace bytes enter the
// content-addressed cache key (two different recordings must never share
// a cached result), server-side file paths are rejected, and a replay
// request is budgeted (runs to completion, not for a fixed window).

import (
	"strings"
	"testing"

	"adaptnoc"
	"adaptnoc/internal/serve"
	"adaptnoc/internal/traffic"
)

// traceBlob encodes a minimal single-app trace whose first node carries
// the given gap, so two calls with different gaps yield different bytes.
func traceBlob(t *testing.T, gap uint32) []byte {
	t.Helper()
	blob, err := traffic.EncodeTrace(&traffic.Trace{
		GridW: 8, GridH: 8,
		Apps: []traffic.TraceApp{{
			Profile: "bfs", X: 0, Y: 0, W: 4, H: 4,
			Nodes: []traffic.TraceNode{{Src: 0, Dst: 5, Gap: gap}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func traceConfig(t *testing.T, gap uint32) adaptnoc.Config {
	t.Helper()
	return adaptnoc.Config{
		Design: adaptnoc.DesignBaseline,
		Apps: []adaptnoc.AppSpec{{
			Region:    adaptnoc.Region{X: 0, Y: 0, W: 4, H: 4},
			TraceData: traceBlob(t, gap),
		}},
		Seed: 2021,
	}
}

func TestConfigKeyDistinguishesTraces(t *testing.T) {
	a := mustKey(t, traceConfig(t, 1))
	b := mustKey(t, traceConfig(t, 2))
	if a == b {
		t.Fatal("two different trace recordings produced the same cache key")
	}
	if again := mustKey(t, traceConfig(t, 1)); again != a {
		t.Fatal("the same trace recording produced different cache keys")
	}
}

func TestRequestRejectsTracePaths(t *testing.T) {
	cfg := traceConfig(t, 1)
	cfg.Apps[0].TraceData = nil
	cfg.Apps[0].Trace = "/data/run.trc"
	err := serve.Request{Config: cfg}.Validate()
	if err == nil || !strings.Contains(err.Error(), "trace") {
		t.Fatalf("path-form trace spec accepted: %v", err)
	}
	fe, ok := err.(*adaptnoc.FieldError)
	if !ok || fe.Field != "config.apps[0].trace" {
		t.Fatalf("error does not name the offending field: %#v", err)
	}
}

func TestTraceRequestIsBudgeted(t *testing.T) {
	req := serve.Request{Config: traceConfig(t, 1)}
	if !req.Budgeted() {
		t.Fatal("a trace replay must run to completion, not for a fixed window")
	}
	canon := req.Canonical()
	if canon.Cycles != 0 || canon.MaxCycles != serve.DefaultMaxCycles {
		t.Fatalf("canonical trace request kept a fixed window: %+v", canon)
	}
	if err := req.Validate(); err != nil {
		t.Fatalf("inline trace request rejected: %v", err)
	}
}
