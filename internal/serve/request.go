package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"adaptnoc"
)

// Request is the body of POST /v1/sims: a simulation configuration plus the
// run window.
type Request struct {
	Config adaptnoc.Config `json:"config"`

	// Cycles is the fixed window for latency-style runs (apps without
	// instruction budgets). Defaults to 500000 — ten control epochs at the
	// paper's epoch length. Ignored when any app has a budget.
	Cycles adaptnoc.Cycle `json:"cycles,omitempty"`

	// MaxCycles caps execution-time runs (apps with instruction budgets).
	// Defaults to 50M cycles. Ignored when no app has a budget.
	MaxCycles adaptnoc.Cycle `json:"maxCycles,omitempty"`
}

// Defaults for the run window (see Request field docs).
const (
	DefaultCycles    adaptnoc.Cycle = 500000
	DefaultMaxCycles adaptnoc.Cycle = 50000000
)

// Budgeted reports whether the request runs to application completion
// rather than for a fixed window: some app has an instruction budget, or
// replays a finite dependency trace.
func (r Request) Budgeted() bool {
	for _, a := range r.Config.Apps {
		if a.InstrBudget > 0 || a.Trace != "" || len(a.TraceData) > 0 {
			return true
		}
	}
	return false
}

// Canonical resolves the request into the form the worker actually
// executes: the config is canonicalized (see adaptnoc.Config.Canonical)
// and exactly one of Cycles/MaxCycles survives, defaulted — budgeted
// requests keep MaxCycles, fixed-window requests keep Cycles. Two requests
// name the same computation iff their canonical forms are equal, which is
// what RequestKey hashes.
func (r Request) Canonical() Request {
	req := r
	req.Config = r.Config.Canonical()
	if req.Budgeted() {
		req.Cycles = 0
		if req.MaxCycles == 0 {
			req.MaxCycles = DefaultMaxCycles
		}
	} else {
		req.MaxCycles = 0
		if req.Cycles == 0 {
			req.Cycles = DefaultCycles
		}
	}
	return req
}

// Validate checks the request, naming the offending field like
// adaptnoc.Config.Validate does.
func (r Request) Validate() error {
	if r.Cycles < 0 {
		return &adaptnoc.FieldError{Field: "cycles", Msg: fmt.Sprintf("negative window %d", r.Cycles)}
	}
	if r.MaxCycles < 0 {
		return &adaptnoc.FieldError{Field: "maxCycles", Msg: fmt.Sprintf("negative cap %d", r.MaxCycles)}
	}
	if r.Config.RL.SharedAgent != nil {
		return &adaptnoc.FieldError{Field: "rl", Msg: "in-process shared agent cannot be served"}
	}
	for i, a := range r.Config.Apps {
		// A trace must arrive inline: the server never reads server-side
		// paths on a client's behalf, and only inline bytes enter the
		// content-addressed cache key.
		if a.Trace != "" {
			return &adaptnoc.FieldError{
				Field: fmt.Sprintf("config.apps[%d].trace", i),
				Msg:   "trace file paths cannot be served",
				Hint:  "inline the trace bytes as traceData",
			}
		}
	}
	if err := r.Config.Validate(); err != nil {
		if fe, ok := err.(*adaptnoc.FieldError); ok {
			return &adaptnoc.FieldError{Field: "config." + fe.Field, Msg: fe.Msg, Hint: fe.Hint}
		}
		return err
	}
	return nil
}

// ParseRequest strictly decodes and validates a JSON job request: unknown
// fields anywhere in the document (typos would otherwise silently become
// defaults) and trailing garbage are errors.
func ParseRequest(data []byte) (Request, error) {
	var req Request
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return Request{}, fmt.Errorf("serve: parsing request: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return Request{}, fmt.Errorf("serve: trailing data after request")
	}
	if err := req.Validate(); err != nil {
		return Request{}, err
	}
	return req, nil
}
