package serve

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Cache is the content-addressed result store: canonical-request hash →
// marshaled Results bytes. Because the simulator is deterministic, an entry
// is not an approximation of a re-run — it IS the re-run, byte for byte,
// which is why the daemon can answer a repeated submission without
// committing a worker.
//
// In memory it is an LRU bounded by a byte budget. With a directory
// configured, entries are also written through to <dir>/<key>.json
// (temp-file + rename, so a crash never leaves a torn entry) and misses
// fall back to reading the directory — a restarted daemon keeps its
// history.
type Cache struct {
	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	size  int64 // sum of value lengths
	limit int64
	dir   string

	hits, misses, diskHits atomic.Int64
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache returns a cache bounded to limit bytes of values (<= 0 selects
// 64 MiB). dir is the optional persistence directory ("" disables disk).
func NewCache(limit int64, dir string) *Cache {
	if limit <= 0 {
		limit = 64 << 20
	}
	return &Cache{ll: list.New(), items: make(map[string]*list.Element), limit: limit, dir: dir}
}

// Get returns the cached bytes for key. Callers must not modify the
// returned slice. A memory miss consults the persistence directory before
// giving up.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		val := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		c.hits.Add(1)
		return val, true
	}
	c.mu.Unlock()

	if c.dir != "" {
		if val, err := os.ReadFile(c.path(key)); err == nil {
			c.diskHits.Add(1)
			c.hits.Add(1)
			c.put(key, val, false) // already on disk
			return val, true
		}
	}
	c.misses.Add(1)
	return nil, false
}

// Put stores val under key, evicting least-recently-used entries while the
// budget is exceeded (the newest entry always stays, even when it alone is
// over budget). With persistence enabled the entry is written to disk
// immediately.
func (c *Cache) Put(key string, val []byte) { c.put(key, val, true) }

func (c *Cache) put(key string, val []byte, persist bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		ent := el.Value.(*cacheEntry)
		c.size += int64(len(val)) - int64(len(ent.val))
		ent.val = val
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
		c.size += int64(len(val))
	}
	for c.size > c.limit && c.ll.Len() > 1 {
		el := c.ll.Back()
		ent := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.items, ent.key)
		c.size -= int64(len(ent.val))
	}
	c.mu.Unlock()

	if persist && c.dir != "" {
		c.writeThrough(key, val) // disk keeps evicted entries; only memory is bounded
	}
}

// writeThrough persists one entry atomically; a failure degrades to
// memory-only caching rather than failing the job.
func (c *Cache) writeThrough(key string, val []byte) {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, "."+key+".tmp*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(val); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, c.path(key)); err != nil {
		os.Remove(name)
	}
}

func (c *Cache) path(key string) string { return filepath.Join(c.dir, key+".json") }

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Entries        int
	Bytes          int64
	Hits, Misses   int64
	DiskHits       int64
	BudgetBytes    int64
	PersistenceDir string
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	entries, bytes := c.ll.Len(), c.size
	c.mu.Unlock()
	return CacheStats{
		Entries: entries, Bytes: bytes,
		Hits: c.hits.Load(), Misses: c.misses.Load(), DiskHits: c.diskHits.Load(),
		BudgetBytes: c.limit, PersistenceDir: c.dir,
	}
}

// Flush is the shutdown barrier: because writes go through synchronously
// it only has to verify the persistence directory is reachable, but
// callers should treat it as "everything cached so far survives a restart".
func (c *Cache) Flush() error {
	if c.dir == "" {
		return nil
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return fmt.Errorf("serve: cache flush: %w", err)
	}
	return nil
}
