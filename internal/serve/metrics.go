package serve

import (
	"fmt"
	"net/http"
	"strings"

	"adaptnoc/internal/obs"
)

// handleMetrics renders the daemon's counters in the Prometheus text
// exposition format, hand-rolled on purpose: the repository takes no
// dependencies, and the format is four line shapes. The job-latency
// histogram reuses the simulator's sim.Histogram, re-expressed as the
// cumulative le-bucket form Prometheus expects.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	gauge := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	s.admitMu.Lock()
	draining := 0
	if s.draining {
		draining = 1
	}
	s.admitMu.Unlock()

	gauge("adaptnoc_serve_queue_depth", "Jobs admitted but not yet started.", len(s.queue))
	gauge("adaptnoc_serve_inflight", "Jobs currently executing.", s.inflight.Load())
	gauge("adaptnoc_serve_draining", "1 while shutdown is draining the queue.", draining)
	counter("adaptnoc_serve_jobs_started_total", "Jobs handed to a worker.", s.started.Load())
	counter("adaptnoc_serve_jobs_completed_total", "Jobs finished successfully.", s.counts[0].Load())
	counter("adaptnoc_serve_jobs_failed_total", "Jobs that returned an error.", s.counts[1].Load())
	counter("adaptnoc_serve_jobs_canceled_total", "Jobs canceled by DELETE or shutdown.", s.counts[2].Load())

	cs := s.cache.Stats()
	counter("adaptnoc_serve_cache_hits_total", "Submissions answered from the result cache.", cs.Hits)
	counter("adaptnoc_serve_cache_misses_total", "Submissions that had to simulate.", cs.Misses)
	counter("adaptnoc_serve_cache_disk_hits_total", "Cache hits served from the persistence directory.", cs.DiskHits)
	gauge("adaptnoc_serve_cache_entries", "Results held in memory.", cs.Entries)
	gauge("adaptnoc_serve_cache_bytes", "Bytes of results held in memory.", cs.Bytes)

	ckptEntries, ckptBytes, ckptEvictions := s.ckpts.stats()
	gauge("adaptnoc_serve_checkpoint_entries", "Checkpoints held in the checkpoint directory.", ckptEntries)
	gauge("adaptnoc_serve_checkpoint_bytes", "Bytes of checkpoints held in the checkpoint directory.", ckptBytes)
	counter("adaptnoc_serve_checkpoint_evictions_total", "Checkpoints deleted to hold the directory's byte budget.", ckptEvictions)

	// Job latency is recorded in milliseconds; obs exports it in the
	// Prometheus base unit (seconds).
	s.histMu.Lock()
	obs.WritePromHistogram(&b, "adaptnoc_serve_job_seconds",
		"Wall-clock job execution time.", s.latency, 1e-3)
	s.histMu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}
