package serve_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"adaptnoc/internal/serve"
)

func TestCacheRoundTrip(t *testing.T) {
	c := serve.NewCache(1<<20, "")
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("a", []byte("alpha"))
	got, ok := c.Get("a")
	if !ok || !bytes.Equal(got, []byte("alpha")) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 5 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 entry / 5 bytes", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := serve.NewCache(100, "")
	val := bytes.Repeat([]byte("x"), 40)
	c.Put("a", val)
	c.Put("b", val)
	c.Get("a") // refresh a, making b the eviction victim
	c.Put("c", val)
	if _, ok := c.Get("b"); ok {
		t.Error("least-recently-used entry survived over-budget Put")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recently-used entry was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("newest entry was evicted")
	}

	// A single entry larger than the whole budget must still be kept.
	c.Put("big", bytes.Repeat([]byte("y"), 500))
	if _, ok := c.Get("big"); !ok {
		t.Error("over-budget entry was not retained")
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("entries = %d after over-budget Put, want 1", st.Entries)
	}
}

func TestCacheDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	c := serve.NewCache(1<<20, dir)
	c.Put("deadbeef", []byte(`{"ok":true}`))
	if _, err := os.Stat(filepath.Join(dir, "deadbeef.json")); err != nil {
		t.Fatalf("entry not written through: %v", err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	// A fresh cache over the same directory — a restarted daemon — serves
	// the entry from disk.
	c2 := serve.NewCache(1<<20, dir)
	got, ok := c2.Get("deadbeef")
	if !ok || !bytes.Equal(got, []byte(`{"ok":true}`)) {
		t.Fatalf("disk read-through: got %q, %v", got, ok)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want one disk hit", st)
	}
	// Second Get is served from memory.
	if _, ok := c2.Get("deadbeef"); !ok {
		t.Fatal("promoted entry missing from memory")
	}
	if st := c2.Stats(); st.DiskHits != 1 || st.Hits != 2 {
		t.Errorf("stats = %+v, want memory hit on second Get", st)
	}
}

func TestCacheEvictedEntrySurvivesOnDisk(t *testing.T) {
	dir := t.TempDir()
	c := serve.NewCache(64, dir)
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte("z"), 40))
	}
	// k0 was evicted from memory long ago but persists on disk.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("evicted entry not recovered from disk")
	}
	if st := c.Stats(); st.DiskHits != 1 {
		t.Errorf("stats = %+v, want one disk hit", st)
	}
}
