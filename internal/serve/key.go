package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"adaptnoc"
)

// ConfigKey returns the content address of a simulation configuration: the
// SHA-256 of the canonical JSON encoding of cfg.Canonical(). Because the
// simulator is deterministic — equal canonical configs produce identical
// Results — the key is a perfect memoization handle: semantically equal
// configurations (fields spelled in any order on the wire, defaults left
// implicit or written out, knobs the selected design ignores set to
// anything) hash identically, while any change that could alter the
// simulation (seed, design, apps, hyper-parameters) produces a new key.
//
// Configurations carrying an in-process RL.SharedAgent have no canonical
// byte representation and are rejected.
func ConfigKey(cfg adaptnoc.Config) (string, error) {
	if cfg.RL.SharedAgent != nil {
		return "", fmt.Errorf("serve: config with in-process RL.SharedAgent is not content-addressable")
	}
	blob, err := json.Marshal(cfg.Canonical())
	if err != nil {
		return "", fmt.Errorf("serve: hashing config: %w", err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}

// RequestKey extends ConfigKey over the whole job request: the run window
// (cycles/maxCycles) is part of what a simulation computes, so two
// submissions share a cache entry iff their canonical configs AND their
// canonical run windows match.
func RequestKey(req Request) (string, error) {
	req = req.Canonical()
	ck, err := ConfigKey(req.Config)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|cycles=%d|maxCycles=%d", ck, req.Cycles, req.MaxCycles)))
	return hex.EncodeToString(sum[:]), nil
}
