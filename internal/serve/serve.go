// Package serve turns the simulator into a service: an HTTP daemon that
// accepts canonical-JSON simulation configurations, runs them on a bounded
// worker pool, streams per-epoch progress, and memoizes results in a
// content-addressed cache.
//
// The design leans on two properties the rest of the repository already
// guarantees. First, simulations are deterministic — a canonical config
// names its Results uniquely, so the cache (keyed by RequestKey, a SHA-256
// of the canonical request) returns byte-identical documents instead of
// approximations. Second, jobs are independent — the worker pool reuses
// runner.One's panic-capture semantics so one poisoned config cannot take
// the daemon down.
//
// Backpressure is explicit: the job queue is a bounded channel, and a full
// queue answers 429 with Retry-After instead of buffering without bound.
// Shutdown is graceful: admission stops (healthz flips to 503), queued and
// running jobs drain, then the cache flushes.
package serve

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"adaptnoc"
	"adaptnoc/internal/runner"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/snap"
)

// Options configure a Server. The zero value is usable.
type Options struct {
	// QueueDepth bounds the number of admitted-but-unstarted jobs
	// (default 64). A full queue rejects with 429 + Retry-After.
	QueueDepth int
	// Workers is the pool size; <= 0 selects one per CPU.
	Workers int
	// CacheBytes bounds the in-memory result cache (<= 0 selects 64 MiB).
	CacheBytes int64
	// CacheDir, when set, persists results to disk so a restarted daemon
	// keeps its cache.
	CacheDir string
	// CheckpointDir, when set, persists a checkpoint when a running job is
	// canceled, keyed like the cache by the canonical request. A later
	// POST /v1/jobs/{id}/resume continues from the checkpoint instead of
	// cycle zero; determinism makes the spliced run's results byte-identical
	// to an uninterrupted one.
	CheckpointDir string
	// CheckpointBytes bounds the CheckpointDir's total size (<= 0 selects
	// 256 MiB). Least-recently-used checkpoints are deleted once the budget
	// is exceeded; determinism makes that safe — an evicted checkpoint only
	// costs a resume its fast-forward, never its result.
	CheckpointBytes int64
	// JitterSeed seeds the Retry-After jitter on 429 responses (0 seeds
	// from the clock). Tests set it for a reproducible sequence; the values
	// themselves are uniform over 1-5 seconds either way.
	JitterSeed uint64
}

// Server is the simulation daemon. Create with New, mount Handler on an
// http.Server, and call Shutdown to drain.
type Server struct {
	opts    Options
	cache   *Cache
	handoff *handoffStore
	ckpts   *ckptStore // nil without a CheckpointDir
	mux     *http.ServeMux

	jitter atomic.Uint64 // splitmix64 state for Retry-After jitter

	// admitMu serializes admission against shutdown: queue sends happen
	// under it, so closing the queue (also under it) can never race a send.
	admitMu  sync.Mutex
	draining bool
	queue    chan *job

	jobsMu sync.Mutex
	jobs   map[string]*job

	nextID   atomic.Int64
	seq      atomic.Int64 // completion order
	inflight atomic.Int64
	started  atomic.Int64
	counts   [3]atomic.Int64 // done, failed, canceled

	histMu  sync.Mutex
	latency *sim.Histogram // job wall time, ms

	wg sync.WaitGroup
}

// latencyBucketMS is the job-latency histogram shape: 40 × 250 ms buckets
// (10 s span) plus overflow, exported in seconds on /metrics.
const (
	latencyBucketMS = 250
	latencyBuckets  = 40
)

// New builds a Server and starts its worker pool.
func New(opts Options) *Server {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	opts.Workers = runner.Parallelism(opts.Workers)
	s := &Server{
		opts:    opts,
		cache:   NewCache(opts.CacheBytes, opts.CacheDir),
		handoff: newHandoffStore(),
		queue:   make(chan *job, opts.QueueDepth),
		jobs:    make(map[string]*job),
		latency: sim.NewHistogram(latencyBucketMS, latencyBuckets),
	}
	seed := opts.JitterSeed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	s.jitter.Store(seed)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/sims", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("POST /v1/jobs/{id}/resume", s.handleResume)
	s.mux.HandleFunc("POST /v1/jobs/{id}/lease", s.handleLease)
	s.mux.HandleFunc("PUT /v1/checkpoints/{key}", s.handlePutCheckpoint)
	if opts.CheckpointDir != "" {
		s.ckpts = newCkptStore(opts.CheckpointDir, opts.CheckpointBytes)
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the daemon: admission stops immediately (submissions and
// health checks answer 503), workers finish every admitted job, and the
// cache flushes. If ctx expires first, running jobs are cancelled
// cooperatively and the context error is returned after they stop.
func (s *Server) Shutdown(ctx context.Context) error {
	s.admitMu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue)
	}
	s.admitMu.Unlock()

	drained := make(chan struct{})
	go func() { s.wg.Wait(); close(drained) }()
	select {
	case <-drained:
		return s.cache.Flush()
	case <-ctx.Done():
		s.jobsMu.Lock()
		for _, j := range s.jobs {
			j.cancel()
		}
		s.jobsMu.Unlock()
		<-drained
		if err := s.cache.Flush(); err != nil {
			return err
		}
		return ctx.Err()
	}
}

// --- workers ---

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job end to end: state transitions, panic-safe
// execution via runner.One, latency accounting, and result caching.
func (s *Server) runJob(j *job) {
	if !j.setRunning() {
		return // canceled while queued; finish already ran
	}
	if err := j.ctx.Err(); err != nil {
		s.finishJob(j, StateCanceled, nil, "canceled before start")
		return
	}
	s.inflight.Add(1)
	s.started.Add(1)
	start := time.Now()
	result, err := runner.One(j.ctx, j, s.execute)
	s.histMu.Lock()
	s.latency.Add(time.Since(start).Milliseconds())
	s.histMu.Unlock()
	s.inflight.Add(-1)

	switch {
	case err == nil:
		s.cache.Put(j.key, result)
		s.finishJob(j, StateDone, result, "")
	case j.ctx.Err() != nil:
		s.finishJob(j, StateCanceled, nil, "canceled")
	default:
		s.finishJob(j, StateFailed, nil, err.Error())
	}
}

// finishJob assigns the completion sequence number and bumps the terminal
// counter, exactly once per job.
func (s *Server) finishJob(j *job, state State, result []byte, errMsg string) {
	if !j.finish(state, s.seq.Add(1), result, errMsg) {
		return
	}
	switch state {
	case StateDone:
		s.counts[0].Add(1)
	case StateFailed:
		s.counts[1].Add(1)
	case StateCanceled:
		s.counts[2].Add(1)
	}
}

// checkpointPath names the on-disk checkpoint for a request key, or ""
// when checkpointing is not configured.
func (s *Server) checkpointPath(key string) string {
	if s.opts.CheckpointDir == "" {
		return ""
	}
	return filepath.Join(s.opts.CheckpointDir, key+".ckpt")
}

// saveCheckpoint persists the mid-run state when the run stopped because
// of cancellation (not a simulation failure). Best-effort: a write failure
// only costs the resume fast path, never the job's own state machine.
func (s *Server) saveCheckpoint(ctx context.Context, j *job, simu *adaptnoc.Sim, path string) {
	if path == "" || ctx.Err() == nil {
		return
	}
	if err := simu.WriteCheckpoint(path); err == nil {
		s.ckpts.note(j.key)
		j.mu.Lock()
		j.checkpointed = true
		j.mu.Unlock()
	}
}

// execute runs one simulation in control-epoch slices, emitting a progress
// event after each slice. The request is canonical, so EpochCycles is
// always explicit. Resumed jobs restore the checkpoint written when their
// predecessor was canceled and run only the remaining cycles; the request
// key pins the checkpoint to the exact canonical request, so the spliced
// run is byte-identical to an uninterrupted one.
func (s *Server) execute(ctx context.Context, j *job) ([]byte, error) {
	ckpt := s.checkpointPath(j.key)
	var simu *adaptnoc.Sim
	if j.resumed {
		// Handed-off blobs (shipped from another node's snapshot via
		// PUT /v1/checkpoints/{key}) win over this node's own disk
		// checkpoint: the handoff is why the coordinator asked to resume.
		if blob := s.handoff.take(j.key); blob != nil {
			if restored, err := adaptnoc.RestoreSim(blob); err == nil {
				simu = restored
			}
		}
		if simu == nil && ckpt != "" {
			if restored, err := adaptnoc.RestoreSimFromFile(ckpt); err == nil {
				simu = restored
				s.ckpts.touch(j.key)
			}
		}
		// A missing or unreadable checkpoint falls back to a fresh run:
		// determinism makes restore an optimization, never a correctness
		// requirement.
	}
	if simu == nil {
		fresh, err := adaptnoc.NewSim(j.req.Config)
		if err != nil {
			return nil, err
		}
		simu = fresh
	}
	epoch := adaptnoc.Cycle(j.req.Config.EpochCycles)
	emit := func() {
		ts := simu.TickStats()
		j.emit(Event{
			Cycle:           int64(simu.Kernel.Now()),
			RouterSkipRate:  ts.RouterSkipRate(),
			ChannelSkipRate: ts.ChannelSkipRate(),
		})
		// Lease-scoped jobs shadow their state in memory once per slice so
		// a coordinator can fetch the latest state for handoff even after
		// this process dies abruptly mid-poll (the coordinator shadows it
		// during routine job polling). The shadow is a rolling delta chain:
		// after the first full blob, a quiet slice costs a frame of dozens
		// of bytes instead of a full re-encode. Ordinary jobs skip it all.
		if j.lease > 0 {
			j.shadow(simu)
		}
	}
	if j.req.Budgeted() {
		for remaining := j.req.MaxCycles - simu.Kernel.Now(); remaining > 0; {
			slice := epoch
			if remaining < slice {
				slice = remaining
			}
			finished, err := simu.RunUntilFinishedContext(ctx, slice)
			if err != nil {
				s.saveCheckpoint(ctx, j, simu, ckpt)
				return nil, err
			}
			emit()
			if finished {
				break
			}
			remaining -= slice
		}
	} else {
		for remaining := j.req.Cycles - simu.Kernel.Now(); remaining > 0; {
			slice := epoch
			if remaining < slice {
				slice = remaining
			}
			if err := simu.RunContext(ctx, slice); err != nil {
				s.saveCheckpoint(ctx, j, simu, ckpt)
				return nil, err
			}
			emit()
			remaining -= slice
		}
	}
	blob, err := json.Marshal(simu.Results())
	if err != nil {
		return nil, fmt.Errorf("serve: marshaling results: %w", err)
	}
	if ckpt != "" {
		s.ckpts.remove(j.key) // the result is cached now; the checkpoint is spent
	}
	return blob, nil
}

// --- handlers ---

// maxRequestBytes bounds a submission body; configurations are small.
const maxRequestBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	req, err := ParseRequest(body)
	if err != nil {
		validationError(w, err)
		return
	}
	req = req.Canonical()
	key, err := RequestKey(req)
	if err != nil {
		validationError(w, err)
		return
	}

	id := fmt.Sprintf("job-%d", s.nextID.Add(1))
	j := newJob(id, key, req)
	if lv := r.URL.Query().Get("lease"); lv != "" {
		d, err := time.ParseDuration(lv)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("lease %q: want a positive Go duration (e.g. 30s)", lv))
			return
		}
		j.lease = d
	}
	if r.URL.Query().Get("resume") == "1" {
		// The job restores the handed-off (or disk) checkpoint for its key
		// when one exists and runs only the remaining cycles; a fresh run
		// otherwise. Results are byte-identical either way.
		j.resumed = true
	}
	s.admit(w, j)
}

// admit runs the shared admission path for fresh submissions and resumes:
// cache hit → born done, otherwise the bounded queue with 429/503 refusals.
func (s *Server) admit(w http.ResponseWriter, j *job) {
	// Cache hit: the job is born done, no worker involved.
	if blob, ok := s.cache.Get(j.key); ok {
		j.hit = true
		j.state = StateRunning // finish() requires a non-terminal state
		s.finishJob(j, StateDone, blob, "")
		s.addJob(j)
		writeJSON(w, http.StatusOK, j.info())
		return
	}

	s.admitMu.Lock()
	if s.draining {
		s.admitMu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	select {
	case s.queue <- j:
		s.admitMu.Unlock()
	default:
		s.admitMu.Unlock()
		// Jittered Retry-After: a fixed value would synchronize every
		// backed-off client (a coordinator fleet most of all) into retry
		// storms that slam the queue in lockstep.
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSeconds()))
		httpError(w, http.StatusTooManyRequests, "job queue full")
		return
	}
	s.addJob(j)
	j.armLease()
	writeJSON(w, http.StatusAccepted, j.info())
}

// retryAfterSeconds draws a uniform 1-5 second Retry-After from the
// server's splitmix64 jitter stream (lock-free; the atomic add is the
// generator's state step).
func (s *Server) retryAfterSeconds() int64 {
	x := s.jitter.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return 1 + int64(x%5)
}

// handleResume admits a new job for a canceled job's request. When the
// cancellation left a checkpoint behind, the new job restores it and runs
// only the remaining cycles; either way the result is byte-identical to an
// uninterrupted run and lands in the cache under the same key.
func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	prev := s.lookup(r.PathValue("id"))
	if prev == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	prev.mu.Lock()
	state := prev.state
	prev.mu.Unlock()
	if state != StateCanceled {
		httpError(w, http.StatusConflict, fmt.Sprintf("job is %s; only canceled jobs can be resumed", state))
		return
	}
	id := fmt.Sprintf("job-%d", s.nextID.Add(1))
	j := newJob(id, prev.key, prev.req)
	j.resumed = true
	s.admit(w, j)
}

// handleLease renews a lease-scoped job's lease by one interval. 409 when
// the job carries no lease or already ended — the client must resubmit,
// not renew.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if !j.renewLease() {
		httpError(w, http.StatusConflict, "job has no active lease (submit with ?lease=<duration> and renew before it lapses)")
		return
	}
	writeJSON(w, http.StatusOK, j.info())
}

// handleCheckpoint serves the job's latest checkpoint for handoff: the
// in-memory chain of a lease-scoped job when one exists, else the
// cancel-time disk checkpoint. A caller that already holds an earlier
// link of the chain names it with ?base=<hex body hash> and receives just
// the delta frames extending it (X-Checkpoint-Format: delta-chain, body a
// snap frame log — possibly empty when the caller is already current)
// instead of the full blob, so a polling coordinator's steady-state fetch
// is kilobytes. Every response carries the simulated clock
// (X-Checkpoint-Cycle) and the state's body hash (X-Checkpoint-Body-Hash),
// which is the base token for the caller's next fetch.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	base, frames, tip, cycle := j.snapshotChain()
	if base == nil {
		if p := s.checkpointPath(j.key); p != "" {
			if blob, err := os.ReadFile(p); err == nil {
				s.ckpts.touch(j.key)
				writeFullCheckpoint(w, blob, 0)
				return
			}
		}
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": "no checkpoint for this job",
			"hint":  "lease-scoped jobs (?lease=<duration>) snapshot every progress slice; canceled jobs checkpoint when the daemon runs with -checkpointdir",
		})
		return
	}
	if baseHex := r.URL.Query().Get("base"); baseHex != "" {
		if want, err := hex.DecodeString(baseHex); err == nil && len(want) == len(tip) {
			if suffix, ok := chainSuffix(base, frames, [32]byte(want)); ok {
				w.Header().Set("Content-Type", "application/octet-stream")
				w.Header().Set("X-Checkpoint-Format", "delta-chain")
				w.Header().Set("X-Checkpoint-Cycle", fmt.Sprintf("%d", cycle))
				w.Header().Set("X-Checkpoint-Body-Hash", hex.EncodeToString(tip[:]))
				w.Write(snap.FrameLog(suffix))
				return
			}
		}
		// An unknown base (the chain rebased past it, or the hash is
		// garbage) degrades to the full blob below — never an error.
	}
	blob, err := snap.ApplyChain(base, frames...)
	if err != nil {
		// The producer verifies every frame's lineage before appending, so
		// this is unreachable short of memory corruption.
		httpError(w, http.StatusInternalServerError, fmt.Sprintf("assembling checkpoint: %v", err))
		return
	}
	writeFullCheckpoint(w, blob, cycle)
}

// chainSuffix locates the chain position whose body hash is want and
// returns the frames after it — empty when want is the tip itself. ok is
// false when no position matches (the caller's copy predates the chain's
// base, so only a full blob can help them).
func chainSuffix(base []byte, frames [][]byte, want [32]byte) ([][]byte, bool) {
	if body, err := snap.OpenBody(base); err == nil && snap.BodyHash(body) == want {
		return frames, true
	}
	for i, f := range frames {
		if _, result, err := snap.DeltaHashes(f); err == nil && result == want {
			return frames[i+1:], true
		}
	}
	return nil, false
}

// writeFullCheckpoint writes a complete checkpoint blob with the headers
// the delta negotiation relies on; the body hash seeds the caller's next
// ?base= fetch.
func writeFullCheckpoint(w http.ResponseWriter, blob []byte, cycle int64) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Checkpoint-Format", "full")
	w.Header().Set("X-Checkpoint-Cycle", fmt.Sprintf("%d", cycle))
	if body, err := snap.OpenBody(blob); err == nil {
		hash := snap.BodyHash(body)
		w.Header().Set("X-Checkpoint-Body-Hash", hex.EncodeToString(hash[:]))
	}
	w.Write(blob)
}

// maxCheckpointBytes bounds a handed-off checkpoint blob; gzipped blobs
// run tens of kilobytes, so 32 MiB is generous headroom.
const maxCheckpointBytes = 32 << 20

// handlePutCheckpoint deposits a checkpoint blob for a request key so the
// next ?resume=1 submission of that request restores it instead of
// recomputing — the coordinator's handoff path when it moves a dead
// worker's half-finished job to this node.
func (s *Server) handlePutCheckpoint(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxCheckpointBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("reading checkpoint: %v", err))
		return
	}
	if len(blob) == 0 {
		httpError(w, http.StatusBadRequest, "empty checkpoint blob")
		return
	}
	// Decode now, not at resume time: a corrupt blob answers 400 to the
	// depositor instead of silently costing the replacement run its
	// fast-forward.
	if _, err := adaptnoc.RestoreSim(blob); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("invalid checkpoint: %v", err))
		return
	}
	s.handoff.put(key, blob)
	writeJSON(w, http.StatusOK, map[string]any{"key": key, "bytes": len(blob)})
}

func (s *Server) addJob(j *job) {
	s.jobsMu.Lock()
	s.jobs[j.id] = j
	s.jobsMu.Unlock()
}

func (s *Server) lookup(id string) *job {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.info())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.jobsMu.Lock()
	infos := make([]JobInfo, 0, len(s.jobs))
	for _, j := range s.jobs {
		info := j.info()
		info.Results = nil // summaries only; fetch one job for its results
		infos = append(infos, info)
	}
	s.jobsMu.Unlock()
	sort.Slice(infos, func(a, b int) bool { return infos[a].ID < infos[b].ID })
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	j.cancel()
	// A queued job can be finished right here; a running one stops at the
	// worker's next cancellation poll (within one control epoch).
	j.mu.Lock()
	queued := j.state == StateQueued
	j.mu.Unlock()
	if queued {
		s.finishJob(j, StateCanceled, nil, "canceled while queued")
	}
	writeJSON(w, http.StatusOK, j.info())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(name string, v any) {
		blob, _ := json.Marshal(v)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, blob)
		flusher.Flush()
	}

	history, live := j.subscribe()
	for _, ev := range history {
		writeEvent("epoch", ev)
	}
	if live != nil {
	stream:
		for {
			select {
			case ev, ok := <-live:
				if !ok {
					break stream // job finished
				}
				writeEvent("epoch", ev)
			case <-r.Context().Done():
				return
			}
		}
	}
	info := j.info()
	info.Results = nil // the results document is fetched, not streamed
	writeEvent("done", info)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.admitMu.Lock()
	draining := s.draining
	s.admitMu.Unlock()
	if draining {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// --- small helpers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// validationError writes a 400 whose body names the offending field by its
// JSON path and, when the validator knows one, a remediation hint — so a
// client can fix the request without reading the simulator's source:
//
//	{"error": "...", "field": "config.apps[1].region", "hint": "shrink ..."}
//
// Errors that are not field errors (malformed JSON, unknown fields) fall
// back to the plain {"error": ...} shape.
func validationError(w http.ResponseWriter, err error) {
	var fe *adaptnoc.FieldError
	if !errors.As(err, &fe) {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	body := map[string]string{"error": err.Error(), "field": fe.Field}
	if fe.Hint != "" {
		body["hint"] = fe.Hint
	}
	writeJSON(w, http.StatusBadRequest, body)
}
