package serve

import "sync"

// handoffBytes bounds the in-memory handoff store. Gzipped checkpoint
// blobs run tens of kilobytes, so the default holds hundreds of in-flight
// handoffs; FIFO eviction keeps a misbehaving client from pinning memory.
const handoffBytes = 64 << 20

// handoffStore holds checkpoint blobs a coordinator ships between workers:
// PUT /v1/checkpoints/{key} deposits the blob a dead worker left behind,
// and the next ?resume=1 submission for the same key withdraws it and
// restores instead of recomputing. The store is a pure optimization —
// determinism means a missing or evicted blob only costs the fast-forward.
type handoffStore struct {
	mu    sync.Mutex
	size  int64
	blobs map[string][]byte
	order []string // insertion order, for FIFO eviction
}

func newHandoffStore() *handoffStore {
	return &handoffStore{blobs: make(map[string][]byte)}
}

// put deposits a blob under a request key, replacing any previous deposit
// and evicting the oldest entries once the byte budget is exceeded.
func (h *handoffStore) put(key string, blob []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if old, ok := h.blobs[key]; ok {
		h.size -= int64(len(old))
		for i, k := range h.order {
			if k == key {
				h.order = append(h.order[:i], h.order[i+1:]...)
				break
			}
		}
	}
	h.blobs[key] = blob
	h.order = append(h.order, key)
	h.size += int64(len(blob))
	for h.size > handoffBytes && len(h.order) > 1 {
		oldest := h.order[0]
		h.order = h.order[1:]
		h.size -= int64(len(h.blobs[oldest]))
		delete(h.blobs, oldest)
	}
}

// take withdraws and removes the blob for a key, or returns nil.
func (h *handoffStore) take(key string) []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	blob, ok := h.blobs[key]
	if !ok {
		return nil
	}
	delete(h.blobs, key)
	h.size -= int64(len(blob))
	for i, k := range h.order {
		if k == key {
			h.order = append(h.order[:i], h.order[i+1:]...)
			break
		}
	}
	return blob
}
