package serve

import (
	"container/list"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// handoffBytes bounds the in-memory handoff store. Gzipped checkpoint
// blobs run tens of kilobytes, so the default holds hundreds of in-flight
// handoffs; FIFO eviction keeps a misbehaving client from pinning memory.
const handoffBytes = 64 << 20

// handoffStore holds checkpoint blobs a coordinator ships between workers:
// PUT /v1/checkpoints/{key} deposits the blob a dead worker left behind,
// and the next ?resume=1 submission for the same key withdraws it and
// restores instead of recomputing. The store is a pure optimization —
// determinism means a missing or evicted blob only costs the fast-forward.
type handoffStore struct {
	mu    sync.Mutex
	size  int64
	blobs map[string][]byte
	order []string // insertion order, for FIFO eviction
}

func newHandoffStore() *handoffStore {
	return &handoffStore{blobs: make(map[string][]byte)}
}

// put deposits a blob under a request key, replacing any previous deposit
// and evicting the oldest entries once the byte budget is exceeded.
func (h *handoffStore) put(key string, blob []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if old, ok := h.blobs[key]; ok {
		h.size -= int64(len(old))
		for i, k := range h.order {
			if k == key {
				h.order = append(h.order[:i], h.order[i+1:]...)
				break
			}
		}
	}
	h.blobs[key] = blob
	h.order = append(h.order, key)
	h.size += int64(len(blob))
	for h.size > handoffBytes && len(h.order) > 1 {
		oldest := h.order[0]
		h.order = h.order[1:]
		h.size -= int64(len(h.blobs[oldest]))
		delete(h.blobs, oldest)
	}
}

// take withdraws and removes the blob for a key, or returns nil.
func (h *handoffStore) take(key string) []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	blob, ok := h.blobs[key]
	if !ok {
		return nil
	}
	delete(h.blobs, key)
	h.size -= int64(len(blob))
	for i, k := range h.order {
		if k == key {
			h.order = append(h.order[:i], h.order[i+1:]...)
			break
		}
	}
	return blob
}

// ckptStore bounds the on-disk checkpoint directory the way Cache bounds
// the result cache: an LRU over <dir>/<key>.ckpt files with a byte budget,
// evicting (deleting) the least-recently-used checkpoints once exceeded.
// Unlike the result cache the bytes live only on disk — the store tracks
// sizes, not contents. Eviction is always safe: determinism means a lost
// checkpoint costs a resume its fast-forward, never its result. A startup
// sweep indexes what a previous daemon left behind (oldest-modified =
// least-recently-used) and applies the budget immediately, so the
// directory cannot grow without bound across restarts either.
//
// All methods are nil-receiver-safe no-ops, matching the daemon running
// without a CheckpointDir.
type ckptStore struct {
	dir   string
	limit int64

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	size  int64

	evictions atomic.Int64
}

type ckptEntry struct {
	key  string
	size int64
}

// defaultCkptBytes is the checkpoint directory budget when Options leaves
// it unset: room for thousands of gzipped checkpoints.
const defaultCkptBytes = 256 << 20

func newCkptStore(dir string, limit int64) *ckptStore {
	if limit <= 0 {
		limit = defaultCkptBytes
	}
	st := &ckptStore{dir: dir, limit: limit, ll: list.New(), items: make(map[string]*list.Element)}
	os.MkdirAll(dir, 0o755)
	st.sweep()
	return st
}

func (st *ckptStore) path(key string) string { return filepath.Join(st.dir, key+".ckpt") }

// sweep indexes the checkpoints a previous daemon left in the directory,
// oldest modification first so the LRU order approximates their real use,
// then enforces the budget. Stale temp files from a crashed write and
// orphaned delta logs are removed outright.
func (st *ckptStore) sweep() {
	ents, err := os.ReadDir(st.dir)
	if err != nil {
		return
	}
	var recs []struct {
		key  string
		size int64
		mod  time.Time
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(name, ".tmp") || strings.HasSuffix(name, ".delta") {
			os.Remove(filepath.Join(st.dir, name))
			continue
		}
		if !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		recs = append(recs, struct {
			key  string
			size int64
			mod  time.Time
		}{strings.TrimSuffix(name, ".ckpt"), fi.Size(), fi.ModTime()})
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].mod.Before(recs[b].mod) })
	st.mu.Lock()
	for _, r := range recs {
		st.items[r.key] = st.ll.PushFront(&ckptEntry{key: r.key, size: r.size})
		st.size += r.size
	}
	st.evictLocked()
	st.mu.Unlock()
}

// note records that the checkpoint for key was just (re)written, sizing it
// from disk and evicting older checkpoints if the budget is now exceeded.
func (st *ckptStore) note(key string) {
	if st == nil {
		return
	}
	fi, err := os.Stat(st.path(key))
	if err != nil {
		return
	}
	st.mu.Lock()
	if el, ok := st.items[key]; ok {
		st.ll.MoveToFront(el)
		ent := el.Value.(*ckptEntry)
		st.size += fi.Size() - ent.size
		ent.size = fi.Size()
	} else {
		st.items[key] = st.ll.PushFront(&ckptEntry{key: key, size: fi.Size()})
		st.size += fi.Size()
	}
	st.evictLocked()
	st.mu.Unlock()
}

// touch marks the checkpoint for key as recently used (a resume restored
// it, or a handoff fetch read it).
func (st *ckptStore) touch(key string) {
	if st == nil {
		return
	}
	st.mu.Lock()
	if el, ok := st.items[key]; ok {
		st.ll.MoveToFront(el)
	}
	st.mu.Unlock()
}

// remove deletes the checkpoint for key from disk and the index (the job
// completed; its checkpoint is spent).
func (st *ckptStore) remove(key string) {
	if st == nil {
		return
	}
	st.mu.Lock()
	if el, ok := st.items[key]; ok {
		st.size -= el.Value.(*ckptEntry).size
		st.ll.Remove(el)
		delete(st.items, key)
	}
	st.mu.Unlock()
	os.Remove(st.path(key))
}

// evictLocked deletes least-recently-used checkpoints until the budget
// holds, always keeping the newest entry. Callers hold st.mu.
func (st *ckptStore) evictLocked() {
	for st.size > st.limit && st.ll.Len() > 1 {
		el := st.ll.Back()
		ent := el.Value.(*ckptEntry)
		st.ll.Remove(el)
		delete(st.items, ent.key)
		st.size -= ent.size
		os.Remove(st.path(ent.key))
		st.evictions.Add(1)
	}
}

// ckptStats reports the store's entry count, tracked bytes, and lifetime
// evictions for /metrics.
func (st *ckptStore) stats() (entries int, bytes int64, evictions int64) {
	if st == nil {
		return 0, 0, 0
	}
	st.mu.Lock()
	entries, bytes = st.ll.Len(), st.size
	st.mu.Unlock()
	return entries, bytes, st.evictions.Load()
}
