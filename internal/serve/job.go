package serve

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"adaptnoc"
	"adaptnoc/internal/snap"
)

// State is a job's lifecycle position.
type State string

// Job lifecycle: queued → running → one of the three terminal states.
// Cache hits are born done.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one per-epoch progress report, streamed over SSE while a job
// runs: how far the simulated clock has advanced and how effective the
// idle-skip work lists are for this workload.
type Event struct {
	Cycle           int64   `json:"cycle"`
	RouterSkipRate  float64 `json:"routerSkipRate"`
	ChannelSkipRate float64 `json:"channelSkipRate"`
}

// JobInfo is the wire representation of a job (POST /v1/sims and
// GET /v1/jobs/{id} responses).
type JobInfo struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Key is the content address of the canonical request.
	Key string `json:"key"`
	// Cache is "hit" when the result was served from the cache without
	// running, "miss" otherwise.
	Cache string `json:"cache"`
	// Seq is the completion order across the daemon's lifetime (1-based);
	// 0 while not terminal.
	Seq   int64  `json:"seq,omitempty"`
	Error string `json:"error,omitempty"`
	// Results carries the marshaled adaptnoc.Results for done jobs. It is
	// stored marshaled-once, so resubmissions of the same request return
	// byte-identical documents.
	Results json.RawMessage `json:"results,omitempty"`
	// Resumed marks a job created by POST /v1/jobs/{id}/resume.
	Resumed bool `json:"resumed,omitempty"`
	// Checkpoint reports that a mid-run checkpoint was persisted for this
	// job's request — a canceled job with Checkpoint set resumes from where
	// it stopped instead of from cycle zero.
	Checkpoint bool `json:"checkpoint,omitempty"`
	// CheckpointCycle is the simulated clock of the job's latest in-memory
	// snapshot (lease-scoped jobs snapshot once per progress slice; 0 means
	// none yet). A fleet coordinator polls it to decide when to shadow-fetch
	// GET /v1/jobs/{id}/checkpoint for handoff.
	CheckpointCycle int64 `json:"checkpointCycle,omitempty"`
}

// job is the server-side record.
type job struct {
	id      string
	key     string
	req     Request // canonical
	hit     bool
	resumed bool          // created via the resume endpoint or ?resume=1
	lease   time.Duration // non-zero for lease-scoped jobs; set before admit
	ctx     context.Context
	cancel  context.CancelFunc

	mu           sync.Mutex
	state        State
	seq          int64
	errMsg       string
	result       []byte // marshaled Results, nil unless done
	checkpointed bool   // a mid-run checkpoint exists on disk
	// Lease-scoped jobs shadow their state in memory as a rolling delta
	// chain: a full base blob plus the frames extending it, oldest first.
	// snapTip names the chain's endpoint by body hash so a fetcher that
	// already holds an earlier link can ask for just the frames after it.
	snapBase      []byte
	snapFrames    [][]byte
	snapTip       [32]byte
	snapshotCycle int64
	leaseTimer    *time.Timer // cancels the job when the lease lapses
	events        []Event
	subs          []chan Event
	done          chan struct{} // closed on reaching a terminal state
}

func newJob(id, key string, req Request) *job {
	ctx, cancel := context.WithCancel(context.Background())
	return &job{
		id: id, key: key, req: req,
		ctx: ctx, cancel: cancel,
		state: StateQueued,
		done:  make(chan struct{}),
	}
}

// info snapshots the wire representation.
func (j *job) info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	cache := "miss"
	if j.hit {
		cache = "hit"
	}
	return JobInfo{
		ID: j.id, State: j.state, Key: j.key, Cache: cache,
		Seq: j.seq, Error: j.errMsg, Results: j.result,
		Resumed: j.resumed, Checkpoint: j.checkpointed,
		CheckpointCycle: j.snapshotCycle,
	}
}

// armLease starts the lease clock on a lease-scoped job: unless renewed,
// the job is canceled when the lease lapses (the queue wait counts — a
// coordinator renews from admission onward). No-op without a lease.
func (j *job) armLease() {
	if j.lease <= 0 {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() || j.leaseTimer != nil {
		return
	}
	j.leaseTimer = time.AfterFunc(j.lease, j.cancel)
}

// renewLease pushes the lease deadline out by one lease interval. It
// reports false when the job carries no lease or already ended — the
// caller turned its back too long and must reschedule, not renew.
func (j *job) renewLease() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.leaseTimer == nil || j.state.Terminal() {
		return false
	}
	j.leaseTimer.Stop()
	j.leaseTimer.Reset(j.lease)
	return true
}

// maxShadowDeltas bounds the in-memory chain length before shadow rebases
// onto a fresh full blob. Serving a full checkpoint applies the whole
// chain, so the bound keeps that cost (and the chain's memory) flat while
// still letting a polling coordinator fetch kilobyte deltas between
// rebases.
const maxShadowDeltas = 16

// shadow records the simulation's current state in the job's rolling
// chain: a cheap delta frame extending the previous shadow when the chain
// lineage is intact, a full rebase otherwise (first shadow, chain at its
// length bound, or a lineage break). Called only by the job's own worker,
// once per progress slice.
func (j *job) shadow(simu *adaptnoc.Sim) {
	cycle := int64(simu.Kernel.Now())
	j.mu.Lock()
	haveBase, nFrames, tip := j.snapBase != nil, len(j.snapFrames), j.snapTip
	j.mu.Unlock()
	if haveBase && nFrames < maxShadowDeltas {
		if frame, err := simu.CheckpointDeltaChained(); err == nil {
			if fBase, fTip, herr := snap.DeltaHashes(frame); herr == nil && fBase == tip {
				j.mu.Lock()
				j.snapFrames = append(j.snapFrames, frame)
				j.snapTip = fTip
				j.snapshotCycle = cycle
				j.mu.Unlock()
				return
			}
		}
	}
	blob, err := simu.Checkpoint()
	if err != nil {
		return // e.g. a shared-agent config; the job just has no shadow
	}
	hash, _ := simu.CheckpointBodyHash()
	j.mu.Lock()
	j.snapBase, j.snapFrames, j.snapTip, j.snapshotCycle = blob, nil, hash, cycle
	j.mu.Unlock()
}

// snapshotChain returns the shadowed chain: the full base blob, the delta
// frames extending it (oldest first), the tip's body hash, and the tip's
// simulated clock. base is nil when no shadow exists yet. The returned
// slices are shared with the producer but never mutated in place.
func (j *job) snapshotChain() (base []byte, frames [][]byte, tip [32]byte, cycle int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapBase, j.snapFrames, j.snapTip, j.snapshotCycle
}

// setRunning moves queued → running; it reports false when the job already
// reached a terminal state (canceled while waiting in the queue), in which
// case the worker must not execute it.
func (j *job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	return true
}

// emit records a progress event and fans it out to subscribers. A slow
// subscriber's full channel drops the event rather than stalling the
// worker; the history replay on subscribe keeps late listeners complete.
func (j *job) emit(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, ev)
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// finish moves the job to a terminal state exactly once, closes every
// subscriber channel, and reports whether this call was the one that did
// it (so counters increment exactly once even when cancel races a worker).
func (j *job) finish(state State, seq int64, result []byte, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = state
	j.seq = seq
	j.result = result
	j.errMsg = errMsg
	if j.leaseTimer != nil {
		j.leaseTimer.Stop()
		j.leaseTimer = nil
	}
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	close(j.done)
	return true
}

// subscribe returns the events recorded so far plus a live channel for the
// rest. The channel is nil when the job is already terminal — the history
// is then complete. The channel is closed when the job finishes.
func (j *job) subscribe() (history []Event, live <-chan Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	history = append([]Event(nil), j.events...)
	if j.state.Terminal() {
		return history, nil
	}
	ch := make(chan Event, 256)
	j.subs = append(j.subs, ch)
	return history, ch
}
